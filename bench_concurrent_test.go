// Concurrent serving benchmarks: the engine's lock-free snapshot
// reads and batched async ingestion against the seed's single-mutex
// server, at the statement layer (Server.Exec) so the transport does
// not mask the synchronization cost being measured:
//
//	go test -bench=Concurrent -benchmem
//
// The external test package breaks the import cycle hazy ←
// internal/server.
package hazy_test

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	root "hazy"
	"hazy/internal/server"
)

// concStack is a served view with a two-topic corpus and a warm
// model, in either legacy mutex mode or engine mode.
type concStack struct {
	srv     *server.Server
	cleanup func()
}

func title(id int64) string {
	if id%2 == 0 {
		return fmt.Sprintf("kernel scheduler interrupt driver paging memory %d", id)
	}
	return fmt.Sprintf("relational database query optimization index transactions %d", id)
}

func buildConcStack(tb testing.TB, engineMode bool, entities int) *concStack {
	tb.Helper()
	db, err := root.Open(tb.TempDir())
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := db.CreateEntityTable("papers", "title"); err != nil {
		tb.Fatal(err)
	}
	feedback, err := db.CreateExampleTable("feedback")
	if err != nil {
		tb.Fatal(err)
	}
	papers, _ := db.EntityTableByName("papers")
	for id := int64(1); id <= int64(entities); id++ {
		if err := papers.InsertText(id, title(id)); err != nil {
			tb.Fatal(err)
		}
	}
	view, err := db.CreateClassificationView(root.ViewSpec{
		Name: "labeled", Entities: "papers", Examples: "feedback",
	})
	if err != nil {
		tb.Fatal(err)
	}
	// Warm the model with a handful of examples through the tables.
	for id := int64(1); id <= 20; id++ {
		label := 1
		if id%2 == 0 {
			label = -1
		}
		if err := feedback.InsertExample(id, label); err != nil {
			tb.Fatal(err)
		}
	}
	// db.Close drains any attached engine before closing storage.
	st := &concStack{cleanup: func() { db.Close() }}
	if engineMode {
		if _, err := db.AttachEngine(view.Name(), root.EngineOptions{}); err != nil {
			tb.Fatal(err)
		}
	}
	st.srv = server.New(db, server.Options{DefaultView: view.Name()})
	return st
}

// measureLabelThroughput runs total LABEL statements split across
// clients goroutines and returns ops/sec.
func measureLabelThroughput(tb testing.TB, srv *server.Server, clients, total int) float64 {
	tb.Helper()
	per := total / clients
	var wg sync.WaitGroup
	var failed atomic.Bool
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := int64(1 + (c*per+i)%100)
				resp, _ := srv.Exec(fmt.Sprintf("LABEL %d", id))
				if strings.HasPrefix(resp, "ERR") {
					failed.Store(true)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if failed.Load() {
		tb.Fatal("LABEL returned ERR during measurement")
	}
	return float64(clients*per) / elapsed.Seconds()
}

// TestEngineReadYourWrites is the acceptance path: a TRAIN enqueued
// asynchronously, followed by FLUSH, is visible to the next LABEL.
func TestEngineReadYourWrites(t *testing.T) {
	st := buildConcStack(t, true, 200)
	defer st.cleanup()
	// id 21 is an odd (database-topic) entity with no example yet.
	if resp, _ := st.srv.Exec("TRAINA 21 +1"); resp != "QUEUED" {
		t.Fatalf("TRAINA = %q", resp)
	}
	if resp, _ := st.srv.Exec("FLUSH"); resp != "OK" {
		t.Fatalf("FLUSH = %q", resp)
	}
	if resp, _ := st.srv.Exec("LABEL 21"); resp != "+1" {
		t.Fatalf("LABEL 21 after TRAIN+FLUSH = %q", resp)
	}
	stats, _ := st.srv.Exec("STATS")
	if !strings.Contains(stats, "updates=21") {
		t.Fatalf("STATS = %q, want updates=21", stats)
	}
}

// TestConcurrentLabelSpeedup measures concurrent LABEL throughput at
// GOMAXPROCS clients on both servers. With ≥ 4 cores the lock-free
// snapshot path must beat the single mutex by ≥ 2×; with fewer cores
// there is no parallelism to win back, and under the race detector
// instrumentation distorts the timing, so in both cases the ratio is
// only logged.
func TestConcurrentLabelSpeedup(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	const total = 200000

	mutex := buildConcStack(t, false, 200)
	defer mutex.cleanup()
	engine := buildConcStack(t, true, 200)
	defer engine.cleanup()

	// Interleave a warmup round to even out cache state.
	measureLabelThroughput(t, mutex.srv, procs, total/10)
	measureLabelThroughput(t, engine.srv, procs, total/10)

	mutexOps := measureLabelThroughput(t, mutex.srv, procs, total)
	engineOps := measureLabelThroughput(t, engine.srv, procs, total)
	ratio := engineOps / mutexOps
	t.Logf("concurrent LABEL at %d clients: mutex %.0f ops/s, engine %.0f ops/s (%.2fx)",
		procs, mutexOps, engineOps, ratio)
	if procs >= 4 && !raceEnabled && ratio < 2.0 {
		t.Errorf("engine speedup %.2fx < 2x at %d clients", ratio, procs)
	}
}

// benchConcLabel runs the LABEL hot path on parallel goroutines.
func benchConcLabel(b *testing.B, engineMode bool, clients int) {
	st := buildConcStack(b, engineMode, 200)
	defer st.cleanup()
	b.SetParallelism(clients) // parallel workers = clients × GOMAXPROCS
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := 1 + ctr.Add(1)%100
			st.srv.Exec(fmt.Sprintf("LABEL %d", id))
		}
	})
}

func BenchmarkConcurrentLabel(b *testing.B) {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	for _, clients := range counts {
		for _, mode := range []struct {
			name   string
			engine bool
		}{{"mutex", false}, {"engine", true}} {
			b.Run(fmt.Sprintf("%s/clients=%d", mode.name, clients), func(b *testing.B) {
				benchConcLabel(b, mode.engine, clients)
			})
		}
	}
}

// BenchmarkTrainIngest measures write ingestion: each op ADDs a new
// entity and TRAINs it — synchronously through the mutex server,
// asynchronously (batched) through the engine with a final drain.
func BenchmarkTrainIngest(b *testing.B) {
	for _, mode := range []struct {
		name   string
		engine bool
	}{{"mutex", false}, {"engine", true}} {
		b.Run(mode.name, func(b *testing.B) {
			st := buildConcStack(b, mode.engine, 200)
			defer st.cleanup()
			train, add := "TRAIN", "ADD"
			if mode.engine {
				train, add = "TRAINA", "ADDA"
			}
			id := int64(1000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id++
				st.srv.Exec(fmt.Sprintf("%s %d %s", add, id, title(id)))
				st.srv.Exec(fmt.Sprintf("%s %d %+d", train, id, 1-2*int(id%2)))
			}
			if mode.engine {
				if resp, _ := st.srv.Exec("FLUSH"); resp != "OK" {
					b.Fatalf("FLUSH = %q", resp)
				}
			}
		})
	}
}
