package hazy

import (
	"fmt"
	"strings"
	"sync"

	"hazy/internal/core"
	"hazy/internal/engine"
	"hazy/internal/sqlmini"
)

// Result is a statement's output: column names plus stringified rows
// (ints render without decimals). It serializes to JSON for the
// server's SQL wire command.
type Result struct {
	Cols []string   `json:"cols,omitempty"`
	Rows [][]string `json:"rows,omitempty"`
	// Msg is set for DDL/DML statements with no result set.
	Msg string `json:"msg,omitempty"`
}

// Session is the database's front door: it executes SQL statements
// (the paper's §2.1 dialect) against the whole catalog and carries
// the per-session state the statement surface needs — the default
// view for unqualified commands and the engine tokens that keep one
// session's asynchronous write failures from surfacing in another
// session's FLUSH.
//
// Every consumer goes through a Session: embedded Go callers, each
// hazyql REPL, and every TCP connection served by hazyd. Sessions are
// cheap; create one per actor. A Session's engine-backed operations
// (reads and writes on engined views) are safe for concurrent use;
// catalog DDL and operations on non-engined views need external
// serialization, exactly like the underlying DB.
type Session struct {
	db *DB

	mu      sync.RWMutex
	defView string
	toks    map[*engine.Engine]engine.Token
}

// NewSession opens a session over the database.
func (db *DB) NewSession() *Session {
	return &Session{db: db, toks: map[*engine.Engine]engine.Token{}}
}

// DB returns the session's database.
func (s *Session) DB() *DB { return s.db }

// Use sets the session's default view — the target of unqualified
// wire verbs (LABEL <id> and friends). The view must exist.
func (s *Session) Use(view string) error {
	if _, err := s.db.View(view); err != nil {
		return err
	}
	s.SetDefaultView(view)
	return nil
}

// SetDefaultView sets the default view without checking that it
// exists yet (servers configure a default before clients declare it).
func (s *Session) SetDefaultView(view string) {
	s.mu.Lock()
	s.defView = view
	s.mu.Unlock()
}

// DefaultView returns the session's default view name ("" if unset).
func (s *Session) DefaultView() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.defView
}

// token returns this session's error-attribution token for eng,
// allocating it on first use. Entries for engines that have since
// been closed (detach/re-attach cycles) are pruned so a long-lived
// session does not pin dead engines and their final snapshots.
func (s *Session) token(eng *engine.Engine) engine.Token {
	s.mu.Lock()
	defer s.mu.Unlock()
	for old := range s.toks {
		if old != eng && old.Closed() {
			delete(s.toks, old)
		}
	}
	tok, ok := s.toks[eng]
	if !ok {
		tok = eng.NewToken()
		s.toks[eng] = tok
	}
	return tok
}

// resolve maps a view name ("" = the session default) to the view and
// its attached engine (nil when unmanaged).
func (s *Session) resolve(view string) (*ClassView, *engine.Engine, error) {
	name := view
	if name == "" {
		name = s.DefaultView()
	}
	if name == "" {
		return nil, nil, fmt.Errorf("hazy: no view named and no default view set (USE <view>)")
	}
	return s.db.viewAndEngine(name)
}

// BoundView is a view handle resolved once: the view and whichever
// engine was attached at bind time travel together, so a caller's
// "engined?" decision and its subsequent operations cannot diverge
// when an engine is attached or detached concurrently. If the bound
// engine has since been detached, its writes fail with an explicit
// engine-closed error (never a silent fallback to the unsynchronized
// live view) and its reads answer from the engine's final snapshot.
type BoundView struct {
	s   *Session
	cv  *ClassView
	eng *engine.Engine // nil when unmanaged at bind time
}

// Bind resolves a view name ("" = the session default) once.
func (s *Session) Bind(view string) (*BoundView, error) {
	cv, eng, err := s.resolve(view)
	if err != nil {
		return nil, err
	}
	return &BoundView{s: s, cv: cv, eng: eng}, nil
}

// Engined reports whether the view had an engine attached at bind
// time (reads and writes then bypass statement-level locking).
func (bv *BoundView) Engined() bool { return bv.eng != nil }

// Name returns the bound view's name.
func (bv *BoundView) Name() string { return bv.cv.Name() }

// Label answers a Single Entity read — lock-free from the engine's
// published snapshot when the view is engined.
func (bv *BoundView) Label(id int64) (int, error) {
	if bv.eng != nil {
		return bv.eng.Label(id)
	}
	return bv.cv.Label(id)
}

// Members answers an All Members read.
func (bv *BoundView) Members() ([]int64, error) {
	if bv.eng != nil {
		return bv.eng.Members()
	}
	return bv.cv.Members()
}

// CountMembers counts the +1-labeled entities.
func (bv *BoundView) CountMembers() (int, error) {
	if bv.eng != nil {
		return bv.eng.CountMembers()
	}
	return bv.cv.CountMembers()
}

// Classify scores free text against the view's current model without
// storing anything. A never-trained view returns an "untrained" error
// instead of a meaningless zero-model prediction.
func (bv *BoundView) Classify(text string) (int, error) {
	if bv.eng != nil {
		return bv.eng.Classify(text)
	}
	return bv.cv.Classify(text)
}

// Uncertain is implemented by views that can surface active-learning
// candidates.
type Uncertain interface {
	MostUncertain(k int) ([]int64, error)
}

// MostUncertain returns up to k ids nearest the decision boundary
// (active-learning picks).
func (bv *BoundView) MostUncertain(k int) ([]int64, error) {
	if bv.eng != nil {
		return bv.eng.MostUncertain(k)
	}
	if s := bv.cv.pub.Load(); s != nil {
		return s.MostUncertain(k)
	}
	u, ok := bv.cv.Core().(Uncertain)
	if !ok {
		return nil, fmt.Errorf("hazy: view %q does not support uncertainty ranking", bv.cv.Name())
	}
	return u.MostUncertain(k)
}

// Train inserts a training example into the view's examples table
// (synchronous: it returns once the write is applied and visible,
// whichever path — trigger or engine — maintains the view).
func (bv *BoundView) Train(id int64, label int) error {
	if bv.eng != nil {
		if label != 1 && label != -1 {
			return fmt.Errorf("hazy: label must be ±1, got %d", label)
		}
		return bv.eng.Train(id, label)
	}
	return bv.cv.exs.InsertExample(id, label)
}

// Add inserts an entity into the view's entity table (synchronous).
func (bv *BoundView) Add(id int64, text string) error {
	if bv.eng != nil {
		return bv.eng.Add(id, text)
	}
	return bv.cv.ents.InsertText(id, text)
}

// TrainAsync enqueues a training example on the view's engine and
// returns as soon as it is queued. The op is tagged with the owning
// session's token: a failure surfaces only in that session's Flush.
// Requires an engine attached at bind time.
func (bv *BoundView) TrainAsync(id int64, label int) error {
	if bv.eng == nil {
		return fmt.Errorf("hazy: view %q has no engine attached (async writes need one)", bv.cv.Name())
	}
	return bv.eng.TrainAsyncTok(bv.s.token(bv.eng), id, label)
}

// AddAsync enqueues an entity insert, tagged with the owning
// session's token.
func (bv *BoundView) AddAsync(id int64, text string) error {
	if bv.eng == nil {
		return fmt.Errorf("hazy: view %q has no engine attached (async writes need one)", bv.cv.Name())
	}
	return bv.eng.AddAsyncTok(bv.s.token(bv.eng), id, text)
}

// Flush is the owning session's barrier on the view's engine: every
// previously enqueued write (any session's) is applied and visible
// when it returns, and the first failure among THIS session's async
// ops — and only this session's — is reported and cleared.
func (bv *BoundView) Flush() error {
	if bv.eng == nil {
		return fmt.Errorf("hazy: view %q has no engine attached (nothing to flush)", bv.cv.Name())
	}
	return bv.eng.FlushTok(bv.s.token(bv.eng))
}

// ViewStats returns the view's maintenance counters (from the
// published snapshot when engined) plus the engine's serving
// counters rendered as a string ("" when unmanaged).
func (bv *BoundView) ViewStats() (Stats, string) {
	if bv.eng != nil {
		return bv.eng.ViewStats(), bv.eng.Stats().String()
	}
	return bv.cv.Stats(), ""
}

// The name-addressed Session forms below re-resolve per call — the
// convenience surface for embedded use; servers bind once per
// statement (Bind) so the engined decision and the operation agree.

// Label answers a Single Entity read on the named view ("" = default).
func (s *Session) Label(view string, id int64) (int, error) {
	bv, err := s.Bind(view)
	if err != nil {
		return 0, err
	}
	return bv.Label(id)
}

// Members answers an All Members read on the named view.
func (s *Session) Members(view string) ([]int64, error) {
	bv, err := s.Bind(view)
	if err != nil {
		return nil, err
	}
	return bv.Members()
}

// CountMembers counts the +1-labeled entities of the named view.
func (s *Session) CountMembers(view string) (int, error) {
	bv, err := s.Bind(view)
	if err != nil {
		return 0, err
	}
	return bv.CountMembers()
}

// Classify scores free text against the named view's current model.
func (s *Session) Classify(view, text string) (int, error) {
	bv, err := s.Bind(view)
	if err != nil {
		return 0, err
	}
	return bv.Classify(text)
}

// MostUncertain returns up to k ids nearest the named view's decision
// boundary.
func (s *Session) MostUncertain(view string, k int) ([]int64, error) {
	bv, err := s.Bind(view)
	if err != nil {
		return nil, err
	}
	return bv.MostUncertain(k)
}

// Train inserts a training example into the named view's examples
// table (synchronous).
func (s *Session) Train(view string, id int64, label int) error {
	bv, err := s.Bind(view)
	if err != nil {
		return err
	}
	return bv.Train(id, label)
}

// Add inserts an entity into the named view's entity table
// (synchronous).
func (s *Session) Add(view string, id int64, text string) error {
	bv, err := s.Bind(view)
	if err != nil {
		return err
	}
	return bv.Add(id, text)
}

// TrainAsync enqueues a training example on the named view's engine,
// tagged with this session's token.
func (s *Session) TrainAsync(view string, id int64, label int) error {
	bv, err := s.Bind(view)
	if err != nil {
		return err
	}
	return bv.TrainAsync(id, label)
}

// AddAsync enqueues an entity insert on the named view's engine,
// tagged with this session's token.
func (s *Session) AddAsync(view string, id int64, text string) error {
	bv, err := s.Bind(view)
	if err != nil {
		return err
	}
	return bv.AddAsync(id, text)
}

// Flush is this session's barrier on the named view's engine.
func (s *Session) Flush(view string) error {
	bv, err := s.Bind(view)
	if err != nil {
		return err
	}
	return bv.Flush()
}

// ViewStats returns the named view's maintenance counters plus the
// engine's serving counters ("" when unmanaged).
func (s *Session) ViewStats(view string) (Stats, string, error) {
	bv, err := s.Bind(view)
	if err != nil {
		return Stats{}, "", err
	}
	vs, es := bv.ViewStats()
	return vs, es, nil
}

// Exec parses and executes one SQL statement against the catalog,
// materializing the result. It is Query plus a drain — callers that
// want to stream a large SELECT row at a time (the server's SQL wire
// command does) use Query directly.
func (s *Session) Exec(src string) (*Result, error) {
	rows, err := s.Query(src)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	if rows.Msg() != "" {
		return &Result{Msg: rows.Msg()}, nil
	}
	res := &Result{Cols: rows.Cols()}
	for {
		row, ok, err := rows.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return res, nil
		}
		res.Rows = append(res.Rows, row)
	}
}

// execStmt executes one non-SELECT statement (Query handles SELECT
// and EXPLAIN through the planner).
func (s *Session) execStmt(st sqlmini.Stmt) (*Result, error) {
	switch st := st.(type) {
	case sqlmini.CreateTable:
		return s.createTable(st)
	case sqlmini.CreateView:
		return s.createView(st)
	case sqlmini.Insert:
		return s.insert(st)
	case sqlmini.AttachEngine:
		return s.attachEngine(st)
	case sqlmini.DetachEngine:
		return s.detachEngine(st)
	case sqlmini.Checkpoint:
		if err := s.db.Checkpoint(); err != nil {
			return nil, err
		}
		return &Result{Msg: "CHECKPOINT"}, nil
	case sqlmini.Promote:
		if err := s.db.Promote(); err != nil {
			return nil, err
		}
		return &Result{Msg: "PROMOTE"}, nil
	default:
		return nil, fmt.Errorf("sql: unhandled statement %T", st)
	}
}

func (s *Session) createTable(st sqlmini.CreateTable) (*Result, error) {
	if len(st.Cols) != 2 || !strings.EqualFold(st.Cols[0].Name, "id") ||
		st.Cols[0].Type != "BIGINT" || !strings.EqualFold(st.Key, "id") {
		return nil, fmt.Errorf("sql: the mini dialect supports tables (id BIGINT, col TEXT|BIGINT) KEY id")
	}
	switch st.Cols[1].Type {
	case "TEXT":
		if _, err := s.db.CreateEntityTable(st.Name, st.Cols[1].Name); err != nil {
			return nil, err
		}
	case "BIGINT":
		if _, err := s.db.CreateExampleTable(st.Name); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sql: second column must be TEXT (entities) or BIGINT (examples)")
	}
	return &Result{Msg: "CREATE TABLE"}, nil
}

func (s *Session) createView(st sqlmini.CreateView) (*Result, error) {
	spec := ViewSpec{
		Name:            st.Name,
		Entities:        st.Entities,
		Examples:        st.Examples,
		FeatureFunction: st.Feature,
		Method:          strings.ToLower(st.Using),
		Partitions:      st.Partitions,
	}
	var err error
	if spec.Arch, err = core.ParseArch(st.Arch); err != nil {
		return nil, fmt.Errorf("sql: unknown ARCHITECTURE %q", st.Arch)
	}
	if spec.Strategy, err = core.ParseStrategy(st.Strategy); err != nil {
		return nil, fmt.Errorf("sql: unknown STRATEGY %q", st.Strategy)
	}
	if spec.Mode, err = core.ParseMode(st.Mode); err != nil {
		return nil, fmt.Errorf("sql: unknown MODE %q", st.Mode)
	}
	if spec.Arch == core.HybridArch && spec.Strategy == core.Naive {
		return nil, fmt.Errorf("sql: HYBRID requires STRATEGY HAZY")
	}
	if _, err := s.db.CreateClassificationView(spec); err != nil {
		return nil, err
	}
	return &Result{Msg: "CREATE CLASSIFICATION VIEW"}, nil
}

func (s *Session) attachEngine(st sqlmini.AttachEngine) (*Result, error) {
	if _, err := s.db.AttachEngine(st.View, EngineOptions{
		QueueSize: st.Queue, MaxBatch: st.Batch,
	}); err != nil {
		return nil, err
	}
	return &Result{Msg: "ATTACH ENGINE"}, nil
}

func (s *Session) detachEngine(st sqlmini.DetachEngine) (*Result, error) {
	if err := s.db.DetachEngine(st.View); err != nil {
		return nil, err
	}
	return &Result{Msg: "DETACH ENGINE"}, nil
}

func (s *Session) insert(st sqlmini.Insert) (*Result, error) {
	// One catalog lookup per statement, not per row.
	s.db.mu.RLock()
	entity, entityOK := s.db.tables[st.Table]
	example, exampleOK := s.db.examples[st.Table]
	s.db.mu.RUnlock()
	if !entityOK && !exampleOK {
		return nil, fmt.Errorf("sql: no table %q", st.Table)
	}
	for _, row := range st.Rows {
		if len(row) != 2 {
			return nil, fmt.Errorf("sql: %s rows take 2 values, got %d", st.Table, len(row))
		}
		if row[0].IsString {
			return nil, fmt.Errorf("sql: id must be an integer")
		}
		id := int64(row[0].Num)
		if entityOK {
			if !row[1].IsString {
				return nil, fmt.Errorf("sql: entity text must be a string")
			}
			if err := entity.InsertText(id, row[1].Str); err != nil {
				return nil, err
			}
		} else {
			if row[1].IsString {
				return nil, fmt.Errorf("sql: label must be ±1")
			}
			if err := example.InsertExample(id, int(row[1].Num)); err != nil {
				return nil, err
			}
		}
	}
	return &Result{Msg: fmt.Sprintf("INSERT %d", len(st.Rows))}, nil
}

// SELECT evaluation lives in internal/exec (the streaming planner and
// operator pipeline) behind Session.Query in query.go; the per-kind
// scan-and-filter loops that used to sit here — including their
// rows[:0] in-place filtering over a slice still being read — are
// gone with it.
