-- Golden end-to-end script: the paper's §2.1 workflow, twice over —
-- two independent classification views in one catalog, both served
-- through concurrent maintenance engines. The same transcript must
-- come out of (a) an embedded hazy.Session, (b) hazyql -f, and
-- (c) a hazyd server driven through the SQL wire command.

CREATE TABLE papers (id BIGINT, title TEXT) KEY id;
CREATE TABLE feedback (id BIGINT, label BIGINT) KEY id;
CREATE TABLE docs (id BIGINT, body TEXT) KEY id;
CREATE TABLE votes (id BIGINT, label BIGINT) KEY id;

INSERT INTO papers VALUES
  (1, 'relational query optimization and indexing'),
  (2, 'kernel scheduling for multicore operating systems'),
  (3, 'sql views and transaction processing'),
  (4, 'device drivers and interrupt handling'),
  (5, 'join algorithms for relational databases');
INSERT INTO docs VALUES
  (10, 'lottery winner click here now'),
  (11, 'meeting notes from the quarterly design review'),
  (12, 'you are a winner click to claim the lottery prize'),
  (13, 'agenda and notes for the review meeting');

CREATE CLASSIFICATION VIEW labeled KEY id
  ENTITIES FROM papers KEY id
  EXAMPLES FROM feedback KEY id LABEL label
  FEATURE FUNCTION tf_bag_of_words USING SVM;
CREATE CLASSIFICATION VIEW spam KEY id
  ENTITIES FROM docs KEY id
  EXAMPLES FROM votes KEY id LABEL label
  FEATURE FUNCTION tf_bag_of_words USING LOGISTIC;

ATTACH ENGINE TO labeled;
ATTACH ENGINE TO spam QUEUE 128 BATCH 32;

INSERT INTO feedback VALUES (1, 1), (2, -1), (3, 1), (4, -1);
INSERT INTO votes VALUES (10, 1), (11, -1);

SELECT class FROM labeled WHERE id = 5;
SELECT id FROM labeled WHERE class = 1;
SELECT COUNT(*) FROM labeled WHERE class = 1;
SELECT id, class FROM spam;
SELECT COUNT(*) FROM spam WHERE class = 1;
SELECT title FROM papers WHERE id = 2;
SELECT COUNT(*) FROM votes;

-- Every read shape lowers to its own physical plan, and EXPLAIN pins
-- the choice (snapshot-backed, since both views are engined here).
EXPLAIN SELECT class FROM labeled WHERE id = 5;
EXPLAIN SELECT id FROM labeled WHERE class = 1;
EXPLAIN SELECT COUNT(*) FROM labeled WHERE class = 1;
EXPLAIN SELECT id FROM labeled WHERE eps >= -0.75 AND eps <= 0.75;
EXPLAIN SELECT id FROM labeled WHERE eps > 0 AND class = 1;
EXPLAIN SELECT id, class FROM spam;
EXPLAIN SELECT id FROM labeled ORDER BY ABS(eps) LIMIT 2;
EXPLAIN SELECT id, class FROM labeled ORDER BY id DESC LIMIT 3;
EXPLAIN SELECT title FROM papers WHERE id = 2;
EXPLAIN SELECT COUNT(*) FROM feedback WHERE label = 1;

-- EXPLAIN ANALYZE runs the plan to completion and annotates every
-- node with the rows it produced and its inclusive wall time. Row
-- counts are deterministic for these shapes -- the wide eps band
-- covers every row regardless of where the maintenance watermark
-- sits -- while times are normalized by the harness before comparing.
EXPLAIN ANALYZE SELECT class FROM labeled WHERE id = 5;
EXPLAIN ANALYZE SELECT id FROM labeled WHERE class = 1;
EXPLAIN ANALYZE SELECT COUNT(*) FROM labeled WHERE eps >= -100.0 AND eps <= 100.0;
EXPLAIN ANALYZE SELECT id FROM labeled ORDER BY ABS(eps) LIMIT 2;

-- The eps column, ORDER BY, and LIMIT execute too. Wide eps bands
-- keep the transcript independent of exact model floats, and the
-- boundary walk is exercised only through EXPLAIN above: its row
-- order breaks eps ties whose values depend on when Skiing last
-- reorganized, which is timing-based (the SQL-vs-MostUncertain
-- agreement is pinned in query_test.go instead).
SELECT COUNT(*) FROM labeled WHERE eps >= -100.0 AND eps <= 100.0;
SELECT id, class FROM labeled ORDER BY id DESC LIMIT 3;
SELECT title FROM papers ORDER BY title LIMIT 2;
SELECT id FROM feedback WHERE label = -1 ORDER BY id DESC;

-- Late-arriving entities are classified on insert, through the
-- engines (type-1 dynamic data).
INSERT INTO papers VALUES (6, 'cost based query optimization of sql database views');
INSERT INTO docs VALUES (14, 'claim your lottery prize now winner');
SELECT class FROM labeled WHERE id = 6;
SELECT class FROM spam WHERE id = 14;

DETACH ENGINE FROM labeled;
SELECT class FROM labeled WHERE id = 6;
SELECT COUNT(*) FROM spam;

-- Detached, the same statements plan against the live structure.
EXPLAIN SELECT id FROM labeled WHERE class = 1;
EXPLAIN SELECT id FROM labeled WHERE eps >= 0.0;
SELECT COUNT(*) FROM labeled WHERE eps >= -100.0;

-- Durability: CHECKPOINT flushes both manifests and every dirty heap
-- page, then prunes the write-ahead log below the recorded position.
CHECKPOINT;
SELECT COUNT(*) FROM papers;

-- Partition-striped maintenance: PARTITIONS hash-partitions the view
-- into stripes with per-stripe clustering, watermarks, and Skiing
-- over one shared model. Contents match an unstriped view, and
-- EXPLAIN shows the scatter-gather merge over the live layout, and a
-- pre-merged snapshot plan once an engine is attached.
CREATE TABLE items (id BIGINT, body TEXT) KEY id;
CREATE TABLE marks (id BIGINT, label BIGINT) KEY id;
INSERT INTO items VALUES
  (20, 'btree index scan and join ordering'),
  (21, 'interrupt latency in kernel drivers'),
  (22, 'sql transaction isolation levels'),
  (23, 'scheduler preemption and context switching'),
  (24, 'query planner statistics and selectivity'),
  (25, 'filesystem journaling under write load');
CREATE CLASSIFICATION VIEW striped KEY id
  ENTITIES FROM items KEY id
  EXAMPLES FROM marks KEY id LABEL label
  FEATURE FUNCTION tf_bag_of_words USING SVM PARTITIONS 4;
INSERT INTO marks VALUES (20, 1), (21, -1), (22, 1), (23, -1);

SELECT id, class FROM striped;
SELECT COUNT(*) FROM striped WHERE class = 1;
SELECT COUNT(*) FROM striped WHERE eps >= -100.0 AND eps <= 100.0;
EXPLAIN SELECT id FROM striped WHERE eps >= -0.75 AND eps <= 0.75;
EXPLAIN SELECT id, class FROM striped;
-- The fifth EXPLAIN ANALYZE shape: a scatter-gather merge over the
-- live striped layout (engined snapshots below are pre-merged).
EXPLAIN ANALYZE SELECT COUNT(*) FROM striped WHERE eps >= -100.0 AND eps <= 100.0;

-- Engined, the published snapshot is already merged: same answers,
-- single-cursor plans.
ATTACH ENGINE TO striped;
INSERT INTO items VALUES (26, 'cost model for join ordering in the query planner');
SELECT class FROM striped WHERE id = 26;
SELECT COUNT(*) FROM striped WHERE class = 1;
EXPLAIN SELECT id FROM striped WHERE eps >= -0.75 AND eps <= 0.75;
DETACH ENGINE FROM striped;
SELECT id, class FROM striped ORDER BY id DESC LIMIT 3;

-- Replication observability: the replica_* collectors are registered
-- on every database (zero when the process is not replicating), so
-- dashboards and scripts can rely on the names before a replica ever
-- attaches. SHOW STATS FOR replica filters to them by prefix.
SHOW STATS FOR replica;
