package hazy

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hazy/internal/core"
	"hazy/internal/feature"
)

// corpusFor builds a toy paper corpus: database papers share one
// vocabulary pool, systems papers another.
var dbWords = []string{"query", "index", "transaction", "relational", "join", "sql", "view", "optimizer"}
var osWords = []string{"kernel", "scheduler", "filesystem", "interrupt", "paging", "driver", "thread", "cache"}

func title(r *rand.Rand, db bool) string {
	pool := osWords
	if db {
		pool = dbWords
	}
	words := make([]string, 4+r.Intn(4))
	for i := range words {
		words[i] = pool[r.Intn(len(pool))]
	}
	return strings.Join(words, " ")
}

func buildDB(t *testing.T, arch core.Arch, strategy core.Strategy, mode core.Mode) (*DB, *ClassView, *ExampleTable, map[int64]bool) {
	t.Helper()
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	papers, err := db.CreateEntityTable("papers", "title")
	if err != nil {
		t.Fatal(err)
	}
	examples, err := db.CreateExampleTable("feedback")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	truth := map[int64]bool{}
	for id := int64(0); id < 200; id++ {
		isDB := r.Float64() < 0.5
		truth[id] = isDB
		if err := papers.InsertText(id, title(r, isDB)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := db.CreateClassificationView(ViewSpec{
		Name:     "labeled_papers",
		Entities: "papers",
		Examples: "feedback",
		Arch:     arch,
		Strategy: strategy,
		Mode:     mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, v, examples, truth
}

func TestEndToEndClassification(t *testing.T) {
	for _, cfg := range []struct {
		arch core.Arch
		str  core.Strategy
		mode core.Mode
	}{
		{MainMemory, Hazy, Eager},
		{MainMemory, Naive, Lazy},
		{OnDisk, Hazy, Eager},
		{Hybrid, Hazy, Lazy},
	} {
		name := fmt.Sprintf("%v-%v-%v", cfg.arch, cfg.str, cfg.mode)
		t.Run(name, func(t *testing.T) {
			_, v, examples, truth := buildDB(t, cfg.arch, cfg.str, cfg.mode)
			// Feed feedback via SQL-style inserts (trigger-driven).
			n := int64(0)
			for id, isDB := range truth {
				label := -1
				if isDB {
					label = 1
				}
				if err := examples.InsertExample(id, label); err != nil {
					t.Fatal(err)
				}
				n++
				if n == 150 {
					break
				}
			}
			correct, total := 0, 0
			for id, isDB := range truth {
				got, err := v.Label(id)
				if err != nil {
					t.Fatal(err)
				}
				want := -1
				if isDB {
					want = 1
				}
				if got == want {
					correct++
				}
				total++
			}
			if acc := float64(correct) / float64(total); acc < 0.9 {
				t.Fatalf("%s: accuracy %.3f", name, acc)
			}
			members, err := v.Members()
			if err != nil {
				t.Fatal(err)
			}
			cnt, err := v.CountMembers()
			if err != nil || cnt != len(members) {
				t.Fatalf("count %d vs members %d (%v)", cnt, len(members), err)
			}
		})
	}
}

func TestNewEntityTrigger(t *testing.T) {
	_, v, examples, truth := buildDB(t, MainMemory, Hazy, Eager)
	db2, err := v, error(nil)
	_ = db2
	// Train on the first half of the ids in deterministic order (map
	// iteration order would vary the training set run to run and can
	// flip the ad-hoc classifications below).
	for id := int64(0); id < 100; id++ {
		label := -1
		if truth[id] {
			label = 1
		}
		if err = examples.InsertExample(id, label); err != nil {
			t.Fatal(err)
		}
	}
	// A new paper arriving after training is classified on insert.
	dbx, err := v, error(nil)
	_ = dbx
	// Reach the entity table through the view's database.
	// (buildDB returns the tables directly in other tests; here we
	// re-open via the facade.)
	if got, err := v.Classify("sql query optimizer with index join"); err != nil || got != 1 {
		t.Fatalf("ad-hoc classify: %d, %v", got, err)
	}
	if got, err := v.Classify("kernel interrupt scheduler paging"); err != nil || got != -1 {
		t.Fatalf("ad-hoc classify: %d, %v", got, err)
	}
}

func TestEntityInsertTriggerClassifies(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	papers, _ := db.CreateEntityTable("papers", "title")
	examples, _ := db.CreateExampleTable("feedback")
	r := rand.New(rand.NewSource(12))
	for id := int64(0); id < 50; id++ {
		papers.InsertText(id, title(r, id%2 == 0))
	}
	v, err := db.CreateClassificationView(ViewSpec{
		Name: "lp", Entities: "papers", Examples: "feedback",
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 50; id++ {
		label := -1
		if id%2 == 0 {
			label = 1
		}
		if err := examples.InsertExample(id, label); err != nil {
			t.Fatal(err)
		}
	}
	// New entity arrives AFTER the view exists: trigger inserts it.
	if err := papers.InsertText(500, "relational query optimizer join index sql"); err != nil {
		t.Fatal(err)
	}
	got, err := v.Label(500)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("late-arriving db paper labeled %d", got)
	}
	if papers.Len() != 51 {
		t.Fatalf("papers len %d", papers.Len())
	}
	if examples.Len() != 50 {
		t.Fatalf("examples len %d", examples.Len())
	}
	if txt, err := papers.Text(500); err != nil || txt == "" {
		t.Fatalf("text: %q %v", txt, err)
	}
}

func TestViewValidation(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.CreateClassificationView(ViewSpec{Name: "v", Entities: "nope", Examples: "nope"}); err == nil {
		t.Fatal("missing entity table accepted")
	}
	db.CreateEntityTable("e", "txt")
	if _, err := db.CreateClassificationView(ViewSpec{Name: "v", Entities: "e", Examples: "nope"}); err == nil {
		t.Fatal("missing example table accepted")
	}
	db.CreateExampleTable("x")
	if _, err := db.CreateClassificationView(ViewSpec{Name: "v", Entities: "e", Examples: "x", FeatureFunction: "bogus"}); err == nil {
		t.Fatal("unknown feature function accepted")
	}
	if _, err := db.CreateClassificationView(ViewSpec{Name: "v", Entities: "e", Examples: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateClassificationView(ViewSpec{Name: "v", Entities: "e", Examples: "x"}); err == nil {
		t.Fatal("duplicate view accepted")
	}
	if _, err := db.View("v"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.View("zzz"); err == nil {
		t.Fatal("missing view found")
	}
	xt, _ := db.examples["x"], 0
	if err := xt.InsertExample(1, 3); err == nil {
		t.Fatal("label 3 accepted")
	}
	if err := xt.InsertExample(999, 1); err == nil {
		t.Fatal("example for unknown entity accepted")
	}
}

func TestCustomFeatureFunction(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Registry().Register("custom_tfidf", func() feature.Func { return feature.NewTFIDF() })
	db.CreateEntityTable("e", "txt")
	db.CreateExampleTable("x")
	r := rand.New(rand.NewSource(3))
	et := db.tables["e"]
	for id := int64(0); id < 30; id++ {
		et.InsertText(id, title(r, id%2 == 0))
	}
	v, err := db.CreateClassificationView(ViewSpec{
		Name: "v", Entities: "e", Examples: "x", FeatureFunction: "custom_tfidf",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.CountMembers(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineAttachDetach covers the engine lifecycle at the DB
// level: while attached the view is engine-managed (double attach
// rejected, registry populated, table mutations routed through the
// engine), and Close drains, re-enables the table triggers, and
// allows a fresh attach.
func TestEngineAttachDetach(t *testing.T) {
	db, v, examples, _ := buildDB(t, core.MainMemory, core.HazyStrategy, core.Eager)
	eng, err := db.Engine(v, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Engine(v, EngineOptions{}); err == nil {
		t.Fatal("second attach while an engine is active succeeded")
	}
	if got := db.AttachedEngine("labeled_papers"); got != eng {
		t.Fatalf("AttachedEngine = %v, want the attached engine", got)
	}
	if err := eng.Train(0, 1); err != nil {
		t.Fatal(err)
	}
	// While managed, direct table inserts route through the engine —
	// one front door: the write is applied, maintained, and visible.
	if err := examples.InsertExample(1, -1); err != nil {
		t.Fatal(err)
	}
	if got := eng.ViewStats().Updates; got != 2 {
		t.Fatalf("updates while managed = %d, want 2 (engine-routed insert)", got)
	}
	// Deletes and relabels have no engine op and are rejected.
	if err := examples.DeleteExample(1); err == nil {
		t.Fatal("DeleteExample succeeded on an engine-managed table")
	}
	if err := examples.RelabelExample(1, 1); err == nil {
		t.Fatal("RelabelExample succeeded on an engine-managed table")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db.AttachedEngine("labeled_papers"); got != nil {
		t.Fatalf("AttachedEngine after Close = %v, want nil", got)
	}
	// Detached: triggers resume maintaining the view...
	if err := examples.InsertExample(2, 1); err != nil {
		t.Fatal(err)
	}
	if got := v.Stats().Updates; got != 3 {
		t.Fatalf("updates after detach = %d, want 3 (trigger resumed)", got)
	}
	// ...and a new engine can attach and serve.
	eng2, err := db.Engine(v, EngineOptions{})
	if err != nil {
		t.Fatalf("re-attach after Close: %v", err)
	}
	defer eng2.Close()
	if err := eng2.Train(3, -1); err != nil {
		t.Fatal(err)
	}
	if got := eng2.ViewStats().Updates; got != 4 {
		t.Fatalf("updates after re-attach = %d, want 4", got)
	}
}
