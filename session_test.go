package hazy

import (
	"math/rand"
	"strings"
	"testing"

	"hazy/internal/feature"
	"hazy/internal/learn"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db.NewSession()
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	r, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("%s\n→ %v", sql, err)
	}
	return r
}

func TestEndToEndSQL(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE papers (id BIGINT, title TEXT) KEY id")
	mustExec(t, s, "CREATE TABLE feedback (id BIGINT, label BIGINT) KEY id")
	mustExec(t, s, `INSERT INTO papers VALUES
		(1, 'relational query optimization and indexing'),
		(2, 'kernel scheduling for multicore operating systems'),
		(3, 'sql views and transaction processing'),
		(4, 'device drivers and interrupt handling'),
		(5, 'join algorithms for relational databases')`)
	mustExec(t, s, `
		CREATE CLASSIFICATION VIEW labeled KEY id
		ENTITIES FROM papers KEY id
		EXAMPLES FROM feedback KEY id LABEL l
		FEATURE FUNCTION tf_bag_of_words
		USING SVM ARCHITECTURE MM STRATEGY HAZY MODE EAGER`)
	// Feedback via plain INSERTs (trigger-maintained).
	mustExec(t, s, "INSERT INTO feedback VALUES (1, 1), (2, -1), (3, 1), (4, -1)")

	// Single entity read.
	r := mustExec(t, s, "SELECT class FROM labeled WHERE id = 5")
	if len(r.Rows) != 1 || r.Rows[0][0] != "1" {
		t.Fatalf("paper 5 should classify as database: %+v", r)
	}
	// All members.
	r = mustExec(t, s, "SELECT id FROM labeled WHERE class = 1")
	if len(r.Rows) < 2 {
		t.Fatalf("members: %+v", r)
	}
	for _, row := range r.Rows {
		if row[0] == "2" || row[0] == "4" {
			t.Fatalf("os paper in database class: %+v", r)
		}
	}
	// Count form.
	r = mustExec(t, s, "SELECT COUNT(*) FROM labeled WHERE class = 1")
	if len(r.Rows) != 1 {
		t.Fatalf("count: %+v", r)
	}
	// Negative class via full scan.
	r = mustExec(t, s, "SELECT id, class FROM labeled WHERE class = -1")
	for _, row := range r.Rows {
		if row[1] != "-1" {
			t.Fatalf("negative scan: %+v", r)
		}
	}
	// Base table select with predicate.
	r = mustExec(t, s, "SELECT title FROM papers WHERE id = 2")
	if len(r.Rows) != 1 || !strings.Contains(r.Rows[0][0], "kernel") {
		t.Fatalf("base select: %+v", r)
	}
	r = mustExec(t, s, "SELECT COUNT(*) FROM papers WHERE id >= 3")
	if r.Rows[0][0] != "3" {
		t.Fatalf("count papers: %+v", r)
	}
	r = mustExec(t, s, "SELECT * FROM feedback WHERE label = 1")
	if len(r.Rows) != 2 {
		t.Fatalf("feedback positive: %+v", r)
	}
}

func TestSQLValidation(t *testing.T) {
	s := newSession(t)
	if _, err := s.Exec("CREATE TABLE t (a BIGINT, b TEXT, c TEXT) KEY a"); err == nil {
		t.Fatal("3-column table accepted")
	}
	if _, err := s.Exec("INSERT INTO missing VALUES (1, 'x')"); err == nil {
		t.Fatal("insert into missing table accepted")
	}
	if _, err := s.Exec("SELECT * FROM missing"); err == nil {
		t.Fatal("select from missing table accepted")
	}
	mustExec(t, s, "CREATE TABLE papers (id BIGINT, title TEXT) KEY id")
	if _, err := s.Exec("INSERT INTO papers VALUES (1, 2)"); err == nil {
		t.Fatal("numeric text accepted")
	}
	if _, err := s.Exec("INSERT INTO papers VALUES ('x', 'y')"); err == nil {
		t.Fatal("string id accepted")
	}
	mustExec(t, s, "CREATE TABLE fb (id BIGINT, label BIGINT) KEY id")
	if _, err := s.Exec("INSERT INTO fb VALUES (1, 7)"); err == nil {
		t.Fatal("label 7 accepted")
	}
	if _, err := s.Exec(`CREATE CLASSIFICATION VIEW v KEY id
		ENTITIES FROM papers KEY id EXAMPLES FROM fb KEY id LABEL l
		FEATURE FUNCTION nope`); err == nil {
		t.Fatal("unknown feature function accepted")
	}
	if _, err := s.Exec(`CREATE CLASSIFICATION VIEW v KEY id
		ENTITIES FROM papers KEY id EXAMPLES FROM fb KEY id LABEL l
		FEATURE FUNCTION tf_bag_of_words ARCHITECTURE QUANTUM`); err == nil {
		t.Fatal("unknown architecture accepted")
	}
	if _, err := s.Exec("SELECT nope FROM papers"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := s.Exec("SELECT * FROM papers WHERE nope = 1"); err == nil {
		t.Fatal("unknown where column accepted")
	}
	if _, err := s.Exec("ATTACH ENGINE TO nope"); err == nil {
		t.Fatal("attach to unknown view accepted")
	}
	if _, err := s.Exec("DETACH ENGINE FROM nope"); err == nil {
		t.Fatal("detach from unknown view accepted")
	}
}

func TestViewArchitectureVariantsViaSQL(t *testing.T) {
	for _, clause := range []string{
		"ARCHITECTURE MM STRATEGY NAIVE MODE LAZY",
		"ARCHITECTURE OD STRATEGY HAZY MODE EAGER",
		"ARCHITECTURE HYBRID MODE LAZY",
	} {
		s := newSession(t)
		mustExec(t, s, "CREATE TABLE p (id BIGINT, txt TEXT) KEY id")
		mustExec(t, s, "CREATE TABLE fb (id BIGINT, label BIGINT) KEY id")
		mustExec(t, s, "INSERT INTO p VALUES (1,'alpha beta'),(2,'gamma delta'),(3,'alpha gamma')")
		mustExec(t, s, `CREATE CLASSIFICATION VIEW v KEY id
			ENTITIES FROM p KEY id EXAMPLES FROM fb KEY id LABEL l
			FEATURE FUNCTION tf_bag_of_words `+clause)
		mustExec(t, s, "INSERT INTO fb VALUES (1,1),(2,-1)")
		r := mustExec(t, s, "SELECT COUNT(*) FROM v WHERE class = 1")
		if len(r.Rows) != 1 {
			t.Fatalf("%s: %+v", clause, r)
		}
	}
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE p (id BIGINT, txt TEXT) KEY id")
	mustExec(t, s, "CREATE TABLE fb (id BIGINT, label BIGINT) KEY id")
	if _, err := s.Exec(`CREATE CLASSIFICATION VIEW v KEY id
		ENTITIES FROM p KEY id EXAMPLES FROM fb KEY id LABEL l
		FEATURE FUNCTION tf_bag_of_words ARCHITECTURE HYBRID STRATEGY NAIVE`); err == nil {
		t.Fatal("hybrid+naive accepted")
	}
	// The engine requires a snapshot-capable view: attaching to an
	// on-disk one is rejected in SQL too.
	mustExec(t, s, `CREATE CLASSIFICATION VIEW odv KEY id
		ENTITIES FROM p KEY id EXAMPLES FROM fb KEY id LABEL l
		FEATURE FUNCTION tf_bag_of_words ARCHITECTURE OD`)
	if _, err := s.Exec("ATTACH ENGINE TO odv"); err == nil {
		t.Fatal("engine attached to an on-disk view")
	}
}

// TestAttachEngineViaSQL drives the per-view engine lifecycle
// entirely through SQL: inserts route through the engine while
// attached (synchronously — read-your-writes holds for the following
// SELECTs), and DETACH drains and resumes triggers.
func TestAttachEngineViaSQL(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE p (id BIGINT, txt TEXT) KEY id")
	mustExec(t, s, "CREATE TABLE fb (id BIGINT, label BIGINT) KEY id")
	mustExec(t, s, "INSERT INTO p VALUES (1,'alpha beta'),(2,'gamma delta'),(3,'alpha gamma')")
	mustExec(t, s, `CREATE CLASSIFICATION VIEW v KEY id
		ENTITIES FROM p KEY id EXAMPLES FROM fb KEY id LABEL l
		FEATURE FUNCTION tf_bag_of_words`)
	mustExec(t, s, "ATTACH ENGINE TO v QUEUE 64 BATCH 16")
	if s.DB().AttachedEngine("v") == nil {
		t.Fatal("engine not registered")
	}
	if _, err := s.Exec("ATTACH ENGINE TO v"); err == nil {
		t.Fatal("double attach accepted")
	}
	mustExec(t, s, "INSERT INTO fb VALUES (1,1),(2,-1)")
	mustExec(t, s, "INSERT INTO p VALUES (4,'alpha alpha beta')")
	r := mustExec(t, s, "SELECT class FROM v WHERE id = 4")
	if len(r.Rows) != 1 || r.Rows[0][0] != "1" {
		t.Fatalf("engined point read: %+v", r)
	}
	r = mustExec(t, s, "SELECT id, class FROM v")
	if len(r.Rows) != 4 {
		t.Fatalf("engined full scan: %+v", r)
	}
	mustExec(t, s, "DETACH ENGINE FROM v")
	if s.DB().AttachedEngine("v") != nil {
		t.Fatal("engine still registered after detach")
	}
	mustExec(t, s, "INSERT INTO fb VALUES (3,1)")
	r = mustExec(t, s, "SELECT COUNT(*) FROM v WHERE class = 1")
	if len(r.Rows) != 1 {
		t.Fatalf("count after detach: %+v", r)
	}
}

// TestAutomaticModelSelection: a view declared without USING runs the
// paper's §2.1 model selection over the warm examples when enough are
// present, and falls back to the SVM otherwise.
func TestAutomaticModelSelection(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	papers, _ := db.CreateEntityTable("papers", "title")
	feedback, _ := db.CreateExampleTable("feedback")
	r := rand.New(rand.NewSource(41))
	for id := int64(0); id < 40; id++ {
		if err := papers.InsertText(id, title(r, id%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}

	// Too few warm examples: default SVM, no selection.
	v1, err := db.CreateClassificationView(ViewSpec{
		Name: "few", Entities: "papers", Examples: "feedback",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v1.Method(); got != learn.MethodSVM {
		t.Fatalf("method with no warm examples = %q, want %q", got, learn.MethodSVM)
	}

	// Warm the examples table past the selection threshold and
	// declare another automatic view: the selection runs and lands on
	// a valid method.
	for id := int64(0); id < int64(autoSelectMin+8); id++ {
		label := -1
		if id%2 == 0 {
			label = 1
		}
		if err := feedback.InsertExample(id, label); err != nil {
			t.Fatal(err)
		}
	}
	v2, err := db.CreateClassificationView(ViewSpec{
		Name: "auto", Entities: "papers", Examples: "feedback",
	})
	if err != nil {
		t.Fatal(err)
	}
	switch v2.Method() {
	case learn.MethodSVM, learn.MethodLogistic, learn.MethodRidge:
	default:
		t.Fatalf("selected method %q", v2.Method())
	}
	// An explicit USING clause is never overridden.
	v3, err := db.CreateClassificationView(ViewSpec{
		Name: "explicit", Entities: "papers", Examples: "feedback", Method: "ridge",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v3.Method(); got != learn.MethodRidge {
		t.Fatalf("explicit method = %q, want ridge", got)
	}
	// The selection is deterministic: a second DB over the same data
	// picks the same method (what makes manifest recovery stable).
	dir2 := t.TempDir()
	db2, err := Open(dir2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	p2, _ := db2.CreateEntityTable("papers", "title")
	f2, _ := db2.CreateExampleTable("feedback")
	papers.Scan(func(id int64, text string) error { return p2.InsertText(id, text) })
	feedback.Scan(func(id int64, label int) error { return f2.InsertExample(id, label) })
	v4, err := db2.CreateClassificationView(ViewSpec{
		Name: "auto", Entities: "papers", Examples: "feedback",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v4.Method() != v2.Method() {
		t.Fatalf("selection not deterministic: %q vs %q", v4.Method(), v2.Method())
	}
}

// TestConcurrentScanAndEngineWrites: SQL base-table scans must be
// safe against the engine goroutine durably inserting into the same
// tables (the relation layer's internal locks) — run under -race.
func TestConcurrentScanAndEngineWrites(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE p (id BIGINT, txt TEXT) KEY id")
	mustExec(t, s, "CREATE TABLE fb (id BIGINT, label BIGINT) KEY id")
	mustExec(t, s, "INSERT INTO p VALUES (1,'alpha beta'),(2,'gamma delta')")
	mustExec(t, s, `CREATE CLASSIFICATION VIEW v KEY id
		ENTITIES FROM p KEY id EXAMPLES FROM fb KEY id LABEL l
		FEATURE FUNCTION tf_bag_of_words`)
	mustExec(t, s, "ATTACH ENGINE TO v")

	done := make(chan error, 1)
	go func() {
		s2 := s.DB().NewSession()
		for id := int64(100); id < 200; id++ {
			if err := s2.AddAsync("v", id, "alpha gamma text"); err != nil {
				done <- err
				return
			}
		}
		done <- s2.Flush("v")
	}()
	for i := 0; i < 100; i++ {
		if _, err := s.Exec("SELECT COUNT(*) FROM p"); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	r := mustExec(t, s, "SELECT COUNT(*) FROM p")
	if r.Rows[0][0] != "102" {
		t.Fatalf("entities after concurrent ingest = %v", r.Rows)
	}
}

// TestPendingViewRecovery: a manifest view over an app-registered
// feature function must not brick Open — it is deferred until the
// app registers the function and calls RecoverPendingViews.
func TestPendingViewRecovery(t *testing.T) {
	dir := t.TempDir()
	{
		db, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		db.Registry().Register("custom_tfidf", func() feature.Func { return feature.NewTFIDF() })
		papers, _ := db.CreateEntityTable("papers", "title")
		if _, err := db.CreateExampleTable("feedback"); err != nil {
			t.Fatal(err)
		}
		papers.InsertText(1, "relational database query optimization")
		if _, err := db.CreateClassificationView(ViewSpec{
			Name: "v", Entities: "papers", Examples: "feedback", FeatureFunction: "custom_tfidf",
		}); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen WITHOUT the custom function: Open succeeds, the view is
	// pending, the tables are live.
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open bricked by unregistered feature function: %v", err)
	}
	defer db.Close()
	if got := db.PendingViews(); len(got) != 1 || got[0] != "v" {
		t.Fatalf("PendingViews = %v", got)
	}
	if _, err := db.View("v"); err == nil {
		t.Fatal("pending view available before recovery")
	}
	// Register and recover.
	db.Registry().Register("custom_tfidf", func() feature.Func { return feature.NewTFIDF() })
	if err := db.RecoverPendingViews(); err != nil {
		t.Fatal(err)
	}
	if got := db.PendingViews(); len(got) != 0 {
		t.Fatalf("still pending after recovery: %v", got)
	}
	v, err := db.View("v")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Label(1); err != nil {
		t.Fatal(err)
	}
}

// TestPerSessionFlushEmbedded: two embedded sessions over one engined
// view; each session's Flush reports only its own async failures.
func TestPerSessionFlushEmbedded(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	papers, _ := db.CreateEntityTable("papers", "title")
	if _, err := db.CreateExampleTable("feedback"); err != nil {
		t.Fatal(err)
	}
	papers.InsertText(1, "relational database query optimization")
	if _, err := db.CreateClassificationView(ViewSpec{
		Name: "v", Entities: "papers", Examples: "feedback",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachEngine("v", EngineOptions{}); err != nil {
		t.Fatal(err)
	}
	s1, s2 := db.NewSession(), db.NewSession()

	if err := s1.TrainAsync("v", 999, 1); err != nil { // unknown entity: fails at apply
		t.Fatal(err)
	}
	if err := s2.TrainAsync("v", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s2.Flush("v"); err != nil {
		t.Fatalf("session 2 flush collected a foreign error: %v", err)
	}
	if err := s1.Flush("v"); err == nil {
		t.Fatal("session 1 flush lost its own error")
	}
	if err := s1.Flush("v"); err != nil {
		t.Fatalf("error reported twice: %v", err)
	}
	if label, err := s2.Label("v", 1); err != nil || label != 1 {
		t.Fatalf("Label = %d, %v", label, err)
	}
}
