package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"hazy/internal/core"
)

// RunFig3 regenerates Figure 3: data set statistics.
func RunFig3(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "Figure 3: Data Set Statistics (synthetic stand-ins, scaled)")
	t := newTable("Data set", "Abbrev", "Size", "# Entities", "|F|", "avg nnz")
	for _, d := range datasets(cfg) {
		st := d.Stats()
		t.add(st.Name, st.Name, fmtBytes(st.SizeBytes),
			fmt.Sprintf("%d", st.Entities), fmt.Sprintf("%d", st.Features),
			fmt.Sprintf("%.0f", st.AvgNonZero))
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: FC 73MB/582k/54/54, DB 25MB/124k/41k/7, CS 1.3GB/721k/682k/60")
	return nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fK", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// RunFig4A regenerates Figure 4(A): eager Update throughput for five
// technique/architecture combinations over the three data sets.
func RunFig4A(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "Figure 4(A): Eager Update (updates/s), warm model")
	t := newTable("Technique", "FC", "DB", "CS")
	for _, tech := range fig4Techniques {
		var rates []float64
		for _, d := range datasets(cfg) {
			v, err := buildView(cfg, d, tech.Arch, tech.Strat, core.Eager,
				fmt.Sprintf("fig4a-%s-%s", tech.Label, d.Spec.Name))
			if err != nil {
				return err
			}
			stream := d.Stream(cfg.Updates)
			start := time.Now()
			for _, ex := range stream {
				if err := v.Update(ex.F, ex.Label); err != nil {
					return err
				}
			}
			rates = append(rates, rate(len(stream), time.Since(start)))
			closeView(v)
		}
		t.addf(tech.Label, rates...)
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: OD Naive 0.4/2.1/0.2 · OD Hazy 2.0/6.8/0.2 · Hybrid 2.0/6.6/0.2")
	fmt.Fprintln(w, "         MM Naive 5.3/33.1/1.8 · MM Hazy 49.7/160.5/7.2")
	return nil
}

// RunFig4B regenerates Figure 4(B): lazy All Members throughput.
// Each measured scan is preceded by one (unmeasured) update so the
// model keeps drifting the way the paper's update stream does.
func RunFig4B(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "Figure 4(B): Lazy All Members (scans/s), warm model")
	t := newTable("Technique", "FC", "DB", "CS")
	scans := cfg.Updates
	for _, tech := range fig4Techniques {
		var rates []float64
		for _, d := range datasets(cfg) {
			v, err := buildView(cfg, d, tech.Arch, tech.Strat, core.Lazy,
				fmt.Sprintf("fig4b-%s-%s", tech.Label, d.Spec.Name))
			if err != nil {
				return err
			}
			stream := d.Stream(scans)
			var scanTime time.Duration
			for _, ex := range stream {
				if err := v.Update(ex.F, ex.Label); err != nil {
					return err
				}
				start := time.Now()
				if _, err := v.CountMembers(); err != nil {
					return err
				}
				scanTime += time.Since(start)
			}
			rates = append(rates, rate(scans, scanTime))
			closeView(v)
		}
		t.addf(tech.Label, rates...)
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: OD Naive 1.2/12.2/0.5 · OD Hazy 3.5/46.9/2.0 · Hybrid 8.0/48.8/2.1")
	fmt.Fprintln(w, "         MM Naive 10.4/65.7/2.4 · MM Hazy 410.1/2.8k/105.7")
	return nil
}

// RunFig5 regenerates Figure 5: Single Entity read throughput for the
// three architectures (Hazy strategy) in eager and lazy modes.
func RunFig5(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "Figure 5: Single Entity reads (reads/s), 1% hybrid buffer")
	archs := []struct {
		label string
		arch  core.Arch
	}{
		{"OD", core.OnDisk},
		{"Hybrid", core.HybridArch},
		{"MM", core.MainMemory},
	}
	for _, mode := range []core.Mode{core.Eager, core.Lazy} {
		t := newTable("Arch ("+mode.String()+")", "FC", "DB", "CS")
		for _, a := range archs {
			var rates []float64
			for _, d := range datasets(cfg) {
				v, err := buildView(cfg, d, a.arch, core.HazyStrategy, mode,
					fmt.Sprintf("fig5-%s-%s-%s", a.label, mode, d.Spec.Name))
				if err != nil {
					return err
				}
				// A short update burst so watermarks are realistic.
				for _, ex := range d.Stream(50) {
					if err := v.Update(ex.F, ex.Label); err != nil {
						return err
					}
				}
				r := rand.New(rand.NewSource(77))
				n := len(d.Entities)
				start := time.Now()
				for i := 0; i < cfg.Reads; i++ {
					if _, err := v.Label(int64(r.Intn(n))); err != nil {
						return err
					}
				}
				rates = append(rates, rate(cfg.Reads, time.Since(start)))
				closeView(v)
			}
			t.addf(a.label, rates...)
		}
		t.write(w)
	}
	fmt.Fprintln(w, "  paper (eager): OD 6.7k/6.8k/6.6k · Hybrid 13.4k/13.0k/12.7k · MM 13.5k/13.7k/12.7k")
	fmt.Fprintln(w, "  paper (lazy):  OD 5.9k/6.3k/5.7k · Hybrid 13.4k/13.6k/12.2k · MM 13.4k/13.5k/12.2k")
	return nil
}

// closeView releases file handles for disk-backed views.
func closeView(v core.View) {
	type closer interface{ Close() error }
	if c, ok := v.(closer); ok {
		c.Close()
	}
}
