package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig runs experiments at toy scale so the whole harness is
// exercised in CI without taking minutes.
func tinyConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Scale:   0.02,
		Warm:    50,
		Updates: 12,
		Reads:   200,
		Dir:     t.TempDir(),
	}.WithDefaults()
}

// TestEveryExperimentRuns drives each paper artifact end to end at
// tiny scale and checks it produces a non-trivial table.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is not short")
	}
	cfg := tinyConfig(t)
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(cfg, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(strings.Split(out, "\n")) < 4 {
				t.Fatalf("%s produced almost no output:\n%s", e.ID, out)
			}
		})
	}
}

func TestFindAndDefaults(t *testing.T) {
	if _, ok := Find("fig4a"); !ok {
		t.Fatal("fig4a not found")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("bogus experiment found")
	}
	cfg := Config{}.WithDefaults()
	if cfg.Scale != 1 || cfg.Warm == 0 || cfg.Updates == 0 || cfg.Reads == 0 || cfg.PoolPages == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := newTable("A", "B", "Blong")
	tb.add("x", "y", "z")
	tb.addf("r", 1234, 0.5)
	var buf bytes.Buffer
	tb.write(&buf)
	out := buf.String()
	if !strings.Contains(out, "1.23k") || !strings.Contains(out, "0.50") {
		t.Fatalf("rate formatting wrong:\n%s", out)
	}
	if fmtRate(25000) != "25.0k" || fmtRate(42) != "42" {
		t.Fatal("fmtRate tiers wrong")
	}
	if fmtBytes(5<<30) == "" || fmtBytes(100) != "100B" || fmtBytes(2048) != "2.0K" {
		t.Fatal("fmtBytes wrong")
	}
}
