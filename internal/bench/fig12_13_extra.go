package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"hazy/internal/core"
	"hazy/internal/dataset"
	"hazy/internal/feature"
	"hazy/internal/learn"
	"hazy/internal/multiclass"
	"hazy/internal/skiing"
)

// RunFig12A regenerates Figure 12(A): lazy All Members throughput as
// the feature length grows, using random Fourier features
// (App. B.5.3) to scale a dense base data set from 300 to 1500
// dimensions — naive vs Hazy, main-memory and on-disk.
func RunFig12A(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "Figure 12(A): Lazy All Members reads/s vs feature length (random features)")
	lengths := []int{300, 600, 900, 1200, 1500}
	base := dataset.Generate(dataset.Forest.Scale(cfg.Scale * 0.3))
	techs := []technique{
		{"Naive-OD", core.OnDisk, core.Naive},
		{"Naive-MM", core.MainMemory, core.Naive},
		{"Hazy-OD", core.OnDisk, core.HazyStrategy},
		{"Hazy-MM", core.MainMemory, core.HazyStrategy},
	}
	header := []string{"Technique"}
	for _, l := range lengths {
		header = append(header, fmt.Sprintf("%d", l))
	}
	t := newTable(header...)
	for _, tech := range techs {
		row := []string{tech.Label}
		for _, length := range lengths {
			rff := feature.NewRFF(feature.Gaussian, base.Spec.Features, length, 1.0, 42)
			ents := make([]core.Entity, len(base.Entities))
			for i, e := range base.Entities {
				ents[i] = core.Entity{ID: e.ID, F: rff.Transform(e.F)}
			}
			warm := make([]learn.Example, cfg.Warm/2)
			for i := range warm {
				ex := base.Example()
				warm[i] = learn.Example{F: rff.Transform(ex.F), Label: ex.Label}
			}
			opts := core.Options{
				Mode: core.Lazy,
				Norm: 2,
				SGD:  benchSGD,
				Warm: warm,
			}
			v, err := core.New(tech.Arch, tech.Strat,
				fmt.Sprintf("%s/fig12a-%s-%d", cfg.Dir, tech.Label, length),
				cfg.PoolPages, ents, opts)
			if err != nil {
				return err
			}
			// A short drift burst so the lazy structures see real
			// watermark movement before the measured scans.
			for i := 0; i < 30; i++ {
				ex := base.Example()
				if err := v.Update(rff.Transform(ex.F), ex.Label); err != nil {
					return err
				}
			}
			scans := 30
			start := time.Now()
			for i := 0; i < scans; i++ {
				if _, err := v.CountMembers(); err != nil {
					return err
				}
			}
			row = append(row, fmtRate(rate(scans, time.Since(start))))
			closeView(v)
		}
		t.add(row...)
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: Hazy's advantage grows with feature length — it avoids the")
	fmt.Fprintln(w, "         dot products that dominate as vectors lengthen.")
	return nil
}

// RunFig12B regenerates Figure 12(B): eager multiclass update
// throughput vs number of labels, Naive-MM vs Hazy-MM, on the
// Forest-like multiclass set with classes coalesced down to k.
func RunFig12B(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "Figure 12(B): Multiclass eager updates/s vs # labels (FC-like)")
	d := dataset.Generate(dataset.Forest.Scale(cfg.Scale * 0.5))
	ids := make([]int64, len(d.Entities))
	for i, e := range d.Entities {
		ids[i] = e.ID
	}
	t := newTable("# Labels", "Naive-MM", "Hazy-MM")
	for _, k := range []int{2, 3, 4, 5, 6, 7} {
		row := []string{fmt.Sprintf("%d", k)}
		for _, strat := range []core.Strategy{core.Naive, core.HazyStrategy} {
			mc, err := multiclass.New(k, ids, func(int) (core.View, error) {
				return core.NewMemView(d.Entities, strat, core.Options{
					Mode: core.Eager, Norm: 2,
					SGD:  benchSGD,
					Warm: d.Stream(cfg.Warm / 4),
				}), nil
			})
			if err != nil {
				return err
			}
			updates := cfg.Updates / 3
			start := time.Now()
			for i := 0; i < updates; i++ {
				f, cls := d.MulticlassExample()
				if err := mc.Update(f, cls%k); err != nil {
					return err
				}
			}
			row = append(row, fmtRate(rate(updates, time.Since(start))))
		}
		t.add(row...)
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: Hazy-MM holds an order-of-magnitude lead over Naive-MM at every")
	fmt.Fprintln(w, "         label count; both decline ~linearly in the number of labels.")
	return nil
}

// RunFig13 regenerates Figure 13: the number of tuples between low
// and high water as updates accumulate on a warm model, for
// Forest-like and DBLife-like data.
func RunFig13(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "Figure 13: tuples between low and high water vs # updates (warm model)")
	for _, spec := range []dataset.Spec{dataset.Forest, dataset.DBLife} {
		d := dataset.Generate(spec.Scale(cfg.Scale))
		v := core.NewMemView(d.Entities, core.HazyStrategy, core.Options{
			Mode: core.Eager, Norm: normFor(d),
			SGD:  driftSGD,
			Warm: d.Stream(cfg.Warm / 2),
		})
		t := newTable("# Updates", "Band tuples", "Fraction", "Reorgs")
		steps := []int{0, 250, 500, 1000, 1500, 2000}
		done := 0
		for _, target := range steps {
			for done < target {
				ex := d.Example()
				if err := v.Update(ex.F, ex.Label); err != nil {
					return err
				}
				done++
			}
			st := v.Stats()
			t.add(fmt.Sprintf("%d", target), fmt.Sprintf("%d", st.BandTuples),
				fmt.Sprintf("%.1f%%", 100*float64(st.BandTuples)/float64(len(d.Entities))),
				fmt.Sprintf("%d", st.Reorgs))
		}
		fmt.Fprintf(w, " %s (%d entities):\n", d.Spec.Name, len(d.Entities))
		t.write(w)
	}
	fmt.Fprintln(w, "  paper: in steady state ~1% of tuples sit between low and high water")
	fmt.Fprintln(w, "         (e.g. DBLife: 4811 of 122k).")
	return nil
}

// RunSkiing empirically validates Lemma 3.2 / Theorem 3.3: the
// measured competitive ratio of Skiing on random monotone drift
// instances stays below 1+α+σ, approaching 2 as σ→0.
func RunSkiing(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "Skiing competitive ratio vs exact OPT (random drift instances)")
	t := newTable("σ", "α*", "bound 1+α+σ", "worst measured", "mean measured")
	r := rand.New(rand.NewSource(1))
	for _, sigma := range []float64{0.01, 0.1, 0.5, 1.0} {
		alpha := skiing.AlphaFor(sigma)
		const S = 10.0
		var worst, sum float64
		const trials = 30
		for trial := 0; trial < trials; trial++ {
			n := 60 + r.Intn(60)
			drift := make([]float64, n)
			for i := range drift {
				if r.Float64() < 0.3 {
					drift[i] = r.Float64() * sigma * S / 2
				}
			}
			costs := skiing.DriftCosts{Drift: drift, Scale: 1, S: sigma * S}
			ratio := skiing.Ratio(alpha, S, costs)
			sum += ratio
			if ratio > worst {
				worst = ratio
			}
		}
		t.add(fmt.Sprintf("%.2f", sigma), fmt.Sprintf("%.3f", alpha),
			fmt.Sprintf("%.3f", skiing.BoundFor(sigma)),
			fmt.Sprintf("%.3f", worst), fmt.Sprintf("%.3f", sum/trials))
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: ρ(Skiing) = 1+α+σ is optimal among deterministic online")
	fmt.Fprintln(w, "         strategies and → 2 as data grows (σ → 0).")
	return nil
}

// RunAblation compares the Skiing policy against the ski-rental
// endpoints it interpolates between — never reorganizing (incremental
// steps over an ever-widening band) and reorganizing every round
// (paying the sort each update). DESIGN.md lists this as the design
// ablation for the paper's central mechanism.
func RunAblation(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "Ablation: reorganization policy — eager Hazy-MM updates/s (DB-like)")
	d := dataset.Generate(dataset.DBLife.Scale(cfg.Scale))
	t := newTable("Policy", "Updates/s", "Reorgs", "Band at end")
	warm := d.Stream(cfg.Warm / 4)
	drift := d.Stream(cfg.Updates * 4)
	for _, p := range []core.ReorgPolicy{core.ReorgSkiing, core.ReorgNever, core.ReorgAlways} {
		v := core.NewMemView(d.Entities, core.HazyStrategy, core.Options{
			Mode: core.Eager, Norm: normFor(d), Reorg: p,
			SGD:  driftSGD,
			Warm: warm,
		})
		start := time.Now()
		for _, ex := range drift {
			if err := v.Update(ex.F, ex.Label); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		st := v.Stats()
		t.add(p.String(), fmtRate(rate(len(drift), elapsed)),
			fmt.Sprintf("%d", st.Reorgs), fmt.Sprintf("%d", st.BandTuples))
	}
	t.write(w)
	fmt.Fprintln(w, "  expectation: Skiing ≥ both endpoints (ski-rental; Thm 3.3 bounds its")
	fmt.Fprintln(w, "  waste at 2x OPT, while either endpoint can be arbitrarily bad).")
	return nil
}

// RunAlpha regenerates the App. C.2 α-sensitivity experiment: eager
// Hazy-MM update throughput as the Skiing parameter varies.
func RunAlpha(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "App. C.2: α-sensitivity — eager Hazy-MM updates/s (DB-like)")
	d := dataset.Generate(dataset.DBLife.Scale(cfg.Scale))
	t := newTable("α", "Updates/s", "Reorgs")
	for _, alpha := range []float64{0.25, 0.5, 1, 2, 4} {
		v := core.NewMemView(d.Entities, core.HazyStrategy, core.Options{
			Mode: core.Eager, Norm: normFor(d), Alpha: alpha,
			SGD:  driftSGD,
			Warm: d.Stream(cfg.Warm / 4),
		})
		updates := cfg.Updates * 2
		start := time.Now()
		for i := 0; i < updates; i++ {
			ex := d.Example()
			if err := v.Update(ex.F, ex.Label); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		t.add(fmt.Sprintf("%.2f", alpha), fmtRate(rate(updates, elapsed)),
			fmt.Sprintf("%d", v.Stats().Reorgs))
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: tuning α buys ~10% over the default α=1.")
	return nil
}
