// Package bench regenerates every table and figure of the paper's
// evaluation (§4 and App. C) over the synthetic data sets. Each
// experiment prints a text table shaped like the paper's and, where
// meaningful, the paper's reference numbers so shape comparisons
// (who wins, by what factor) are immediate.
package bench

import (
	"fmt"
	"io"
	"math"
	"path/filepath"
	"strings"
	"time"

	"hazy/internal/core"
	"hazy/internal/dataset"
	"hazy/internal/learn"
)

// Config parameterizes a harness run.
type Config struct {
	// Scale multiplies every data set's entity count (1.0 = the
	// packaged laptop-scale defaults).
	Scale float64
	// Warm is the number of warm-model training examples (paper: 12k).
	Warm int
	// Updates is the number of measured updates (paper: 3k).
	Updates int
	// Reads is the number of measured Single Entity reads (paper: 15k).
	Reads int
	// Dir hosts the on-disk views' page files.
	Dir string
	// PoolPages sizes on-disk buffer pools.
	PoolPages int
}

// WithDefaults fills unset fields with the harness defaults.
func (c Config) WithDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Warm == 0 {
		c.Warm = 2000
	}
	if c.Updates == 0 {
		c.Updates = 300
	}
	if c.Reads == 0 {
		c.Reads = 15000
	}
	if c.PoolPages == 0 {
		c.PoolPages = 2048 // 16 MiB per on-disk view
	}
	return c
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config, w io.Writer) error
}

// All lists every experiment in paper order.
var All = []Experiment{
	{"fig3", "Figure 3: data set statistics", RunFig3},
	{"fig4a", "Figure 4(A): eager Update throughput", RunFig4A},
	{"fig4b", "Figure 4(B): lazy All Members throughput", RunFig4B},
	{"fig5", "Figure 5: Single Entity read throughput", RunFig5},
	{"fig6a", "Figure 6(A): hybrid memory usage", RunFig6A},
	{"fig6b", "Figure 6(B): Single Entity reads vs buffer size", RunFig6B},
	{"fig10", "Figure 10: batch SVM vs incremental SGD vs Hazy", RunFig10},
	{"fig11a", "Figure 11(A): scalability in data size", RunFig11A},
	{"fig11b", "Figure 11(B): scale-up in reader threads", RunFig11B},
	{"fig12a", "Figure 12(A): feature-length sensitivity", RunFig12A},
	{"fig12b", "Figure 12(B): multiclass update throughput", RunFig12B},
	{"fig13", "Figure 13: tuples between low and high water", RunFig13},
	{"skiing", "Lemma 3.2/Thm 3.3: Skiing competitive ratio", RunSkiing},
	{"alpha", "App. C.2: α-sensitivity of Skiing", RunAlpha},
	{"ablation", "Ablation: Skiing vs never/always reorganizing", RunAblation},
	{"conc", "Concurrent engine: snapshot reads + batched ingest vs single mutex", RunConcurrent},
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// datasets returns the three §4 performance data sets at scale.
func datasets(cfg Config) []*dataset.Data {
	return []*dataset.Data{
		dataset.Generate(dataset.Forest.Scale(cfg.Scale)),
		dataset.Generate(dataset.DBLife.Scale(cfg.Scale)),
		dataset.Generate(dataset.Citeseer.Scale(cfg.Scale)),
	}
}

// normFor returns the watermark norm used for a data set: p=2 for
// dense ℓ2-normalized data, p=∞ for ℓ1-normalized text (§3.2.2).
func normFor(d *dataset.Data) float64 {
	if d.Spec.Dense {
		return 2
	}
	return math.Inf(1)
}

// benchSGD is the trainer configuration used across the harness: λ
// large enough that the Bottou step size has decayed by the end of
// the warm phase, giving the converged "warm model" regime of §4.1
// (where per-update model drift, and hence the water band, is small).
var benchSGD = learn.SGDConfig{Eta0: 0.5, Lambda: 1e-2}

// driftSGD is the barely-converged regime (slow step decay): the
// model keeps moving with every update, so the water band grows and
// the reorganize-or-not decision actually matters. Experiments about
// band dynamics (fig6b, fig13, alpha, ablation) use it.
var driftSGD = learn.SGDConfig{Eta0: 0.5, Lambda: 1e-4}

// buildView constructs a view over a data set with a warm model.
func buildView(cfg Config, d *dataset.Data, arch core.Arch, strat core.Strategy, mode core.Mode, name string) (core.View, error) {
	opts := core.Options{
		Mode: mode,
		Norm: normFor(d),
		SGD:  benchSGD,
		Warm: d.Stream(cfg.Warm),
	}
	dir := filepath.Join(cfg.Dir, name)
	return core.New(arch, strat, dir, cfg.PoolPages, d.Entities, opts)
}

// technique is one row of the §4.1 grids.
type technique struct {
	Label string
	Arch  core.Arch
	Strat core.Strategy
}

// fig4Techniques is the row order of Figure 4.
var fig4Techniques = []technique{
	{"OD Naive", core.OnDisk, core.Naive},
	{"OD Hazy", core.OnDisk, core.HazyStrategy},
	{"OD Hybrid", core.HybridArch, core.HazyStrategy},
	{"MM Naive", core.MainMemory, core.Naive},
	{"MM Hazy", core.MainMemory, core.HazyStrategy},
}

// rate renders "n ops in d" as ops/second.
func rate(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// table is a tiny fixed-width text-table builder.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(label string, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmtRate(v))
	}
	t.add(cells...)
}

// fmtRate renders a rate compactly (2.8k style above 1000).
func fmtRate(v float64) string {
	switch {
	case v >= 10000:
		return fmt.Sprintf("%.1fk", v/1000)
	case v >= 1000:
		return fmt.Sprintf("%.2fk", v/1000)
	case v >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			width := len(c)
			if i < len(widths) && widths[i] > width {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}
