package bench

import (
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	root "hazy"
	"hazy/internal/server"
)

// concStack is one served deployment for the concurrency experiment:
// a full database + view behind a Server in either legacy
// single-mutex or engine mode, driven at the statement layer.
type concStack struct {
	db    *root.DB
	serve *server.Server
	close func()
}

func concTitle(id int64) string {
	if id%2 == 0 {
		return fmt.Sprintf("kernel scheduler interrupt driver paging memory %d", id)
	}
	return fmt.Sprintf("relational database query optimization index transactions %d", id)
}

func buildConcStack(cfg Config, name string, engineMode bool, entities int) (*concStack, error) {
	db, err := root.Open(filepath.Join(cfg.Dir, name))
	if err != nil {
		return nil, err
	}
	papers, err := db.CreateEntityTable("papers", "title")
	if err != nil {
		return nil, err
	}
	feedback, err := db.CreateExampleTable("feedback")
	if err != nil {
		return nil, err
	}
	for id := int64(1); id <= int64(entities); id++ {
		if err := papers.InsertText(id, concTitle(id)); err != nil {
			return nil, err
		}
	}
	view, err := db.CreateClassificationView(root.ViewSpec{
		Name: "labeled", Entities: "papers", Examples: "feedback",
	})
	if err != nil {
		return nil, err
	}
	warm := 20
	if warm > entities {
		warm = entities
	}
	for id := int64(1); id <= int64(warm); id++ {
		label := 1
		if id%2 == 0 {
			label = -1
		}
		if err := feedback.InsertExample(id, label); err != nil {
			return nil, err
		}
	}
	// db.Close drains any attached engine before closing storage.
	st := &concStack{db: db, close: func() { db.Close() }}
	if engineMode {
		if _, err := db.AttachEngine(view.Name(), root.EngineOptions{}); err != nil {
			return nil, err
		}
	}
	st.serve = server.New(db, server.Options{DefaultView: view.Name()})
	return st, nil
}

// concLabelRate runs total LABEL statements split across clients
// goroutines and returns ops/sec; any ERR response fails the
// measurement (timing error paths would report nonsense rates).
func concLabelRate(st *concStack, clients, total, entities int) (float64, error) {
	per := total / clients
	if per == 0 {
		per = 1
	}
	var wg sync.WaitGroup
	var failures atomic.Int64
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := 1 + (c*per+i)%entities
				if resp, _ := st.serve.Exec(fmt.Sprintf("LABEL %d", id)); strings.HasPrefix(resp, "ERR") {
					failures.Add(1)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		return 0, fmt.Errorf("bench: %d LABEL clients saw ERR responses", n)
	}
	return rate(clients*per, time.Since(start)), nil
}

// concIngestRate runs pairs ADD+TRAIN ingest pairs split across
// clients goroutines (async through the engine, with a final FLUSH
// barrier included in the measurement) and returns pairs/sec.
func concIngestRate(st *concStack, engineMode bool, clients, pairs int, nextID *int64) (float64, error) {
	per := pairs / clients
	if per == 0 {
		per = 1
	}
	add, train := "ADD", "TRAIN"
	if engineMode {
		add, train = "ADDA", "TRAINA"
	}
	var wg sync.WaitGroup
	var failures atomic.Int64
	start := time.Now()
	for c := 0; c < clients; c++ {
		base := *nextID + int64(c*per)
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < int64(per); i++ {
				id := base + i
				if resp, _ := st.serve.Exec(fmt.Sprintf("%s %d %s", add, id, concTitle(id))); strings.HasPrefix(resp, "ERR") {
					failures.Add(1)
					return
				}
				label := "+1"
				if id%2 == 0 {
					label = "-1"
				}
				if resp, _ := st.serve.Exec(fmt.Sprintf("%s %d %s", train, id, label)); strings.HasPrefix(resp, "ERR") {
					failures.Add(1)
					return
				}
			}
		}(base)
	}
	wg.Wait()
	if engineMode {
		if resp, _ := st.serve.Exec("FLUSH"); resp != "OK" {
			return 0, fmt.Errorf("bench: FLUSH after ingest: %s", resp)
		}
	}
	*nextID += int64(clients * per)
	if n := failures.Load(); n > 0 {
		return 0, fmt.Errorf("bench: %d ingest clients saw ERR responses", n)
	}
	return rate(clients*per, time.Since(start)), nil
}

// RunConcurrent measures the concurrent maintenance engine against
// the seed's single-mutex server: LABEL read throughput at 1, 4, and
// NumCPU clients (lock-free snapshot reads vs one statement at a
// time), then ADD+TRAIN ingest throughput at NumCPU clients (batched
// async queue vs per-statement synchronous maintenance).
func RunConcurrent(cfg Config, w io.Writer) error {
	procs := runtime.NumCPU()
	clientCounts := []int{1, 4}
	if procs != 1 && procs != 4 {
		clientCounts = append(clientCounts, procs)
	}
	entities := int(2000 * cfg.Scale)
	if entities < 50 {
		entities = 50
	}

	mutex, err := buildConcStack(cfg, "conc-mutex", false, entities)
	if err != nil {
		return err
	}
	defer mutex.close()
	engine, err := buildConcStack(cfg, "conc-engine", true, entities)
	if err != nil {
		return err
	}
	defer engine.close()

	fmt.Fprintf(w, "  %d entities, GOMAXPROCS=%d; statement-layer (no TCP) throughput\n", entities, procs)
	tb := newTable("LABEL clients", "mutex/s", "engine/s", "speedup")
	for _, clients := range clientCounts {
		m, err := concLabelRate(mutex, clients, cfg.Reads, entities)
		if err != nil {
			return err
		}
		e, err := concLabelRate(engine, clients, cfg.Reads, entities)
		if err != nil {
			return err
		}
		tb.add(fmt.Sprintf("%d", clients), fmtRate(m), fmtRate(e), fmt.Sprintf("%.2fx", e/m))
	}
	tb.write(w)

	pairs := cfg.Updates
	nextMutex := int64(entities + 1)
	nextEngine := int64(entities + 1)
	ti := newTable("ADD+TRAIN clients", "mutex/s", "engine/s", "speedup")
	mi, err := concIngestRate(mutex, false, procs, pairs, &nextMutex)
	if err != nil {
		return err
	}
	ei, err := concIngestRate(engine, true, procs, pairs, &nextEngine)
	if err != nil {
		return err
	}
	ti.add(fmt.Sprintf("%d", procs), fmtRate(mi), fmtRate(ei), fmt.Sprintf("%.2fx", ei/mi))
	ti.write(w)

	st := engine.serve
	if resp, _ := st.Exec("STATS"); !strings.HasPrefix(resp, "ERR") {
		fmt.Fprintf(w, "  engine %s\n", resp)
	}
	return nil
}
