package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"hazy/internal/core"
	"hazy/internal/dataset"
	"hazy/internal/learn"
)

// RunFig6A regenerates Figure 6(A): the hybrid's memory usage — total
// in-memory bytes (ε-map + buffer) and the ε-map alone — against the
// full data set size.
func RunFig6A(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "Figure 6(A): Hybrid memory usage (1% buffer)")
	t := newTable("Data", "Data set size", "Total in-mem", "ε-map")
	for _, d := range datasets(cfg) {
		v, err := buildView(cfg, d, core.HybridArch, core.HazyStrategy, core.Eager,
			"fig6a-"+d.Spec.Name)
		if err != nil {
			return err
		}
		st := v.Stats()
		ds := d.Stats()
		t.add(d.Spec.Name, fmtBytes(ds.SizeBytes),
			fmtBytes(st.EpsMapBytes+st.BufferBytes), fmtBytes(st.EpsMapBytes))
		closeView(v)
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: FC 10.4MB total / 6.7MB ε-map · DB 1.6/1.4MB · CS 13.7/5.4MB")
	fmt.Fprintln(w, "         (CS data set 1.3GB vs 5.4MB ε-map: 245x smaller)")
	return nil
}

// RunFig6B regenerates Figure 6(B): Single Entity read rate as the
// hybrid buffer grows, for models with ~1%, ~10%, and ~50% of tuples
// between low and high water (S1/S10/S50).
func RunFig6B(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "Figure 6(B): Single Entity reads vs hybrid buffer size (DB-like)")
	d := dataset.Generate(dataset.DBLife.Scale(cfg.Scale))
	bufSizes := []float64{0.005, 0.01, 0.05, 0.10, 0.20, 0.50, 1.0}
	bandTargets := []struct {
		label string
		frac  float64
	}{{"S1", 0.01}, {"S10", 0.10}, {"S50", 0.50}}

	header := []string{"Model"}
	for _, b := range bufSizes {
		header = append(header, fmt.Sprintf("%g%%", b*100))
	}
	// One warm stream and one drift stream shared by every cell, so
	// the model trajectory (and hence the band) is identical across
	// buffer sizes; only the buffer capacity varies.
	warm := d.Stream(cfg.Warm / 4)
	drift := d.Stream(8000)
	t := newTable(header...)
	for _, target := range bandTargets {
		row := []string{target.label}
		for _, buf := range bufSizes {
			opts := core.Options{
				Mode:       core.Eager,
				Norm:       normFor(d),
				SGD:        driftSGD,
				Warm:       warm,
				BufferFrac: buf,
				// Huge α so Skiing does not reorganize while we widen
				// the band to the target fraction.
				Alpha: 1e12,
			}
			v, err := core.NewHybridView(
				fmt.Sprintf("%s/fig6b-%s-%g", cfg.Dir, target.label, buf),
				cfg.PoolPages, d.Entities, opts)
			if err != nil {
				return err
			}
			// Drift the model until the band holds the target
			// fraction of tuples.
			n := len(d.Entities)
			for _, ex := range drift {
				if err := v.Update(ex.F, ex.Label); err != nil {
					return err
				}
				if v.Stats().BandTuples >= int(target.frac*float64(n)) {
					break
				}
			}
			r := rand.New(rand.NewSource(7))
			reads := cfg.Reads
			e0, b0, d0 := v.Hits()
			start := time.Now()
			for i := 0; i < reads; i++ {
				if _, err := v.Label(int64(r.Intn(n))); err != nil {
					return err
				}
			}
			elapsed := time.Since(start)
			e1, b1, d1 := v.Hits()
			memHits := (e1 - e0) + (b1 - b0)
			diskHits := d1 - d0
			row = append(row, fmt.Sprintf("%s (%.0f%%)",
				fmtRate(rate(reads, elapsed)),
				100*float64(memHits)/float64(memHits+diskHits)))
			closeView(v)
		}
		t.add(row...)
	}
	t.write(w)
	fmt.Fprintln(w, "  cells: reads/s (fraction of reads served from memory: ε-map or buffer)")
	fmt.Fprintln(w, "  paper: read rate approaches Hazy-MM once the buffer exceeds the band fraction;")
	fmt.Fprintln(w, "         S50 needs ~50% buffered, S1 is near-MM already at 1%. Our on-disk path")
	fmt.Fprintln(w, "         sits behind a warm buffer pool, so the memory-hit fraction carries the")
	fmt.Fprintln(w, "         shape more faithfully than wall-clock here.")
	return nil
}

// RunFig10 regenerates Figure 10: quality and training time of the
// batch SVM baseline (stand-in for SVMLight) versus incremental SGD
// (file) versus SGD driving a maintained Hazy view.
func RunFig10(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "Figure 10: Batch SVM vs SGD (file) vs SGD+Hazy view, 90/10 split")
	t := newTable("Data set", "Batch P/R", "Batch time", "SGD P/R", "SGD time", "Hazy time")
	specs := []dataset.Spec{
		dataset.Magic.Scale(cfg.Scale),
		dataset.Adult.Scale(cfg.Scale),
		dataset.Forest.Scale(cfg.Scale),
	}
	for _, spec := range specs {
		d := dataset.Generate(spec)
		all := d.LabeledEntities()
		split := len(all) * 9 / 10
		train, test := all[:split], all[split:]

		bStart := time.Now()
		bm, _ := learn.BatchSVM{MaxIter: 120}.Fit(train)
		bTime := time.Since(bStart)
		bMet := learn.Evaluate(bm, test)

		sStart := time.Now()
		sgd := learn.NewSGD(learn.SGDConfig{Eta0: 0.5})
		for pass := 0; pass < 3; pass++ {
			for _, ex := range train {
				sgd.Train(ex.F, ex.Label)
			}
		}
		sTime := time.Since(sStart)
		sMet := learn.Evaluate(sgd.Model(), test)

		// Hazy: the same updates but driving a maintained MM view
		// (the paper's "Hazy" column measures the view-maintenance
		// overhead on top of raw SGD).
		ents := make([]core.Entity, len(train))
		for i, ex := range train {
			ents[i] = core.Entity{ID: int64(i), F: ex.F}
		}
		v := core.NewMemView(ents, core.HazyStrategy, core.Options{
			Mode: core.Eager, Norm: normFor(d), SGD: benchSGD,
		})
		hStart := time.Now()
		for pass := 0; pass < 3; pass++ {
			for _, ex := range train {
				if err := v.Update(ex.F, ex.Label); err != nil {
					return err
				}
			}
		}
		hTime := time.Since(hStart)

		t.add(spec.Name,
			fmt.Sprintf("%.1f/%.1f", bMet.Precision()*100, bMet.Recall()*100),
			bTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f/%.1f", sMet.Precision()*100, sMet.Recall()*100),
			sTime.Round(time.Millisecond).String(),
			hTime.Round(time.Millisecond).String())
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: SVMLight MAGIC 74.4/63.4 in 9.4s vs SGD 74.1/62.3 in 0.3s (Hazy 0.7s);")
	fmt.Fprintln(w, "         batch is 10-100x slower at comparable quality; Hazy adds modest overhead.")
	return nil
}

// RunFig11A regenerates Figure 11(A): eager update throughput as the
// data grows (three sizes; the paper's MM line dies at 4GB when RAM
// is exhausted — noted, not reproduced).
func RunFig11A(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "Figure 11(A): Scalability — eager updates/s vs data size (CS-like)")
	sizes := []float64{0.5, 1, 2}
	header := []string{"Technique"}
	for _, s := range sizes {
		header = append(header, fmt.Sprintf("%gx", s))
	}
	t := newTable(header...)
	for _, tech := range fig4Techniques {
		row := []string{tech.Label}
		for _, s := range sizes {
			d := dataset.Generate(dataset.Citeseer.Scale(cfg.Scale * s))
			v, err := buildView(cfg, d, tech.Arch, tech.Strat, core.Eager,
				fmt.Sprintf("fig11a-%s-%g", tech.Label, s))
			if err != nil {
				return err
			}
			updates := cfg.Updates / 3
			stream := d.Stream(updates)
			start := time.Now()
			for _, ex := range stream {
				if err := v.Update(ex.F, ex.Label); err != nil {
					return err
				}
			}
			row = append(row, fmtRate(rate(updates, time.Since(start))))
			closeView(v)
		}
		t.add(row...)
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: ordering Hazy-MM > Naive-MM ≈ Hazy-OD > Hybrid > Naive-OD, all")
	fmt.Fprintln(w, "         degrading ~linearly with size; Naive/Hazy-MM exhaust RAM at 4GB.")
	return nil
}

// RunFig11B regenerates Figure 11(B): Single Entity read scale-up
// with reader threads on the main-memory architecture (reads are
// lock-free on the immutable snapshot, §C.2).
func RunFig11B(cfg Config, w io.Writer) error {
	cfg = cfg.WithDefaults()
	fmt.Fprintln(w, "Figure 11(B): Scale-up — MM Single Entity reads/s vs threads")
	d := dataset.Generate(dataset.Forest.Scale(cfg.Scale))
	v, err := buildView(cfg, d, core.MainMemory, core.HazyStrategy, core.Eager, "fig11b")
	if err != nil {
		return err
	}
	for _, ex := range d.Stream(100) {
		if err := v.Update(ex.F, ex.Label); err != nil {
			return err
		}
	}
	t := newTable("Threads", "Reads/s")
	n := len(d.Entities)
	// In-memory reads are tens of nanoseconds each; give every thread
	// enough work that goroutine startup cost disappears.
	total := cfg.Reads * 100
	for _, threads := range []int{1, 2, 4, 8, 16, 32} {
		perThread := total / threads
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < perThread; i++ {
					v.Label(int64(r.Intn(n))) //nolint:errcheck — ids are valid
				}
			}(int64(g))
		}
		wg.Wait()
		t.add(fmt.Sprintf("%d", threads), fmtRate(rate(perThread*threads, time.Since(start))))
	}
	t.write(w)
	fmt.Fprintln(w, "  paper: peaks at 42.7k reads/s with 16 threads on 8 cores.")
	return nil
}
