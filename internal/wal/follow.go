package wal

import (
	"fmt"
	"path/filepath"
	"time"

	"hazy/internal/storage"
)

// Follower is a tailing reader over the committed prefix of a live
// Log — the primary side of log shipping reads through one. It
// streams every record from its start position onward, in order,
// crossing segment rotations, and blocks (bounded) at the committed
// tip until new records commit. It reads through its own file
// handles, so following never contends with the append path beyond
// the watermark loads.
//
// A Follower only ever surfaces committed records: bytes appended but
// not yet covered by an fsync (SyncAlways) are invisible to it, so a
// replica can never apply a record its primary could lose.
type Follower struct {
	l   *Log
	pos Pos
	f   storage.File // open handle on pos.Seg, nil until first read
	seg uint32       // segment f is open on
}

// Follow opens a follower positioned at pos (clamped to the first
// record slot of its segment). The caller must have checked
// Contains(pos); a pruned segment surfaces as an open error on the
// first Next.
func (l *Log) Follow(pos Pos) *Follower {
	if pos.Off < headerSize {
		pos.Off = headerSize
	}
	if pos.Seg == 0 {
		pos.Seg = 1
	}
	return &Follower{l: l, pos: pos}
}

// Pos returns the follower's cursor: the position of the next record
// it will return.
func (f *Follower) Pos() Pos { return f.pos }

// SegmentBytes returns the log's segment size cap — the stride of
// Pos.Seg, which remote consumers need to turn a position delta into
// an (approximate) byte distance.
func (l *Log) SegmentBytes() int64 { return l.opts.SegmentBytes }

// Next returns the next committed record and its position. When no
// record commits within wait (or done closes first) it returns
// ok=false with a nil error — the caller's heartbeat turn. A closed
// log or a torn committed record is an error.
func (f *Follower) Next(done <-chan struct{}, wait time.Duration) (Pos, []byte, bool, error) {
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		ce, notify, closed := f.l.committedState()
		if !f.pos.Before(ce) {
			if closed {
				return Pos{}, nil, false, fmt.Errorf("wal: follow: log closed")
			}
			select {
			case <-notify:
				continue
			case <-done:
				return Pos{}, nil, false, nil
			case <-deadline.C:
				return Pos{}, nil, false, nil
			}
		}
		if err := f.open(f.pos.Seg); err != nil {
			return Pos{}, nil, false, err
		}
		// Never read past the committed watermark: the current segment
		// may hold appended-but-unsynced bytes beyond it. Sealed
		// (rotated) segments are committed in full.
		limit := int64(0)
		if f.pos.Seg == ce.Seg {
			limit = ce.Off
		} else {
			size, err := f.f.Size()
			if err != nil {
				return Pos{}, nil, false, fmt.Errorf("wal: follow: stat segment %d: %w", f.pos.Seg, err)
			}
			limit = size
		}
		payload, next, ok := readFrame(f.f, limit, f.pos.Off)
		if ok {
			at := f.pos
			f.pos.Off = next
			return at, payload, true, nil
		}
		if f.pos.Seg < ce.Seg {
			// End of a sealed segment: rotation numbers segments
			// contiguously, so the stream continues at the next one.
			f.close()
			f.pos = Pos{Seg: f.pos.Seg + 1, Off: headerSize}
			continue
		}
		// pos < committed end within one segment yet no intact frame:
		// the committed-boundary invariant is broken.
		return Pos{}, nil, false, fmt.Errorf("wal: follow: torn committed record at segment %d offset %d", f.pos.Seg, f.pos.Off)
	}
}

func (f *Follower) open(seg uint32) error {
	if f.f != nil && f.seg == seg {
		return nil
	}
	f.close()
	// The VFS creates missing files on open; a pruned segment must
	// surface as an error, not quietly come back as an empty file.
	if !f.l.retained(seg) {
		return fmt.Errorf("wal: follow: segment %d pruned by checkpoint", seg)
	}
	h, err := f.l.opts.VFS.OpenFile(filepath.Join(f.l.dir, segName(seg)))
	if err != nil {
		return fmt.Errorf("wal: follow: open segment %d: %w", seg, err)
	}
	if err := checkHeader(h, seg); err != nil {
		h.Close()
		return err
	}
	f.f = h
	f.seg = seg
	return nil
}

func (f *Follower) close() {
	if f.f != nil {
		f.f.Close()
		f.f = nil
	}
}

// Close releases the follower's file handle.
func (f *Follower) Close() { f.close() }
