package wal

import "hazy/internal/obs"

// walMetrics holds the log's collectors. All observations happen on
// the commit path (fsync, rotation) or append path (one atomic add
// per record), never on replay or reads.
type walMetrics struct {
	fsyncDur  *obs.Histogram
	cohort    *obs.Histogram
	rotations *obs.Counter
	appended  *obs.Counter
}

// init registers the collectors on reg (nil: they stay private).
func (m *walMetrics) init(reg *obs.Registry) {
	m.fsyncDur = reg.Histogram("hazy_wal_fsync_micros",
		"fsync latency in microseconds (commit path and pre-rotation syncs)", 32)
	m.cohort = reg.Histogram("hazy_wal_commit_cohort",
		"committers coalesced onto one group-commit fsync", 8)
	m.rotations = reg.Counter("hazy_wal_rotations_total",
		"segment rotations (each triggers a checkpoint)")
	m.appended = reg.Counter("hazy_wal_appended_bytes_total",
		"framed bytes appended to the log")
}
