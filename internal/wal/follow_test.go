package wal

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// appendN appends n deterministic records and returns each record's
// starting Pos (as reported by Append) alongside the payloads.
func appendN(t *testing.T, l *Log, n int) (poss []Pos, recs [][]byte) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := []byte(fmt.Sprintf("record-%04d-%s", i, string(bytes.Repeat([]byte{'x'}, i%97))))
		pos, err := l.Append(rec)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		poss = append(poss, pos)
		recs = append(recs, rec)
	}
	return poss, recs
}

// TestReplayFromMidSegmentPos pins the replica resume path's core
// contract: Replay(pos) for the Pos of ANY record — including ones in
// the middle of interior segments — yields exactly that record and
// everything after it, in order.
func TestReplayFromMidSegmentPos(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 1 << 10, Mode: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	poss, recs := appendN(t, l, 60)
	if last := poss[len(poss)-1]; last.Seg < 3 {
		t.Fatalf("workload stayed in %d segment(s); want rotations", last.Seg)
	}
	for i := range poss {
		got := collect(t, l, poss[i])
		if len(got) != len(recs)-i {
			t.Fatalf("replay from record %d (%+v): %d records, want %d", i, poss[i], len(got), len(recs)-i)
		}
		for j, rec := range got {
			if !bytes.Equal(rec, recs[i+j]) {
				t.Fatalf("replay from record %d: payload %d diverges", i, j)
			}
		}
	}
	// One past the end replays nothing.
	if got := collect(t, l, l.End()); len(got) != 0 {
		t.Fatalf("replay from End returned %d records", len(got))
	}
}

// TestReplayAtPrunedSegmentBoundary pins the Checkpoint hand-off:
// after pruning everything below a checkpoint Pos, Replay from that
// exact Pos still yields the full suffix, and Replay from a position
// later in the same (oldest retained) segment keeps working. The
// replica's resume-after-checkpoint leans on both.
func TestReplayAtPrunedSegmentBoundary(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 1 << 10, Mode: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	poss, recs := appendN(t, l, 60)

	// The checkpoint position: the first record of an interior segment.
	bound := -1
	for i := 1; i < len(poss); i++ {
		if poss[i].Seg > poss[i-1].Seg && poss[i].Seg < poss[len(poss)-1].Seg {
			bound = i
		}
	}
	if bound < 0 {
		t.Fatal("no interior segment boundary in workload")
	}
	if err := l.Checkpoint(poss[bound]); err != nil {
		t.Fatal(err)
	}
	if l.Contains(poss[0]) {
		t.Fatalf("Contains(%+v) true after pruning its segment", poss[0])
	}
	if !l.Contains(poss[bound]) {
		t.Fatalf("Contains(%+v) false for the checkpoint position", poss[bound])
	}

	got := collect(t, l, poss[bound])
	if len(got) != len(recs)-bound {
		t.Fatalf("replay from pruned boundary: %d records, want %d", len(got), len(recs)-bound)
	}
	for j, rec := range got {
		if !bytes.Equal(rec, recs[bound+j]) {
			t.Fatalf("replay from pruned boundary: payload %d diverges", j)
		}
	}
	// Mid-segment resume within the oldest retained segment.
	if got := collect(t, l, poss[bound+1]); len(got) != len(recs)-bound-1 {
		t.Fatalf("replay past pruned boundary: %d records, want %d", len(got), len(recs)-bound-1)
	}
}

// TestFollowerTailsAcrossRotations drives a follower over a log that
// keeps appending: every committed record arrives exactly once, in
// order, across segment rotations, and an idle tip yields heartbeat
// turns (ok=false) instead of blocking forever.
func TestFollowerTailsAcrossRotations(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 1 << 10, Mode: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	_, first := appendN(t, l, 20)

	f := l.Follow(Pos{Seg: 1, Off: headerSize})
	defer f.Close()
	done := make(chan struct{})
	var got [][]byte
	read := func(n int) {
		t.Helper()
		for len(got) < n {
			_, payload, ok, err := f.Next(done, 2*time.Second)
			if err != nil {
				t.Fatalf("follower after %d records: %v", len(got), err)
			}
			if !ok {
				t.Fatalf("follower timed out after %d records (want %d)", len(got), n)
			}
			got = append(got, append([]byte(nil), payload...))
		}
	}
	read(len(first))
	// Idle tip: a bounded wait returns a heartbeat turn, not a record.
	if _, _, ok, err := f.Next(done, 20*time.Millisecond); ok || err != nil {
		t.Fatalf("idle Next = ok=%v err=%v, want heartbeat", ok, err)
	}
	// Live tail: records appended after the follower caught up.
	_, second := appendN(t, l, 25)
	read(len(first) + len(second))
	want := append(append([][]byte(nil), first...), second...)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("followed record %d diverges", i)
		}
	}
}

// TestFollowerSeesOnlyCommitted pins the shipping-safety invariant in
// SyncAlways mode: an appended-but-uncommitted record is invisible to
// a follower until Commit covers it.
func TestFollowerSeesOnlyCommitted(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 1 << 20, Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	f := l.Follow(l.CommittedEnd())
	defer f.Close()
	done := make(chan struct{})
	if _, err := l.Append([]byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := f.Next(done, 20*time.Millisecond); ok || err != nil {
		t.Fatalf("follower surfaced an uncommitted record (ok=%v err=%v)", ok, err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	_, payload, ok, err := f.Next(done, 2*time.Second)
	if err != nil || !ok || string(payload) != "uncommitted" {
		t.Fatalf("committed record not followed: ok=%v err=%v payload=%q", ok, err, payload)
	}
}
