// Package wal is a record-oriented write-ahead log: the durability
// substrate beneath the relation catalog. Mutations append opaque
// payloads, each framed with a length and a CRC-32C, into
// fixed-capacity segment files that rotate as they fill. Recovery
// replays the tail of the log past the last checkpoint; a torn tail —
// a record cut mid-frame by a crash, or one whose checksum no longer
// matches — cleanly ends the replay, so the database always comes
// back as a prefix of the logged history and a damaged record is
// never mis-replayed.
//
// Commit is a group-commit barrier: concurrent committers coalesce
// onto one fsync, and a caller returns as soon as some fsync has
// covered its records. Batch writers (the maintenance engine) append
// a whole batch and commit once, paying one fsync per batch rather
// than per row.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hazy/internal/obs"
	"hazy/internal/storage"
)

// SyncMode selects when commits reach stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs on every Commit (group-coalesced): an
	// acknowledged write survives power loss.
	SyncAlways SyncMode = iota
	// SyncOff never fsyncs: appends still reach the OS immediately,
	// so acknowledged writes survive a process crash cleanly. An OS
	// crash or power loss can lose the unsynced tail — and, because
	// this mode also skips the page-image journaling that orders data
	// pages behind the log, pages written back between checkpoints
	// may survive records that did not, so only process-crash
	// consistency is promised.
	SyncOff
)

// ParseSyncMode maps the -fsync flag spellings to a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch strings.ToLower(s) {
	case "always", "on", "true":
		return SyncAlways, nil
	case "off", "no", "false":
		return SyncOff, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown fsync mode %q (want always|off)", s)
}

func (m SyncMode) String() string {
	if m == SyncOff {
		return "off"
	}
	return "always"
}

// Segment-file layout: a 16-byte header (magic, segment number,
// reserved), then records back to back. Each record is
//
//	[4B payload length LE][4B CRC-32C LE][payload]
//
// with the CRC covering the length bytes plus the payload, so a
// corrupted length is caught as reliably as a corrupted body.
const (
	headerSize  = 16
	frameHeader = 8
	// MaxRecord bounds one payload (sanity limit well above any
	// tuple the heap accepts).
	MaxRecord = 128 << 20
)

var (
	magic    = [8]byte{'H', 'A', 'Z', 'Y', 'W', 'A', 'L', '1'}
	castTab  = crc32.MakeTable(crc32.Castagnoli)
	segGlob  = "wal-"
	segSufix = ".seg"
)

func segName(n uint32) string { return fmt.Sprintf("wal-%08d.seg", n) }

func parseSegName(name string) (uint32, bool) {
	if !strings.HasPrefix(name, segGlob) || !strings.HasSuffix(name, segSufix) {
		return 0, false
	}
	var n uint32
	if _, err := fmt.Sscanf(name, "wal-%08d.seg", &n); err != nil {
		return 0, false
	}
	return n, true
}

// Pos addresses a byte position in the log: a segment number and an
// offset within that segment file. Positions order lexicographically.
type Pos struct {
	Seg uint32 `json:"seg"`
	Off int64  `json:"off"`
}

// Before reports whether p precedes q in the log.
func (p Pos) Before(q Pos) bool {
	return p.Seg < q.Seg || (p.Seg == q.Seg && p.Off < q.Off)
}

// Options configures a Log.
type Options struct {
	// SegmentBytes caps a segment file before rotation (default
	// 4 MiB). A single oversized record may exceed it.
	SegmentBytes int64
	// Mode is the fsync policy (default SyncAlways).
	Mode SyncMode
	// VFS is the file layer (default the real filesystem).
	VFS storage.VFS
	// Metrics, when non-nil, registers the log's collectors (fsync
	// latency, group-commit cohort size, rotations, appended bytes) on
	// the shared registry. Nil leaves them unregistered.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.VFS == nil {
		o.VFS = storage.OS
	}
	return o
}

// Log is an append-only, segment-rotating record log. Append and
// Commit are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu   sync.Mutex
	cond *sync.Cond
	f    storage.File // current (last) segment
	seg  uint32       // its number
	off  int64        // next write offset within it
	segs []uint32     // live segment numbers, ascending (last == seg)

	appended int64 // monotonic bytes appended across all segments
	synced   int64 // appended watermark covered by an fsync
	syncing  bool  // one committer is inside fsync
	waiters  int   // committers waiting on the sync watermark
	met      walMetrics

	// committed is the position one past the last record the mode
	// promises durable — what followers (log shipping) may read. In
	// SyncOff it tracks every append; in SyncAlways it advances only
	// under a covering fsync, so a replica never sees a record the
	// primary could lose. notify is closed and replaced each time
	// committed advances (or the log closes), waking followers.
	committed Pos
	notify    chan struct{}

	rotated atomic.Bool // set on rotation, taken by TakeRotated
	closed  bool
	// failed poisons the log after an fsync failure: on Linux the
	// kernel may drop the dirty pages and clear the error once
	// reported, so a retried fsync's "success" would falsely mark
	// lost records durable (the fsyncgate failure mode). Once set,
	// every append and commit refuses; recovery is reopening the
	// directory, which replays only what actually reached disk.
	failed error
}

// Open attaches to (or creates) the log in dir. The last segment's
// tail is validated record by record; anything past the last intact
// record — a torn frame from a crash — is discarded, so new appends
// extend the valid prefix.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := opts.VFS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	names, err := opts.VFS.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var segs []uint32
	for _, name := range names {
		if n, ok := parseSegName(name); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	l := &Log{dir: dir, opts: opts}
	l.cond = sync.NewCond(&l.mu)
	l.notify = make(chan struct{})
	l.met.init(opts.Metrics)
	if len(segs) == 0 {
		if err := l.createSegment(1); err != nil {
			return nil, err
		}
		l.segs = []uint32{1}
		l.committed = Pos{Seg: l.seg, Off: l.off}
		return l, nil
	}
	l.segs = segs
	l.seg = segs[len(segs)-1]
	f, err := opts.VFS.OpenFile(filepath.Join(dir, segName(l.seg)))
	if err != nil {
		return nil, fmt.Errorf("wal: open segment %d: %w", l.seg, err)
	}
	end, err := validEnd(f, l.seg)
	if err != nil {
		// A crash during segment creation (or a truncation below the
		// header) can leave the TAIL segment with a torn header; it
		// held no intact records, so reinitialize it rather than
		// refusing to open. Earlier segments are never forgiven this
		// way — Replay still errors on them.
		var hdr [headerSize]byte
		copy(hdr[:8], magic[:])
		binary.LittleEndian.PutUint32(hdr[8:12], l.seg)
		if _, werr := f.WriteAt(hdr[:], 0); werr != nil {
			f.Close()
			return nil, fmt.Errorf("wal: reinitialize torn tail segment %d: %w", l.seg, werr)
		}
		end = headerSize
	}
	// Drop the torn tail so stale bytes can never shadow a future
	// record boundary.
	if size, serr := f.Size(); serr == nil && size > end {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail of segment %d: %w", l.seg, err)
		}
	}
	l.f = f
	l.off = end
	// Everything that survived to disk is the recoverable prefix, so it
	// is also the shippable prefix.
	l.committed = Pos{Seg: l.seg, Off: l.off}
	return l, nil
}

// advanceCommitted raises the committed watermark to p and wakes
// followers. Callers hold l.mu; p must be a record boundary.
func (l *Log) advanceCommitted(p Pos) {
	if l.committed.Before(p) {
		l.committed = p
		close(l.notify)
		l.notify = make(chan struct{})
	}
}

// createSegment opens a fresh segment file and writes its header.
// Callers hold l.mu (or have exclusive access during Open).
func (l *Log) createSegment(n uint32) error {
	f, err := l.opts.VFS.OpenFile(filepath.Join(l.dir, segName(n)))
	if err != nil {
		return fmt.Errorf("wal: create segment %d: %w", n, err)
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], n)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment %d header: %w", n, err)
	}
	if l.opts.Mode == SyncAlways {
		// Make the directory entry durable: without this, power loss
		// after rotation could drop the whole new segment — and every
		// acknowledged commit inside it — without any replay error.
		if err := l.opts.VFS.SyncDir(l.dir); err != nil {
			f.Close()
			return fmt.Errorf("wal: sync dir after creating segment %d: %w", n, err)
		}
	}
	l.f = f
	l.seg = n
	l.off = headerSize
	return nil
}

// checkHeader validates a segment file's header.
func checkHeader(f storage.File, seg uint32) error {
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("wal: segment %d header unreadable: %w", seg, err)
	}
	if [8]byte(hdr[:8]) != magic {
		return fmt.Errorf("wal: segment %d has bad magic", seg)
	}
	if got := binary.LittleEndian.Uint32(hdr[8:12]); got != seg {
		return fmt.Errorf("wal: segment file %d labeled %d inside", seg, got)
	}
	return nil
}

// readFrame reads and validates one record at off. It returns the
// payload and the offset just past the record, or ok=false when the
// bytes from off onward are not an intact record (EOF or torn tail).
func readFrame(f storage.File, size, off int64) (payload []byte, next int64, ok bool) {
	if off+frameHeader > size {
		return nil, off, false
	}
	var hdr [frameHeader]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, off, false
	}
	n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n > MaxRecord || off+frameHeader+n > size {
		return nil, off, false
	}
	payload = make([]byte, n)
	if _, err := f.ReadAt(payload, off+frameHeader); err != nil {
		return nil, off, false
	}
	sum := crc32.Checksum(hdr[0:4], castTab)
	sum = crc32.Update(sum, castTab, payload)
	if sum != crc {
		return nil, off, false
	}
	return payload, off + frameHeader + n, true
}

// validEnd scans a segment from its header to the end of its last
// intact record.
func validEnd(f storage.File, seg uint32) (int64, error) {
	if err := checkHeader(f, seg); err != nil {
		return 0, err
	}
	size, err := f.Size()
	if err != nil {
		return 0, fmt.Errorf("wal: stat segment %d: %w", seg, err)
	}
	off := int64(headerSize)
	for {
		_, next, ok := readFrame(f, size, off)
		if !ok {
			return off, nil
		}
		off = next
	}
}

// Append frames payload and writes it to the current segment,
// rotating first when the segment is full. The record is in the OS
// after Append returns; Commit makes it durable. The returned Pos
// addresses the record's first byte.
func (l *Log) Append(payload []byte) (Pos, error) {
	if len(payload) > MaxRecord {
		return Pos{}, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Pos{}, fmt.Errorf("wal: closed")
	}
	if l.failed != nil {
		return Pos{}, fmt.Errorf("wal: log failed: %w", l.failed)
	}
	frame := int64(frameHeader + len(payload))
	if l.off > headerSize && l.off+frame > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return Pos{}, err
		}
	}
	buf := make([]byte, frame)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	sum := crc32.Checksum(buf[0:4], castTab)
	sum = crc32.Update(sum, castTab, payload)
	binary.LittleEndian.PutUint32(buf[4:8], sum)
	copy(buf[frameHeader:], payload)
	pos := Pos{Seg: l.seg, Off: l.off}
	if _, err := l.f.WriteAt(buf, l.off); err != nil {
		return Pos{}, fmt.Errorf("wal: append: %w", err)
	}
	l.off += frame
	l.appended += frame
	l.met.appended.Add(uint64(frame))
	if l.opts.Mode == SyncOff {
		// SyncOff promises process-crash durability the moment the
		// write reaches the OS, so the record is shippable immediately.
		l.advanceCommitted(Pos{Seg: l.seg, Off: l.off})
	}
	return pos, nil
}

// rotateLocked syncs and closes the current segment and starts the
// next one. Callers hold l.mu.
func (l *Log) rotateLocked() error {
	// Wait out any committer fsyncing the outgoing file outside the
	// lock — closing it from under them would fail their fsync.
	for l.syncing {
		l.cond.Wait()
	}
	if l.failed != nil {
		return fmt.Errorf("wal: log failed: %w", l.failed)
	}
	if l.opts.Mode == SyncAlways {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			l.failed = err
			return fmt.Errorf("wal: sync before rotate: %w", err)
		}
		l.met.fsyncDur.ObserveDuration(time.Since(start))
	}
	// Everything appended so far lives in the outgoing segment and is
	// now as durable as the mode promises.
	l.synced = l.appended
	l.advanceCommitted(Pos{Seg: l.seg, Off: l.off})
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment %d: %w", l.seg, err)
	}
	next := l.seg + 1
	if err := l.createSegment(next); err != nil {
		return err
	}
	l.segs = append(l.segs, next)
	l.rotated.Store(true)
	l.met.rotations.Inc()
	l.cond.Broadcast()
	return nil
}

// TakeRotated reports — and clears — whether a segment rotation has
// happened since the last call. The relation layer polls it after
// commits to trigger a checkpoint per rotation; exactly one of a set
// of concurrent committers wins the flag.
func (l *Log) TakeRotated() bool { return l.rotated.Swap(false) }

// MarkRotated re-arms the rotation flag — the taker calls it when the
// checkpoint it owed failed, so the next commit retries instead of
// letting the replayable tail grow until another whole segment fills.
func (l *Log) MarkRotated() { l.rotated.Store(true) }

// End returns the position one past the last appended record.
func (l *Log) End() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Pos{Seg: l.seg, Off: l.off}
}

// CommittedEnd returns the position one past the last record the sync
// mode promises durable — the shippable prefix. Every record starting
// strictly before it is intact and committed.
func (l *Log) CommittedEnd() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.committed
}

// committedState returns the committed watermark, the channel closed
// at its next advance, and whether the log is closed — the follower's
// wait primitive.
func (l *Log) committedState() (Pos, <-chan struct{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.committed, l.notify, l.closed
}

// retained reports whether segment n is still on disk (not pruned).
func (l *Log) retained(n uint32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.segs {
		if s == n {
			return true
		}
	}
	return false
}

// Contains reports whether a follower may resume from pos: its
// segment is still retained (not pruned by Checkpoint) and pos does
// not run ahead of the committed prefix. A false answer means the
// follower must re-bootstrap from a checkpoint image.
func (l *Log) Contains(pos Pos) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 || pos.Seg < l.segs[0] {
		return false
	}
	return !l.committed.Before(pos)
}

// Commit makes every record appended before the call durable under
// the log's sync mode. Concurrent committers coalesce: one performs
// the fsync, the rest wait for a sync watermark covering them.
func (l *Log) Commit() error {
	if l.opts.Mode == SyncOff {
		// Appends already reached the OS (unbuffered WriteAt); there
		// is nothing more this mode promises.
		return nil
	}
	return l.Sync()
}

// Sync forces an fsync covering every append so far, regardless of
// mode — the write-back hook for data pages uses it so the WAL rule
// holds even when commits are relaxed.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.appended
	l.waiters++
	for {
		if l.synced >= target {
			l.waiters--
			l.mu.Unlock()
			return nil
		}
		if l.failed != nil {
			l.waiters--
			err := l.failed
			l.mu.Unlock()
			return fmt.Errorf("wal: log failed: %w", err)
		}
		if l.closed {
			l.waiters--
			l.mu.Unlock()
			return fmt.Errorf("wal: closed")
		}
		if !l.syncing {
			break
		}
		l.cond.Wait()
	}
	l.waiters--
	l.syncing = true
	f := l.f
	covered := l.appended // everything in the current file right now
	endAt := Pos{Seg: l.seg, Off: l.off}
	// Every current waiter's target is ≤ covered, so this fsync's
	// group-commit cohort is the syncer plus all of them.
	cohort := 1 + l.waiters
	l.mu.Unlock()

	start := time.Now()
	err := f.Sync()
	elapsed := time.Since(start)

	l.mu.Lock()
	l.syncing = false
	if err == nil {
		l.met.fsyncDur.ObserveDuration(elapsed)
		l.met.cohort.Observe(uint64(cohort))
		if covered > l.synced {
			l.synced = covered
		}
		l.advanceCommitted(endAt)
	} else if l.failed == nil {
		// Poison: the kernel may have dropped the dirty pages, so a
		// retry's success would lie about durability.
		l.failed = err
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Checkpoint prunes segments wholly before pos: after the caller has
// durably recorded pos as its recovery start, the bytes below it are
// dead. The current segment is never removed.
func (l *Log) Checkpoint(pos Pos) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := l.segs[:0]
	var firstErr error
	for _, n := range l.segs {
		if n < pos.Seg && n != l.seg {
			if err := l.opts.VFS.Remove(filepath.Join(l.dir, segName(n))); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("wal: prune segment %d: %w", n, err)
			}
			continue
		}
		keep = append(keep, n)
	}
	l.segs = keep
	return firstErr
}

// Replay streams every intact record from pos to the end of the log,
// in order. A torn or corrupt record in the LAST segment ends the
// replay cleanly (the crash-truncated tail); the same damage in an
// earlier segment is an error, because the records after it cannot be
// trusted to form a prefix. A pos past the end of the log replays
// nothing.
func (l *Log) Replay(pos Pos, fn func(p Pos, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]uint32(nil), l.segs...)
	l.mu.Unlock()
	for i, seg := range segs {
		if seg < pos.Seg {
			continue
		}
		last := i == len(segs)-1
		if err := l.replaySegment(seg, pos, last, fn); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) replaySegment(seg uint32, pos Pos, last bool, fn func(Pos, []byte) error) error {
	f, err := l.opts.VFS.OpenFile(filepath.Join(l.dir, segName(seg)))
	if err != nil {
		return fmt.Errorf("wal: open segment %d for replay: %w", seg, err)
	}
	defer f.Close()
	if err := checkHeader(f, seg); err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		return fmt.Errorf("wal: stat segment %d: %w", seg, err)
	}
	off := int64(headerSize)
	if seg == pos.Seg && pos.Off > off {
		off = pos.Off
	}
	for off < size {
		payload, next, ok := readFrame(f, size, off)
		if !ok {
			if last {
				return nil // torn tail: the prefix ends here
			}
			return fmt.Errorf("wal: corrupt record at segment %d offset %d (not the log tail)", seg, off)
		}
		if err := fn(Pos{Seg: seg, Off: off}, payload); err != nil {
			return err
		}
		off = next
	}
	return nil
}

// Close syncs (per mode) and closes the current segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	// Wait out any committer fsyncing outside the lock — closing the
	// file from under them would fail an fsync whose records this
	// Close is about to make durable anyway.
	for l.syncing {
		l.cond.Wait()
	}
	l.closed = true
	var err error
	if l.opts.Mode == SyncAlways {
		err = l.f.Sync()
		if err == nil {
			l.synced = l.appended
			l.advanceCommitted(Pos{Seg: l.seg, Off: l.off})
		}
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	l.cond.Broadcast()
	// Wake blocked followers so they observe the close instead of
	// sleeping on a channel that will never be closed again.
	close(l.notify)
	l.notify = make(chan struct{})
	return err
}
