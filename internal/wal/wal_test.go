package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hazy/internal/storage"
)

// collect replays the whole log into a slice of payload copies.
func collect(t *testing.T, l *Log, from Pos) [][]byte {
	t.Helper()
	var out [][]byte
	err := l.Replay(from, func(_ Pos, payload []byte) error {
		out = append(out, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// randRecords makes n records with sizes spanning empty through
// several-frame lengths.
func randRecords(r *rand.Rand, n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		var size int
		switch r.Intn(4) {
		case 0:
			size = r.Intn(8) // tiny, including empty
		case 1:
			size = 8 + r.Intn(120)
		case 2:
			size = 128 + r.Intn(2000)
		default:
			size = 2048 + r.Intn(8192)
		}
		rec := make([]byte, size)
		r.Read(rec)
		recs[i] = rec
	}
	return recs
}

// TestRoundTripRandomRecords is the codec's property test: random
// record sizes survive append → close → reopen → replay bit-exactly,
// across many seeds and segment rotations.
func TestRoundTripRandomRecords(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentBytes: 8 << 10, Mode: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		recs := randRecords(r, 60)
		for _, rec := range recs {
			if _, err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{SegmentBytes: 8 << 10, Mode: SyncOff})
		if err != nil {
			t.Fatalf("seed %d reopen: %v", seed, err)
		}
		got := collect(t, l2, Pos{})
		if len(got) != len(recs) {
			t.Fatalf("seed %d: %d records replayed, want %d", seed, len(got), len(recs))
		}
		for i := range recs {
			if !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("seed %d: record %d differs", seed, i)
			}
		}
		// Appends continue after reopen without disturbing history.
		if _, err := l2.Append([]byte("postscript")); err != nil {
			t.Fatal(err)
		}
		got = collect(t, l2, Pos{})
		if string(got[len(got)-1]) != "postscript" {
			t.Fatalf("seed %d: post-reopen append lost", seed)
		}
		l2.Close()
	}
}

// singleSegmentLog writes recs into a fresh one-segment log and
// returns the segment file path plus the log's directory.
func singleSegmentLog(t *testing.T, recs [][]byte) (segPath, dir string) {
	t.Helper()
	dir = t.TempDir()
	l, err := Open(dir, Options{Mode: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, segName(1)), dir
}

// prefixLen returns how many of want got reproduces exactly from the
// start, failing the test if got is not a clean prefix.
func prefixLen(t *testing.T, got, want [][]byte, what string) int {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("%s: replay invented %d extra records", what, len(got)-len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("%s: record %d mis-replayed (never acceptable)", what, i)
		}
	}
	return len(got)
}

// TestTornTailEveryByte truncates a recorded log at every byte offset
// and checks the absolute invariant: replay yields an exact prefix of
// the original records — a cut record disappears entirely, it never
// comes back altered — and the log reopens for appending.
func TestTornTailEveryByte(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	recs := randRecords(r, 12)
	segPath, _ := singleSegmentLog(t, recs)
	orig, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if testing.Short() {
		stride = 13
	}
	for cut := 0; cut < len(orig); cut += stride {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Mode: SyncOff})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		got := collect(t, l, Pos{})
		prefixLen(t, got, recs, fmt.Sprintf("cut %d", cut))
		// The log must accept appends at the repaired tail.
		if _, err := l.Append([]byte("after-crash")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		after := collect(t, l, Pos{})
		if string(after[len(after)-1]) != "after-crash" {
			t.Fatalf("cut %d: post-recovery append lost", cut)
		}
		l.Close()
	}
}

// TestBitFlipsDetected flips bits across a recorded log and checks
// that a corrupt record is always detected — replay stops at it —
// and never surfaces with altered bytes.
func TestBitFlipsDetected(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	recs := randRecords(r, 10)
	segPath, _ := singleSegmentLog(t, recs)
	orig, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	flips := 400
	if testing.Short() {
		flips = 60
	}
	for i := 0; i < flips; i++ {
		// Flip one random bit anywhere past the segment header.
		pos := headerSize + r.Intn(len(orig)-headerSize)
		bit := byte(1 << r.Intn(8))
		mut := append([]byte(nil), orig...)
		mut[pos] ^= bit

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Mode: SyncOff})
		if err != nil {
			t.Fatalf("flip %d@%d: open: %v", i, pos, err)
		}
		got := collect(t, l, Pos{})
		n := prefixLen(t, got, recs, fmt.Sprintf("flip %d@%d", i, pos))
		// The record containing the flipped byte can never be among
		// the survivors: CRC-32C catches every single-bit error.
		var off = headerSize
		for j := 0; j < n; j++ {
			end := off + frameHeader + len(recs[j])
			if pos >= off && pos < end {
				t.Fatalf("flip %d@%d: corrupt record %d replayed", i, pos, j)
			}
			off = end
		}
		l.Close()
	}
}

// TestSegmentRotationAndCheckpoint drives the log through many
// rotations, then checkpoints and checks pruning plus tail replay.
func TestSegmentRotationAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 2048, Mode: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	var recs [][]byte
	var marks []Pos
	for i := 0; i < 100; i++ {
		rec := bytes.Repeat([]byte{byte(i)}, 100)
		pos, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
		marks = append(marks, pos)
	}
	if end := l.End(); end.Seg < 3 {
		t.Fatalf("expected several segments, at %v", end)
	}
	if !l.TakeRotated() {
		t.Fatal("rotation flag never set")
	}
	if l.TakeRotated() {
		t.Fatal("rotation flag not cleared by take")
	}
	// Replay from a mid-log mark yields exactly the suffix.
	from := marks[60]
	got := collect(t, l, from)
	if len(got) != 40 || !bytes.Equal(got[0], recs[60]) {
		t.Fatalf("suffix replay from %v: %d records", from, len(got))
	}
	// Checkpoint at the mark prunes every segment below it.
	if err := l.Checkpoint(from); err != nil {
		t.Fatal(err)
	}
	names, err := storage.OS.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if n, ok := parseSegName(name); ok && n < from.Seg {
			t.Fatalf("segment %d not pruned", n)
		}
	}
	// The suffix is still fully replayable after pruning + reopen.
	l.Close()
	l2, err := Open(dir, Options{SegmentBytes: 2048, Mode: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got = collect(t, l2, from)
	if len(got) != 40 || !bytes.Equal(got[39], recs[99]) {
		t.Fatalf("post-prune replay: %d records", len(got))
	}
}

// countingVFS counts fsyncs to observe group-commit coalescing.
type countingVFS struct {
	storage.VFS
	mu    sync.Mutex
	syncs int
}

type countingFile struct {
	storage.File
	vfs *countingVFS
}

func (v *countingVFS) OpenFile(path string) (storage.File, error) {
	f, err := v.VFS.OpenFile(path)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, vfs: v}, nil
}

func (f *countingFile) Sync() error {
	f.vfs.mu.Lock()
	f.vfs.syncs++
	f.vfs.mu.Unlock()
	return f.File.Sync()
}

// TestGroupCommitCoalesces hammers Append+Commit from many goroutines
// in SyncAlways mode: every record must survive, and the fsync count
// must come in well under one per commit.
func TestGroupCommitCoalesces(t *testing.T) {
	vfs := &countingVFS{VFS: storage.OS}
	dir := t.TempDir()
	l, err := Open(dir, Options{Mode: SyncAlways, VFS: vfs})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs[w] = err
					return
				}
				if err := l.Commit(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, l, Pos{})
	if len(got) != writers*per {
		t.Fatalf("%d records survived, want %d", len(got), writers*per)
	}
	vfs.mu.Lock()
	syncs := vfs.syncs
	vfs.mu.Unlock()
	t.Logf("group commit: %d commits ran %d fsyncs", writers*per, syncs)

	// Deterministic amortization: a batch of appends followed by one
	// commit pays exactly one fsync — the engine's one-fsync-per-batch
	// contract — and a commit with nothing new to cover pays none.
	before := syncs
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte("batched")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	vfs.mu.Lock()
	after := vfs.syncs
	vfs.mu.Unlock()
	if after-before != 1 {
		t.Fatalf("10-record batch + 2 commits cost %d fsyncs, want 1", after-before)
	}
	l.Close()
}

// TestSyncModeParsing pins the -fsync flag spellings.
func TestSyncModeParsing(t *testing.T) {
	for in, want := range map[string]SyncMode{
		"always": SyncAlways, "on": SyncAlways, "true": SyncAlways,
		"off": SyncOff, "no": SyncOff, "false": SyncOff,
	} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Fatal("bad mode accepted")
	}
}
