// Package server exposes a whole Hazy catalog over a TCP socket with
// a newline-delimited text protocol — the deployment shape of the
// paper's prototype (App. B.1: "Hazy runs in a separate process and
// IPC is handled using sockets").
//
// Every connection is one hazy.Session: SQL statements execute
// against the shared catalog through the SQL command, and the legacy
// verbs address any classification view by name, defaulting to the
// session's current view (USE, or the server's configured default) so
// pre-catalog clients keep working unchanged.
//
// Protocol (one request per line, one response line each):
//
//	SQL <stmt>                 → JSON {"cols":…,"rows":…,"msg":…}
//	                             (SELECT rows are written into the
//	                             response line as the plan streams
//	                             them — the result is never
//	                             materialized server-side)
//	USE <view>                 → "OK"        (set session default view)
//	LABEL [view] <id>          → "+1" | "-1"
//	COUNT [view]               → "<n>"       (All Members count)
//	MEMBERS [view]             → "<id> ..."  (ids labeled +1)
//	TRAIN [view] <id> <±1>     → "OK"        (insert training example)
//	ADD [view] <id> <text...>  → "OK"        (insert entity)
//	TRAINA [view] <id> <±1>    → "QUEUED"    (async; engined views only)
//	ADDA [view] <id> <text...> → "QUEUED"    (async; engined views only)
//	FLUSH [view]               → "OK"        (per-session barrier)
//	CLASSIFY <text...>         → "+1" | "-1" (ad-hoc, not stored; default view — USE to retarget)
//	UNCERTAIN [view] <k>       → "<id> ..."  (active-learning picks)
//	STATS [view]               → "updates=<n> reorgs=<n> band=<n> [engine counters]"
//	QUIT                       → "BYE" and the connection closes
//
// Errors come back as "ERR <message>".
//
// Engine mode is per view, not per server: a view with a maintenance
// engine attached (hazy.DB.AttachEngine, or the SQL statement ATTACH
// ENGINE TO <view>) is served lock-free — reads from the engine's
// published snapshot, writes through its batched queue — while
// statements touching non-engined views and all SQL serialize behind
// the server's statement mutex, one at a time, like the seed's
// single-session server. TRAIN and ADD stay synchronous everywhere
// (the response is sent after the write is applied and visible —
// read-your-writes); TRAINA and ADDA only enqueue, and FLUSH is the
// barrier that makes prior async writes visible. Async failures are
// attributed per session: a connection's FLUSH reports only its own
// failed TRAINA/ADDA, never another session's.
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	root "hazy"
)

// Options configures a Server.
type Options struct {
	// DefaultView is the view unqualified verbs target before a
	// session issues USE. It may name a view that clients declare
	// later over SQL.
	DefaultView string
}

// Server serves a catalog: every table, view, and attached engine of
// one database.
type Server struct {
	db   *root.DB
	opts Options

	// stmtMu serializes SQL statements and verbs on non-engined
	// views; engined-view traffic never takes it. It is the DB's own
	// statement lock — shared so a replica's log applier interleaves
	// whole records with whole statements.
	stmtMu *sync.Mutex

	// shared backs the exported Exec used by tests and benchmarks;
	// real connections each get their own session.
	shared *root.Session

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// New serves db. Engine mode is decided per view by the DB's engine
// registry, not by the server.
func New(db *root.DB, opts Options) *Server {
	s := &Server{db: db, opts: opts, stmtMu: db.StatementMu(), conns: map[net.Conn]struct{}{}}
	s.shared = s.newSession()
	return s
}

func (s *Server) newSession() *root.Session {
	sess := s.db.NewSession()
	if s.opts.DefaultView != "" {
		sess.SetDefaultView(s.opts.DefaultView)
	}
	return sess
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		if !s.track(conn) {
			conn.Close()
			return net.ErrClosed
		}
		go s.session(conn)
	}
}

func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// Close terminates every live session. Callers close the listener
// first (so no new sessions arrive), then Close, then close the DB
// (which drains the attached engines).
func (s *Server) Close() error {
	s.connMu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	s.connMu.Unlock()
	return nil
}

func (s *Server) session(conn net.Conn) {
	defer s.untrack(conn)
	defer conn.Close()
	sess := s.newSession()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		quit, err := s.serveLine(sess, sc.Text(), w)
		if err == nil {
			err = w.Flush()
		}
		if err != nil || quit {
			// err means the response line can no longer be completed
			// coherently (an I/O failure, or a SELECT that died after
			// rows were already on the wire); the only sound move in a
			// line-delimited protocol is to drop the connection.
			return
		}
	}
}

// Exec runs one protocol line against the server's shared session and
// returns the response plus whether the session should end. It is
// exported so tests and benchmarks can drive the statement layer
// without a TCP transport; it is safe for concurrent use (engined
// traffic is lock-free, everything else serializes on the statement
// mutex).
func (s *Server) Exec(line string) (string, bool) {
	var b strings.Builder
	w := bufio.NewWriter(&b)
	quit, err := s.serveLine(s.shared, line, w)
	if err != nil {
		// No wire to desync here — surface the failure as an ERR line.
		return "ERR " + err.Error(), quit
	}
	w.Flush()
	return strings.TrimSuffix(b.String(), "\n"), quit
}

// writeLine writes one complete response line.
func writeLine(w *bufio.Writer, line string) error {
	if _, err := w.WriteString(line); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// serveLine answers one protocol line, writing the full response
// (trailing newline included) to w. The returned error means the
// connection is no longer coherent and must be closed; ordinary
// statement failures are written as ERR lines and return nil.
func (s *Server) serveLine(sess *root.Session, line string, w *bufio.Writer) (quit bool, err error) {
	trimmed := strings.TrimSpace(line)
	fields := strings.Fields(trimmed)
	if len(fields) == 0 {
		return false, writeLine(w, "ERR empty command")
	}
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	switch cmd {
	case "QUIT":
		return true, writeLine(w, "BYE")
	case "SQL":
		stmt := strings.TrimSpace(trimmed[len(fields[0]):])
		if stmt == "" {
			return false, writeLine(w, "ERR usage: SQL <statement>")
		}
		return false, s.streamSQL(sess, stmt, w)
	case "USE":
		if len(args) != 1 {
			return false, writeLine(w, "ERR usage: USE <view>")
		}
		if err := sess.Use(args[0]); err != nil {
			return false, writeLine(w, "ERR "+err.Error())
		}
		return false, writeLine(w, "OK")
	case "PROMOTE":
		// Deliberately outside the statement mutex: stopping the
		// applier waits for its in-flight record, which needs it.
		if err := s.db.Promote(); err != nil {
			return false, writeLine(w, "ERR "+err.Error())
		}
		return false, writeLine(w, "OK")
	}
	return false, writeLine(w, s.execVerb(sess, cmd, args))
}

// streamSQL executes one statement and writes the one-line JSON
// response incrementally: each SELECT row is encoded and written as
// the plan produces it, so a large result flows to the client row at
// a time instead of being materialized. The byte stream is identical
// to a json.Marshal of the equivalent Result.
//
// The statement mutex covers planning and every non-SELECT statement
// (SQL can touch the catalog and non-engined views; inserts targeting
// engined views still route through their engines inside), but NOT
// the streaming: snapshot-bound and table plans read immutable or
// internally locked state, so a client that reads its result slowly
// cannot wedge other connections' statements behind the mutex. Plans
// over live (non-engined) views do need the serialization, so they
// are drained under the mutex — the old materializing behavior —
// and streamed from memory after it is released.
func (s *Server) streamSQL(sess *root.Session, stmt string, w *bufio.Writer) error {
	// PROMOTE must not run under the statement mutex: stopping the
	// replica's applier waits for its in-flight record, and that record
	// holds this very mutex.
	lock := !isPromote(stmt)
	if lock {
		s.stmtMu.Lock()
	}
	rows, err := sess.Query(stmt)
	if err == nil && rows.Live() {
		if merr := rows.Materialize(); merr != nil {
			rows.Close()
			rows, err = nil, merr
		}
	}
	if lock {
		s.stmtMu.Unlock()
	}
	if err != nil {
		return writeLine(w, "ERR "+err.Error())
	}
	defer rows.Close()
	if msg := rows.Msg(); msg != "" {
		data, merr := json.Marshal(root.Result{Msg: msg})
		if merr != nil {
			return writeLine(w, "ERR "+merr.Error())
		}
		return writeLine(w, string(data))
	}
	// Pull the first row before committing any bytes: errors that
	// surface on the first pull — a point read of a missing id — must
	// still become ERR responses, not half-written JSON.
	row, ok, err := rows.Next()
	if err != nil {
		return writeLine(w, "ERR "+err.Error())
	}
	cols, merr := json.Marshal(rows.Cols())
	if merr != nil {
		return writeLine(w, "ERR "+merr.Error())
	}
	if _, err := w.WriteString(`{"cols":` + string(cols)); err != nil {
		return err
	}
	for n := 0; ok; n++ {
		sep := `,`
		if n == 0 {
			sep = `,"rows":[`
		}
		data, merr := json.Marshal(row)
		if merr != nil {
			return merr
		}
		if _, err := w.WriteString(sep + string(data)); err != nil {
			return err
		}
		if row, ok, err = rows.Next(); err != nil {
			// Mid-stream failure with rows already on the wire.
			return err
		}
		if !ok {
			if _, err := w.WriteString(`]`); err != nil {
				return err
			}
		}
	}
	return writeLine(w, `}`)
}

// isPromote reports whether a SQL statement line is PROMOTE (modulo
// spacing and a trailing semicolon).
func isPromote(stmt string) bool {
	return strings.EqualFold(strings.TrimRight(strings.TrimSpace(stmt), "; \t"), "PROMOTE")
}

// splitQualifier resolves an optional leading view qualifier: ok
// when the argument count matches the qualified arity, or for
// variadic verbs when the first argument is not an integer id.
func splitQualifier(args []string, unqualified, qualified int, variadic bool) (view string, rest []string, ok bool) {
	n := len(args)
	switch {
	case variadic:
		if n >= unqualified && isInt(args[0]) {
			return "", args, true
		}
		if n >= qualified && !isInt(args[0]) {
			return args[0], args[1:], true
		}
	case n == unqualified:
		return "", args, true
	case n == qualified:
		return args[0], args[1:], true
	}
	return "", nil, false
}

func isInt(s string) bool {
	_, err := strconv.ParseInt(s, 10, 64)
	return err == nil
}

// execVerb answers one legacy verb. The view is bound exactly once
// per statement: an engined binding runs lock-free and its
// operations stay on the bound engine (a concurrent detach yields an
// explicit engine-closed error, never an unsynchronized fall-through
// to the live view); otherwise the statement mutex is taken and the
// view re-bound under it, so a concurrent attach is either fully
// observed or fully not.
func (s *Server) execVerb(sess *root.Session, cmd string, args []string) string {
	var view string
	var rest []string
	var ok bool
	switch cmd {
	case "LABEL", "UNCERTAIN":
		view, rest, ok = splitQualifier(args, 1, 2, false)
		if !ok {
			return fmt.Sprintf("ERR usage: %s [view] <arg>", cmd)
		}
	case "COUNT", "MEMBERS", "FLUSH", "STATS":
		view, rest, ok = splitQualifier(args, 0, 1, false)
		if !ok {
			return fmt.Sprintf("ERR usage: %s [view]", cmd)
		}
	case "TRAIN", "TRAINA":
		view, rest, ok = splitQualifier(args, 2, 3, false)
		if !ok {
			return fmt.Sprintf("ERR usage: %s [view] <id> <+1|-1>", cmd)
		}
	case "ADD", "ADDA":
		if len(args) < 2 {
			return fmt.Sprintf("ERR usage: %s [view] <id> <text>", cmd)
		}
		view, rest, ok = splitQualifier(args, 2, 3, true)
		if !ok {
			return fmt.Sprintf("ERR usage: %s [view] <id> <text>", cmd)
		}
	case "CLASSIFY":
		// CLASSIFY takes free text, which arity cannot disambiguate
		// from a view name — it always targets the session's default
		// view (USE to retarget), so legacy clients' text is never
		// silently reinterpreted as a qualifier.
		if len(args) == 0 {
			return "ERR usage: CLASSIFY <text>"
		}
		view, rest = "", args
	default:
		return "ERR unknown command " + cmd
	}

	// STATS replica reports the replication collectors (lag, apply
	// rate, reconnects) — unless a view is actually named "replica".
	if cmd == "STATS" && view == "replica" {
		if _, err := s.db.View("replica"); err != nil {
			return s.replicaStats()
		}
	}

	bv, err := sess.Bind(view)
	if err == nil && bv.Engined() {
		return s.applyVerb(bv, cmd, rest)
	}
	// Non-engined (or unresolvable — the error paths) serialize
	// behind the statement mutex; re-bind under it.
	s.stmtMu.Lock()
	defer s.stmtMu.Unlock()
	if bv, err = sess.Bind(view); err != nil {
		return "ERR " + err.Error()
	}
	return s.applyVerb(bv, cmd, rest)
}

func (s *Server) applyVerb(bv *root.BoundView, cmd string, args []string) string {
	switch cmd {
	case "LABEL":
		id, errmsg := parseID(args, "LABEL <id>")
		if errmsg != "" {
			return "ERR " + errmsg
		}
		label, err := bv.Label(id)
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("%+d", label)
	case "COUNT":
		n, err := bv.CountMembers()
		if err != nil {
			return "ERR " + err.Error()
		}
		return strconv.Itoa(n)
	case "MEMBERS":
		ids, err := bv.Members()
		if err != nil {
			return "ERR " + err.Error()
		}
		return joinIDs(ids)
	case "TRAIN", "TRAINA":
		id, label, errmsg := parseTrain(args)
		if errmsg != "" {
			return "ERR " + errmsg
		}
		if label != 1 && label != -1 {
			return fmt.Sprintf("ERR label must be ±1, got %d", label)
		}
		var err error
		if cmd == "TRAINA" {
			if err = bv.TrainAsync(id, label); err == nil {
				return "QUEUED"
			}
		} else if err = bv.Train(id, label); err == nil {
			return "OK"
		}
		return "ERR " + err.Error()
	case "ADD", "ADDA":
		id, text, errmsg := parseAdd(args)
		if errmsg != "" {
			return "ERR " + errmsg
		}
		var err error
		if cmd == "ADDA" {
			if err = bv.AddAsync(id, text); err == nil {
				return "QUEUED"
			}
		} else if err = bv.Add(id, text); err == nil {
			return "OK"
		}
		return "ERR " + err.Error()
	case "FLUSH":
		if err := bv.Flush(); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "CLASSIFY":
		label, err := bv.Classify(strings.Join(args, " "))
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("%+d", label)
	case "UNCERTAIN":
		k, errmsg := parseK(args)
		if errmsg != "" {
			return "ERR " + errmsg
		}
		ids, err := bv.MostUncertain(k)
		if err != nil {
			return "ERR " + err.Error()
		}
		return joinIDs(ids)
	case "STATS":
		vs, engineStats := bv.ViewStats()
		line := fmt.Sprintf("updates=%d reorgs=%d band=%d", vs.Updates, vs.Reorgs, vs.BandTuples)
		if engineStats != "" {
			line += " " + engineStats
		}
		return line
	}
	return "ERR unknown command " + cmd
}

// replicaStats renders the hazy_replica_* collectors as one
// key=value line — the STATS replica verb.
func (s *Server) replicaStats() string {
	var parts []string
	for _, m := range s.db.Metrics().Snapshot() {
		if name, ok := strings.CutPrefix(m.Name, "hazy_replica_"); ok {
			parts = append(parts, fmt.Sprintf("%s=%d", name, m.Value))
		}
	}
	return strings.Join(parts, " ")
}

// parseID parses the single-id argument shape of LABEL.
func parseID(args []string, usage string) (int64, string) {
	if len(args) != 1 {
		return 0, "usage: " + usage
	}
	id, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return 0, "bad id"
	}
	return id, ""
}

// parseTrain parses the shared argument shape of TRAIN/TRAINA.
func parseTrain(args []string) (id int64, label int, errmsg string) {
	if len(args) != 2 {
		return 0, 0, "usage: TRAIN [view] <id> <+1|-1>"
	}
	id, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return 0, 0, "bad id"
	}
	label, err = strconv.Atoi(args[1])
	if err != nil {
		return 0, 0, "bad label"
	}
	return id, label, ""
}

// parseAdd parses the shared argument shape of ADD/ADDA.
func parseAdd(args []string) (id int64, text string, errmsg string) {
	if len(args) < 2 {
		return 0, "", "usage: ADD [view] <id> <text>"
	}
	id, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return 0, "", "bad id"
	}
	return id, strings.Join(args[1:], " "), ""
}

func parseK(args []string) (int, string) {
	if len(args) != 1 {
		return 0, "usage: UNCERTAIN [view] <k>"
	}
	k, err := strconv.Atoi(args[0])
	if err != nil || k < 1 {
		return 0, "bad k"
	}
	return k, ""
}

func joinIDs(ids []int64) string {
	if len(ids) == 0 {
		return "(none)"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.FormatInt(id, 10)
	}
	return strings.Join(parts, " ")
}

// Client is a minimal blocking client for the protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a hazyd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Do sends one command line and returns the response line. An "ERR"
// response is returned as a Go error.
func (c *Client) Do(cmd string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, cmd); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\n")
	if strings.HasPrefix(line, "ERR ") {
		return "", fmt.Errorf("server: %s", line[4:])
	}
	return line, nil
}

// Exec runs one SQL statement through the SQL wire command and
// decodes the result, making Client an executor interchangeable with
// an embedded hazy.Session (the hazyql -connect mode). The statement
// is flattened to one line — the wire protocol is line-delimited — so
// line comments are stripped first (they would otherwise swallow
// everything after them once the newlines are gone).
func (c *Client) Exec(stmt string) (*root.Result, error) {
	flat, err := flattenSQL(stmt)
	if err != nil {
		return nil, err
	}
	line, err := c.Do("SQL " + flat)
	if err != nil {
		return nil, err
	}
	var res root.Result
	if err := json.Unmarshal([]byte(line), &res); err != nil {
		return nil, fmt.Errorf("server: bad SQL response %q: %w", line, err)
	}
	return &res, nil
}

// flattenSQL rewrites a possibly multi-line statement as a single
// line: "--" comments outside string literals are dropped to their
// end of line, and newlines become spaces. Quoted text ('it”s') is
// preserved byte for byte — which is why a newline INSIDE a literal
// is an error: it cannot be sent over the line-delimited protocol
// without either corrupting the data or desyncing the framing.
func flattenSQL(stmt string) (string, error) {
	var b strings.Builder
	inQuote, inComment := false, false
	for i := 0; i < len(stmt); i++ {
		ch := stmt[i]
		switch {
		case inComment:
			if ch == '\n' {
				inComment = false
				b.WriteByte(' ')
			}
		case inQuote:
			if ch == '\n' || ch == '\r' {
				return "", fmt.Errorf("server: string literal with a newline cannot be sent over the line-delimited protocol")
			}
			b.WriteByte(ch)
			if ch == '\'' {
				inQuote = false
			}
		case ch == '\'':
			inQuote = true
			b.WriteByte(ch)
		case ch == '-' && i+1 < len(stmt) && stmt[i+1] == '-':
			inComment = true
			i++
		case ch == '\n' || ch == '\r':
			b.WriteByte(' ')
		default:
			b.WriteByte(ch)
		}
	}
	return strings.TrimSpace(b.String()), nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
