// Package server exposes a Hazy classification view over a TCP
// socket with a newline-delimited text protocol — the deployment
// shape of the paper's prototype (App. B.1: "Hazy runs in a separate
// process and IPC is handled using sockets").
//
// Protocol (one request per line, one response line each):
//
//	LABEL <id>          → "+1" | "-1"
//	COUNT               → "<n>"                  (All Members count)
//	MEMBERS             → "<id> <id> ..."        (ids labeled +1)
//	TRAIN <id> <±1>     → "OK"                   (insert training example)
//	ADD <id> <text...>  → "OK"                   (insert entity)
//	TRAINA <id> <±1>    → "QUEUED"               (async; engine mode only)
//	ADDA <id> <text...> → "QUEUED"               (async; engine mode only)
//	FLUSH               → "OK"                   (barrier; engine mode only)
//	CLASSIFY <text...>  → "+1" | "-1"            (ad-hoc, not stored)
//	UNCERTAIN <k>       → "<id> <id> ..."        (active-learning picks)
//	STATS               → "updates=<n> reorgs=<n> band=<n> [engine counters]"
//	QUIT                → "BYE" and the connection closes
//
// Errors come back as "ERR <message>".
//
// The server runs in one of two modes. In legacy mode (New) every
// statement serializes behind a single mutex — one statement at a
// time, like a session. In engine mode (NewEngine) statements go to
// the concurrent maintenance engine: reads are answered lock-free
// from the engine's published snapshot and writes enter its batched
// update queue, so concurrent sessions scale across cores. TRAIN and
// ADD remain synchronous (the response is sent after the write is
// applied and visible — read-your-writes); TRAINA and ADDA only
// enqueue, and FLUSH is the barrier that makes prior async writes
// visible. FLUSH also surfaces the first failed async write since
// the previous barrier — engine-wide, not per-session: any session's
// FLUSH may collect an error from another session's TRAINA/ADDA.
// Sessions that need per-write errors use the synchronous forms.
package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	root "hazy"
	"hazy/internal/engine"
)

// Uncertain is implemented by views that can surface
// active-learning candidates.
type Uncertain interface {
	MostUncertain(k int) ([]int64, error)
}

// Server serves one classification view and its backing tables.
type Server struct {
	mu       sync.Mutex // legacy mode: one statement at a time
	view     *root.ClassView
	papers   *root.EntityTable
	feedback *root.ExampleTable

	eng *engine.Engine // engine mode when non-nil

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// New wraps a view with its entity and example tables in legacy
// single-mutex mode.
func New(view *root.ClassView, papers *root.EntityTable, feedback *root.ExampleTable) *Server {
	return &Server{view: view, papers: papers, feedback: feedback, conns: map[net.Conn]struct{}{}}
}

// NewEngine serves through a concurrent maintenance engine; every
// statement — reads and writes — is answered by the engine, so no
// server-level lock is taken.
func NewEngine(eng *engine.Engine) *Server {
	return &Server{eng: eng, conns: map[net.Conn]struct{}{}}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		if !s.track(conn) {
			conn.Close()
			return net.ErrClosed
		}
		go s.session(conn)
	}
}

func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// Close terminates every live session. Callers close the listener
// first (so no new sessions arrive), then Close, then drain the
// engine.
func (s *Server) Close() error {
	s.connMu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	s.connMu.Unlock()
	return nil
}

func (s *Server) session(conn net.Conn) {
	defer s.untrack(conn)
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		resp, quit := s.Exec(sc.Text())
		w.WriteString(resp)
		w.WriteByte('\n')
		w.Flush()
		if quit {
			return
		}
	}
}

// Exec runs one protocol line and returns the response plus whether
// the session should end. It is exported so tests and benchmarks can
// drive the statement layer without a TCP transport; it is safe for
// concurrent use in both modes.
func (s *Server) Exec(line string) (string, bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty command", false
	}
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	if cmd == "QUIT" {
		return "BYE", true
	}
	if s.eng != nil {
		return s.execEngine(cmd, args), false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.execLocked(cmd, args), false
}

// parseID parses the single-id argument shape of LABEL.
func parseID(args []string) (int64, string) {
	if len(args) != 1 {
		return 0, "usage: LABEL <id>"
	}
	id, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return 0, "bad id"
	}
	return id, ""
}

// parseTrain parses the shared argument shape of TRAIN/TRAINA.
func parseTrain(args []string) (id int64, label int, errmsg string) {
	if len(args) != 2 {
		return 0, 0, "usage: TRAIN <id> <+1|-1>"
	}
	id, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return 0, 0, "bad id"
	}
	label, err = strconv.Atoi(args[1])
	if err != nil {
		return 0, 0, "bad label"
	}
	return id, label, ""
}

// parseAdd parses the shared argument shape of ADD/ADDA.
func parseAdd(args []string) (id int64, text string, errmsg string) {
	if len(args) < 2 {
		return 0, "", "usage: ADD <id> <text>"
	}
	id, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return 0, "", "bad id"
	}
	return id, strings.Join(args[1:], " "), ""
}

// execEngine answers one statement through the maintenance engine.
// Reads take no locks at all; writes enqueue into the engine.
func (s *Server) execEngine(cmd string, args []string) string {
	switch cmd {
	case "LABEL":
		id, errmsg := parseID(args)
		if errmsg != "" {
			return "ERR " + errmsg
		}
		label, err := s.eng.Label(id)
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("%+d", label)
	case "COUNT":
		n, _ := s.eng.CountMembers()
		return strconv.Itoa(n)
	case "MEMBERS":
		ids, _ := s.eng.Members()
		return joinIDs(ids)
	case "TRAIN", "TRAINA":
		id, label, errmsg := parseTrain(args)
		if errmsg != "" {
			return "ERR " + errmsg
		}
		if label != 1 && label != -1 {
			return fmt.Sprintf("ERR label must be ±1, got %d", label)
		}
		if cmd == "TRAINA" {
			if err := s.eng.TrainAsync(id, label); err != nil {
				return "ERR " + err.Error()
			}
			return "QUEUED"
		}
		if err := s.eng.Train(id, label); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "ADD", "ADDA":
		id, text, errmsg := parseAdd(args)
		if errmsg != "" {
			return "ERR " + errmsg
		}
		if cmd == "ADDA" {
			if err := s.eng.AddAsync(id, text); err != nil {
				return "ERR " + err.Error()
			}
			return "QUEUED"
		}
		if err := s.eng.Add(id, text); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "FLUSH":
		if err := s.eng.Flush(); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "CLASSIFY":
		if len(args) == 0 {
			return "ERR usage: CLASSIFY <text>"
		}
		return fmt.Sprintf("%+d", s.eng.Classify(strings.Join(args, " ")))
	case "UNCERTAIN":
		k, errmsg := parseK(args)
		if errmsg != "" {
			return "ERR " + errmsg
		}
		ids, err := s.eng.MostUncertain(k)
		if err != nil {
			return "ERR " + err.Error()
		}
		return joinIDs(ids)
	case "STATS":
		vs := s.eng.ViewStats()
		return fmt.Sprintf("updates=%d reorgs=%d band=%d %s",
			vs.Updates, vs.Reorgs, vs.BandTuples, s.eng.Stats())
	default:
		return "ERR unknown command " + cmd
	}
}

func parseK(args []string) (int, string) {
	if len(args) != 1 {
		return 0, "usage: UNCERTAIN <k>"
	}
	k, err := strconv.Atoi(args[0])
	if err != nil || k < 1 {
		return 0, "bad k"
	}
	return k, ""
}

// execLocked is the legacy path: the caller holds s.mu.
func (s *Server) execLocked(cmd string, args []string) string {
	switch cmd {
	case "LABEL":
		id, errmsg := parseID(args)
		if errmsg != "" {
			return "ERR " + errmsg
		}
		label, err := s.view.Label(id)
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("%+d", label)
	case "COUNT":
		n, err := s.view.CountMembers()
		if err != nil {
			return "ERR " + err.Error()
		}
		return strconv.Itoa(n)
	case "MEMBERS":
		ids, err := s.view.Members()
		if err != nil {
			return "ERR " + err.Error()
		}
		return joinIDs(ids)
	case "TRAIN":
		id, label, errmsg := parseTrain(args)
		if errmsg != "" {
			return "ERR " + errmsg
		}
		if err := s.feedback.InsertExample(id, label); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "ADD":
		id, text, errmsg := parseAdd(args)
		if errmsg != "" {
			return "ERR " + errmsg
		}
		if err := s.papers.InsertText(id, text); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "CLASSIFY":
		if len(args) == 0 {
			return "ERR usage: CLASSIFY <text>"
		}
		return fmt.Sprintf("%+d", s.view.Classify(strings.Join(args, " ")))
	case "UNCERTAIN":
		k, errmsg := parseK(args)
		if errmsg != "" {
			return "ERR " + errmsg
		}
		u, ok := s.view.Core().(Uncertain)
		if !ok {
			return "ERR view does not support uncertainty ranking"
		}
		ids, err := u.MostUncertain(k)
		if err != nil {
			return "ERR " + err.Error()
		}
		return joinIDs(ids)
	case "STATS":
		st := s.view.Stats()
		return fmt.Sprintf("updates=%d reorgs=%d band=%d", st.Updates, st.Reorgs, st.BandTuples)
	default:
		return "ERR unknown command " + cmd
	}
}

func joinIDs(ids []int64) string {
	if len(ids) == 0 {
		return "(none)"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.FormatInt(id, 10)
	}
	return strings.Join(parts, " ")
}

// Client is a minimal blocking client for the protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a hazyd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Do sends one command line and returns the response line. An "ERR"
// response is returned as a Go error.
func (c *Client) Do(cmd string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, cmd); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\n")
	if strings.HasPrefix(line, "ERR ") {
		return "", fmt.Errorf("server: %s", line[4:])
	}
	return line, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
