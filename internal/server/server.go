// Package server exposes a Hazy classification view over a TCP
// socket with a newline-delimited text protocol — the deployment
// shape of the paper's prototype (App. B.1: "Hazy runs in a separate
// process and IPC is handled using sockets").
//
// Protocol (one request per line, one response line each):
//
//	LABEL <id>          → "+1" | "-1"
//	COUNT               → "<n>"                  (All Members count)
//	MEMBERS             → "<id> <id> ..."        (ids labeled +1)
//	TRAIN <id> <±1>     → "OK"                   (insert training example)
//	ADD <id> <text...>  → "OK"                   (insert entity)
//	CLASSIFY <text...>  → "+1" | "-1"            (ad-hoc, not stored)
//	UNCERTAIN <k>       → "<id> <id> ..."        (active-learning picks)
//	STATS               → "updates=<n> reorgs=<n> band=<n>"
//	QUIT                → "BYE" and the connection closes
//
// Errors come back as "ERR <message>".
package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	root "hazy"
)

// Uncertain is implemented by views that can surface
// active-learning candidates.
type Uncertain interface {
	MostUncertain(k int) ([]int64, error)
}

// Server serves one classification view and its backing tables.
type Server struct {
	mu       sync.Mutex // one statement at a time, like a session
	view     *root.ClassView
	papers   *root.EntityTable
	feedback *root.ExampleTable
}

// New wraps a view with its entity and example tables.
func New(view *root.ClassView, papers *root.EntityTable, feedback *root.ExampleTable) *Server {
	return &Server{view: view, papers: papers, feedback: feedback}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.session(conn)
	}
}

func (s *Server) session(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		resp, quit := s.exec(sc.Text())
		w.WriteString(resp)
		w.WriteByte('\n')
		w.Flush()
		if quit {
			return
		}
	}
}

// exec runs one protocol line and returns the response plus whether
// the session should end.
func (s *Server) exec(line string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty command", false
	}
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	switch cmd {
	case "QUIT":
		return "BYE", true
	case "LABEL":
		if len(args) != 1 {
			return "ERR usage: LABEL <id>", false
		}
		id, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return "ERR bad id", false
		}
		label, err := s.view.Label(id)
		if err != nil {
			return "ERR " + err.Error(), false
		}
		return fmt.Sprintf("%+d", label), false
	case "COUNT":
		n, err := s.view.CountMembers()
		if err != nil {
			return "ERR " + err.Error(), false
		}
		return strconv.Itoa(n), false
	case "MEMBERS":
		ids, err := s.view.Members()
		if err != nil {
			return "ERR " + err.Error(), false
		}
		return joinIDs(ids), false
	case "TRAIN":
		if len(args) != 2 {
			return "ERR usage: TRAIN <id> <+1|-1>", false
		}
		id, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return "ERR bad id", false
		}
		label, err := strconv.Atoi(args[1])
		if err != nil {
			return "ERR bad label", false
		}
		if err := s.feedback.InsertExample(id, label); err != nil {
			return "ERR " + err.Error(), false
		}
		return "OK", false
	case "ADD":
		if len(args) < 2 {
			return "ERR usage: ADD <id> <text>", false
		}
		id, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return "ERR bad id", false
		}
		if err := s.papers.InsertText(id, strings.Join(args[1:], " ")); err != nil {
			return "ERR " + err.Error(), false
		}
		return "OK", false
	case "CLASSIFY":
		if len(args) == 0 {
			return "ERR usage: CLASSIFY <text>", false
		}
		return fmt.Sprintf("%+d", s.view.Classify(strings.Join(args, " "))), false
	case "UNCERTAIN":
		if len(args) != 1 {
			return "ERR usage: UNCERTAIN <k>", false
		}
		k, err := strconv.Atoi(args[0])
		if err != nil || k < 1 {
			return "ERR bad k", false
		}
		u, ok := s.view.Core().(Uncertain)
		if !ok {
			return "ERR view does not support uncertainty ranking", false
		}
		ids, err := u.MostUncertain(k)
		if err != nil {
			return "ERR " + err.Error(), false
		}
		return joinIDs(ids), false
	case "STATS":
		st := s.view.Stats()
		return fmt.Sprintf("updates=%d reorgs=%d band=%d", st.Updates, st.Reorgs, st.BandTuples), false
	default:
		return "ERR unknown command " + cmd, false
	}
}

func joinIDs(ids []int64) string {
	if len(ids) == 0 {
		return "(none)"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.FormatInt(id, 10)
	}
	return strings.Join(parts, " ")
}

// Client is a minimal blocking client for the protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a hazyd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Do sends one command line and returns the response line. An "ERR"
// response is returned as a Go error.
func (c *Client) Do(cmd string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, cmd); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\n")
	if strings.HasPrefix(line, "ERR ") {
		return "", fmt.Errorf("server: %s", line[4:])
	}
	return line, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
