package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	root "hazy"
)

// startServer brings up a full stack — database, view, TCP listener —
// and returns a connected client.
func startServer(t *testing.T) *Client {
	t.Helper()
	db, err := root.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	papers, err := db.CreateEntityTable("papers", "title")
	if err != nil {
		t.Fatal(err)
	}
	feedback, err := db.CreateExampleTable("feedback")
	if err != nil {
		t.Fatal(err)
	}
	view, err := db.CreateClassificationView(root.ViewSpec{
		Name: "labeled", Entities: "papers", Examples: "feedback",
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go New(view, papers, feedback).Serve(l) //nolint:errcheck — ends with listener

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func must(t *testing.T, c *Client, cmd string) string {
	t.Helper()
	resp, err := c.Do(cmd)
	if err != nil {
		t.Fatalf("%s → %v", cmd, err)
	}
	return resp
}

func TestProtocolEndToEnd(t *testing.T) {
	c := startServer(t)
	// Build a tiny corpus over the wire.
	dbTitles := []string{
		"relational database query optimization",
		"sql index selection for relational databases",
		"database transaction processing",
	}
	osTitles := []string{
		"kernel scheduler for operating systems",
		"interrupt handling in kernel drivers",
		"operating systems memory paging",
	}
	for i, title := range dbTitles {
		must(t, c, fmt.Sprintf("ADD %d %s", i, title))
	}
	for i, title := range osTitles {
		must(t, c, fmt.Sprintf("ADD %d %s", 100+i, title))
	}
	// Feedback.
	must(t, c, "TRAIN 0 +1")
	must(t, c, "TRAIN 100 -1")
	must(t, c, "TRAIN 1 1")
	must(t, c, "TRAIN 101 -1")

	if got := must(t, c, "LABEL 2"); got != "+1" {
		t.Fatalf("LABEL 2 = %q", got)
	}
	if got := must(t, c, "LABEL 102"); got != "-1" {
		t.Fatalf("LABEL 102 = %q", got)
	}
	if got := must(t, c, "COUNT"); got != "3" {
		t.Fatalf("COUNT = %q", got)
	}
	members := must(t, c, "MEMBERS")
	for _, id := range []string{"0", "1", "2"} {
		if !strings.Contains(" "+members+" ", " "+id+" ") {
			t.Fatalf("MEMBERS %q missing %s", members, id)
		}
	}
	if got := must(t, c, "CLASSIFY sql query database index"); got != "+1" {
		t.Fatalf("CLASSIFY = %q", got)
	}
	unc := must(t, c, "UNCERTAIN 2")
	if len(strings.Fields(unc)) != 2 {
		t.Fatalf("UNCERTAIN = %q", unc)
	}
	stats := must(t, c, "STATS")
	if !strings.Contains(stats, "updates=4") {
		t.Fatalf("STATS = %q", stats)
	}
	if got := must(t, c, "QUIT"); got != "BYE" {
		t.Fatalf("QUIT = %q", got)
	}
}

func TestProtocolErrors(t *testing.T) {
	c := startServer(t)
	bad := []string{
		"",
		"BOGUS",
		"LABEL",
		"LABEL notanumber",
		"LABEL 999",
		"TRAIN 1",
		"TRAIN 1 7",
		"TRAIN 999 1",
		"ADD 5",
		"CLASSIFY",
		"UNCERTAIN x",
		"UNCERTAIN 0",
	}
	for _, cmd := range bad {
		if _, err := c.Do(cmd); err == nil {
			t.Fatalf("no error for %q", cmd)
		}
	}
	// The session survives errors.
	if _, err := c.Do("COUNT"); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClients(t *testing.T) {
	c := startServer(t)
	must(t, c, "ADD 1 relational database query")
	must(t, c, "ADD 2 kernel interrupt scheduler")
	must(t, c, "TRAIN 1 +1")
	must(t, c, "TRAIN 2 -1")
	addr := c.conn.RemoteAddr().String()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cc.Close()
			for i := 0; i < 50; i++ {
				if _, err := cc.Do("LABEL 1"); err != nil {
					errs <- err
					return
				}
				if _, err := cc.Do("COUNT"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
