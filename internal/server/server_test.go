package server

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"

	root "hazy"
)

// startStack brings up a full stack — database, view, TCP listener —
// in either legacy (single-mutex) or engine mode and returns a
// connected client.
func startStack(t *testing.T, engineMode bool) *Client {
	t.Helper()
	db, err := root.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Registered before the engine's cleanup so LIFO order drains the
	// engine first, then closes the database.
	t.Cleanup(func() { db.Close() })
	papers, err := db.CreateEntityTable("papers", "title")
	if err != nil {
		t.Fatal(err)
	}
	feedback, err := db.CreateExampleTable("feedback")
	if err != nil {
		t.Fatal(err)
	}
	view, err := db.CreateClassificationView(root.ViewSpec{
		Name: "labeled", Entities: "papers", Examples: "feedback",
	})
	if err != nil {
		t.Fatal(err)
	}
	var srv *Server
	if engineMode {
		eng, err := db.Engine(view, root.EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		srv = NewEngine(eng)
	} else {
		srv = New(view, papers, feedback)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close(); srv.Close() })
	go srv.Serve(l) //nolint:errcheck — ends with listener

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// bothModes runs fn against a legacy-mode and an engine-mode stack.
func bothModes(t *testing.T, fn func(t *testing.T, c *Client)) {
	t.Run("mutex", func(t *testing.T) { fn(t, startStack(t, false)) })
	t.Run("engine", func(t *testing.T) { fn(t, startStack(t, true)) })
}

func must(t *testing.T, c *Client, cmd string) string {
	t.Helper()
	resp, err := c.Do(cmd)
	if err != nil {
		t.Fatalf("%s → %v", cmd, err)
	}
	return resp
}

func TestProtocolEndToEnd(t *testing.T) {
	bothModes(t, func(t *testing.T, c *Client) {
		// Build a tiny corpus over the wire.
		dbTitles := []string{
			"relational database query optimization",
			"sql index selection for relational databases",
			"database transaction processing",
		}
		osTitles := []string{
			"kernel scheduler for operating systems",
			"interrupt handling in kernel drivers",
			"operating systems memory paging",
		}
		for i, title := range dbTitles {
			must(t, c, fmt.Sprintf("ADD %d %s", i, title))
		}
		for i, title := range osTitles {
			must(t, c, fmt.Sprintf("ADD %d %s", 100+i, title))
		}
		// Feedback.
		must(t, c, "TRAIN 0 +1")
		must(t, c, "TRAIN 100 -1")
		must(t, c, "TRAIN 1 1")
		must(t, c, "TRAIN 101 -1")

		if got := must(t, c, "LABEL 2"); got != "+1" {
			t.Fatalf("LABEL 2 = %q", got)
		}
		if got := must(t, c, "LABEL 102"); got != "-1" {
			t.Fatalf("LABEL 102 = %q", got)
		}
		if got := must(t, c, "COUNT"); got != "3" {
			t.Fatalf("COUNT = %q", got)
		}
		members := must(t, c, "MEMBERS")
		for _, id := range []string{"0", "1", "2"} {
			if !strings.Contains(" "+members+" ", " "+id+" ") {
				t.Fatalf("MEMBERS %q missing %s", members, id)
			}
		}
		if got := must(t, c, "CLASSIFY sql query database index"); got != "+1" {
			t.Fatalf("CLASSIFY = %q", got)
		}
		unc := must(t, c, "UNCERTAIN 2")
		if len(strings.Fields(unc)) != 2 {
			t.Fatalf("UNCERTAIN = %q", unc)
		}
		stats := must(t, c, "STATS")
		if !strings.Contains(stats, "updates=4") {
			t.Fatalf("STATS = %q", stats)
		}
		if got := must(t, c, "QUIT"); got != "BYE" {
			t.Fatalf("QUIT = %q", got)
		}
	})
}

func TestProtocolErrors(t *testing.T) {
	bothModes(t, func(t *testing.T, c *Client) {
		bad := []string{
			"",
			"BOGUS",
			"LABEL",
			"LABEL notanumber",
			"LABEL 999",
			"TRAIN 1",
			"TRAIN 1 7",
			"TRAIN 999 1",
			"ADD 5",
			"CLASSIFY",
			"UNCERTAIN x",
			"UNCERTAIN 0",
		}
		for _, cmd := range bad {
			if _, err := c.Do(cmd); err == nil {
				t.Fatalf("no error for %q", cmd)
			}
		}
		// The session survives errors.
		if _, err := c.Do("COUNT"); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAsyncTrainAndFlush exercises the engine-only protocol: TRAINA
// enqueues without waiting and FLUSH is the barrier after which the
// write is visible (read-your-writes for async writers).
func TestAsyncTrainAndFlush(t *testing.T) {
	c := startStack(t, true)
	must(t, c, "ADD 1 relational database query optimization")
	must(t, c, "ADD 2 kernel interrupt scheduler")
	if got := must(t, c, "TRAINA 1 +1"); got != "QUEUED" {
		t.Fatalf("TRAINA = %q", got)
	}
	if got := must(t, c, "TRAINA 2 -1"); got != "QUEUED" {
		t.Fatalf("TRAINA = %q", got)
	}
	if got := must(t, c, "FLUSH"); got != "OK" {
		t.Fatalf("FLUSH = %q", got)
	}
	if got := must(t, c, "LABEL 1"); got != "+1" {
		t.Fatalf("LABEL 1 after FLUSH = %q", got)
	}
	stats := must(t, c, "STATS")
	if !strings.Contains(stats, "updates=2") || !strings.Contains(stats, "trains=2") {
		t.Fatalf("STATS = %q", stats)
	}
	// A failed async op surfaces on the next FLUSH.
	must(t, c, "TRAINA 999 +1")
	if _, err := c.Do("FLUSH"); err == nil {
		t.Fatal("FLUSH after bad TRAINA reported no error")
	}
	// ADDA is async too.
	if got := must(t, c, "ADDA 3 database systems storage engines"); got != "QUEUED" {
		t.Fatalf("ADDA = %q", got)
	}
	must(t, c, "FLUSH")
	if got := must(t, c, "LABEL 3"); got != "+1" && got != "-1" {
		t.Fatalf("LABEL 3 = %q", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	bothModes(t, func(t *testing.T, c *Client) {
		must(t, c, "ADD 1 relational database query")
		must(t, c, "ADD 2 kernel interrupt scheduler")
		must(t, c, "TRAIN 1 +1")
		must(t, c, "TRAIN 2 -1")
		addr := c.conn.RemoteAddr().String()

		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cc, err := Dial(addr)
				if err != nil {
					errs <- err
					return
				}
				defer cc.Close()
				for i := 0; i < 50; i++ {
					if _, err := cc.Do("LABEL 1"); err != nil {
						errs <- err
						return
					}
					if _, err := cc.Do("COUNT"); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	})
}

// TestConcurrentTrainAndLabel is the engine's concurrent-session
// soak: N sessions interleave TRAIN (sync and async) with LABEL and
// COUNT against one view. Under -race this asserts the read and
// write paths share no unsynchronized state; after a final FLUSH the
// view must have converged — every queued example applied, and every
// session observing the same labels.
func TestConcurrentTrainAndLabel(t *testing.T) {
	c := startStack(t, true)
	// Corpus: two topics, ids 1..40.
	const perTopic = 20
	for i := 0; i < perTopic; i++ {
		must(t, c, fmt.Sprintf("ADD %d relational database query optimization paper %d", i+1, i))
		must(t, c, fmt.Sprintf("ADD %d kernel scheduler interrupt driver paper %d", 100+i, i))
	}
	addr := c.conn.RemoteAddr().String()

	const goroutines = 8
	const perG = 4 // distinct example ids per goroutine (< perTopic/2 per topic)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cc, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cc.Close()
			for i := 0; i < perG; i++ {
				// Even goroutines label database papers +1, odd ones
				// kernel papers −1; ids are disjoint across sessions.
				id := g/2*perG + i + 1
				cmd := fmt.Sprintf("TRAIN %d +1", id)
				if g%2 == 1 {
					cmd = fmt.Sprintf("TRAINA %d -1", 100+id)
				}
				if _, err := cc.Do(cmd); err != nil {
					errs <- fmt.Errorf("g%d: %s: %w", g, cmd, err)
					return
				}
				for _, read := range []string{"LABEL 1", "LABEL 101", "COUNT"} {
					if _, err := cc.Do(read); err != nil {
						errs <- fmt.Errorf("g%d: %s: %w", g, read, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	must(t, c, "FLUSH")
	// Convergence: every example was applied...
	stats := must(t, c, "STATS")
	wantUpdates := fmt.Sprintf("updates=%d", goroutines*perG)
	if !strings.Contains(stats, wantUpdates) {
		t.Fatalf("STATS = %q, want %s", stats, wantUpdates)
	}
	// ...and the labels separate the two topics, observed identically
	// from a second session.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for _, cc := range []*Client{c, c2} {
		if got := must(t, cc, "LABEL 1"); got != "+1" {
			t.Fatalf("LABEL 1 = %q after convergence", got)
		}
		if got := must(t, cc, "LABEL 101"); got != "-1" {
			t.Fatalf("LABEL 101 = %q after convergence", got)
		}
		n, err := strconv.Atoi(must(t, cc, "COUNT"))
		if err != nil || n != perTopic {
			t.Fatalf("COUNT = %d (%v), want %d", n, err, perTopic)
		}
	}
}
