package server

import (
	"fmt"
	"net"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	root "hazy"
)

// startDB brings up a database with one papers/feedback/labeled
// stack, optionally engine-managed, a TCP listener, and a connected
// client.
func startDB(t *testing.T, engineMode bool) (*root.DB, *Client) {
	t.Helper()
	db, err := root.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// db.Close drains any attached engine before closing storage.
	t.Cleanup(func() { db.Close() })
	if _, err := db.CreateEntityTable("papers", "title"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateExampleTable("feedback"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateClassificationView(root.ViewSpec{
		Name: "labeled", Entities: "papers", Examples: "feedback",
	}); err != nil {
		t.Fatal(err)
	}
	if engineMode {
		if _, err := db.AttachEngine("labeled", root.EngineOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	return db, serve(t, db, "labeled")
}

// serve starts a listener over db and returns a connected client.
func serve(t *testing.T, db *root.DB, defaultView string) *Client {
	t.Helper()
	srv := New(db, Options{DefaultView: defaultView})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close(); srv.Close() })
	go srv.Serve(l) //nolint:errcheck — ends with listener

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// startStack is startDB without the db handle.
func startStack(t *testing.T, engineMode bool) *Client {
	t.Helper()
	_, c := startDB(t, engineMode)
	return c
}

// bothModes runs fn against a legacy-mode and an engine-mode stack.
func bothModes(t *testing.T, fn func(t *testing.T, c *Client)) {
	t.Run("mutex", func(t *testing.T) { fn(t, startStack(t, false)) })
	t.Run("engine", func(t *testing.T) { fn(t, startStack(t, true)) })
}

func must(t *testing.T, c *Client, cmd string) string {
	t.Helper()
	resp, err := c.Do(cmd)
	if err != nil {
		t.Fatalf("%s → %v", cmd, err)
	}
	return resp
}

func TestProtocolEndToEnd(t *testing.T) {
	bothModes(t, func(t *testing.T, c *Client) {
		// Build a tiny corpus over the wire.
		dbTitles := []string{
			"relational database query optimization",
			"sql index selection for relational databases",
			"database transaction processing",
		}
		osTitles := []string{
			"kernel scheduler for operating systems",
			"interrupt handling in kernel drivers",
			"operating systems memory paging",
		}
		for i, title := range dbTitles {
			must(t, c, fmt.Sprintf("ADD %d %s", i, title))
		}
		for i, title := range osTitles {
			must(t, c, fmt.Sprintf("ADD %d %s", 100+i, title))
		}
		// Feedback.
		must(t, c, "TRAIN 0 +1")
		must(t, c, "TRAIN 100 -1")
		must(t, c, "TRAIN 1 1")
		must(t, c, "TRAIN 101 -1")

		if got := must(t, c, "LABEL 2"); got != "+1" {
			t.Fatalf("LABEL 2 = %q", got)
		}
		if got := must(t, c, "LABEL 102"); got != "-1" {
			t.Fatalf("LABEL 102 = %q", got)
		}
		if got := must(t, c, "COUNT"); got != "3" {
			t.Fatalf("COUNT = %q", got)
		}
		members := must(t, c, "MEMBERS")
		for _, id := range []string{"0", "1", "2"} {
			if !strings.Contains(" "+members+" ", " "+id+" ") {
				t.Fatalf("MEMBERS %q missing %s", members, id)
			}
		}
		if got := must(t, c, "CLASSIFY sql query database index"); got != "+1" {
			t.Fatalf("CLASSIFY = %q", got)
		}
		unc := must(t, c, "UNCERTAIN 2")
		if len(strings.Fields(unc)) != 2 {
			t.Fatalf("UNCERTAIN = %q", unc)
		}
		stats := must(t, c, "STATS")
		if !strings.Contains(stats, "updates=4") {
			t.Fatalf("STATS = %q", stats)
		}
		if got := must(t, c, "QUIT"); got != "BYE" {
			t.Fatalf("QUIT = %q", got)
		}
	})
}

func TestProtocolErrors(t *testing.T) {
	bothModes(t, func(t *testing.T, c *Client) {
		bad := []string{
			"",
			"BOGUS",
			"LABEL",
			"LABEL notanumber",
			"LABEL 999",
			"TRAIN 1",
			"TRAIN 1 7",
			"TRAIN 999 1",
			"ADD 5",
			"CLASSIFY",
			"UNCERTAIN x",
			"UNCERTAIN 0",
		}
		for _, cmd := range bad {
			if _, err := c.Do(cmd); err == nil {
				t.Fatalf("no error for %q", cmd)
			}
		}
		// The session survives errors.
		if _, err := c.Do("COUNT"); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAsyncTrainAndFlush exercises the engine-only protocol: TRAINA
// enqueues without waiting and FLUSH is the barrier after which the
// write is visible (read-your-writes for async writers).
func TestAsyncTrainAndFlush(t *testing.T) {
	c := startStack(t, true)
	must(t, c, "ADD 1 relational database query optimization")
	must(t, c, "ADD 2 kernel interrupt scheduler")
	if got := must(t, c, "TRAINA 1 +1"); got != "QUEUED" {
		t.Fatalf("TRAINA = %q", got)
	}
	if got := must(t, c, "TRAINA 2 -1"); got != "QUEUED" {
		t.Fatalf("TRAINA = %q", got)
	}
	if got := must(t, c, "FLUSH"); got != "OK" {
		t.Fatalf("FLUSH = %q", got)
	}
	if got := must(t, c, "LABEL 1"); got != "+1" {
		t.Fatalf("LABEL 1 after FLUSH = %q", got)
	}
	stats := must(t, c, "STATS")
	if !strings.Contains(stats, "updates=2") || !strings.Contains(stats, "trains=2") {
		t.Fatalf("STATS = %q", stats)
	}
	// A failed async op surfaces on the next FLUSH.
	must(t, c, "TRAINA 999 +1")
	if _, err := c.Do("FLUSH"); err == nil {
		t.Fatal("FLUSH after bad TRAINA reported no error")
	}
	// ADDA is async too.
	if got := must(t, c, "ADDA 3 database systems storage engines"); got != "QUEUED" {
		t.Fatalf("ADDA = %q", got)
	}
	must(t, c, "FLUSH")
	if got := must(t, c, "LABEL 3"); got != "+1" && got != "-1" {
		t.Fatalf("LABEL 3 = %q", got)
	}
}

// TestViewQualifiedVerbs drives the same protocol through explicit
// view names and USE instead of the server default.
func TestViewQualifiedVerbs(t *testing.T) {
	bothModes(t, func(t *testing.T, c *Client) {
		must(t, c, "ADD labeled 1 relational database query optimization")
		must(t, c, "ADD labeled 2 kernel interrupt scheduler")
		must(t, c, "TRAIN labeled 1 +1")
		must(t, c, "TRAIN labeled 2 -1")
		if got := must(t, c, "LABEL labeled 1"); got != "+1" {
			t.Fatalf("LABEL labeled 1 = %q", got)
		}
		if got := must(t, c, "COUNT labeled"); got != "1" {
			t.Fatalf("COUNT labeled = %q", got)
		}
		if got := must(t, c, "MEMBERS labeled"); got != "1" {
			t.Fatalf("MEMBERS labeled = %q", got)
		}
		if _, err := c.Do("LABEL nope 1"); err == nil {
			t.Fatal("unknown view accepted")
		}
		if _, err := c.Do("USE nope"); err == nil {
			t.Fatal("USE of unknown view accepted")
		}
		must(t, c, "USE labeled")
		if got := must(t, c, "LABEL 2"); got != "-1" {
			t.Fatalf("LABEL 2 after USE = %q", got)
		}
	})
}

// TestMultiViewServer serves two views from one catalog — one
// engine-managed, one legacy trigger-maintained — through a single
// connection, using view-qualified verbs and SQL.
func TestMultiViewServer(t *testing.T) {
	db, c := startDB(t, true) // "labeled" is engined
	if _, err := db.CreateEntityTable("docs", "body"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateExampleTable("votes"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateClassificationView(root.ViewSpec{
		Name: "tagged", Entities: "docs", Examples: "votes",
	}); err != nil {
		t.Fatal(err)
	}

	// Populate both views over the wire.
	must(t, c, "ADD labeled 1 relational database query optimization")
	must(t, c, "ADD labeled 2 kernel interrupt scheduler")
	must(t, c, "TRAIN labeled 1 +1")
	must(t, c, "TRAIN labeled 2 -1")
	must(t, c, "ADD tagged 10 spam lottery winner click now")
	must(t, c, "ADD tagged 11 meeting notes from the design review")
	must(t, c, "TRAIN tagged 10 +1")
	must(t, c, "TRAIN tagged 11 -1")

	if got := must(t, c, "LABEL labeled 1"); got != "+1" {
		t.Fatalf("LABEL labeled 1 = %q", got)
	}
	if got := must(t, c, "LABEL tagged 10"); got != "+1" {
		t.Fatalf("LABEL tagged 10 = %q", got)
	}
	if got := must(t, c, "LABEL tagged 11"); got != "-1" {
		t.Fatalf("LABEL tagged 11 = %q", got)
	}
	// Engine mode is per view: async writes work on the engined view
	// and are rejected on the legacy one.
	must(t, c, "ADD labeled 3 database transaction processing")
	if got := must(t, c, "TRAINA labeled 3 +1"); got != "QUEUED" {
		t.Fatalf("TRAINA labeled = %q", got)
	}
	must(t, c, "FLUSH labeled")
	if _, err := c.Do("TRAINA tagged 11 -1"); err == nil {
		t.Fatal("TRAINA on a non-engined view accepted")
	}
	// The engined view's STATS carry engine counters; the legacy one's
	// do not.
	if got := must(t, c, "STATS labeled"); !strings.Contains(got, "snapver=") {
		t.Fatalf("STATS labeled = %q, want engine counters", got)
	}
	if got := must(t, c, "STATS tagged"); strings.Contains(got, "snapver=") {
		t.Fatalf("STATS tagged = %q, want no engine counters", got)
	}
	// SQL sees the whole catalog.
	res := mustSQL(t, c, "SELECT COUNT(*) FROM tagged WHERE class = 1")
	if len(res.Rows) != 1 || res.Rows[0][0] != "1" {
		t.Fatalf("SQL count over tagged = %+v", res)
	}
	// The trained-positive ids are members (the tiny corpus makes the
	// untrained tail's labels model noise, so only inclusion is
	// asserted).
	res = mustSQL(t, c, "SELECT id FROM labeled WHERE class = 1")
	got := map[string]bool{}
	for _, row := range res.Rows {
		got[row[0]] = true
	}
	if !got["1"] || !got["3"] {
		t.Fatalf("SQL members over labeled = %+v", res)
	}
}

func mustSQL(t *testing.T, c *Client, stmt string) *root.Result {
	t.Helper()
	res, err := c.Exec(stmt)
	if err != nil {
		t.Fatalf("SQL %s → %v", stmt, err)
	}
	return res
}

// TestSQLOverTCP runs the full §2.1 statement sequence — DDL, view
// declaration, engine attach, inserts, selects — through the SQL wire
// command.
func TestSQLOverTCP(t *testing.T) {
	db, err := root.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	c := serve(t, db, "")

	for _, stmt := range []string{
		"CREATE TABLE papers (id BIGINT, title TEXT) KEY id",
		"CREATE TABLE feedback (id BIGINT, label BIGINT) KEY id",
		`INSERT INTO papers VALUES
			(1, 'relational query optimization and indexing'),
			(2, 'kernel scheduling for multicore operating systems'),
			(3, 'sql views and transaction processing')`,
		`CREATE CLASSIFICATION VIEW labeled KEY id
			ENTITIES FROM papers KEY id
			EXAMPLES FROM feedback KEY id LABEL l
			FEATURE FUNCTION tf_bag_of_words USING SVM`,
		"ATTACH ENGINE TO labeled",
		"INSERT INTO feedback VALUES (1, 1), (2, -1)",
	} {
		if _, err := c.Exec(stmt); err != nil {
			t.Fatalf("%s → %v", stmt, err)
		}
	}
	res := mustSQL(t, c, "SELECT class FROM labeled WHERE id = 3")
	if len(res.Rows) != 1 || res.Rows[0][0] != "1" {
		t.Fatalf("SELECT class = %+v", res)
	}
	// The engine attached over SQL serves the verbs too.
	if got := must(t, c, "LABEL labeled 3"); got != "+1" {
		t.Fatalf("LABEL labeled 3 = %q", got)
	}
	if got := must(t, c, "TRAINA labeled 3 +1"); got != "QUEUED" {
		t.Fatalf("TRAINA = %q", got)
	}
	must(t, c, "FLUSH labeled")
	if _, err := c.Exec("DETACH ENGINE FROM labeled"); err != nil {
		t.Fatal(err)
	}
	// Detached: trigger maintenance resumes, SQL still answers.
	res = mustSQL(t, c, "SELECT COUNT(*) FROM labeled")
	if len(res.Rows) != 1 || res.Rows[0][0] != "3" {
		t.Fatalf("full count after detach = %+v", res)
	}
	res = mustSQL(t, c, "SELECT class FROM labeled WHERE id = 1")
	if len(res.Rows) != 1 || res.Rows[0][0] != "1" {
		t.Fatalf("class of trained-positive entity after detach = %+v", res)
	}
	if _, err := c.Exec("SELECT * FROM nope"); err == nil {
		t.Fatal("SQL error not propagated over the wire")
	}
}

// TestPerSessionFlush: one connection's failed async write surfaces
// in ITS next FLUSH, never in a concurrent session's — the per-token
// error attribution end to end.
func TestPerSessionFlush(t *testing.T) {
	c1 := startStack(t, true)
	must(t, c1, "ADD 1 relational database query optimization")
	c2, err := Dial(c1.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// Session 1 enqueues a doomed op (unknown entity); session 2 a
	// valid one.
	must(t, c1, "TRAINA 999 +1")
	must(t, c2, "TRAINA 1 +1")
	// Session 2's FLUSH must not collect session 1's failure.
	if got := must(t, c2, "FLUSH"); got != "OK" {
		t.Fatalf("session 2 FLUSH = %q", got)
	}
	// Session 1's FLUSH reports it...
	if _, err := c1.Do("FLUSH"); err == nil {
		t.Fatal("session 1 FLUSH did not report its own failed TRAINA")
	}
	// ...exactly once.
	if got := must(t, c1, "FLUSH"); got != "OK" {
		t.Fatalf("second FLUSH = %q", got)
	}
	// Both sessions observe session 2's applied write.
	for _, c := range []*Client{c1, c2} {
		if got := must(t, c, "LABEL 1"); got != "+1" {
			t.Fatalf("LABEL 1 = %q", got)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	bothModes(t, func(t *testing.T, c *Client) {
		must(t, c, "ADD 1 relational database query")
		must(t, c, "ADD 2 kernel interrupt scheduler")
		must(t, c, "TRAIN 1 +1")
		must(t, c, "TRAIN 2 -1")
		addr := c.conn.RemoteAddr().String()

		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cc, err := Dial(addr)
				if err != nil {
					errs <- err
					return
				}
				defer cc.Close()
				for i := 0; i < 50; i++ {
					if _, err := cc.Do("LABEL 1"); err != nil {
						errs <- err
						return
					}
					if _, err := cc.Do("COUNT"); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	})
}

// TestConcurrentTrainAndLabel is the engine's concurrent-session
// soak: N sessions interleave TRAIN (sync and async) with LABEL and
// COUNT against one view. Under -race this asserts the read and
// write paths share no unsynchronized state; after a final FLUSH the
// view must have converged — every queued example applied, and every
// session observing the same labels.
func TestConcurrentTrainAndLabel(t *testing.T) {
	c := startStack(t, true)
	// Corpus: two topics, ids 1..40.
	const perTopic = 20
	for i := 0; i < perTopic; i++ {
		must(t, c, fmt.Sprintf("ADD %d relational database query optimization paper %d", i+1, i))
		must(t, c, fmt.Sprintf("ADD %d kernel scheduler interrupt driver paper %d", 100+i, i))
	}
	addr := c.conn.RemoteAddr().String()

	const goroutines = 8
	const perG = 4 // distinct example ids per goroutine (< perTopic/2 per topic)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cc, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cc.Close()
			for i := 0; i < perG; i++ {
				// Even goroutines label database papers +1, odd ones
				// kernel papers −1; ids are disjoint across sessions.
				id := g/2*perG + i + 1
				cmd := fmt.Sprintf("TRAIN %d +1", id)
				if g%2 == 1 {
					cmd = fmt.Sprintf("TRAINA %d -1", 100+id)
				}
				if _, err := cc.Do(cmd); err != nil {
					errs <- fmt.Errorf("g%d: %s: %w", g, cmd, err)
					return
				}
				for _, read := range []string{"LABEL 1", "LABEL 101", "COUNT"} {
					if _, err := cc.Do(read); err != nil {
						errs <- fmt.Errorf("g%d: %s: %w", g, read, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	must(t, c, "FLUSH")
	// Convergence: every example was applied...
	stats := must(t, c, "STATS")
	wantUpdates := fmt.Sprintf("updates=%d", goroutines*perG)
	if !strings.Contains(stats, wantUpdates) {
		t.Fatalf("STATS = %q, want %s", stats, wantUpdates)
	}
	// ...and the labels separate the two topics, observed identically
	// from a second session.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for _, cc := range []*Client{c, c2} {
		if got := must(t, cc, "LABEL 1"); got != "+1" {
			t.Fatalf("LABEL 1 = %q after convergence", got)
		}
		if got := must(t, cc, "LABEL 101"); got != "-1" {
			t.Fatalf("LABEL 101 = %q after convergence", got)
		}
		n, err := strconv.Atoi(must(t, cc, "COUNT"))
		if err != nil || n != perTopic {
			t.Fatalf("COUNT = %d (%v), want %d", n, err, perTopic)
		}
	}
}

// TestStatsLineStableOrder pins the engine-counter section of the
// STATS response byte for byte: external scrapers parse this line
// with fixed key positions, so the key set, ordering, and formatting
// documented on engine.Stats.String must not drift. The view-stats
// prefix (updates/reorgs/band) carries timing-dependent values, so
// only its key order is asserted; the engine section after a fixed,
// fully synchronous write sequence is deterministic and pinned whole.
func TestStatsLineStableOrder(t *testing.T) {
	c := startStack(t, true)
	// Six synchronous writes: each returns only after its batch is
	// applied and published, so each is its own size-1 batch and the
	// counters below are exact, not racy.
	must(t, c, "ADD 1 relational query optimization")
	must(t, c, "ADD 2 kernel interrupt handling")
	must(t, c, "ADD 3 transaction concurrency control")
	must(t, c, "TRAIN 1 +1")
	must(t, c, "TRAIN 2 -1")
	must(t, c, "TRAIN 3 +1")
	resp := must(t, c, "STATS")
	if !regexp.MustCompile(`^updates=\d+ reorgs=\d+ band=\d+ queued=`).MatchString(resp) {
		t.Fatalf("STATS view-section key order drifted: %q", resp)
	}
	got := resp[strings.Index(resp, "queued="):]
	want := "queued=0 pending=0 applied=6 trains=3 adds=3 batches=6 maxbatch=1 errors=0 snapver=7 hist=6/0/0/0/0/0/0/0"
	if got != want {
		t.Errorf("STATS engine section drifted:\n got %q\nwant %q", got, want)
	}
}
