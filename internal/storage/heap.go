package storage

import (
	"encoding/binary"
	"fmt"
)

// RID is a record identifier: page ordinal within a heap plus slot.
type RID struct {
	Page PageID
	Slot uint16
}

// String renders the RID as "page:slot".
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// HeapFile stores variable-length records in slotted pages via a
// buffer pool. Appends go to the last page; there is no free-space
// map because Hazy's workload is append + in-place update + periodic
// full rebuild.
//
// Records larger than a page spill into overflow-page chains (the
// PostgreSQL-TOAST analog): the slot then holds a small pointer
// stub. Each stored record carries a one-byte flag distinguishing
// inline payloads from overflow stubs. Overflow pages freed by
// deletes and relocating updates are reclaimed at the next rebuild
// (Hazy reorganizes into a fresh generation file anyway).
type HeapFile struct {
	pool  *BufferPool
	pages []PageID // slotted heap pages in order; excludes overflow pages
}

// Stored-record flags.
const (
	flagInline   = 0
	flagOverflow = 1
)

// Overflow page layout: [0:4) next overflow PageID (InvalidPage ends
// the chain), [4:6) bytes used, data from 6.
const (
	ovflHeader = 6
	ovflData   = PageSize - ovflHeader
)

// overflow stub layout (after the flag byte): first chain page (4B),
// total payload length (4B).
const stubSize = 1 + 4 + 4

// MaxInlineRecord is the largest payload stored inline in a slotted
// page; anything larger goes to an overflow chain.
const MaxInlineRecord = MaxRecordSize - 1

// MaxHeapRecord bounds a single record's size (sanity limit).
const MaxHeapRecord = 64 << 20

// NewHeapFile creates an empty heap backed by pool.
func NewHeapFile(pool *BufferPool) *HeapFile {
	return &HeapFile{pool: pool}
}

// NumPages returns the number of slotted pages in the heap.
func (h *HeapFile) NumPages() int { return len(h.pages) }

// SetPages installs a page list recovered from a catalog manifest,
// re-attaching the heap to pages written in a previous session. Every
// page id must already be allocated in the backing pager: a manifest
// pointing past the end of a (possibly truncated) page file is
// reported here as a recovery error instead of surfacing later as a
// pager panic mid-scan.
func (h *HeapFile) SetPages(pages []PageID) error {
	n := h.pool.Pager().NumPages()
	for _, id := range pages {
		if id >= n {
			return fmt.Errorf("storage: recovered page id %d out of bounds (file has %d pages)", id, n)
		}
	}
	h.pages = pages
	return nil
}

// Pages returns the heap's slotted page ids in order (read-only).
func (h *HeapFile) Pages() []PageID { return h.pages }

// insertStored places an already-flagged stored record in a slotted
// page.
func (h *HeapFile) insertStored(stored []byte) (RID, error) {
	if n := len(h.pages); n > 0 {
		id := h.pages[n-1]
		buf, err := h.pool.Pin(id)
		if err != nil {
			return RID{}, err
		}
		sp := SlottedPage{buf}
		if slot, ok := sp.Insert(stored); ok {
			h.pool.Unpin(id, true)
			return RID{Page: id, Slot: uint16(slot)}, nil
		}
		h.pool.Unpin(id, false)
	}
	id, buf, err := h.pool.Allocate()
	if err != nil {
		return RID{}, err
	}
	InitSlotted(buf)
	sp := SlottedPage{buf}
	slot, ok := sp.Insert(stored)
	if !ok {
		h.pool.Unpin(id, true)
		return RID{}, fmt.Errorf("storage: stored record of %d bytes does not fit a fresh page", len(stored))
	}
	h.pool.Unpin(id, true)
	h.pages = append(h.pages, id)
	return RID{Page: id, Slot: uint16(slot)}, nil
}

// writeOverflow writes rec into a fresh overflow chain, returning the
// first page id.
func (h *HeapFile) writeOverflow(rec []byte) (PageID, error) {
	first := InvalidPage
	prev := InvalidPage
	for off := 0; off < len(rec) || first == InvalidPage; {
		id, buf, err := h.pool.Allocate()
		if err != nil {
			return InvalidPage, err
		}
		n := len(rec) - off
		if n > ovflData {
			n = ovflData
		}
		binary.LittleEndian.PutUint32(buf[0:4], uint32(InvalidPage))
		binary.LittleEndian.PutUint16(buf[4:6], uint16(n))
		copy(buf[ovflHeader:], rec[off:off+n])
		h.pool.Unpin(id, true)
		if first == InvalidPage {
			first = id
		} else {
			pbuf, err := h.pool.Pin(prev)
			if err != nil {
				return InvalidPage, err
			}
			binary.LittleEndian.PutUint32(pbuf[0:4], uint32(id))
			h.pool.Unpin(prev, true)
		}
		prev = id
		off += n
	}
	return first, nil
}

// readOverflow assembles a record from the chain starting at first.
func (h *HeapFile) readOverflow(first PageID, total int) ([]byte, error) {
	out := make([]byte, 0, total)
	id := first
	for id != InvalidPage {
		buf, err := h.pool.Pin(id)
		if err != nil {
			return nil, err
		}
		next := PageID(binary.LittleEndian.Uint32(buf[0:4]))
		n := int(binary.LittleEndian.Uint16(buf[4:6]))
		out = append(out, buf[ovflHeader:ovflHeader+n]...)
		h.pool.Unpin(id, false)
		id = next
	}
	if len(out) != total {
		return nil, fmt.Errorf("storage: overflow chain has %d bytes, stub says %d", len(out), total)
	}
	return out, nil
}

// Insert appends rec, returning its RID.
func (h *HeapFile) Insert(rec []byte) (RID, error) {
	if len(rec) > MaxHeapRecord {
		return RID{}, fmt.Errorf("storage: record of %d bytes exceeds limit %d", len(rec), MaxHeapRecord)
	}
	if len(rec) <= MaxInlineRecord {
		stored := make([]byte, 1+len(rec))
		stored[0] = flagInline
		copy(stored[1:], rec)
		return h.insertStored(stored)
	}
	first, err := h.writeOverflow(rec)
	if err != nil {
		return RID{}, err
	}
	var stub [stubSize]byte
	stub[0] = flagOverflow
	binary.LittleEndian.PutUint32(stub[1:5], uint32(first))
	binary.LittleEndian.PutUint32(stub[5:9], uint32(len(rec)))
	return h.insertStored(stub[:])
}

// decodeStored interprets a slot's bytes, assembling overflow chains.
// The returned slice aliases the page only for inline records with
// copy=false.
func (h *HeapFile) decodeStored(stored []byte, copyInline bool) ([]byte, error) {
	if len(stored) < 1 {
		return nil, fmt.Errorf("storage: empty stored record")
	}
	switch stored[0] {
	case flagInline:
		if copyInline {
			return append([]byte(nil), stored[1:]...), nil
		}
		return stored[1:], nil
	case flagOverflow:
		if len(stored) != stubSize {
			return nil, fmt.Errorf("storage: bad overflow stub of %d bytes", len(stored))
		}
		first := PageID(binary.LittleEndian.Uint32(stored[1:5]))
		total := int(binary.LittleEndian.Uint32(stored[5:9]))
		return h.readOverflow(first, total)
	default:
		return nil, fmt.Errorf("storage: unknown record flag %d", stored[0])
	}
}

// Get copies the record at rid into a fresh slice.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	buf, err := h.pool.Pin(rid.Page)
	if err != nil {
		return nil, err
	}
	stored, ok := SlottedPage{buf}.Get(int(rid.Slot))
	if !ok {
		h.pool.Unpin(rid.Page, false)
		return nil, fmt.Errorf("storage: no record at %v", rid)
	}
	// Copy the stored bytes before unpinning; overflow chains pin
	// other pages, and nested pins of the same page are fine.
	storedCopy := append([]byte(nil), stored...)
	h.pool.Unpin(rid.Page, false)
	return h.decodeStored(storedCopy, true)
}

// View calls fn with the record bytes at rid; fn must not retain the
// slice.
func (h *HeapFile) View(rid RID, fn func(rec []byte) error) error {
	rec, err := h.Get(rid)
	if err != nil {
		return err
	}
	return fn(rec)
}

// Update overwrites the record at rid. If the new record does not fit
// in place the record is deleted and re-inserted, and the returned
// RID reflects its new home. Overflow chains are never patched in
// place; they are rewritten.
func (h *HeapFile) Update(rid RID, rec []byte) (RID, error) {
	buf, err := h.pool.Pin(rid.Page)
	if err != nil {
		return RID{}, err
	}
	sp := SlottedPage{buf}
	stored, ok := sp.Get(int(rid.Slot))
	if !ok {
		h.pool.Unpin(rid.Page, false)
		return RID{}, fmt.Errorf("storage: update of missing record %v", rid)
	}
	if stored[0] == flagInline && len(rec) <= MaxInlineRecord {
		newStored := make([]byte, 1+len(rec))
		newStored[0] = flagInline
		copy(newStored[1:], rec)
		if sp.UpdateInPlace(int(rid.Slot), newStored) {
			h.pool.Unpin(rid.Page, true)
			return rid, nil
		}
	}
	if err := sp.Delete(int(rid.Slot)); err != nil {
		h.pool.Unpin(rid.Page, false)
		return RID{}, err
	}
	sp.Compact()
	h.pool.Unpin(rid.Page, true)
	return h.Insert(rec)
}

// Patch overwrites len(data) bytes at offset off within the record at
// rid, in place. The write must lie within the record's current
// extent. Hazy uses this for its in-place class/eps column updates
// (the paper adds a PostgreSQL UDF to update records "in place
// without generating a copy", App. B.1). Overflow records are patched
// by walking their chain.
func (h *HeapFile) Patch(rid RID, off int, data []byte) error {
	buf, err := h.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	sp := SlottedPage{buf}
	stored, ok := sp.Get(int(rid.Slot))
	if !ok {
		h.pool.Unpin(rid.Page, false)
		return fmt.Errorf("storage: patch of missing record %v", rid)
	}
	if stored[0] == flagInline {
		rec := stored[1:]
		if off < 0 || off+len(data) > len(rec) {
			h.pool.Unpin(rid.Page, false)
			return fmt.Errorf("storage: patch [%d,%d) outside record of %d bytes", off, off+len(data), len(rec))
		}
		copy(rec[off:], data)
		h.pool.Unpin(rid.Page, true)
		return nil
	}
	// Overflow: read the stub, then walk to the offset.
	first := PageID(binary.LittleEndian.Uint32(stored[1:5]))
	total := int(binary.LittleEndian.Uint32(stored[5:9]))
	h.pool.Unpin(rid.Page, false)
	if off < 0 || off+len(data) > total {
		return fmt.Errorf("storage: patch [%d,%d) outside record of %d bytes", off, off+len(data), total)
	}
	id := first
	pos := 0
	remaining := data
	for id != InvalidPage && len(remaining) > 0 {
		obuf, err := h.pool.Pin(id)
		if err != nil {
			return err
		}
		next := PageID(binary.LittleEndian.Uint32(obuf[0:4]))
		n := int(binary.LittleEndian.Uint16(obuf[4:6]))
		pageEnd := pos + n
		if off < pageEnd {
			start := off - pos
			if start < 0 {
				start = 0
			}
			cnt := n - start
			if cnt > len(remaining) {
				cnt = len(remaining)
			}
			copy(obuf[ovflHeader+start:ovflHeader+start+cnt], remaining[:cnt])
			remaining = remaining[cnt:]
			off += cnt
			h.pool.Unpin(id, true)
		} else {
			h.pool.Unpin(id, false)
		}
		pos = pageEnd
		id = next
	}
	if len(remaining) > 0 {
		return fmt.Errorf("storage: overflow chain ended %d bytes early during patch", len(remaining))
	}
	return nil
}

// Delete removes the record at rid. An overflow chain's pages are
// orphaned until the next rebuild.
func (h *HeapFile) Delete(rid RID) error {
	buf, err := h.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unpin(rid.Page, true)
	return SlottedPage{buf}.Delete(int(rid.Slot))
}

// Scan iterates every live record in heap order, invoking fn with the
// record's RID and bytes (valid only during the call). Returning a
// non-nil error from fn stops the scan and is returned.
func (h *HeapFile) Scan(fn func(rid RID, rec []byte) error) error {
	for _, id := range h.pages {
		buf, err := h.pool.Pin(id)
		if err != nil {
			return err
		}
		sp := SlottedPage{buf}
		n := sp.NumSlots()
		for s := 0; s < n; s++ {
			stored, ok := sp.Get(s)
			if !ok {
				continue
			}
			var rec []byte
			if stored[0] == flagInline {
				rec = stored[1:]
			} else {
				// Assembling an overflow record pins other pages;
				// copy the stub first so the slice stays valid.
				stub := append([]byte(nil), stored...)
				rec, err = h.decodeStored(stub, false)
				if err != nil {
					h.pool.Unpin(id, false)
					return err
				}
			}
			if err := fn(RID{Page: id, Slot: uint16(s)}, rec); err != nil {
				h.pool.Unpin(id, false)
				return err
			}
		}
		h.pool.Unpin(id, false)
	}
	return nil
}

// Count returns the number of live records (by scanning).
func (h *HeapFile) Count() (int, error) {
	n := 0
	err := h.Scan(func(RID, []byte) error { n++; return nil })
	return n, err
}

// Reset discards all pages, leaving an empty heap. Page storage is
// not returned to the pager (Hazy rebuilds into fresh pages; the
// bench harness recreates files per run).
func (h *HeapFile) Reset() { h.pages = nil }

// BulkLoad replaces the heap contents with records delivered by next,
// which returns nil at end of stream. Records are packed tightly in
// fresh pages in arrival order — this is the physical "cluster by
// eps" step of Hazy's reorganization.
//
// Unlike a loop over Insert, the load is page-batched: the tail page
// stays pinned while consecutive records fill it (one pin/unpin pair
// per page instead of per record) and the flag-byte framing reuses
// one scratch buffer across the stream. At reorganization scale —
// millions of records per rebuild — the per-record pool round trips
// dominate, so the batched path is what makes striped on-disk
// rebuilds IO-shaped rather than latch-shaped.
func (h *HeapFile) BulkLoad(next func() ([]byte, error)) ([]RID, error) {
	h.Reset()
	var (
		rids    []RID
		tail    = InvalidPage // pinned tail page, if any
		tbuf    []byte
		scratch []byte
	)
	unpinTail := func() {
		if tail != InvalidPage {
			h.pool.Unpin(tail, true)
			tail = InvalidPage
		}
	}
	for {
		rec, err := next()
		if err != nil {
			unpinTail()
			return nil, err
		}
		if rec == nil {
			unpinTail()
			return rids, nil
		}
		if len(rec) > MaxHeapRecord {
			unpinTail()
			return nil, fmt.Errorf("storage: record of %d bytes exceeds limit %d", len(rec), MaxHeapRecord)
		}
		var stored []byte
		if len(rec) <= MaxInlineRecord {
			if cap(scratch) < 1+len(rec) {
				scratch = make([]byte, 1+len(rec))
			}
			stored = scratch[:1+len(rec)]
			stored[0] = flagInline
			copy(stored[1:], rec)
		} else {
			// Overflow chains allocate their own pages; release the
			// tail first so a tiny pool cannot deadlock on pins.
			unpinTail()
			first, err := h.writeOverflow(rec)
			if err != nil {
				return nil, err
			}
			if cap(scratch) < stubSize {
				scratch = make([]byte, stubSize)
			}
			stored = scratch[:stubSize]
			stored[0] = flagOverflow
			binary.LittleEndian.PutUint32(stored[1:5], uint32(first))
			binary.LittleEndian.PutUint32(stored[5:9], uint32(len(rec)))
		}
		if tail == InvalidPage && len(h.pages) > 0 {
			// Re-pin the tail after an overflow spill released it.
			id := h.pages[len(h.pages)-1]
			buf, err := h.pool.Pin(id)
			if err != nil {
				return nil, err
			}
			tail, tbuf = id, buf
		}
		if tail != InvalidPage {
			if slot, ok := (SlottedPage{tbuf}).Insert(stored); ok {
				rids = append(rids, RID{Page: tail, Slot: uint16(slot)})
				continue
			}
			unpinTail() // full; move on to a fresh page
		}
		id, buf, err := h.pool.Allocate()
		if err != nil {
			return nil, err
		}
		InitSlotted(buf)
		slot, ok := (SlottedPage{buf}).Insert(stored)
		if !ok {
			h.pool.Unpin(id, true)
			return nil, fmt.Errorf("storage: stored record of %d bytes does not fit a fresh page", len(stored))
		}
		h.pages = append(h.pages, id)
		tail, tbuf = id, buf
		rids = append(rids, RID{Page: id, Slot: uint16(slot)})
	}
}
