package storage

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestSetPagesBoundsChecked pins the recovery-hardening fix: a
// manifest page list pointing past the end of the page file must be
// rejected at attach time, not surface later as a pager panic
// mid-scan.
func TestSetPagesBoundsChecked(t *testing.T) {
	p, err := OpenPager(filepath.Join(t.TempDir(), "h.pg"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	bp := NewBufferPool(p, 4)
	h := NewHeapFile(bp)
	if _, err := h.Insert([]byte("row")); err != nil {
		t.Fatal(err)
	}
	pages := h.Pages()

	h2 := NewHeapFile(bp)
	if err := h2.SetPages(pages); err != nil {
		t.Fatalf("in-bounds pages rejected: %v", err)
	}
	if err := h2.SetPages([]PageID{pages[0], PageID(99)}); err == nil {
		t.Fatal("out-of-bounds page id accepted")
	} else if !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("unexpected error: %v", err)
	}
	// A failed SetPages must not clobber the previously attached list.
	if h2.NumPages() != len(pages) {
		t.Fatalf("failed SetPages mutated the heap: %d pages", h2.NumPages())
	}
}
