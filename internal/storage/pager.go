// Package storage implements the on-disk substrate Hazy's paper gets
// from PostgreSQL: a page file, an LRU buffer pool with pin/unpin
// semantics, slotted pages, and heap files of variable-length records.
//
// Every disk access flows through the buffer pool, which keeps I/O
// statistics so benchmarks can report physical reads/writes alongside
// wall-clock time.
package storage

import (
	"fmt"
	"sync"
)

// PageSize is the size of every on-disk page in bytes (PostgreSQL's
// default, which the paper's prototype ran on).
const PageSize = 8192

// PageID identifies a page within a Pager by ordinal position.
type PageID uint32

// InvalidPage is a sentinel PageID that never refers to a real page.
const InvalidPage = PageID(^uint32(0))

// Pager provides page-granular access to a single file. It is safe
// for concurrent use.
type Pager struct {
	mu       sync.Mutex
	f        File
	numPages PageID

	// Physical I/O counters (monotonically increasing).
	readCount  int64
	writeCount int64
}

// OpenPager opens (creating if necessary) the page file at path on
// the real filesystem.
func OpenPager(path string) (*Pager, error) {
	return OpenPagerVFS(OS, path)
}

// OpenPagerVFS opens the page file at path through vfs, letting test
// harnesses interpose fault injection under every page write.
func OpenPagerVFS(vfs VFS, path string) (*Pager, error) {
	f, err := vfs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open pager: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat pager: %w", err)
	}
	if size%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d not a multiple of page size", path, size)
	}
	return &Pager{f: f, numPages: PageID(size / PageSize)}, nil
}

// NumPages returns the number of allocated pages.
func (p *Pager) NumPages() PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.numPages
}

// Allocate extends the file by one zeroed page and returns its id.
func (p *Pager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.numPages
	var zero [PageSize]byte
	if _, err := p.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return InvalidPage, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	p.numPages++
	p.writeCount++
	return id, nil
}

// ReadPage reads page id into buf (which must be PageSize bytes).
func (p *Pager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.numPages {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, p.numPages)
	}
	if _, err := p.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	p.readCount++
	return nil
}

// WritePage writes buf (PageSize bytes) to page id.
func (p *Pager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.numPages {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, p.numPages)
	}
	if _, err := p.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	p.writeCount++
	return nil
}

// Truncate discards all pages at or beyond n, shrinking the file.
func (p *Pager) Truncate(n PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.f.Truncate(int64(n) * PageSize); err != nil {
		return fmt.Errorf("storage: truncate to %d pages: %w", n, err)
	}
	p.numPages = n
	return nil
}

// Sync flushes the file to stable storage.
func (p *Pager) Sync() error { return p.f.Sync() }

// Close closes the underlying file.
func (p *Pager) Close() error { return p.f.Close() }

// IOStats is a snapshot of physical I/O counters.
type IOStats struct {
	PhysicalReads  int64
	PhysicalWrites int64
}

// Stats returns a snapshot of the pager's physical I/O counters.
func (p *Pager) Stats() IOStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return IOStats{PhysicalReads: p.readCount, PhysicalWrites: p.writeCount}
}
