package storage

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

// TestSlottedPageQuick drives random insert/delete/update sequences
// against a model map and checks the page never corrupts a survivor.
func TestSlottedPageQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var page [PageSize]byte
		InitSlotted(page[:])
		sp := SlottedPage{page[:]}
		model := map[int][]byte{}
		for op := 0; op < 200; op++ {
			switch r.Intn(4) {
			case 0, 1: // insert
				rec := make([]byte, 1+r.Intn(200))
				r.Read(rec)
				if slot, ok := sp.Insert(rec); ok {
					model[slot] = append([]byte(nil), rec...)
				}
			case 2: // delete a live slot
				for slot := range model {
					if sp.Delete(slot) != nil {
						return false
					}
					delete(model, slot)
					break
				}
			default: // in-place update (shrink) or compact
				if r.Intn(2) == 0 {
					sp.Compact()
					continue
				}
				for slot, old := range model {
					rec := old[:1+r.Intn(len(old))]
					if sp.UpdateInPlace(slot, rec) {
						model[slot] = append([]byte(nil), rec...)
					}
					break
				}
			}
		}
		for slot, want := range model {
			got, ok := sp.Get(slot)
			if !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapQuick round-trips random record batches, spanning the
// inline/overflow boundary, through insert + full scan.
func TestHeapQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pager, err := OpenPager(filepath.Join(t.TempDir(), "q.pg"))
		if err != nil {
			return false
		}
		defer pager.Close()
		h := NewHeapFile(NewBufferPool(pager, 8))
		var want [][]byte
		for i := 0; i < 30; i++ {
			size := 1 + r.Intn(3*PageSize)
			rec := make([]byte, size)
			r.Read(rec)
			if _, err := h.Insert(rec); err != nil {
				return false
			}
			want = append(want, rec)
		}
		i := 0
		ok := true
		err = h.Scan(func(_ RID, rec []byte) error {
			if i >= len(want) || !bytes.Equal(rec, want[i]) {
				ok = false
			}
			i++
			return nil
		})
		return ok && err == nil && i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
