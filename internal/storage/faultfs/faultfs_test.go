package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hazy/internal/storage"
)

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCrashModeFreezesState(t *testing.T) {
	dir := t.TempDir()
	fs := New(storage.OS, 3, Crash)
	f, err := fs.OpenFile(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("aaaa"), 0); err != nil { // op 1
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("bbbb"), 4); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("cccc"), 8); !errors.Is(err, ErrInjected) { // op 3: crash
		t.Fatalf("crash op error = %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("not crashed after fault point")
	}
	if _, err := f.WriteAt([]byte("dddd"), 12); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash write error = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash sync error = %v", err)
	}
	if got := string(readAll(t, filepath.Join(dir, "x"))); got != "aaaabbbb" {
		t.Fatalf("on-disk state %q, want the pre-crash prefix", got)
	}
	// Post-crash attempts are rejected without being counted: the
	// counter names crash points in the live workload only.
	if fs.Writes() != 3 {
		t.Fatalf("ops counted = %d, want 3", fs.Writes())
	}
}

func TestTornModeWritesHalf(t *testing.T) {
	dir := t.TempDir()
	fs := New(storage.OS, 1, Torn)
	f, err := fs.OpenFile(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("abcdefgh"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn op error = %v", err)
	}
	if got := string(readAll(t, filepath.Join(dir, "x"))); got != "abcd" {
		t.Fatalf("torn write left %q, want first half", got)
	}
	if _, err := f.WriteAt([]byte("zz"), 0); !errors.Is(err, ErrInjected) {
		t.Fatal("torn mode must crash after the fault")
	}
}

func TestErrOnceRecovers(t *testing.T) {
	dir := t.TempDir()
	fs := New(storage.OS, 2, ErrOnce)
	f, err := fs.OpenFile(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("aa"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("bb"), 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("fault op error = %v", err)
	}
	if _, err := f.WriteAt([]byte("cc"), 2); err != nil {
		t.Fatalf("err-once did not recover: %v", err)
	}
	if got := string(readAll(t, filepath.Join(dir, "x"))); got != "aacc" {
		t.Fatalf("state %q", got)
	}
}

func TestProbeCountsWithoutFaulting(t *testing.T) {
	dir := t.TempDir()
	fs := New(storage.OS, 0, Crash)
	f, err := fs.OpenFile(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := f.WriteAt([]byte{byte(i)}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "y")); err != nil {
		t.Fatal(err)
	}
	if fs.Writes() != 12 {
		t.Fatalf("probe counted %d ops, want 12", fs.Writes())
	}
	if fs.Crashed() {
		t.Fatal("probe must never crash")
	}
}
