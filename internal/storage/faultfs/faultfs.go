// Package faultfs is a deterministic fault-injection file layer for
// crash-safety testing. It wraps a storage.VFS and counts every
// mutating file operation (WriteAt, Truncate, Sync) across all files
// opened through it; at the Nth operation it injects a configured
// fault and — for the crash modes — fails every mutation from then
// on, freezing the on-disk state exactly as a kill -9 at that point
// would have left it. Reopening the directory through a clean VFS
// then exercises recovery against that synthesized crash state.
//
// Because the counter is global and the workload deterministic, every
// value of N names one reproducible crash point; sweeping N from 1
// to the workload's total write count synthesizes hundreds of
// distinct crashes from one test body.
package faultfs

import (
	"errors"
	"fmt"
	"sync"

	"hazy/internal/storage"
)

// Mode selects what happens at the fault point.
type Mode int

const (
	// Crash drops the Nth mutation entirely, returns an error, and
	// fails every later mutation — the process "died" before the
	// write.
	Crash Mode = iota
	// Torn applies only the first half of the Nth write's bytes, then
	// behaves like Crash — the write was cut mid-flight.
	Torn
	// ErrOnce fails only the Nth mutation and then recovers — an
	// isolated I/O error, for testing error propagation rather than
	// crash recovery.
	ErrOnce
)

func (m Mode) String() string {
	switch m {
	case Torn:
		return "torn"
	case ErrOnce:
		return "err-once"
	default:
		return "crash"
	}
}

// ErrInjected is the root of every injected failure.
var ErrInjected = errors.New("faultfs: injected fault")

// FS wraps an inner VFS with deterministic fault injection. The zero
// FaultAt never faults, making FS a pure write-counting probe.
type FS struct {
	inner storage.VFS

	mu      sync.Mutex
	ops     int64 // mutating ops observed so far
	faultAt int64 // inject at the op with this 1-based index; 0 = off
	mode    Mode
	crashed bool
}

// New wraps inner, injecting a fault of the given mode at the
// faultAt'th mutating operation (1-based; 0 disables injection).
func New(inner storage.VFS, faultAt int64, mode Mode) *FS {
	return &FS{inner: inner, faultAt: faultAt, mode: mode}
}

// Writes returns the number of mutating operations observed, for
// sizing a crash-point sweep from a fault-free probe run.
func (fs *FS) Writes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crashed reports whether the fault point has been reached (in a
// crash mode).
func (fs *FS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// step accounts one mutating op and decides its fate: act=true means
// perform the op (fully or, for a torn write, partially).
func (fs *FS) step() (act bool, torn bool, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return false, false, fmt.Errorf("%w (after crash point)", ErrInjected)
	}
	fs.ops++
	if fs.faultAt == 0 || fs.ops != fs.faultAt {
		return true, false, nil
	}
	switch fs.mode {
	case ErrOnce:
		return false, false, fmt.Errorf("%w (op %d, err-once)", ErrInjected, fs.ops)
	case Torn:
		fs.crashed = true
		return true, true, fmt.Errorf("%w (op %d, torn)", ErrInjected, fs.ops)
	default:
		fs.crashed = true
		return false, false, fmt.Errorf("%w (op %d, crash)", ErrInjected, fs.ops)
	}
}

// OpenFile opens path through the inner VFS, wrapped with injection.
func (fs *FS) OpenFile(path string) (storage.File, error) {
	f, err := fs.inner.OpenFile(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, f: f}, nil
}

// Remove counts as a mutating op (a crashed process removes nothing).
func (fs *FS) Remove(path string) error {
	act, _, ferr := fs.step()
	if !act {
		return ferr
	}
	if err := fs.inner.Remove(path); err != nil {
		return err
	}
	return ferr
}

// Rename counts as a mutating op — a crash just before the rename
// leaves the previous file in place.
func (fs *FS) Rename(oldpath, newpath string) error {
	act, _, ferr := fs.step()
	if !act {
		return ferr
	}
	if err := fs.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	return ferr
}

// ReadDir passes through.
func (fs *FS) ReadDir(dir string) ([]string, error) { return fs.inner.ReadDir(dir) }

// ReadFile passes through (a crashed process does not read either,
// but the harness only aims faults at mutations).
func (fs *FS) ReadFile(path string) ([]byte, error) { return fs.inner.ReadFile(path) }

// MkdirAll passes through: directory scaffolding is created at open,
// before the workload's first logged write, and is not a crash
// surface the harness aims at.
func (fs *FS) MkdirAll(dir string) error { return fs.inner.MkdirAll(dir) }

// SyncDir counts as a mutating op — a crash before the directory
// fsync can lose entry creations and renames.
func (fs *FS) SyncDir(dir string) error {
	act, torn, ferr := fs.step()
	if !act || torn {
		return ferr
	}
	if err := fs.inner.SyncDir(dir); err != nil {
		return err
	}
	return ferr
}

type file struct {
	fs *FS
	f  storage.File
}

func (f *file) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	act, torn, ferr := f.fs.step()
	if !act {
		return 0, ferr
	}
	if torn {
		n := len(p) / 2
		if _, werr := f.f.WriteAt(p[:n], off); werr != nil {
			return 0, werr
		}
		return n, ferr
	}
	n, err := f.f.WriteAt(p, off)
	if err != nil {
		return n, err
	}
	return n, ferr
}

func (f *file) Truncate(size int64) error {
	act, _, ferr := f.fs.step()
	if !act {
		return ferr
	}
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	return ferr
}

func (f *file) Sync() error {
	act, torn, ferr := f.fs.step()
	if !act || torn {
		// A sync cut by the crash point never completed.
		return ferr
	}
	if err := f.f.Sync(); err != nil {
		return err
	}
	return ferr
}

func (f *file) Close() error         { return f.f.Close() }
func (f *file) Size() (int64, error) { return f.f.Size() }

var _ storage.VFS = (*FS)(nil)
