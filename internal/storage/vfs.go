package storage

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the random-access file handle the storage layer runs on.
// Pagers and the write-ahead log do all their I/O through it, so a
// test harness can interpose fault injection (torn writes, crashes at
// the Nth write) beneath the whole stack — see
// internal/storage/faultfs.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
	Size() (int64, error)
}

// VFS opens and manages Files under a real or simulated filesystem.
type VFS interface {
	// OpenFile opens path read-write, creating it if absent.
	OpenFile(path string) (File, error)
	// ReadFile returns path's full contents; a missing file reports
	// an error satisfying os.IsNotExist.
	ReadFile(path string) ([]byte, error)
	// Remove deletes path.
	Remove(path string) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// ReadDir lists the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs a directory, making entry creations, renames,
	// and removals inside it durable.
	SyncDir(dir string) error
}

// OS is the passthrough VFS over the real filesystem.
var OS VFS = osVFS{}

type osVFS struct{}

type osFile struct{ f *os.File }

func (o osVFS) OpenFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f: f}, nil
}

func (o osVFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (o osVFS) Remove(path string) error { return os.Remove(path) }

func (o osVFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (o osVFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (o osVFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func (o osVFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (f osFile) ReadAt(p []byte, off int64) (int, error)  { return f.f.ReadAt(p, off) }
func (f osFile) WriteAt(p []byte, off int64) (int, error) { return f.f.WriteAt(p, off) }
func (f osFile) Truncate(size int64) error                { return f.f.Truncate(size) }
func (f osFile) Sync() error                              { return f.f.Sync() }
func (f osFile) Close() error                             { return f.f.Close() }

func (f osFile) Size() (int64, error) {
	st, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// WriteFileAtomic writes data to path via a temp file renamed into
// place; with sync it fsyncs the file before the rename and the
// parent directory after, making the swap power-loss durable.
// Manifest writers use it so a crash mid-write leaves the previous
// file intact.
func WriteFileAtomic(vfs VFS, path string, data []byte, sync bool) error {
	tmp := path + ".tmp"
	f, err := vfs.OpenFile(tmp)
	if err != nil {
		return err
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := vfs.Rename(tmp, path); err != nil {
		return err
	}
	if sync {
		return vfs.SyncDir(filepath.Dir(path))
	}
	return nil
}
