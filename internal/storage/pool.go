package storage

import (
	"container/list"
	"fmt"
	"sync"

	"hazy/internal/obs"
)

// Frame is a buffer-pool slot holding one page image.
type frame struct {
	id    PageID
	data  [PageSize]byte
	pins  int
	dirty bool
	lru   *list.Element // position in the eviction list; nil while pinned
}

// BufferPool caches pages from a Pager with LRU replacement. Pinned
// pages are never evicted. It is safe for concurrent use; callers must
// serialize access to a page's bytes themselves while it is pinned
// (the higher layers in this repo hold one logical writer).
type BufferPool struct {
	mu       sync.Mutex
	pager    *Pager
	capacity int
	frames   map[PageID]*frame
	evict    *list.List // of PageID, front = most recently used

	// beforeWriteBack, when set, runs before any dirty page is
	// written to the pager (eviction, FlushAll, Invalidate), with the
	// page's id and full image; writeBackBarrier then runs once per
	// write-back group, after every image of the group is journaled
	// and before any in-place page write. The relation layer points
	// them at the write-ahead log — append the image, then fsync — so
	// a torn page write is repairable from the log, the WAL rule (log
	// reaches disk before the data page it covers) holds even for LRU
	// evictions between checkpoints, and a FlushAll of N dirty pages
	// pays one fsync, not N.
	beforeWriteBack  func(id PageID, data []byte) error
	writeBackBarrier func() error

	hits      int64
	misses    int64
	evictions int64
}

// SetBeforeWriteBack installs the per-page journal hook and the
// per-group barrier run around dirty-page write-backs. Call before
// the pool is shared across goroutines.
func (bp *BufferPool) SetBeforeWriteBack(journal func(id PageID, data []byte) error, barrier func() error) {
	bp.mu.Lock()
	bp.beforeWriteBack = journal
	bp.writeBackBarrier = barrier
	bp.mu.Unlock()
}

// writeBackLocked writes one dirty frame through the pager, running
// the journal hook and the barrier first (the single-page group: an
// LRU eviction). Callers hold bp.mu.
func (bp *BufferPool) writeBackLocked(id PageID, fr *frame) error {
	if bp.beforeWriteBack != nil {
		if err := bp.beforeWriteBack(id, fr.data[:]); err != nil {
			return err
		}
	}
	if bp.writeBackBarrier != nil {
		if err := bp.writeBackBarrier(); err != nil {
			return err
		}
	}
	return bp.pager.WritePage(id, fr.data[:])
}

// NewBufferPool wraps pager with a pool of capacity pages
// (capacity ≥ 1).
func NewBufferPool(pager *Pager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		pager:    pager,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		evict:    list.New(),
	}
}

// Pager returns the underlying pager.
func (bp *BufferPool) Pager() *Pager { return bp.pager }

// Allocate allocates a fresh page and returns it pinned.
func (bp *BufferPool) Allocate() (PageID, []byte, error) {
	id, err := bp.pager.Allocate()
	if err != nil {
		return InvalidPage, nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, err := bp.installLocked(id, false)
	if err != nil {
		return InvalidPage, nil, err
	}
	return id, fr.data[:], nil
}

// Pin fetches page id into the pool (reading from disk on a miss) and
// returns its bytes. The page stays resident until a matching Unpin.
func (bp *BufferPool) Pin(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		bp.hits++
		fr.pins++
		if fr.lru != nil {
			bp.evict.Remove(fr.lru)
			fr.lru = nil
		}
		return fr.data[:], nil
	}
	bp.misses++
	fr, err := bp.installLocked(id, true)
	if err != nil {
		return nil, err
	}
	return fr.data[:], nil
}

// installLocked makes room, then installs page id pinned once.
func (bp *BufferPool) installLocked(id PageID, read bool) (*frame, error) {
	for len(bp.frames) >= bp.capacity {
		victim := bp.evict.Back()
		if victim == nil {
			return nil, fmt.Errorf("storage: buffer pool exhausted (%d pages, all pinned)", bp.capacity)
		}
		vid := victim.Value.(PageID)
		vf := bp.frames[vid]
		if vf.dirty {
			if err := bp.writeBackLocked(vid, vf); err != nil {
				return nil, err
			}
		}
		bp.evict.Remove(victim)
		delete(bp.frames, vid)
		bp.evictions++
	}
	fr := &frame{id: id, pins: 1}
	if read {
		if err := bp.pager.ReadPage(id, fr.data[:]); err != nil {
			return nil, err
		}
	}
	bp.frames[id] = fr
	return fr, nil
}

// Unpin releases one pin on page id; dirty marks the page as modified
// so it is written back before eviction.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok {
		panic(fmt.Sprintf("storage: unpin of non-resident page %d", id))
	}
	if fr.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", id))
	}
	fr.dirty = fr.dirty || dirty
	fr.pins--
	if fr.pins == 0 {
		fr.lru = bp.evict.PushFront(id)
	}
}

// FlushAll writes every dirty resident page back to the pager: all
// images are journaled, one barrier runs, then the pages are written
// in place — one log fsync for the whole flush.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	var dirty []PageID
	for id, fr := range bp.frames {
		if !fr.dirty {
			continue
		}
		if bp.beforeWriteBack != nil {
			if err := bp.beforeWriteBack(id, fr.data[:]); err != nil {
				return err
			}
		}
		dirty = append(dirty, id)
	}
	if len(dirty) == 0 {
		return nil
	}
	if bp.writeBackBarrier != nil {
		if err := bp.writeBackBarrier(); err != nil {
			return err
		}
	}
	for _, id := range dirty {
		fr := bp.frames[id]
		if err := bp.pager.WritePage(id, fr.data[:]); err != nil {
			return err
		}
		fr.dirty = false
	}
	return nil
}

// Invalidate drops every unpinned frame (after flushing dirty ones).
// Used when a file is rebuilt wholesale under the pool.
func (bp *BufferPool) Invalidate() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, fr := range bp.frames {
		if fr.pins > 0 {
			return fmt.Errorf("storage: invalidate with pinned page %d", id)
		}
		if fr.dirty {
			if err := bp.writeBackLocked(id, fr); err != nil {
				return err
			}
		}
		if fr.lru != nil {
			bp.evict.Remove(fr.lru)
		}
		delete(bp.frames, id)
	}
	return nil
}

// PoolStats is a snapshot of buffer-pool behaviour.
type PoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Resident  int
	Capacity  int
}

// Stats returns a snapshot of pool counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return PoolStats{
		Hits:      bp.hits,
		Misses:    bp.misses,
		Evictions: bp.evictions,
		Resident:  len(bp.frames),
		Capacity:  bp.capacity,
	}
}

// RegisterMetrics exposes the pool's counters on reg (no-op when reg
// is nil) under the given labels. The collectors are computed at
// scrape time from the tallies the pool already keeps under its
// mutex, so the pin path carries no extra instrumentation cost.
func (bp *BufferPool) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.CounterFunc("hazy_pool_hits_total", "page pins served from a resident frame",
		func() int64 { return bp.Stats().Hits }, labels...)
	reg.CounterFunc("hazy_pool_misses_total", "page pins that read through the pager",
		func() int64 { return bp.Stats().Misses }, labels...)
	reg.CounterFunc("hazy_pool_evictions_total", "frames evicted to make room",
		func() int64 { return bp.Stats().Evictions }, labels...)
	reg.GaugeFunc("hazy_pool_resident_pages", "pages currently cached",
		func() int64 { return int64(bp.Stats().Resident) }, labels...)
}
