package storage

import (
	"encoding/binary"
	"fmt"
)

// Slotted-page layout (all offsets little-endian uint16):
//
//	[0:2)   slot count n
//	[2:4)   free-space end (records grow downward from PageSize toward
//	        the slot array; this is the offset of the lowest record byte)
//	[4:4+4n) slot array: per slot, record offset uint16 then length uint16
//
// A deleted slot has offset 0 (real records can never start at 0,
// which is inside the header). Record space freed by deletes is
// reclaimed only by Compact.

const (
	slottedHeader = 4
	slotSize      = 4
	// deletedOff marks a dead slot.
	deletedOff = 0
)

// SlottedPage wraps a page image with record-level operations. It
// does not own the bytes; callers pin/unpin through the buffer pool.
type SlottedPage struct{ B []byte }

// InitSlotted formats b as an empty slotted page.
func InitSlotted(b []byte) {
	binary.LittleEndian.PutUint16(b[0:2], 0)
	binary.LittleEndian.PutUint16(b[2:4], uint16(PageSize))
}

// NumSlots returns the slot count, including deleted slots.
func (p SlottedPage) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p.B[0:2]))
}

func (p SlottedPage) freeEnd() int {
	return int(binary.LittleEndian.Uint16(p.B[2:4]))
}

func (p SlottedPage) setNumSlots(n int) {
	binary.LittleEndian.PutUint16(p.B[0:2], uint16(n))
}

func (p SlottedPage) setFreeEnd(off int) {
	binary.LittleEndian.PutUint16(p.B[2:4], uint16(off))
}

func (p SlottedPage) slot(i int) (off, ln int) {
	base := slottedHeader + i*slotSize
	return int(binary.LittleEndian.Uint16(p.B[base : base+2])),
		int(binary.LittleEndian.Uint16(p.B[base+2 : base+4]))
}

func (p SlottedPage) setSlot(i, off, ln int) {
	base := slottedHeader + i*slotSize
	binary.LittleEndian.PutUint16(p.B[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p.B[base+2:base+4], uint16(ln))
}

// FreeSpace returns the bytes available for one more Insert
// (accounting for its new slot entry).
func (p SlottedPage) FreeSpace() int {
	free := p.freeEnd() - (slottedHeader + p.NumSlots()*slotSize) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// MaxRecordSize is the largest record that fits in a fresh page.
const MaxRecordSize = PageSize - slottedHeader - slotSize

// Insert stores rec in the page, returning its slot number, or
// ok=false if there is not enough free space.
func (p SlottedPage) Insert(rec []byte) (slot int, ok bool) {
	if len(rec) > p.FreeSpace() {
		return 0, false
	}
	n := p.NumSlots()
	off := p.freeEnd() - len(rec)
	copy(p.B[off:], rec)
	p.setSlot(n, off, len(rec))
	p.setNumSlots(n + 1)
	p.setFreeEnd(off)
	return n, true
}

// Get returns the record bytes in slot i (aliasing the page buffer)
// or ok=false if the slot is deleted or out of range.
func (p SlottedPage) Get(i int) (rec []byte, ok bool) {
	if i < 0 || i >= p.NumSlots() {
		return nil, false
	}
	off, ln := p.slot(i)
	if off == deletedOff {
		return nil, false
	}
	return p.B[off : off+ln], true
}

// Delete marks slot i dead. Space is reclaimed by Compact.
func (p SlottedPage) Delete(i int) error {
	if i < 0 || i >= p.NumSlots() {
		return fmt.Errorf("storage: delete of bad slot %d", i)
	}
	p.setSlot(i, deletedOff, 0)
	return nil
}

// UpdateInPlace overwrites slot i with rec if rec fits in the slot's
// current extent; returns false if it does not fit or slot is dead.
func (p SlottedPage) UpdateInPlace(i int, rec []byte) bool {
	if i < 0 || i >= p.NumSlots() {
		return false
	}
	off, ln := p.slot(i)
	if off == deletedOff || len(rec) > ln {
		return false
	}
	copy(p.B[off:], rec)
	p.setSlot(i, off, len(rec))
	return true
}

// Compact rewrites live records contiguously, reclaiming space from
// deletes and shrunken updates. Slot numbers are preserved.
func (p SlottedPage) Compact() {
	n := p.NumSlots()
	type ent struct{ slot, off, ln int }
	live := make([]ent, 0, n)
	for i := 0; i < n; i++ {
		off, ln := p.slot(i)
		if off != deletedOff {
			live = append(live, ent{i, off, ln})
		}
	}
	var scratch [PageSize]byte
	end := PageSize
	for _, e := range live {
		end -= e.ln
		copy(scratch[end:], p.B[e.off:e.off+e.ln])
		p.setSlot(e.slot, end, e.ln)
	}
	copy(p.B[end:], scratch[end:])
	p.setFreeEnd(end)
}
