package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func newPool(t *testing.T, capacity int) *BufferPool {
	t.Helper()
	p, err := OpenPager(filepath.Join(t.TempDir(), "data.pg"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return NewBufferPool(p, capacity)
}

func TestPagerAllocateReadWrite(t *testing.T) {
	p, err := OpenPager(filepath.Join(t.TempDir(), "p.pg"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || p.NumPages() != 1 {
		t.Fatalf("id=%d pages=%d", id, p.NumPages())
	}
	var buf [PageSize]byte
	buf[0] = 0xAA
	buf[PageSize-1] = 0x55
	if err := p.WritePage(id, buf[:]); err != nil {
		t.Fatal(err)
	}
	var got [PageSize]byte
	if err := p.ReadPage(id, got[:]); err != nil {
		t.Fatal(err)
	}
	if got != buf {
		t.Fatal("round trip mismatch")
	}
	if err := p.ReadPage(5, got[:]); err == nil {
		t.Fatal("read of unallocated page succeeded")
	}
	if err := p.WritePage(5, got[:]); err == nil {
		t.Fatal("write of unallocated page succeeded")
	}
	st := p.Stats()
	if st.PhysicalReads == 0 || st.PhysicalWrites == 0 {
		t.Fatalf("stats not counted: %+v", st)
	}
}

func TestPagerPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.pg")
	p, err := OpenPager(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Allocate()
	var buf [PageSize]byte
	copy(buf[:], "hello")
	if err := p.WritePage(id, buf[:]); err != nil {
		t.Fatal(err)
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	p.Close()

	p2, err := OpenPager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.NumPages() != 1 {
		t.Fatalf("pages=%d", p2.NumPages())
	}
	var got [PageSize]byte
	if err := p2.ReadPage(0, got[:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got[:], []byte("hello")) {
		t.Fatal("data lost across reopen")
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	bp := newPool(t, 2)
	id, buf, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 7
	bp.Unpin(id, true)

	got, err := bp.Pin(id)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatal("cached data lost")
	}
	bp.Unpin(id, false)
	st := bp.Stats()
	if st.Hits != 1 {
		t.Fatalf("hits=%d", st.Hits)
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	bp := newPool(t, 2)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, buf, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i + 1)
		bp.Unpin(id, true)
		ids = append(ids, id)
	}
	// Pages 0,1 must have been evicted (capacity 2) and written back.
	for i, id := range ids {
		got, err := bp.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) {
			t.Fatalf("page %d data %d after eviction", id, got[0])
		}
		bp.Unpin(id, false)
	}
	if bp.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestBufferPoolPinnedNeverEvicted(t *testing.T) {
	bp := newPool(t, 2)
	id0, buf0, _ := bp.Allocate()
	buf0[0] = 0xEE // keep pinned
	id1, _, _ := bp.Allocate()
	bp.Unpin(id1, true)
	// Fill the remaining slot repeatedly; id0 must survive.
	for i := 0; i < 3; i++ {
		id, _, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		bp.Unpin(id, true)
	}
	if buf0[0] != 0xEE {
		t.Fatal("pinned frame clobbered")
	}
	bp.Unpin(id0, true)
	got, err := bp.Pin(id0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xEE {
		t.Fatal("pinned page content lost")
	}
	bp.Unpin(id0, false)
}

func TestBufferPoolAllPinnedErrors(t *testing.T) {
	bp := newPool(t, 1)
	id, _, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bp.Allocate(); err == nil {
		t.Fatal("second allocate should fail with all pages pinned")
	}
	bp.Unpin(id, false)
}

func TestBufferPoolUnpinPanics(t *testing.T) {
	bp := newPool(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bogus unpin")
		}
	}()
	bp.Unpin(42, false)
}

func TestFlushAllDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.pg")
	p, err := OpenPager(path)
	if err != nil {
		t.Fatal(err)
	}
	bp := NewBufferPool(p, 8)
	id, buf, _ := bp.Allocate()
	copy(buf, "durable")
	bp.Unpin(id, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.Close()

	p2, err := OpenPager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	var got [PageSize]byte
	if err := p2.ReadPage(id, got[:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got[:], []byte("durable")) {
		t.Fatal("flush lost data")
	}
}

func TestSlottedInsertGetDelete(t *testing.T) {
	var page [PageSize]byte
	InitSlotted(page[:])
	sp := SlottedPage{page[:]}

	s0, ok := sp.Insert([]byte("alpha"))
	if !ok {
		t.Fatal("insert failed")
	}
	s1, ok := sp.Insert([]byte("beta"))
	if !ok {
		t.Fatal("insert failed")
	}
	if r, ok := sp.Get(s0); !ok || string(r) != "alpha" {
		t.Fatalf("get s0: %q %v", r, ok)
	}
	if r, ok := sp.Get(s1); !ok || string(r) != "beta" {
		t.Fatalf("get s1: %q %v", r, ok)
	}
	if err := sp.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if _, ok := sp.Get(s0); ok {
		t.Fatal("deleted record still readable")
	}
	if r, ok := sp.Get(s1); !ok || string(r) != "beta" {
		t.Fatalf("neighbor affected by delete: %q %v", r, ok)
	}
	if _, ok := sp.Get(99); ok {
		t.Fatal("out-of-range slot readable")
	}
	if err := sp.Delete(99); err == nil {
		t.Fatal("out-of-range delete accepted")
	}
}

func TestSlottedUpdateInPlace(t *testing.T) {
	var page [PageSize]byte
	InitSlotted(page[:])
	sp := SlottedPage{page[:]}
	s, _ := sp.Insert([]byte("12345678"))
	if !sp.UpdateInPlace(s, []byte("abcd")) {
		t.Fatal("shrinking update rejected")
	}
	if r, _ := sp.Get(s); string(r) != "abcd" {
		t.Fatalf("got %q", r)
	}
	if sp.UpdateInPlace(s, []byte("123456789")) {
		t.Fatal("growing update accepted in place")
	}
}

func TestSlottedFull(t *testing.T) {
	var page [PageSize]byte
	InitSlotted(page[:])
	sp := SlottedPage{page[:]}
	rec := make([]byte, 100)
	n := 0
	for {
		if _, ok := sp.Insert(rec); !ok {
			break
		}
		n++
	}
	// 8192-4 bytes usable, 104 bytes per record+slot → ~78 records.
	if n < 70 || n > 80 {
		t.Fatalf("packed %d records", n)
	}
	if sp.FreeSpace() >= 100 {
		t.Fatalf("free space %d but insert failed", sp.FreeSpace())
	}
}

func TestSlottedCompactReclaims(t *testing.T) {
	var page [PageSize]byte
	InitSlotted(page[:])
	sp := SlottedPage{page[:]}
	var slots []int
	rec := make([]byte, 1000)
	for i := 0; i < 8; i++ {
		for j := range rec {
			rec[j] = byte(i)
		}
		s, ok := sp.Insert(rec)
		if !ok {
			t.Fatalf("insert %d failed", i)
		}
		slots = append(slots, s)
	}
	// Delete the even ones, then compact; odd survivors must be intact.
	for i := 0; i < 8; i += 2 {
		if err := sp.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := sp.FreeSpace()
	sp.Compact()
	if sp.FreeSpace() <= before {
		t.Fatalf("compact did not reclaim: %d → %d", before, sp.FreeSpace())
	}
	for i := 1; i < 8; i += 2 {
		r, ok := sp.Get(slots[i])
		if !ok || len(r) != 1000 || r[0] != byte(i) {
			t.Fatalf("survivor %d corrupted after compact", i)
		}
	}
	// Reclaimed space usable again.
	if _, ok := sp.Insert(rec); !ok {
		t.Fatal("insert after compact failed")
	}
}

func TestHeapInsertGetUpdateDelete(t *testing.T) {
	bp := newPool(t, 16)
	h := NewHeapFile(bp)
	rid, err := h.Insert([]byte("record-one"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil || string(got) != "record-one" {
		t.Fatalf("get: %q %v", got, err)
	}
	// Shrinking update stays in place.
	nrid, err := h.Update(rid, []byte("short"))
	if err != nil {
		t.Fatal(err)
	}
	if nrid != rid {
		t.Fatalf("in-place update moved: %v → %v", rid, nrid)
	}
	// Growing update relocates.
	big := bytes.Repeat([]byte("x"), 200)
	nrid2, err := h.Update(nrid, big)
	if err != nil {
		t.Fatal(err)
	}
	got, err = h.Get(nrid2)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("relocated record wrong: %v", err)
	}
	if err := h.Delete(nrid2); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(nrid2); err == nil {
		t.Fatal("deleted record readable")
	}
}

func TestHeapScanOrderAndCount(t *testing.T) {
	bp := newPool(t, 4)
	h := NewHeapFile(bp)
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := h.Insert([]byte(fmt.Sprintf("rec-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", h.NumPages())
	}
	i := 0
	err := h.Scan(func(rid RID, rec []byte) error {
		want := fmt.Sprintf("rec-%06d", i)
		if string(rec) != want {
			return fmt.Errorf("at %d got %q want %q", i, rec, want)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scanned %d of %d", i, n)
	}
	c, err := h.Count()
	if err != nil || c != n {
		t.Fatalf("count=%d err=%v", c, err)
	}
}

func TestHeapViewNoCopy(t *testing.T) {
	bp := newPool(t, 4)
	h := NewHeapFile(bp)
	rid, _ := h.Insert([]byte("view-me"))
	called := false
	err := h.View(rid, func(rec []byte) error {
		called = true
		if string(rec) != "view-me" {
			t.Fatalf("got %q", rec)
		}
		return nil
	})
	if err != nil || !called {
		t.Fatalf("view: %v called=%v", err, called)
	}
}

func TestHeapBulkLoad(t *testing.T) {
	bp := newPool(t, 4)
	h := NewHeapFile(bp)
	// Preload garbage that BulkLoad must discard.
	for i := 0; i < 10; i++ {
		h.Insert([]byte("old"))
	}
	recs := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	i := 0
	rids, err := h.BulkLoad(func() ([]byte, error) {
		if i == len(recs) {
			return nil, nil
		}
		r := recs[i]
		i++
		return r, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 3 {
		t.Fatalf("rids=%d", len(rids))
	}
	c, _ := h.Count()
	if c != 3 {
		t.Fatalf("count=%d after bulk load", c)
	}
	for k, rid := range rids {
		got, err := h.Get(rid)
		if err != nil || !bytes.Equal(got, recs[k]) {
			t.Fatalf("bulk rec %d: %q %v", k, got, err)
		}
	}
}

func TestHeapOverflowRoundTrip(t *testing.T) {
	bp := newPool(t, 8)
	h := NewHeapFile(bp)
	r := rand.New(rand.NewSource(5))
	sizes := []int{
		MaxInlineRecord,     // largest inline
		MaxInlineRecord + 1, // smallest overflow
		PageSize * 3,        // multi-page chain
		PageSize*2 + 17,
	}
	var rids []RID
	var want [][]byte
	for _, sz := range sizes {
		rec := make([]byte, sz)
		r.Read(rec)
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatalf("size %d: %v", sz, err)
		}
		rids = append(rids, rid)
		want = append(want, rec)
	}
	for i, rid := range rids {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("size %d round-trip mismatch", sizes[i])
		}
	}
	// Scan assembles overflow records too.
	i := 0
	err := h.Scan(func(rid RID, rec []byte) error {
		if !bytes.Equal(rec, want[i]) {
			t.Fatalf("scan record %d mismatch", i)
		}
		i++
		return nil
	})
	if err != nil || i != len(sizes) {
		t.Fatalf("scan: %v (%d records)", err, i)
	}
	if _, err := h.Insert(make([]byte, MaxHeapRecord+1)); err == nil {
		t.Fatal("absurd record accepted")
	}
}

func TestHeapOverflowPatch(t *testing.T) {
	bp := newPool(t, 8)
	h := NewHeapFile(bp)
	rec := make([]byte, PageSize*2+100)
	for i := range rec {
		rec[i] = byte(i)
	}
	rid, err := h.Insert(rec)
	if err != nil {
		t.Fatal(err)
	}
	// Patch within the first chain page, across the page boundary,
	// and at the tail.
	patches := []struct {
		off  int
		data []byte
	}{
		{10, []byte("early")},
		{ovflData - 2, []byte("spanning-the-boundary")},
		{len(rec) - 4, []byte("tail")},
	}
	for _, p := range patches {
		if err := h.Patch(rid, p.off, p.data); err != nil {
			t.Fatalf("patch at %d: %v", p.off, err)
		}
		copy(rec[p.off:], p.data)
	}
	got, err := h.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rec) {
		t.Fatal("overflow patch mismatch")
	}
	if err := h.Patch(rid, len(rec)-1, []byte("xx")); err == nil {
		t.Fatal("out-of-extent overflow patch accepted")
	}
}

func TestHeapOverflowUpdate(t *testing.T) {
	bp := newPool(t, 8)
	h := NewHeapFile(bp)
	small := []byte("small")
	rid, err := h.Insert(small)
	if err != nil {
		t.Fatal(err)
	}
	// Grow inline → overflow.
	big := bytes.Repeat([]byte("B"), PageSize*2)
	rid, err = h.Update(rid, big)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := h.Get(rid)
	if !bytes.Equal(got, big) {
		t.Fatal("grown record mismatch")
	}
	// Shrink overflow → inline.
	rid, err = h.Update(rid, small)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = h.Get(rid)
	if !bytes.Equal(got, small) {
		t.Fatal("shrunk record mismatch")
	}
	c, _ := h.Count()
	if c != 1 {
		t.Fatalf("count=%d", c)
	}
}

func TestHeapInlinePatch(t *testing.T) {
	bp := newPool(t, 4)
	h := NewHeapFile(bp)
	rid, _ := h.Insert([]byte("abcdefgh"))
	if err := h.Patch(rid, 2, []byte("XY")); err != nil {
		t.Fatal(err)
	}
	got, _ := h.Get(rid)
	if string(got) != "abXYefgh" {
		t.Fatalf("got %q", got)
	}
	if err := h.Patch(rid, 7, []byte("ZZ")); err == nil {
		t.Fatal("out-of-extent patch accepted")
	}
	if err := h.Patch(RID{Page: rid.Page, Slot: 99}, 0, []byte("x")); err == nil {
		t.Fatal("patch of missing record accepted")
	}
}

// Randomized crosscheck of heap against an in-memory map through
// insert/update/delete cycles with a tiny pool to force eviction.
func TestHeapRandomizedAgainstModel(t *testing.T) {
	bp := newPool(t, 3)
	h := NewHeapFile(bp)
	r := rand.New(rand.NewSource(42))
	model := map[RID][]byte{}
	var live []RID
	for op := 0; op < 3000; op++ {
		switch {
		case len(live) == 0 || r.Float64() < 0.5:
			rec := make([]byte, 1+r.Intn(300))
			r.Read(rec)
			rid, err := h.Insert(rec)
			if err != nil {
				t.Fatal(err)
			}
			model[rid] = append([]byte(nil), rec...)
			live = append(live, rid)
		case r.Float64() < 0.6:
			k := r.Intn(len(live))
			rid := live[k]
			rec := make([]byte, 1+r.Intn(300))
			r.Read(rec)
			nrid, err := h.Update(rid, rec)
			if err != nil {
				t.Fatal(err)
			}
			delete(model, rid)
			model[nrid] = append([]byte(nil), rec...)
			live[k] = nrid
		default:
			k := r.Intn(len(live))
			rid := live[k]
			if err := h.Delete(rid); err != nil {
				t.Fatal(err)
			}
			delete(model, rid)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	for rid, want := range model {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatalf("get %v: %v", rid, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("mismatch at %v", rid)
		}
	}
	c, _ := h.Count()
	if c != len(model) {
		t.Fatalf("count=%d model=%d", c, len(model))
	}
}

func TestInvalidateDropsCleanly(t *testing.T) {
	bp := newPool(t, 4)
	id, buf, _ := bp.Allocate()
	copy(buf, "inv")
	bp.Unpin(id, true)
	if err := bp.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if bp.Stats().Resident != 0 {
		t.Fatal("frames survive invalidate")
	}
	got, err := bp.Pin(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("inv")) {
		t.Fatal("dirty page lost by invalidate")
	}
	bp.Unpin(id, false)
}
