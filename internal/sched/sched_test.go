package sched

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hazy/internal/obs"
)

// snapVals flattens a registry snapshot into name → value (histogram
// value = observation count).
func snapVals(reg *obs.Registry) map[string]int64 {
	m := make(map[string]int64)
	for _, s := range reg.Snapshot() {
		m[s.Name] = s.Value
	}
	return m
}

// drainState waits until t parks (quantum consumed all wakes).
func waitIdle(t *testing.T, task *Task) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for task.State() != StateIdle {
		if time.Now().After(deadline) {
			t.Fatalf("task never parked (state=%d)", task.State())
		}
		runtime.Gosched()
	}
}

// TestSourceWakeRunsQuantum: a parked source runs exactly when woken,
// and parks again when its quantum reports no more work.
func TestSourceWakeRunsQuantum(t *testing.T) {
	p := NewPool(2, nil)
	defer p.Close()

	var pending atomic.Int64
	var ran atomic.Int64
	task := p.Register(func() bool {
		ran.Add(1)
		return pending.Add(-1) > 0
	})

	if got := task.State(); got != StateIdle {
		t.Fatalf("fresh task state = %d, want idle", got)
	}
	pending.Store(3)
	task.Wake()
	waitIdle(t, task)
	if got := ran.Load(); got != 3 {
		t.Fatalf("quanta ran = %d, want 3 (requeue-while-more)", got)
	}

	// Idle parking: nothing else runs without a wake.
	time.Sleep(20 * time.Millisecond)
	if got := ran.Load(); got != 3 {
		t.Fatalf("parked task ran a quantum without a wake (ran=%d)", got)
	}

	pending.Store(1)
	task.Wake()
	waitIdle(t, task)
	if got := ran.Load(); got != 4 {
		t.Fatalf("re-woken task quanta = %d, want 4", got)
	}
}

// TestRoundRobinFairness: with one worker, a hot source that always
// has more work must not run twice before a co-queued cold source
// runs once — the requeue-at-tail discipline.
func TestRoundRobinFairness(t *testing.T) {
	p := NewPool(1, nil)
	defer p.Close()

	start := make(chan struct{})
	var order []string
	var mu sync.Mutex
	record := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}

	hotQuanta := 0
	coldRan := make(chan struct{})
	var hot, cold *Task
	hot = p.Register(func() bool {
		<-start // hold the only worker until both sources are queued
		record("hot")
		hotQuanta++
		return hotQuanta < 5 // stays runnable
	})
	cold = p.Register(func() bool {
		record("cold")
		close(coldRan)
		return false
	})

	hot.Wake()
	cold.Wake()
	close(start)
	select {
	case <-coldRan:
	case <-time.After(5 * time.Second):
		t.Fatal("cold source starved behind hot source")
	}
	waitIdle(t, hot)

	mu.Lock()
	defer mu.Unlock()
	if order[0] != "hot" || order[1] != "cold" {
		t.Fatalf("order = %v, want hot then cold then hot...", order)
	}
}

// TestWakeDuringRunningRearms: a wake that lands while the quantum is
// executing must schedule another quantum (no lost wakeup).
func TestWakeDuringRunningRearms(t *testing.T) {
	p := NewPool(1, nil)
	defer p.Close()

	inQuantum := make(chan struct{})
	release := make(chan struct{})
	var ran atomic.Int64
	var task *Task
	task = p.Register(func() bool {
		if ran.Add(1) == 1 {
			close(inQuantum)
			<-release
		}
		return false
	})
	task.Wake()
	<-inQuantum
	task.Wake() // lands in StateRunning → rearm
	close(release)
	waitIdle(t, task)
	deadline := time.Now().Add(5 * time.Second)
	for ran.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("rearmed wake lost: ran=%d, want 2", ran.Load())
		}
		runtime.Gosched()
	}
}

// TestRunAllExecutesEverythingOnce: every index exactly once, with
// the caller participating.
func TestRunAllExecutesEverythingOnce(t *testing.T) {
	p := NewPool(4, nil)
	defer p.Close()
	const n = 1000
	counts := make([]atomic.Int32, n)
	p.RunAll(n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

// TestRunAllFromInsideWorker: a source quantum scattering onto its
// own pool must complete even when every worker is busy — the caller
// participates, so progress never waits on a free worker.
func TestRunAllFromInsideWorker(t *testing.T) {
	p := NewPool(1, nil) // single worker: the quantum IS the pool
	defer p.Close()

	done := make(chan struct{})
	var sum atomic.Int64
	task := p.Register(func() bool {
		p.RunAll(8, func(i int) { sum.Add(int64(i)) })
		close(done)
		return false
	})
	task.Wake()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunAll from inside a pool worker deadlocked")
	}
	if got := sum.Load(); got != 28 {
		t.Fatalf("sum = %d, want 28", got)
	}
}

// TestRunAllPanicPropagates: the first panic re-raises on the caller
// as *TaskPanic after all tasks finish; siblings are not lost.
func TestRunAllPanicPropagates(t *testing.T) {
	p := NewPool(4, nil)
	defer p.Close()
	var ran atomic.Int32
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate to RunAll caller")
		}
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("recovered %T, want *TaskPanic", r)
		}
		if tp.Value != "boom-3" {
			t.Fatalf("panic value = %v, want boom-3", tp.Value)
		}
		if !strings.Contains(string(tp.Stack), "sched") {
			t.Fatalf("TaskPanic.Stack missing task stack:\n%s", tp.Stack)
		}
		if got := ran.Load(); got != 8 {
			t.Fatalf("sibling tasks ran = %d, want all 8 before re-panic", got)
		}
	}()
	p.RunAll(8, func(i int) {
		defer ran.Add(1)
		if i == 3 {
			panic("boom-3")
		}
	})
	t.Fatal("unreachable: RunAll should have panicked")
}

// TestQuantumPanicDoesNotKillWorker: a panicking source parks; the
// pool keeps serving other sources.
func TestQuantumPanicDoesNotKillWorker(t *testing.T) {
	p := NewPool(1, nil)
	defer p.Close()
	bad := p.Register(func() bool { panic("rogue source") })
	ok := make(chan struct{})
	good := p.Register(func() bool { close(ok); return false })
	bad.Wake()
	good.Wake()
	select {
	case <-ok:
	case <-time.After(5 * time.Second):
		t.Fatal("worker died on source panic; healthy source starved")
	}
	waitIdle(t, bad)
}

// TestStealCounting: with the caller blocked inside its own claimed
// task, idle workers steal the rest and the steal counter moves.
func TestStealCounting(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(4, reg)
	defer p.Close()

	const n = 64
	var workerRan atomic.Int64
	callerGone := make(chan struct{})
	p.RunAll(n, func(i int) {
		if i == 0 {
			// The caller claims index 0 first; stall it so workers
			// must steal the remainder.
			select {
			case <-callerGone:
			case <-time.After(200 * time.Millisecond):
			}
			return
		}
		workerRan.Add(1)
	})
	close(callerGone)
	snap := snapVals(reg)
	steals := snap["hazy_sched_steals_total"]
	if steals <= 0 {
		t.Fatalf("hazy_sched_steals_total = %d, want > 0 (workers stole while caller stalled)", steals)
	}
	if got := snap["hazy_sched_scatter_tasks_total"]; got != n {
		t.Fatalf("hazy_sched_scatter_tasks_total = %d, want %d", got, n)
	}
}

// TestCloseInlineFallback: RunAll on a closed pool runs entirely on
// the caller; a post-close wake still drains via the goroutine
// fallback.
func TestCloseInlineFallback(t *testing.T) {
	p := NewPool(2, nil)
	p.Close()

	var ran atomic.Int32
	p.RunAll(16, func(i int) { ran.Add(1) })
	if got := ran.Load(); got != 16 {
		t.Fatalf("closed-pool RunAll ran %d/16", got)
	}

	done := make(chan struct{})
	task := p.Register(func() bool { close(done); return false })
	task.Wake()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-close wake never ran (fallback goroutine missing)")
	}
}

// TestMetricsRegistered: the pool's collectors land in the registry
// and move under load.
func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(3, reg)
	defer p.Close()

	var pending atomic.Int64
	pending.Store(4)
	task := p.Register(func() bool { return pending.Add(-1) > 0 })
	task.Wake()
	waitIdle(t, task)

	snap := snapVals(reg)
	if got := snap["hazy_sched_workers"]; got != 3 {
		t.Fatalf("hazy_sched_workers = %d, want 3", got)
	}
	if got := snap["hazy_sched_quanta_total"]; got != 4 {
		t.Fatalf("hazy_sched_quanta_total = %d, want 4", got)
	}
	if got := snap["hazy_sched_wakes_total"]; got < 1 {
		t.Fatalf("hazy_sched_wakes_total = %d, want >= 1", got)
	}
	if got, ok := snap["hazy_sched_delay_us"]; !ok || got != 4 {
		t.Fatalf("hazy_sched_delay_us count = %d (present=%v), want 4 quanta observed", got, ok)
	}
}

// TestConcurrentWakeStorm: many goroutines waking one source while
// its quantum drains must neither lose work nor run quanta
// concurrently.
func TestConcurrentWakeStorm(t *testing.T) {
	p := NewPool(4, nil)
	defer p.Close()

	var pending atomic.Int64
	var inQuantum atomic.Int32
	var consumed atomic.Int64
	task := p.Register(func() bool {
		if inQuantum.Add(1) != 1 {
			t.Error("quantum ran concurrently with itself")
		}
		defer inQuantum.Add(-1)
		// Drain up to 8 units per quantum.
		for i := 0; i < 8; i++ {
			if pending.Add(-1) < 0 {
				pending.Add(1)
				return false
			}
			consumed.Add(1)
		}
		return pending.Load() > 0
	})

	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				pending.Add(1)
				task.Wake()
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for consumed.Load() < producers*perProducer {
		if time.Now().After(deadline) {
			t.Fatalf("consumed %d/%d — lost wakeup", consumed.Load(), producers*perProducer)
		}
		runtime.Gosched()
	}
	waitIdle(t, task)
}

// TestDefaultPool: the package-global fallback exists and works.
func TestDefaultPool(t *testing.T) {
	p := Default()
	if p == nil || p.Workers() < 1 {
		t.Fatalf("Default() pool unusable: %+v", p)
	}
	var ran atomic.Int32
	p.RunAll(4, func(i int) { ran.Add(1) })
	if ran.Load() != 4 {
		t.Fatalf("Default pool RunAll ran %d/4", ran.Load())
	}
	if Default() != p {
		t.Fatal("Default() not a singleton")
	}
}
