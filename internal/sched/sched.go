// Package sched is the catalog-wide maintenance scheduler: one shared
// pool of worker goroutines that runs ALL background maintenance —
// every attached engine's batch application and every striped view's
// per-stripe tasks — so the process runs O(GOMAXPROCS) maintenance
// goroutines however many engined views the catalog serves, instead of
// one goroutine per engine plus a private worker pool per striped
// view.
//
// Two kinds of work flow through a Pool:
//
//   - Task sources (Register/Task.Wake): long-lived producers — one
//     per attached engine — that own a bounded queue of pending work.
//     A source with runnable work is QUEUED on a global FIFO run
//     queue; a worker dequeues it and runs exactly one quantum
//     (Runner's one bounded batch), then requeues it at the BACK of
//     the FIFO if more work is immediately runnable. That round-robin
//     quantum discipline is the fairness mechanism: a hot view that
//     always has work cannot run twice before every other runnable
//     view has run once, so cold-view barrier latency is bounded by
//     (runnable sources × one quantum), not by the hot view's backlog.
//     Admission control is the source's own bounded queue: when the
//     pool falls behind, producers block in their enqueue
//     (backpressure), they do not grow the scheduler's state. A source
//     with no runnable work is PARKED — it occupies no goroutine and
//     no run-queue slot — and a Wake on enqueue makes it runnable
//     again.
//
//   - Scatters (RunAll): bounded fan-outs — one function over n
//     indexes, a striped view's per-stripe parallel section — where
//     the CALLING goroutine participates: it claims indexes from the
//     scatter's atomic cursor alongside any idle pool workers that
//     steal the rest. Caller participation makes RunAll deadlock-free
//     by construction (progress never depends on a free worker, so a
//     quantum running on a pool worker may itself scatter onto the
//     same pool), and idle-worker stealing is what makes the engine's
//     batch maintenance and a striped view's reorganization share one
//     parallelism budget.
//
// Panic safety: a panicking scatter function cannot kill the process
// or deadlock the gather barrier — every task runs under recover, the
// first panic is captured, and RunAll re-raises it on the caller as a
// *TaskPanic (original value + stack) after ALL tasks have finished,
// so no stripe is still mutating when the caller unwinds. A panicking
// source quantum likewise cannot kill its worker: the pool recovers,
// counts it, and parks the source.
//
// The pool reports through the obs registry passed at construction:
// worker/busy/runnable gauges, quantum and wake counters, scatter
// task and steal counters, and a power-of-two histogram of scheduling
// delay (wake → quantum start) in microseconds.
package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hazy/internal/obs"
)

// Task-source states. A source is in exactly one of them; transitions
// are CAS-driven so Wake is safe from any goroutine, lock-free until
// the push.
const (
	// StateIdle: parked — no runnable work, not queued, not running.
	StateIdle int32 = iota
	// StateQueued: on the run queue, waiting for a worker.
	StateQueued
	// StateRunning: a worker is executing one quantum right now.
	StateRunning
)

// Runner is one quantum of a task source's work: drain and apply at
// most one bounded batch. It returns true when more work is
// immediately runnable, which requeues the source at the back of the
// run queue (round-robin; it does NOT keep running). RunQuantum is
// never invoked concurrently for the same Task.
type Runner func() (more bool)

// Task is a registered source's scheduling handle. The zero value is
// not usable; obtain one from Pool.Register.
type Task struct {
	pool   *Pool
	run    Runner
	state  atomic.Int32
	rearm  atomic.Bool // wake arrived while running
	wakeNS atomic.Int64
}

// State returns the task's instantaneous scheduling state (one of
// StateIdle/StateQueued/StateRunning) — exposed so owners can report
// a runnable-state gauge per view.
func (t *Task) State() int32 { return t.state.Load() }

// Wake marks the source runnable: a parked source is pushed onto the
// run queue; a queued source is left in place; a running source is
// re-armed so it is requeued when its quantum ends. Every successful
// enqueue onto the source's own queue must be followed by a Wake —
// that ordering is the no-lost-wakeup contract.
func (t *Task) Wake() {
	t.pool.wakes.Inc()
	for {
		switch t.state.Load() {
		case StateIdle:
			if t.state.CompareAndSwap(StateIdle, StateQueued) {
				t.pool.push(t)
				return
			}
		case StateQueued:
			return
		case StateRunning:
			t.rearm.Store(true)
			// The quantum may have ended between the load and the
			// store; re-examine so the rearm cannot be missed.
			if t.state.Load() == StateRunning {
				return
			}
		}
	}
}

// scatter is one RunAll fan-out: n tasks claimed from an atomic
// cursor by the caller and any helping workers, gathered on wg.
type scatter struct {
	n    int
	fn   func(int)
	next atomic.Int64
	wg   sync.WaitGroup

	panicMu  sync.Mutex
	panicked bool
	panicVal any
	stack    []byte
}

// remaining reports whether unclaimed indexes exist (racy by design —
// claimOne re-checks).
func (s *scatter) remaining() bool { return s.next.Load() < int64(s.n) }

// claimOne claims and runs one index; false when the cursor is
// exhausted. Panics are captured, never propagated to the executor.
func (s *scatter) claimOne() bool {
	i := int(s.next.Add(1)) - 1
	if i >= s.n {
		return false
	}
	defer s.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			s.panicMu.Lock()
			if !s.panicked {
				s.panicked = true
				s.panicVal = r
				s.stack = debug.Stack()
			}
			s.panicMu.Unlock()
		}
	}()
	s.fn(i)
	return true
}

// TaskPanic is re-raised by RunAll on the calling goroutine when a
// scatter function panicked: the first panic's value plus the stack of
// the task that raised it. It is raised only after every task of the
// scatter has finished, so the caller never unwinds while a sibling
// task is still mutating shared state.
type TaskPanic struct {
	Value any
	Stack []byte
}

// Error renders the panic for error contexts.
func (tp *TaskPanic) Error() string {
	return fmt.Sprintf("sched: task panic: %v", tp.Value)
}

func (tp *TaskPanic) String() string {
	return fmt.Sprintf("sched: task panic: %v\n\ntask stack:\n%s", tp.Value, tp.Stack)
}

// Pool is the shared maintenance pool. All methods are safe for
// concurrent use.
type Pool struct {
	workers int

	mu       sync.Mutex
	cond     *sync.Cond
	runq     []*Task    // FIFO of queued sources (round-robin order)
	scatters []*scatter // active fan-outs with possibly unclaimed work
	closed   bool
	wg       sync.WaitGroup

	wakes        *obs.Counter
	quanta       *obs.Counter
	quantaPanics *obs.Counter
	scatterTasks *obs.Counter
	steals       *obs.Counter
	busy         *obs.Gauge
	delay        *obs.Histogram
}

// NewPool starts a pool of `workers` goroutines (0 = GOMAXPROCS).
// Collectors register on reg (nil keeps them private) under the
// hazy_sched_* names.
func NewPool(workers int, reg *obs.Registry) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wakes = reg.Counter("hazy_sched_wakes_total", "task-source wake requests")
	p.quanta = reg.Counter("hazy_sched_quanta_total", "source quanta executed")
	p.quantaPanics = reg.Counter("hazy_sched_quantum_panics_total", "source quanta that panicked (recovered)")
	p.scatterTasks = reg.Counter("hazy_sched_scatter_tasks_total", "scatter (stripe) tasks executed, by any goroutine")
	p.steals = reg.Counter("hazy_sched_steals_total", "scatter tasks stolen by idle pool workers")
	p.busy = reg.Gauge("hazy_sched_busy_workers", "workers currently executing a quantum or stolen task")
	p.delay = reg.Histogram("hazy_sched_delay_us", "power-of-two histogram of scheduling delay (wake to quantum start), microseconds", 22)
	reg.GaugeFunc("hazy_sched_workers", "pool worker goroutines", func() int64 { return int64(p.workers) })
	reg.GaugeFunc("hazy_sched_runnable_sources", "task sources on the run queue", func() int64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return int64(len(p.runq))
	})
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the lazily started process-wide pool (GOMAXPROCS
// workers, unregistered metrics). It is the fallback scheduler for
// engines and striped views constructed without an explicit pool —
// direct core users, benchmarks — and is never closed: its workers
// park on the condition variable when idle.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = NewPool(0, nil) })
	return defaultPool
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Register adds a task source and returns its scheduling handle,
// initially parked. run is invoked one quantum at a time, never
// concurrently with itself. The pool holds no reference to a parked
// task, so an abandoned source is simply garbage collected.
func (p *Pool) Register(run Runner) *Task {
	return &Task{pool: p, run: run}
}

// push appends t (already in StateQueued) to the run-queue tail. On a
// closed pool the task is run on a fresh goroutine instead — degraded
// but live, so a source woken during teardown can still drain.
func (p *Pool) push(t *Task) {
	t.wakeNS.Store(time.Now().UnixNano())
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		go p.runTask(t)
		return
	}
	p.runq = append(p.runq, t)
	p.mu.Unlock()
	p.cond.Signal()
}

// worker is the pool loop: steal scatter work first (a blocked RunAll
// caller is waiting on it), then dequeue one source and run one
// quantum, else park.
func (p *Pool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		if s := p.pickScatter(); s != nil {
			p.mu.Unlock()
			p.busy.Add(1)
			for s.claimOne() {
				p.scatterTasks.Inc()
				p.steals.Inc()
			}
			p.busy.Add(-1)
			p.mu.Lock()
			continue
		}
		if len(p.runq) > 0 {
			t := p.runq[0]
			p.runq = p.runq[1:]
			p.mu.Unlock()
			p.runTask(t)
			p.mu.Lock()
			continue
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		p.cond.Wait()
	}
}

// pickScatter returns an active scatter that still has unclaimed
// work. Caller holds p.mu.
func (p *Pool) pickScatter() *scatter {
	for _, s := range p.scatters {
		if s.remaining() {
			return s
		}
	}
	return nil
}

// runTask executes one quantum of t and applies the state-machine
// epilogue: requeue at the tail when more work is runnable (or a wake
// arrived mid-quantum), park otherwise.
func (p *Pool) runTask(t *Task) {
	p.busy.Add(1)
	if woke := t.wakeNS.Load(); woke != 0 {
		p.delay.ObserveDuration(time.Duration(time.Now().UnixNano() - woke))
	}
	t.state.Store(StateRunning)
	// Wakes observed before this point are satisfied by the quantum's
	// own drain; wakes during the quantum re-arm below.
	t.rearm.Store(false)
	more := p.quantum(t)
	p.quanta.Inc()
	if more {
		t.state.Store(StateQueued)
		p.push(t)
	} else {
		t.state.Store(StateIdle)
		if t.rearm.Swap(false) {
			if t.state.CompareAndSwap(StateIdle, StateQueued) {
				p.push(t)
			}
		}
	}
	p.busy.Add(-1)
}

// quantum runs one Runner invocation under recover: a panicking
// source must not kill a shared worker (or, via the closed-pool
// fallback, an unrelated goroutine). The panic is counted and the
// source parks; its owner's own error machinery is responsible for
// surfacing the failure.
func (p *Pool) quantum(t *Task) (more bool) {
	defer func() {
		if r := recover(); r != nil {
			p.quantaPanics.Inc()
			more = false
		}
	}()
	return t.run()
}

// RunAll runs fn(0..n-1) to completion: the calling goroutine claims
// tasks from the scatter's cursor while idle pool workers steal the
// rest, and it returns only when every task has finished — the gather
// barrier every parallel section ends with. Progress never depends on
// pool capacity (the caller always participates), so RunAll may be
// invoked from inside a source quantum running on this same pool, or
// on a closed pool (everything then runs on the caller).
//
// If any task panicked, RunAll re-raises the FIRST panic on the
// caller as a *TaskPanic after the barrier — sibling tasks have all
// finished, and the process does not die on a worker goroutine.
func (p *Pool) RunAll(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	s := &scatter{n: n, fn: fn}
	s.wg.Add(n)
	if n > 1 && p != nil {
		p.mu.Lock()
		if !p.closed {
			p.scatters = append(p.scatters, s)
			p.mu.Unlock()
			p.cond.Broadcast()
			defer p.removeScatter(s)
		} else {
			p.mu.Unlock()
		}
	}
	for s.claimOne() {
		if p != nil {
			p.scatterTasks.Inc()
		}
	}
	s.wg.Wait()
	if s.panicked {
		panic(&TaskPanic{Value: s.panicVal, Stack: s.stack})
	}
}

// removeScatter unlinks a finished scatter from the active list.
func (p *Pool) removeScatter(s *scatter) {
	p.mu.Lock()
	for i, cand := range p.scatters {
		if cand == s {
			p.scatters = append(p.scatters[:i], p.scatters[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// Close stops the workers after the run queue drains and waits for
// them to exit. Sources woken after Close run on ad-hoc goroutines
// (push's fallback) so nothing hangs; new scatters run entirely on
// their callers. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
