package learn

import (
	"hazy/internal/vector"
)

// BatchSVM is a full-batch subgradient solver for the linear SVM
// objective (App. A.1). It stands in for SVMLight in the Figure 10
// comparison: a batch method that visits the entire training set per
// iteration — accurate, but an order of magnitude (or more) slower
// than the incremental SGD at comparable quality, which is the shape
// the paper reports.
//
// The bias is folded in as an augmented constant feature (standard
// for Pegasos-style solvers) and the returned model is the weighted
// average of the iterates, which converges at O(1/T).
type BatchSVM struct {
	// Lambda is the regularization strength (default 1e-4).
	Lambda float64
	// MaxIter bounds the number of full-batch iterations (default 300).
	MaxIter int
}

// Fit trains on examples and returns the model plus the number of
// full-batch iterations executed.
func (b BatchSVM) Fit(examples []Example) (*Model, int) {
	lambda := b.Lambda
	if lambda == 0 {
		lambda = 1e-4
	}
	maxIter := b.MaxIter
	if maxIter == 0 {
		maxIter = 300
	}
	dim := 0
	for _, ex := range examples {
		if d := ex.F.Dim(); d > dim {
			dim = d
		}
	}
	if len(examples) == 0 {
		return NewModel(dim), 0
	}
	n := float64(len(examples))
	// Augmented weights: w[0:dim] for features, w[dim] for the bias.
	w := make([]float64, dim+1)
	avg := make([]float64, dim+1)
	for it := 1; it <= maxIter; it++ {
		// Full subgradient of (λ/2)‖w‖² + (1/n)Σ max(1−y·z, 0),
		// z = w·f + w[dim].
		g := make([]float64, dim+1)
		for i, x := range w {
			g[i] = lambda * x
		}
		for _, ex := range examples {
			y := float64(ex.Label)
			z := vector.Dot(w, ex.F) + w[dim]
			if z*y < 1 {
				g = vector.Axpy(g, -y/n, ex.F)
				g[dim] -= y / n
			}
		}
		eta := 1 / (lambda * float64(it))
		for i := range w {
			w[i] -= eta * g[i]
		}
		// Weighted iterate averaging (Lacoste-Julien et al.):
		// avg_t = (1−ρ)avg + ρ·w with ρ = 2/(t+1).
		rho := 2 / float64(it+1)
		for i := range avg {
			avg[i] = (1-rho)*avg[i] + rho*w[i]
		}
	}
	m := &Model{W: append([]float64(nil), avg[:dim]...), B: -avg[dim]}
	return m, maxIter
}
