package learn

import (
	"math/rand"

	"hazy/internal/vector"
)

// SGDConfig configures the incremental trainer.
type SGDConfig struct {
	// Loss selects the linear method; defaults to Hinge (SVM).
	Loss Loss
	// Reg is the regularizer; defaults to L2.
	Reg Regularizer
	// Lambda is the regularization strength; default 1e-4.
	Lambda float64
	// Eta0 is the initial learning rate; default 0.1.
	Eta0 float64
	// Dim is the initial weight dimensionality (grows on demand).
	Dim int
}

func (c SGDConfig) withDefaults() SGDConfig {
	if c.Loss == nil {
		c.Loss = Hinge{}
	}
	if c.Reg == nil {
		c.Reg = L2{}
	}
	if c.Lambda == 0 {
		c.Lambda = 1e-4
	}
	if c.Eta0 == 0 {
		c.Eta0 = 0.1
	}
	return c
}

// SGD is an incremental stochastic-gradient trainer in the style of
// Bottou's sgd (the paper's default learning algorithm, §3.1). Each
// Train call folds one example into the model in O(nnz) time —
// roughly the "100µs per update" regime the paper reports.
type SGD struct {
	cfg   SGDConfig
	model *Model
	t     int // examples seen, drives the learning-rate schedule
}

// NewSGD returns a trainer with a zero model.
func NewSGD(cfg SGDConfig) *SGD {
	cfg = cfg.withDefaults()
	return &SGD{cfg: cfg, model: NewModel(cfg.Dim)}
}

// Model returns the live model (callers must Clone before mutating or
// retaining across Train calls).
func (s *SGD) Model() *Model { return s.model }

// Steps returns the number of examples folded in so far.
func (s *SGD) Steps() int { return s.t }

// eta returns the Bottou/Pegasos step size at step t.
func (s *SGD) eta() float64 {
	return s.cfg.Eta0 / (1 + s.cfg.Lambda*s.cfg.Eta0*float64(s.t))
}

// Train folds one example into the model (one SGD step).
func (s *SGD) Train(f vector.Vector, label int) {
	y := float64(label)
	eta := s.eta()
	s.t++
	z := s.model.Activation(f)
	g := s.cfg.Loss.Deriv(z, y)
	s.cfg.Reg.Apply(s.model.W, eta, s.cfg.Lambda)
	if g != 0 {
		// z = w·f − b, so ∂L/∂w = g·f and ∂L/∂b = −g; descend both.
		s.model.W = vector.Axpy(s.model.W, -eta*g, f)
		s.model.B += eta * g
	}
}

// TrainEpochs runs full passes over examples in shuffled order,
// returning the trained model. Used for bulk-loading a view (initial
// training) and by the model-selection routine.
func (s *SGD) TrainEpochs(examples []Example, epochs int, rng *rand.Rand) *Model {
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < epochs; e++ {
		if rng != nil {
			rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		}
		for _, i := range idx {
			s.Train(examples[i].F, examples[i].Label)
		}
	}
	return s.model
}

// Objective returns the regularized empirical loss of the current
// model over examples (for convergence diagnostics).
func (s *SGD) Objective(examples []Example) float64 {
	m := s.model
	var sum float64
	for _, ex := range examples {
		sum += s.cfg.Loss.Value(m.Activation(ex.F), float64(ex.Label))
	}
	return sum + s.cfg.Reg.Value(m.W, s.cfg.Lambda)
}
