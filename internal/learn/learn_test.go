package learn

import (
	"math"
	"math/rand"
	"testing"

	"hazy/internal/vector"
)

// separable builds a linearly separable 2-D data set around the
// hyperplane x0 + x1 = 1 with margin.
func separable(r *rand.Rand, n int, margin float64) []Example {
	out := make([]Example, 0, n)
	for len(out) < n {
		x := vector.NewDense([]float64{r.Float64() * 2, r.Float64() * 2})
		z := x.Val[0] + x.Val[1] - 1
		if math.Abs(z) < margin {
			continue
		}
		out = append(out, Example{ID: int64(len(out)), F: x, Label: Sign(z)})
	}
	return out
}

func TestPredictSignConvention(t *testing.T) {
	m := &Model{W: []float64{-1, 1}, B: 0.5}
	// Paper Example 2.2: P1=(3,4) → db paper (+1); P4=(5,4) → −1.
	if m.Predict(vector.NewDense([]float64{3, 4})) != 1 {
		t.Fatal("P1 should be positive")
	}
	if m.Predict(vector.NewDense([]float64{5, 4})) != -1 {
		t.Fatal("P4 should be negative")
	}
	// sign(0) = 1 per the paper.
	zero := &Model{W: []float64{1}, B: 0}
	if zero.Predict(vector.NewDense([]float64{0})) != 1 {
		t.Fatal("sign(0) must be +1")
	}
}

func TestSGDLearnsSeparable(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ex := separable(r, 600, 0.1)
	s := NewSGD(SGDConfig{Lambda: 1e-4, Eta0: 0.5})
	s.TrainEpochs(ex, 20, r)
	m := Evaluate(s.Model(), ex)
	if acc := m.Accuracy(); acc < 0.98 {
		t.Fatalf("accuracy %.3f on separable data", acc)
	}
}

func TestSGDLogisticAndRidgeLearn(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	ex := separable(r, 600, 0.15)
	// Squared loss needs a smaller step than hinge (its gradient is
	// unbounded), hence per-method Eta0.
	etas := map[string]float64{MethodLogistic: 0.5, MethodRidge: 0.05}
	// Least squares trades margin for fit quality on far points, so
	// its plateau on this geometry is ~0.92; logistic reaches ~0.99.
	floor := map[string]float64{MethodLogistic: 0.95, MethodRidge: 0.90}
	for _, method := range []string{MethodLogistic, MethodRidge} {
		s := NewSGD(SGDConfig{Loss: LossFor(method), Lambda: 1e-4, Eta0: etas[method]})
		s.TrainEpochs(ex, 25, r)
		if acc := Evaluate(s.Model(), ex).Accuracy(); acc < floor[method] {
			t.Fatalf("%s accuracy %.3f", method, acc)
		}
	}
}

func TestSGDIncrementalStepsCheap(t *testing.T) {
	s := NewSGD(SGDConfig{})
	f := vector.NewSparse([]int32{2, 9}, []float64{1, -1})
	for i := 0; i < 100; i++ {
		s.Train(f, 1)
	}
	if s.Steps() != 100 {
		t.Fatalf("steps=%d", s.Steps())
	}
	if s.Model().Dim() < 10 {
		t.Fatalf("model did not grow to sparse dims: %d", s.Model().Dim())
	}
}

func TestObjectiveDecreases(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	ex := separable(r, 300, 0.1)
	s := NewSGD(SGDConfig{Eta0: 0.5})
	before := s.Objective(ex)
	s.TrainEpochs(ex, 10, r)
	after := s.Objective(ex)
	if after >= before {
		t.Fatalf("objective did not decrease: %v → %v", before, after)
	}
}

// numericDeriv approximates dL/dz by central differences.
func numericDeriv(l Loss, z, y float64) float64 {
	const h = 1e-6
	return (l.Value(z+h, y) - l.Value(z-h, y)) / (2 * h)
}

func TestLossDerivativesMatchNumeric(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	losses := []Loss{Hinge{}, Logistic{}, Squared{}}
	for _, l := range losses {
		for trial := 0; trial < 200; trial++ {
			z := r.NormFloat64() * 3
			y := float64(1 - 2*r.Intn(2))
			// Skip the hinge kink where the subgradient is set-valued.
			if l.Name() == "svm" && math.Abs(1-z*y) < 1e-4 {
				continue
			}
			got := l.Deriv(z, y)
			want := numericDeriv(l, z, y)
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("%s deriv at z=%v y=%v: got %v want %v", l.Name(), z, y, got, want)
			}
		}
	}
}

func TestLogisticStableAtExtremes(t *testing.T) {
	l := Logistic{}
	if v := l.Value(-1e4, 1); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("overflow: %v", v)
	}
	if v := l.Value(1e4, 1); v != 0 && math.Abs(v) > 1e-300 {
		// log1p(exp(-1e4)) underflows to 0 — fine.
		t.Fatalf("expected ~0, got %v", v)
	}
}

func TestRegularizers(t *testing.T) {
	w := []float64{1, -0.5, 0.0001}
	L2{}.Apply(w, 0.1, 0.5) // scale by 0.95
	if math.Abs(w[0]-0.95) > 1e-12 {
		t.Fatalf("l2 apply: %v", w)
	}
	w = []float64{1, -1, 0.005}
	L1{}.Apply(w, 0.1, 0.1) // threshold 0.01
	if w[0] != 0.99 || w[1] != -0.99 || w[2] != 0 {
		t.Fatalf("l1 apply: %v", w)
	}
	if v := (L2{}).Value([]float64{3, 4}, 2); v != 25 {
		t.Fatalf("l2 value %v", v)
	}
	if v := (L1{}).Value([]float64{3, -4}, 2); v != 14 {
		t.Fatalf("l1 value %v", v)
	}
	// Overshooting eta*lambda must clamp, not flip sign.
	w = []float64{1}
	L2{}.Apply(w, 10, 1)
	if w[0] != 0 {
		t.Fatalf("l2 clamp: %v", w)
	}
}

func TestBatchSVMQualityMatchesSGD(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	ex := separable(r, 400, 0.15)
	bm, iters := BatchSVM{MaxIter: 300}.Fit(ex)
	if iters == 0 {
		t.Fatal("no iterations")
	}
	if acc := Evaluate(bm, ex).Accuracy(); acc < 0.95 {
		t.Fatalf("batch accuracy %.3f", acc)
	}
}

func TestBatchSVMEmpty(t *testing.T) {
	m, iters := BatchSVM{}.Fit(nil)
	if m == nil || iters != 0 {
		t.Fatalf("empty fit: %v %d", m, iters)
	}
}

func TestMetrics(t *testing.T) {
	m := Metrics{TP: 8, FP: 2, TN: 85, FN: 5}
	if p := m.Precision(); p != 0.8 {
		t.Fatalf("P=%v", p)
	}
	if r := m.Recall(); math.Abs(r-8.0/13) > 1e-12 {
		t.Fatalf("R=%v", r)
	}
	if a := m.Accuracy(); a != 0.93 {
		t.Fatalf("A=%v", a)
	}
	if f := m.F1(); f <= 0 || f > 1 {
		t.Fatalf("F1=%v", f)
	}
	var zero Metrics
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.Accuracy() != 0 || zero.F1() != 0 {
		t.Fatal("zero metrics must not NaN")
	}
}

func TestDiffNorm(t *testing.T) {
	a := &Model{W: []float64{1, 2}, B: 0}
	b := &Model{W: []float64{1, 0, 2}, B: 1}
	if got := a.DiffNorm(b, 1); got != 4 {
		t.Fatalf("diff l1=%v", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := &Model{W: []float64{1}, B: 2}
	c := a.Clone()
	c.W[0] = 9
	c.B = 9
	if a.W[0] != 1 || a.B != 2 {
		t.Fatal("clone aliases")
	}
}

func TestSelectMethodPicksReasonably(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	ex := separable(r, 300, 0.2)
	method := SelectMethod(ex, 5, 3, r)
	switch method {
	case MethodSVM, MethodLogistic, MethodRidge:
	default:
		t.Fatalf("unknown method %q", method)
	}
	// On clean separable data every method is ≥95%: just require the
	// returned method actually achieves good holdout accuracy.
	s := NewSGD(SGDConfig{Loss: LossFor(method)})
	s.TrainEpochs(ex, 10, r)
	if acc := Evaluate(s.Model(), ex).Accuracy(); acc < 0.95 {
		t.Fatalf("selected method %s trains to %.3f", method, acc)
	}
}

func TestSelectMethodTinyData(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if m := SelectMethod(separable(r, 1, 0.2), 2, 5, r); m != MethodSVM {
		t.Fatalf("tiny data fallback: %q", m)
	}
}

func TestLossForUnknownDefaultsToSVM(t *testing.T) {
	if _, ok := LossFor("nonsense").(Hinge); !ok {
		t.Fatal("unknown method should map to hinge")
	}
}
