package learn

import "math"

// Loss is a convex loss L(z, y) with z = w·x − b and y ∈ {−1, +1},
// following the paper's Figure 9(a). Deriv returns ∂L/∂z (a
// subgradient where L is non-smooth).
type Loss interface {
	Name() string
	Value(z, y float64) float64
	Deriv(z, y float64) float64
}

// Hinge is the SVM loss max{1 − zy, 0}.
type Hinge struct{}

// Name returns "svm".
func (Hinge) Name() string { return "svm" }

// Value returns max{1 − zy, 0}.
func (Hinge) Value(z, y float64) float64 { return math.Max(1-z*y, 0) }

// Deriv returns the subgradient −y when the margin is violated, else 0.
func (Hinge) Deriv(z, y float64) float64 {
	if z*y < 1 {
		return -y
	}
	return 0
}

// Logistic is log(1 + exp(−yz)).
type Logistic struct{}

// Name returns "logistic".
func (Logistic) Name() string { return "logistic" }

// Value returns log(1+exp(−yz)) computed stably.
func (Logistic) Value(z, y float64) float64 {
	t := -y * z
	if t > 30 {
		return t
	}
	return math.Log1p(math.Exp(t))
}

// Deriv returns −y·σ(−yz).
func (Logistic) Deriv(z, y float64) float64 {
	return -y / (1 + math.Exp(y*z))
}

// Squared is the ridge-regression loss (z − y)².
type Squared struct{}

// Name returns "ridge".
func (Squared) Name() string { return "ridge" }

// Value returns (z−y)².
func (Squared) Value(z, y float64) float64 { d := z - y; return d * d }

// Deriv returns 2(z−y).
func (Squared) Deriv(z, y float64) float64 { return 2 * (z - y) }

// Regularizer is the penalty P(w) of Figure 9(b), applied
// multiplicatively/additively per SGD step.
type Regularizer interface {
	Name() string
	// Apply shrinks w in place for one SGD step with learning rate eta
	// and strength lambda.
	Apply(w []float64, eta, lambda float64)
	// Value returns P(w) for reporting.
	Value(w []float64, lambda float64) float64
}

// L2 is the Tikhonov penalty (λ/2)‖w‖₂².
type L2 struct{}

// Name returns "l2".
func (L2) Name() string { return "l2" }

// Apply multiplies w by (1 − ηλ).
func (L2) Apply(w []float64, eta, lambda float64) {
	s := 1 - eta*lambda
	if s < 0 {
		s = 0
	}
	for i := range w {
		w[i] *= s
	}
}

// Value returns (λ/2)‖w‖₂².
func (L2) Value(w []float64, lambda float64) float64 {
	var s float64
	for _, x := range w {
		s += x * x
	}
	return lambda / 2 * s
}

// L1 is the lasso penalty λ‖w‖₁ applied by soft-thresholding.
type L1 struct{}

// Name returns "l1".
func (L1) Name() string { return "l1" }

// Apply soft-thresholds each coordinate by ηλ.
func (L1) Apply(w []float64, eta, lambda float64) {
	t := eta * lambda
	for i, x := range w {
		switch {
		case x > t:
			w[i] = x - t
		case x < -t:
			w[i] = x + t
		default:
			w[i] = 0
		}
	}
}

// Value returns λ‖w‖₁.
func (L1) Value(w []float64, lambda float64) float64 {
	var s float64
	for _, x := range w {
		s += math.Abs(x)
	}
	return lambda * s
}
