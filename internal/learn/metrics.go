package learn

// Metrics holds binary-classification quality numbers for the
// positive class, as reported in the paper's Figure 10 (P/R columns).
type Metrics struct {
	TP, FP, TN, FN int
}

// Evaluate scores model m on the labeled examples.
func Evaluate(m *Model, examples []Example) Metrics {
	var mt Metrics
	for _, ex := range examples {
		pred := m.Predict(ex.F)
		switch {
		case pred == 1 && ex.Label == 1:
			mt.TP++
		case pred == 1 && ex.Label == -1:
			mt.FP++
		case pred == -1 && ex.Label == -1:
			mt.TN++
		default:
			mt.FN++
		}
	}
	return mt
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// Accuracy returns the fraction of correct predictions.
func (m Metrics) Accuracy() float64 {
	n := m.TP + m.FP + m.TN + m.FN
	if n == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(n)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
