package learn

import (
	"math/rand"
)

// Method names accepted in view declarations (paper §2.1: "USING SVM").
const (
	MethodSVM      = "svm"
	MethodLogistic = "logistic"
	MethodRidge    = "ridge"
)

// LossFor maps a method name to its loss; unknown names get Hinge.
func LossFor(method string) Loss {
	switch method {
	case MethodLogistic:
		return Logistic{}
	case MethodRidge:
		return Squared{}
	default:
		return Hinge{}
	}
}

// SelectMethod implements the paper's automatic model selection
// ("a simple model selection algorithm based on leave-one-out
// estimators", §2.1) with a k-fold holdout estimator: each candidate
// method is trained on k−1 folds and scored on the held-out fold; the
// method with the best mean accuracy wins. Ties go to the SVM.
func SelectMethod(examples []Example, epochs, folds int, rng *rand.Rand) string {
	if folds < 2 {
		folds = 2
	}
	if len(examples) < folds {
		return MethodSVM
	}
	methods := []string{MethodSVM, MethodLogistic, MethodRidge}
	perm := rng.Perm(len(examples))
	best, bestAcc := MethodSVM, -1.0
	for _, method := range methods {
		var correct, total int
		for fold := 0; fold < folds; fold++ {
			var train, test []Example
			for i, p := range perm {
				if i%folds == fold {
					test = append(test, examples[p])
				} else {
					train = append(train, examples[p])
				}
			}
			s := NewSGD(SGDConfig{Loss: LossFor(method)})
			s.TrainEpochs(train, epochs, rand.New(rand.NewSource(int64(fold))))
			m := Evaluate(s.Model(), test)
			correct += m.TP + m.TN
			total += m.TP + m.TN + m.FP + m.FN
		}
		acc := float64(correct) / float64(total)
		if acc > bestAcc {
			best, bestAcc = method, acc
		}
	}
	return best
}
