// Package learn implements the statistical substrate of Hazy: linear
// models (w, b), convex loss functions, an incremental stochastic
// gradient trainer (the paper's default, after Bottou's SGD), a batch
// subgradient baseline standing in for SVMLight in Figure 10, and
// simple model selection.
//
// A model labels an entity with feature vector f as
// sign(w·f − b) (paper §2.1); eps = w·f − b is the signed distance
// proxy Hazy clusters its scratch table on.
package learn

import (
	"fmt"

	"hazy/internal/vector"
)

// Model is a linear classification model: the hyperplane w·x − b = 0.
type Model struct {
	W []float64
	B float64
}

// NewModel returns a zero model of the given dimensionality.
func NewModel(dim int) *Model { return &Model{W: make([]float64, dim)} }

// Clone returns a deep copy of m.
func (m *Model) Clone() *Model {
	return &Model{W: append([]float64(nil), m.W...), B: m.B}
}

// Activation returns eps = w·f − b for the entity's feature vector.
func (m *Model) Activation(f vector.Vector) float64 {
	return vector.Dot(m.W, f) - m.B
}

// Predict returns +1 if w·f − b ≥ 0 and −1 otherwise (paper's sign).
func (m *Model) Predict(f vector.Vector) int {
	if m.Activation(f) >= 0 {
		return 1
	}
	return -1
}

// Sign is the paper's sign(x): 1 if x ≥ 0 else −1.
func Sign(x float64) int {
	if x >= 0 {
		return 1
	}
	return -1
}

// Trained reports whether any training has moved the model off the
// zero hyperplane. A zero model "classifies" everything +1 (sign(0)),
// which is noise, not a prediction — serving layers use this to
// reject ad-hoc classification against never-trained views.
func (m *Model) Trained() bool {
	if m.B != 0 {
		return true
	}
	for _, w := range m.W {
		if w != 0 {
			return true
		}
	}
	return false
}

// DiffNorm returns ‖m.w − o.w‖_p, the model-drift term of Lemma 3.1.
func (m *Model) DiffNorm(o *Model, p float64) float64 {
	return vector.DiffNorm(m.W, o.W, p)
}

// Dim returns the weight dimensionality.
func (m *Model) Dim() int { return len(m.W) }

// String summarizes the model.
func (m *Model) String() string {
	return fmt.Sprintf("Model(dim=%d, b=%.4g)", len(m.W), m.B)
}

// Example is one training example: a feature vector and a ±1 label.
type Example struct {
	ID    int64
	F     vector.Vector
	Label int // +1 or −1
}
