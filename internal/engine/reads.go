package engine

import (
	"errors"
	"sync/atomic"

	"hazy/internal/core"
)

// ErrUntrained is returned by Classify when the published snapshot's
// model has never been trained: a zero model labels everything +1,
// which would be served as if it meant something. The serving
// goroutine must never panic on a missing model either way.
var ErrUntrained = errors.New("engine: view is untrained (no training examples yet)")

// snapHolder is the atomically swapped published snapshot plus its
// version counter. Readers only ever load; the maintenance goroutine
// only ever stores.
type snapHolder struct {
	p       atomic.Pointer[core.Snapshot]
	version atomic.Uint64
}

func (e *Engine) publish(s *core.Snapshot) {
	e.snap.p.Store(s)
	e.snap.version.Add(1)
}

// Snapshot returns the currently published snapshot. It is never nil
// and is safe to read from any goroutine; retain it to answer several
// questions from one consistent state.
func (e *Engine) Snapshot() *core.Snapshot { return e.snap.p.Load() }

// Label answers a Single Entity read from the published snapshot,
// without locks.
func (e *Engine) Label(id int64) (int, error) { return e.Snapshot().Label(id) }

// Members answers an All Members read from the published snapshot.
func (e *Engine) Members() ([]int64, error) { return e.Snapshot().Members(), nil }

// CountMembers counts the entities labeled +1 in the published
// snapshot.
func (e *Engine) CountMembers() (int, error) { return e.Snapshot().CountMembers(), nil }

// MostUncertain returns up to k ids nearest the decision boundary in
// the published snapshot (active-learning picks).
func (e *Engine) MostUncertain(k int) ([]int64, error) {
	return e.Snapshot().MostUncertain(k)
}

// Classify scores free text against the published snapshot's model
// without storing anything. A snapshot whose model is absent or has
// never seen a training example returns ErrUntrained instead of a
// meaningless +1 (or a nil-model panic inside a serving goroutine).
func (e *Engine) Classify(text string) (int, error) {
	m := e.Snapshot().Model()
	if m == nil || !m.Trained() {
		return 0, ErrUntrained
	}
	return m.Predict(e.be.Feature(text)), nil
}

// ViewStats returns the view's maintenance counters as captured in
// the published snapshot.
func (e *Engine) ViewStats() core.Stats { return e.Snapshot().Stats() }
