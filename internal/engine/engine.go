// Package engine is the concurrent maintenance engine: it serves a
// classification view to many goroutines at once by splitting the
// paper's read and write paths onto different synchronization
// machinery.
//
// Writes (TRAIN and ADD) enter a bounded queue and are drained one
// batch at a time by the shared maintenance pool (internal/sched):
// the engine is a *task source*, not a goroutine owner. While the
// queue holds work the source is runnable and the pool runs its
// quanta — each quantum drains up to MaxBatch queued ops and
// group-applies them: every queued example is folded into the model
// (one SGD step and one watermark observation each — both cheap), but
// the expensive maintenance decision — reorganize, or sweep the
// [lw, hw] band — runs once per batch. This amortizes the paper's
// incremental step a second time: Hazy amortizes maintenance across
// the tuples of one update; the engine amortizes it across the
// updates of one batch. When the queue empties the source parks — an
// idle view costs no goroutine and no scheduler state — and the next
// enqueue wakes it. The pool's round-robin quantum discipline is the
// catalog-level fairness contract: a flooded view runs one batch,
// then every other runnable view runs one, so a hot tenant cannot
// starve cold ones. The bounded queue is the admission-control
// mechanism: when maintenance falls behind, producers block in
// Enqueue instead of growing an unbounded backlog.
//
// Reads (LABEL, COUNT, MEMBERS, CLASSIFY, UNCERTAIN) never touch the
// view at all. After each applied batch the maintenance goroutine
// exports an immutable core.Snapshot and publishes it with one atomic
// pointer swap; readers load the pointer and answer from the
// snapshot with no locks taken, so reads scale across cores and are
// never blocked behind maintenance. Freshness is batch-granular: a
// read observes the view as of the last published snapshot. Callers
// that need read-your-writes either use the synchronous write calls
// (which return only after the batch containing the write is applied
// and published) or issue an explicit Flush barrier.
//
// Asynchronous failures are attributed per producer session: every
// async op carries a Token, the first error per token is retained,
// and FlushTok reports only its own token's error — so concurrent
// sessions sharing one engine never collect each other's failures.
// The engine-wide Flush, Drain, and Close sweep up unclaimed errors
// so none are lost when a session disappears without flushing.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hazy/internal/obs"
	"hazy/internal/sched"
)

// ErrClosed is returned by writes enqueued after Close.
var ErrClosed = errors.New("engine: closed")

// Options configures an Engine.
type Options struct {
	// QueueSize bounds the update queue; Enqueue blocks when it is
	// full (backpressure). Default 1024.
	QueueSize int
	// MaxBatch caps how many queued ops one maintenance step drains
	// and group-applies. Default 256.
	MaxBatch int
	// Metrics, when non-nil, registers the engine's serving counters
	// (and queue-depth / snapshot-version gauges) on the shared
	// registry under the label view=Name. A nil registry leaves the
	// counters private to this engine — Stats() works either way.
	Metrics *obs.Registry
	// Name labels this engine's collectors (view=Name).
	Name string
	// Pool is the shared maintenance pool this engine's quanta run
	// on. Nil uses the process-wide default pool. All engines of one
	// catalog share one pool, so total maintenance goroutines stay
	// O(pool size) however many views are attached.
	Pool *sched.Pool
}

func (o Options) withDefaults() Options {
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.Pool == nil {
		o.Pool = sched.Default()
	}
	return o
}

type opKind uint8

const (
	opTrain opKind = iota
	opAdd
	opBarrier
	// opClose is the teardown sentinel Close enqueues after flipping
	// closed under the write lock: every producer send happens under
	// the read lock with closed still false, so by the time the
	// sentinel is sent, no later op can ever enter the queue — it is
	// the guaranteed-last op, and processing it retires the source.
	opClose
)

// Token identifies one producer session for asynchronous-error
// attribution: every async op is tagged with a token, the first
// failure is recorded per token, and FlushTok(tok) collects only that
// token's error. SharedToken is the legacy engine-wide slot used by
// the untagged TrainAsync/AddAsync/Flush calls.
type Token uint64

// SharedToken is the engine-wide error slot shared by all untagged
// async ops.
const SharedToken Token = 0

// op is one queued write (or barrier). done is nil for asynchronous
// ops; otherwise it receives the op's outcome after the batch
// containing it has been applied and its snapshot published.
type op struct {
	kind  opKind
	id    int64
	label int
	text  string
	tok   Token
	done  chan error
}

// Engine is one view's task source on the shared maintenance pool
// and owns the view's published snapshot. One Engine serves one view.
type Engine struct {
	be   Backend
	opts Options

	ops        chan op
	task       *sched.Task
	workerDone chan struct{} // closed when the opClose sentinel is processed

	closeMu    sync.RWMutex // guards closed vs. sends on ops
	closed     bool
	detachOnce sync.Once

	asyncMu   sync.Mutex
	asyncErrs map[Token]error // first unreported error per session token
	tokens    atomic.Uint64   // NewToken counter (token 0 is SharedToken)

	snap  snapHolder
	stats engineCounters
}

// NewToken allocates a fresh session token for async-error
// attribution. Tokens are never reused within an engine's lifetime.
func (e *Engine) NewToken() Token { return Token(e.tokens.Add(1)) }

// Closed reports whether Close has begun: writes will return
// ErrClosed, reads keep answering from the final snapshot. Long-lived
// sessions use it to drop references to detached engines.
func (e *Engine) Closed() bool {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	return e.closed
}

// New registers an engine over be as a task source on the shared
// pool, initially parked. The initial snapshot is built synchronously
// so reads work before the first write. No goroutine is started: an
// idle engine costs only its queue.
func New(be Backend, opts Options) (*Engine, error) {
	e := &Engine{
		be:         be,
		opts:       opts.withDefaults(),
		workerDone: make(chan struct{}),
		asyncErrs:  make(map[Token]error),
	}
	e.ops = make(chan op, e.opts.QueueSize)
	e.stats.initCounters(e.opts.Metrics, e.opts.Name)
	lbl := obs.L("view", e.opts.Name)
	e.opts.Metrics.GaugeFunc("hazy_engine_queue_depth",
		"instantaneous bounded-queue occupancy", func() int64 { return int64(len(e.ops)) }, lbl...)
	e.opts.Metrics.GaugeFunc("hazy_engine_snapshot_version",
		"published snapshot version", func() int64 { return int64(e.snap.version.Load()) }, lbl...)
	s, err := be.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("engine: initial snapshot: %w", err)
	}
	e.publish(s)
	e.task = e.opts.Pool.Register(e.quantum)
	e.opts.Metrics.GaugeFunc("hazy_engine_runnable",
		"task-source scheduling state (0 parked, 1 queued, 2 running)",
		func() int64 { return int64(e.task.State()) }, lbl...)
	return e, nil
}

// enqueue places o on the queue, blocking when the queue is full,
// then wakes the task source. The send-then-wake order is the
// no-lost-work contract with the scheduler: by the time Wake runs the
// op is in the queue, so the quantum that Wake guarantees will
// observe it.
func (e *Engine) enqueue(o op) error {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	// The send may block under RLock; Close waits for the write lock,
	// and the pool keeps draining a non-empty queue (every prior send
	// issued a wake), so blocked senders always complete.
	e.ops <- o
	e.stats.enqueued.Add(1)
	e.task.Wake()
	return nil
}

func (e *Engine) enqueueWait(o op) error {
	o.done = make(chan error, 1)
	if err := e.enqueue(o); err != nil {
		return err
	}
	return <-o.done
}

// Train inserts a training example and returns once it is applied
// and visible to reads (read-your-writes). Concurrent callers'
// examples are group-applied in shared batches.
func (e *Engine) Train(id int64, label int) error {
	return e.enqueueWait(op{kind: opTrain, id: id, label: label})
}

// TrainAsync enqueues a training example and returns as soon as it is
// queued, blocking only for backpressure. A failed async op surfaces
// through the next Flush (and Stats().Errors). The op is tagged with
// SharedToken; sessions that need isolated error reporting use
// TrainAsyncTok.
func (e *Engine) TrainAsync(id int64, label int) error {
	return e.TrainAsyncTok(SharedToken, id, label)
}

// TrainAsyncTok is TrainAsync with the op tagged by a session token:
// if it fails, only FlushTok(tok) (or an engine-wide Flush/Drain/
// Close) reports the error.
func (e *Engine) TrainAsyncTok(tok Token, id int64, label int) error {
	return e.enqueue(op{kind: opTrain, id: id, label: label, tok: tok})
}

// Add inserts an entity and returns once it is applied and visible
// to reads.
func (e *Engine) Add(id int64, text string) error {
	return e.enqueueWait(op{kind: opAdd, id: id, text: text})
}

// AddAsync enqueues an entity insert and returns as soon as it is
// queued, tagged with SharedToken.
func (e *Engine) AddAsync(id int64, text string) error {
	return e.AddAsyncTok(SharedToken, id, text)
}

// AddAsyncTok is AddAsync with the op tagged by a session token.
func (e *Engine) AddAsyncTok(tok Token, id int64, text string) error {
	return e.enqueue(op{kind: opAdd, id: id, text: text, tok: tok})
}

// Flush is a barrier: it returns after every op enqueued before it
// has been applied and the covering snapshot published, so a read
// issued after Flush observes all those writes. It also reports (and
// clears) the first unreported error from any async op since the
// previous barrier — engine-wide, across every token. Sessions that
// must not collect each other's failures tag their async ops and use
// FlushTok instead.
func (e *Engine) Flush() error {
	if err := e.enqueueWait(op{kind: opBarrier}); err != nil {
		return err
	}
	return e.takeAnyAsyncErr()
}

// FlushTok is the per-session barrier: the same global ordering
// guarantee as Flush (every previously enqueued op, from any
// producer, is applied and visible), but it reports and clears only
// the error slot of the given token — one session's failed TRAINA/
// ADDA can never surface through another session's flush.
func (e *Engine) FlushTok(tok Token) error {
	if err := e.enqueueWait(op{kind: opBarrier}); err != nil {
		return err
	}
	return e.takeAsyncErr(tok)
}

// maxDrainRounds bounds Drain's chase of concurrently enqueued work.
// Each round is a full Flush barrier, so the guaranteed prefix grows
// by at least one queue's worth per round; eight rounds of a still-
// growing queue means a producer is sustaining load and Drain's
// best-effort chase should yield rather than livelock.
const maxDrainRounds = 8

// Drain flushes until the queue is observed empty, chasing ops other
// goroutines enqueue after Drain started — which a single Flush
// barrier would not cover. The chase is bounded: under sustained
// concurrent enqueue Drain stops after maxDrainRounds rather than
// livelocking, with the guarantee that every op enqueued before the
// final barrier (in particular, everything enqueued before Drain was
// called) has been applied and is visible. Callers that need a truly
// empty queue must stop their producers first — with live producers,
// "empty" is not a reachable fixpoint for any barrier.
func (e *Engine) Drain() error {
	for i := 0; i < maxDrainRounds; i++ {
		if err := e.Flush(); err != nil {
			return err
		}
		if len(e.ops) == 0 {
			return nil
		}
	}
	// Still non-empty: concede the race to the producers, but leave
	// the barrier guarantee intact for everything already queued.
	return e.Flush()
}

// Close stops accepting writes, drains everything already queued,
// publishes the final snapshot, and retires the task source — the
// pool itself keeps running for the other views. Reads keep working
// against the final snapshot. Close is idempotent; it returns the
// first unreported async error. If the backend implements Detach, it
// is called once after the drain so the wrapped view can resume
// unmanaged operation.
func (e *Engine) Close() error {
	e.closeMu.Lock()
	already := e.closed
	e.closed = true
	e.closeMu.Unlock()
	if !already {
		// Taking the write lock waited out every in-flight enqueue
		// (they send under the read lock), and closed now turns new
		// ones away, so this sentinel is the last op the queue will
		// ever carry. The send may block if the queue is full; prior
		// wakes keep the pool draining until it fits.
		e.ops <- op{kind: opClose}
		e.task.Wake()
	}
	<-e.workerDone
	e.detachOnce.Do(func() {
		if d, ok := e.be.(interface{ Detach() }); ok {
			d.Detach()
		}
	})
	return e.takeAllAsyncErrs()
}

// takeAsyncErr reports and clears the first unreported error recorded
// for tok.
func (e *Engine) takeAsyncErr(tok Token) error {
	e.asyncMu.Lock()
	defer e.asyncMu.Unlock()
	err := e.asyncErrs[tok]
	delete(e.asyncErrs, tok)
	return err
}

// takeAnyAsyncErr reports and clears one pending error from any
// token — the engine-wide collection used by Flush and Drain so that
// no failure is lost when sessions vanish without flushing.
func (e *Engine) takeAnyAsyncErr() error {
	e.asyncMu.Lock()
	defer e.asyncMu.Unlock()
	for tok, err := range e.asyncErrs {
		delete(e.asyncErrs, tok)
		return err
	}
	return nil
}

// takeAllAsyncErrs reports and clears every pending error, joined —
// Close's final sweep must not drop any token's failure.
func (e *Engine) takeAllAsyncErrs() error {
	e.asyncMu.Lock()
	defer e.asyncMu.Unlock()
	errs := make([]error, 0, len(e.asyncErrs))
	for tok, err := range e.asyncErrs {
		delete(e.asyncErrs, tok)
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

func (e *Engine) noteAsyncErr(tok Token, err error) {
	e.stats.errors.Add(1)
	e.asyncMu.Lock()
	if e.asyncErrs[tok] == nil {
		e.asyncErrs[tok] = err
	}
	e.asyncMu.Unlock()
}

// quantum is one scheduling unit on the shared pool: drain one batch,
// group-apply it, publish a fresh snapshot, acknowledge the batch's
// waiters, and report whether more work is already queued (requeue at
// the back of the run queue) or not (park). The pool never runs two
// quanta of one engine concurrently, so everything below is still
// single-threaded per view, exactly like the dedicated goroutine it
// replaces.
func (e *Engine) quantum() (more bool) {
	select {
	case first := <-e.ops:
		batch := e.fill(first)
		e.apply(batch)
		return len(e.ops) > 0
	default:
		return false
	}
}

// fill drains up to MaxBatch−1 further ops that are already queued,
// without blocking: the batch boundary is "whatever has accumulated
// while the previous batch was applied".
func (e *Engine) fill(first op) []op {
	batch := append(make([]op, 0, e.opts.MaxBatch), first)
	for len(batch) < e.opts.MaxBatch {
		select {
		case o := <-e.ops:
			batch = append(batch, o)
		default:
			return batch
		}
	}
	return batch
}

// apply group-applies one drained batch. Consecutive same-kind ops
// fold into single group calls — TRAIN runs into ApplyTrainBatch (one
// maintenance sweep per run), ADD runs into ApplyAddBatch when the
// backend supports it (a striped view scatters the run across its
// stripes in parallel) — while runs apply in arrival order, preserving
// the client-observed op order. The snapshot is published once per
// batch, before any waiter is signalled, so a synchronous writer's
// next read sees its write: however many stripes worked in parallel,
// readers observe exactly one publish barrier per batch.
func (e *Engine) apply(batch []op) {
	errs := make([]error, len(batch))
	mutated, perr := e.applyMutations(batch, errs)
	if perr != nil {
		// A maintenance panic fails the whole batch: every write not
		// already carrying its own error — including ones whose group
		// call succeeded before the panic — reports the panic, and no
		// snapshot is published for this batch (the next successful
		// one exposes whatever state survived). Sync waiters unblock
		// with the error; async producers find it at their next
		// flush. Barriers ack clean and surface the error through the
		// usual token slots, so it is reported exactly once.
		for i := range errs {
			if errs[i] == nil && batch[i].kind != opBarrier && batch[i].kind != opClose {
				errs[i] = perr
			}
		}
		mutated = false
	}

	if mutated {
		if s, err := e.be.Snapshot(); err != nil {
			e.noteAsyncErr(SharedToken, fmt.Errorf("engine: snapshot: %w", err))
		} else {
			e.publish(s)
		}
	}
	e.stats.observeBatch(len(batch))
	retired := false
	for i, o := range batch {
		if o.kind == opClose {
			retired = true
		}
		if o.done != nil {
			o.done <- errs[i]
		} else if errs[i] != nil && o.kind != opClose {
			e.noteAsyncErr(o.tok, errs[i])
		}
		e.stats.applied.Add(1)
	}
	if retired {
		close(e.workerDone)
	}
}

// applyMutations runs the batch's group calls and the group commit
// under a recover barrier: a panic out of the backend (a striped
// view's reorganization, say) must not strand the batch's sync
// waiters or kill a shared pool worker. It reports whether the view
// mutated and the recovered panic, if any.
func (e *Engine) applyMutations(batch []op, errs []error) (mutated bool, perr error) {
	defer func() {
		if r := recover(); r != nil {
			e.stats.errors.Add(1)
			perr = fmt.Errorf("engine: maintenance panic: %v", r)
		}
	}()

	var runStart int
	runKind := opBarrier
	flushRun := func(end int) {
		if runStart == end || runKind == opBarrier || runKind == opClose {
			runStart = end
			return
		}
		run := batch[runStart:end]
		switch runKind {
		case opTrain:
			ops := make([]TrainOp, 0, len(run))
			for _, o := range run {
				ops = append(ops, TrainOp{ID: o.id, Label: o.label})
			}
			for i, err := range e.be.ApplyTrainBatch(ops) {
				errs[runStart+i] = err
				if err == nil {
					mutated = true
				}
			}
			e.stats.trains.Add(uint64(len(ops)))
		case opAdd:
			if ab, ok := e.be.(AddBatcher); ok {
				ops := make([]AddOp, 0, len(run))
				for _, o := range run {
					ops = append(ops, AddOp{ID: o.id, Text: o.text})
				}
				for i, err := range ab.ApplyAddBatch(ops) {
					errs[runStart+i] = err
					if err == nil {
						mutated = true
					}
				}
			} else {
				for i, o := range run {
					errs[runStart+i] = e.be.ApplyAdd(o.id, o.text)
					if errs[runStart+i] == nil {
						mutated = true
					}
				}
			}
			e.stats.adds.Add(uint64(len(run)))
		}
		runStart = end
	}
	for i, o := range batch {
		if o.kind != runKind {
			flushRun(i)
			runKind = o.kind
		}
	}
	flushRun(len(batch))

	// Group commit: the batch's logged rows become durable together,
	// before any waiter is signalled — a synchronous writer's ack
	// implies its row survived the crash the log protects against.
	if mutated {
		if c, ok := e.be.(Committer); ok {
			if err := c.Commit(); err != nil {
				for i := range errs {
					if errs[i] == nil && batch[i].kind != opBarrier {
						errs[i] = fmt.Errorf("engine: group commit: %w", err)
					}
				}
			}
		}
	}
	return mutated, nil
}
