package engine

import (
	"hazy/internal/core"
	"hazy/internal/vector"
)

// TrainOp is one queued training example, addressed by entity id —
// the engine-side form of an INSERT into the examples table.
type TrainOp struct {
	ID    int64
	Label int // +1 or −1
}

// Backend adapts a concrete view and its backing tables to the
// engine. All Backend methods are invoked only from the engine's
// single maintenance goroutine, so implementations need no internal
// locking for the view they mutate — except Feature, which is called
// concurrently from the read path and must be safe for concurrent
// use.
type Backend interface {
	// ApplyTrainBatch durably inserts the examples and folds them
	// into the model with one group-applied maintenance step (one
	// reorganize-or-sweep decision per batch, not per example). It
	// returns one error slot per op, positionally: a non-nil element
	// rejects that op (unknown entity, duplicate example, bad label)
	// without failing the rest of the batch.
	ApplyTrainBatch(ops []TrainOp) []error
	// ApplyAdd durably inserts a new entity and classifies it under
	// the current model (type-1 dynamic data).
	ApplyAdd(id int64, text string) error
	// Snapshot exports an immutable read snapshot of the view.
	Snapshot() (*core.Snapshot, error)
	// Feature featurizes free text for ad-hoc classification against
	// a snapshot's model. Must be safe for concurrent use.
	Feature(text string) vector.Vector
}

// AddOp is one queued entity insert — the engine-side form of an
// INSERT into the entities table.
type AddOp struct {
	ID   int64
	Text string
}

// AddBatcher is implemented by backends that can group-apply a run of
// entity inserts — a partition-striped view scatters the batch to its
// stripes and applies each stripe's share in parallel. Like
// ApplyTrainBatch it returns one error slot per op, positionally.
// Backends without it get one ApplyAdd call per op.
type AddBatcher interface {
	ApplyAddBatch(ops []AddOp) []error
}

// Committer is implemented by backends whose durable writes ride a
// write-ahead log with deferred commits: the engine calls Commit once
// after applying each batch — before acknowledging any waiter — so a
// whole batch pays one fsync. A Commit error fails every op in the
// batch that had not already failed.
type Committer interface {
	Commit() error
}
