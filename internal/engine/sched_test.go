package engine

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hazy/internal/sched"
)

// TestDrainTerminatesUnderSustainedEnqueue is the regression test for
// the unbounded-Drain livelock: producers hammer the queue for the
// whole duration of the call, so the old "flush until empty" loop
// would chase them forever. Bounded Drain must return, and must still
// cover everything enqueued before it was called.
func TestDrainTerminatesUnderSustainedEnqueue(t *testing.T) {
	e := start(t, newMemBackend(t), Options{QueueSize: 8, MaxBatch: 4})

	// The prefix Drain must guarantee.
	for i := 0; i < 20; i++ {
		if err := e.TrainAsync(1, 1); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Sustained enqueue; errors after close are fine.
				_ = e.TrainAsync(1, 1)
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- e.Drain() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Drain livelocked under sustained concurrent enqueue")
	}
	close(stop)
	wg.Wait()

	// The pre-Drain prefix is applied and visible.
	if st := e.Stats(); st.Trains < 20 {
		t.Fatalf("Trains = %d, want >= 20 (pre-Drain prefix applied)", st.Trains)
	}
	// With producers stopped, a final Drain empties the queue.
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Pending != 0 {
		t.Fatalf("Pending = %d after quiescent Drain, want 0", st.Pending)
	}
}

// TestColdViewFlushBoundedByHotFlood: one flooded hot view and one
// cold view share a single-worker pool. Round-robin quanta mean the
// cold view's Flush barrier waits behind at most one hot batch per
// round, not behind the hot view's whole backlog — the admission-
// control contract of the shared scheduler.
func TestColdViewFlushBoundedByHotFlood(t *testing.T) {
	pool := sched.NewPool(1, nil)
	defer pool.Close()

	hot := start(t, newMemBackend(t), Options{Pool: pool, Name: "hot"})
	cold := start(t, newMemBackend(t), Options{Pool: pool, Name: "cold"})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = hot.TrainAsync(1, 1)
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	// Let the flood establish a standing backlog.
	time.Sleep(20 * time.Millisecond)

	for i := 0; i < 10; i++ {
		begin := time.Now()
		if err := cold.FlushTok(cold.NewToken()); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(begin); d > 10*time.Second {
			t.Fatalf("cold-view flush took %v under hot flood — starved", d)
		}
	}
}

// panicBackend panics inside ApplyTrainBatch while armed; otherwise
// it delegates to the real memBackend.
type panicBackend struct {
	*memBackend
	armed atomic.Bool
}

func (b *panicBackend) ApplyTrainBatch(ops []TrainOp) []error {
	if b.armed.Load() {
		panic("injected maintenance panic")
	}
	return b.memBackend.ApplyTrainBatch(ops)
}

// TestMaintenancePanicFailsBatchNotProcess: a panic out of the
// backend during a batch must surface as that batch's error — sync
// waiters unblock, async producers see it at the next flush — and the
// engine (and the shared pool worker under it) must keep serving
// later batches.
func TestMaintenancePanicFailsBatchNotProcess(t *testing.T) {
	be := &panicBackend{memBackend: newMemBackend(t)}
	e := start(t, be, Options{})

	be.armed.Store(true)
	err := e.Train(1, 1)
	if err == nil || !strings.Contains(err.Error(), "maintenance panic") {
		t.Fatalf("sync Train under panic = %v, want maintenance panic error", err)
	}

	tok := e.NewToken()
	if err := e.TrainAsyncTok(tok, 2, -1); err != nil {
		t.Fatal(err)
	}
	if err := e.FlushTok(tok); err == nil || !strings.Contains(err.Error(), "maintenance panic") {
		t.Fatalf("FlushTok after async panic = %v, want maintenance panic error", err)
	}

	// Disarmed, the same engine keeps working: the panic killed one
	// batch, not the view or a pool worker.
	be.armed.Store(false)
	for _, tr := range []TrainOp{{1, 1}, {2, -1}, {3, 1}, {4, -1}} {
		if err := e.Train(tr.ID, tr.Label); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := e.Label(1); err != nil || got != 1 {
		t.Fatalf("Label(1) after recovery = %d, %v", got, err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close after panic recovery: %v", err)
	}
}

// TestManyEnginesShareOnePool: hundreds of engines on one small pool
// all make progress and park; this is the O(pool) goroutine story at
// the unit level (the root-level benchmark asserts the goroutine
// count).
func TestManyEnginesShareOnePool(t *testing.T) {
	pool := sched.NewPool(2, nil)
	defer pool.Close()

	const n = 100
	engines := make([]*Engine, n)
	for i := range engines {
		engines[i] = start(t, newMemBackend(t), Options{Pool: pool, QueueSize: 16})
	}
	var wg sync.WaitGroup
	for _, e := range engines {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if err := e.TrainAsync(int64(j%4+1), 1); err != nil {
					t.Error(err)
					return
				}
			}
			if err := e.Flush(); err != nil {
				t.Error(err)
			}
		}(e)
	}
	wg.Wait()
	for i, e := range engines {
		if st := e.Stats(); st.Trains != 10 {
			t.Fatalf("engine %d Trains = %d, want 10", i, st.Trains)
		}
	}
}
