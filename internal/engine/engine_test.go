package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hazy/internal/core"
	"hazy/internal/learn"
	"hazy/internal/vector"
)

// memBackend is a test backend over a real main-memory view with a
// two-dimensional feature space: "pos" entities live on axis 0, "neg"
// entities on axis 1, so a handful of examples separates them.
type memBackend struct {
	view  *core.MemView
	feats map[int64]vector.Vector

	gate         chan struct{} // when non-nil, ApplyAdd blocks on it
	gateEntered  chan struct{}
	trainBatches [][]TrainOp
}

func featFor(text string) (vector.Vector, error) {
	switch text {
	case "pos":
		return vector.NewDense([]float64{1, 0}), nil
	case "neg":
		return vector.NewDense([]float64{0, 1}), nil
	default:
		return vector.Vector{}, fmt.Errorf("memBackend: unknown text %q", text)
	}
}

func newMemBackend(t *testing.T) *memBackend {
	t.Helper()
	b := &memBackend{feats: map[int64]vector.Vector{}}
	var entities []core.Entity
	for id := int64(1); id <= 4; id++ {
		text := "pos"
		if id%2 == 0 {
			text = "neg"
		}
		f, _ := featFor(text)
		b.feats[id] = f
		entities = append(entities, core.Entity{ID: id, F: f})
	}
	b.view = core.NewMemView(entities, core.HazyStrategy, core.Options{})
	return b
}

func (b *memBackend) ApplyTrainBatch(ops []TrainOp) []error {
	b.trainBatches = append(b.trainBatches, ops)
	errs := make([]error, len(ops))
	var exs []learn.Example
	for i, op := range ops {
		f, ok := b.feats[op.ID]
		if !ok {
			errs[i] = fmt.Errorf("memBackend: no entity %d", op.ID)
			continue
		}
		exs = append(exs, learn.Example{ID: op.ID, F: f, Label: op.Label})
	}
	if err := core.ApplyBatch(b.view, exs); err != nil {
		for i := range errs {
			if errs[i] == nil {
				errs[i] = err
			}
		}
	}
	return errs
}

func (b *memBackend) ApplyAdd(id int64, text string) error {
	if b.gate != nil {
		b.gateEntered <- struct{}{}
		<-b.gate
	}
	f, err := featFor(text)
	if err != nil {
		return err
	}
	b.feats[id] = f
	return b.view.Insert(core.Entity{ID: id, F: f})
}

func (b *memBackend) Snapshot() (*core.Snapshot, error) { return b.view.Snapshot() }

func (b *memBackend) Feature(text string) vector.Vector {
	f, _ := featFor(text)
	return f
}

func start(t *testing.T, be Backend, opts Options) *Engine {
	t.Helper()
	e, err := New(be, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestReadYourWritesSync(t *testing.T) {
	e := start(t, newMemBackend(t), Options{})
	for _, tr := range []TrainOp{{1, 1}, {2, -1}, {3, 1}, {4, -1}} {
		if err := e.Train(tr.ID, tr.Label); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := e.Label(1); err != nil || got != 1 {
		t.Fatalf("Label(1) = %d, %v", got, err)
	}
	if got, err := e.Label(2); err != nil || got != -1 {
		t.Fatalf("Label(2) = %d, %v", got, err)
	}
	if n, _ := e.CountMembers(); n != 2 {
		t.Fatalf("CountMembers = %d, want 2", n)
	}
	if got, err := e.Classify("pos"); err != nil || got != 1 {
		t.Fatalf("Classify(pos) = %d, %v", got, err)
	}
	// A synchronous Add is immediately readable too.
	if err := e.Add(9, "pos"); err != nil {
		t.Fatal(err)
	}
	if got, err := e.Label(9); err != nil || got != 1 {
		t.Fatalf("Label(9) = %d, %v", got, err)
	}
}

func TestAsyncVisibleAfterFlush(t *testing.T) {
	e := start(t, newMemBackend(t), Options{})
	if err := e.TrainAsync(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.TrainAsync(2, -1); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, err := e.Label(1); err != nil || got != 1 {
		t.Fatalf("Label(1) after flush = %d, %v", got, err)
	}
	if st := e.ViewStats(); st.Updates != 2 {
		t.Fatalf("view updates = %d, want 2", st.Updates)
	}
}

// TestGroupApply blocks the maintenance goroutine on a gated ADD,
// queues many TRAINs behind it, and asserts they are drained as one
// batch applied with a single group maintenance step.
func TestGroupApply(t *testing.T) {
	be := newMemBackend(t)
	be.gate = make(chan struct{})
	be.gateEntered = make(chan struct{}, 1)
	e := start(t, be, Options{QueueSize: 128, MaxBatch: 128})

	if err := e.AddAsync(10, "pos"); err != nil {
		t.Fatal(err)
	}
	<-be.gateEntered // maintenance goroutine is now blocked mid-batch
	const n = 40
	for i := 0; i < n; i++ {
		id := int64(1 + i%4)
		label := 1
		if id%2 == 0 {
			label = -1
		}
		if err := e.TrainAsync(id, label); err != nil {
			t.Fatal(err)
		}
	}
	close(be.gate)

	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(be.trainBatches) != 1 {
		t.Fatalf("train batches = %d, want 1 (group apply)", len(be.trainBatches))
	}
	if got := len(be.trainBatches[0]); got != n {
		t.Fatalf("batch size = %d, want %d", got, n)
	}
	st := e.Stats()
	if st.Trains != n || st.Adds != 1 {
		t.Fatalf("stats trains=%d adds=%d", st.Trains, st.Adds)
	}
	if st.MaxBatch < n {
		t.Fatalf("maxbatch = %d, want ≥ %d", st.MaxBatch, n)
	}
	if !strings.Contains(st.String(), "trains=40") {
		t.Fatalf("stats string %q", st.String())
	}
}

// TestBackpressure fills the bounded queue behind a gated op and
// verifies the next enqueue blocks until the queue drains.
func TestBackpressure(t *testing.T) {
	be := newMemBackend(t)
	be.gate = make(chan struct{})
	be.gateEntered = make(chan struct{}, 1)
	e := start(t, be, Options{QueueSize: 2, MaxBatch: 4})

	if err := e.AddAsync(10, "pos"); err != nil {
		t.Fatal(err)
	}
	<-be.gateEntered
	// Queue capacity is 2: fill it while the worker is blocked.
	if err := e.TrainAsync(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.TrainAsync(2, -1); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- e.TrainAsync(3, 1) }()
	select {
	case err := <-blocked:
		t.Fatalf("enqueue on a full queue did not block (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(be.gate)

	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Trains != 3 || st.Pending != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

func TestAsyncErrorSurfacesOnFlush(t *testing.T) {
	e := start(t, newMemBackend(t), Options{})
	if err := e.TrainAsync(777, 1); err != nil { // unknown entity
		t.Fatal(err)
	}
	if err := e.Flush(); err == nil {
		t.Fatal("Flush reported no error for a failed async op")
	}
	// The error is cleared once reported.
	if err := e.Flush(); err != nil {
		t.Fatalf("second Flush = %v", err)
	}
	if st := e.Stats(); st.Errors != 1 {
		t.Fatalf("errors = %d, want 1", st.Errors)
	}
}

// TestPerTokenErrorAttribution: async failures are reported only to
// the token that enqueued them — one session's FlushTok never
// collects another's error — while the engine-wide Flush/Close still
// sweep up whatever no session claimed.
func TestPerTokenErrorAttribution(t *testing.T) {
	e := start(t, newMemBackend(t), Options{})
	tok1, tok2 := e.NewToken(), e.NewToken()
	if tok1 == tok2 || tok1 == SharedToken {
		t.Fatalf("tokens not distinct: %d %d", tok1, tok2)
	}
	if err := e.TrainAsyncTok(tok1, 777, 1); err != nil { // unknown entity
		t.Fatal(err)
	}
	if err := e.TrainAsyncTok(tok2, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Session 2 flushes first: the barrier applies session 1's doomed
	// op too, but must not report its failure.
	if err := e.FlushTok(tok2); err != nil {
		t.Fatalf("FlushTok(tok2) collected a foreign error: %v", err)
	}
	if err := e.FlushTok(tok1); err == nil {
		t.Fatal("FlushTok(tok1) lost its own error")
	}
	if err := e.FlushTok(tok1); err != nil {
		t.Fatalf("error reported twice: %v", err)
	}
	// An unclaimed failure (its session never flushes) still surfaces
	// at the engine-wide barrier so it cannot be lost.
	if err := e.AddAsyncTok(tok2, 99, "bogus-text"); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err == nil {
		t.Fatal("engine-wide Flush missed an unclaimed async error")
	}
	if st := e.Stats(); st.Errors != 2 {
		t.Fatalf("errors = %d, want 2", st.Errors)
	}
}

func TestSyncErrorsAreImmediate(t *testing.T) {
	e := start(t, newMemBackend(t), Options{})
	if err := e.Train(777, 1); err == nil {
		t.Fatal("Train of unknown entity succeeded")
	}
	if err := e.Add(1, "pos"); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	// A failed op in a batch does not poison its neighbours.
	if err := e.Train(1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestOrderPreservedAcrossKinds(t *testing.T) {
	e := start(t, newMemBackend(t), Options{})
	// The TRAIN references an entity whose ADD is queued just before
	// it; arrival order must be preserved across op kinds.
	if err := e.AddAsync(20, "neg"); err != nil {
		t.Fatal(err)
	}
	if err := e.TrainAsync(20, -1); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, err := e.Label(20); err != nil || got != -1 {
		t.Fatalf("Label(20) = %d, %v", got, err)
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	e := start(t, newMemBackend(t), Options{})
	for i := 0; i < 8; i++ {
		id := int64(1 + i%4)
		label := 1
		if id%2 == 0 {
			label = -1
		}
		if err := e.TrainAsync(id, label); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Reads still work against the final snapshot and saw the drain.
	if st := e.ViewStats(); st.Updates != 8 {
		t.Fatalf("updates after close = %d, want 8", st.Updates)
	}
	if err := e.Train(1, 1); err != ErrClosed {
		t.Fatalf("Train after close = %v, want ErrClosed", err)
	}
	if err := e.Flush(); err != ErrClosed {
		t.Fatalf("Flush after close = %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

// TestConcurrentMix hammers the engine from many goroutines mixing
// sync writes, async writes, flushes, and snapshot reads; run under
// -race this is the engine's data-race certificate.
func TestConcurrentMix(t *testing.T) {
	e := start(t, newMemBackend(t), Options{QueueSize: 64, MaxBatch: 32})
	const goroutines = 8
	const perG = 48
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := int64(1 + (g+i)%4)
				label := 1
				if id%2 == 0 {
					label = -1
				}
				var err error
				switch i % 4 {
				case 0:
					err = e.Train(id, label)
				case 1:
					err = e.TrainAsync(id, label)
				case 2:
					_, err = e.Label(id)
				default:
					_, err = e.CountMembers()
					e.Snapshot().Members()
				}
				if err != nil {
					errc <- fmt.Errorf("g%d op%d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	want := uint64(goroutines * perG / 2) // ops 0 and 1 of every four are writes
	if st.Trains != want {
		t.Fatalf("trains = %d, want %d", st.Trains, want)
	}
	if st.Batches == 0 || st.SnapshotVersion == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestClassifyUntrainedView: a freshly attached, never-trained view
// must answer Classify with an explicit untrained error — not a
// zero-model "+1", and never a panic inside a serving goroutine —
// while Label keeps answering from the snapshot.
func TestClassifyUntrainedView(t *testing.T) {
	e := start(t, newMemBackend(t), Options{})
	if _, err := e.Classify("pos"); err != ErrUntrained {
		t.Fatalf("Classify on untrained view: err = %v, want ErrUntrained", err)
	}
	if _, err := e.Label(1); err != nil {
		t.Fatalf("Label on untrained view: %v", err)
	}
	// One training example and the same call serves.
	if err := e.Train(1, 1); err != nil {
		t.Fatal(err)
	}
	if got, err := e.Classify("pos"); err != nil || got != 1 {
		t.Fatalf("Classify after train = %d, %v", got, err)
	}
}

// batchAddBackend implements AddBatcher over memBackend, recording
// the ADD runs the engine hands it.
type batchAddBackend struct {
	*memBackend
	addGate        chan struct{}
	addGateEntered chan struct{}
	addBatches     [][]AddOp
}

func (b *batchAddBackend) ApplyAddBatch(ops []AddOp) []error {
	if b.addGate != nil {
		b.addGateEntered <- struct{}{}
		<-b.addGate
	}
	b.addBatches = append(b.addBatches, append([]AddOp(nil), ops...))
	errs := make([]error, len(ops))
	for i, op := range ops {
		errs[i] = b.memBackend.ApplyAdd(op.ID, op.Text)
	}
	return errs
}

// TestAddBatchFolding: consecutive queued ADDs reach an AddBatcher
// backend as one group call (the striped scatter path), with
// positional errors still attributed per op.
func TestAddBatchFolding(t *testing.T) {
	be := &batchAddBackend{
		memBackend:     newMemBackend(t),
		addGate:        make(chan struct{}),
		addGateEntered: make(chan struct{}),
	}
	e := start(t, be, Options{})
	// Occupy the worker with a first add, queue five more (one bad)
	// behind it, then release: the five must arrive as one batch.
	if err := e.AddAsync(10, "pos"); err != nil {
		t.Fatal(err)
	}
	<-be.addGateEntered
	for id := int64(11); id <= 14; id++ {
		if err := e.AddAsync(id, "pos"); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AddAsync(15, "bogus text"); err != nil {
		t.Fatal(err)
	}
	be.addGate <- struct{}{}
	<-be.addGateEntered
	be.addGate <- struct{}{}
	be.addGate = nil

	if err := e.Flush(); err == nil || !strings.Contains(err.Error(), "unknown text") {
		t.Fatalf("Flush should surface the bad add, got %v", err)
	}
	if len(be.addBatches) != 2 || len(be.addBatches[0]) != 1 || len(be.addBatches[1]) != 5 {
		sizes := make([]int, len(be.addBatches))
		for i, b := range be.addBatches {
			sizes[i] = len(b)
		}
		t.Fatalf("add batches = %v, want [1 5]", sizes)
	}
	// The good adds all landed and are readable.
	for id := int64(10); id <= 14; id++ {
		if _, err := e.Label(id); err != nil {
			t.Fatalf("Label(%d): %v", id, err)
		}
	}
	if _, err := e.Label(15); err == nil {
		t.Fatal("the failed add must not be visible")
	}
}
