package engine

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

// histBuckets is the number of power-of-two batch-size buckets:
// 1, 2–3, 4–7, …, ≥128.
const histBuckets = 8

// engineCounters are the engine's internal atomics.
type engineCounters struct {
	enqueued atomic.Uint64
	applied  atomic.Uint64
	trains   atomic.Uint64
	adds     atomic.Uint64
	batches  atomic.Uint64
	maxBatch atomic.Uint64
	errors   atomic.Uint64
	hist     [histBuckets]atomic.Uint64
}

func (c *engineCounters) observeBatch(n int) {
	c.batches.Add(1)
	for {
		cur := c.maxBatch.Load()
		if uint64(n) <= cur || c.maxBatch.CompareAndSwap(cur, uint64(n)) {
			break
		}
	}
	b := bits.Len(uint(n)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	c.hist[b].Add(1)
}

// Stats is a point-in-time copy of the engine's serving counters,
// surfaced through the server's STATS command.
type Stats struct {
	// Enqueued and Applied count ops accepted and ops completed
	// (including barriers); Pending is their difference — ops queued
	// or mid-batch.
	Enqueued, Applied, Pending uint64
	// QueueDepth is the instantaneous bounded-queue occupancy.
	QueueDepth int
	// Trains and Adds count applied write ops by kind.
	Trains, Adds uint64
	// Batches is the number of group-applied batches; MaxBatch the
	// largest one drained.
	Batches, MaxBatch uint64
	// Errors counts failed asynchronous ops.
	Errors uint64
	// BatchHist is a power-of-two histogram of drained batch sizes:
	// bucket i counts batches of size [2^i, 2^(i+1)), the last bucket
	// everything ≥ 128.
	BatchHist [histBuckets]uint64
	// SnapshotVersion increments at every published snapshot.
	SnapshotVersion uint64
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Enqueued:        e.stats.enqueued.Load(),
		Applied:         e.stats.applied.Load(),
		QueueDepth:      len(e.ops),
		Trains:          e.stats.trains.Load(),
		Adds:            e.stats.adds.Load(),
		Batches:         e.stats.batches.Load(),
		MaxBatch:        e.stats.maxBatch.Load(),
		Errors:          e.stats.errors.Load(),
		SnapshotVersion: e.snap.version.Load(),
	}
	if s.Enqueued > s.Applied {
		s.Pending = s.Enqueued - s.Applied
	}
	for i := range s.BatchHist {
		s.BatchHist[i] = e.stats.hist[i].Load()
	}
	return s
}

// String renders the counters as the key=value tail of a STATS line.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queued=%d pending=%d applied=%d trains=%d adds=%d batches=%d maxbatch=%d errors=%d snapver=%d hist=",
		s.QueueDepth, s.Pending, s.Applied, s.Trains, s.Adds, s.Batches, s.MaxBatch, s.Errors, s.SnapshotVersion)
	for i, n := range s.BatchHist {
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	return b.String()
}
