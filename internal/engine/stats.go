package engine

import (
	"fmt"
	"strings"

	"hazy/internal/obs"
)

// histBuckets is the number of power-of-two batch-size buckets:
// 1, 2–3, 4–7, …, ≥128.
const histBuckets = 8

// engineCounters are the engine's serving counters, held as obs
// collectors so the same atomics back both the STATS wire line and
// the shared metrics registry. The hot-path cost is unchanged from
// the original hand-rolled atomics: one atomic add per touch.
type engineCounters struct {
	enqueued *obs.Counter
	applied  *obs.Counter
	trains   *obs.Counter
	adds     *obs.Counter
	batches  *obs.Counter
	maxBatch *obs.Gauge
	errors   *obs.Counter
	hist     *obs.Histogram
}

// initCounters registers the engine's collectors on reg (nil: they
// stay private and unregistered) labeled view=name. Registration
// replaces any collectors from a previously attached engine, so the
// registry — and the STATS line — always reads the live engine's
// counters, fresh from attach.
func (c *engineCounters) initCounters(reg *obs.Registry, name string) {
	lbl := obs.L("view", name)
	c.enqueued = reg.Counter("hazy_engine_ops_enqueued_total", "update ops accepted onto the engine queue", lbl...)
	c.applied = reg.Counter("hazy_engine_ops_applied_total", "update ops completed (including barriers)", lbl...)
	c.trains = reg.Counter("hazy_engine_trains_total", "applied example (train) ops", lbl...)
	c.adds = reg.Counter("hazy_engine_adds_total", "applied entity (add) ops", lbl...)
	c.batches = reg.Counter("hazy_engine_batches_total", "group-applied batches drained", lbl...)
	c.maxBatch = reg.Gauge("hazy_engine_batch_max", "largest batch drained so far", lbl...)
	c.errors = reg.Counter("hazy_engine_errors_total", "failed asynchronous ops", lbl...)
	c.hist = reg.Histogram("hazy_engine_batch_size", "power-of-two histogram of drained batch sizes", histBuckets, lbl...)
}

func (c *engineCounters) observeBatch(n int) {
	c.batches.Inc()
	c.maxBatch.Max(int64(n))
	c.hist.Observe(uint64(n))
}

// Stats is a point-in-time copy of the engine's serving counters,
// surfaced through the server's STATS command.
type Stats struct {
	// Enqueued and Applied count ops accepted and ops completed
	// (including barriers); Pending is their difference — ops queued
	// or mid-batch.
	Enqueued, Applied, Pending uint64
	// QueueDepth is the instantaneous bounded-queue occupancy.
	QueueDepth int
	// Trains and Adds count applied write ops by kind.
	Trains, Adds uint64
	// Batches is the number of group-applied batches; MaxBatch the
	// largest one drained.
	Batches, MaxBatch uint64
	// Errors counts failed asynchronous ops.
	Errors uint64
	// BatchHist is a power-of-two histogram of drained batch sizes:
	// bucket i counts batches of size [2^i, 2^(i+1)), the last bucket
	// everything ≥ 128.
	BatchHist [histBuckets]uint64
	// SnapshotVersion increments at every published snapshot.
	SnapshotVersion uint64
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Enqueued:        e.stats.enqueued.Load(),
		Applied:         e.stats.applied.Load(),
		QueueDepth:      len(e.ops),
		Trains:          e.stats.trains.Load(),
		Adds:            e.stats.adds.Load(),
		Batches:         e.stats.batches.Load(),
		MaxBatch:        uint64(e.stats.maxBatch.Load()),
		Errors:          e.stats.errors.Load(),
		SnapshotVersion: e.snap.version.Load(),
	}
	if s.Enqueued > s.Applied {
		s.Pending = s.Enqueued - s.Applied
	}
	for i := range s.BatchHist {
		s.BatchHist[i] = e.stats.hist.Bucket(i)
	}
	return s
}

// String renders the counters as the key=value tail of a STATS line.
//
// The key order is a stable, documented contract (clients parse it):
//
//	queued pending applied trains adds batches maxbatch errors snapver hist
//
// with hist a '/'-joined list of the histBuckets power-of-two batch
// size buckets. Keys are only ever appended, never reordered or
// removed; the exact bytes are pinned by TestStatsLineStableOrder in
// internal/server.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queued=%d pending=%d applied=%d trains=%d adds=%d batches=%d maxbatch=%d errors=%d snapver=%d hist=",
		s.QueueDepth, s.Pending, s.Applied, s.Trains, s.Adds, s.Batches, s.MaxBatch, s.Errors, s.SnapshotVersion)
	for i, n := range s.BatchHist {
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	return b.String()
}
