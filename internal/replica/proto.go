// Package replica implements WAL log shipping: a primary-side
// Shipper that streams committed write-ahead-log records (plus a
// catalog checkpoint image for bootstrap) to any number of replicas
// over a length-framed TCP protocol, and a replica-side Applier that
// tails the stream and feeds every record through the relation
// layer's idempotent apply path.
//
// The conversation is simple and one-directional after the handshake:
//
//	replica → primary   HELLO {pos | null}
//	primary → replica   [SNAPBEGIN, SNAPFILE*, SNAPEND {pos}]   (image, when pos is null or pruned)
//	primary → replica   (HEARTBEAT | RECORD)*                   (endless tail)
//
// Every RECORD carries the primary position one past itself — the
// exact position to resume from once it is applied — so reconnection
// is a new HELLO with the last applied cursor and the stream continues
// without loss or duplication.
package replica

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"hazy/internal/wal"
)

// Message types.
const (
	msgHello     = byte(1) // replica → primary: JSON hello
	msgSnapBegin = byte(2) // primary → replica: checkpoint image follows
	msgSnapFile  = byte(3) // one image file: [2B name len][name][data]
	msgSnapEnd   = byte(4) // JSON {pos}: image complete, stream resumes at pos
	msgRecord    = byte(5) // [4B seg][8B off][payload]; seg/off = resume position
	msgHeartbeat = byte(6) // JSON heartbeat: primary tip + clock + segment size
	msgErr       = byte(7) // UTF-8 error text; the connection is dead after it
)

// maxMsg caps a frame: segments default to 4 MiB, and image files are
// bounded by table size — 1 GiB is far beyond anything sane and small
// enough to reject corrupt length prefixes before allocating.
const maxMsg = 1 << 30

// hello is the replica's opening message. A nil Pos requests a full
// checkpoint image; otherwise the primary resumes the stream at Pos
// (or falls back to an image if Pos was pruned).
type hello struct {
	Pos *wal.Pos `json:"pos"`
}

// snapEnd closes an image: the replica must resume the stream at Pos.
type snapEnd struct {
	Pos wal.Pos `json:"pos"`
}

// heartbeat advertises the primary's committed tip so the replica can
// measure lag even when no records flow.
type heartbeat struct {
	Pos      wal.Pos `json:"pos"`       // committed end of the primary's log
	Nanos    int64   `json:"nanos"`     // primary wall clock at send time
	SegBytes int64   `json:"seg_bytes"` // primary segment size (byte-lag estimates)
}

// writeMsg frames and writes one message: [1B type][4B len LE][payload].
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	hdr := [5]byte{typ}
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeJSON frames a JSON-bodied message.
func writeJSON(w io.Writer, typ byte, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeMsg(w, typ, data)
}

// readMsg reads one framed message.
func readMsg(r *bufio.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxMsg {
		return 0, nil, fmt.Errorf("replica: %d-byte message exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// encodeRecord frames a shipped WAL record with its resume position.
func encodeRecord(resume wal.Pos, payload []byte) []byte {
	buf := make([]byte, 12+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], resume.Seg)
	binary.LittleEndian.PutUint64(buf[4:12], uint64(resume.Off))
	copy(buf[12:], payload)
	return buf
}

func decodeRecord(body []byte) (wal.Pos, []byte, error) {
	if len(body) < 12 {
		return wal.Pos{}, nil, fmt.Errorf("replica: record frame of %d bytes", len(body))
	}
	pos := wal.Pos{
		Seg: binary.LittleEndian.Uint32(body[0:4]),
		Off: int64(binary.LittleEndian.Uint64(body[4:12])),
	}
	return pos, body[12:], nil
}

// encodeSnapFile frames one image file: [2B name len][name][data].
func encodeSnapFile(name string, data []byte) []byte {
	buf := make([]byte, 2+len(name)+len(data))
	binary.LittleEndian.PutUint16(buf[0:2], uint16(len(name)))
	copy(buf[2:], name)
	copy(buf[2+len(name):], data)
	return buf
}

func decodeSnapFile(body []byte) (string, []byte, error) {
	if len(body) < 2 {
		return "", nil, fmt.Errorf("replica: image file frame of %d bytes", len(body))
	}
	n := int(binary.LittleEndian.Uint16(body[0:2]))
	if len(body) < 2+n {
		return "", nil, fmt.Errorf("replica: image file name of %d bytes overruns frame", n)
	}
	return string(body[2 : 2+n]), body[2+n:], nil
}
