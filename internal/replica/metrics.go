package replica

import "hazy/internal/obs"

// Metrics holds both sides' replication collectors on one struct: the
// ship_* collectors move on a primary, the apply/lag collectors on a
// replica, and a promoted replica that starts shipping moves both.
// They are registered unconditionally at database open so the metric
// names surface (as zeros) on every deployment — SHOW STATS FOR
// replica pins the set.
type Metrics struct {
	ApplyBatches *obs.Counter // committed apply batches
	ApplyRecords *obs.Counter // shipped records applied
	Connected    *obs.Gauge   // 1 while the applier holds a live connection
	LagBytes     *obs.Gauge   // approximate bytes behind the primary tip
	LagRecords   *obs.Gauge   // records applied but not yet locally committed
	LagSeconds   *obs.Gauge   // seconds behind the newest advertised tip
	Publishes    *obs.Counter // view snapshot republications after batches
	Reconnects   *obs.Counter // connection attempts after the first session
	ShipConns    *obs.Gauge   // live replica connections on the primary
	ShipRecords  *obs.Counter // records streamed out to replicas
}

// NewMetrics registers the replication collectors on reg (nil-safe:
// the collectors then stay private).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		ApplyBatches: reg.Counter("hazy_replica_apply_batches_total",
			"shipped-record batches committed and published by the applier"),
		ApplyRecords: reg.Counter("hazy_replica_apply_records_total",
			"shipped WAL records applied on this replica"),
		Connected: reg.Gauge("hazy_replica_connected",
			"1 while the applier holds a live connection to its primary"),
		LagBytes: reg.Gauge("hazy_replica_lag_bytes",
			"approximate WAL bytes between the applied position and the primary tip"),
		LagRecords: reg.Gauge("hazy_replica_lag_records",
			"records applied but not yet covered by a local commit"),
		LagSeconds: reg.Gauge("hazy_replica_lag_seconds",
			"seconds between the primary's newest advertised tip and catching up to it"),
		Publishes: reg.Counter("hazy_replica_publishes_total",
			"view snapshot republications after applied batches"),
		Reconnects: reg.Counter("hazy_replica_reconnects_total",
			"applier connection attempts after the first established session"),
		ShipConns: reg.Gauge("hazy_replica_ship_connections",
			"replica connections this primary is currently streaming to"),
		ShipRecords: reg.Counter("hazy_replica_ship_records_total",
			"WAL records streamed out to replicas"),
	}
}
