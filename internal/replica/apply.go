package replica

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"hazy/internal/wal"
)

// Target is what the applier needs from the database it applies into.
// Both methods are called from the applier's single goroutine, in
// stream order.
type Target interface {
	// Apply applies one shipped record; resume is the primary position
	// one past it (the cursor once it is applied).
	Apply(resume wal.Pos, payload []byte) error
	// Commit makes the records applied since the previous Commit
	// locally durable and republishes the serving snapshots.
	Commit() error
}

// Options configures an Applier.
type Options struct {
	// Addr is the primary's shipping address.
	Addr string
	// Resume is the position to resume the stream from (from the
	// replica's local state; a zero position requests a full image,
	// which only Bootstrap should do).
	Resume wal.Pos
	// Metrics receives the apply/lag/reconnect observations (nil: a
	// private unregistered set).
	Metrics *Metrics
	// Logf, when set, receives connection-lifecycle lines.
	Logf func(format string, args ...any)
}

// batchRecords caps how many records apply between commit barriers
// when the stream never goes idle; an idle stream commits on the next
// heartbeat, so a caught-up replica publishes within a heartbeat.
const batchRecords = 256

// dialTimeout bounds one connection attempt.
const dialTimeout = 5 * time.Second

// Backoff bounds for reconnection attempts.
const (
	backoffMin = 100 * time.Millisecond
	backoffMax = 5 * time.Second
)

// ErrPruned is the terminal applier error for a resume position the
// primary has checkpointed away: the replica fell too far behind and
// must be re-seeded from a fresh image (wipe the directory and boot
// again). Continuing would skip records, so the applier refuses.
var ErrPruned = errors.New("replica: resume position pruned on primary; re-seed this replica from a fresh directory")

// Applier maintains the replica side of the stream on its own
// goroutine: dial (with capped exponential backoff), hello with the
// resume cursor, then apply records and commit in batches, forever —
// until Stop, or a terminal error (a failed apply, or a pruned resume
// position).
type Applier struct {
	opts   Options
	target Target
	m      *Metrics

	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	conn    net.Conn // live connection, for Disconnect
	pos     wal.Pos  // resume cursor (last applied)
	err     error    // terminal error, once set
	pending int64    // records applied since the last commit
	tip     heartbeat
	stopped bool
}

// StartApplier spawns the applier. Stop it with Stop; a terminal
// error parks the applier (the database keeps serving its last
// applied state) and surfaces in Err and Stop.
func StartApplier(target Target, opts Options) *Applier {
	if opts.Metrics == nil {
		opts.Metrics = NewMetrics(nil)
	}
	a := &Applier{
		opts:   opts,
		target: target,
		m:      opts.Metrics,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	a.pos = opts.Resume
	go a.run()
	return a
}

// Pos returns the resume cursor: the primary position one past the
// last applied record.
func (a *Applier) Pos() wal.Pos {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pos
}

// Err returns the applier's terminal error, if it hit one.
func (a *Applier) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// Disconnect severs the current connection (if any), forcing a
// reconnect-and-resume cycle — an operational and testing aid.
func (a *Applier) Disconnect() {
	a.mu.Lock()
	conn := a.conn
	a.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// Stop ends the applier: the stream closes, applied-but-uncommitted
// records get a final commit, and the goroutine exits. Returns the
// terminal error if the applier had already died of one.
func (a *Applier) Stop() error {
	a.mu.Lock()
	if !a.stopped {
		a.stopped = true
		close(a.stop)
	}
	conn := a.conn
	a.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	<-a.done
	return a.Err()
}

func (a *Applier) logf(format string, args ...any) {
	if a.opts.Logf != nil {
		a.opts.Logf(format, args...)
	}
}

func (a *Applier) run() {
	defer close(a.done)
	backoff := backoffMin
	first := true
	for {
		select {
		case <-a.stop:
			return
		default:
		}
		if !first {
			a.m.Reconnects.Inc()
		}
		conn, err := net.DialTimeout("tcp", a.opts.Addr, dialTimeout)
		if err != nil {
			a.logf("replica: dial %s: %v (retrying in %v)", a.opts.Addr, err, backoff)
			select {
			case <-a.stop:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
			first = false
			continue
		}
		first = false
		backoff = backoffMin
		err = a.session(conn)
		conn.Close()
		a.mu.Lock()
		a.conn = nil
		a.mu.Unlock()
		a.m.Connected.Set(0)
		if err != nil {
			a.mu.Lock()
			a.err = err
			a.mu.Unlock()
			a.logf("replica: applier stopped: %v", err)
			return
		}
		select {
		case <-a.stop:
			return
		default:
			a.logf("replica: connection to %s lost; reconnecting", a.opts.Addr)
		}
	}
}

// session runs one connection to its end. A nil return means the
// connection dropped (retry); an error is terminal.
func (a *Applier) session(conn net.Conn) error {
	a.mu.Lock()
	a.conn = conn
	pos := a.pos
	a.mu.Unlock()

	h := hello{}
	if pos != (wal.Pos{}) {
		h.Pos = &pos
	}
	if err := writeJSON(conn, msgHello, h); err != nil {
		return nil // connection-level: retry
	}
	a.m.Connected.Set(1)
	a.logf("replica: streaming from %s at seg %d off %d", a.opts.Addr, pos.Seg, pos.Off)

	// Commit whatever applied when the session ends, however it ends:
	// the local state stays a clean batch boundary.
	defer a.commitPending() //nolint:errcheck — the session error wins

	br := bufio.NewReader(conn)
	for {
		typ, body, err := readMsg(br)
		if err != nil {
			return nil // connection-level: retry
		}
		switch typ {
		case msgRecord:
			resume, payload, err := decodeRecord(body)
			if err != nil {
				return err
			}
			if err := a.target.Apply(resume, payload); err != nil {
				return fmt.Errorf("replica: apply at seg %d off %d: %w", resume.Seg, resume.Off, err)
			}
			a.mu.Lock()
			a.pos = resume
			a.pending++
			pending := a.pending
			a.mu.Unlock()
			a.m.ApplyRecords.Inc()
			a.m.LagRecords.Set(pending)
			if pending >= batchRecords {
				if err := a.commitPending(); err != nil {
					return err
				}
			}
		case msgHeartbeat:
			var hb heartbeat
			if err := json.Unmarshal(body, &hb); err != nil {
				return fmt.Errorf("replica: heartbeat: %w", err)
			}
			a.mu.Lock()
			a.tip = hb
			a.mu.Unlock()
			if err := a.commitPending(); err != nil {
				return err
			}
		case msgSnapBegin:
			// Mid-life image offer means our cursor is gone on the
			// primary. Applying it over live state is not possible —
			// the image replaces the whole directory.
			if h.Pos != nil {
				return ErrPruned
			}
			return fmt.Errorf("replica: unexpected image (bootstrap uses Bootstrap)")
		case msgSnapFile, msgSnapEnd:
			return fmt.Errorf("replica: image frame outside an image")
		case msgErr:
			return fmt.Errorf("replica: primary: %s", body)
		default:
			return fmt.Errorf("replica: unknown message type %d", typ)
		}
	}
}

// commitPending runs the target's commit barrier if any records
// applied since the last one, then refreshes the lag gauges.
func (a *Applier) commitPending() error {
	a.mu.Lock()
	pending := a.pending
	a.mu.Unlock()
	if pending > 0 {
		if err := a.target.Commit(); err != nil {
			return fmt.Errorf("replica: commit applied batch: %w", err)
		}
		a.mu.Lock()
		a.pending = 0
		a.mu.Unlock()
		a.m.ApplyBatches.Inc()
	}
	a.updateLag()
	return nil
}

// updateLag recomputes the lag gauges from the applied cursor and the
// newest advertised primary tip.
func (a *Applier) updateLag() {
	a.mu.Lock()
	pos, tip, pending := a.pos, a.tip, a.pending
	a.mu.Unlock()
	a.m.LagRecords.Set(pending)
	if tip.Nanos == 0 {
		return // no heartbeat yet
	}
	if !pos.Before(tip.Pos) {
		a.m.LagBytes.Set(0)
		a.m.LagSeconds.Set(0)
		return
	}
	lag := int64(tip.Pos.Seg-pos.Seg)*tip.SegBytes + (tip.Pos.Off - pos.Off)
	if lag < 0 {
		lag = 0
	}
	a.m.LagBytes.Set(lag)
	secs := (time.Now().UnixNano() - tip.Nanos) / int64(time.Second)
	if secs < 0 {
		secs = 0
	}
	a.m.LagSeconds.Set(secs)
}

// Bootstrap seeds a fresh replica: it dials the primary, requests a
// full checkpoint image, hands each file to accept, and returns the
// position the record stream must resume from. The caller writes the
// files into an empty database directory (and primes its manifest)
// before opening it.
func Bootstrap(addr string, accept func(name string, data []byte) error) (wal.Pos, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return wal.Pos{}, fmt.Errorf("replica: bootstrap dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := writeJSON(conn, msgHello, hello{}); err != nil {
		return wal.Pos{}, fmt.Errorf("replica: bootstrap hello: %w", err)
	}
	br := bufio.NewReader(conn)
	typ, body, err := readMsg(br)
	if err != nil {
		return wal.Pos{}, fmt.Errorf("replica: bootstrap: %w", err)
	}
	if typ == msgErr {
		return wal.Pos{}, fmt.Errorf("replica: bootstrap: primary: %s", body)
	}
	if typ != msgSnapBegin {
		return wal.Pos{}, fmt.Errorf("replica: bootstrap: message type %d, want image", typ)
	}
	for {
		typ, body, err := readMsg(br)
		if err != nil {
			return wal.Pos{}, fmt.Errorf("replica: bootstrap: %w", err)
		}
		switch typ {
		case msgSnapFile:
			name, data, err := decodeSnapFile(body)
			if err != nil {
				return wal.Pos{}, err
			}
			if err := accept(name, data); err != nil {
				return wal.Pos{}, err
			}
		case msgSnapEnd:
			var end snapEnd
			if err := json.Unmarshal(body, &end); err != nil {
				return wal.Pos{}, fmt.Errorf("replica: bootstrap: %w", err)
			}
			return end.Pos, nil
		case msgErr:
			return wal.Pos{}, fmt.Errorf("replica: bootstrap: primary: %s", body)
		default:
			return wal.Pos{}, fmt.Errorf("replica: bootstrap: message type %d inside image", typ)
		}
	}
}
