package replica

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"hazy/internal/relation"
	"hazy/internal/wal"
)

// Primary is what the shipper needs from the database it ships for.
type Primary interface {
	// Log is the write-ahead log to follow.
	Log() *wal.Log
	// CheckpointImage checkpoints the catalog and streams every file a
	// fresh replica needs, returning the position the record stream
	// resumes at.
	CheckpointImage(send func(name string, data []byte) error) (wal.Pos, error)
}

// Shipper answers replica connections on a TCP listener: each
// connection gets a checkpoint image if it needs one, then an endless
// tail of committed WAL records interleaved with heartbeats. One
// goroutine per connection; connections are independent (a slow
// replica delays nobody else).
type Shipper struct {
	p Primary
	m *Metrics

	ln   net.Listener
	stop chan struct{}
	wg   sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// followWait bounds one Follower.Next: an idle tip turns into a
// heartbeat at this cadence.
const followWait = 200 * time.Millisecond

// writeTimeout bounds any single message write so a dead replica
// cannot wedge its serving goroutine.
const writeTimeout = 30 * time.Second

// NewShipper starts shipping p's log on addr (e.g. ":7071" or
// "127.0.0.1:0"). Close stops the listener and every conversation.
func NewShipper(p Primary, addr string, m *Metrics) (*Shipper, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("replica: ship listen %s: %w", addr, err)
	}
	if m == nil {
		m = NewMetrics(nil)
	}
	s := &Shipper{p: p, m: m, ln: ln, stop: make(chan struct{}), conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Shipper) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, severs every replica connection, and waits
// for the serving goroutines to exit.
func (s *Shipper) Close() error {
	close(s.stop)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Shipper) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Shipper) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	s.m.ShipConns.Add(1)
	defer s.m.ShipConns.Add(-1)
	if err := s.ship(conn); err != nil {
		// Best effort: a replica that is still listening learns why.
		conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		_ = writeMsg(conn, msgErr, []byte(err.Error())) //nolint:errcheck — the connection is going away
	}
}

// ship runs one replica conversation to its end (connection error,
// shipper close, or log close).
func (s *Shipper) ship(conn net.Conn) error {
	br := bufio.NewReader(conn)
	typ, body, err := readMsg(br)
	if err != nil {
		return fmt.Errorf("replica: ship handshake: %w", err)
	}
	if typ != msgHello {
		return fmt.Errorf("replica: ship handshake: message type %d", typ)
	}
	var h hello
	if err := json.Unmarshal(body, &h); err != nil {
		return fmt.Errorf("replica: ship handshake: %w", err)
	}
	log := s.p.Log()
	w := &deadlineWriter{conn: conn}

	var start wal.Pos
	if h.Pos != nil && log.Contains(*h.Pos) {
		start = *h.Pos
	} else {
		// Fresh replica — or one whose resume position a checkpoint has
		// pruned: stream a full image, then the tail past it.
		if err := writeMsg(w, msgSnapBegin, nil); err != nil {
			return err
		}
		pos, err := s.p.CheckpointImage(func(name string, data []byte) error {
			return writeMsg(w, msgSnapFile, encodeSnapFile(name, data))
		})
		if err != nil {
			return fmt.Errorf("replica: checkpoint image: %w", err)
		}
		if err := writeJSON(w, msgSnapEnd, snapEnd{Pos: pos}); err != nil {
			return err
		}
		start = pos
	}

	hb := func() error {
		return writeJSON(w, msgHeartbeat, heartbeat{
			Pos: log.CommittedEnd(), Nanos: time.Now().UnixNano(), SegBytes: log.SegmentBytes(),
		})
	}
	if err := hb(); err != nil {
		return err
	}
	f := log.Follow(start)
	defer f.Close()
	for n := 0; ; n++ {
		_, payload, ok, err := f.Next(s.stop, followWait)
		if err != nil {
			return err
		}
		select {
		case <-s.stop:
			return nil
		default:
		}
		if !ok {
			if err := hb(); err != nil {
				return err
			}
			continue
		}
		if relation.Shippable(payload) {
			if err := writeMsg(w, msgRecord, encodeRecord(f.Pos(), payload)); err != nil {
				return err
			}
			s.m.ShipRecords.Inc()
		}
		// A continuously busy stream still advertises the tip so the
		// replica's lag gauges move.
		if n%64 == 63 {
			if err := hb(); err != nil {
				return err
			}
		}
	}
}

// deadlineWriter arms a write deadline before every message write.
type deadlineWriter struct{ conn net.Conn }

func (w *deadlineWriter) Write(p []byte) (int, error) {
	w.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	return w.conn.Write(p)
}
