// Package skiing is a pure cost-model simulator for the paper's
// online reorganization problem (§3.3): at each round a strategy
// either reorganizes for a fixed cost S or pays the incremental cost
// c(s,i), which depends on the last reorganization round s and is
// monotone non-increasing in s. It implements the Skiing strategy,
// an exact dynamic-programming OPT, and the competitive-ratio
// measurement used to validate Lemma 3.2 / Theorem 3.3 empirically.
package skiing

import (
	"fmt"
	"math"
)

// Costs supplies c(s, i): the incremental cost paid at round i when
// the most recent reorganization happened at round s ≤ i. Rounds are
// 1-based; s = 0 denotes the initial organization before round 1.
type Costs interface {
	// C returns c(s, i) for 0 ≤ s ≤ i.
	C(s, i int) float64
	// N returns the number of rounds.
	N() int
}

// Schedule is a strategy's output: the rounds at which it
// reorganized, strictly increasing, each in [1, N].
type Schedule []int

// Cost evaluates a schedule under costs c and reorganization cost S:
// Σ_i c(⌊i⌋_u, i) + M·S (§3.3). Reorganizing at round i replaces that
// round's incremental cost.
func Cost(u Schedule, S float64, c Costs) float64 {
	total := float64(len(u)) * S
	k := 0
	last := 0
	for i := 1; i <= c.N(); i++ {
		if k < len(u) && u[k] == i {
			last = i
			k++
			continue // the reorganization replaces this round's step
		}
		total += c.C(last, i)
	}
	return total
}

// Skiing runs the paper's strategy (Figure 7): accumulate observed
// incremental costs; when the accumulator reaches α·S, reorganize and
// reset. It is deterministic and online — it sees c(s,i) only after
// committing to the incremental step.
func Skiing(alpha, S float64, c Costs) Schedule {
	var u Schedule
	acc := 0.0
	last := 0
	for i := 1; i <= c.N(); i++ {
		if acc >= alpha*S {
			u = append(u, i)
			last = i
			acc = 0
			continue
		}
		acc += c.C(last, i)
	}
	return u
}

// Opt computes a minimum-cost schedule by dynamic programming over
// "last reorganization" states: best[j] is the optimal cost of rounds
// 1..i given the last reorganization was at j. O(N²) time.
func Opt(S float64, c Costs) (Schedule, float64) {
	n := c.N()
	// best[j] = minimal total cost over rounds 1..i with last reorg at
	// round j (j = 0 means never reorganized), including reorg fees.
	best := make([]float64, n+1)
	prev := make([][]int, n+1) // reorg round list reconstruction
	for j := 1; j <= n; j++ {
		best[j] = math.Inf(1)
	}
	for i := 1; i <= n; i++ {
		// Option: reorganize at round i, coming from the cheapest
		// state after rounds 1..i−1.
		bi := math.Inf(1)
		var bj int
		for j := 0; j < i; j++ {
			if best[j] < bi {
				bi = best[j]
				bj = j
			}
		}
		newBest := bi + S
		newPrev := append(append([]int(nil), prev[bj]...), i)
		// All states j < i pay their incremental cost at round i.
		for j := 0; j < i; j++ {
			if !math.IsInf(best[j], 1) {
				best[j] += c.C(j, i)
			}
		}
		best[i] = newBest
		prev[i] = newPrev
	}
	bi := math.Inf(1)
	var bj int
	for j := 0; j <= n; j++ {
		if best[j] < bi {
			bi = best[j]
			bj = j
		}
	}
	return prev[bj], bi
}

// Ratio returns cost(Skiing)/cost(Opt) for the given instance.
func Ratio(alpha, S float64, c Costs) float64 {
	sk := Cost(Skiing(alpha, S, c), S, c)
	_, opt := Opt(S, c)
	if opt == 0 {
		if sk == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return sk / opt
}

// AlphaFor returns the paper's optimal α: the positive root of
// x² + σx − 1 = 0, where σS is the cost to scan the data (Lemma 3.2).
func AlphaFor(sigma float64) float64 {
	return (-sigma + math.Sqrt(sigma*sigma+4)) / 2
}

// BoundFor returns the competitive-ratio bound 1 + α + σ of
// Lemma 3.2.
func BoundFor(sigma float64) float64 {
	return 1 + AlphaFor(sigma) + sigma
}

// TableCosts is a Costs backed by an explicit table t[s][i-1] = c(s,i)
// (s in [0,n], i in [1,n]).
type TableCosts [][]float64

// C returns the tabulated c(s,i).
func (t TableCosts) C(s, i int) float64 { return t[s][i-1] }

// N returns the number of rounds.
func (t TableCosts) N() int {
	if len(t) == 0 {
		return 0
	}
	return len(t[0])
}

// Validate checks the §3.3 model assumptions: costs are non-negative,
// bounded by S, and monotone non-increasing in s (reorganizing more
// recently never raises the cost).
func (t TableCosts) Validate(S float64) error {
	n := t.N()
	if len(t) != n+1 {
		return fmt.Errorf("skiing: table has %d rows, want n+1=%d", len(t), n+1)
	}
	for s := 0; s <= n; s++ {
		if len(t[s]) != n {
			return fmt.Errorf("skiing: row %d has %d entries, want %d", s, len(t[s]), n)
		}
		for i := s + 1; i <= n; i++ {
			c := t.C(s, i)
			if c < 0 || c > S {
				return fmt.Errorf("skiing: c(%d,%d)=%v outside [0,S=%v]", s, i, c, S)
			}
			if s > 0 && t.C(s-1, i) < c {
				return fmt.Errorf("skiing: c(%d,%d)=%v > c(%d,%d)=%v violates monotonicity",
					s, i, c, s-1, i, t.C(s-1, i))
			}
		}
	}
	return nil
}

// DriftCosts models Hazy's actual cost shape: the incremental cost at
// round i with last reorganization s is proportional to the number of
// tuples inside the water band, which grows with accumulated model
// drift Σ_{l=s+1..i} d_l for per-round drifts d. Costs saturate at S.
type DriftCosts struct {
	// Drift[i-1] is the model drift contributed by round i.
	Drift []float64
	// Scale converts accumulated drift into seconds of incremental
	// cost.
	Scale float64
	// S caps the incremental cost (a full scan never costs more than
	// a reorganization in this normalized model).
	S float64
}

// C returns min(Scale·Σ drift, S).
func (d DriftCosts) C(s, i int) float64 {
	var acc float64
	for l := s; l < i; l++ {
		acc += d.Drift[l]
	}
	if c := d.Scale * acc; c < d.S {
		return c
	}
	return d.S
}

// N returns the number of rounds.
func (d DriftCosts) N() int { return len(d.Drift) }
