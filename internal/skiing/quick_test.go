package skiing

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSkiingNeverBeatenByFactorQuick: on random monotone drift
// instances (the §3.3 model), Skiing's cost never exceeds
// (1+α+σ)·OPT with the optimal α — quick-checked over random seeds,
// sizes, and σ.
func TestSkiingNeverBeatenByFactorQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sigma := 0.05 + r.Float64()
		S := 0.5 + r.Float64()*20
		n := 10 + r.Intn(80)
		drift := make([]float64, n)
		for i := range drift {
			if r.Float64() < 0.5 {
				drift[i] = r.Float64() * sigma * S
			}
		}
		costs := DriftCosts{Drift: drift, Scale: 1, S: sigma * S}
		alpha := AlphaFor(sigma)
		ratio := Ratio(alpha, S, costs)
		return ratio <= BoundFor(sigma)*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestOptIsLowerBoundQuick: the DP OPT never exceeds the cost of a
// handful of random schedules on the same instance.
func TestOptIsLowerBoundQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(30)
		drift := make([]float64, n)
		for i := range drift {
			drift[i] = r.Float64() * 2
		}
		S := 1 + r.Float64()*10
		costs := DriftCosts{Drift: drift, Scale: 1, S: S}
		_, opt := Opt(S, costs)
		for trial := 0; trial < 10; trial++ {
			var u Schedule
			for i := 1; i <= n; i++ {
				if r.Float64() < 0.3 {
					u = append(u, i)
				}
			}
			if Cost(u, S, costs) < opt-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
