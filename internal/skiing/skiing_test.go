package skiing

import (
	"math"
	"math/rand"
	"testing"
)

// monotoneTable builds a random cost table satisfying the §3.3
// assumptions: 0 ≤ c(s,i) ≤ σS, monotone non-increasing in s.
// Construction: per-round drifts accumulate from the last
// reorganization, capped at σS — the same shape as Hazy's band costs.
func monotoneTable(r *rand.Rand, n int, sigma, S float64) TableCosts {
	drift := make([]float64, n)
	for i := range drift {
		drift[i] = r.Float64() * sigma * S / 4
	}
	t := make(TableCosts, n+1)
	for s := 0; s <= n; s++ {
		t[s] = make([]float64, n)
		for i := 1; i <= n; i++ {
			if i <= s {
				continue
			}
			var acc float64
			for l := s; l < i; l++ {
				acc += drift[l]
			}
			t[s][i-1] = math.Min(acc, sigma*S)
		}
	}
	return t
}

func TestTableValidate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tab := monotoneTable(r, 30, 0.3, 10)
	if err := tab.Validate(10); err != nil {
		t.Fatal(err)
	}
	// Break monotonicity.
	tab[5][20] = tab[4][20] + 1
	if err := tab.Validate(10); err == nil {
		t.Fatal("monotonicity violation not caught")
	}
}

func TestCostEvaluation(t *testing.T) {
	// 3 rounds, constant cost 2 when never reorganized, 0 after.
	tab := TableCosts{
		{2, 2, 2}, // s=0
		{0, 0, 0}, // s=1
		{0, 0, 0}, // s=2
		{0, 0, 0}, // s=3
	}
	const S = 5
	if got := Cost(nil, S, tab); got != 6 {
		t.Fatalf("no-reorg cost %v", got)
	}
	// Reorganize at round 1: pay S, then 0 costs.
	if got := Cost(Schedule{1}, S, tab); got != 5 {
		t.Fatalf("reorg@1 cost %v", got)
	}
	// Reorganize at round 3: pay 2+2 then S.
	if got := Cost(Schedule{3}, S, tab); got != 9 {
		t.Fatalf("reorg@3 cost %v", got)
	}
}

func TestOptBeatsOrMatchesEverything(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const n, S = 12, 4.0
	tab := monotoneTable(r, n, 0.5, S)
	_, opt := Opt(S, tab)
	// Exhaustively enumerate all 2^n schedules and verify OPT is
	// minimal.
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		var u Schedule
		for i := 1; i <= n; i++ {
			if mask&(1<<(i-1)) != 0 {
				u = append(u, i)
			}
		}
		if c := Cost(u, S, tab); c < best {
			best = c
		}
	}
	if math.Abs(opt-best) > 1e-9 {
		t.Fatalf("DP opt %v, exhaustive %v", opt, best)
	}
}

func TestSkiingIsOnlineAndTriggersCorrectly(t *testing.T) {
	// Costs of 1 per round with S=3, α=1: accumulator hits 3 after
	// 3 incremental rounds, so Skiing reorganizes at round 4, 8, ...
	n := 10
	tab := make(TableCosts, n+1)
	for s := 0; s <= n; s++ {
		tab[s] = make([]float64, n)
		for i := 1; i <= n; i++ {
			tab[s][i-1] = 1
		}
	}
	u := Skiing(1, 3, tab)
	want := Schedule{4, 8}
	if len(u) != len(want) {
		t.Fatalf("schedule %v want %v", u, want)
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("schedule %v want %v", u, want)
		}
	}
}

func TestAlphaForAndBound(t *testing.T) {
	// σ = 0 → α = 1 and bound 2 (Theorem 3.3).
	if a := AlphaFor(0); math.Abs(a-1) > 1e-12 {
		t.Fatalf("α(0)=%v", a)
	}
	if b := BoundFor(0); math.Abs(b-2) > 1e-12 {
		t.Fatalf("bound(0)=%v", b)
	}
	// α is the positive root of x²+σx−1.
	for _, sigma := range []float64{0.1, 0.5, 1, 2} {
		a := AlphaFor(sigma)
		if a <= 0 {
			t.Fatalf("α(%v)=%v not positive", sigma, a)
		}
		if v := a*a + sigma*a - 1; math.Abs(v) > 1e-9 {
			t.Fatalf("α(%v)=%v root residual %v", sigma, a, v)
		}
	}
}

// TestCompetitiveRatioProperty is the empirical Lemma 3.2: on random
// monotone cost families with c ≤ σS, Skiing with the optimal α stays
// within (1+α+σ)·OPT (small-instance slack allowed for boundary
// rounds the asymptotic argument ignores).
func TestCompetitiveRatioProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		sigma := 0.1 + r.Float64()*0.9
		S := 1 + r.Float64()*10
		n := 20 + r.Intn(60)
		tab := monotoneTable(r, n, sigma, S)
		if err := tab.Validate(S); err != nil {
			t.Fatal(err)
		}
		alpha := AlphaFor(sigma)
		ratio := Ratio(alpha, S, tab)
		bound := BoundFor(sigma)
		if ratio > bound*1.05 {
			t.Fatalf("trial %d: ratio %.4f exceeds bound %.4f (σ=%.2f n=%d)",
				trial, ratio, bound, sigma, n)
		}
	}
}

// TestRatioApproaches2 mirrors Theorem 3.3: as σ → 0 the measured
// worst ratio over adversarial-ish drift instances stays ≤ ~2.
func TestRatioApproaches2(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const S = 10.0
	var worst float64
	for trial := 0; trial < 40; trial++ {
		sigma := 0.05
		n := 80
		drift := make([]float64, n)
		for i := range drift {
			// Bursty drift: long quiet stretches then spikes.
			if r.Float64() < 0.15 {
				drift[i] = sigma * S
			}
		}
		costs := DriftCosts{Drift: drift, Scale: 1, S: sigma * S}
		ratio := Ratio(AlphaFor(sigma), S, costs)
		if ratio > worst {
			worst = ratio
		}
	}
	if worst > 2.1*1.05 {
		t.Fatalf("worst ratio %.4f far above the σ→0 bound of ~2", worst)
	}
}

func TestDriftCosts(t *testing.T) {
	d := DriftCosts{Drift: []float64{1, 2, 3}, Scale: 2, S: 100}
	if got := d.C(0, 1); got != 2 {
		t.Fatalf("C(0,1)=%v", got)
	}
	if got := d.C(0, 3); got != 12 {
		t.Fatalf("C(0,3)=%v", got)
	}
	if got := d.C(1, 3); got != 10 {
		t.Fatalf("C(1,3)=%v", got)
	}
	if d.N() != 3 {
		t.Fatalf("N=%d", d.N())
	}
	capped := DriftCosts{Drift: []float64{50}, Scale: 1, S: 7}
	if got := capped.C(0, 1); got != 7 {
		t.Fatalf("cap: %v", got)
	}
}

func TestOptPrefersReorgWhenCheap(t *testing.T) {
	// Huge incremental costs, tiny S: OPT should reorganize nearly
	// every round.
	n := 8
	tab := make(TableCosts, n+1)
	for s := 0; s <= n; s++ {
		tab[s] = make([]float64, n)
		for i := 1; i <= n; i++ {
			if i > s {
				tab[s][i-1] = 10
			}
		}
	}
	u, opt := Opt(0.5, tab)
	if len(u) != n {
		t.Fatalf("schedule %v: expected a reorg every round", u)
	}
	if math.Abs(opt-0.5*float64(n)) > 1e-9 {
		t.Fatalf("opt=%v", opt)
	}
}
