package sqlmini

import (
	"strconv"
	"strings"
)

type parser struct {
	toks []token
	i    int
}

// Parse parses one SQL statement (a trailing semicolon is allowed).
// Failures are *SyntaxError values carrying the byte offset and the
// offending token.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if p.peek().kind != tokEOF {
		return nil, errAt(p.peek(), "trailing input")
	}
	return st, nil
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// isKw reports whether t is the given keyword (case-insensitive).
func isKw(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// accept consumes the next token if it matches the keyword or
// punctuation s.
func (p *parser) accept(s string) bool {
	t := p.peek()
	if (t.kind == tokPunct && t.text == s) || isKw(t, s) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if !p.accept(s) {
		return errAt(p.peek(), "expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", errAt(t, "expected identifier, got %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.accept("CREATE"):
		if p.accept("TABLE") {
			return p.createTable()
		}
		if p.accept("CLASSIFICATION") {
			if err := p.expect("VIEW"); err != nil {
				return nil, err
			}
			return p.createView()
		}
		return nil, errAt(p.peek(), "CREATE must be followed by TABLE or CLASSIFICATION VIEW")
	case p.accept("INSERT"):
		return p.insert()
	case p.accept("SELECT"):
		return p.selectStmt()
	case p.accept("EXPLAIN"):
		analyze := p.accept("ANALYZE")
		if err := p.expect("SELECT"); err != nil {
			return nil, err
		}
		st, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return Explain{Sel: st.(Select), Analyze: analyze}, nil
	case p.accept("SHOW"):
		return p.showStats()
	case p.accept("ATTACH"):
		return p.attachEngine()
	case p.accept("DETACH"):
		return p.detachEngine()
	case p.accept("CHECKPOINT"):
		return Checkpoint{}, nil
	case p.accept("PROMOTE"):
		return Promote{}, nil
	default:
		return nil, errAt(p.peek(), "unknown statement starting at %q", p.peek().text)
	}
}

// showStats parses SHOW STATS [FOR view]: the metrics-registry read.
func (p *parser) showStats() (Stmt, error) {
	if err := p.expect("STATS"); err != nil {
		return nil, err
	}
	var st ShowStats
	if p.accept("FOR") {
		var err error
		if st.View, err = p.ident(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) attachEngine() (Stmt, error) {
	var st AttachEngine
	var err error
	if err := p.expect("ENGINE"); err != nil {
		return nil, err
	}
	if err := p.expect("TO"); err != nil {
		return nil, err
	}
	if st.View, err = p.ident(); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("QUEUE"):
			if st.Queue, err = p.posInt("QUEUE"); err != nil {
				return nil, err
			}
		case p.accept("BATCH"):
			if st.Batch, err = p.posInt("BATCH"); err != nil {
				return nil, err
			}
		default:
			return st, nil
		}
	}
}

func (p *parser) detachEngine() (Stmt, error) {
	var st DetachEngine
	var err error
	if err := p.expect("ENGINE"); err != nil {
		return nil, err
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	if st.View, err = p.ident(); err != nil {
		return nil, err
	}
	return st, nil
}

// posInt parses a positive integer literal for an engine knob.
func (p *parser) posInt(clause string) (int, error) {
	at := p.peek()
	lit, err := p.literal()
	if err != nil {
		return 0, err
	}
	n := int(lit.Num)
	if lit.IsString || float64(n) != lit.Num || n < 1 {
		return 0, errAt(at, "%s takes a positive integer", clause)
	}
	return n, nil
}

func (p *parser) createTable() (Stmt, error) {
	var st CreateTable
	var err error
	if st.Name, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		var col ColDef
		if col.Name, err = p.ident(); err != nil {
			return nil, err
		}
		at := p.peek()
		typ, err := p.ident()
		if err != nil {
			return nil, err
		}
		col.Type = strings.ToUpper(typ)
		switch col.Type {
		case "BIGINT", "DOUBLE", "TEXT":
		default:
			return nil, errAt(at, "unsupported type %q", typ)
		}
		st.Cols = append(st.Cols, col)
		if p.accept(")") {
			break
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
	}
	if err := p.expect("KEY"); err != nil {
		return nil, err
	}
	if st.Key, err = p.ident(); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) createView() (Stmt, error) {
	var st CreateView
	var err error
	if st.Name, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expect("KEY"); err != nil {
		return nil, err
	}
	if st.Key, err = p.ident(); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("ENTITIES"):
			if err := p.expect("FROM"); err != nil {
				return nil, err
			}
			if st.Entities, err = p.ident(); err != nil {
				return nil, err
			}
			if p.accept("KEY") {
				if st.EntitiesKey, err = p.ident(); err != nil {
					return nil, err
				}
			}
		case p.accept("LABELS"):
			if err := p.expect("FROM"); err != nil {
				return nil, err
			}
			if st.LabelsFrom, err = p.ident(); err != nil {
				return nil, err
			}
			if p.accept("LABEL") {
				if _, err = p.ident(); err != nil {
					return nil, err
				}
			}
		case p.accept("EXAMPLES"):
			if err := p.expect("FROM"); err != nil {
				return nil, err
			}
			if st.Examples, err = p.ident(); err != nil {
				return nil, err
			}
			if p.accept("KEY") {
				if st.ExamplesKey, err = p.ident(); err != nil {
					return nil, err
				}
			}
			if p.accept("LABEL") {
				if st.LabelCol, err = p.ident(); err != nil {
					return nil, err
				}
			}
		case p.accept("FEATURE"):
			if err := p.expect("FUNCTION"); err != nil {
				return nil, err
			}
			if st.Feature, err = p.ident(); err != nil {
				return nil, err
			}
		case p.accept("USING"):
			m, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Using = strings.ToUpper(m)
		case p.accept("ARCHITECTURE"):
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Arch = strings.ToUpper(a)
		case p.accept("STRATEGY"):
			s, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Strategy = strings.ToUpper(s)
		case p.accept("MODE"):
			m, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Mode = strings.ToUpper(m)
		case p.accept("PARTITIONS"):
			if st.Partitions, err = p.posInt("PARTITIONS"); err != nil {
				return nil, err
			}
		default:
			if st.Entities == "" || st.Examples == "" {
				return nil, errAt(p.peek(), "classification view needs ENTITIES FROM and EXAMPLES FROM clauses")
			}
			return st, nil
		}
	}
}

func (p *parser) literal() (Literal, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.next()
		return Literal{IsString: true, Str: t.text}, nil
	case tokNumber:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Literal{}, errAt(t, "bad number %q", t.text)
		}
		return Literal{Num: f}, nil
	case tokPunct:
		if t.text == "+" || t.text == "-" {
			p.next()
			lit, err := p.literal()
			if err != nil || lit.IsString {
				return Literal{}, errAt(t, "bad signed literal")
			}
			if t.text == "-" {
				lit.Num = -lit.Num
			}
			return lit, nil
		}
	}
	return Literal{}, errAt(t, "expected literal, got %q", t.text)
}

func (p *parser) insert() (Stmt, error) {
	var st Insert
	var err error
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	if st.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expect("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Literal
		for {
			lit, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, lit)
			if p.accept(")") {
				break
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(",") {
			break
		}
	}
	return st, nil
}

func (p *parser) selectStmt() (Stmt, error) {
	st := Select{Limit: -1}
	var err error
	if isKw(p.peek(), "COUNT") {
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if err := p.expect("*"); err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		st.Count = true
	} else if p.accept("*") {
		st.Cols = []string{"*"}
	} else {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	if st.From, err = p.ident(); err != nil {
		return nil, err
	}
	if p.accept("WHERE") {
		for {
			var c Cond
			if c.Col, err = p.ident(); err != nil {
				return nil, err
			}
			op := p.peek()
			if op.kind != tokPunct || !strings.Contains("= <> < > <= >=", op.text) {
				return nil, errAt(op, "expected comparison operator, got %q", op.text)
			}
			p.next()
			c.Op = op.text
			if c.Lit, err = p.literal(); err != nil {
				return nil, err
			}
			st.Where = append(st.Where, c)
			if !p.accept("AND") {
				break
			}
		}
	}
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		ob := &OrderBy{}
		if isKw(p.peek(), "ABS") {
			p.next()
			ob.Abs = true
			if err := p.expect("("); err != nil {
				return nil, err
			}
			if ob.Col, err = p.ident(); err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		} else if ob.Col, err = p.ident(); err != nil {
			return nil, err
		}
		if p.accept("DESC") {
			ob.Desc = true
		} else {
			p.accept("ASC")
		}
		st.Order = ob
	}
	if p.accept("LIMIT") {
		at := p.peek()
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		n := int(lit.Num)
		if lit.IsString || float64(n) != lit.Num || n < 0 {
			return nil, errAt(at, "LIMIT takes a non-negative integer")
		}
		st.Limit = n
	}
	return st, nil
}
