package sqlmini

import "testing"

func TestParseCheckpoint(t *testing.T) {
	st, err := Parse("CHECKPOINT;")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(Checkpoint); !ok {
		t.Fatalf("parsed %T", st)
	}
	if _, err := Parse("CHECKPOINT now"); err == nil {
		t.Fatal("trailing input accepted")
	}
}
