// Package sqlmini is the lexer, parser, and AST for the small SQL
// dialect through which Hazy is used in the paper (§2.1): CREATE
// TABLE, INSERT, SELECT with simple predicates plus ORDER BY
// ([ABS(]col[)] [ASC|DESC]) and LIMIT, EXPLAIN SELECT, the CREATE
// CLASSIFICATION VIEW statement of Example 2.1, and the serving
// extensions ATTACH ENGINE TO / DETACH ENGINE FROM. It is a pure
// dialect package — statements are executed by the root package's
// Session, which owns the catalog the statements run against.
// Lexer and parser failures are *SyntaxError values carrying the
// byte offset and offending token, so every surface can say where a
// statement broke.
package sqlmini

import (
	"strings"
	"unicode"
)

// tokenKind enumerates lexer token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenizes src. Keywords are returned as idents; the parser
// matches them case-insensitively. Strings use single quotes with ”
// escaping. Punctuation covers ( ) , * = < > <= >= <> and minus signs
// (negative number literals are lexed as numbers).
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			toks = append(toks, token{tokIdent, src[start:i], start})
		case unicode.IsDigit(rune(c)) || (c == '-' && i+1 < n && unicode.IsDigit(rune(src[i+1]))):
			start := i
			i++
			for i < n && (unicode.IsDigit(rune(src[i])) || src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
				((src[i] == '+' || src[i] == '-') && (src[i-1] == 'e' || src[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{tokNumber, src[start:i], start})
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			for {
				if i >= n {
					return nil, &SyntaxError{Offset: start, Token: "'", Msg: "unterminated string"}
				}
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				b.WriteByte(src[i])
				i++
			}
			toks = append(toks, token{tokString, b.String(), start})
		case c == '<' && i+1 < n && (src[i+1] == '=' || src[i+1] == '>'):
			toks = append(toks, token{tokPunct, src[i : i+2], i})
			i += 2
		case c == '>' && i+1 < n && src[i+1] == '=':
			toks = append(toks, token{tokPunct, ">=", i})
			i += 2
		case strings.ContainsRune("(),*=<>;+-", rune(c)):
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		default:
			return nil, &SyntaxError{Offset: i, Token: string(c), Msg: "unexpected character"}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}
