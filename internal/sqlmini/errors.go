package sqlmini

import "fmt"

// SyntaxError is a lexer or parser failure that knows where the
// statement broke: the byte offset into the source and the offending
// token's text. hazyql and the server surface the rendered form, so a
// client can point at the exact spot in a long statement instead of
// guessing.
type SyntaxError struct {
	Offset int    // byte offset of the offending token in the source
	Token  string // offending token text; "" at end of input
	Msg    string
}

// Error renders "sql: <msg> at byte <offset> near <token>".
func (e *SyntaxError) Error() string {
	where := "end of input"
	if e.Token != "" {
		where = fmt.Sprintf("%q", e.Token)
	}
	return fmt.Sprintf("sql: %s at byte %d near %s", e.Msg, e.Offset, where)
}

// errAt builds a SyntaxError anchored at token t.
func errAt(t token, format string, args ...any) error {
	return &SyntaxError{Offset: t.pos, Token: t.text, Msg: fmt.Sprintf(format, args...)}
}
