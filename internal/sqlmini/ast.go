package sqlmini

// Stmt is a parsed statement.
type Stmt interface{ stmt() }

// CreateTable is CREATE TABLE name (col TYPE, ...) KEY col. The mini
// dialect supports two shapes: (id BIGINT, text TEXT) entity tables
// and (id BIGINT, label BIGINT) example tables.
type CreateTable struct {
	Name string
	Cols []ColDef
	Key  string
}

// ColDef is one column declaration.
type ColDef struct {
	Name string
	Type string // BIGINT | DOUBLE | TEXT
}

// CreateView is the paper's CREATE CLASSIFICATION VIEW (Example 2.1).
// The optional LABELS FROM clause is parsed for fidelity with the
// paper's syntax; the binary dialect requires examples labeled ±1.
type CreateView struct {
	Name        string
	Key         string
	Entities    string
	EntitiesKey string
	LabelsFrom  string // optional
	Examples    string
	ExamplesKey string
	LabelCol    string
	Feature     string
	Using       string // SVM | LOGISTIC | RIDGE (optional)
	Arch        string // MM | OD | HYBRID (optional)
	Strategy    string // HAZY | NAIVE (optional)
	Mode        string // EAGER | LAZY (optional)
}

// Insert is INSERT INTO name VALUES (...), (...).
type Insert struct {
	Table string
	Rows  [][]Literal
}

// Literal is a typed constant.
type Literal struct {
	IsString bool
	Str      string
	Num      float64
}

// Select is SELECT list FROM table [WHERE conds].
type Select struct {
	Count bool     // SELECT COUNT(*)
	Cols  []string // or explicit columns; ["*"] = all
	From  string
	Where []Cond
}

// Cond is one conjunct: col op literal.
type Cond struct {
	Col string
	Op  string // = <> < > <= >=
	Lit Literal
}

func (CreateTable) stmt() {}
func (CreateView) stmt()  {}
func (Insert) stmt()      {}
func (Select) stmt()      {}
