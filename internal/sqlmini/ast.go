package sqlmini

// Stmt is a parsed statement.
type Stmt interface{ stmt() }

// CreateTable is CREATE TABLE name (col TYPE, ...) KEY col. The mini
// dialect supports two shapes: (id BIGINT, text TEXT) entity tables
// and (id BIGINT, label BIGINT) example tables.
type CreateTable struct {
	Name string
	Cols []ColDef
	Key  string
}

// ColDef is one column declaration.
type ColDef struct {
	Name string
	Type string // BIGINT | DOUBLE | TEXT
}

// CreateView is the paper's CREATE CLASSIFICATION VIEW (Example 2.1).
// The optional LABELS FROM clause is parsed for fidelity with the
// paper's syntax; the binary dialect requires examples labeled ±1.
type CreateView struct {
	Name        string
	Key         string
	Entities    string
	EntitiesKey string
	LabelsFrom  string // optional
	Examples    string
	ExamplesKey string
	LabelCol    string
	Feature     string
	Using       string // SVM | LOGISTIC | RIDGE (optional)
	Arch        string // MM | OD | HYBRID (optional)
	Strategy    string // HAZY | NAIVE (optional)
	Mode        string // EAGER | LAZY (optional)
	// Partitions is the PARTITIONS n clause: hash-partition the view
	// into n independently maintained stripes (0 = unstriped /
	// database default).
	Partitions int
}

// Insert is INSERT INTO name VALUES (...), (...).
type Insert struct {
	Table string
	Rows  [][]Literal
}

// Literal is a typed constant.
type Literal struct {
	IsString bool
	Str      string
	Num      float64
}

// AttachEngine is ATTACH ENGINE TO view [QUEUE n] [BATCH n]: wrap the
// view with a concurrent maintenance engine (per-view engine mode).
type AttachEngine struct {
	View  string
	Queue int // bounded update-queue size (0 = engine default)
	Batch int // max group-applied batch (0 = engine default)
}

// DetachEngine is DETACH ENGINE FROM view: drain and close the view's
// engine, resuming trigger maintenance.
type DetachEngine struct {
	View string
}

// Checkpoint is CHECKPOINT: flush the catalog (manifests + dirty
// pages) and prune the write-ahead log below the recorded position.
type Checkpoint struct{}

// Promote is PROMOTE: stop a replica's log applier and make the
// database writable at the exact position it had applied to.
type Promote struct{}

// Select is
//
//	SELECT list FROM table [WHERE conds]
//	       [ORDER BY [ABS(]col[)] [ASC|DESC]] [LIMIT n].
type Select struct {
	Count bool     // SELECT COUNT(*)
	Cols  []string // or explicit columns; ["*"] = all
	From  string
	Where []Cond
	Order *OrderBy // nil when absent
	Limit int      // -1 when absent
}

// OrderBy is the ORDER BY clause: one key column, optionally wrapped
// in ABS() — the form active-learning reads take (ORDER BY ABS(eps)
// LIMIT k walks outward from the decision boundary).
type OrderBy struct {
	Col  string
	Abs  bool
	Desc bool
}

// Explain is EXPLAIN [ANALYZE] SELECT ...: plan the query and return
// the chosen plan as text. With Analyze the plan is also executed to
// completion and each node is annotated with the rows it produced and
// its inclusive wall time.
type Explain struct {
	Sel     Select
	Analyze bool
}

// ShowStats is SHOW STATS [FOR view]: render the process metrics
// registry as rows, optionally filtered to the collectors labeled
// with one view's name.
type ShowStats struct {
	View string
}

// Cond is one conjunct: col op literal.
type Cond struct {
	Col string
	Op  string // = <> < > <= >=
	Lit Literal
}

func (CreateTable) stmt()  {}
func (CreateView) stmt()   {}
func (Insert) stmt()       {}
func (Select) stmt()       {}
func (Explain) stmt()      {}
func (ShowStats) stmt()    {}
func (AttachEngine) stmt() {}
func (DetachEngine) stmt() {}
func (Checkpoint) stmt()   {}
func (Promote) stmt()      {}
