package sqlmini

import (
	"testing"
)

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT id, t FROM x WHERE a = 'it''s' AND b <= -2.5 -- comment\n;")
	if err != nil {
		t.Fatal(err)
	}
	var strTok, numTok string
	for _, tk := range toks {
		if tk.kind == tokString {
			strTok = tk.text
		}
		if tk.kind == tokNumber {
			numTok = tk.text
		}
	}
	if strTok != "it's" {
		t.Fatalf("string escape: %q", strTok)
	}
	if numTok != "-2.5" {
		t.Fatalf("number: %q", numTok)
	}
	if _, err := lex("a 'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lex("a ~ b"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestParsePaperViewSyntax(t *testing.T) {
	// Example 2.1 from the paper (plus the ON/feature clause of this
	// dialect).
	st, err := Parse(`
		CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
		ENTITIES FROM Papers KEY id
		LABELS FROM Paper_Area LABEL l
		EXAMPLES FROM Example_Papers KEY id LABEL l
		FEATURE FUNCTION tf_bag_of_words
		USING SVM`)
	if err != nil {
		t.Fatal(err)
	}
	cv, ok := st.(CreateView)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if cv.Name != "Labeled_Papers" || cv.Entities != "Papers" ||
		cv.Examples != "Example_Papers" || cv.Feature != "tf_bag_of_words" ||
		cv.Using != "SVM" || cv.LabelsFrom != "Paper_Area" {
		t.Fatalf("parsed %+v", cv)
	}
}

func TestParseAttachDetachEngine(t *testing.T) {
	st, err := Parse("ATTACH ENGINE TO labeled QUEUE 512 BATCH 64;")
	if err != nil {
		t.Fatal(err)
	}
	ae, ok := st.(AttachEngine)
	if !ok || ae.View != "labeled" || ae.Queue != 512 || ae.Batch != 64 {
		t.Fatalf("parsed %#v", st)
	}
	st, err = Parse("ATTACH ENGINE TO v")
	if err != nil {
		t.Fatal(err)
	}
	if ae := st.(AttachEngine); ae.View != "v" || ae.Queue != 0 || ae.Batch != 0 {
		t.Fatalf("parsed %#v", st)
	}
	st, err = Parse("DETACH ENGINE FROM v")
	if err != nil {
		t.Fatal(err)
	}
	if de, ok := st.(DetachEngine); !ok || de.View != "v" {
		t.Fatalf("parsed %#v", st)
	}
	for _, bad := range []string{
		"ATTACH ENGINE v",
		"ATTACH ENGINE TO v QUEUE 'x'",
		"ATTACH ENGINE TO v QUEUE 0",
		"ATTACH ENGINE TO v BATCH -3",
		"DETACH ENGINE v",
		"DETACH ENGINE FROM",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("accepted: %s", bad)
		}
	}
}

func TestParseSelectOrderLimitExplain(t *testing.T) {
	st, err := Parse("SELECT id FROM v WHERE eps >= -0.5 AND eps <= 0.5 ORDER BY eps DESC LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(Select)
	if len(sel.Where) != 2 || sel.Where[0].Col != "eps" || sel.Where[0].Op != ">=" || sel.Where[0].Lit.Num != -0.5 {
		t.Fatalf("where: %+v", sel.Where)
	}
	if sel.Order == nil || sel.Order.Col != "eps" || !sel.Order.Desc || sel.Order.Abs {
		t.Fatalf("order: %+v", sel.Order)
	}
	if sel.Limit != 10 {
		t.Fatalf("limit: %d", sel.Limit)
	}

	st, err = Parse("SELECT id FROM v ORDER BY ABS(eps) ASC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	sel = st.(Select)
	if sel.Order == nil || !sel.Order.Abs || sel.Order.Col != "eps" || sel.Order.Desc || sel.Limit != 3 {
		t.Fatalf("abs order: %+v limit %d", sel.Order, sel.Limit)
	}

	st, err = Parse("SELECT class FROM v")
	if err != nil {
		t.Fatal(err)
	}
	if sel = st.(Select); sel.Limit != -1 || sel.Order != nil {
		t.Fatalf("defaults: %+v", sel)
	}

	st, err = Parse("EXPLAIN SELECT COUNT(*) FROM v WHERE class = 1;")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := st.(Explain)
	if !ok || !ex.Sel.Count || ex.Sel.From != "v" {
		t.Fatalf("explain: %#v", st)
	}

	for _, bad := range []string{
		"SELECT id FROM v ORDER id",
		"SELECT id FROM v ORDER BY ABS(eps LIMIT 2",
		"SELECT id FROM v LIMIT -1",
		"SELECT id FROM v LIMIT 'x'",
		"SELECT id FROM v LIMIT 2.5",
		"EXPLAIN INSERT INTO t VALUES (1, 2)",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("accepted: %s", bad)
		}
	}
}

// TestSyntaxErrorPositions pins that lexer and parser failures carry
// the byte offset and the offending token — what hazyql and the
// server surface so a client sees where a statement broke.
func TestSyntaxErrorPositions(t *testing.T) {
	cases := []struct {
		src    string
		offset int
		token  string
	}{
		{"SELECT id FRM v", 10, "FRM"},                   // expected FROM
		{"SELECT * FROM t WHERE a LIKE 'x'", 24, "LIKE"}, // bad operator
		{"SELECT * FROM t extra", 16, "extra"},           // trailing input
		{"SELECT * FROM t WHERE a = 'oops", 26, "'"},     // unterminated string
		{"a ~ b", 2, "~"},                                // bad character
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Fatalf("accepted: %s", c.src)
		}
		se, ok := err.(*SyntaxError)
		if !ok {
			t.Fatalf("%s: error %v (%T) is not a *SyntaxError", c.src, err, err)
		}
		if se.Offset != c.offset || se.Token != c.token {
			t.Fatalf("%s: got offset %d token %q (%v), want offset %d token %q",
				c.src, se.Offset, se.Token, se, c.offset, c.token)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE x",
		"CREATE VIEW v",
		"CREATE TABLE t (a FANCYTYPE) KEY a",
		"CREATE CLASSIFICATION VIEW v KEY id",
		"INSERT INTO t VALUES 1, 2",
		"SELECT FROM t",
		"SELECT * FROM t WHERE a LIKE 'x'",
		"SELECT * FROM t extra garbage",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("accepted: %s", sql)
		}
	}
}

func TestParsePartitionsClause(t *testing.T) {
	st, err := Parse(`
		CREATE CLASSIFICATION VIEW striped KEY id
		ENTITIES FROM papers KEY id
		EXAMPLES FROM feedback KEY id LABEL label
		USING SVM PARTITIONS 4`)
	if err != nil {
		t.Fatal(err)
	}
	cv, ok := st.(CreateView)
	if !ok || cv.Partitions != 4 {
		t.Fatalf("parsed %#v", st)
	}
	// Absent clause leaves the default (0).
	st, err = Parse(`CREATE CLASSIFICATION VIEW v KEY id ENTITIES FROM a EXAMPLES FROM b`)
	if err != nil {
		t.Fatal(err)
	}
	if cv := st.(CreateView); cv.Partitions != 0 {
		t.Fatalf("parsed %#v", cv)
	}
	// The count must be a positive integer.
	for _, bad := range []string{
		`CREATE CLASSIFICATION VIEW v KEY id ENTITIES FROM a EXAMPLES FROM b PARTITIONS 0`,
		`CREATE CLASSIFICATION VIEW v KEY id ENTITIES FROM a EXAMPLES FROM b PARTITIONS -2`,
		`CREATE CLASSIFICATION VIEW v KEY id ENTITIES FROM a EXAMPLES FROM b PARTITIONS 'x'`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

// TestParseAnalyzeAndShowStats covers the observability statements:
// EXPLAIN ANALYZE sets the Analyze flag on the wrapped select, and
// SHOW STATS parses with and without a FOR view filter.
func TestParseAnalyzeAndShowStats(t *testing.T) {
	st, err := Parse("EXPLAIN ANALYZE SELECT id FROM v WHERE class = 1;")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := st.(Explain)
	if !ok || !ex.Analyze || ex.Sel.From != "v" {
		t.Fatalf("explain analyze: %#v", st)
	}
	if st, err = Parse("EXPLAIN SELECT id FROM v"); err != nil {
		t.Fatal(err)
	}
	if ex = st.(Explain); ex.Analyze {
		t.Fatalf("plain EXPLAIN parsed as ANALYZE: %#v", ex)
	}

	if st, err = Parse("SHOW STATS;"); err != nil {
		t.Fatal(err)
	}
	if ss := st.(ShowStats); ss.View != "" {
		t.Fatalf("show stats: %#v", ss)
	}
	if st, err = Parse("SHOW STATS FOR labeled"); err != nil {
		t.Fatal(err)
	}
	if ss := st.(ShowStats); ss.View != "labeled" {
		t.Fatalf("show stats for: %#v", ss)
	}

	for _, bad := range []string{
		"SHOW",
		"SHOW TABLES",
		"SHOW STATS FOR",
		"EXPLAIN ANALYZE CHECKPOINT",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("accepted: %s", bad)
		}
	}
}
