package sqlmini

import (
	"testing"
)

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT id, t FROM x WHERE a = 'it''s' AND b <= -2.5 -- comment\n;")
	if err != nil {
		t.Fatal(err)
	}
	var strTok, numTok string
	for _, tk := range toks {
		if tk.kind == tokString {
			strTok = tk.text
		}
		if tk.kind == tokNumber {
			numTok = tk.text
		}
	}
	if strTok != "it's" {
		t.Fatalf("string escape: %q", strTok)
	}
	if numTok != "-2.5" {
		t.Fatalf("number: %q", numTok)
	}
	if _, err := lex("a 'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lex("a ~ b"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestParsePaperViewSyntax(t *testing.T) {
	// Example 2.1 from the paper (plus the ON/feature clause of this
	// dialect).
	st, err := Parse(`
		CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
		ENTITIES FROM Papers KEY id
		LABELS FROM Paper_Area LABEL l
		EXAMPLES FROM Example_Papers KEY id LABEL l
		FEATURE FUNCTION tf_bag_of_words
		USING SVM`)
	if err != nil {
		t.Fatal(err)
	}
	cv, ok := st.(CreateView)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if cv.Name != "Labeled_Papers" || cv.Entities != "Papers" ||
		cv.Examples != "Example_Papers" || cv.Feature != "tf_bag_of_words" ||
		cv.Using != "SVM" || cv.LabelsFrom != "Paper_Area" {
		t.Fatalf("parsed %+v", cv)
	}
}

func TestParseAttachDetachEngine(t *testing.T) {
	st, err := Parse("ATTACH ENGINE TO labeled QUEUE 512 BATCH 64;")
	if err != nil {
		t.Fatal(err)
	}
	ae, ok := st.(AttachEngine)
	if !ok || ae.View != "labeled" || ae.Queue != 512 || ae.Batch != 64 {
		t.Fatalf("parsed %#v", st)
	}
	st, err = Parse("ATTACH ENGINE TO v")
	if err != nil {
		t.Fatal(err)
	}
	if ae := st.(AttachEngine); ae.View != "v" || ae.Queue != 0 || ae.Batch != 0 {
		t.Fatalf("parsed %#v", st)
	}
	st, err = Parse("DETACH ENGINE FROM v")
	if err != nil {
		t.Fatal(err)
	}
	if de, ok := st.(DetachEngine); !ok || de.View != "v" {
		t.Fatalf("parsed %#v", st)
	}
	for _, bad := range []string{
		"ATTACH ENGINE v",
		"ATTACH ENGINE TO v QUEUE 'x'",
		"ATTACH ENGINE TO v QUEUE 0",
		"ATTACH ENGINE TO v BATCH -3",
		"DETACH ENGINE v",
		"DETACH ENGINE FROM",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("accepted: %s", bad)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE x",
		"CREATE VIEW v",
		"CREATE TABLE t (a FANCYTYPE) KEY a",
		"CREATE CLASSIFICATION VIEW v KEY id",
		"INSERT INTO t VALUES 1, 2",
		"SELECT FROM t",
		"SELECT * FROM t WHERE a LIKE 'x'",
		"SELECT * FROM t extra garbage",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("accepted: %s", sql)
		}
	}
}
