package sqlmini

import (
	"strings"
	"testing"

	root "hazy"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	db, err := root.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return NewEngine(db)
}

func mustExec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	r, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("%s\n→ %v", sql, err)
	}
	return r
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT id, t FROM x WHERE a = 'it''s' AND b <= -2.5 -- comment\n;")
	if err != nil {
		t.Fatal(err)
	}
	var strTok, numTok string
	for _, tk := range toks {
		if tk.kind == tokString {
			strTok = tk.text
		}
		if tk.kind == tokNumber {
			numTok = tk.text
		}
	}
	if strTok != "it's" {
		t.Fatalf("string escape: %q", strTok)
	}
	if numTok != "-2.5" {
		t.Fatalf("number: %q", numTok)
	}
	if _, err := lex("a 'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lex("a ~ b"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestParsePaperViewSyntax(t *testing.T) {
	// Example 2.1 from the paper (plus the ON/feature clause of this
	// dialect).
	st, err := Parse(`
		CREATE CLASSIFICATION VIEW Labeled_Papers KEY id
		ENTITIES FROM Papers KEY id
		LABELS FROM Paper_Area LABEL l
		EXAMPLES FROM Example_Papers KEY id LABEL l
		FEATURE FUNCTION tf_bag_of_words
		USING SVM`)
	if err != nil {
		t.Fatal(err)
	}
	cv, ok := st.(CreateView)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if cv.Name != "Labeled_Papers" || cv.Entities != "Papers" ||
		cv.Examples != "Example_Papers" || cv.Feature != "tf_bag_of_words" ||
		cv.Using != "SVM" || cv.LabelsFrom != "Paper_Area" {
		t.Fatalf("parsed %+v", cv)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE x",
		"CREATE VIEW v",
		"CREATE TABLE t (a FANCYTYPE) KEY a",
		"CREATE CLASSIFICATION VIEW v KEY id",
		"INSERT INTO t VALUES 1, 2",
		"SELECT FROM t",
		"SELECT * FROM t WHERE a LIKE 'x'",
		"SELECT * FROM t extra garbage",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("accepted: %s", sql)
		}
	}
}

func TestEndToEndSQL(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE papers (id BIGINT, title TEXT) KEY id")
	mustExec(t, e, "CREATE TABLE feedback (id BIGINT, label BIGINT) KEY id")
	mustExec(t, e, `INSERT INTO papers VALUES
		(1, 'relational query optimization and indexing'),
		(2, 'kernel scheduling for multicore operating systems'),
		(3, 'sql views and transaction processing'),
		(4, 'device drivers and interrupt handling'),
		(5, 'join algorithms for relational databases')`)
	mustExec(t, e, `
		CREATE CLASSIFICATION VIEW labeled KEY id
		ENTITIES FROM papers KEY id
		EXAMPLES FROM feedback KEY id LABEL l
		FEATURE FUNCTION tf_bag_of_words
		USING SVM ARCHITECTURE MM STRATEGY HAZY MODE EAGER`)
	// Feedback via plain INSERTs (trigger-maintained).
	mustExec(t, e, "INSERT INTO feedback VALUES (1, 1), (2, -1), (3, 1), (4, -1)")

	// Single entity read.
	r := mustExec(t, e, "SELECT class FROM labeled WHERE id = 5")
	if len(r.Rows) != 1 || r.Rows[0][0] != "1" {
		t.Fatalf("paper 5 should classify as database: %+v", r)
	}
	// All members.
	r = mustExec(t, e, "SELECT id FROM labeled WHERE class = 1")
	if len(r.Rows) < 2 {
		t.Fatalf("members: %+v", r)
	}
	for _, row := range r.Rows {
		if row[0] == "2" || row[0] == "4" {
			t.Fatalf("os paper in database class: %+v", r)
		}
	}
	// Count form.
	r = mustExec(t, e, "SELECT COUNT(*) FROM labeled WHERE class = 1")
	if len(r.Rows) != 1 {
		t.Fatalf("count: %+v", r)
	}
	// Negative class via full scan.
	r = mustExec(t, e, "SELECT id, class FROM labeled WHERE class = -1")
	for _, row := range r.Rows {
		if row[1] != "-1" {
			t.Fatalf("negative scan: %+v", r)
		}
	}
	// Base table select with predicate.
	r = mustExec(t, e, "SELECT title FROM papers WHERE id = 2")
	if len(r.Rows) != 1 || !strings.Contains(r.Rows[0][0], "kernel") {
		t.Fatalf("base select: %+v", r)
	}
	r = mustExec(t, e, "SELECT COUNT(*) FROM papers WHERE id >= 3")
	if r.Rows[0][0] != "3" {
		t.Fatalf("count papers: %+v", r)
	}
	r = mustExec(t, e, "SELECT * FROM feedback WHERE label = 1")
	if len(r.Rows) != 2 {
		t.Fatalf("feedback positive: %+v", r)
	}
}

func TestSQLValidation(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Exec("CREATE TABLE t (a BIGINT, b TEXT, c TEXT) KEY a"); err == nil {
		t.Fatal("3-column table accepted")
	}
	if _, err := e.Exec("INSERT INTO missing VALUES (1, 'x')"); err == nil {
		t.Fatal("insert into missing table accepted")
	}
	if _, err := e.Exec("SELECT * FROM missing"); err == nil {
		t.Fatal("select from missing table accepted")
	}
	mustExec(t, e, "CREATE TABLE papers (id BIGINT, title TEXT) KEY id")
	if _, err := e.Exec("INSERT INTO papers VALUES (1, 2)"); err == nil {
		t.Fatal("numeric text accepted")
	}
	if _, err := e.Exec("INSERT INTO papers VALUES ('x', 'y')"); err == nil {
		t.Fatal("string id accepted")
	}
	mustExec(t, e, "CREATE TABLE fb (id BIGINT, label BIGINT) KEY id")
	if _, err := e.Exec("INSERT INTO fb VALUES (1, 7)"); err == nil {
		t.Fatal("label 7 accepted")
	}
	if _, err := e.Exec(`CREATE CLASSIFICATION VIEW v KEY id
		ENTITIES FROM papers KEY id EXAMPLES FROM fb KEY id LABEL l
		FEATURE FUNCTION nope`); err == nil {
		t.Fatal("unknown feature function accepted")
	}
	if _, err := e.Exec(`CREATE CLASSIFICATION VIEW v KEY id
		ENTITIES FROM papers KEY id EXAMPLES FROM fb KEY id LABEL l
		FEATURE FUNCTION tf_bag_of_words ARCHITECTURE QUANTUM`); err == nil {
		t.Fatal("unknown architecture accepted")
	}
	if _, err := e.Exec("SELECT nope FROM papers"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := e.Exec("SELECT * FROM papers WHERE nope = 1"); err == nil {
		t.Fatal("unknown where column accepted")
	}
}

func TestViewArchitectureVariantsViaSQL(t *testing.T) {
	for _, clause := range []string{
		"ARCHITECTURE MM STRATEGY NAIVE MODE LAZY",
		"ARCHITECTURE OD STRATEGY HAZY MODE EAGER",
		"ARCHITECTURE HYBRID MODE LAZY",
	} {
		e := newEngine(t)
		mustExec(t, e, "CREATE TABLE p (id BIGINT, txt TEXT) KEY id")
		mustExec(t, e, "CREATE TABLE fb (id BIGINT, label BIGINT) KEY id")
		mustExec(t, e, "INSERT INTO p VALUES (1,'alpha beta'),(2,'gamma delta'),(3,'alpha gamma')")
		mustExec(t, e, `CREATE CLASSIFICATION VIEW v KEY id
			ENTITIES FROM p KEY id EXAMPLES FROM fb KEY id LABEL l
			FEATURE FUNCTION tf_bag_of_words `+clause)
		mustExec(t, e, "INSERT INTO fb VALUES (1,1),(2,-1)")
		r := mustExec(t, e, "SELECT COUNT(*) FROM v WHERE class = 1")
		if len(r.Rows) != 1 {
			t.Fatalf("%s: %+v", clause, r)
		}
	}
	e := newEngine(t)
	mustExec(t, e, "CREATE TABLE p (id BIGINT, txt TEXT) KEY id")
	mustExec(t, e, "CREATE TABLE fb (id BIGINT, label BIGINT) KEY id")
	if _, err := e.Exec(`CREATE CLASSIFICATION VIEW v KEY id
		ENTITIES FROM p KEY id EXAMPLES FROM fb KEY id LABEL l
		FEATURE FUNCTION tf_bag_of_words ARCHITECTURE HYBRID STRATEGY NAIVE`); err == nil {
		t.Fatal("hybrid+naive accepted")
	}
}
