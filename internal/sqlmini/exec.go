package sqlmini

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	root "hazy"
	"hazy/internal/core"
)

// Result is a statement's output: column names plus stringified rows
// (ints render without decimals).
type Result struct {
	Cols []string
	Rows [][]string
	// Msg is set for DDL/DML statements with no result set.
	Msg string
}

// Engine executes mini-SQL statements against a hazy database.
type Engine struct {
	db *root.DB
	// tableKind tracks which dialect shape each created table has.
	tableKind map[string]string // "entity" | "example"
	textCol   map[string]string // entity table → its text column name
}

// NewEngine wraps a hazy database.
func NewEngine(db *root.DB) *Engine {
	return &Engine{db: db, tableKind: map[string]string{}, textCol: map[string]string{}}
}

// Exec parses and executes one statement.
func (e *Engine) Exec(src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case CreateTable:
		return e.createTable(s)
	case CreateView:
		return e.createView(s)
	case Insert:
		return e.insert(s)
	case Select:
		return e.selectStmt(s)
	default:
		return nil, fmt.Errorf("sql: unhandled statement %T", st)
	}
}

func (e *Engine) createTable(s CreateTable) (*Result, error) {
	if len(s.Cols) != 2 || !strings.EqualFold(s.Cols[0].Name, "id") ||
		s.Cols[0].Type != "BIGINT" || !strings.EqualFold(s.Key, "id") {
		return nil, fmt.Errorf("sql: the mini dialect supports tables (id BIGINT, col TEXT|BIGINT) KEY id")
	}
	switch s.Cols[1].Type {
	case "TEXT":
		if _, err := e.db.CreateEntityTable(s.Name, s.Cols[1].Name); err != nil {
			return nil, err
		}
		e.tableKind[s.Name] = "entity"
		e.textCol[s.Name] = s.Cols[1].Name
	case "BIGINT":
		if _, err := e.db.CreateExampleTable(s.Name); err != nil {
			return nil, err
		}
		e.tableKind[s.Name] = "example"
	default:
		return nil, fmt.Errorf("sql: second column must be TEXT (entities) or BIGINT (examples)")
	}
	return &Result{Msg: "CREATE TABLE"}, nil
}

func (e *Engine) createView(s CreateView) (*Result, error) {
	spec := root.ViewSpec{
		Name:            s.Name,
		Entities:        s.Entities,
		Examples:        s.Examples,
		FeatureFunction: s.Feature,
		Method:          strings.ToLower(s.Using),
	}
	switch s.Arch {
	case "", "MM":
		spec.Arch = core.MainMemory
	case "OD":
		spec.Arch = core.OnDisk
	case "HYBRID":
		spec.Arch = core.HybridArch
	default:
		return nil, fmt.Errorf("sql: unknown ARCHITECTURE %q", s.Arch)
	}
	switch s.Strategy {
	case "", "HAZY":
		spec.Strategy = core.HazyStrategy
	case "NAIVE":
		spec.Strategy = core.Naive
	default:
		return nil, fmt.Errorf("sql: unknown STRATEGY %q", s.Strategy)
	}
	switch s.Mode {
	case "", "EAGER":
		spec.Mode = core.Eager
	case "LAZY":
		spec.Mode = core.Lazy
	default:
		return nil, fmt.Errorf("sql: unknown MODE %q", s.Mode)
	}
	if spec.Arch == core.HybridArch && s.Strategy == "NAIVE" {
		return nil, fmt.Errorf("sql: HYBRID requires STRATEGY HAZY")
	}
	if _, err := e.db.CreateClassificationView(spec); err != nil {
		return nil, err
	}
	return &Result{Msg: "CREATE CLASSIFICATION VIEW"}, nil
}

func (e *Engine) insert(s Insert) (*Result, error) {
	kind, ok := e.tableKind[s.Table]
	if !ok {
		return nil, fmt.Errorf("sql: no table %q", s.Table)
	}
	for _, row := range s.Rows {
		if len(row) != 2 {
			return nil, fmt.Errorf("sql: %s rows take 2 values, got %d", s.Table, len(row))
		}
		if row[0].IsString {
			return nil, fmt.Errorf("sql: id must be an integer")
		}
		id := int64(row[0].Num)
		switch kind {
		case "entity":
			if !row[1].IsString {
				return nil, fmt.Errorf("sql: entity text must be a string")
			}
			tbl, err := e.entityTable(s.Table)
			if err != nil {
				return nil, err
			}
			if err := tbl.InsertText(id, row[1].Str); err != nil {
				return nil, err
			}
		case "example":
			if row[1].IsString {
				return nil, fmt.Errorf("sql: label must be ±1")
			}
			tbl, err := e.exampleTable(s.Table)
			if err != nil {
				return nil, err
			}
			if err := tbl.InsertExample(id, int(row[1].Num)); err != nil {
				return nil, err
			}
		}
	}
	return &Result{Msg: fmt.Sprintf("INSERT %d", len(s.Rows))}, nil
}

func (e *Engine) entityTable(name string) (*root.EntityTable, error) {
	// Facade tables are registered at creation; re-resolve by
	// re-declaring is not possible, so Engine requires tables made
	// through it (tracked in tableKind).
	v, err := e.db.EntityTableByName(name)
	if err != nil {
		return nil, err
	}
	return v, nil
}

func (e *Engine) exampleTable(name string) (*root.ExampleTable, error) {
	return e.db.ExampleTableByName(name)
}

// row materializers ----------------------------------------------------

type tableRow struct {
	id  int64
	val string // text, label, or class rendered as string
}

func litStr(l Literal) string {
	if l.IsString {
		return l.Str
	}
	if l.Num == float64(int64(l.Num)) {
		return strconv.FormatInt(int64(l.Num), 10)
	}
	return strconv.FormatFloat(l.Num, 'g', -1, 64)
}

func cmpInt(a int64, op string, b float64) bool {
	af := float64(a)
	switch op {
	case "=":
		return af == b
	case "<>":
		return af != b
	case "<":
		return af < b
	case ">":
		return af > b
	case "<=":
		return af <= b
	case ">=":
		return af >= b
	}
	return false
}

func (e *Engine) selectStmt(s Select) (*Result, error) {
	// Views first: SELECT over a classification view.
	if v, err := e.db.View(s.From); err == nil {
		return e.selectView(s, v)
	}
	kind, ok := e.tableKind[s.From]
	if !ok {
		return nil, fmt.Errorf("sql: no table or view %q", s.From)
	}
	secondCol := "label"
	if kind == "entity" {
		secondCol = e.textCol[s.From]
	}
	for _, c := range s.Where {
		if !strings.EqualFold(c.Col, "id") && !strings.EqualFold(c.Col, secondCol) {
			return nil, fmt.Errorf("sql: unknown column %q in WHERE", c.Col)
		}
	}
	var rows []tableRow
	if kind == "entity" {
		tbl, err := e.entityTable(s.From)
		if err != nil {
			return nil, err
		}
		err = tbl.Scan(func(id int64, text string) error {
			rows = append(rows, tableRow{id, text})
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		tbl, err := e.exampleTable(s.From)
		if err != nil {
			return nil, err
		}
		err = tbl.Scan(func(id int64, label int) error {
			rows = append(rows, tableRow{id, strconv.Itoa(label)})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	// Apply predicates.
	filtered := rows[:0]
	for _, r := range rows {
		keep := true
		for _, c := range s.Where {
			switch {
			case strings.EqualFold(c.Col, "id"):
				if c.Lit.IsString || !cmpInt(r.id, c.Op, c.Lit.Num) {
					keep = false
				}
			case strings.EqualFold(c.Col, secondCol):
				want := litStr(c.Lit)
				switch c.Op {
				case "=":
					keep = keep && r.val == want
				case "<>":
					keep = keep && r.val != want
				default:
					// Numeric comparison for the BIGINT column.
					n, err := strconv.ParseInt(r.val, 10, 64)
					if err != nil || c.Lit.IsString || !cmpInt(n, c.Op, c.Lit.Num) {
						keep = false
					}
				}
			default:
				return nil, fmt.Errorf("sql: unknown column %q in WHERE", c.Col)
			}
		}
		if keep {
			filtered = append(filtered, r)
		}
	}
	return e.project(s, filtered, []string{"id", secondCol})
}

// selectView evaluates SELECT over a classification view with columns
// (id, class).
func (e *Engine) selectView(s Select, v *root.ClassView) (*Result, error) {
	// Recognize the point-read pattern WHERE id = k.
	var idEq *int64
	var classEq *int
	for _, c := range s.Where {
		switch {
		case strings.EqualFold(c.Col, "id") && c.Op == "=" && !c.Lit.IsString:
			id := int64(c.Lit.Num)
			idEq = &id
		case strings.EqualFold(c.Col, "class") && c.Op == "=" && !c.Lit.IsString:
			cl := int(c.Lit.Num)
			if cl != 1 && cl != -1 {
				return nil, fmt.Errorf("sql: class literal must be ±1")
			}
			classEq = &cl
		default:
			return nil, fmt.Errorf("sql: view predicates support id = k and class = ±1")
		}
	}
	var rows []tableRow
	switch {
	case idEq != nil:
		label, err := v.Label(*idEq)
		if err != nil {
			return nil, err
		}
		if classEq == nil || *classEq == label {
			rows = append(rows, tableRow{*idEq, strconv.Itoa(label)})
		}
	case classEq != nil && *classEq == 1:
		// All Members fast path.
		if s.Count {
			n, err := v.CountMembers()
			if err != nil {
				return nil, err
			}
			return &Result{Cols: []string{"count"}, Rows: [][]string{{strconv.Itoa(n)}}}, nil
		}
		ids, err := v.Members()
		if err != nil {
			return nil, err
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			rows = append(rows, tableRow{id, "1"})
		}
	default:
		// Full view scan (optionally class = -1): enumerate entities.
		members := map[int64]bool{}
		ids, err := v.Members()
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			members[id] = true
		}
		err = v.Entities().Scan(func(id int64, _ string) error {
			label := -1
			if members[id] {
				label = 1
			}
			if classEq == nil || *classEq == label {
				rows = append(rows, tableRow{id, strconv.Itoa(label)})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return e.project(s, rows, []string{"id", "class"})
}

// project renders the select list over (id, second-column) rows.
func (e *Engine) project(s Select, rows []tableRow, cols []string) (*Result, error) {
	if s.Count {
		return &Result{Cols: []string{"count"}, Rows: [][]string{{strconv.Itoa(len(rows))}}}, nil
	}
	want := s.Cols
	if len(want) == 1 && want[0] == "*" {
		want = cols
	}
	idx := make([]int, len(want))
	for i, c := range want {
		switch {
		case strings.EqualFold(c, cols[0]):
			idx[i] = 0
		case strings.EqualFold(c, cols[1]):
			idx[i] = 1
		default:
			return nil, fmt.Errorf("sql: unknown column %q (have %v)", c, cols)
		}
	}
	res := &Result{Cols: want}
	for _, r := range rows {
		vals := [2]string{strconv.FormatInt(r.id, 10), r.val}
		out := make([]string, len(idx))
		for i, j := range idx {
			out[i] = vals[j]
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}
