package relation

import (
	"encoding/binary"
	"fmt"
	"path/filepath"

	"hazy/internal/storage"
	"hazy/internal/wal"
)

// This file is the catalog's durability engine: the WAL record codec
// for table mutations, the group-commit surface writers acknowledge
// through, and the redo pass Recover runs over the log tail.
//
// The protocol is write-ahead at the relation layer: a mutation
// appends its logical record to the log and applies it to the heap
// inside one critical section (under the checkpoint lock), then
// commits the log — one fsync per statement in durable mode, one per
// batch when the maintenance engine defers the commit. Heap pages
// only reach disk at a checkpoint or an LRU eviction, and both sync
// the log first, so on-disk pages never run ahead of the on-disk log.
//
// Recovery is redo-only and idempotent: the manifest names a
// checkpoint position whose effects are fully contained in the
// flushed pages; every intact record past it is re-applied, skipping
// effects the pages already contain (an insert whose key is present,
// a delete whose key is gone). A torn or corrupt tail record ends the
// redo cleanly, so the database always reopens as a prefix of the
// logged history.

// WAL payload op codes.
const (
	walInsert = byte(1)
	walUpdate = byte(2)
	walDelete = byte(3)
	// walImage is a full-page image, journaled just before a dirty
	// table page is written back in place (checkpoint flush or LRU
	// eviction) in durable mode — the full-page-writes defense: an
	// in-place page write torn by a crash is repaired from the last
	// journaled image before the heap is scanned.
	walImage = byte(4)
)

// encodeMutation frames one table mutation:
//
//	[1B op][2B table-name length][table name][body]
//
// where body is the encoded tuple for inserts and updates, and the
// 8-byte key for deletes.
func encodeMutation(op byte, table string, body []byte) []byte {
	buf := make([]byte, 0, 3+len(table)+len(body))
	buf = append(buf, op)
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(table)))
	buf = append(buf, n[:]...)
	buf = append(buf, table...)
	return append(buf, body...)
}

func decodeMutation(payload []byte) (op byte, table string, body []byte, err error) {
	if len(payload) < 3 {
		return 0, "", nil, fmt.Errorf("relation: wal record of %d bytes too short", len(payload))
	}
	op = payload[0]
	n := int(binary.LittleEndian.Uint16(payload[1:3]))
	if len(payload) < 3+n {
		return 0, "", nil, fmt.Errorf("relation: wal record table name truncated")
	}
	return op, string(payload[3 : 3+n]), payload[3+n:], nil
}

// deleteBody encodes a delete record's 8-byte key body.
func deleteBody(key int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(key))
	return b[:]
}

// compensate appends a record neutralizing a mutation that was logged
// but whose heap apply then failed, so recovery never replays a
// statement the client saw fail. Best effort: if even this append
// fails the log is likely dead and nothing after it will commit
// either.
func (t *Table) compensate(op byte, body []byte) {
	_ = t.logMutation(op, body) //nolint:errcheck — see above
}

// logMutation appends one mutation record for t. Callers hold the
// checkpoint read lock and t.mu, so the append and the heap apply
// that follows are atomic with respect to Checkpoint. A nil log
// (standalone NewTable, no DB) logs nothing.
func (t *Table) logMutation(op byte, body []byte) error {
	if t.db == nil || t.db.log == nil {
		return nil
	}
	_, err := t.db.log.Append(encodeMutation(op, t.name, body))
	return err
}

// lockMutation enters a mutation's critical section with respect to
// checkpointing; the returned func leaves it.
func (t *Table) lockMutation() func() {
	if t.db == nil {
		return func() {}
	}
	t.db.ckptMu.RLock()
	return t.db.ckptMu.RUnlock
}

// commitWAL makes the table's logged mutations durable (statement
// granularity). Deferred writers skip it and call DB.CommitLog once
// per batch.
func (t *Table) commitWAL() error {
	if t.db == nil {
		return nil
	}
	return t.db.CommitLog()
}

// CommitLog is the group-commit barrier: it makes every record
// appended so far durable under the DB's sync mode, then — if the
// commit crossed a segment rotation — triggers a checkpoint, keeping
// the replayable tail about one segment long. The maintenance
// engine's batch apply calls it once per batch; Table mutations call
// it per statement.
func (db *DB) CommitLog() error {
	if db.log == nil {
		return nil
	}
	if err := db.log.Commit(); err != nil {
		return err
	}
	if db.log.TakeRotated() {
		ckpt := db.Checkpoint
		if db.ckptHook != nil {
			ckpt = db.ckptHook
		}
		if err := ckpt(); err != nil {
			// The rotation still owes a checkpoint; re-arm so the
			// next commit retries instead of letting the replayable
			// tail grow segment over segment.
			db.log.MarkRotated()
			return err
		}
	}
	return nil
}

// SetCheckpointHook routes rotation-triggered checkpoints through fn
// instead of the bare relation-level Checkpoint — the hazy layer
// points it at its catalog-wide checkpoint (manifest plus storage).
// Set once at open, before the DB is shared across goroutines.
func (db *DB) SetCheckpointHook(fn func() error) { db.ckptHook = fn }

// LogEnd returns the current end of the write-ahead log.
func (db *DB) LogEnd() wal.Pos { return db.log.End() }

// replayMutation redoes one logged mutation against the recovered
// catalog, bypassing the log and triggers. It is idempotent: effects
// already present in the flushed pages are skipped.
func (db *DB) replayMutation(payload []byte) error {
	op, name, body, err := decodeMutation(payload)
	if err != nil {
		return err
	}
	if op == walImage {
		return nil // applied by the image pre-pass
	}
	if op == walMeta {
		// Catalog metadata for replication: no heap effect, but the
		// newest blob is kept so a replica reopening mid-stream can
		// reconcile DDL whose side effects a crash interrupted.
		db.lastMeta = body
		return nil
	}
	if op == walShipped {
		// A replica's journal of an applied primary record: track the
		// resume cursor, then redo the wrapped record idempotently.
		pos, inner, err := decodeShipped(body)
		if err != nil {
			return err
		}
		if db.shipped.Before(pos) {
			db.shipped = pos
		}
		return db.replayMutation(inner)
	}
	db.catMu.RLock()
	t, ok := db.tables[name]
	db.catMu.RUnlock()
	if !ok {
		return fmt.Errorf("relation: wal replay references unknown table %q", name)
	}
	switch op {
	case walInsert, walUpdate:
		tup, err := DecodeTuple(t.schema, body)
		if err != nil {
			return fmt.Errorf("relation: wal replay %q: %w", name, err)
		}
		key := tup.Key(t.schema)
		rid, exists := t.pk[key]
		if op == walInsert {
			if exists {
				return nil // the flushed pages got there first
			}
			nrid, err := t.heap.Insert(body)
			if err != nil {
				return err
			}
			t.pk[key] = nrid
			return nil
		}
		if !exists {
			// An update's insert always precedes it in the log; if the
			// key is absent the record would redo against nothing.
			return fmt.Errorf("relation: wal replay: update of missing key %d in %q", key, name)
		}
		nrid, err := t.heap.Update(rid, body)
		if err != nil {
			return err
		}
		t.pk[key] = nrid
		return nil
	case walDelete:
		if len(body) != 8 {
			return fmt.Errorf("relation: wal replay: delete body of %d bytes", len(body))
		}
		key := int64(binary.LittleEndian.Uint64(body))
		rid, exists := t.pk[key]
		if !exists {
			return nil // already gone from the flushed pages
		}
		if err := t.heap.Delete(rid); err != nil {
			return err
		}
		delete(t.pk, key)
		return nil
	default:
		return fmt.Errorf("relation: wal replay: unknown op %d", op)
	}
}

// Checkpoint flushes all buffer pools, writes the catalog manifest
// with the log position whose effects the flushed pages now contain,
// and prunes log segments below it. After a successful checkpoint,
// recovery replays only the log tail past the recorded position.
func (db *DB) Checkpoint() error {
	db.ckptMu.Lock()
	err := db.checkpointLocked()
	pos := db.ckpt
	db.ckptMu.Unlock()
	if err != nil {
		return err
	}
	if db.log != nil {
		return db.log.Checkpoint(pos)
	}
	return nil
}

// checkpointLocked does the flush + manifest write under the
// exclusive checkpoint lock: no mutation is mid-flight, so every
// logged record below the captured position has been applied to the
// heaps being flushed. The catalog read lock is held throughout so a
// checkpoint firing from an engine goroutine (segment rotation) never
// races DDL's map mutations.
func (db *DB) checkpointLocked() error {
	db.catMu.RLock()
	defer db.catMu.RUnlock()
	var pos wal.Pos
	if db.log != nil {
		pos = db.log.End()
	}
	for _, pool := range db.pools {
		if err := pool.FlushAll(); err != nil {
			return err
		}
	}
	for _, p := range db.pagers {
		if err := p.Sync(); err != nil {
			return err
		}
	}
	if err := db.writeManifest(pos); err != nil {
		return err
	}
	db.ckpt = pos
	return nil
}

// pageImageHook builds the per-page journal hook for a table pool in
// durable mode: before a dirty page of file is overwritten in place,
// its full image is appended to the log. The pool's write-back
// barrier (logSyncBarrier) then fsyncs once per write-back group —
// so the write-ahead invariant holds for evictions between
// checkpoints, a torn in-place write is repairable from the journaled
// image, and a checkpoint flush of N pages pays one fsync.
func (db *DB) pageImageHook(file string) func(storage.PageID, []byte) error {
	return func(id storage.PageID, data []byte) error {
		if db.log == nil {
			return nil
		}
		_, err := db.log.Append(encodeMutation(walImage, file, encodeImage(id, data)))
		return err
	}
}

// logSyncBarrier is the pools' write-back barrier: every journaled
// image (and every logical record before it) reaches disk before any
// page does.
func (db *DB) logSyncBarrier() error {
	if db.log == nil {
		return nil
	}
	return db.log.Sync()
}

// encodeImage frames a page image body: [4B page id][page bytes].
func encodeImage(id storage.PageID, data []byte) []byte {
	body := make([]byte, 4+len(data))
	binary.LittleEndian.PutUint32(body[0:4], uint32(id))
	copy(body[4:], data)
	return body
}

// applyImagePass restores journaled page images from the log tail
// directly into the page files, before any table is attached — torn
// in-place page writes heal here. Later images of the same page
// overwrite earlier ones, converging on the last journaled state.
func (db *DB) applyImagePass(start wal.Pos) error {
	if db.log == nil {
		return nil
	}
	files := map[string]storage.File{}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	return db.log.Replay(start, func(_ wal.Pos, payload []byte) error {
		op, file, body, err := decodeMutation(payload)
		if err != nil || op != walImage {
			return err // nil for non-image records
		}
		if len(body) < 4+storage.PageSize {
			return fmt.Errorf("relation: wal page image of %d bytes", len(body))
		}
		id := storage.PageID(binary.LittleEndian.Uint32(body[0:4]))
		f, ok := files[file]
		if !ok {
			f, err = db.vfs.OpenFile(filepath.Join(db.dir, file))
			if err != nil {
				return fmt.Errorf("relation: wal image restore open %s: %w", file, err)
			}
			files[file] = f
		}
		if _, err := f.WriteAt(body[4:4+storage.PageSize], int64(id)*storage.PageSize); err != nil {
			return fmt.Errorf("relation: wal image restore %s page %d: %w", file, id, err)
		}
		return nil
	})
}

// repairPageFile rounds a page file's size down to a whole number of
// pages: a crash can tear a file-extending page allocation, and the
// torn tail page was never referenced by any durable structure.
func repairPageFile(vfs storage.VFS, path string) error {
	f, err := vfs.OpenFile(path)
	if err != nil {
		return err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return err
	}
	if rem := size % storage.PageSize; rem != 0 {
		return f.Truncate(size - rem)
	}
	return nil
}
