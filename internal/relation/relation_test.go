package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"hazy/internal/vector"
)

func paperSchema(t *testing.T) Schema {
	t.Helper()
	s, err := NewSchema([]Column{
		{"id", TInt64},
		{"title", TString},
		{"eps", TFloat64},
		{"f", TVector},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestTable(t *testing.T) *Table {
	t.Helper()
	db, err := OpenDB(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable("papers", paperSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func row(id int64, title string, eps float64) Tuple {
	return Tuple{id, title, eps, vector.NewSparse([]int32{1}, []float64{eps})}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema([]Column{{"a", TInt64}, {"a", TString}}, "a"); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := NewSchema([]Column{{"a", TInt64}}, "b"); err == nil {
		t.Fatal("missing key accepted")
	}
	if _, err := NewSchema([]Column{{"a", TString}}, "a"); err == nil {
		t.Fatal("non-int key accepted")
	}
	s, err := NewSchema([]Column{{"id", TInt64}, {"x", TFloat64}}, "id")
	if err != nil {
		t.Fatal(err)
	}
	if s.ColIndex("x") != 1 || s.ColIndex("nope") != -1 {
		t.Fatal("ColIndex wrong")
	}
}

func TestTupleCodecRoundTrip(t *testing.T) {
	s := paperSchema(t)
	tup := Tuple{int64(7), "Hazy: a paper", -0.25, vector.NewDense([]float64{1, 2, 3})}
	rec, err := EncodeTuple(s, tup)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTuple(s, rec)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].(int64) != 7 || got[1].(string) != "Hazy: a paper" || got[2].(float64) != -0.25 {
		t.Fatalf("decoded %v", got)
	}
	if !vector.Equal(got[3].(vector.Vector), tup[3].(vector.Vector)) {
		t.Fatal("vector column mismatch")
	}
}

func TestTupleCodecErrors(t *testing.T) {
	s := paperSchema(t)
	if _, err := EncodeTuple(s, Tuple{int64(1), "x", 0.5}); err == nil {
		t.Fatal("short tuple accepted")
	}
	if _, err := EncodeTuple(s, Tuple{"not-int", "x", 0.5, vector.Vector{}}); err == nil {
		t.Fatal("wrong type accepted")
	}
	rec, _ := EncodeTuple(s, row(1, "a", 0.5))
	if _, err := DecodeTuple(s, rec[:len(rec)-1]); err == nil {
		t.Fatal("truncated record accepted")
	}
	if _, err := DecodeTuple(s, append(rec, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestTableCRUD(t *testing.T) {
	tbl := newTestTable(t)
	if err := tbl.Insert(row(1, "one", 0.1)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(row(1, "dup", 0.2)); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if err := tbl.Insert(row(2, "two", 0.2)); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 || !tbl.Has(1) || tbl.Has(3) {
		t.Fatalf("len=%d", tbl.Len())
	}
	got, err := tbl.Get(1)
	if err != nil || got[1].(string) != "one" {
		t.Fatalf("get: %v %v", got, err)
	}
	if err := tbl.Update(row(1, "one-prime, now a considerably longer title", 0.9)); err != nil {
		t.Fatal(err)
	}
	got, _ = tbl.Get(1)
	if got[2].(float64) != 0.9 {
		t.Fatalf("update lost: %v", got)
	}
	if err := tbl.Update(row(99, "none", 0)); err == nil {
		t.Fatal("update of missing key accepted")
	}
	if err := tbl.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(2); err == nil {
		t.Fatal("double delete accepted")
	}
	if _, err := tbl.Get(2); err == nil {
		t.Fatal("deleted row readable")
	}
}

func TestTableScan(t *testing.T) {
	tbl := newTestTable(t)
	const n = 500
	for i := 0; i < n; i++ {
		if err := tbl.Insert(row(int64(i), fmt.Sprintf("p%d", i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	err := tbl.Scan(func(tup Tuple) error {
		seen++
		return nil
	})
	if err != nil || seen != n {
		t.Fatalf("scan %d err %v", seen, err)
	}
}

func TestTriggersFire(t *testing.T) {
	tbl := newTestTable(t)
	var events []TriggerEvent
	var lastOld, lastNew Tuple
	tbl.AddTrigger(func(ev TriggerEvent, old, new Tuple) error {
		events = append(events, ev)
		lastOld, lastNew = old, new
		return nil
	})
	tbl.Insert(row(1, "a", 0.1))
	if len(events) != 1 || events[0] != AfterInsert || lastNew == nil || lastOld != nil {
		t.Fatalf("insert trigger: %v", events)
	}
	tbl.Update(row(1, "b", 0.2))
	if events[1] != AfterUpdate || lastOld[1].(string) != "a" || lastNew[1].(string) != "b" {
		t.Fatal("update trigger payload wrong")
	}
	tbl.Delete(1)
	if events[2] != AfterDelete || lastOld[1].(string) != "b" {
		t.Fatal("delete trigger payload wrong")
	}
}

func TestTriggerErrorPropagates(t *testing.T) {
	tbl := newTestTable(t)
	tbl.AddTrigger(func(ev TriggerEvent, old, new Tuple) error {
		return fmt.Errorf("boom")
	})
	if err := tbl.Insert(row(1, "a", 0.1)); err == nil {
		t.Fatal("trigger error swallowed")
	}
}

func TestCatalog(t *testing.T) {
	db, err := OpenDB(t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := paperSchema(t)
	if _, err := db.CreateTable("a", s); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("a", s); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := db.CreateTable("b", s); err != nil {
		t.Fatal(err)
	}
	names := db.Tables()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("tables=%v", names)
	}
	if _, err := db.Table("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("zzz"); err == nil {
		t.Fatal("missing table found")
	}
	if db.Pool("a") == nil {
		t.Fatal("no pool for table")
	}
	if err := db.DropTable("b"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("b"); err == nil {
		t.Fatal("double drop accepted")
	}
	aux, err := db.NewAuxPool("aux.pg")
	if err != nil || aux == nil {
		t.Fatalf("aux pool: %v", err)
	}
}

// Randomized crosscheck against a map model, exercising variable-size
// tuples, updates that relocate records, and deletes.
func TestTableRandomizedAgainstModel(t *testing.T) {
	tbl := newTestTable(t)
	r := rand.New(rand.NewSource(17))
	model := map[int64]string{}
	title := func() string {
		b := make([]byte, 1+r.Intn(120))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return string(b)
	}
	for op := 0; op < 4000; op++ {
		id := int64(r.Intn(300))
		_, exists := model[id]
		switch {
		case !exists:
			s := title()
			if err := tbl.Insert(row(id, s, r.Float64())); err != nil {
				t.Fatal(err)
			}
			model[id] = s
		case r.Float64() < 0.5:
			s := title()
			if err := tbl.Update(row(id, s, r.Float64())); err != nil {
				t.Fatal(err)
			}
			model[id] = s
		default:
			if err := tbl.Delete(id); err != nil {
				t.Fatal(err)
			}
			delete(model, id)
		}
	}
	if tbl.Len() != len(model) {
		t.Fatalf("len=%d model=%d", tbl.Len(), len(model))
	}
	for id, want := range model {
		got, err := tbl.Get(id)
		if err != nil || got[1].(string) != want {
			t.Fatalf("key %d: %v %v", id, got, err)
		}
	}
}
