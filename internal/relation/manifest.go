package relation

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"hazy/internal/storage"
	"hazy/internal/wal"
)

// The catalog manifest persists table schemas, heap page lists, and
// the write-ahead-log position whose effects the flushed pages
// contain, so a database directory survives process restarts — and
// crashes: Recover re-attaches the tables and then redoes the log
// tail past the recorded position. Classification views are
// deliberately NOT persisted: per the paper (§3.5.1), the view is a
// function of the entities and training examples, so it is recomputed
// on open rather than written back.

const manifestFile = "catalog.json"

type colManifest struct {
	Name string `json:"name"`
	Type int    `json:"type"`
}

type tableManifest struct {
	Name  string        `json:"name"`
	Cols  []colManifest `json:"cols"`
	Key   string        `json:"key"`
	Pages []uint32      `json:"pages"`
}

type manifest struct {
	Tables []tableManifest `json:"tables"`
	// Wal is the checkpoint position: recovery replays the log from
	// here. Absent in pre-WAL directories (replay from the start).
	Wal *wal.Pos `json:"wal,omitempty"`
	// Shipped is the replication resume cursor (replicas only): the
	// primary position one past the last shipped record whose effect
	// the checkpoint contains. Records applied after the checkpoint
	// advance it further during log replay (walShipped wrappers).
	Shipped *wal.Pos `json:"shipped,omitempty"`
}

// writeManifest renders and atomically replaces the catalog manifest,
// recording pos as the recovery start. Callers hold the exclusive
// checkpoint lock and (at least) the catalog read lock.
func (db *DB) writeManifest(pos wal.Pos) error {
	m := manifest{Wal: &pos}
	if db.shipped != (wal.Pos{}) {
		shipped := db.shipped
		m.Shipped = &shipped
	}
	for _, name := range db.tableNamesLocked() {
		t := db.tables[name]
		tm := tableManifest{Name: name, Key: t.schema.Cols[t.schema.Key].Name}
		for _, c := range t.schema.Cols {
			tm.Cols = append(tm.Cols, colManifest{Name: c.Name, Type: int(c.Type)})
		}
		for _, p := range t.HeapPages() {
			tm.Pages = append(tm.Pages, uint32(p))
		}
		m.Tables = append(m.Tables, tm)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("relation: marshal manifest: %w", err)
	}
	path := filepath.Join(db.dir, manifestFile)
	if err := storage.WriteFileAtomic(db.vfs, path, data, db.syncMode == wal.SyncAlways); err != nil {
		return fmt.Errorf("relation: write manifest: %w", err)
	}
	return nil
}

// Recover loads the catalog manifest (if present), re-attaches every
// table — page files are reopened and primary-key indexes rebuilt by
// scanning — and then redoes the write-ahead log from the manifest's
// checkpoint position, so mutations that never reached the heap pages
// are re-applied. A torn log tail ends the redo cleanly: the catalog
// reopens as a prefix of the logged history. Returns the recovered
// table names.
func (db *DB) Recover() ([]string, error) {
	data, err := db.vfs.ReadFile(filepath.Join(db.dir, manifestFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("relation: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("relation: parse manifest: %w", err)
	}
	start := wal.Pos{}
	if m.Wal != nil {
		start = *m.Wal
	}
	db.ckpt = start
	if m.Shipped != nil {
		db.shipped = *m.Shipped
	}
	// Pass 1: restore journaled full-page images, healing any torn
	// in-place page write before the heaps are scanned.
	if err := db.applyImagePass(start); err != nil {
		return nil, fmt.Errorf("relation: wal image restore: %w", err)
	}
	var names []string
	for _, tm := range m.Tables {
		cols := make([]Column, len(tm.Cols))
		for i, c := range tm.Cols {
			cols[i] = Column{Name: c.Name, Type: ColType(c.Type)}
		}
		schema, err := NewSchema(cols, tm.Key)
		if err != nil {
			return nil, fmt.Errorf("relation: manifest table %q: %w", tm.Name, err)
		}
		tbl, err := db.createTable(tm.Name, schema)
		if err != nil {
			return nil, err
		}
		pages := make([]storage.PageID, len(tm.Pages))
		for i, p := range tm.Pages {
			pages[i] = storage.PageID(p)
		}
		if err := tbl.recover(pages); err != nil {
			return nil, fmt.Errorf("relation: recover %q: %w", tm.Name, err)
		}
		names = append(names, tm.Name)
	}
	// Pass 2: redo the logical mutations past the checkpoint.
	if db.log != nil {
		err := db.log.Replay(start, func(_ wal.Pos, payload []byte) error {
			return db.replayMutation(payload)
		})
		if err != nil {
			return nil, fmt.Errorf("relation: wal redo: %w", err)
		}
	}
	return names, nil
}
