package relation

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"hazy/internal/storage"
)

// The catalog manifest persists table schemas and heap page lists so
// a database directory survives process restarts. Classification
// views are deliberately NOT persisted: per the paper (§3.5.1), the
// view is a function of the entities and training examples, so it is
// recomputed on open rather than written back.

const manifestFile = "catalog.json"

type colManifest struct {
	Name string `json:"name"`
	Type int    `json:"type"`
}

type tableManifest struct {
	Name  string        `json:"name"`
	Cols  []colManifest `json:"cols"`
	Key   string        `json:"key"`
	Pages []uint32      `json:"pages"`
}

type manifest struct {
	Tables []tableManifest `json:"tables"`
}

// Checkpoint flushes all buffer pools and writes the catalog
// manifest, making the current table contents recoverable by a later
// OpenDB + Recover.
func (db *DB) Checkpoint() error {
	for _, pool := range db.pools {
		if err := pool.FlushAll(); err != nil {
			return err
		}
	}
	for _, p := range db.pagers {
		if err := p.Sync(); err != nil {
			return err
		}
	}
	var m manifest
	for _, name := range db.Tables() {
		t := db.tables[name]
		tm := tableManifest{Name: name, Key: t.schema.Cols[t.schema.Key].Name}
		for _, c := range t.schema.Cols {
			tm.Cols = append(tm.Cols, colManifest{Name: c.Name, Type: int(c.Type)})
		}
		for _, p := range t.HeapPages() {
			tm.Pages = append(tm.Pages, uint32(p))
		}
		m.Tables = append(m.Tables, tm)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("relation: marshal manifest: %w", err)
	}
	tmp := filepath.Join(db.dir, manifestFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("relation: write manifest: %w", err)
	}
	return os.Rename(tmp, filepath.Join(db.dir, manifestFile))
}

// Recover loads the catalog manifest (if present) and re-attaches
// every table: page files are reopened and primary-key indexes are
// rebuilt by scanning. Returns the recovered table names.
func (db *DB) Recover() ([]string, error) {
	data, err := os.ReadFile(filepath.Join(db.dir, manifestFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("relation: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("relation: parse manifest: %w", err)
	}
	var names []string
	for _, tm := range m.Tables {
		cols := make([]Column, len(tm.Cols))
		for i, c := range tm.Cols {
			cols[i] = Column{Name: c.Name, Type: ColType(c.Type)}
		}
		schema, err := NewSchema(cols, tm.Key)
		if err != nil {
			return nil, fmt.Errorf("relation: manifest table %q: %w", tm.Name, err)
		}
		tbl, err := db.CreateTable(tm.Name, schema)
		if err != nil {
			return nil, err
		}
		pages := make([]storage.PageID, len(tm.Pages))
		for i, p := range tm.Pages {
			pages[i] = storage.PageID(p)
		}
		if err := tbl.recover(pages); err != nil {
			return nil, fmt.Errorf("relation: recover %q: %w", tm.Name, err)
		}
		names = append(names, tm.Name)
	}
	return names, nil
}
