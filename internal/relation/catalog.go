package relation

import (
	"fmt"
	"path/filepath"
	"sort"

	"hazy/internal/storage"
)

// DB is a catalog of tables, each backed by its own page file and
// buffer pool under a common directory.
type DB struct {
	dir       string
	poolPages int
	tables    map[string]*Table
	pagers    []*storage.Pager
	pools     map[string]*storage.BufferPool
}

// OpenDB creates a database rooted at dir; each table's buffer pool
// holds poolPages pages (default 256 ≈ 2 MiB when ≤ 0).
func OpenDB(dir string, poolPages int) *DB {
	if poolPages <= 0 {
		poolPages = 256
	}
	return &DB{
		dir:       dir,
		poolPages: poolPages,
		tables:    make(map[string]*Table),
		pools:     make(map[string]*storage.BufferPool),
	}
}

// CreateTable creates a new table with the given schema.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("relation: table %q already exists", name)
	}
	pool, err := db.newPool(name + ".tbl")
	if err != nil {
		return nil, err
	}
	tbl := NewTable(name, schema, storage.NewHeapFile(pool))
	db.tables[name] = tbl
	db.pools[name] = pool
	return tbl, nil
}

// newPool opens a page file under the DB directory and wraps it in a
// buffer pool. Exposed to sibling Hazy internals via NewAuxPool.
func (db *DB) newPool(file string) (*storage.BufferPool, error) {
	pager, err := storage.OpenPager(filepath.Join(db.dir, file))
	if err != nil {
		return nil, err
	}
	db.pagers = append(db.pagers, pager)
	return storage.NewBufferPool(pager, db.poolPages), nil
}

// NewAuxPool opens an auxiliary page file (e.g. for Hazy's clustered
// H table and its B+-tree) that is closed with the database.
func (db *DB) NewAuxPool(file string) (*storage.BufferPool, error) {
	return db.newPool(file)
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("relation: no table %q", name)
	}
	return t, nil
}

// Pool returns the buffer pool of the named table (for I/O stats).
func (db *DB) Pool(name string) *storage.BufferPool { return db.pools[name] }

// Tables lists table names, sorted.
func (db *DB) Tables() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DropTable removes the named table from the catalog. The backing
// file is left behind (reclaimed when the directory is removed).
func (db *DB) DropTable(name string) error {
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("relation: no table %q", name)
	}
	delete(db.tables, name)
	delete(db.pools, name)
	return nil
}

// Close checkpoints the catalog and closes all page files.
func (db *DB) Close() error {
	first := db.Checkpoint()
	for _, p := range db.pagers {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
