package relation

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"hazy/internal/obs"
	"hazy/internal/storage"
	"hazy/internal/wal"
)

// Options configures a DB's durability machinery.
type Options struct {
	// VFS is the file layer every pager and log segment opens
	// through (default the real filesystem); crash tests interpose
	// internal/storage/faultfs here.
	VFS storage.VFS
	// Fsync is the WAL commit policy (default wal.SyncAlways).
	Fsync wal.SyncMode
	// WALSegmentBytes caps a log segment before rotation — and a
	// rotation triggers a checkpoint (default 4 MiB).
	WALSegmentBytes int64
	// Metrics, when non-nil, registers the WAL's collectors and one
	// hits/misses/evictions/resident set per buffer pool (labeled
	// file=<page file>) on the shared registry.
	Metrics *obs.Registry
}

// DB is a catalog of tables, each backed by its own page file and
// buffer pool under a common directory, with one shared write-ahead
// log making mutations crash-recoverable.
type DB struct {
	dir       string
	poolPages int
	vfs       storage.VFS

	// catMu guards the catalog maps and the pager list: DDL mutates
	// them, while checkpoints — which can fire from an engine's
	// maintenance goroutine on segment rotation — iterate them.
	catMu  sync.RWMutex
	tables map[string]*Table
	pagers []*storage.Pager
	pools  map[string]*storage.BufferPool

	log      *wal.Log
	syncMode wal.SyncMode
	// ckptMu orders mutations against checkpoints: every mutation
	// holds it shared across its log-append + heap-apply so a
	// checkpoint (exclusive) sees no record whose heap effect is
	// still in flight.
	ckptMu   sync.RWMutex
	ckpt     wal.Pos // recovery start recorded in the manifest
	ckptHook func() error
	// shipped is the replication resume cursor: the primary position
	// one past the last shipped record this database applied (zero
	// when it never applied one). Written by the single applier under
	// ckptMu shared and by recovery; read under ckptMu exclusive.
	shipped wal.Pos
	// lastMeta is the newest walMeta blob recovery replayed (nil when
	// none): the DDL reconcile seed for a reopening replica.
	lastMeta []byte

	metrics *obs.Registry // nil: pools and the WAL stay unregistered
}

// OpenDB creates a database rooted at dir; each table's buffer pool
// holds poolPages pages (default 256 ≈ 2 MiB when ≤ 0).
func OpenDB(dir string, poolPages int) (*DB, error) {
	return OpenDBWith(dir, poolPages, Options{})
}

// OpenDBWith is OpenDB with explicit durability options.
func OpenDBWith(dir string, poolPages int, opts Options) (*DB, error) {
	if poolPages <= 0 {
		poolPages = 256
	}
	if opts.VFS == nil {
		opts.VFS = storage.OS
	}
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{
		SegmentBytes: opts.WALSegmentBytes,
		Mode:         opts.Fsync,
		VFS:          opts.VFS,
		Metrics:      opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return &DB{
		dir:       dir,
		poolPages: poolPages,
		vfs:       opts.VFS,
		tables:    make(map[string]*Table),
		pools:     make(map[string]*storage.BufferPool),
		log:       log,
		syncMode:  opts.Fsync,
		metrics:   opts.Metrics,
	}, nil
}

// CreateTable creates a new table with the given schema. The creation
// is durable before it returns: DDL rides on a checkpoint (rewriting
// the manifest) rather than on log records, so every logged mutation
// always references a manifest table.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	tbl, err := db.createTable(name, schema)
	if err != nil {
		return nil, err
	}
	if err := db.Checkpoint(); err != nil {
		return nil, err
	}
	return tbl, nil
}

// createTable adds the table to the catalog without checkpointing —
// the shared path for CreateTable and manifest recovery.
func (db *DB) createTable(name string, schema Schema) (*Table, error) {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("relation: table %q already exists", name)
	}
	pool, err := db.newPoolLocked(name + ".tbl")
	if err != nil {
		return nil, err
	}
	if db.syncMode == wal.SyncAlways {
		// WAL rule + torn-page defense for table pages: journal the
		// full image and fsync the log before any in-place write-back.
		pool.SetBeforeWriteBack(db.pageImageHook(name+".tbl"), db.logSyncBarrier)
	}
	tbl := NewTable(name, schema, storage.NewHeapFile(pool))
	tbl.db = db
	db.tables[name] = tbl
	db.pools[name] = pool
	return tbl, nil
}

// NewAuxPool opens an auxiliary page file (e.g. for Hazy's clustered
// H table and its B+-tree) that is closed with the database.
func (db *DB) NewAuxPool(file string) (*storage.BufferPool, error) {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	return db.newPoolLocked(file)
}

// newPoolLocked opens a page file under the DB directory and wraps it
// in a buffer pool. Callers hold catMu.
func (db *DB) newPoolLocked(file string) (*storage.BufferPool, error) {
	path := filepath.Join(db.dir, file)
	// A crash can tear a file-extending page allocation; round the
	// orphaned partial page away before the pager refuses the file.
	if err := repairPageFile(db.vfs, path); err != nil {
		return nil, err
	}
	pager, err := storage.OpenPagerVFS(db.vfs, path)
	if err != nil {
		return nil, err
	}
	db.pagers = append(db.pagers, pager)
	pool := storage.NewBufferPool(pager, db.poolPages)
	pool.RegisterMetrics(db.metrics, obs.L("file", file)...)
	return pool, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.catMu.RLock()
	defer db.catMu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("relation: no table %q", name)
	}
	return t, nil
}

// Pool returns the buffer pool of the named table (for I/O stats).
func (db *DB) Pool(name string) *storage.BufferPool {
	db.catMu.RLock()
	defer db.catMu.RUnlock()
	return db.pools[name]
}

// Tables lists table names, sorted.
func (db *DB) Tables() []string {
	db.catMu.RLock()
	defer db.catMu.RUnlock()
	return db.tableNamesLocked()
}

// tableNamesLocked lists table names, sorted. Callers hold catMu.
func (db *DB) tableNamesLocked() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DropTable removes the named table from the catalog and checkpoints
// so the removal is durable (and no logged record can resurrect it).
// The backing file is left behind (reclaimed when the directory is
// removed).
func (db *DB) DropTable(name string) error {
	db.catMu.Lock()
	if _, ok := db.tables[name]; !ok {
		db.catMu.Unlock()
		return fmt.Errorf("relation: no table %q", name)
	}
	delete(db.tables, name)
	delete(db.pools, name)
	db.catMu.Unlock()
	return db.Checkpoint()
}

// Close checkpoints the catalog and closes all page files and the
// write-ahead log.
func (db *DB) Close() error {
	first := db.Checkpoint()
	if err := db.closeFiles(); err != nil && first == nil {
		first = err
	}
	return first
}

// Abort closes all page files and the log WITHOUT checkpointing: the
// cleanup path for a failed open, where writing a manifest from
// partially recovered state could overwrite a good one.
func (db *DB) Abort() error { return db.closeFiles() }

func (db *DB) closeFiles() error {
	db.catMu.RLock()
	defer db.catMu.RUnlock()
	var first error
	for _, p := range db.pagers {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	if db.log != nil {
		if err := db.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
