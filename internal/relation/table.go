package relation

import (
	"fmt"
	"sync"

	"hazy/internal/storage"
)

// TriggerEvent says which mutation fired a trigger.
type TriggerEvent int

// Trigger events.
const (
	AfterInsert TriggerEvent = iota
	AfterUpdate
	AfterDelete
)

// Trigger is invoked after a mutation commits to the heap. For
// AfterUpdate the old tuple is passed as old; otherwise old is nil.
// A trigger error aborts the statement (the mutation itself is not
// rolled back — Hazy's triggers only propagate, they do not veto).
type Trigger func(ev TriggerEvent, old, new Tuple) error

// Table is a heap-backed relation with a hash primary-key index and
// statement-level triggers.
//
// Heap and index access is guarded by an internal RWMutex, so point
// reads and scans are safe concurrently with mutations — in
// particular with an attached maintenance engine's goroutine
// inserting durable rows while another session scans the table over
// SQL. Triggers fire AFTER the row lock is released (they may scan
// this very table, e.g. the retrain-from-scratch path), so trigger
// bodies and the view maintenance they perform still need the
// caller-level serialization they always had.
type Table struct {
	name   string
	schema Schema
	// db is the owning catalog, carrying the write-ahead log every
	// mutation appends to before touching the heap; nil for
	// standalone tables built with NewTable (unlogged).
	db *DB

	mu      sync.RWMutex // guards heap, pk, trigger
	heap    *storage.HeapFile
	pk      map[int64]storage.RID
	trigger []Trigger
}

// NewTable creates an empty table over the given heap.
func NewTable(name string, schema Schema, heap *storage.HeapFile) *Table {
	return &Table{
		name:   name,
		schema: schema,
		heap:   heap,
		pk:     make(map[int64]storage.RID),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.pk)
}

// AddTrigger registers fn to run after mutations.
func (t *Table) AddTrigger(fn Trigger) {
	t.mu.Lock()
	t.trigger = append(t.trigger, fn)
	t.mu.Unlock()
}

func (t *Table) fire(ev TriggerEvent, old, new Tuple) error {
	t.mu.RLock()
	triggers := t.trigger
	t.mu.RUnlock()
	for _, fn := range triggers {
		if err := fn(ev, old, new); err != nil {
			return fmt.Errorf("relation: trigger on %s: %w", t.name, err)
		}
	}
	return nil
}

// Insert adds tup, rejecting duplicate keys, then fires AfterInsert.
// The row is logged to the WAL before it touches the heap and the log
// is committed (one fsync in durable mode) before triggers fire.
func (t *Table) Insert(tup Tuple) error { return t.insert(tup, true) }

// InsertDeferred is Insert without the per-statement log commit: the
// row is logged and applied, but the caller owns the commit barrier
// (DB.CommitLog) and must invoke it before acknowledging the write.
// The maintenance engine uses it to pay one fsync per applied batch.
func (t *Table) InsertDeferred(tup Tuple) error { return t.insert(tup, false) }

func (t *Table) insert(tup Tuple, commit bool) error {
	if err := checkTypes(t.schema, tup); err != nil {
		return err
	}
	key := tup.Key(t.schema)
	rec, err := EncodeTuple(t.schema, tup)
	if err != nil {
		return err
	}
	// Reject anything the heap would deterministically refuse BEFORE
	// logging: a logged record that fails the same way on every redo
	// would make the database unopenable.
	if len(rec) > storage.MaxHeapRecord {
		return fmt.Errorf("relation: record of %d bytes exceeds heap limit %d in %s", len(rec), storage.MaxHeapRecord, t.name)
	}
	unlock := t.lockMutation()
	t.mu.Lock()
	if _, dup := t.pk[key]; dup {
		t.mu.Unlock()
		unlock()
		return fmt.Errorf("relation: duplicate key %d in %s", key, t.name)
	}
	if err := t.logMutation(walInsert, rec); err != nil {
		t.mu.Unlock()
		unlock()
		return err
	}
	rid, err := t.heap.Insert(rec)
	if err != nil {
		// The insert is already logged; neutralize it so recovery
		// never replays a statement the client saw fail.
		t.compensate(walDelete, deleteBody(key))
		t.mu.Unlock()
		unlock()
		return err
	}
	t.pk[key] = rid
	t.mu.Unlock()
	unlock()
	if commit {
		if err := t.commitWAL(); err != nil {
			return err
		}
	}
	return t.fire(AfterInsert, nil, tup)
}

// Get returns the tuple with the given key.
func (t *Table) Get(key int64) (Tuple, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rid, ok := t.pk[key]
	if !ok {
		return nil, fmt.Errorf("relation: no key %d in %s", key, t.name)
	}
	rec, err := t.heap.Get(rid)
	if err != nil {
		return nil, err
	}
	return DecodeTuple(t.schema, rec)
}

// Has reports whether key exists.
func (t *Table) Has(key int64) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.pk[key]
	return ok
}

// Update replaces the tuple with tup's key, firing AfterUpdate. Like
// Insert, the new image is logged before the heap changes and the log
// commits before triggers fire.
func (t *Table) Update(tup Tuple) error {
	if err := checkTypes(t.schema, tup); err != nil {
		return err
	}
	key := tup.Key(t.schema)
	rec, err := EncodeTuple(t.schema, tup)
	if err != nil {
		return err
	}
	if len(rec) > storage.MaxHeapRecord {
		return fmt.Errorf("relation: record of %d bytes exceeds heap limit %d in %s", len(rec), storage.MaxHeapRecord, t.name)
	}
	unlock := t.lockMutation()
	t.mu.Lock()
	rid, ok := t.pk[key]
	if !ok {
		t.mu.Unlock()
		unlock()
		return fmt.Errorf("relation: update of missing key %d in %s", key, t.name)
	}
	oldRec, err := t.heap.Get(rid)
	if err != nil {
		t.mu.Unlock()
		unlock()
		return err
	}
	old, err := DecodeTuple(t.schema, oldRec)
	if err != nil {
		t.mu.Unlock()
		unlock()
		return err
	}
	if err := t.logMutation(walUpdate, rec); err != nil {
		t.mu.Unlock()
		unlock()
		return err
	}
	nrid, err := t.heap.Update(rid, rec)
	if err != nil {
		// Logged but not applied: log the old image back so recovery
		// lands on the pre-statement row.
		t.compensate(walUpdate, oldRec)
		t.mu.Unlock()
		unlock()
		return err
	}
	t.pk[key] = nrid
	t.mu.Unlock()
	unlock()
	if err := t.commitWAL(); err != nil {
		return err
	}
	return t.fire(AfterUpdate, old, tup)
}

// Delete removes the tuple with key, firing AfterDelete.
func (t *Table) Delete(key int64) error {
	unlock := t.lockMutation()
	t.mu.Lock()
	rid, ok := t.pk[key]
	if !ok {
		t.mu.Unlock()
		unlock()
		return fmt.Errorf("relation: delete of missing key %d in %s", key, t.name)
	}
	rec, err := t.heap.Get(rid)
	if err != nil {
		t.mu.Unlock()
		unlock()
		return err
	}
	old, err := DecodeTuple(t.schema, rec)
	if err != nil {
		t.mu.Unlock()
		unlock()
		return err
	}
	if err := t.logMutation(walDelete, deleteBody(key)); err != nil {
		t.mu.Unlock()
		unlock()
		return err
	}
	if err := t.heap.Delete(rid); err != nil {
		// Logged but not applied: re-log the surviving row so replay's
		// delete-then-insert nets out to the row still being there.
		t.compensate(walInsert, rec)
		t.mu.Unlock()
		unlock()
		return err
	}
	delete(t.pk, key)
	t.mu.Unlock()
	unlock()
	if err := t.commitWAL(); err != nil {
		return err
	}
	return t.fire(AfterDelete, old, nil)
}

// HeapPages exposes the backing heap's page list (for the catalog
// manifest).
func (t *Table) HeapPages() []storage.PageID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.Pages()
}

// recover re-attaches the table to previously written heap pages and
// rebuilds the primary-key hash index by scanning.
func (t *Table) recover(pages []storage.PageID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.heap.SetPages(pages); err != nil {
		return err
	}
	return t.heap.Scan(func(rid storage.RID, rec []byte) error {
		tup, err := DecodeTuple(t.schema, rec)
		if err != nil {
			return err
		}
		t.pk[tup.Key(t.schema)] = rid
		return nil
	})
}

// Scan iterates all tuples in heap order, holding the table's read
// lock for the duration: the callback must not mutate this table.
func (t *Table) Scan(fn func(Tuple) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.Scan(func(_ storage.RID, rec []byte) error {
		tup, err := DecodeTuple(t.schema, rec)
		if err != nil {
			return err
		}
		return fn(tup)
	})
}
