package relation

import (
	"fmt"

	"hazy/internal/storage"
)

// TriggerEvent says which mutation fired a trigger.
type TriggerEvent int

// Trigger events.
const (
	AfterInsert TriggerEvent = iota
	AfterUpdate
	AfterDelete
)

// Trigger is invoked after a mutation commits to the heap. For
// AfterUpdate the old tuple is passed as old; otherwise old is nil.
// A trigger error aborts the statement (the mutation itself is not
// rolled back — Hazy's triggers only propagate, they do not veto).
type Trigger func(ev TriggerEvent, old, new Tuple) error

// Table is a heap-backed relation with a hash primary-key index and
// statement-level triggers.
type Table struct {
	name    string
	schema  Schema
	heap    *storage.HeapFile
	pk      map[int64]storage.RID
	trigger []Trigger
}

// NewTable creates an empty table over the given heap.
func NewTable(name string, schema Schema, heap *storage.HeapFile) *Table {
	return &Table{
		name:   name,
		schema: schema,
		heap:   heap,
		pk:     make(map[int64]storage.RID),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.pk) }

// AddTrigger registers fn to run after mutations.
func (t *Table) AddTrigger(fn Trigger) { t.trigger = append(t.trigger, fn) }

func (t *Table) fire(ev TriggerEvent, old, new Tuple) error {
	for _, fn := range t.trigger {
		if err := fn(ev, old, new); err != nil {
			return fmt.Errorf("relation: trigger on %s: %w", t.name, err)
		}
	}
	return nil
}

// Insert adds tup, rejecting duplicate keys, then fires AfterInsert.
func (t *Table) Insert(tup Tuple) error {
	if err := checkTypes(t.schema, tup); err != nil {
		return err
	}
	key := tup.Key(t.schema)
	if _, dup := t.pk[key]; dup {
		return fmt.Errorf("relation: duplicate key %d in %s", key, t.name)
	}
	rec, err := EncodeTuple(t.schema, tup)
	if err != nil {
		return err
	}
	rid, err := t.heap.Insert(rec)
	if err != nil {
		return err
	}
	t.pk[key] = rid
	return t.fire(AfterInsert, nil, tup)
}

// Get returns the tuple with the given key.
func (t *Table) Get(key int64) (Tuple, error) {
	rid, ok := t.pk[key]
	if !ok {
		return nil, fmt.Errorf("relation: no key %d in %s", key, t.name)
	}
	rec, err := t.heap.Get(rid)
	if err != nil {
		return nil, err
	}
	return DecodeTuple(t.schema, rec)
}

// Has reports whether key exists.
func (t *Table) Has(key int64) bool {
	_, ok := t.pk[key]
	return ok
}

// Update replaces the tuple with tup's key, firing AfterUpdate.
func (t *Table) Update(tup Tuple) error {
	if err := checkTypes(t.schema, tup); err != nil {
		return err
	}
	key := tup.Key(t.schema)
	rid, ok := t.pk[key]
	if !ok {
		return fmt.Errorf("relation: update of missing key %d in %s", key, t.name)
	}
	oldRec, err := t.heap.Get(rid)
	if err != nil {
		return err
	}
	old, err := DecodeTuple(t.schema, oldRec)
	if err != nil {
		return err
	}
	rec, err := EncodeTuple(t.schema, tup)
	if err != nil {
		return err
	}
	nrid, err := t.heap.Update(rid, rec)
	if err != nil {
		return err
	}
	t.pk[key] = nrid
	return t.fire(AfterUpdate, old, tup)
}

// Delete removes the tuple with key, firing AfterDelete.
func (t *Table) Delete(key int64) error {
	rid, ok := t.pk[key]
	if !ok {
		return fmt.Errorf("relation: delete of missing key %d in %s", key, t.name)
	}
	rec, err := t.heap.Get(rid)
	if err != nil {
		return err
	}
	old, err := DecodeTuple(t.schema, rec)
	if err != nil {
		return err
	}
	if err := t.heap.Delete(rid); err != nil {
		return err
	}
	delete(t.pk, key)
	return t.fire(AfterDelete, old, nil)
}

// HeapPages exposes the backing heap's page list (for the catalog
// manifest).
func (t *Table) HeapPages() []storage.PageID { return t.heap.Pages() }

// recover re-attaches the table to previously written heap pages and
// rebuilds the primary-key hash index by scanning.
func (t *Table) recover(pages []storage.PageID) error {
	t.heap.SetPages(pages)
	return t.heap.Scan(func(rid storage.RID, rec []byte) error {
		tup, err := DecodeTuple(t.schema, rec)
		if err != nil {
			return err
		}
		t.pk[tup.Key(t.schema)] = rid
		return nil
	})
}

// Scan iterates all tuples in heap order.
func (t *Table) Scan(fn func(Tuple) error) error {
	return t.heap.Scan(func(_ storage.RID, rec []byte) error {
		tup, err := DecodeTuple(t.schema, rec)
		if err != nil {
			return err
		}
		return fn(tup)
	})
}
