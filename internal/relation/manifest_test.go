package relation

import (
	"testing"

	"hazy/internal/vector"
)

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := OpenDB(dir, 16)
	schema, err := NewSchema([]Column{
		{"id", TInt64}, {"name", TString}, {"score", TFloat64}, {"f", TVector},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("things", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		err := tbl.Insert(Tuple{i, "thing", float64(i) / 7,
			vector.NewSparse([]int32{int32(i % 9)}, []float64{1})})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := OpenDB(dir, 16)
	defer db2.Close()
	names, err := db2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "things" {
		t.Fatalf("recovered %v", names)
	}
	tbl2, err := db2.Table("things")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 299 {
		t.Fatalf("recovered %d rows", tbl2.Len())
	}
	got, err := tbl2.Get(42)
	if err != nil {
		t.Fatal(err)
	}
	if got[2].(float64) != 6.0 {
		t.Fatalf("row 42: %v", got)
	}
	if _, err := tbl2.Get(5); err == nil {
		t.Fatal("deleted row recovered")
	}
	// Recovered table accepts writes.
	if err := tbl2.Insert(Tuple{int64(1000), "new", 1.0, vector.Vector{}}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverNoManifest(t *testing.T) {
	db := OpenDB(t.TempDir(), 8)
	defer db.Close()
	names, err := db.Recover()
	if err != nil || names != nil {
		t.Fatalf("fresh dir: %v %v", names, err)
	}
}
