package relation

import (
	"testing"

	"hazy/internal/vector"
)

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := NewSchema([]Column{
		{"id", TInt64}, {"name", TString}, {"score", TFloat64}, {"f", TVector},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("things", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		err := tbl.Insert(Tuple{i, "thing", float64(i) / 7,
			vector.NewSparse([]int32{int32(i % 9)}, []float64{1})})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDB(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	names, err := db2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "things" {
		t.Fatalf("recovered %v", names)
	}
	tbl2, err := db2.Table("things")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 299 {
		t.Fatalf("recovered %d rows", tbl2.Len())
	}
	got, err := tbl2.Get(42)
	if err != nil {
		t.Fatal(err)
	}
	if got[2].(float64) != 6.0 {
		t.Fatalf("row 42: %v", got)
	}
	if _, err := tbl2.Get(5); err == nil {
		t.Fatal("deleted row recovered")
	}
	// Recovered table accepts writes.
	if err := tbl2.Insert(Tuple{int64(1000), "new", 1.0, vector.Vector{}}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverNoManifest(t *testing.T) {
	db, err := OpenDB(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	names, err := db.Recover()
	if err != nil || names != nil {
		t.Fatalf("fresh dir: %v %v", names, err)
	}
}

// TestWALRecoverWithoutClose pins the write-ahead path at the
// relation layer: rows inserted after the last checkpoint live only
// in the log; reopening the directory without a clean Close (no
// final checkpoint) must redo them — including an update and a
// delete — from the log tail.
func TestWALRecoverWithoutClose(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := NewSchema([]Column{{"id", TInt64}, {"name", TString}}, "id")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", schema) // checkpoints (DDL floor)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		if err := tbl.Insert(Tuple{i, "v"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Update(Tuple{int64(7), "updated"}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(9); err != nil {
		t.Fatal(err)
	}
	// No db.Close(), no Checkpoint: everything since CreateTable is
	// in the WAL only (the pool never flushed — 50 tiny rows fit one
	// resident page).

	db2, err := OpenDB(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 49 {
		t.Fatalf("recovered %d rows, want 49", tbl2.Len())
	}
	got, err := tbl2.Get(7)
	if err != nil || got[1].(string) != "updated" {
		t.Fatalf("update not redone: %v, %v", got, err)
	}
	if _, err := tbl2.Get(9); err == nil {
		t.Fatal("deleted row resurrected")
	}
	// A second crash-reopen over the same un-checkpointed state must
	// land on the same answer (idempotent redo).
	db3, err := OpenDB(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if _, err := db3.Recover(); err != nil {
		t.Fatal(err)
	}
	tbl3, err := db3.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tbl3.Len() != 49 {
		t.Fatalf("second recovery: %d rows, want 49", tbl3.Len())
	}
}
