package relation

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"hazy/internal/storage"
	"hazy/internal/wal"
)

// Log shipping at the relation layer: a primary exposes its WAL and a
// consistent checkpoint image; a replica applies the shipped records
// through the same heap/index/trigger machinery a local mutation
// uses, re-journaling each one locally wrapped in a walShipped record
// that carries the primary position it came from. A replica's crash
// recovery is therefore the ordinary Recover path — the wrapped
// records replay idempotently — and the resume cursor is exact: the
// last wrapped record the local log retained IS the position to
// resume the stream from, so a crash can never double-apply a record
// whose effect (and trigger) already ran.

// Replication op codes, continuing the durability.go WAL code space.
const (
	// walMeta carries an opaque catalog-metadata blob (the hazy-level
	// manifest) appended by the primary after every DDL so schema
	// changes ride the same total order as the mutations that follow
	// them. Recovery skips it; a replica's applier reconciles on it.
	walMeta = byte(5)
	// walShipped wraps one applied primary record on a replica:
	// [4B seg][8B off] — the primary position to resume from once this
	// record is applied — followed by the original payload.
	walShipped = byte(6)
)

// Shippable reports whether a WAL record is worth streaming to a
// replica. Full-page images are not: they describe the primary's page
// files, and the replica maintains its own.
func Shippable(payload []byte) bool {
	return len(payload) > 0 && payload[0] != walImage
}

// encodeShipped frames a walShipped body: the primary resume position
// followed by the record payload it covers.
func encodeShipped(resume wal.Pos, payload []byte) []byte {
	buf := make([]byte, 12+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], resume.Seg)
	binary.LittleEndian.PutUint64(buf[4:12], uint64(resume.Off))
	copy(buf[12:], payload)
	return buf
}

func decodeShipped(body []byte) (wal.Pos, []byte, error) {
	if len(body) < 12 {
		return wal.Pos{}, nil, fmt.Errorf("relation: shipped record body of %d bytes", len(body))
	}
	pos := wal.Pos{
		Seg: binary.LittleEndian.Uint32(body[0:4]),
		Off: int64(binary.LittleEndian.Uint64(body[4:12])),
	}
	return pos, body[12:], nil
}

// Log exposes the write-ahead log for shipping (a Follower per
// replica connection). Nil when the DB was opened without one.
func (db *DB) Log() *wal.Log { return db.log }

// AppendMetaRecord appends an opaque catalog-metadata record to the
// log, so connected replicas receive the DDL it describes in stream
// order — before any mutation on the objects it declares. It only
// appends: the caller commits (CommitLog) once it has released
// whatever locks the rotation-triggered checkpoint hook would need.
// Recovery ignores these records beyond remembering the newest one.
func (db *DB) AppendMetaRecord(body []byte) error {
	if db.log == nil {
		return nil
	}
	db.ckptMu.RLock()
	_, err := db.log.Append(encodeMutation(walMeta, "", body))
	db.ckptMu.RUnlock()
	return err
}

// LastMeta returns the newest catalog-metadata blob seen by recovery,
// or nil. A replica reconciles DDL against it at startup: a crash
// between journaling a shipped meta record and finishing its side
// effects would otherwise skip that DDL forever (the record replays as
// a no-op and the stream resumes past it).
func (db *DB) LastMeta() []byte { return db.lastMeta }

// Bootstrapped reports whether dir holds a database image (its
// manifest exists) — the probe a replica boot uses to decide between
// fetching a fresh image and resuming from local state.
func Bootstrapped(vfs storage.VFS, dir string) bool {
	_, err := vfs.ReadFile(filepath.Join(dir, manifestFile))
	return err == nil
}

// LastShipped returns the primary position one past the last shipped
// record this database applied — the position to resume the stream
// from. Zero when the database never applied a shipped record.
func (db *DB) LastShipped() wal.Pos {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.shipped
}

// ApplyShipped applies one primary WAL record on a replica: the
// record is journaled locally (wrapped with resume, the primary
// position one past it), applied to the heap and primary-key index
// with the usual idempotent-redo semantics, and its trigger is fired
// — so view maintenance sees exactly the primary's mutation order.
// Catalog-metadata records carry no heap effect; their body is
// returned for the caller to reconcile DDL against. The caller owns
// the commit barrier (CommitLog once per applied batch) and must be
// the only writer on this database.
func (db *DB) ApplyShipped(resume wal.Pos, payload []byte) (meta []byte, err error) {
	op, name, body, err := decodeMutation(payload)
	if err != nil {
		return nil, err
	}
	// A promoted replica's log wraps what it applied; if this primary
	// was once a replica itself, unwrap down to the original record.
	for op == walShipped {
		_, inner, derr := decodeShipped(body)
		if derr != nil {
			return nil, derr
		}
		payload = inner
		if op, name, body, err = decodeMutation(payload); err != nil {
			return nil, err
		}
	}
	db.ckptMu.RLock()
	if db.log != nil {
		if _, aerr := db.log.Append(encodeMutation(walShipped, "", encodeShipped(resume, payload))); aerr != nil {
			db.ckptMu.RUnlock()
			return nil, aerr
		}
	}
	db.shipped = resume
	var fire func() error
	switch op {
	case walImage:
		// The primary's page layout, not ours: cursor-only record.
	case walMeta:
		meta = body
	default:
		fire, err = db.applyShippedMutation(op, name, body)
	}
	db.ckptMu.RUnlock()
	if err != nil {
		return nil, err
	}
	// Like every local mutation, triggers fire outside the row lock.
	if fire != nil {
		err = fire()
	}
	return meta, err
}

// applyShippedMutation applies one decoded mutation to the heap and
// index — replayMutation's idempotent semantics — and returns the
// trigger invocation to run after the locks drop. Callers hold
// ckptMu shared (the record is already journaled).
func (db *DB) applyShippedMutation(op byte, name string, body []byte) (fire func() error, err error) {
	db.catMu.RLock()
	t, ok := db.tables[name]
	db.catMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("relation: shipped record references unknown table %q", name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	switch op {
	case walInsert, walUpdate:
		tup, err := DecodeTuple(t.schema, body)
		if err != nil {
			return nil, fmt.Errorf("relation: shipped record for %q: %w", name, err)
		}
		key := tup.Key(t.schema)
		rid, exists := t.pk[key]
		if op == walInsert {
			if exists {
				return nil, nil // re-delivered; effect (and trigger) already ran
			}
			nrid, err := t.heap.Insert(body)
			if err != nil {
				return nil, err
			}
			t.pk[key] = nrid
			return func() error { return t.fire(AfterInsert, nil, tup) }, nil
		}
		if !exists {
			return nil, fmt.Errorf("relation: shipped update of missing key %d in %q", key, name)
		}
		oldRec, err := t.heap.Get(rid)
		if err != nil {
			return nil, err
		}
		old, err := DecodeTuple(t.schema, oldRec)
		if err != nil {
			return nil, err
		}
		nrid, err := t.heap.Update(rid, body)
		if err != nil {
			return nil, err
		}
		t.pk[key] = nrid
		return func() error { return t.fire(AfterUpdate, old, tup) }, nil
	case walDelete:
		if len(body) != 8 {
			return nil, fmt.Errorf("relation: shipped delete body of %d bytes", len(body))
		}
		key := int64(binary.LittleEndian.Uint64(body))
		rid, exists := t.pk[key]
		if !exists {
			return nil, nil // re-delivered
		}
		rec, err := t.heap.Get(rid)
		if err != nil {
			return nil, err
		}
		old, err := DecodeTuple(t.schema, rec)
		if err != nil {
			return nil, err
		}
		if err := t.heap.Delete(rid); err != nil {
			return nil, err
		}
		delete(t.pk, key)
		return func() error { return t.fire(AfterDelete, old, nil) }, nil
	default:
		return nil, fmt.Errorf("relation: shipped record with unknown op %d", op)
	}
}

// CheckpointImage produces a consistent bootstrap image for a fresh
// replica: the log is committed and the whole catalog checkpointed
// under the exclusive checkpoint lock, then the manifest, every
// table's page file, and each extra file (e.g. the hazy-level
// manifest) are streamed through send while no mutation can run. The
// returned position is the exact point a replica applying this image
// must resume the record stream from.
func (db *DB) CheckpointImage(extra []string, send func(name string, data []byte) error) (wal.Pos, error) {
	db.ckptMu.Lock()
	err := db.imageLocked(extra, send)
	pos := db.ckpt
	db.ckptMu.Unlock()
	if err != nil {
		return pos, err
	}
	if db.log != nil {
		if err := db.log.Checkpoint(pos); err != nil {
			return pos, err
		}
	}
	return pos, nil
}

func (db *DB) imageLocked(extra []string, send func(string, []byte) error) error {
	// Commit first so the checkpoint position equals the committed
	// end: the image then contains no effect of a record the replica
	// could not resume past (appended but unsynced bytes).
	if db.log != nil {
		if err := db.log.Commit(); err != nil {
			return err
		}
	}
	if err := db.checkpointLocked(); err != nil {
		return err
	}
	db.catMu.RLock()
	files := []string{manifestFile}
	for _, name := range db.tableNamesLocked() {
		files = append(files, name+".tbl")
	}
	db.catMu.RUnlock()
	files = append(files, extra...)
	for _, f := range files {
		data, err := db.vfs.ReadFile(filepath.Join(db.dir, f))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return fmt.Errorf("relation: image read %s: %w", f, err)
		}
		if err := send(f, data); err != nil {
			return err
		}
	}
	return nil
}

// PrimeReplicaManifest rewrites an imported checkpoint image's
// manifest for its new home: the primary's WAL position is dropped
// (the replica's own log starts empty — its numbering is unrelated)
// and the shipped cursor is set to the image position, so the first
// open resumes the stream exactly where the image left off.
func PrimeReplicaManifest(vfs storage.VFS, dir string, shipped wal.Pos) error {
	path := filepath.Join(dir, manifestFile)
	data, err := vfs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("relation: prime replica manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("relation: prime replica manifest: %w", err)
	}
	m.Wal = nil
	m.Shipped = &shipped
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("relation: prime replica manifest: %w", err)
	}
	if err := storage.WriteFileAtomic(vfs, path, out, true); err != nil {
		return fmt.Errorf("relation: prime replica manifest: %w", err)
	}
	return nil
}
