// Package relation implements the relational layer Hazy's paper gets
// from PostgreSQL: typed schemas, tuples, heap-backed tables with a
// hash primary-key index, insert/update/delete triggers (the paper
// monitors the training-example tables "using standard triggers",
// §2.1/§4), and a catalog.
package relation

import (
	"encoding/binary"
	"fmt"
	"math"

	"hazy/internal/vector"
)

// ColType enumerates supported column types.
type ColType int

// Supported column types.
const (
	TInt64 ColType = iota
	TFloat64
	TString
	TVector
)

// String names the type as used in error messages and DDL.
func (t ColType) String() string {
	switch t {
	case TInt64:
		return "BIGINT"
	case TFloat64:
		return "DOUBLE"
	case TString:
		return "TEXT"
	case TVector:
		return "VECTOR"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column is one named, typed attribute.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table's attributes. Key is the index of the
// primary-key column, which must have type TInt64.
type Schema struct {
	Cols []Column
	Key  int
}

// NewSchema validates and returns a schema with the named key column.
func NewSchema(cols []Column, keyName string) (Schema, error) {
	key := -1
	seen := map[string]bool{}
	for i, c := range cols {
		if seen[c.Name] {
			return Schema{}, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		if c.Name == keyName {
			key = i
		}
	}
	if key < 0 {
		return Schema{}, fmt.Errorf("relation: key column %q not in schema", keyName)
	}
	if cols[key].Type != TInt64 {
		return Schema{}, fmt.Errorf("relation: key column %q must be BIGINT", keyName)
	}
	return Schema{Cols: cols, Key: key}, nil
}

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Tuple is one row; values are positionally matched to Schema.Cols
// with dynamic types int64, float64, string, or vector.Vector.
type Tuple []any

// Key extracts the tuple's primary key under schema s.
func (t Tuple) Key(s Schema) int64 { return t[s.Key].(int64) }

// checkTypes verifies the tuple conforms to the schema.
func checkTypes(s Schema, t Tuple) error {
	if len(t) != len(s.Cols) {
		return fmt.Errorf("relation: tuple arity %d, schema arity %d", len(t), len(s.Cols))
	}
	for i, c := range s.Cols {
		ok := false
		switch c.Type {
		case TInt64:
			_, ok = t[i].(int64)
		case TFloat64:
			_, ok = t[i].(float64)
		case TString:
			_, ok = t[i].(string)
		case TVector:
			_, ok = t[i].(vector.Vector)
		}
		if !ok {
			return fmt.Errorf("relation: column %q wants %s, got %T", c.Name, c.Type, t[i])
		}
	}
	return nil
}

// EncodeTuple serializes t per schema s into a heap record.
func EncodeTuple(s Schema, t Tuple) ([]byte, error) {
	if err := checkTypes(s, t); err != nil {
		return nil, err
	}
	var buf []byte
	for i, c := range s.Cols {
		switch c.Type {
		case TInt64:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(t[i].(int64)))
		case TFloat64:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t[i].(float64)))
		case TString:
			str := t[i].(string)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(str)))
			buf = append(buf, str...)
		case TVector:
			buf = t[i].(vector.Vector).Encode(buf)
		}
	}
	return buf, nil
}

// DecodeTuple parses a heap record into a tuple per schema s.
func DecodeTuple(s Schema, rec []byte) (Tuple, error) {
	t := make(Tuple, len(s.Cols))
	off := 0
	for i, c := range s.Cols {
		switch c.Type {
		case TInt64:
			if off+8 > len(rec) {
				return nil, fmt.Errorf("relation: truncated BIGINT in column %q", c.Name)
			}
			t[i] = int64(binary.LittleEndian.Uint64(rec[off:]))
			off += 8
		case TFloat64:
			if off+8 > len(rec) {
				return nil, fmt.Errorf("relation: truncated DOUBLE in column %q", c.Name)
			}
			t[i] = math.Float64frombits(binary.LittleEndian.Uint64(rec[off:]))
			off += 8
		case TString:
			if off+4 > len(rec) {
				return nil, fmt.Errorf("relation: truncated TEXT length in column %q", c.Name)
			}
			n := int(binary.LittleEndian.Uint32(rec[off:]))
			off += 4
			if off+n > len(rec) {
				return nil, fmt.Errorf("relation: truncated TEXT in column %q", c.Name)
			}
			t[i] = string(rec[off : off+n])
			off += n
		case TVector:
			v, n, err := vector.Decode(rec[off:])
			if err != nil {
				return nil, fmt.Errorf("relation: column %q: %w", c.Name, err)
			}
			t[i] = v
			off += n
		}
	}
	if off != len(rec) {
		return nil, fmt.Errorf("relation: %d trailing bytes after tuple", len(rec)-off)
	}
	return t, nil
}
