package feature

import (
	"math"
	"math/rand"
	"testing"

	"hazy/internal/vector"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! SQL-99 & DBMSs")
	want := []string{"hello", "world", "sql", "99", "dbmss"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if toks := Tokenize(""); len(toks) != 0 {
		t.Fatalf("empty string: %v", toks)
	}
	if toks := Tokenize("---"); len(toks) != 0 {
		t.Fatalf("punct only: %v", toks)
	}
}

func TestVocabAssignAndFreeze(t *testing.T) {
	v := NewVocab()
	a := v.Lookup("alpha")
	b := v.Lookup("beta")
	if a == b {
		t.Fatal("same index for different terms")
	}
	if v.Lookup("alpha") != a {
		t.Fatal("unstable index")
	}
	if v.Size() != 2 {
		t.Fatalf("size=%d", v.Size())
	}
	if v.Term(a) != "alpha" || v.Term(99) != "" {
		t.Fatal("Term lookup wrong")
	}
	v.Freeze()
	if v.Lookup("gamma") != -1 {
		t.Fatal("frozen vocab grew")
	}
	if v.Lookup("alpha") != a {
		t.Fatal("frozen vocab lost existing term")
	}
}

func TestTFBagOfWords(t *testing.T) {
	f := NewTFBagOfWords()
	v := f.ComputeFeature("data base data")
	if v.NNZ() != 2 {
		t.Fatalf("nnz=%d", v.NNZ())
	}
	// tf normalized: data 2/3, base 1/3.
	di := f.Vocab.Lookup("data")
	bi := f.Vocab.Lookup("base")
	if math.Abs(v.At(int(di))-2.0/3) > 1e-12 || math.Abs(v.At(int(bi))-1.0/3) > 1e-12 {
		t.Fatalf("tf wrong: %v", v)
	}
	if math.Abs(v.Norm(1)-1) > 1e-12 {
		t.Fatal("not l1-normalized")
	}
}

func TestTFIDFDownweightsCommonTerms(t *testing.T) {
	f := NewTFIDF()
	corpus := []string{
		"the database system",
		"the operating system",
		"the network stack",
		"the database index",
	}
	f.ComputeStats(corpus)
	if f.DocCount() != 4 {
		t.Fatalf("docs=%d", f.DocCount())
	}
	v := f.ComputeFeature("the database")
	theI := int(f.Vocab.Lookup("the"))
	dbI := int(f.Vocab.Lookup("database"))
	if v.At(theI) >= v.At(dbI) {
		t.Fatalf("'the' (df=4) should weigh less than 'database' (df=2): %v vs %v",
			v.At(theI), v.At(dbI))
	}
}

func TestTFIDFIncrementalEqualsBatch(t *testing.T) {
	corpus := []string{"a b c", "a b", "a d e", "f g a"}
	batch := NewTFIDF()
	batch.ComputeStats(corpus)
	inc := NewTFIDF()
	for _, d := range corpus {
		inc.ComputeStatsInc(d)
	}
	for _, doc := range []string{"a b", "d f", "c c c g"} {
		vb := batch.ComputeFeature(doc)
		vi := inc.ComputeFeature(doc)
		// Vocab index assignment order can differ; compare term weights.
		for _, term := range Tokenize(doc) {
			wb := vb.At(int(batch.Vocab.Lookup(term)))
			wi := vi.At(int(inc.Vocab.Lookup(term)))
			if math.Abs(wb-wi) > 1e-12 {
				t.Fatalf("term %q: batch %v inc %v", term, wb, wi)
			}
		}
	}
}

func TestTFICFStatsFrozen(t *testing.T) {
	f := NewTFICF()
	f.ComputeStats([]string{"rare word here", "common common common"})
	before := f.ComputeFeature("rare common")
	f.ComputeStatsInc("rare rare rare rare") // must be a no-op
	after := f.ComputeFeature("rare common")
	if !vector.Equal(before, after) {
		t.Fatal("TF-ICF stats changed after ComputeStatsInc")
	}
	ri := int(f.Vocab.Lookup("rare"))
	ci := int(f.Vocab.Lookup("common"))
	if before.At(ri) <= before.At(ci) {
		t.Fatal("rare term should outweigh common term")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) != 3 {
		t.Fatalf("names=%v", names)
	}
	f, err := r.New("tf_bag_of_words")
	if err != nil || f.Name() != "tf_bag_of_words" {
		t.Fatalf("New: %v %v", f, err)
	}
	if _, err := r.New("bogus"); err == nil {
		t.Fatal("unknown name accepted")
	}
	r.Register("custom", func() Func { return NewTFICF() })
	if _, err := r.New("custom"); err != nil {
		t.Fatal(err)
	}
}

// Property (App. B.5.3): z(x)·z(y) ≈ K(x,y) within ε for the Gaussian
// kernel, with the approximation improving in D.
func TestRFFApproximatesGaussianKernel(t *testing.T) {
	const dim, gamma = 5, 0.5
	r := rand.New(rand.NewSource(31))
	f := NewRFF(Gaussian, dim, 2048, gamma, 7)
	var maxErr float64
	for trial := 0; trial < 100; trial++ {
		x := make([]float64, dim)
		y := make([]float64, dim)
		for i := 0; i < dim; i++ {
			x[i] = r.Float64()
			y[i] = r.Float64()
		}
		xv, yv := vector.NewDense(x), vector.NewDense(y)
		approx := vector.Dot(f.Transform(xv).Val, f.Transform(yv))
		exact := GaussianKernel(xv, yv, gamma)
		if e := math.Abs(approx - exact); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.12 {
		t.Fatalf("max kernel error %v with D=2048", maxErr)
	}
}

func TestRFFLaplacianRoughApproximation(t *testing.T) {
	const dim, gamma = 3, 0.3
	r := rand.New(rand.NewSource(5))
	f := NewRFF(Laplacian, dim, 4096, gamma, 9)
	var sumErr float64
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		x := make([]float64, dim)
		y := make([]float64, dim)
		for i := 0; i < dim; i++ {
			x[i] = r.Float64()
			y[i] = r.Float64()
		}
		xv, yv := vector.NewDense(x), vector.NewDense(y)
		approx := vector.Dot(f.Transform(xv).Val, f.Transform(yv))
		exact := LaplacianKernel(xv, yv, gamma)
		sumErr += math.Abs(approx - exact)
	}
	if avg := sumErr / trials; avg > 0.08 {
		t.Fatalf("avg laplacian kernel error %v", avg)
	}
}

func TestRFFDeterministicInSeed(t *testing.T) {
	a := NewRFF(Gaussian, 4, 64, 1, 42)
	b := NewRFF(Gaussian, 4, 64, 1, 42)
	x := vector.NewDense([]float64{1, 2, 3, 4})
	if !vector.Equal(a.Transform(x), b.Transform(x)) {
		t.Fatal("same seed, different transform")
	}
	c := NewRFF(Gaussian, 4, 64, 1, 43)
	if vector.Equal(a.Transform(x), c.Transform(x)) {
		t.Fatal("different seed, same transform")
	}
	if a.OutputDim() != 64 {
		t.Fatalf("D=%d", a.OutputDim())
	}
}
