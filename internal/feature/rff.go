package feature

import (
	"math"
	"math/rand"

	"hazy/internal/vector"
)

// Kernel identifies a shift-invariant kernel for RFF linearization
// (paper App. B.5.3).
type Kernel int

// Supported shift-invariant kernels.
const (
	// Gaussian is K(x,y) = exp(−γ‖x−y‖₂²).
	Gaussian Kernel = iota
	// Laplacian is K(x,y) = exp(−γ‖x−y‖₁).
	Laplacian
)

// RFF maps input vectors to a D-dimensional random Fourier feature
// space in which the linear dot product approximates the chosen
// shift-invariant kernel (Rahimi & Recht; paper App. B.5.3):
//
//	z(x)_i = sqrt(2/D) · cos(r_i·x + c_i)
//
// with r_i drawn from the kernel's spectral density and c_i uniform
// on [0, 2π). The paper uses this to scale the feature length in the
// Figure 12(A) sensitivity experiment and to reduce kernel methods to
// the linear classification problem Hazy maintains.
type RFF struct {
	dim   int // input dimensionality
	D     int // output dimensionality
	omega [][]float64
	phase []float64
}

// NewRFF builds a transform for inputs of dimension dim into D random
// features for the given kernel with bandwidth gamma, deterministic
// in seed.
func NewRFF(kernel Kernel, dim, D int, gamma float64, seed int64) *RFF {
	r := rand.New(rand.NewSource(seed))
	f := &RFF{dim: dim, D: D, omega: make([][]float64, D), phase: make([]float64, D)}
	for i := 0; i < D; i++ {
		w := make([]float64, dim)
		for j := range w {
			switch kernel {
			case Laplacian:
				// Spectral density of exp(−γ‖δ‖₁) is a product of
				// Cauchy distributions with scale γ.
				w[j] = gamma * math.Tan(math.Pi*(r.Float64()-0.5))
			default:
				// Gaussian kernel exp(−γ‖δ‖²) ⇒ ω ~ N(0, 2γ·I).
				w[j] = r.NormFloat64() * math.Sqrt(2*gamma)
			}
		}
		f.omega[i] = w
		f.phase[i] = 2 * math.Pi * r.Float64()
	}
	return f
}

// OutputDim returns D.
func (f *RFF) OutputDim() int { return f.D }

// Transform maps x into the random feature space (a dense vector of
// length D).
func (f *RFF) Transform(x vector.Vector) vector.Vector {
	out := make([]float64, f.D)
	scale := math.Sqrt(2 / float64(f.D))
	for i := 0; i < f.D; i++ {
		out[i] = scale * math.Cos(vector.Dot(f.omega[i], x)+f.phase[i])
	}
	return vector.NewDense(out)
}

// GaussianKernel evaluates K(x,y) = exp(−γ‖x−y‖₂²) exactly (for
// validating the approximation).
func GaussianKernel(x, y vector.Vector, gamma float64) float64 {
	d := x.Dim()
	if yd := y.Dim(); yd > d {
		d = yd
	}
	var s float64
	for i := 0; i < d; i++ {
		diff := x.At(i) - y.At(i)
		s += diff * diff
	}
	return math.Exp(-gamma * s)
}

// LaplacianKernel evaluates K(x,y) = exp(−γ‖x−y‖₁) exactly.
func LaplacianKernel(x, y vector.Vector, gamma float64) float64 {
	d := x.Dim()
	if yd := y.Dim(); yd > d {
		d = yd
	}
	var s float64
	for i := 0; i < d; i++ {
		s += math.Abs(x.At(i) - y.At(i))
	}
	return math.Exp(-gamma * s)
}
