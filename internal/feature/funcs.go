package feature

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"hazy/internal/vector"
)

// Func is a feature function in the paper's three-phase form
// (App. A.2): ComputeStats makes a pass over the corpus,
// ComputeStatsInc folds one new document into the statistics, and
// ComputeFeature maps a document to its feature vector using the
// current statistics.
type Func interface {
	Name() string
	ComputeStats(corpus []string)
	ComputeStatsInc(doc string)
	ComputeFeature(doc string) vector.Vector
}

// TFBagOfWords is tf_bag_of_words: ℓ1-normalized term frequencies.
// It needs no corpus statistics (App. A.2).
type TFBagOfWords struct {
	Vocab *Vocab
}

// NewTFBagOfWords returns the feature function over a fresh vocabulary.
func NewTFBagOfWords() *TFBagOfWords { return &TFBagOfWords{Vocab: NewVocab()} }

// Name returns "tf_bag_of_words".
func (f *TFBagOfWords) Name() string { return "tf_bag_of_words" }

// ComputeStats only warms the vocabulary (no statistics needed).
func (f *TFBagOfWords) ComputeStats(corpus []string) {
	for _, d := range corpus {
		for _, t := range Tokenize(d) {
			f.Vocab.Lookup(t)
		}
	}
}

// ComputeStatsInc is a no-op beyond vocabulary growth.
func (f *TFBagOfWords) ComputeStatsInc(doc string) {
	for _, t := range Tokenize(doc) {
		f.Vocab.Lookup(t)
	}
}

// ComputeFeature returns the ℓ1-normalized term-frequency vector.
func (f *TFBagOfWords) ComputeFeature(doc string) vector.Vector {
	counts := map[int32]float64{}
	for _, t := range Tokenize(doc) {
		if i := f.Vocab.Lookup(t); i >= 0 {
			counts[i]++
		}
	}
	v := vector.FromMap(counts)
	v.L1Normalize()
	return v
}

// TFIDF is tf_idf_bag_of_words: tf·idf scores with document
// frequencies maintained incrementally by ComputeStatsInc, mirroring
// the catalog-table flow described in App. A.2.
type TFIDF struct {
	Vocab *Vocab

	mu   sync.RWMutex
	df   map[int32]int
	docs int
}

// NewTFIDF returns the feature function with empty statistics.
func NewTFIDF() *TFIDF {
	return &TFIDF{Vocab: NewVocab(), df: make(map[int32]int)}
}

// Name returns "tf_idf_bag_of_words".
func (f *TFIDF) Name() string { return "tf_idf_bag_of_words" }

// ComputeStats computes document frequencies over the corpus.
func (f *TFIDF) ComputeStats(corpus []string) {
	for _, d := range corpus {
		f.ComputeStatsInc(d)
	}
}

// ComputeStatsInc folds one document into the df counts.
func (f *TFIDF) ComputeStatsInc(doc string) {
	seen := map[int32]bool{}
	for _, t := range Tokenize(doc) {
		if i := f.Vocab.Lookup(t); i >= 0 {
			seen[i] = true
		}
	}
	f.mu.Lock()
	f.docs++
	for i := range seen {
		f.df[i]++
	}
	f.mu.Unlock()
}

// DocCount returns the number of documents folded into the statistics.
func (f *TFIDF) DocCount() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.docs
}

// ComputeFeature returns the ℓ1-normalized tf·idf vector. idf uses
// the smoothed form log((1+N)/(1+df)).
func (f *TFIDF) ComputeFeature(doc string) vector.Vector {
	counts := map[int32]float64{}
	for _, t := range Tokenize(doc) {
		if i := f.Vocab.Lookup(t); i >= 0 {
			counts[i]++
		}
	}
	f.mu.RLock()
	for i, c := range counts {
		idf := math.Log(float64(1+f.docs) / float64(1+f.df[i]))
		counts[i] = c * idf
	}
	f.mu.RUnlock()
	v := vector.FromMap(counts)
	v.L1Normalize()
	return v
}

// TFICF is tf_icf (term frequency–inverse corpus frequency, [31] in
// the paper): corpus frequencies are fixed by ComputeStats and
// explicitly NOT updated per new document.
type TFICF struct {
	Vocab *Vocab
	cf    map[int32]int
	total int
}

// NewTFICF returns the feature function with empty statistics.
func NewTFICF() *TFICF { return &TFICF{Vocab: NewVocab(), cf: map[int32]int{}} }

// Name returns "tf_icf".
func (f *TFICF) Name() string { return "tf_icf" }

// ComputeStats fixes corpus term frequencies.
func (f *TFICF) ComputeStats(corpus []string) {
	for _, d := range corpus {
		for _, t := range Tokenize(d) {
			f.cf[f.Vocab.Lookup(t)]++
			f.total++
		}
	}
}

// ComputeStatsInc is deliberately a no-op: TF-ICF does not update
// corpus frequencies after the initial pass.
func (f *TFICF) ComputeStatsInc(string) {}

// ComputeFeature returns the ℓ1-normalized tf·icf vector.
func (f *TFICF) ComputeFeature(doc string) vector.Vector {
	counts := map[int32]float64{}
	for _, t := range Tokenize(doc) {
		if i := f.Vocab.Lookup(t); i >= 0 {
			counts[i]++
		}
	}
	for i, c := range counts {
		icf := math.Log(float64(1+f.total) / float64(1+f.cf[i]))
		counts[i] = c * icf
	}
	v := vector.FromMap(counts)
	v.L1Normalize()
	return v
}

// Registry holds named feature-function constructors, mirroring
// Hazy's registration of feature functions (App. A.2: "the
// administrator writes a library of these feature functions").
type Registry struct {
	mu    sync.RWMutex
	ctors map[string]func() Func
}

// NewRegistry returns a registry preloaded with the built-in
// functions.
func NewRegistry() *Registry {
	r := &Registry{ctors: map[string]func() Func{}}
	r.Register("tf_bag_of_words", func() Func { return NewTFBagOfWords() })
	r.Register("tf_idf_bag_of_words", func() Func { return NewTFIDF() })
	r.Register("tf_icf", func() Func { return NewTFICF() })
	return r
}

// Register adds (or replaces) a named constructor.
func (r *Registry) Register(name string, ctor func() Func) {
	r.mu.Lock()
	r.ctors[name] = ctor
	r.mu.Unlock()
}

// Has reports whether a constructor is registered under name.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.ctors[name]
	return ok
}

// New instantiates the named feature function.
func (r *Registry) New(name string) (Func, error) {
	r.mu.RLock()
	ctor, ok := r.ctors[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("feature: unknown feature function %q (have %v)", name, r.Names())
	}
	return ctor(), nil
}

// Names lists the registered function names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.ctors))
	for n := range r.ctors {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
