// Package feature implements Hazy's feature functions (paper App.
// A.2): user-registered triples (computeStats, computeStatsInc,
// computeFeature) that turn entity tuples into feature vectors, plus
// the linearized-kernel machinery of App. B.5.3 (random Fourier
// features for shift-invariant kernels).
package feature

import (
	"strings"
	"sync"
	"unicode"
)

// Tokenize lowercases s and splits it into maximal runs of letters
// and digits — the document model used by the bag-of-words feature
// functions.
func Tokenize(s string) []string {
	var toks []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			toks = append(toks, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return toks
}

// Vocab maps terms to dense component indices. It is safe for
// concurrent use; once Frozen, unknown terms map to -1 instead of
// being assigned new indices.
type Vocab struct {
	mu     sync.RWMutex
	index  map[string]int32
	terms  []string
	frozen bool
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{index: make(map[string]int32)}
}

// Lookup returns the index for term, assigning a fresh one unless the
// vocabulary is frozen (then -1 for unknown terms).
func (v *Vocab) Lookup(term string) int32 {
	v.mu.RLock()
	i, ok := v.index[term]
	frozen := v.frozen
	v.mu.RUnlock()
	if ok {
		return i
	}
	if frozen {
		return -1
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if i, ok := v.index[term]; ok {
		return i
	}
	i = int32(len(v.terms))
	v.index[term] = i
	v.terms = append(v.terms, term)
	return i
}

// Term returns the term at index i, or "" if out of range.
func (v *Vocab) Term(i int32) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if i < 0 || int(i) >= len(v.terms) {
		return ""
	}
	return v.terms[i]
}

// Size returns the number of distinct terms.
func (v *Vocab) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.terms)
}

// Freeze stops the vocabulary from growing.
func (v *Vocab) Freeze() {
	v.mu.Lock()
	v.frozen = true
	v.mu.Unlock()
}
