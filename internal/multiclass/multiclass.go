// Package multiclass builds multiclass classification on top of
// Hazy's binary classification views using sequential one-versus-all
// (paper App. B.5.4 and C.3: "We present only a sequential
// one-versus-all approach"). Each class gets its own maintained
// binary view over the same entities; an update fans out to every
// view with the label mapped to ±1.
package multiclass

import (
	"fmt"

	"hazy/internal/core"
	"hazy/internal/vector"
)

// Classifier maintains one binary view per class.
type Classifier struct {
	views []core.View
	ids   []int64
}

// New builds a classifier for the given number of classes over the
// entities with the given ids; mk constructs the binary view for
// class c (so callers control architecture, strategy, and storage
// placement per class — every view must be built over the same
// entities).
func New(classes int, ids []int64, mk func(c int) (core.View, error)) (*Classifier, error) {
	if classes < 2 {
		return nil, fmt.Errorf("multiclass: need ≥ 2 classes, got %d", classes)
	}
	m := &Classifier{views: make([]core.View, classes), ids: append([]int64(nil), ids...)}
	for c := range m.views {
		v, err := mk(c)
		if err != nil {
			return nil, fmt.Errorf("multiclass: class %d: %w", c, err)
		}
		m.views[c] = v
	}
	return m, nil
}

// Classes returns the number of classes.
func (m *Classifier) Classes() int { return len(m.views) }

// View returns the binary view for class c.
func (m *Classifier) View(c int) core.View { return m.views[c] }

// Update folds in one training example with class label class
// (0-based): view c sees +1 if class == c else −1.
func (m *Classifier) Update(f vector.Vector, class int) error {
	if class < 0 || class >= len(m.views) {
		return fmt.Errorf("multiclass: class %d out of range [0,%d)", class, len(m.views))
	}
	for c, v := range m.views {
		y := -1
		if c == class {
			y = 1
		}
		if err := v.Update(f, y); err != nil {
			return fmt.Errorf("multiclass: class %d: %w", c, err)
		}
	}
	return nil
}

// Insert adds a new entity to every per-class view.
func (m *Classifier) Insert(e core.Entity) error {
	for c, v := range m.views {
		if err := v.Insert(e); err != nil {
			return fmt.Errorf("multiclass: class %d: %w", c, err)
		}
	}
	m.ids = append(m.ids, e.ID)
	return nil
}

// Label classifies entity id sequentially: the first class whose
// binary view accepts wins; if none accepts, the last class is
// returned (the "rest" bucket of the decision list).
func (m *Classifier) Label(id int64) (int, error) {
	for c, v := range m.views {
		l, err := v.Label(id)
		if err != nil {
			return 0, err
		}
		if l > 0 {
			return c, nil
		}
	}
	return len(m.views) - 1, nil
}

// Members returns the entity ids assigned to class c under the
// sequential decision list (accepted by view c and rejected by every
// earlier view).
func (m *Classifier) Members(c int) ([]int64, error) {
	if c < 0 || c >= len(m.views) {
		return nil, fmt.Errorf("multiclass: class %d out of range", c)
	}
	if c == len(m.views)-1 {
		// The last class is the decision list's rest bucket: it also
		// collects entities rejected by every view, so it is computed
		// per-entity.
		var out []int64
		for _, id := range m.ids {
			cls, err := m.Label(id)
			if err != nil {
				return nil, err
			}
			if cls == c {
				out = append(out, id)
			}
		}
		return out, nil
	}
	accepted, err := m.views[c].Members()
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, id := range accepted {
		earlier := false
		for b := 0; b < c; b++ {
			l, err := m.views[b].Label(id)
			if err != nil {
				return nil, err
			}
			if l > 0 {
				earlier = true
				break
			}
		}
		if !earlier {
			out = append(out, id)
		}
	}
	return out, nil
}
