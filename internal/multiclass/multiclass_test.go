package multiclass

import (
	"math/rand"
	"path/filepath"
	"testing"

	"hazy/internal/core"
	"hazy/internal/learn"
	"hazy/internal/vector"
)

// threeClassData builds entities in three well-separated unit-square
// clusters so one-vs-all converges quickly.
func threeClassData(r *rand.Rand, n int) ([]core.Entity, []int) {
	centers := [][2]float64{{0, 0}, {4, 0}, {0, 4}}
	ents := make([]core.Entity, n)
	classes := make([]int, n)
	for i := range ents {
		c := r.Intn(3)
		classes[i] = c
		ents[i] = core.Entity{
			ID: int64(i),
			F: vector.NewDense([]float64{
				centers[c][0] + r.Float64(),
				centers[c][1] + r.Float64(),
			}),
		}
	}
	return ents, classes
}

func newMM(entities []core.Entity) func(int) (core.View, error) {
	return func(int) (core.View, error) {
		return core.NewMemView(entities, core.HazyStrategy, core.Options{
			Mode: core.Eager,
			SGD:  learn.SGDConfig{Eta0: 0.5},
		}), nil
	}
}

func ids(ents []core.Entity) []int64 {
	out := make([]int64, len(ents))
	for i, e := range ents {
		out[i] = e.ID
	}
	return out
}

func TestMulticlassLearnsClusters(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ents, classes := threeClassData(r, 200)
	m, err := New(3, ids(ents), newMM(ents))
	if err != nil {
		t.Fatal(err)
	}
	if m.Classes() != 3 {
		t.Fatalf("classes=%d", m.Classes())
	}
	// Train on fresh draws from the same distribution.
	for step := 0; step < 1500; step++ {
		tr, cls := threeClassData(r, 1)
		if err := m.Update(tr[0].F, cls[0]); err != nil {
			t.Fatal(err)
		}
	}
	correct := 0
	for i, e := range ents {
		got, err := m.Label(e.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got == classes[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(ents)); acc < 0.9 {
		t.Fatalf("multiclass accuracy %.3f", acc)
	}
}

func TestMembersPartition(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ents, _ := threeClassData(r, 120)
	m, err := New(3, ids(ents), newMM(ents))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 900; step++ {
		tr, cls := threeClassData(r, 1)
		if err := m.Update(tr[0].F, cls[0]); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int64]int{}
	total := 0
	for c := 0; c < 3; c++ {
		members, err := m.Members(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range members {
			if prev, dup := seen[id]; dup {
				t.Fatalf("entity %d in classes %d and %d", id, prev, c)
			}
			seen[id] = c
			// Members must agree with Label.
			got, err := m.Label(id)
			if err != nil || got != c {
				t.Fatalf("entity %d: members says %d, label says %d (%v)", id, c, got, err)
			}
		}
		total += len(members)
	}
	if total != len(ents) {
		t.Fatalf("partition covers %d of %d entities", total, len(ents))
	}
}

func TestUpdateValidation(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ents, _ := threeClassData(r, 10)
	m, err := New(3, ids(ents), newMM(ents))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(ents[0].F, 7); err == nil {
		t.Fatal("out-of-range class accepted")
	}
	if err := m.Update(ents[0].F, -1); err == nil {
		t.Fatal("negative class accepted")
	}
	if _, err := New(1, nil, newMM(ents)); err == nil {
		t.Fatal("single class accepted")
	}
	if _, err := m.Members(9); err == nil {
		t.Fatal("out-of-range members accepted")
	}
}

func TestInsertPropagates(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ents, _ := threeClassData(r, 60)
	m, err := New(3, ids(ents), newMM(ents))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 600; step++ {
		tr, cls := threeClassData(r, 1)
		m.Update(tr[0].F, cls[0])
	}
	// Insert an entity deep in cluster 1's territory.
	e := core.Entity{ID: 5000, F: vector.NewDense([]float64{4.5, 0.5})}
	if err := m.Insert(e); err != nil {
		t.Fatal(err)
	}
	got, err := m.Label(5000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("inserted entity classified %d, want 1", got)
	}
	// And it participates in Members.
	found := false
	for c := 0; c < 3; c++ {
		members, err := m.Members(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range members {
			if id == 5000 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("inserted entity missing from partition")
	}
}

func TestOnDiskMulticlass(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ents, _ := threeClassData(r, 60)
	dir := t.TempDir()
	m, err := New(3, ids(ents), func(c int) (core.View, error) {
		return core.NewDiskView(filepath.Join(dir, string(rune('a'+c))), 32, ents, core.HazyStrategy, core.Options{
			Mode: core.Eager,
			SGD:  learn.SGDConfig{Eta0: 0.5},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 300; step++ {
		tr, cls := threeClassData(r, 1)
		if err := m.Update(tr[0].F, cls[0]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Label(ents[0].ID); err != nil {
		t.Fatal(err)
	}
}
