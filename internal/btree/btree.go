// Package btree implements a disk-resident B+-tree keyed by
// (eps float64, id int64) mapping to heap RIDs. Hazy keeps its scratch
// table H clustered on eps (paper §3.2.2: "a clustered B+-tree index
// on t.eps in H"); at each reorganization the heap is rewritten in eps
// order and this tree is bulk-loaded over it, and between
// reorganizations newly arriving entities are inserted one at a time.
//
// Deletes are "lazy" in the PostgreSQL style: the entry is removed
// from its leaf but nodes are never merged; a rebuild happens at the
// next reorganization anyway.
package btree

import (
	"encoding/binary"
	"fmt"
	"math"

	"hazy/internal/storage"
)

// Key orders entries by (Eps, ID).
type Key struct {
	Eps float64
	ID  int64
}

// Less reports whether k sorts strictly before o.
func (k Key) Less(o Key) bool {
	if k.Eps != o.Eps {
		return k.Eps < o.Eps
	}
	return k.ID < o.ID
}

// Node layout (little-endian):
//
//	[0]     node type: 0 = leaf, 1 = internal
//	[1:3)   entry count n
//	[3:7)   leaf: next-leaf PageID; internal: leftmost child PageID
//	leaf entries   at 7 + i*24: eps float64, id int64, rid (page uint32, slot uint16, pad uint16)
//	internal entries at 7 + i*20: eps float64, id int64, child PageID
//
// An internal node with n entries has n+1 children: the leftmost child
// in the header plus one per entry; entry i's key is the smallest key
// reachable under its child.
const (
	nodeHeader   = 7
	leafEntry    = 24
	internalEnt  = 20
	maxLeafKeys  = (storage.PageSize - nodeHeader) / leafEntry
	maxInternal  = (storage.PageSize - nodeHeader) / internalEnt
	typeLeaf     = 0
	typeInternal = 1
)

// Tree is the B+-tree handle. Not safe for concurrent mutation; Hazy
// serializes writers (reads during a scan hold page pins briefly).
type Tree struct {
	pool *storage.BufferPool
	root storage.PageID
	size int
}

// New creates an empty tree (a single empty leaf) in pool.
func New(pool *storage.BufferPool) (*Tree, error) {
	id, buf, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	initNode(buf, typeLeaf)
	pool.Unpin(id, true)
	return &Tree{pool: pool, root: id}, nil
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Root returns the current root page id (for diagnostics/tests).
func (t *Tree) Root() storage.PageID { return t.root }

func initNode(b []byte, typ byte) {
	b[0] = typ
	binary.LittleEndian.PutUint16(b[1:3], 0)
	binary.LittleEndian.PutUint32(b[3:7], uint32(storage.InvalidPage))
}

func nodeType(b []byte) byte { return b[0] }
func nodeCount(b []byte) int { return int(binary.LittleEndian.Uint16(b[1:3])) }
func setCount(b []byte, n int) {
	binary.LittleEndian.PutUint16(b[1:3], uint16(n))
}
func nodeLink(b []byte) storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint32(b[3:7]))
}
func setLink(b []byte, id storage.PageID) {
	binary.LittleEndian.PutUint32(b[3:7], uint32(id))
}

func leafKey(b []byte, i int) Key {
	off := nodeHeader + i*leafEntry
	return Key{
		Eps: math.Float64frombits(binary.LittleEndian.Uint64(b[off:])),
		ID:  int64(binary.LittleEndian.Uint64(b[off+8:])),
	}
}

func leafRID(b []byte, i int) storage.RID {
	off := nodeHeader + i*leafEntry + 16
	return storage.RID{
		Page: storage.PageID(binary.LittleEndian.Uint32(b[off:])),
		Slot: binary.LittleEndian.Uint16(b[off+4:]),
	}
}

func putLeafEntry(b []byte, i int, k Key, rid storage.RID) {
	off := nodeHeader + i*leafEntry
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(k.Eps))
	binary.LittleEndian.PutUint64(b[off+8:], uint64(k.ID))
	binary.LittleEndian.PutUint32(b[off+16:], uint32(rid.Page))
	binary.LittleEndian.PutUint16(b[off+20:], rid.Slot)
	binary.LittleEndian.PutUint16(b[off+22:], 0)
}

func internalKey(b []byte, i int) Key {
	off := nodeHeader + i*internalEnt
	return Key{
		Eps: math.Float64frombits(binary.LittleEndian.Uint64(b[off:])),
		ID:  int64(binary.LittleEndian.Uint64(b[off+8:])),
	}
}

func internalChild(b []byte, i int) storage.PageID {
	off := nodeHeader + i*internalEnt + 16
	return storage.PageID(binary.LittleEndian.Uint32(b[off:]))
}

func putInternalEntry(b []byte, i int, k Key, child storage.PageID) {
	off := nodeHeader + i*internalEnt
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(k.Eps))
	binary.LittleEndian.PutUint64(b[off+8:], uint64(k.ID))
	binary.LittleEndian.PutUint32(b[off+16:], uint32(child))
}

// leafSearch returns the first index i with leafKey(i) ≥ k.
func leafSearch(b []byte, k Key) int {
	lo, hi := 0, nodeCount(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(b, mid).Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns which child of an internal node covers k:
// 0 = leftmost (header) child, i+1 = entry i's child.
func childIndex(b []byte, k Key) int {
	lo, hi := 0, nodeCount(b)
	for lo < hi {
		mid := (lo + hi) / 2
		ik := internalKey(b, mid)
		if ik.Less(k) || ik == k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func childAt(b []byte, i int) storage.PageID {
	if i == 0 {
		return nodeLink(b)
	}
	return internalChild(b, i-1)
}

// Get returns the RID stored under k, or ok=false.
func (t *Tree) Get(k Key) (storage.RID, bool, error) {
	id := t.root
	for {
		buf, err := t.pool.Pin(id)
		if err != nil {
			return storage.RID{}, false, err
		}
		if nodeType(buf) == typeInternal {
			next := childAt(buf, childIndex(buf, k))
			t.pool.Unpin(id, false)
			id = next
			continue
		}
		i := leafSearch(buf, k)
		if i < nodeCount(buf) && leafKey(buf, i) == k {
			rid := leafRID(buf, i)
			t.pool.Unpin(id, false)
			return rid, true, nil
		}
		t.pool.Unpin(id, false)
		return storage.RID{}, false, nil
	}
}

// Insert adds (k → rid). Duplicate keys are rejected.
func (t *Tree) Insert(k Key, rid storage.RID) error {
	sep, right, err := t.insertAt(t.root, k, rid)
	if err != nil {
		return err
	}
	if right == storage.InvalidPage {
		t.size++
		return nil
	}
	// Root split: new internal root with old root as leftmost child.
	newRoot, buf, err := t.pool.Allocate()
	if err != nil {
		return err
	}
	initNode(buf, typeInternal)
	setLink(buf, t.root)
	putInternalEntry(buf, 0, sep, right)
	setCount(buf, 1)
	t.pool.Unpin(newRoot, true)
	t.root = newRoot
	t.size++
	return nil
}

// insertAt descends into node id. On a split it returns the separator
// key and new right-sibling page; otherwise right == InvalidPage.
func (t *Tree) insertAt(id storage.PageID, k Key, rid storage.RID) (Key, storage.PageID, error) {
	buf, err := t.pool.Pin(id)
	if err != nil {
		return Key{}, storage.InvalidPage, err
	}
	if nodeType(buf) == typeLeaf {
		defer t.pool.Unpin(id, true)
		return t.leafInsert(buf, k, rid)
	}
	ci := childIndex(buf, k)
	child := childAt(buf, ci)
	t.pool.Unpin(id, false)

	sep, right, err := t.insertAt(child, k, rid)
	if err != nil || right == storage.InvalidPage {
		return Key{}, storage.InvalidPage, err
	}
	// Child split: insert (sep, right) into this internal node at ci.
	buf, err = t.pool.Pin(id)
	if err != nil {
		return Key{}, storage.InvalidPage, err
	}
	defer t.pool.Unpin(id, true)
	n := nodeCount(buf)
	if n < maxInternal {
		for j := n; j > ci; j-- {
			putInternalEntry(buf, j, internalKey(buf, j-1), internalChild(buf, j-1))
		}
		putInternalEntry(buf, ci, sep, right)
		setCount(buf, n+1)
		return Key{}, storage.InvalidPage, nil
	}
	return t.splitInternal(buf, ci, sep, right)
}

func (t *Tree) leafInsert(buf []byte, k Key, rid storage.RID) (Key, storage.PageID, error) {
	i := leafSearch(buf, k)
	n := nodeCount(buf)
	if i < n && leafKey(buf, i) == k {
		return Key{}, storage.InvalidPage, fmt.Errorf("btree: duplicate key (%g,%d)", k.Eps, k.ID)
	}
	if n < maxLeafKeys {
		for j := n; j > i; j-- {
			putLeafEntry(buf, j, leafKey(buf, j-1), leafRID(buf, j-1))
		}
		putLeafEntry(buf, i, k, rid)
		setCount(buf, n+1)
		return Key{}, storage.InvalidPage, nil
	}
	// Split: move the upper half to a fresh right sibling.
	rightID, rbuf, err := t.pool.Allocate()
	if err != nil {
		return Key{}, storage.InvalidPage, err
	}
	initNode(rbuf, typeLeaf)
	half := n / 2
	for j := half; j < n; j++ {
		putLeafEntry(rbuf, j-half, leafKey(buf, j), leafRID(buf, j))
	}
	setCount(rbuf, n-half)
	setLink(rbuf, nodeLink(buf))
	setCount(buf, half)
	setLink(buf, rightID)
	// Insert into whichever side now owns k.
	if sep := leafKey(rbuf, 0); k.Less(sep) {
		t.pool.Unpin(rightID, true)
		if _, _, err := t.leafInsert(buf, k, rid); err != nil {
			return Key{}, storage.InvalidPage, err
		}
		return sep, rightID, nil
	}
	if _, _, err := t.leafInsert(rbuf, k, rid); err != nil {
		t.pool.Unpin(rightID, true)
		return Key{}, storage.InvalidPage, err
	}
	sep := leafKey(rbuf, 0)
	t.pool.Unpin(rightID, true)
	return sep, rightID, nil
}

// splitInternal splits a full internal node while inserting
// (sep,right) at entry position ci. Returns the separator promoted to
// the parent and the new right node.
func (t *Tree) splitInternal(buf []byte, ci int, sep Key, right storage.PageID) (Key, storage.PageID, error) {
	n := nodeCount(buf)
	// Materialize entries with the pending insertion applied.
	keys := make([]Key, 0, n+1)
	kids := make([]storage.PageID, 0, n+2)
	kids = append(kids, nodeLink(buf))
	for j := 0; j < n; j++ {
		keys = append(keys, internalKey(buf, j))
		kids = append(kids, internalChild(buf, j))
	}
	keys = append(keys[:ci], append([]Key{sep}, keys[ci:]...)...)
	kids = append(kids[:ci+1], append([]storage.PageID{right}, kids[ci+1:]...)...)

	mid := len(keys) / 2
	promote := keys[mid]

	rightID, rbuf, err := t.pool.Allocate()
	if err != nil {
		return Key{}, storage.InvalidPage, err
	}
	initNode(rbuf, typeInternal)
	setLink(rbuf, kids[mid+1])
	for j := mid + 1; j < len(keys); j++ {
		putInternalEntry(rbuf, j-mid-1, keys[j], kids[j+1])
	}
	setCount(rbuf, len(keys)-mid-1)
	t.pool.Unpin(rightID, true)

	setLink(buf, kids[0])
	for j := 0; j < mid; j++ {
		putInternalEntry(buf, j, keys[j], kids[j+1])
	}
	setCount(buf, mid)
	return promote, rightID, nil
}

// Delete removes k, returning whether it was present. Leaves are
// never merged (lazy deletion).
func (t *Tree) Delete(k Key) (bool, error) {
	id := t.root
	for {
		buf, err := t.pool.Pin(id)
		if err != nil {
			return false, err
		}
		if nodeType(buf) == typeInternal {
			next := childAt(buf, childIndex(buf, k))
			t.pool.Unpin(id, false)
			id = next
			continue
		}
		i := leafSearch(buf, k)
		n := nodeCount(buf)
		if i >= n || leafKey(buf, i) != k {
			t.pool.Unpin(id, false)
			return false, nil
		}
		for j := i; j < n-1; j++ {
			putLeafEntry(buf, j, leafKey(buf, j+1), leafRID(buf, j+1))
		}
		setCount(buf, n-1)
		t.pool.Unpin(id, true)
		t.size--
		return true, nil
	}
}

// findLeaf returns the page id of the leaf that would contain k.
func (t *Tree) findLeaf(k Key) (storage.PageID, error) {
	id := t.root
	for {
		buf, err := t.pool.Pin(id)
		if err != nil {
			return storage.InvalidPage, err
		}
		if nodeType(buf) == typeLeaf {
			t.pool.Unpin(id, false)
			return id, nil
		}
		next := childAt(buf, childIndex(buf, k))
		t.pool.Unpin(id, false)
		id = next
	}
}

// Cursor is a pull-based scan over the entries with lo ≤ key.Eps ≤ hi
// in key order — the iterator form of Range, built for the streaming
// SQL executor's eps-range index scans: each Next returns one entry,
// so an operator pipeline can interleave index steps with heap reads
// and stop early (LIMIT) without visiting the rest of the range.
//
// The cursor keeps the current leaf pinned between Next calls and
// releases it when it advances to the next leaf, hits the end of the
// range, or is Closed. Callers must Close it (Close is idempotent)
// and must not mutate the tree while a cursor is open — the same
// single-writer discipline Range always required.
type Cursor struct {
	t    *Tree
	hi   float64
	page storage.PageID // pinned leaf; InvalidPage when exhausted
	buf  []byte
	i, n int
}

// NewCursor positions a cursor at the first entry with key.Eps ≥ lo.
func (t *Tree) NewCursor(lo, hi float64) (*Cursor, error) {
	start := Key{Eps: lo, ID: math.MinInt64}
	id, err := t.findLeaf(start)
	if err != nil {
		return nil, err
	}
	c := &Cursor{t: t, hi: hi, page: id}
	buf, err := t.pool.Pin(id)
	if err != nil {
		c.page = storage.InvalidPage
		return nil, err
	}
	c.buf, c.n = buf, nodeCount(buf)
	c.i = leafSearch(buf, start)
	return c, nil
}

// Next returns the next entry in the range, or ok=false when the
// range is exhausted (the cursor then releases its pin).
func (c *Cursor) Next() (Key, storage.RID, bool, error) {
	for c.page != storage.InvalidPage {
		if c.i < c.n {
			k := leafKey(c.buf, c.i)
			if k.Eps > c.hi {
				c.Close()
				return Key{}, storage.RID{}, false, nil
			}
			rid := leafRID(c.buf, c.i)
			c.i++
			return k, rid, true, nil
		}
		next := nodeLink(c.buf)
		c.t.pool.Unpin(c.page, false)
		c.page, c.buf = next, nil
		if next == storage.InvalidPage {
			break
		}
		buf, err := c.t.pool.Pin(next)
		if err != nil {
			c.page = storage.InvalidPage
			return Key{}, storage.RID{}, false, err
		}
		c.buf, c.n, c.i = buf, nodeCount(buf), 0
	}
	return Key{}, storage.RID{}, false, nil
}

// NextBatch copies the next run of in-range entries into ks/rids
// (parallel slices; min(len(ks), len(rids)) is the request) and
// returns how many it wrote. Each call drains at most what remains of
// the pinned leaf before crossing to the next one, so a full leaf's
// entries cost one bounds check and one pin transition instead of a
// call each. It loops across leaf boundaries until it has at least
// one entry, so a return of 0 always means the range is exhausted
// (the pin is then released, as with Next).
func (c *Cursor) NextBatch(ks []Key, rids []storage.RID) (int, error) {
	want := len(ks)
	if len(rids) < want {
		want = len(rids)
	}
	n := 0
	for n < want && c.page != storage.InvalidPage {
		for n < want && c.i < c.n {
			k := leafKey(c.buf, c.i)
			if k.Eps > c.hi {
				c.Close()
				return n, nil
			}
			ks[n] = k
			rids[n] = leafRID(c.buf, c.i)
			c.i++
			n++
		}
		if n == want {
			return n, nil
		}
		next := nodeLink(c.buf)
		c.t.pool.Unpin(c.page, false)
		c.page, c.buf = next, nil
		if next == storage.InvalidPage {
			break
		}
		buf, err := c.t.pool.Pin(next)
		if err != nil {
			c.page = storage.InvalidPage
			return n, err
		}
		c.buf, c.n, c.i = buf, nodeCount(buf), 0
	}
	return n, nil
}

// Close releases the cursor's leaf pin.
func (c *Cursor) Close() {
	if c.page != storage.InvalidPage {
		c.t.pool.Unpin(c.page, false)
		c.page, c.buf = storage.InvalidPage, nil
	}
}

// Range calls fn for every entry with lo ≤ key.Eps ≤ hi, in key
// order. fn returning false stops the scan early. This is Hazy's
// incremental-step scan of the water band [lw, hw].
func (t *Tree) Range(lo, hi float64, fn func(k Key, rid storage.RID) (bool, error)) error {
	c, err := t.NewCursor(lo, hi)
	if err != nil {
		return err
	}
	defer c.Close()
	for {
		k, rid, ok, err := c.Next()
		if err != nil || !ok {
			return err
		}
		cont, err := fn(k, rid)
		if err != nil || !cont {
			return err
		}
	}
}

// Scan visits every entry in key order.
func (t *Tree) Scan(fn func(k Key, rid storage.RID) (bool, error)) error {
	return t.Range(math.Inf(-1), math.Inf(1), fn)
}

// BulkLoad discards the tree's contents and rebuilds it from entries
// already sorted by key (strictly increasing). This is the index
// rebuild inside Hazy's reorganization step. Old pages are abandoned
// (reclaimed when the bench harness recreates the file).
func (t *Tree) BulkLoad(keys []Key, rids []storage.RID) error {
	if len(keys) != len(rids) {
		return fmt.Errorf("btree: bulk load length mismatch %d vs %d", len(keys), len(rids))
	}
	for i := 1; i < len(keys); i++ {
		if !keys[i-1].Less(keys[i]) {
			return fmt.Errorf("btree: bulk load keys not strictly increasing at %d", i)
		}
	}
	// Build leaf level ~90% full for future inserts.
	fill := maxLeafKeys * 9 / 10
	if fill < 1 {
		fill = 1
	}
	var leafIDs []storage.PageID
	var leafFirst []Key
	for off := 0; off < len(keys) || len(leafIDs) == 0; {
		id, buf, err := t.pool.Allocate()
		if err != nil {
			return err
		}
		initNode(buf, typeLeaf)
		n := len(keys) - off
		if n > fill {
			n = fill
		}
		for j := 0; j < n; j++ {
			putLeafEntry(buf, j, keys[off+j], rids[off+j])
		}
		setCount(buf, n)
		t.pool.Unpin(id, true)
		if n > 0 {
			leafFirst = append(leafFirst, keys[off])
		} else {
			leafFirst = append(leafFirst, Key{})
		}
		leafIDs = append(leafIDs, id)
		off += n
		if n == 0 {
			break
		}
	}
	// Chain the leaves.
	for i := 0; i < len(leafIDs); i++ {
		buf, err := t.pool.Pin(leafIDs[i])
		if err != nil {
			return err
		}
		if i+1 < len(leafIDs) {
			setLink(buf, leafIDs[i+1])
		} else {
			setLink(buf, storage.InvalidPage)
		}
		t.pool.Unpin(leafIDs[i], true)
	}
	// Build internal levels bottom-up.
	ids, first := leafIDs, leafFirst
	ifill := maxInternal * 9 / 10
	if ifill < 2 {
		ifill = 2
	}
	for len(ids) > 1 {
		var upIDs []storage.PageID
		var upFirst []Key
		for off := 0; off < len(ids); {
			id, buf, err := t.pool.Allocate()
			if err != nil {
				return err
			}
			initNode(buf, typeInternal)
			group := len(ids) - off
			if group > ifill+1 {
				group = ifill + 1
			}
			setLink(buf, ids[off])
			for j := 1; j < group; j++ {
				putInternalEntry(buf, j-1, first[off+j], ids[off+j])
			}
			setCount(buf, group-1)
			t.pool.Unpin(id, true)
			upIDs = append(upIDs, id)
			upFirst = append(upFirst, first[off])
			off += group
		}
		ids, first = upIDs, upFirst
	}
	t.root = ids[0]
	t.size = len(keys)
	return nil
}

// Depth returns the tree height (1 = just a leaf). For diagnostics.
func (t *Tree) Depth() (int, error) {
	d := 1
	id := t.root
	for {
		buf, err := t.pool.Pin(id)
		if err != nil {
			return 0, err
		}
		if nodeType(buf) == typeLeaf {
			t.pool.Unpin(id, false)
			return d, nil
		}
		next := nodeLink(buf)
		t.pool.Unpin(id, false)
		id = next
		d++
	}
}
