package btree

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"hazy/internal/storage"
)

func newTree(t *testing.T, poolPages int) *Tree {
	t.Helper()
	p, err := storage.OpenPager(filepath.Join(t.TempDir(), "bt.pg"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	tr, err := New(storage.NewBufferPool(p, poolPages))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func ridFor(i int) storage.RID {
	return storage.RID{Page: storage.PageID(i / 100), Slot: uint16(i % 100)}
}

func TestInsertGetSmall(t *testing.T) {
	tr := newTree(t, 16)
	keys := []Key{{0.5, 1}, {-0.3, 2}, {0.5, 0}, {2.25, 3}}
	for i, k := range keys {
		if err := tr.Insert(k, ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != len(keys) {
		t.Fatalf("len=%d", tr.Len())
	}
	for i, k := range keys {
		rid, ok, err := tr.Get(k)
		if err != nil || !ok {
			t.Fatalf("get %v: ok=%v err=%v", k, ok, err)
		}
		if rid != ridFor(i) {
			t.Fatalf("get %v: rid=%v want %v", k, rid, ridFor(i))
		}
	}
	if _, ok, _ := tr.Get(Key{9.9, 9}); ok {
		t.Fatal("phantom key found")
	}
}

func TestDuplicateRejected(t *testing.T) {
	tr := newTree(t, 16)
	k := Key{1.0, 7}
	if err := tr.Insert(k, ridFor(0)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(k, ridFor(1)); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestKeyOrdering(t *testing.T) {
	a := Key{1.0, 5}
	b := Key{1.0, 6}
	c := Key{2.0, 0}
	if !a.Less(b) || !b.Less(c) || b.Less(a) {
		t.Fatal("Less wrong")
	}
}

func TestManyInsertsSplitsAndOrder(t *testing.T) {
	tr := newTree(t, 64)
	const n = 5000
	r := rand.New(rand.NewSource(7))
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key{Eps: r.NormFloat64(), ID: int64(i)}
		if err := tr.Insert(keys[i], ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len=%d", tr.Len())
	}
	d, err := tr.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d < 2 {
		t.Fatalf("depth=%d, no splits for %d keys?", d, n)
	}
	// Full scan must be sorted and complete.
	var got []Key
	err = tr.Scan(func(k Key, rid storage.RID) (bool, error) {
		got = append(got, k)
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scan %d of %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Fatalf("scan out of order at %d: %v !< %v", i, got[i-1], got[i])
		}
	}
	// Every key retrievable with the right rid.
	for i, k := range keys {
		rid, ok, err := tr.Get(k)
		if err != nil || !ok || rid != ridFor(i) {
			t.Fatalf("get %v: %v %v %v", k, rid, ok, err)
		}
	}
}

func TestRangeScanExact(t *testing.T) {
	tr := newTree(t, 64)
	const n = 3000
	r := rand.New(rand.NewSource(11))
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = r.Float64()*4 - 2
		if err := tr.Insert(Key{eps[i], int64(i)}, ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 50; trial++ {
		lo := r.Float64()*4 - 2
		hi := lo + r.Float64()*2
		want := map[int64]bool{}
		for i, e := range eps {
			if e >= lo && e <= hi {
				want[int64(i)] = true
			}
		}
		got := map[int64]bool{}
		err := tr.Range(lo, hi, func(k Key, rid storage.RID) (bool, error) {
			if k.Eps < lo || k.Eps > hi {
				t.Fatalf("range returned out-of-band key %v for [%v,%v]", k, lo, hi)
			}
			got[k.ID] = true
			return true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("range [%v,%v]: got %d want %d", lo, hi, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("missing id %d in range [%v,%v]", id, lo, hi)
			}
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := newTree(t, 16)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(Key{float64(i), int64(i)}, ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	err := tr.Range(0, 99, func(k Key, rid storage.RID) (bool, error) {
		count++
		return count < 5, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t, 64)
	const n = 1200
	for i := 0; i < n; i++ {
		if err := tr.Insert(Key{float64(i), int64(i)}, ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		ok, err := tr.Delete(Key{float64(i), int64(i)})
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	if ok, _ := tr.Delete(Key{float64(0), 0}); ok {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != n/2 {
		t.Fatalf("len=%d", tr.Len())
	}
	for i := 0; i < n; i++ {
		_, ok, _ := tr.Get(Key{float64(i), int64(i)})
		if (i%2 == 0) == ok {
			t.Fatalf("key %d presence=%v", i, ok)
		}
	}
}

func TestBulkLoadEqualsIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const n = 4000
	keys := make([]Key, n)
	rids := make([]storage.RID, n)
	for i := range keys {
		keys[i] = Key{Eps: r.NormFloat64(), ID: int64(i)}
		rids[i] = ridFor(i)
	}
	type kr struct {
		k Key
		r storage.RID
	}
	pairs := make([]kr, n)
	for i := range pairs {
		pairs[i] = kr{keys[i], rids[i]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].k.Less(pairs[b].k) })
	sk := make([]Key, n)
	sr := make([]storage.RID, n)
	for i, p := range pairs {
		sk[i], sr[i] = p.k, p.r
	}

	bulk := newTree(t, 64)
	if err := bulk.BulkLoad(sk, sr); err != nil {
		t.Fatal(err)
	}
	incr := newTree(t, 64)
	for i := range keys {
		if err := incr.Insert(keys[i], rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	collect := func(tr *Tree) []kr {
		var out []kr
		tr.Scan(func(k Key, rid storage.RID) (bool, error) {
			out = append(out, kr{k, rid})
			return true, nil
		})
		return out
	}
	a, b := collect(bulk), collect(incr)
	if len(a) != n || len(b) != n {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bulk vs incremental diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if bulk.Len() != n {
		t.Fatalf("bulk len=%d", bulk.Len())
	}
	// Bulk-loaded tree accepts further inserts.
	if err := bulk.Insert(Key{Eps: 1e9, ID: -1}, ridFor(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := bulk.Get(Key{Eps: 1e9, ID: -1}); !ok {
		t.Fatal("insert after bulk load lost")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := newTree(t, 16)
	if err := tr.Insert(Key{1, 1}, ridFor(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(nil, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("len=%d", tr.Len())
	}
	seen := 0
	tr.Scan(func(Key, storage.RID) (bool, error) { seen++; return true, nil })
	if seen != 0 {
		t.Fatalf("empty tree scanned %d", seen)
	}
	// And still usable.
	if err := tr.Insert(Key{2, 2}, ridFor(2)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tr.Get(Key{2, 2}); !ok {
		t.Fatal("insert into emptied tree lost")
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	tr := newTree(t, 16)
	err := tr.BulkLoad(
		[]Key{{2, 0}, {1, 0}},
		[]storage.RID{ridFor(0), ridFor(1)},
	)
	if err == nil {
		t.Fatal("unsorted bulk load accepted")
	}
	if err := tr.BulkLoad([]Key{{1, 0}}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestSmallBufferPoolStillCorrect(t *testing.T) {
	// Force heavy eviction: pool of 8 pages for a tree of thousands.
	tr := newTree(t, 8)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Insert(Key{float64(i % 97), int64(i)}, ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	prev := Key{Eps: math.Inf(-1), ID: math.MinInt64}
	err := tr.Scan(func(k Key, rid storage.RID) (bool, error) {
		if !prev.Less(k) {
			t.Fatalf("order violated: %v then %v", prev, k)
		}
		prev = k
		count++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan %d of %d", count, n)
	}
}

// Property: after a random interleaving of inserts and deletes, the
// tree contents equal a model map and iteration is sorted.
func TestRandomizedAgainstModel(t *testing.T) {
	tr := newTree(t, 32)
	r := rand.New(rand.NewSource(99))
	model := map[Key]storage.RID{}
	for op := 0; op < 8000; op++ {
		k := Key{Eps: float64(r.Intn(500)) / 10, ID: int64(r.Intn(200))}
		if _, exists := model[k]; !exists && r.Float64() < 0.7 {
			rid := ridFor(op)
			if err := tr.Insert(k, rid); err != nil {
				t.Fatal(err)
			}
			model[k] = rid
		} else if exists {
			ok, err := tr.Delete(k)
			if err != nil || !ok {
				t.Fatalf("delete existing %v: %v %v", k, ok, err)
			}
			delete(model, k)
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("len=%d model=%d", tr.Len(), len(model))
	}
	got := map[Key]storage.RID{}
	tr.Scan(func(k Key, rid storage.RID) (bool, error) {
		got[k] = rid
		return true, nil
	})
	if len(got) != len(model) {
		t.Fatalf("scan=%d model=%d", len(got), len(model))
	}
	for k, rid := range model {
		if got[k] != rid {
			t.Fatalf("mismatch at %v", k)
		}
	}
}
