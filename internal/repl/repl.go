// Package repl is the statement loop shared by the hazyql command and
// the end-to-end tests: it reads ';'-terminated SQL statements,
// executes them against any Executor — an embedded hazy.Session or a
// remote server connection — and renders the results identically.
// Because every surface drives this one loop, "the same script
// produces the same output locally and over the wire" is a property
// of the code shape, not a test convention.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	root "hazy"
)

// Executor runs one SQL statement. *hazy.Session implements it
// directly; internal/server.Client implements it by sending the
// statement through the SQL wire command.
type Executor interface {
	Exec(stmt string) (*root.Result, error)
}

// Run reads statements from in until EOF (or \q), executing each
// against e and writing results to out. When interactive, prompts are
// printed and errors do not stop the loop; in script mode (-f, tests)
// errors are reported on out the same way but the loop also
// continues, so a script's output is a deterministic transcript.
func Run(e Executor, in io.Reader, out io.Writer, interactive bool) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if interactive {
			if buf.Len() == 0 {
				fmt.Fprint(out, "hazy> ")
			} else {
				fmt.Fprint(out, "  ... ")
			}
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == `\q` {
			return nil
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		stmt := buf.String()
		buf.Reset()
		if strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(stmt), ";")) == "" {
			prompt()
			continue
		}
		res, err := e.Exec(stmt)
		switch {
		case err != nil:
			fmt.Fprintln(out, "error:", err)
		case res.Msg != "":
			fmt.Fprintln(out, res.Msg)
		default:
			Render(out, res)
		}
		prompt()
	}
	return sc.Err()
}

// Render writes a result set as the REPL's table form.
func Render(w io.Writer, res *root.Result) {
	fmt.Fprintln(w, strings.Join(res.Cols, " | "))
	for _, row := range res.Rows {
		fmt.Fprintln(w, strings.Join(row, " | "))
	}
	fmt.Fprintf(w, "(%d rows)\n", len(res.Rows))
}
