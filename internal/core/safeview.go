package core

import (
	"fmt"
	"sync"

	"hazy/internal/learn"
	"hazy/internal/vector"
)

// SafeView wraps a View with a readers-writer lock so many reader
// goroutines can issue Single Entity and All Members reads while a
// single writer streams updates — the concurrency model behind the
// paper's scale-up experiment (App. C.2: "the locking protocols are
// trivial for Single Entity reads").
//
// Lazy-mode All Members reads mutate Skiing state (waste accrual and
// possible reorganization), so Members and CountMembers take the
// write lock in lazy mode.
type SafeView struct {
	mu   sync.RWMutex
	v    View
	lazy bool
}

// NewSafeView wraps v; lazyMode must match the wrapped view's mode.
func NewSafeView(v View, lazyMode bool) *SafeView {
	return &SafeView{v: v, lazy: lazyMode}
}

// Update folds in a training example under the write lock.
func (s *SafeView) Update(f vector.Vector, label int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v.Update(f, label)
}

// Insert adds an entity under the write lock.
func (s *SafeView) Insert(e Entity) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v.Insert(e)
}

// Retrain rebuilds the model under the write lock.
func (s *SafeView) Retrain(examples []learn.Example) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v.Retrain(examples)
}

// Label answers a point read under the read lock.
func (s *SafeView) Label(id int64) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.v.Label(id)
}

// Members lists the positive ids. Lazy views mutate maintenance
// state during the scan, so they take the write lock.
func (s *SafeView) Members() ([]int64, error) {
	if s.lazy {
		s.mu.Lock()
		defer s.mu.Unlock()
	} else {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	return s.v.Members()
}

// CountMembers counts the positive ids (same locking as Members).
func (s *SafeView) CountMembers() (int, error) {
	if s.lazy {
		s.mu.Lock()
		defer s.mu.Unlock()
	} else {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	return s.v.CountMembers()
}

// Model returns a clone of the current model (safe to retain).
func (s *SafeView) Model() *learn.Model {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.v.Model().Clone()
}

// Stats snapshots maintenance counters.
func (s *SafeView) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.v.Stats()
}

// UpdateBatch group-applies examples under the write lock, using the
// wrapped view's batch path when it has one.
func (s *SafeView) UpdateBatch(examples []learn.Example) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ApplyBatch(s.v, examples)
}

// Snapshot exports an immutable read snapshot of the wrapped view.
// Snapshot construction resolves labels without the lazy read path,
// so the read lock suffices even in lazy mode.
func (s *SafeView) Snapshot() (*Snapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sn, ok := s.v.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("core: %T does not support snapshots", s.v)
	}
	return sn.Snapshot()
}

var _ View = (*SafeView)(nil)
var _ BatchUpdater = (*SafeView)(nil)
var _ Snapshotter = (*SafeView)(nil)
