package core

import (
	"container/heap"
	"math"
	"sync/atomic"

	"hazy/internal/learn"
	"hazy/internal/storage"
	"hazy/internal/vector"
)

// HybridView is the hybrid architecture of §3.5.2: the full on-disk
// Hazy structure, plus two in-memory summaries —
//
//   - the ε-map h(s): id → eps, which is tiny (no feature vectors;
//     (k + sizeof(double)) per entity) and answers every Single
//     Entity read outside the water band without touching disk, and
//   - a buffer of at most B entities nearest the decision boundary
//     (those most likely to change label), which absorbs most of the
//     remaining reads.
//
// The lookup procedure is App. B.4 Figure 8: ε-map + watermarks
// first, then the buffer, then disk.
type HybridView struct {
	*DiskView
	bufferCap int
	epsMap    map[int64]float64
	buffer    map[int64]vector.Vector

	// Hit counters are atomic: Label is a read and runs under a read
	// lock with other readers (App. C.2), so its bookkeeping must not
	// introduce a write-write race.
	hitEps, hitBuffer, hitDisk atomic.Int64
}

// NewHybridView builds a hybrid view. The buffer holds at most
// opts.BufferFrac × len(entities) entities (paper default 1%).
func NewHybridView(dir string, poolPages int, entities []Entity, opts Options) (*HybridView, error) {
	opts = opts.withDefaults()
	dv, err := NewDiskView(dir, poolPages, entities, HazyStrategy, opts)
	if err != nil {
		return nil, err
	}
	h := &HybridView{
		DiskView:  dv,
		bufferCap: int(opts.BufferFrac * float64(len(entities))),
	}
	if h.bufferCap < 1 {
		h.bufferCap = 1
	}
	if err := h.rebuildMemory(); err != nil {
		return nil, err
	}
	return h, nil
}

// bufferEntry orders buffered candidates by distance from the
// boundary (larger |eps| = worse candidate, evicted first).
type bufferEntry struct {
	id  int64
	abs float64
	f   vector.Vector
}

type bufferHeap []bufferEntry

func (h bufferHeap) Len() int           { return len(h) }
func (h bufferHeap) Less(i, j int) bool { return h[i].abs > h[j].abs } // max-heap on |eps|
func (h bufferHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *bufferHeap) Push(x any)        { *h = append(*h, x.(bufferEntry)) }
func (h *bufferHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	*h = old[:n-1]
	return out
}

// rebuildMemory reconstructs the ε-map and the boundary buffer from
// the (freshly clustered) disk table.
func (h *HybridView) rebuildMemory() error {
	h.epsMap = make(map[int64]float64, h.dt.Len())
	bh := make(bufferHeap, 0, h.bufferCap+1)
	err := h.dt.ScanAll(func(_ storage.RID, id int64, eps float64, _ int, f vector.Vector) error {
		h.epsMap[id] = eps
		heap.Push(&bh, bufferEntry{id: id, abs: math.Abs(eps), f: f})
		if len(bh) > h.bufferCap {
			heap.Pop(&bh)
		}
		return nil
	})
	if err != nil {
		return err
	}
	h.buffer = make(map[int64]vector.Vector, len(bh))
	for _, e := range bh {
		h.buffer[e.id] = e.f
	}
	return nil
}

// Update maintains the disk structure; if it triggered a
// reorganization, the in-memory summaries are rebuilt against the new
// stored model (that rebuild is part of the hybrid's reorganization
// cost, which is why the hybrid "has a more expensive resort",
// App. C.2).
func (h *HybridView) Update(f vector.Vector, label int) error {
	before := 0
	if h.sk != nil {
		before = h.sk.Reorgs()
	}
	if err := h.DiskView.Update(f, label); err != nil {
		return err
	}
	if h.sk != nil && h.sk.Reorgs() != before {
		return h.rebuildMemory()
	}
	return nil
}

// Members lists the positive ids. In lazy mode the underlying All
// Members read accrues Skiing waste and can trigger a reorganization
// (§3.4); like Update, the hybrid must then rebuild its ε-map and
// buffer against the new stored model, or Label would keep testing
// stale eps values against the reset watermarks. Lazy Members
// therefore mutates maintenance state and needs the writer's lock
// (SafeView provides it), same as the other layouts.
func (h *HybridView) Members() ([]int64, error) {
	var out []int64
	err := h.membersRebuilding(func(id int64) { out = append(out, id) })
	return out, err
}

// CountMembers counts the positive ids (same reorg discipline as
// Members).
func (h *HybridView) CountMembers() (int, error) {
	n := 0
	err := h.membersRebuilding(func(int64) { n++ })
	return n, err
}

// membersRebuilding drives the disk layer's All Members read and
// rebuilds the in-memory summaries if the read reorganized.
func (h *HybridView) membersRebuilding(fn func(id int64)) error {
	before := 0
	if h.sk != nil {
		before = h.sk.Reorgs()
	}
	if err := h.DiskView.members(fn); err != nil {
		return err
	}
	if h.sk != nil && h.sk.Reorgs() != before {
		return h.rebuildMemory()
	}
	return nil
}

// Retrain rebuilds the model from scratch, reclusters disk, and
// refreshes the in-memory summaries.
func (h *HybridView) Retrain(examples []learn.Example) error {
	if err := h.DiskView.Retrain(examples); err != nil {
		return err
	}
	return h.rebuildMemory()
}

// Insert adds the entity to disk and to the ε-map (and to the buffer
// when there is room — new entities near the boundary are exactly the
// ones worth caching).
func (h *HybridView) Insert(e Entity) error {
	if err := h.DiskView.Insert(e); err != nil {
		return err
	}
	eps := h.wm.Eps(e.F)
	h.epsMap[e.ID] = eps
	if len(h.buffer) < h.bufferCap {
		h.buffer[e.ID] = e.F
	}
	return nil
}

// Label implements the App. B.4 lookup: watermark test on the ε-map,
// then the buffer, then disk.
func (h *HybridView) Label(id int64) (int, error) {
	eps, ok := h.epsMap[id]
	if !ok {
		h.hitDisk.Add(1)
		return h.DiskView.Label(id)
	}
	if label, certain := h.wm.Test(eps); certain {
		h.hitEps.Add(1)
		return label, nil
	}
	if f, ok := h.buffer[id]; ok {
		h.hitBuffer.Add(1)
		return h.trainer.Model().Predict(f), nil
	}
	h.hitDisk.Add(1)
	return h.DiskView.Label(id)
}

// Hits reports how many Single Entity reads were served by the ε-map
// filter, the buffer, and disk, respectively.
func (h *HybridView) Hits() (epsMap, buffer, disk int64) {
	return h.hitEps.Load(), h.hitBuffer.Load(), h.hitDisk.Load()
}

// Stats extends the disk stats with the hybrid memory footprint
// (Figure 6(A)): the ε-map costs (key + sizeof(double)) per entity
// and the buffer additionally stores feature vectors.
func (h *HybridView) Stats() Stats {
	s := h.DiskView.Stats()
	s.EpsMapBytes = int64(len(h.epsMap)) * (8 + 8)
	for _, f := range h.buffer {
		s.BufferBytes += int64(8 + f.EncodedSize())
	}
	return s
}

var (
	_ View = (*HybridView)(nil)
	_ View = (*DiskView)(nil)
	_ View = (*MemView)(nil)
)
