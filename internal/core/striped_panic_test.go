package core

import (
	"strings"
	"sync/atomic"
	"testing"

	"hazy/internal/sched"
	"hazy/internal/vector"
)

// TestForStripesPanicPropagates is the regression test for the
// process-killing stripe worker: a panic inside a forStripes fn used
// to unwind a bare worker goroutine (fatal), or — recovered naively —
// leave wg.Wait hanging. Now it must re-raise on the caller as a
// *sched.TaskPanic, and only after every other stripe task has
// finished.
func TestForStripesPanicPropagates(t *testing.T) {
	var ents []Entity
	for id := int64(1); id <= 64; id++ {
		ents = append(ents, Entity{ID: id, F: vector.NewDense([]float64{1, 0})})
	}
	v, err := NewStriped(ents, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var ran atomic.Int32
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("stripe panic did not propagate to the forStripes caller")
		}
		tp, ok := r.(*sched.TaskPanic)
		if !ok {
			t.Fatalf("recovered %T, want *sched.TaskPanic", r)
		}
		if !strings.Contains(tp.Error(), "stripe exploded") {
			t.Fatalf("TaskPanic = %v, want original panic value", tp)
		}
		if got := ran.Load(); got != 8 {
			t.Fatalf("stripe fns finished = %d, want all 8 before the re-panic (no mid-mutation unwind)", got)
		}
		// The view is still usable: the panic killed one parallel
		// section, not the pool or the process.
		if n, err := v.CountMembers(); err != nil || n != 64 {
			t.Fatalf("CountMembers after panic = %d, %v; want all 64 entities", n, err)
		}
	}()
	v.forStripes(func(i int, st *stripe) error {
		defer ran.Add(1)
		if i == 3 {
			panic("stripe exploded")
		}
		return nil
	})
	t.Fatal("unreachable: forStripes should have panicked")
}

// TestForStripesSingleStripePanic covers the n=1 path, which runs
// entirely on the caller.
func TestForStripesSingleStripePanic(t *testing.T) {
	v, err := NewStriped(nil, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("single-stripe panic did not propagate")
		}
	}()
	v.forStripes(func(i int, st *stripe) error { panic("solo") })
}
