package core

import (
	"time"
)

// Skiing is the paper's online reorganization strategy (§3.2.1,
// Figure 7): accumulate the measured cost of incremental steps and
// reorganize when the accumulated waste reaches α·S, where S is the
// measured cost of the last reorganization. It is a ski-rental
// argument; Lemma 3.2 shows the competitive ratio 1+α+σ is optimal
// among deterministic online strategies and Theorem 3.3 that it
// tends to 2 as the data grows.
type Skiing struct {
	// Alpha is the waste multiplier α (α = 1 suffices in practice).
	Alpha float64

	s   time.Duration // measured reorganization cost S
	acc time.Duration // accumulated waste a(i)

	reorgs   int
	incSteps int
}

// NewSkiing returns a strategy with parameter alpha.
func NewSkiing(alpha float64) *Skiing { return &Skiing{Alpha: alpha} }

// ShouldReorganize reports whether the accumulated cost has reached
// α·S. Before the first reorganization has been measured (S = 0) it
// reports false; Hazy performs its initial clustering at build time,
// which seeds S.
func (sk *Skiing) ShouldReorganize() bool {
	return sk.s > 0 && float64(sk.acc) >= sk.Alpha*float64(sk.s)
}

// AddCost records the measured cost c(i) of an incremental step:
// a(i+1) = a(i) + c(i) (Eq. 1).
func (sk *Skiing) AddCost(c time.Duration) {
	sk.acc += c
	sk.incSteps++
}

// AddWaste records a fractional waste cost without counting an
// incremental step (used by the lazy approach, §3.4, where waste
// accrues on All Members reads: c = (NR − N+)/NR · S_read).
func (sk *Skiing) AddWaste(c time.Duration) { sk.acc += c }

// DidReorganize records that a reorganization costing s completed:
// S ← s and the accumulator resets to 0.
func (sk *Skiing) DidReorganize(s time.Duration) {
	sk.s = s
	sk.acc = 0
	sk.reorgs++
}

// S returns the last measured reorganization cost.
func (sk *Skiing) S() time.Duration { return sk.s }

// Accumulated returns the current waste accumulator a(i).
func (sk *Skiing) Accumulated() time.Duration { return sk.acc }

// Reorgs returns the number of reorganizations recorded.
func (sk *Skiing) Reorgs() int { return sk.reorgs }

// IncSteps returns the number of incremental steps recorded.
func (sk *Skiing) IncSteps() int { return sk.incSteps }
