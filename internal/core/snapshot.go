package core

import (
	"fmt"
	"sort"

	"hazy/internal/learn"
)

// SnapEntry is one entity in an immutable Snapshot: its id, the eps
// under the snapshot's stored model (meaningful only for the Hazy
// strategy), and its exact label under the model current at snapshot
// time.
type SnapEntry struct {
	ID    int64
	Eps   float64
	Label int8
}

// Snapshot is an immutable, point-in-time copy of a view's logical
// contents: the current model plus every entity's exact label. It is
// safe for unsynchronized concurrent reads from any number of
// goroutines — nothing in it is ever mutated after construction —
// which is what lets a serving layer answer Single Entity and All
// Members reads without taking the view's locks.
//
// Labels are resolved exactly at build time (watermark-certain labels
// from the stored eps, band labels against the current model), so a
// Snapshot never needs the lazy read path and never accrues Skiing
// waste; the maintenance engine amortizes reorganization through its
// batched write path instead.
type Snapshot struct {
	model     *learn.Model
	entries   []SnapEntry // eps-ascending when clustered
	byID      map[int64]int
	members   int
	clustered bool
	stats     Stats
}

// Snapshotter is implemented by views that can export an immutable
// read snapshot.
type Snapshotter interface {
	Snapshot() (*Snapshot, error)
}

// Model returns the snapshot's model. Callers must not mutate it.
func (s *Snapshot) Model() *learn.Model { return s.model }

// Len returns the number of entities in the snapshot.
func (s *Snapshot) Len() int { return len(s.entries) }

// Entries exposes the snapshot's (id, eps, label) rows — eps-ascending
// for clustered snapshots. The returned slice is shared immutable
// state: callers must not modify it. It lets a SQL layer answer full
// view scans from the snapshot without touching the live tables.
func (s *Snapshot) Entries() []SnapEntry { return s.entries }

// Stats returns the maintenance counters captured at snapshot time.
func (s *Snapshot) Stats() Stats { return s.stats }

// Label answers a Single Entity read from the snapshot.
func (s *Snapshot) Label(id int64) (int, error) {
	i, ok := s.byID[id]
	if !ok {
		return 0, fmt.Errorf("core: no entity %d", id)
	}
	return int(s.entries[i].Label), nil
}

// Members answers an All Members read: the ids labeled +1.
func (s *Snapshot) Members() []int64 {
	out := make([]int64, 0, s.members)
	for i := range s.entries {
		if s.entries[i].Label > 0 {
			out = append(out, s.entries[i].ID)
		}
	}
	return out
}

// CountMembers returns |{id : label(id) = +1}| without materializing
// the ids.
func (s *Snapshot) CountMembers() int { return s.members }

// MostUncertain returns up to k entity ids nearest the decision
// boundary by stored eps, walking outward from eps = 0 over the
// clustered order. It requires a snapshot of a Hazy-strategy view
// (the naive layout has no eps ordering).
func (s *Snapshot) MostUncertain(k int) ([]int64, error) {
	if !s.clustered {
		return nil, fmt.Errorf("core: MostUncertain requires the Hazy strategy")
	}
	return walkUncertain(len(s.entries), k,
		func(i int) float64 { return s.entries[i].Eps },
		func(i int) int64 { return s.entries[i].ID }), nil
}

// walkUncertain merges outward from eps = 0 over an eps-ascending
// sequence, returning up to k ids by increasing |eps| — the shared
// core of the MostUncertain reads.
func walkUncertain(n, k int, eps func(int) float64, id func(int) int64) []int64 {
	hi := sort.Search(n, func(i int) bool { return eps(i) >= 0 })
	lo := hi - 1
	out := make([]int64, 0, k)
	for len(out) < k && (lo >= 0 || hi < n) {
		switch {
		case lo < 0:
			out = append(out, id(hi))
			hi++
		case hi >= n:
			out = append(out, id(lo))
			lo--
		case -eps(lo) <= eps(hi):
			out = append(out, id(lo))
			lo--
		default:
			out = append(out, id(hi))
			hi++
		}
	}
	return out
}

// Snapshot exports the main-memory view's contents. The entries are
// already clustered on eps for the Hazy strategy, so the export is a
// single pass; labels are resolved exactly (the certain region from
// the watermarks, the band against the current model) without
// mutating any maintenance state.
func (v *MemView) Snapshot() (*Snapshot, error) {
	cur := v.trainer.Model()
	s := &Snapshot{
		model:     cur.Clone(),
		entries:   make([]SnapEntry, len(v.entries)),
		byID:      make(map[int64]int, len(v.entries)),
		clustered: v.strategy == HazyStrategy,
		stats:     v.Stats(),
	}
	for i, ent := range v.entries {
		var label int8
		switch {
		case v.opts.Mode == Eager:
			label = ent.label
		case v.strategy == HazyStrategy:
			if l, certain := v.wm.Test(ent.eps); certain {
				label = int8(l)
			} else {
				label = int8(cur.Predict(ent.f))
			}
		default:
			label = int8(cur.Predict(ent.f))
		}
		s.entries[i] = SnapEntry{ID: ent.id, Eps: ent.eps, Label: label}
		s.byID[ent.id] = i
		if label > 0 {
			s.members++
		}
	}
	return s, nil
}

// BatchUpdater is implemented by views that can group-apply a run of
// training examples: every example is folded into the model (and its
// drift into the watermarks), but the expensive maintenance sweep
// over [lw, hw] runs once per batch instead of once per update.
type BatchUpdater interface {
	UpdateBatch(examples []learn.Example) error
}

// ApplyBatch folds examples into v with one group-applied maintenance
// step when v supports it, falling back to per-example Updates
// otherwise. Both paths leave the view in the same logical state.
func ApplyBatch(v View, examples []learn.Example) error {
	if b, ok := v.(BatchUpdater); ok {
		return b.UpdateBatch(examples)
	}
	for _, ex := range examples {
		if err := v.Update(ex.F, ex.Label); err != nil {
			return err
		}
	}
	return nil
}
