package core

import (
	"container/heap"
	"math"

	"hazy/internal/storage"
	"hazy/internal/vector"
)

// diskStripeStore is the on-disk stripe layout: one generation file of
// heap pages with a clustered B+-tree on (eps, id) behind a private
// buffer pool, in the stripe's own subdirectory. Giving every stripe
// its own diskTable (instead of key-prefixed ranges in one shared
// tree) keeps the parallel sections genuinely independent — no shared
// pager lock, no cross-stripe page contention — and makes the
// per-stripe reorganization exactly the single-view Rebuild: scan,
// sort n/P records, and bulk-load a fresh generation with batched
// page writes through the buffer pool.
type diskStripeStore struct {
	dt *diskTable
}

// newDiskStripeStore opens the stripe's table under dir with its own
// buffer pool of poolPages pages.
func newDiskStripeStore(dir string, poolPages int) (*diskStripeStore, error) {
	dt, err := newDiskTable(dir, poolPages, true)
	if err != nil {
		return nil, err
	}
	return &diskStripeStore{dt: dt}, nil
}

func (s *diskStripeStore) Len() int { return s.dt.Len() }

func (s *diskStripeStore) Has(id int64) bool {
	_, ok := s.dt.byID[id]
	return ok
}

// Load bulk-loads the initial records through the heap's batched page
// writer, skipping the B+-tree entirely: the initial clustering
// Rebuild that always follows rewrites the tree from scratch anyway,
// so per-record tree descents during load would be pure waste.
func (s *diskStripeStore) Load(entities []Entity, classOf func(f vector.Vector) int) error {
	return s.dt.BulkInsert(entities, classOf)
}

func (s *diskStripeStore) Insert(id int64, eps float64, class int, f vector.Vector) error {
	return s.dt.Insert(id, eps, class, f)
}

func (s *diskStripeStore) EpsOf(id int64) (float64, error) { return s.dt.GetEps(id) }

func (s *diskStripeStore) Class(id int64) (int, error) { return s.dt.GetClass(id) }

func (s *diskStripeStore) FeatureOf(id int64) (vector.Vector, error) {
	_, _, f, err := s.dt.Get(id)
	return f, err
}

func (s *diskStripeStore) Rebuild(epsOf func(f vector.Vector) float64) error {
	return s.dt.Rebuild(epsOf)
}

func (s *diskStripeStore) SweepBand(lo, hi float64, predict func(f vector.Vector) int) (int, error) {
	n := 0
	err := s.dt.ScanBand(lo, hi, func(rid storage.RID, _ int64, _ float64, class int, f vector.Vector) error {
		n++
		if nl := predict(f); nl != class {
			return s.dt.PatchClass(rid, nl)
		}
		return nil
	})
	return n, err
}

func (s *diskStripeStore) ScanKeysAbove(hi float64, fn func(id int64) error) error {
	return s.dt.ScanKeysAbove(hi, fn)
}

func (s *diskStripeStore) CountRange(lo, hi float64) (int, error) {
	n, err := s.dt.CountAbove(lo)
	if err != nil {
		return 0, err
	}
	above, err := s.dt.CountAbove(math.Nextafter(hi, math.Inf(1)))
	if err != nil {
		return 0, err
	}
	return n - above, nil
}

func (s *diskStripeStore) NearestZero(k int) ([]SnapEntry, error) {
	keys, err := s.dt.NearestZero(k)
	if err != nil {
		return nil, err
	}
	out := make([]SnapEntry, len(keys))
	for i, key := range keys {
		out[i] = SnapEntry{ID: key.ID, Eps: key.Eps}
	}
	return out, nil
}

func (s *diskStripeStore) Cursor(lo, hi float64, res *LabelResolver) (RowCursor, error) {
	return s.dt.cursor(lo, hi, res)
}

func (s *diskStripeStore) Close() error { return s.dt.Close() }

// IOStats exposes the stripe's physical I/O counters.
func (s *diskStripeStore) IOStats() storage.IOStats { return s.dt.Stats() }

// hybridStripeStore adds the §3.5.2 in-memory summaries to the
// on-disk stripe: the ε-map (id → eps, no feature vectors) answers
// every eps lookup without touching disk, and a bounded buffer of the
// entities nearest the decision boundary absorbs most feature-vector
// reads in the uncertain band. Both are rebuilt after every
// reorganization — part of the hybrid's "more expensive resort"
// (App. C.2) — which the generic striped layer triggers through
// Rebuild, so the lazy-mode waste discipline composes per stripe with
// no extra wiring.
type hybridStripeStore struct {
	*diskStripeStore
	frac      float64
	bufferCap int
	epsMap    map[int64]float64
	buffer    map[int64]vector.Vector
}

func newHybridStripeStore(dir string, poolPages int, bufferFrac float64) (*hybridStripeStore, error) {
	ds, err := newDiskStripeStore(dir, poolPages)
	if err != nil {
		return nil, err
	}
	return &hybridStripeStore{diskStripeStore: ds, frac: bufferFrac, epsMap: map[int64]float64{}}, nil
}

// Load sizes the boundary buffer off the stripe's share of the entity
// set (paper default 1%, at least one entry) before bulk-loading the
// disk records.
func (s *hybridStripeStore) Load(entities []Entity, classOf func(f vector.Vector) int) error {
	s.bufferCap = int(s.frac * float64(len(entities)))
	if s.bufferCap < 1 {
		s.bufferCap = 1
	}
	return s.diskStripeStore.Load(entities, classOf)
}

// rebuildMemory reconstructs the ε-map and the boundary buffer from
// the freshly clustered disk table.
func (s *hybridStripeStore) rebuildMemory() error {
	if s.bufferCap < 1 {
		s.bufferCap = 1
	}
	s.epsMap = make(map[int64]float64, s.dt.Len())
	bh := make(bufferHeap, 0, s.bufferCap+1)
	err := s.dt.ScanAll(func(_ storage.RID, id int64, eps float64, _ int, f vector.Vector) error {
		s.epsMap[id] = eps
		heap.Push(&bh, bufferEntry{id: id, abs: math.Abs(eps), f: f})
		if len(bh) > s.bufferCap {
			heap.Pop(&bh)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.buffer = make(map[int64]vector.Vector, len(bh))
	for _, e := range bh {
		s.buffer[e.id] = e.f
	}
	return nil
}

func (s *hybridStripeStore) Rebuild(epsOf func(f vector.Vector) float64) error {
	if err := s.diskStripeStore.Rebuild(epsOf); err != nil {
		return err
	}
	return s.rebuildMemory()
}

func (s *hybridStripeStore) Insert(id int64, eps float64, class int, f vector.Vector) error {
	if err := s.diskStripeStore.Insert(id, eps, class, f); err != nil {
		return err
	}
	s.epsMap[id] = eps
	if len(s.buffer) < s.bufferCap {
		s.buffer[id] = f
	}
	return nil
}

// EpsOf answers from the ε-map (App. B.4's first stop) before falling
// back to disk.
func (s *hybridStripeStore) EpsOf(id int64) (float64, error) {
	if eps, ok := s.epsMap[id]; ok {
		return eps, nil
	}
	return s.diskStripeStore.EpsOf(id)
}

// FeatureOf serves boundary-near vectors from the buffer (App. B.4's
// second stop) before falling back to disk.
func (s *hybridStripeStore) FeatureOf(id int64) (vector.Vector, error) {
	if f, ok := s.buffer[id]; ok {
		return f, nil
	}
	return s.diskStripeStore.FeatureOf(id)
}

// MemoryFootprint reports the summaries' sizes for Stats (Figure
// 6(A)): the ε-map costs (key + sizeof(double)) per entity and the
// buffer additionally stores feature vectors.
func (s *hybridStripeStore) MemoryFootprint() (epsMapBytes, bufferBytes int64) {
	epsMapBytes = int64(len(s.epsMap)) * (8 + 8)
	for _, f := range s.buffer {
		bufferBytes += int64(8 + f.EncodedSize())
	}
	return epsMapBytes, bufferBytes
}

var (
	_ StripeStore = (*diskStripeStore)(nil)
	_ StripeStore = (*hybridStripeStore)(nil)
)
