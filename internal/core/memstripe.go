package core

import (
	"fmt"
	"sort"

	"hazy/internal/learn"
	"hazy/internal/vector"
)

// memStripeStore is the main-memory stripe layout: an eps-clustered
// slice of entries plus a hash index, exactly the physical structure
// MemView keeps for a whole view, scoped to one stripe.
type memStripeStore struct {
	entries []*memEntry
	byID    map[int64]*memEntry
}

func newMemStripeStore() *memStripeStore {
	return &memStripeStore{byID: map[int64]*memEntry{}}
}

func (s *memStripeStore) Len() int { return len(s.entries) }

func (s *memStripeStore) Has(id int64) bool {
	_, ok := s.byID[id]
	return ok
}

func (s *memStripeStore) lookup(id int64) (*memEntry, error) {
	ent, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("core: no entity %d", id)
	}
	return ent, nil
}

func (s *memStripeStore) Load(entities []Entity, classOf func(f vector.Vector) int) error {
	for _, e := range entities {
		if _, dup := s.byID[e.ID]; dup {
			return fmt.Errorf("core: duplicate entity %d", e.ID)
		}
		ent := &memEntry{id: e.ID, f: e.F, label: int8(classOf(e.F))}
		s.entries = append(s.entries, ent)
		s.byID[e.ID] = ent
	}
	return nil
}

func (s *memStripeStore) Insert(id int64, eps float64, class int, f vector.Vector) error {
	if _, dup := s.byID[id]; dup {
		return fmt.Errorf("core: duplicate entity %d", id)
	}
	ent := &memEntry{id: id, f: f, eps: eps, label: int8(class)}
	pos := sort.Search(len(s.entries), func(i int) bool {
		o := s.entries[i]
		if o.eps != ent.eps {
			return o.eps > ent.eps
		}
		return o.id > ent.id
	})
	s.entries = append(s.entries, nil)
	copy(s.entries[pos+1:], s.entries[pos:])
	s.entries[pos] = ent
	s.byID[id] = ent
	return nil
}

func (s *memStripeStore) EpsOf(id int64) (float64, error) {
	ent, err := s.lookup(id)
	if err != nil {
		return 0, err
	}
	return ent.eps, nil
}

func (s *memStripeStore) Class(id int64) (int, error) {
	ent, err := s.lookup(id)
	if err != nil {
		return 0, err
	}
	return int(ent.label), nil
}

func (s *memStripeStore) FeatureOf(id int64) (vector.Vector, error) {
	ent, err := s.lookup(id)
	if err != nil {
		return vector.Vector{}, err
	}
	return ent.f, nil
}

func (s *memStripeStore) Rebuild(epsOf func(f vector.Vector) float64) error {
	for _, ent := range s.entries {
		ent.eps = epsOf(ent.f)
		ent.label = int8(learn.Sign(ent.eps))
	}
	sort.Slice(s.entries, func(a, b int) bool {
		ea, eb := s.entries[a], s.entries[b]
		if ea.eps != eb.eps {
			return ea.eps < eb.eps
		}
		return ea.id < eb.id
	})
	return nil
}

// band returns the half-open index interval [lo, hi) of entries with
// eps ∈ [lw, hw].
func (s *memStripeStore) band(lw, hw float64) (lo, hi int) {
	lo = sort.Search(len(s.entries), func(i int) bool { return s.entries[i].eps >= lw })
	hi = sort.Search(len(s.entries), func(i int) bool { return s.entries[i].eps > hw })
	return lo, hi
}

func (s *memStripeStore) SweepBand(lo, hi float64, predict func(f vector.Vector) int) (int, error) {
	a, b := s.band(lo, hi)
	for i := a; i < b; i++ {
		ent := s.entries[i]
		ent.label = int8(predict(ent.f))
	}
	return b - a, nil
}

func (s *memStripeStore) ScanKeysAbove(hi float64, fn func(id int64) error) error {
	_, b := s.band(hi, hi)
	for i := b; i < len(s.entries); i++ {
		if err := fn(s.entries[i].id); err != nil {
			return err
		}
	}
	return nil
}

func (s *memStripeStore) CountRange(lo, hi float64) (int, error) {
	a, b := s.band(lo, hi)
	return b - a, nil
}

func (s *memStripeStore) NearestZero(k int) ([]SnapEntry, error) {
	n := len(s.entries)
	hi := sort.Search(n, func(i int) bool { return s.entries[i].eps >= 0 })
	lo := hi - 1
	out := make([]SnapEntry, 0, k)
	for len(out) < k && (lo >= 0 || hi < n) {
		var pick *memEntry
		switch {
		case lo < 0:
			pick, hi = s.entries[hi], hi+1
		case hi >= n:
			pick, lo = s.entries[lo], lo-1
		case -s.entries[lo].eps <= s.entries[hi].eps:
			pick, lo = s.entries[lo], lo-1
		default:
			pick, hi = s.entries[hi], hi+1
		}
		out = append(out, SnapEntry{ID: pick.id, Eps: pick.eps})
	}
	return out, nil
}

// memStripeCursor walks a band of the clustered slice, resolving
// labels through the resolver without mutating maintenance state.
type memStripeCursor struct {
	s      *memStripeStore
	res    *LabelResolver
	i, end int
}

func (c *memStripeCursor) row(ent *memEntry) (SnapEntry, error) {
	label, err := c.res.resolve(ent.eps,
		func() (int, error) { return int(ent.label), nil },
		func() (vector.Vector, error) { return ent.f, nil })
	if err != nil {
		return SnapEntry{}, err
	}
	return SnapEntry{ID: ent.id, Eps: ent.eps, Label: int8(label)}, nil
}

func (c *memStripeCursor) Next() (SnapEntry, bool, error) {
	if c.i >= c.end {
		return SnapEntry{}, false, nil
	}
	e, err := c.row(c.s.entries[c.i])
	if err != nil {
		return SnapEntry{}, false, err
	}
	c.i++
	return e, true, nil
}

func (c *memStripeCursor) NextBatch(dst []SnapEntry) (int, error) {
	n := len(dst)
	if rest := c.end - c.i; rest < n {
		n = rest
	}
	if n <= 0 {
		return 0, nil
	}
	for k := 0; k < n; k++ {
		e, err := c.row(c.s.entries[c.i+k])
		if err != nil {
			return 0, err
		}
		dst[k] = e
	}
	c.i += n
	return n, nil
}

func (c *memStripeCursor) Close() {}

func (s *memStripeStore) Cursor(lo, hi float64, res *LabelResolver) (RowCursor, error) {
	a, b := s.band(lo, hi)
	return &memStripeCursor{s: s, res: res, i: a, end: b}, nil
}

func (s *memStripeStore) Close() error { return nil }

var _ StripeStore = (*memStripeStore)(nil)
