package core

import (
	"math/rand"
	"testing"

	"hazy/internal/learn"
)

// TestRetrainMatchesFreshModel verifies the §2.2-footnote path: after
// deleting examples, Retrain(remaining) leaves every variant's view
// identical to one trained only on the remaining examples.
func TestRetrainMatchesFreshModel(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	entities := testEntities(r, 150)
	stream := trainingStream(r, 80)
	keep := stream[:50] // the "surviving" examples after deletions

	views := allVariants(t, entities, Options{SGD: learn.SGDConfig{Eta0: 0.3}})
	for _, ex := range stream {
		for _, v := range views {
			if err := v.Update(ex.F, ex.Label); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Oracle: a model trained only on keep.
	oracle := learn.NewSGD(learn.SGDConfig{Eta0: 0.3})
	for _, ex := range keep {
		oracle.Train(ex.F, ex.Label)
	}
	for name, v := range views {
		if err := v.Retrain(keep); err != nil {
			t.Fatalf("%s retrain: %v", name, err)
		}
		if got := v.Model().B; got != oracle.Model().B {
			t.Fatalf("%s: model bias %v, oracle %v", name, got, oracle.Model().B)
		}
		for trial := 0; trial < 30; trial++ {
			id := int64(r.Intn(len(entities)))
			want := oracle.Model().Predict(entities[id].F)
			got, err := v.Label(id)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: label(%d)=%d oracle %d after retrain", name, id, got, want)
			}
		}
	}
}

// TestReorgPolicies checks the ablation endpoints stay correct and
// behave as advertised: Never performs exactly the initial
// clustering, Always reorganizes on every update, and all policies
// agree with the oracle on view contents.
func TestReorgPolicies(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	entities := testEntities(r, 200)
	stream := trainingStream(r, 100)

	policies := []ReorgPolicy{ReorgSkiing, ReorgNever, ReorgAlways}
	views := make([]*MemView, len(policies))
	for i, p := range policies {
		views[i] = NewMemView(entities, HazyStrategy, Options{
			Mode: Eager, Reorg: p, SGD: learn.SGDConfig{Eta0: 0.3},
		})
	}
	for _, ex := range stream {
		for _, v := range views {
			if err := v.Update(ex.F, ex.Label); err != nil {
				t.Fatal(err)
			}
		}
	}
	oracle := views[0].Model()
	wantCount := 0
	for _, e := range entities {
		if oracle.Predict(e.F) > 0 {
			wantCount++
		}
	}
	for i, v := range views {
		cnt, err := v.CountMembers()
		if err != nil || cnt != wantCount {
			t.Fatalf("%v: count %d want %d (%v)", policies[i], cnt, wantCount, err)
		}
	}
	if got := views[1].Stats().Reorgs; got != 1 {
		t.Fatalf("Never reorganized %d times", got)
	}
	if got := views[2].Stats().Reorgs; got != len(stream)+1 {
		t.Fatalf("Always reorganized %d times, want %d", got, len(stream)+1)
	}
	if views[1].Stats().BandTuples < views[2].Stats().BandTuples {
		t.Fatal("Never's band should dominate Always's (which is always empty-ish)")
	}
}

func TestReorgPolicyOnDisk(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	entities := testEntities(r, 80)
	stream := trainingStream(r, 40)
	for _, p := range []ReorgPolicy{ReorgNever, ReorgAlways} {
		v, err := NewDiskView(t.TempDir(), 32, entities, HazyStrategy, Options{
			Mode: Eager, Reorg: p, SGD: learn.SGDConfig{Eta0: 0.3},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, ex := range stream {
			if err := v.Update(ex.F, ex.Label); err != nil {
				t.Fatal(err)
			}
		}
		oracle := v.Model()
		want := 0
		for _, e := range entities {
			if oracle.Predict(e.F) > 0 {
				want++
			}
		}
		cnt, err := v.CountMembers()
		if err != nil || cnt != want {
			t.Fatalf("%v: count %d want %d (%v)", p, cnt, want, err)
		}
		v.Close()
	}
}

func TestReorgPolicyStrings(t *testing.T) {
	if ReorgSkiing.String() != "skiing" || ReorgNever.String() != "never" || ReorgAlways.String() != "always" {
		t.Fatal("policy strings wrong")
	}
}

// TestRetrainHybridRefreshesEpsMap ensures the hybrid's in-memory
// summaries follow a retrain (stale ε-maps would poison every
// subsequent read).
func TestRetrainHybridRefreshesEpsMap(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	entities := testEntities(r, 120)
	h, err := NewHybridView(t.TempDir(), 64, entities, Options{
		Mode: Eager, SGD: learn.SGDConfig{Eta0: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	stream := trainingStream(r, 60)
	for _, ex := range stream {
		if err := h.Update(ex.F, ex.Label); err != nil {
			t.Fatal(err)
		}
	}
	// Retrain on a flipped stream: the model reverses.
	flipped := make([]learn.Example, len(stream))
	for i, ex := range stream {
		flipped[i] = learn.Example{F: ex.F, Label: -ex.Label}
	}
	if err := h.Retrain(flipped); err != nil {
		t.Fatal(err)
	}
	oracle := h.Model()
	for trial := 0; trial < 50; trial++ {
		id := int64(r.Intn(len(entities)))
		got, err := h.Label(id)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracle.Predict(entities[id].F); got != want {
			t.Fatalf("label(%d)=%d oracle %d after hybrid retrain", id, got, want)
		}
	}
}
