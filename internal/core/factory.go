package core

import "fmt"

// New constructs a view of the requested architecture and strategy.
// dir is used only by the on-disk and hybrid architectures (their
// page files live under it); poolPages sizes their buffer pool.
// opts.Partitions > 1 selects the partition-striped main-memory
// layout (Hazy strategy only).
func New(arch Arch, strategy Strategy, dir string, poolPages int, entities []Entity, opts Options) (View, error) {
	if opts.Partitions > 1 {
		if arch != MainMemory || strategy != HazyStrategy {
			return nil, fmt.Errorf("core: striping (PARTITIONS %d) requires the MainMemory architecture and the Hazy strategy", opts.Partitions)
		}
		return NewStriped(entities, opts.Partitions, opts)
	}
	switch arch {
	case MainMemory:
		return NewMemView(entities, strategy, opts), nil
	case OnDisk:
		return NewDiskView(dir, poolPages, entities, strategy, opts)
	case HybridArch:
		if strategy != HazyStrategy {
			return nil, fmt.Errorf("core: the hybrid architecture requires the Hazy strategy")
		}
		return NewHybridView(dir, poolPages, entities, opts)
	default:
		return nil, fmt.Errorf("core: unknown architecture %d", arch)
	}
}
