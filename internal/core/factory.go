package core

import "fmt"

// viewKey identifies one point in the layout space the factory routes
// over: physical architecture × maintenance strategy × whether the
// view is partition-striped.
type viewKey struct {
	arch     Arch
	strategy Strategy
	striped  bool
}

// builder constructs a view for one supported layout combination.
type builder func(dir string, poolPages int, entities []Entity, opts Options) (View, error)

// layouts is the capability table: every (architecture, strategy,
// striped) combination the engine supports, mapped to its
// constructor. A combination absent from the table is unsupported and
// New explains why instead of guessing — the two structural holes are
// striping without eps clustering (the stripes would have nothing to
// cluster or reorganize independently) and the hybrid architecture
// without the Hazy strategy (its ε-map and boundary buffer are
// summaries of the eps clustering).
var layouts = map[viewKey]builder{
	{MainMemory, HazyStrategy, false}: func(_ string, _ int, entities []Entity, opts Options) (View, error) {
		return NewMemView(entities, HazyStrategy, opts), nil
	},
	{MainMemory, Naive, false}: func(_ string, _ int, entities []Entity, opts Options) (View, error) {
		return NewMemView(entities, Naive, opts), nil
	},
	{OnDisk, HazyStrategy, false}: func(dir string, poolPages int, entities []Entity, opts Options) (View, error) {
		return NewDiskView(dir, poolPages, entities, HazyStrategy, opts)
	},
	{OnDisk, Naive, false}: func(dir string, poolPages int, entities []Entity, opts Options) (View, error) {
		return NewDiskView(dir, poolPages, entities, Naive, opts)
	},
	{HybridArch, HazyStrategy, false}: func(dir string, poolPages int, entities []Entity, opts Options) (View, error) {
		return NewHybridView(dir, poolPages, entities, opts)
	},
	{MainMemory, HazyStrategy, true}: func(_ string, _ int, entities []Entity, opts Options) (View, error) {
		return NewStriped(entities, opts.Partitions, opts)
	},
	{OnDisk, HazyStrategy, true}: func(dir string, poolPages int, entities []Entity, opts Options) (View, error) {
		return NewStripedDisk(dir, poolPages, entities, opts.Partitions, opts)
	},
	{HybridArch, HazyStrategy, true}: func(dir string, poolPages int, entities []Entity, opts Options) (View, error) {
		return NewStripedHybrid(dir, poolPages, entities, opts.Partitions, opts)
	},
}

// New constructs a view of the requested architecture and strategy
// from the capability table. dir is used only by the on-disk and
// hybrid architectures (their page files live under it; striped
// layouts keep one subdirectory per stripe); poolPages sizes their
// buffer pool (split across stripes when striped). opts.Partitions >
// 1 selects the partition-striped layout of the same architecture —
// every architecture stripes under the Hazy strategy.
func New(arch Arch, strategy Strategy, dir string, poolPages int, entities []Entity, opts Options) (View, error) {
	key := viewKey{arch: arch, strategy: strategy, striped: opts.Partitions > 1}
	if build, ok := layouts[key]; ok {
		return build(dir, poolPages, entities, opts)
	}
	switch {
	case key.striped && strategy != HazyStrategy:
		return nil, fmt.Errorf("core: striping (PARTITIONS %d) requires the Hazy strategy: the %s strategy keeps no eps clustering for the stripes to maintain", opts.Partitions, strategy)
	case arch == HybridArch && strategy != HazyStrategy:
		return nil, fmt.Errorf("core: the hybrid architecture requires the Hazy strategy (its ε-map and boundary buffer summarize the eps clustering)")
	default:
		return nil, fmt.Errorf("core: unsupported layout: architecture %s, strategy %s, partitions %d", arch, strategy, opts.Partitions)
	}
}
