package core

import (
	"fmt"
	"sort"
	"time"

	"hazy/internal/learn"
	"hazy/internal/obs"
	"hazy/internal/vector"
)

// memEntry is one entity in the main-memory architecture. eps and
// label are with respect to the stored model for the Hazy strategy;
// for the naive eager strategy label tracks the current model and
// eps is unused.
type memEntry struct {
	id    int64
	f     vector.Vector
	eps   float64
	label int8
}

// MemView is the main-memory architecture (Hazy-MM, §3.5.1) for both
// the naive and Hazy strategies in either maintenance mode. With the
// Hazy strategy the entries slice is kept clustered (sorted) on eps —
// "we still cluster the data in main memory, which is crucial to
// achieve good performance" — and reorganized per Skiing.
type MemView struct {
	opts     Options
	strategy Strategy
	trainer  *learn.SGD
	entries  []*memEntry
	byID     map[int64]*memEntry
	wm       *Watermark
	sk       *Skiing
	met      *viewMetrics
	stats    Stats
}

// NewMemView builds a main-memory view over entities. For the Hazy
// strategy the initial clustering doubles as the first
// reorganization, seeding the Skiing cost S.
func NewMemView(entities []Entity, strategy Strategy, opts Options) *MemView {
	opts = opts.withDefaults()
	v := &MemView{
		opts:     opts,
		strategy: strategy,
		trainer:  learn.NewSGD(opts.SGD),
		byID:     make(map[int64]*memEntry, len(entities)),
	}
	for _, ex := range opts.Warm {
		v.trainer.Train(ex.F, ex.Label)
	}
	v.entries = make([]*memEntry, 0, len(entities))
	for _, e := range entities {
		ent := &memEntry{id: e.ID, f: e.F}
		v.entries = append(v.entries, ent)
		v.byID[e.ID] = ent
	}
	if strategy == HazyStrategy {
		v.wm = NewWatermark(opts.Norm)
		v.sk = NewSkiing(opts.Alpha)
		v.met = newViewMetrics(opts.Metrics, obs.L("view", opts.MetricsName)...)
		var m float64
		q := v.wm.Q()
		for _, ent := range v.entries {
			if n := ent.f.Norm(q); n > m {
				m = n
			}
		}
		v.wm.M = m
		v.reorganize()
	} else {
		v.relabelAll()
	}
	return v
}

// Model returns the current model.
func (v *MemView) Model() *learn.Model { return v.trainer.Model() }

// relabelAll stamps every entry with the current model's label (the
// naive eager maintenance step).
func (v *MemView) relabelAll() {
	m := v.trainer.Model()
	for _, ent := range v.entries {
		ent.label = int8(m.Predict(ent.f))
	}
}

// reorganize re-clusters the entries on eps under the current model,
// resets the watermarks, and records the measured cost S. Labels are
// re-stamped to sign(eps).
func (v *MemView) reorganize() {
	start := time.Now()
	cur := v.trainer.Model()
	v.wm.Reset(cur, v.wm.M)
	v.met.observeWMReset()
	for _, ent := range v.entries {
		ent.eps = v.wm.Eps(ent.f)
		ent.label = int8(learn.Sign(ent.eps))
	}
	sort.Slice(v.entries, func(a, b int) bool {
		ea, eb := v.entries[a], v.entries[b]
		if ea.eps != eb.eps {
			return ea.eps < eb.eps
		}
		return ea.id < eb.id
	})
	elapsed := time.Since(start)
	v.sk.DidReorganize(elapsed)
	v.met.observeReorg(elapsed)
}

// band returns the half-open index interval [lo, hi) of entries with
// eps ∈ [lw, hw].
func (v *MemView) band(lw, hw float64) (lo, hi int) {
	lo = sort.Search(len(v.entries), func(i int) bool { return v.entries[i].eps >= lw })
	hi = sort.Search(len(v.entries), func(i int) bool { return v.entries[i].eps > hw })
	return lo, hi
}

// Update folds in one training example and maintains the view — a
// batch of one.
func (v *MemView) Update(f vector.Vector, label int) error {
	return v.UpdateBatch([]learn.Example{{F: f, Label: label}})
}

// UpdateBatch group-applies a run of training examples: every example
// is one SGD step and one watermark observation (both O(dim)), but
// the reorganize-or-sweep decision and the band reclassification —
// the per-update costs the paper's incremental step pays — run once
// for the whole batch. For the same examples the resulting view
// contents equal a sequence of Updates; only the amount of
// maintenance work differs.
func (v *MemView) UpdateBatch(examples []learn.Example) error {
	if len(examples) == 0 {
		return nil
	}
	if v.strategy == Naive {
		for _, ex := range examples {
			v.trainer.Train(ex.F, ex.Label)
			v.stats.Updates++
		}
		if v.opts.Mode == Eager {
			v.relabelAll()
		}
		return nil
	}
	// Hazy strategy: fold each new model into the watermarks.
	var lw, hw float64
	for _, ex := range examples {
		v.trainer.Train(ex.F, ex.Label)
		v.stats.Updates++
		lw, hw = v.wm.Observe(v.trainer.Model())
	}
	if v.opts.Reorg == ReorgAlways {
		v.reorganize()
		return nil
	}
	if v.opts.Mode == Lazy {
		// Lazy updates are optimal (§3.4): train and return; waste
		// accrues on All Members reads.
		return nil
	}
	if v.opts.Reorg == ReorgSkiing && v.sk.ShouldReorganize() {
		v.reorganize()
		return nil
	}
	start := time.Now()
	lo, hi := v.band(lw, hw)
	cur := v.trainer.Model()
	for i := lo; i < hi; i++ {
		ent := v.entries[i]
		ent.label = int8(cur.Predict(ent.f))
	}
	v.stats.Reclassified += int64(hi - lo)
	v.sk.AddCost(time.Since(start))
	v.met.observeSweep(hi - lo)
	return nil
}

// Insert adds a new entity, classified under the current model.
func (v *MemView) Insert(e Entity) error {
	if _, dup := v.byID[e.ID]; dup {
		return fmt.Errorf("core: duplicate entity %d", e.ID)
	}
	cur := v.trainer.Model()
	ent := &memEntry{id: e.ID, f: e.F, label: int8(cur.Predict(e.F))}
	if v.strategy == HazyStrategy {
		// Widening M (if needed) then observing keeps the band sound
		// for the enlarged corpus.
		v.wm.ObserveEntity(e.F)
		v.wm.Observe(cur)
		ent.eps = v.wm.Eps(e.F)
		pos := sort.Search(len(v.entries), func(i int) bool {
			o := v.entries[i]
			if o.eps != ent.eps {
				return o.eps > ent.eps
			}
			return o.id > ent.id
		})
		v.entries = append(v.entries, nil)
		copy(v.entries[pos+1:], v.entries[pos:])
		v.entries[pos] = ent
	} else {
		v.entries = append(v.entries, ent)
	}
	v.byID[e.ID] = ent
	return nil
}

// Label answers a Single Entity read.
func (v *MemView) Label(id int64) (int, error) {
	ent, ok := v.byID[id]
	if !ok {
		return 0, fmt.Errorf("core: no entity %d", id)
	}
	switch {
	case v.opts.Mode == Eager:
		// Both strategies keep labels current in eager mode.
		return int(ent.label), nil
	case v.strategy == HazyStrategy:
		if label, certain := v.wm.Test(ent.eps); certain {
			return label, nil
		}
		return v.trainer.Model().Predict(ent.f), nil
	default:
		return v.trainer.Model().Predict(ent.f), nil
	}
}

// members drives an All Members read, invoking fn for every positive
// entity.
func (v *MemView) members(fn func(id int64)) error {
	switch {
	case v.strategy == Naive && v.opts.Mode == Eager:
		for _, ent := range v.entries {
			if ent.label > 0 {
				fn(ent.id)
			}
		}
	case v.strategy == Naive: // lazy: classify everything
		cur := v.trainer.Model()
		for _, ent := range v.entries {
			if cur.Predict(ent.f) > 0 {
				fn(ent.id)
			}
		}
	case v.opts.Mode == Eager:
		// Hazy eager: labels are current; scan only eps ≥ lw — all
		// positives live there (below lw is certainly negative).
		lw, hw := v.wm.Band()
		lo, hi := v.band(lw, hw)
		for i := lo; i < hi; i++ {
			if v.entries[i].label > 0 {
				fn(v.entries[i].id)
			}
		}
		for i := hi; i < len(v.entries); i++ {
			fn(v.entries[i].id)
		}
	default:
		// Hazy lazy (§3.4): read the NR tuples above low water; those
		// above high water are members without classification, the
		// band is classified against the current model. Waste
		// (NR − N+)/NR · S accrues toward reorganization.
		start := time.Now()
		lw, hw := v.wm.Band()
		lo, hi := v.band(lw, hw)
		cur := v.trainer.Model()
		nPos := len(v.entries) - hi
		for i := hi; i < len(v.entries); i++ {
			fn(v.entries[i].id)
		}
		for i := lo; i < hi; i++ {
			if cur.Predict(v.entries[i].f) > 0 {
				fn(v.entries[i].id)
				nPos++
			}
		}
		v.stats.Reclassified += int64(hi - lo)
		v.met.observeSweep(hi - lo)
		nRead := len(v.entries) - lo
		elapsed := time.Since(start)
		if nRead > 0 {
			waste := time.Duration(float64(elapsed) * float64(nRead-nPos) / float64(nRead))
			v.sk.AddWaste(waste)
		}
		if v.opts.Reorg == ReorgSkiing && v.sk.ShouldReorganize() {
			v.reorganize()
		}
	}
	return nil
}

// Retrain rebuilds the model from scratch on examples and brings the
// view up to date (the paper's path for deleted or relabeled training
// examples).
func (v *MemView) Retrain(examples []learn.Example) error {
	v.trainer = learn.NewSGD(v.opts.SGD)
	for _, ex := range examples {
		v.trainer.Train(ex.F, ex.Label)
	}
	switch {
	case v.strategy == HazyStrategy:
		v.reorganize()
	case v.opts.Mode == Eager:
		v.relabelAll()
	}
	return nil
}

// Members returns the ids labeled +1.
func (v *MemView) Members() ([]int64, error) {
	var out []int64
	err := v.members(func(id int64) { out = append(out, id) })
	return out, err
}

// CountMembers returns |{id : label(id) = +1}|.
func (v *MemView) CountMembers() (int, error) {
	n := 0
	err := v.members(func(int64) { n++ })
	return n, err
}

// MostUncertain returns up to k entity ids nearest the decision
// boundary under the stored model — the labels most worth asking a
// human about. The paper names active learning as a motivation for
// keeping exactly these entities at hand (App. D: "one of our initial
// motivations behind the hybrid approach is to allow active learning
// over large data sets"). Hazy strategy only (the naive layout has no
// eps ordering).
func (v *MemView) MostUncertain(k int) ([]int64, error) {
	if v.strategy != HazyStrategy {
		return nil, fmt.Errorf("core: MostUncertain requires the Hazy strategy")
	}
	return walkUncertain(len(v.entries), k,
		func(i int) float64 { return v.entries[i].eps },
		func(i int) int64 { return v.entries[i].id }), nil
}

// Stats returns maintenance counters.
func (v *MemView) Stats() Stats {
	s := v.stats
	if v.strategy == HazyStrategy {
		s.Reorgs = v.sk.Reorgs()
		s.IncSteps = v.sk.IncSteps()
		s.LastReorgNs = v.sk.S().Nanoseconds()
		s.LowWater, s.HighWater = v.wm.Band()
		lo, hi := v.band(s.LowWater, s.HighWater)
		s.BandTuples = hi - lo
	}
	return s
}
