// Package core implements the paper's primary contribution: the
// incremental maintenance of classification views. It provides the
// watermark machinery of Lemma 3.1 / Eq. (2), the Skiing
// reorganization strategy (§3.2.1, App. B.3), and five
// architecture/strategy combinations — naive and Hazy over
// main-memory and on-disk layouts, plus the hybrid architecture of
// §3.5.2 — in both eager and lazy maintenance modes.
//
// Every variant exposes the same View interface and, for the same
// update sequence, must produce identical view contents; they differ
// only in how much work each operation performs.
package core

import (
	"fmt"
	"math"
	"strings"

	"hazy/internal/learn"
	"hazy/internal/obs"
	"hazy/internal/sched"
	"hazy/internal/vector"
)

// Entity is one row of the In(id, f) relation: a key and its feature
// vector (the result of applying the view's feature function).
type Entity struct {
	ID int64
	F  vector.Vector
}

// Mode selects when view maintenance happens (§2.2).
type Mode int

// Maintenance modes.
const (
	// Eager maintains the materialized view on every update.
	Eager Mode = iota
	// Lazy applies the model only in response to reads.
	Lazy
)

// String names the mode.
func (m Mode) String() string {
	if m == Lazy {
		return "lazy"
	}
	return "eager"
}

// Strategy selects between the naive approach and Hazy's incremental
// data reorganization.
type Strategy int

// Maintenance strategies. The zero value is the Hazy strategy (the
// system's default); Naive is the explicit baseline.
const (
	// HazyStrategy clusters entities by eps and maintains watermarks
	// with Skiing-driven reorganization.
	HazyStrategy Strategy = iota
	// Naive is the state-of-the-art baseline: no clustering, no
	// watermarks.
	Naive
)

// String names the strategy.
func (s Strategy) String() string {
	if s == HazyStrategy {
		return "hazy"
	}
	return "naive"
}

// Arch selects the physical architecture (§3.5).
type Arch int

// Architectures.
const (
	// MainMemory keeps the classification view entirely in RAM
	// (Hazy-MM, §3.5.1).
	MainMemory Arch = iota
	// OnDisk keeps the view in heap pages behind a buffer pool.
	OnDisk
	// HybridArch keeps the ε-map and a bounded buffer in memory over
	// the on-disk structure (§3.5.2).
	HybridArch
)

// String names the architecture.
func (a Arch) String() string {
	switch a {
	case OnDisk:
		return "od"
	case HybridArch:
		return "hybrid"
	default:
		return "mm"
	}
}

// ParseMode is the case-insensitive inverse of Mode.String ("" is the
// default) — the one mapping shared by the SQL dialect and the
// catalog manifest.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "", "eager":
		return Eager, nil
	case "lazy":
		return Lazy, nil
	}
	return 0, fmt.Errorf("core: unknown mode %q", s)
}

// ParseStrategy is the case-insensitive inverse of Strategy.String.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "", "hazy":
		return HazyStrategy, nil
	case "naive":
		return Naive, nil
	}
	return 0, fmt.Errorf("core: unknown strategy %q", s)
}

// ParseArch is the case-insensitive inverse of Arch.String.
func ParseArch(s string) (Arch, error) {
	switch strings.ToLower(s) {
	case "", "mm":
		return MainMemory, nil
	case "od":
		return OnDisk, nil
	case "hybrid":
		return HybridArch, nil
	}
	return 0, fmt.Errorf("core: unknown architecture %q", s)
}

// ReorgPolicy selects when the Hazy strategy reorganizes — Skiing is
// the paper's strategy; Never and Always are the ablation endpoints
// of the ski-rental tradeoff (always "rent" vs always "buy").
type ReorgPolicy int

// Reorganization policies.
const (
	// ReorgSkiing reorganizes when accumulated waste reaches α·S.
	ReorgSkiing ReorgPolicy = iota
	// ReorgNever clusters once at build time and never again.
	ReorgNever
	// ReorgAlways reorganizes on every update.
	ReorgAlways
)

// String names the policy.
func (p ReorgPolicy) String() string {
	switch p {
	case ReorgNever:
		return "never"
	case ReorgAlways:
		return "always"
	default:
		return "skiing"
	}
}

// Options configures a classification view.
type Options struct {
	// Mode is Eager or Lazy.
	Mode Mode
	// Reorg selects the reorganization policy for the Hazy strategy
	// (default: Skiing).
	Reorg ReorgPolicy
	// Norm is p in Lemma 3.1; feature vectors are measured in the
	// Hölder conjugate q. Text processing uses p=∞ (q=1, §3.2.2
	// "Choosing the Norm"); dense ℓ2-normalized data uses p=q=2.
	// Defaults to ∞.
	Norm float64
	// Alpha is the Skiing parameter α; the paper uses α=1.
	Alpha float64
	// SGD configures the incremental trainer.
	SGD learn.SGDConfig
	// Warm is trained into the model before the view is first
	// materialized ("the experiment begins with a partially trained
	// (warm) model", §4.1.1). Warm examples do not count as updates.
	Warm []learn.Example
	// BufferFrac is the hybrid's buffer size as a fraction of the
	// entity count (paper default: 1%).
	BufferFrac float64
	// Partitions hash-partitions the view into this many independently
	// maintained stripes (per-stripe clustering, watermarks, and
	// Skiing, one shared model) so reorganization and rescans run in
	// parallel across a worker pool. 0 or 1 means unstriped; values
	// above 1 compose with every architecture (main-memory entry
	// arrays, per-stripe on-disk clustered trees, per-stripe hybrid
	// ε-maps) but require the Hazy strategy — the naive strategy
	// keeps no eps clustering for the stripes to maintain.
	Partitions int
	// Metrics, when non-nil, registers per-view maintenance collectors
	// (reorg count + duration, band-sweep sizes, watermark resets) on
	// the shared registry, labeled view=MetricsName; striped views add
	// a stripe=i label per stripe. Nil leaves the view's collectors
	// unregistered (they still accumulate, at atomic-add cost).
	Metrics *obs.Registry
	// MetricsName is the view label for registered collectors.
	MetricsName string
	// Pool is the shared maintenance pool striped views scatter their
	// per-stripe parallel sections onto, so stripe parallelism and
	// engine maintenance share one budget. Nil uses the process-wide
	// default pool.
	Pool *sched.Pool
}

func (o Options) withDefaults() Options {
	if o.Norm == 0 {
		o.Norm = math.Inf(1)
	}
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	if o.BufferFrac == 0 {
		o.BufferFrac = 0.01
	}
	return o
}

// Stats reports maintenance behaviour for experiments.
type Stats struct {
	// Updates is the number of training examples folded in.
	Updates int
	// Reorgs is the number of reorganization steps taken.
	Reorgs int
	// IncSteps is the number of incremental steps taken.
	IncSteps int
	// Reclassified is the total number of tuples re-examined by
	// incremental steps.
	Reclassified int64
	// BandTuples is the number of tuples currently inside
	// [lw, hw] (Figure 13's y-axis).
	BandTuples int
	// LowWater and HighWater are the current watermarks.
	LowWater, HighWater float64
	// EpsMapBytes and BufferBytes report the hybrid's memory
	// footprint (Figure 6(A)).
	EpsMapBytes, BufferBytes int64
	// LastReorgNs is the measured cost S of the most recent
	// reorganization, in nanoseconds. For striped views it reports
	// the slowest single stripe's last reorganization — the write
	// stall one reorganization event imposes, which striping bounds
	// at n/P records instead of n.
	LastReorgNs int64
}

// View is a maintained classification view V(id, class). All
// implementations agree on contents for the same inputs.
type View interface {
	// Update adds one training example (SQL INSERT into the examples
	// table) and performs the mode's maintenance.
	Update(f vector.Vector, label int) error
	// Insert adds a new entity (type-1 dynamic data, §1): it is
	// classified under the current model and stored.
	Insert(e Entity) error
	// Label answers a Single Entity read: the class of entity id.
	Label(id int64) (int, error)
	// Members answers an All Members read: the ids labeled +1, in
	// unspecified order.
	Members() ([]int64, error)
	// CountMembers answers "how many entities with label 1 are
	// there?" (§4.1.2) — the same scan without materializing ids.
	CountMembers() (int, error)
	// Model returns the current model (w(i), b(i)).
	Model() *learn.Model
	// Retrain discards the model and retrains from scratch on the
	// given examples, then brings the view up to date. The paper uses
	// this for deletions and label changes of training examples
	// (§2.2 footnote: "Hazy supports deletion and change of labels by
	// retraining the model from scratch").
	Retrain(examples []learn.Example) error
	// Stats returns maintenance counters.
	Stats() Stats
}
