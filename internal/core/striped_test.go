package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"hazy/internal/learn"
	"hazy/internal/vector"
)

// drainScan collects every row of an eps-range scan.
func drainScan(t *testing.T, v EpsIndexed, lo, hi float64) []SnapEntry {
	t.Helper()
	c, err := v.ScanEps(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out []SnapEntry
	for {
		e, ok, cerr := c.Next()
		if cerr != nil {
			t.Fatal(cerr)
		}
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// newStripedForTest builds a 4-stripe view of the given architecture
// (disk-resident layouts under a test tempdir with a small pool).
func newStripedForTest(t *testing.T, arch Arch, entities []Entity, opts Options) *StripedView {
	t.Helper()
	var v *StripedView
	var err error
	switch arch {
	case MainMemory:
		v, err = NewStriped(entities, 4, opts)
	case OnDisk:
		v, err = NewStripedDisk(t.TempDir(), 128, entities, 4, opts)
	case HybridArch:
		v, err = NewStripedHybrid(t.TempDir(), 128, entities, 4, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })
	return v
}

// TestStripedEquivalence is the striping invariant, asserted for
// every physical layout: a StripedView — main-memory, on-disk, or
// hybrid — fed a randomized workload of update batches and inserts
// reports exactly the labels and member sets of an unstriped
// main-memory view fed the same workload. The model is shared and
// exact, so neither stripe boundaries nor the storage layout may show
// through the logical contents. Checked in both modes and under every
// reorg policy (Skiing reorganizes stripes at timing-dependent
// moments, which may change per-stripe eps values but never labels).
func TestStripedEquivalence(t *testing.T) {
	for _, arch := range []Arch{MainMemory, OnDisk, HybridArch} {
		for _, mode := range []Mode{Eager, Lazy} {
			for _, reorg := range []ReorgPolicy{ReorgSkiing, ReorgNever, ReorgAlways} {
				t.Run(fmt.Sprintf("%s/%s/%s", arch, mode, reorg), func(t *testing.T) {
					r := rand.New(rand.NewSource(7))
					entities := testEntities(r, 400)
					opts := Options{Mode: mode, Reorg: reorg, Norm: math.Inf(1),
						SGD: learn.SGDConfig{Eta0: 0.3}, Warm: trainingStream(r, 20)}
					single := NewMemView(entities, HazyStrategy, opts)
					striped := newStripedForTest(t, arch, entities, opts)
					nextID := int64(len(entities))
					check := func(step int) {
						t.Helper()
						sm, _ := single.Members()
						tm, _ := striped.Members()
						if got, want := sortedIDs(tm), sortedIDs(sm); !equalIDs(got, want) {
							t.Fatalf("step %d: members diverge: striped %d ids, single %d ids", step, len(got), len(want))
						}
						sc, _ := single.CountMembers()
						tc, _ := striped.CountMembers()
						if sc != tc {
							t.Fatalf("step %d: counts diverge: striped %d, single %d", step, tc, sc)
						}
						for id := int64(0); id < nextID; id += 7 {
							sl, serr := single.Label(id)
							tl, terr := striped.Label(id)
							if (serr == nil) != (terr == nil) || sl != tl {
								t.Fatalf("step %d: Label(%d) diverges: striped (%d,%v) single (%d,%v)", step, id, tl, terr, sl, serr)
							}
						}
					}
					for step := 0; step < 30; step++ {
						switch r.Intn(3) {
						case 0: // one update
							ex := trainingStream(r, 1)
							if err := ApplyBatch(single, ex); err != nil {
								t.Fatal(err)
							}
							if err := ApplyBatch(striped, ex); err != nil {
								t.Fatal(err)
							}
						case 1: // a batch
							exs := trainingStream(r, 1+r.Intn(16))
							if err := ApplyBatch(single, exs); err != nil {
								t.Fatal(err)
							}
							if err := ApplyBatch(striped, exs); err != nil {
								t.Fatal(err)
							}
						default: // inserts
							for n := 1 + r.Intn(4); n > 0; n-- {
								e := Entity{ID: nextID, F: vector.NewDense([]float64{r.Float64() * 2, r.Float64() * 2})}
								nextID++
								if err := single.Insert(e); err != nil {
									t.Fatal(err)
								}
								if err := striped.Insert(e); err != nil {
									t.Fatal(err)
								}
							}
						}
						check(step)
					}

					// Snapshots agree on the logical contents too.
					ss, err := single.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					ts, err := striped.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					if ss.CountMembers() != ts.CountMembers() || ss.Len() != ts.Len() {
						t.Fatalf("snapshots diverge: striped (%d, %d) single (%d, %d)",
							ts.Len(), ts.CountMembers(), ss.Len(), ss.CountMembers())
					}
					for id := int64(0); id < nextID; id++ {
						sl, _ := ss.Label(id)
						tl, _ := ts.Label(id)
						if sl != tl {
							t.Fatalf("snapshot Label(%d) diverges: striped %d single %d", id, tl, sl)
						}
					}
				})
			}
		}
	}
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStripedEpsOrderMatchesUnstriped pins the physical agreement:
// under ReorgAlways every stripe's stored model equals the unstriped
// view's, so eps values, the merged eps ordering (the ScanEps and
// snapshot streams), EpsOf, and the UNCERTAIN walk must all be
// identical to the single-stripe layout.
func TestStripedEpsOrderMatchesUnstriped(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	entities := testEntities(r, 300)
	opts := Options{Mode: Eager, Reorg: ReorgAlways, Norm: math.Inf(1),
		SGD: learn.SGDConfig{Eta0: 0.3}, Warm: trainingStream(r, 15)}
	single := NewMemView(entities, HazyStrategy, opts)
	striped, err := NewStriped(entities, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range trainingStream(r, 40) {
		if err := single.Update(ex.F, ex.Label); err != nil {
			t.Fatal(err)
		}
		if err := striped.Update(ex.F, ex.Label); err != nil {
			t.Fatal(err)
		}
	}

	want := drainScan(t, single, math.Inf(-1), math.Inf(1))
	got := drainScan(t, striped, math.Inf(-1), math.Inf(1))
	if len(got) != len(want) {
		t.Fatalf("ScanEps lengths: striped %d single %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanEps[%d]: striped %+v single %+v", i, got[i], want[i])
		}
	}

	// A narrower band through the per-stripe scatter agrees too.
	lo, hi := want[len(want)/4].Eps, want[3*len(want)/4].Eps
	wb := drainScan(t, single, lo, hi)
	gb := drainScan(t, striped, lo, hi)
	if len(gb) != len(wb) {
		t.Fatalf("band lengths: striped %d single %d", len(gb), len(wb))
	}
	for i := range wb {
		if gb[i] != wb[i] {
			t.Fatalf("band[%d]: striped %+v single %+v", i, gb[i], wb[i])
		}
	}

	for id := int64(0); id < int64(len(entities)); id += 13 {
		se, _ := single.EpsOf(id)
		te, terr := striped.EpsOf(id)
		if terr != nil || se != te {
			t.Fatalf("EpsOf(%d): striped (%g,%v) single %g", id, te, terr, se)
		}
	}

	su, err := single.MostUncertain(25)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := striped.MostUncertain(25)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(su, tu) {
		t.Fatalf("MostUncertain diverges:\nstriped %v\nsingle  %v", tu, su)
	}

	// Snapshot entry order is the merged clustered order.
	ss, _ := single.Snapshot()
	ts, _ := striped.Snapshot()
	for i, e := range ss.Entries() {
		if ts.Entries()[i] != e {
			t.Fatalf("snapshot entries[%d]: striped %+v single %+v", i, ts.Entries()[i], e)
		}
	}
}

// TestStripedInsertBatch exercises the scatter-gather insert path:
// positional errors for duplicates, everything else applied and
// readable.
func TestStripedInsertBatch(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	entities := testEntities(r, 64)
	v, err := NewStriped(entities, 4, Options{Norm: math.Inf(1), SGD: learn.SGDConfig{Eta0: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	batch := []Entity{
		{ID: 100, F: vector.NewDense([]float64{1, 0})},
		{ID: 5, F: vector.NewDense([]float64{0, 1})}, // duplicate of a seed entity
		{ID: 101, F: vector.NewDense([]float64{0.5, 0.5})},
		{ID: 100, F: vector.NewDense([]float64{0, 0})}, // duplicate within the batch
	}
	errs := v.InsertBatch(batch)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("fresh inserts failed: %v %v", errs[0], errs[2])
	}
	if errs[1] == nil || errs[3] == nil {
		t.Fatalf("duplicates not rejected: %v %v", errs[1], errs[3])
	}
	for _, id := range []int64{100, 101} {
		if _, err := v.Label(id); err != nil {
			t.Fatalf("Label(%d) after InsertBatch: %v", id, err)
		}
	}
	if n, _ := v.CountMembers(); n < 0 || n > 64+2 {
		t.Fatalf("CountMembers = %d out of range", n)
	}
}

// TestStripedStats sanity-checks the aggregated counters.
func TestStripedStats(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	v, err := NewStriped(testEntities(r, 128), 4, Options{
		Norm: math.Inf(1), Reorg: ReorgAlways, SGD: learn.SGDConfig{Eta0: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range trainingStream(r, 10) {
		if err := v.Update(ex.F, ex.Label); err != nil {
			t.Fatal(err)
		}
	}
	s := v.Stats()
	if s.Updates != 10 {
		t.Fatalf("Updates = %d, want 10", s.Updates)
	}
	// Initial clustering + 10 ReorgAlways rounds, per stripe.
	if want := 4 * 11; s.Reorgs != want {
		t.Fatalf("Reorgs = %d, want %d", s.Reorgs, want)
	}
}

// TestStripedLazyRespectsReorgNever pins the policy guard on the lazy
// read path: waste accrues on Members reads, but only the Skiing
// policy may spend it — ReorgNever stripes cluster once at build time
// and never again, exactly like the unstriped layouts.
func TestStripedLazyRespectsReorgNever(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	v, err := NewStriped(testEntities(r, 100), 4, Options{
		Mode: Lazy, Reorg: ReorgNever, Alpha: 1e-9,
		Norm: math.Inf(1), SGD: learn.SGDConfig{Eta0: 0.5}, Warm: trainingStream(r, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	initial := v.Stats().Reorgs // one clustering per stripe at build
	for i := 0; i < 50; i++ {
		ex := trainingStream(r, 1)[0]
		if err := v.Update(ex.F, ex.Label); err != nil {
			t.Fatal(err)
		}
		if _, err := v.CountMembers(); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.Stats().Reorgs; got != initial {
		t.Fatalf("ReorgNever striped view reorganized: %d -> %d", initial, got)
	}
}
