package core

import (
	"math"
	"testing"

	"hazy/internal/learn"
	"hazy/internal/vector"
)

// TestObserveEntityRescalesBand is the regression for the stale-band
// bug: ObserveEntity used to widen M while leaving the accumulated
// [lw, hw] extrema computed under the smaller bound, so a high-norm
// insert could pass Test as "certain" with a band that never covered
// its drift. After widening, the band must still satisfy Eq. (2)
// under the new M for every model observed so far:
// hw ≥ M'·‖w_l − w_s‖_p + (b_l − b_s) and symmetrically for lw.
func TestObserveEntityRescalesBand(t *testing.T) {
	w := NewWatermark(math.Inf(1)) // q = 1
	stored := &learn.Model{W: []float64{1, 0}, B: 0}
	w.Reset(stored, 1) // corpus constant M = 1 so far
	cur := &learn.Model{W: []float64{1, -1}, B: 0}
	w.Observe(cur) // drift ‖Δw‖_∞ = 1 → band [−1, 1]

	// A high-norm entity arrives: ‖f‖₁ = 4.5 ≫ M. Its stored eps (2)
	// clears the stale high water (1), but the observed model labels
	// it negative: 2 − 2.5 < 0.
	f := vector.NewDense([]float64{2, 2.5})
	eps := w.Eps(f)
	if eps <= 1 {
		t.Fatalf("test setup: eps = %g, want > stale hw 1", eps)
	}
	if cur.Predict(f) != -1 {
		t.Fatalf("test setup: observed model should predict -1")
	}
	w.ObserveEntity(f)

	// The widened band must cover the observed model's drift under the
	// new M — the sufficient condition of Lemma 3.1, re-derived.
	lw, hw := w.Band()
	drift := w.M * cur.DiffNorm(stored, w.P)
	db := cur.B - stored.B
	if hw < drift+db {
		t.Fatalf("hw = %g fails to cover M'·drift + db = %g after widening", hw, drift+db)
	}
	if lw > -drift+db {
		t.Fatalf("lw = %g fails to cover −M'·drift + db = %g after widening", lw, -drift+db)
	}
	// In particular the new entity may no longer test certain-positive.
	if label, certain := w.Test(eps); certain && label != cur.Predict(f) {
		t.Fatalf("Test(%g) = (%d, certain) contradicts the observed model's %d", eps, label, cur.Predict(f))
	}
}

// TestObserveEntityZeroMBandWidensToUncertain pins the degenerate
// path: extrema accumulated while M = 0 carry no drift term to
// rescale, so widening M must make the whole band uncertain rather
// than trust b-only extrema.
func TestObserveEntityZeroMBandWidensToUncertain(t *testing.T) {
	w := NewWatermark(math.Inf(1))
	w.Reset(&learn.Model{W: []float64{1}, B: 0}, 0)
	w.Observe(&learn.Model{W: []float64{5}, B: -1}) // drift term 0·4, db = −1 → band [−1, 0]
	w.ObserveEntity(vector.NewDense([]float64{3}))
	if _, certain := w.Test(2); certain {
		t.Fatal("band accumulated under M = 0 must become fully uncertain after widening")
	}
}

// TestLazyInsertHighNormEntity pins the read contract end to end: a
// lazy Hazy MemView whose model has drifted since the last
// reorganization receives a high-norm insert engineered to sit above
// the pre-insert high water while the current model calls it
// negative. Label must agree with the current model. (The view's
// insert path observes the current model after widening M, so this
// holds as long as ObserveEntity and Observe stay sound together —
// the rescale keeps Watermark's "every model since s" contract true
// on its own, which TestObserveEntityRescalesBand checks directly.)
func TestLazyInsertHighNormEntity(t *testing.T) {
	// Small-norm corpus, warm model along dim 0, then drift in dim 1.
	entities := make([]Entity, 10)
	for i := range entities {
		entities[i] = Entity{ID: int64(i), F: vector.NewDense([]float64{0.1, 0.05})}
	}
	warm := make([]learn.Example, 8)
	for i := range warm {
		warm[i] = learn.Example{F: vector.NewDense([]float64{1, 0}), Label: 1}
	}
	v := NewMemView(entities, HazyStrategy, Options{
		Mode: Lazy, Norm: math.Inf(1), SGD: learn.SGDConfig{Eta0: 0.5}, Warm: warm,
	})
	for i := 0; i < 6; i++ {
		if err := v.Update(vector.NewDense([]float64{0, 1}), -1); err != nil {
			t.Fatal(err)
		}
	}
	stored, cur := v.wm.Stored(), v.trainer.Model()
	_, hw := v.wm.Band()
	if stored.W[0] <= 0 || cur.W[1] >= 0 || hw <= 0 {
		t.Fatalf("test setup: stored.W=%v cur.W=%v hw=%g", stored.W, cur.W, hw)
	}
	// Solve for a feature vector whose stored eps clears hw while the
	// current model predicts −1.
	a := (hw + stored.B + 1) / stored.W[0]
	b := (a*cur.W[0] - cur.B + 1) / -cur.W[1]
	f := vector.NewDense([]float64{a, b})
	if v.wm.Eps(f) <= hw || cur.Predict(f) != -1 {
		t.Fatalf("test setup: eps=%g hw=%g predict=%d", v.wm.Eps(f), hw, cur.Predict(f))
	}
	if err := v.Insert(Entity{ID: 99, F: f}); err != nil {
		t.Fatal(err)
	}
	want := v.trainer.Model().Predict(f)
	got, err := v.Label(99)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("lazy Label(99) = %d after high-norm insert, but the current model says %d (stale band)", got, want)
	}
}
