package core

import (
	"math"

	"hazy/internal/learn"
	"hazy/internal/vector"
)

// Watermark tracks the low/high water scalars of §3.2.2. After a
// reorganization at round s the stored model is (w(s), b(s)); for
// each subsequent round j Observe folds in
//
//	ε_high(s,j) =  M·‖w(j) − w(s)‖_p + (b(j) − b(s))
//	ε_low(s,j)  = −M·‖w(j) − w(s)‖_p + (b(j) − b(s))
//
// per Lemma 3.1, maintaining the running extrema of Eq. (2):
// hw = max_l ε_high(s,l), lw = min_l ε_low(s,l). Both extrema include
// l = s (where ε = 0), so hw ≥ 0 ≥ lw always: a tuple with stored
// eps ≥ hw is certainly in the positive class under every model seen
// since s, and eps ≤ lw certainly negative.
type Watermark struct {
	// P is the norm applied to the model delta; feature vectors are
	// bounded in the Hölder conjugate q (M = max ‖f‖_q).
	P float64
	// M is the corpus constant max_t ‖f(t)‖_q.
	M float64

	stored *learn.Model
	lw, hw float64
}

// NewWatermark creates a tracker using the p-norm on model drift.
func NewWatermark(p float64) *Watermark { return &Watermark{P: p} }

// Q returns the Hölder conjugate of P (the norm M is measured in).
func (w *Watermark) Q() float64 { return vector.HolderConjugate(w.P) }

// Reset installs m as the stored model (a reorganization at round s)
// and collapses the band to [0, 0]. M must be the current corpus
// constant.
func (w *Watermark) Reset(m *learn.Model, M float64) {
	w.stored = m.Clone()
	w.M = M
	w.lw, w.hw = 0, 0
}

// Stored returns the stored model (w(s), b(s)); callers must not
// mutate it.
func (w *Watermark) Stored() *learn.Model { return w.stored }

// Eps returns the clustering key of an entity: w(s)·f − b(s).
func (w *Watermark) Eps(f vector.Vector) float64 {
	return w.stored.Activation(f)
}

// Observe folds the current model into the running extrema and
// returns the updated band. Call once per round (per new model).
func (w *Watermark) Observe(cur *learn.Model) (lw, hw float64) {
	drift := w.M * cur.DiffNorm(w.stored, w.P)
	db := cur.B - w.stored.B
	if high := drift + db; high > w.hw {
		w.hw = high
	}
	if low := -drift + db; low < w.lw {
		w.lw = low
	}
	return w.lw, w.hw
}

// ObserveEntity widens M if a newly inserted entity's feature norm
// exceeds the corpus constant (Lemma 3.1 requires M to cover every
// entity). The accumulated extrema were computed under the smaller
// bound, so they must widen too: for every past round l we know
//
//	hw ≥ M·d_l + b_l   and   lw ≤ −M·d_l + b_l
//
// (d_l the drift norm, b_l the bias delta), which bounds the new
// round's requirement M'·d_l + b_l = r·(M·d_l + b_l) + (1−r)·b_l with
// r = M'/M, and −b_l ≤ −lw, b_l ≤ hw from the same inequalities. So
//
//	hw' = r·hw − (r−1)·lw    lw' = r·lw − (r−1)·hw
//
// conservatively cover every model observed so far under the widened
// bound. Without this rescale a high-norm insert could pass Test as
// "certain" against a band that never accounted for its drift. A band
// accumulated with M = 0 carries no drift information to rescale
// (b-only extrema); it widens to full uncertainty until the next
// reorganization collapses it.
func (w *Watermark) ObserveEntity(f vector.Vector) {
	n := f.Norm(w.Q())
	if n <= w.M {
		return
	}
	old := w.M
	w.M = n
	if w.lw == 0 && w.hw == 0 {
		return // degenerate band: nothing accumulated to rescale
	}
	if old == 0 {
		w.lw, w.hw = math.Inf(-1), math.Inf(1)
		return
	}
	r := n / old
	lw, hw := w.lw, w.hw
	w.hw = r*hw - (r-1)*lw
	w.lw = r*lw - (r-1)*hw
}

// Band returns the current [lw, hw].
func (w *Watermark) Band() (lw, hw float64) { return w.lw, w.hw }

// Test applies the sufficient membership condition to a stored eps:
// it returns (+1, true) above high water, (−1, true) below low
// water, and (0, false) inside the band where the label must be
// computed against the current model.
func (w *Watermark) Test(eps float64) (label int, certain bool) {
	switch {
	case eps >= w.hw:
		return 1, true
	case eps <= w.lw:
		return -1, true
	default:
		return 0, false
	}
}
