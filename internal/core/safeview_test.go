package core

import (
	"math/rand"
	"sync"
	"testing"

	"hazy/internal/learn"
)

// TestSafeViewConcurrentReadersOneWriter hammers a SafeView with
// parallel readers while one writer streams updates; run with -race
// this validates the locking discipline end to end.
func TestSafeViewConcurrentReadersOneWriter(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	entities := testEntities(r, 300)
	inner := NewMemView(entities, HazyStrategy, Options{
		Mode: Eager, SGD: learn.SGDConfig{Eta0: 0.3},
	})
	v := NewSafeView(inner, false)
	stream := trainingStream(r, 400)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)

	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := v.Label(int64(rr.Intn(len(entities)))); err != nil {
					errs <- err
					return
				}
				if rr.Intn(50) == 0 {
					if _, err := v.CountMembers(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(g))
	}
	for _, ex := range stream {
		if err := v.Update(ex.F, ex.Label); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// Final consistency: SafeView agrees with a direct oracle pass.
	oracle := v.Model()
	want := 0
	for _, e := range entities {
		if oracle.Predict(e.F) > 0 {
			want++
		}
	}
	got, err := v.CountMembers()
	if err != nil || got != want {
		t.Fatalf("count %d want %d (%v)", got, want, err)
	}
	if v.Stats().Updates != len(stream) {
		t.Fatalf("updates=%d", v.Stats().Updates)
	}
}

func TestSafeViewLazyTakesWriteLockOnScan(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	entities := testEntities(r, 100)
	inner := NewMemView(entities, HazyStrategy, Options{
		Mode: Lazy, SGD: learn.SGDConfig{Eta0: 0.3},
	})
	v := NewSafeView(inner, true)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				switch rr.Intn(3) {
				case 0:
					f := trainingStream(rr, 1)[0]
					v.Update(f.F, f.Label) //nolint:errcheck
				case 1:
					v.CountMembers() //nolint:errcheck
				default:
					v.Label(int64(rr.Intn(len(entities)))) //nolint:errcheck
				}
			}
		}(int64(g))
	}
	wg.Wait()
	// Delegation surface.
	if err := v.Insert(Entity{ID: 9999, F: entities[0].F}); err != nil {
		t.Fatal(err)
	}
	if err := v.Retrain(trainingStream(r, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Members(); err != nil {
		t.Fatal(err)
	}
}
