package core

import (
	"time"

	"hazy/internal/obs"
)

// viewMetrics holds one view's (or one stripe's) maintenance
// collectors. Every Hazy-strategy view owns one; when no registry is
// wired through Options.Metrics the collectors are unregistered but
// still live, so instrumented code never branches. The costs observed
// here are per-batch maintenance costs (a reorganization, a band
// sweep) — nothing on the per-row read path touches these.
type viewMetrics struct {
	reorgs    *obs.Counter
	reorgDur  *obs.Histogram
	sweepRows *obs.Histogram
	wmResets  *obs.Counter
}

// newViewMetrics registers the maintenance collectors under labels
// (view=..., optionally stripe=...). Re-registering — e.g. when a
// view is rebuilt — replaces the previous instance's collectors.
func newViewMetrics(reg *obs.Registry, labels ...obs.Label) *viewMetrics {
	return &viewMetrics{
		reorgs:    reg.Counter("hazy_view_reorgs_total", "reorganizations: re-cluster on eps and reset watermarks", labels...),
		reorgDur:  reg.Histogram("hazy_view_reorg_micros", "reorganization duration in microseconds", 32, labels...),
		sweepRows: reg.Histogram("hazy_view_band_sweep_rows", "tuples reclassified per incremental band sweep", 32, labels...),
		wmResets:  reg.Counter("hazy_view_watermark_resets_total", "watermark resets to the current model", labels...),
	}
}

// observeReorg records one completed reorganization.
func (m *viewMetrics) observeReorg(d time.Duration) {
	m.reorgs.Inc()
	m.reorgDur.ObserveDuration(d)
}

// observeWMReset records one watermark reset.
func (m *viewMetrics) observeWMReset() { m.wmResets.Inc() }

// observeSweep records the size of one incremental band sweep.
func (m *viewMetrics) observeSweep(rows int) { m.sweepRows.Observe(uint64(rows)) }
