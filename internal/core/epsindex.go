package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"hazy/internal/btree"
	"hazy/internal/learn"
	"hazy/internal/storage"
)

// This file is the read surface the streaming SQL executor plans
// against: every clustered layout — the snapshot a serving engine
// publishes, the main-memory entries slice, and the on-disk B+-tree —
// exposes the same three capabilities, so the planner can push an
// eps-band predicate down to whichever physical structure the view
// happens to have instead of rescanning everything (paper §3.2.2's
// "clustered B+-tree index on t.eps", generalized to all layouts).

// RowCursor streams (id, eps, label) rows, eps-ascending. Next
// returns one row at a time; NextBatch is the bulk-fill form the
// vectorized executor drives — it fills a prefix of dst (up to
// len(dst) rows, one leaf's worth per call for the on-disk cursor)
// and returns how many, 0 meaning the scan is exhausted. Close
// releases any held resources (page pins for the on-disk cursor) and
// is idempotent; callers must Close even after an error.
type RowCursor interface {
	Next() (SnapEntry, bool, error)
	NextBatch(dst []SnapEntry) (int, error)
	Close()
}

// EpsIndexed is implemented by view layouts that maintain the eps
// clustering and can expose it: per-entity eps point reads and
// streaming eps-range scans. Clustered reports whether the instance
// actually has the clustering (the Hazy strategy) — the naive layouts
// carry no eps and answer false.
type EpsIndexed interface {
	Clustered() bool
	EpsOf(id int64) (float64, error)
	ScanEps(lo, hi float64) (RowCursor, error)
}

var errNotClustered = fmt.Errorf("core: eps requires the Hazy strategy (no eps clustering)")

// sliceCursor streams pre-resolved entries — the snapshot cursor.
type sliceCursor struct {
	entries []SnapEntry
	i       int
}

func (c *sliceCursor) Next() (SnapEntry, bool, error) {
	if c.i >= len(c.entries) {
		return SnapEntry{}, false, nil
	}
	e := c.entries[c.i]
	c.i++
	return e, true, nil
}

func (c *sliceCursor) NextBatch(dst []SnapEntry) (int, error) {
	n := copy(dst, c.entries[c.i:])
	c.i += n
	return n, nil
}

func (c *sliceCursor) Close() {}

// Snapshot ------------------------------------------------------------

// Clustered reports whether the snapshot's entries are eps-ascending
// (Hazy strategy at export time).
func (s *Snapshot) Clustered() bool { return s.clustered }

// EpsOf returns the entity's eps under the snapshot's stored model.
func (s *Snapshot) EpsOf(id int64) (float64, error) {
	if !s.clustered {
		return 0, errNotClustered
	}
	i, ok := s.byID[id]
	if !ok {
		return 0, fmt.Errorf("core: no entity %d", id)
	}
	return s.entries[i].Eps, nil
}

// ScanEps streams the snapshot entries with eps ∈ [lo, hi] — a binary
// search plus a sub-slice walk over immutable state, safe from any
// goroutine.
func (s *Snapshot) ScanEps(lo, hi float64) (RowCursor, error) {
	if !s.clustered {
		return nil, errNotClustered
	}
	a := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Eps >= lo })
	b := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Eps > hi })
	if b < a {
		b = a // inverted range (lo > hi): empty scan, like the other layouts
	}
	return &sliceCursor{entries: s.entries[a:b]}, nil
}

// MemView -------------------------------------------------------------

// Clustered reports whether the view keeps its entries eps-sorted.
func (v *MemView) Clustered() bool { return v.strategy == HazyStrategy }

// EpsOf returns the entity's eps under the stored model.
func (v *MemView) EpsOf(id int64) (float64, error) {
	if v.strategy != HazyStrategy {
		return 0, errNotClustered
	}
	ent, ok := v.byID[id]
	if !ok {
		return 0, fmt.Errorf("core: no entity %d", id)
	}
	return ent.eps, nil
}

// memCursor walks the eps-sorted entries of a band, resolving each
// label exactly the way Label does (maintained label in eager mode,
// watermark test then current model in lazy mode) without mutating
// any maintenance state. Like every non-snapshot read of a MemView it
// relies on external serialization against writers.
type memCursor struct {
	v      *MemView
	i, end int
}

func (c *memCursor) Next() (SnapEntry, bool, error) {
	if c.i >= c.end {
		return SnapEntry{}, false, nil
	}
	ent := c.v.entries[c.i]
	c.i++
	label := int(ent.label)
	if c.v.opts.Mode == Lazy {
		if l, certain := c.v.wm.Test(ent.eps); certain {
			label = l
		} else {
			label = c.v.trainer.Model().Predict(ent.f)
		}
	}
	return SnapEntry{ID: ent.id, Eps: ent.eps, Label: int8(label)}, true, nil
}

// NextBatch resolves a run of entries at once; the lazy-mode model
// pointer is loaded once per batch instead of once per row.
func (c *memCursor) NextBatch(dst []SnapEntry) (int, error) {
	n := len(dst)
	if rest := c.end - c.i; rest < n {
		n = rest
	}
	if n <= 0 {
		return 0, nil
	}
	lazy := c.v.opts.Mode == Lazy
	var model *learn.Model
	if lazy {
		model = c.v.trainer.Model()
	}
	for k := 0; k < n; k++ {
		ent := c.v.entries[c.i+k]
		label := int(ent.label)
		if lazy {
			if l, certain := c.v.wm.Test(ent.eps); certain {
				label = l
			} else {
				label = model.Predict(ent.f)
			}
		}
		dst[k] = SnapEntry{ID: ent.id, Eps: ent.eps, Label: int8(label)}
	}
	c.i += n
	return n, nil
}

func (c *memCursor) Close() {}

// ScanEps streams the entries with eps ∈ [lo, hi] in eps order.
func (v *MemView) ScanEps(lo, hi float64) (RowCursor, error) {
	if v.strategy != HazyStrategy {
		return nil, errNotClustered
	}
	a, b := v.band(lo, hi)
	return &memCursor{v: v, i: a, end: b}, nil
}

// DiskView ------------------------------------------------------------

// Clustered reports whether the on-disk table keeps the (eps, id)
// B+-tree.
func (v *DiskView) Clustered() bool { return v.strategy == HazyStrategy }

// EpsOf returns the entity's stored eps, reading only the record
// header (no feature-vector decode).
func (v *DiskView) EpsOf(id int64) (float64, error) {
	if v.strategy != HazyStrategy {
		return 0, errNotClustered
	}
	return v.dt.GetEps(id)
}

// diskCursor drives a B+-tree cursor over [lo, hi], resolving each
// row's label through a LabelResolver: nil reads the maintained class
// byte (eager); a lazy resolver tests the watermarks and only decodes
// the feature vector for rows inside the band, where the current
// model must decide. It serves both the unstriped DiskView and the
// per-stripe disk stores, neither of which it knows about — just a
// table and a policy.
type diskCursor struct {
	dt  *diskTable
	res *LabelResolver
	cur *btree.Cursor

	// bulk-fill scratch, sized to the batch request on first use
	ks   []btree.Key
	rids []storage.RID
}

// cursor opens a resolver-driven cursor over the clustered index.
func (dt *diskTable) cursor(lo, hi float64, res *LabelResolver) (RowCursor, error) {
	if dt.tree == nil {
		return nil, errNotClustered
	}
	cur, err := dt.tree.NewCursor(lo, hi)
	if err != nil {
		return nil, err
	}
	return &diskCursor{dt: dt, res: res, cur: cur}, nil
}

func (c *diskCursor) Next() (SnapEntry, bool, error) {
	k, rid, ok, err := c.cur.Next()
	if err != nil || !ok {
		return SnapEntry{}, false, err
	}
	label, err := c.rowLabel(k, rid)
	if err != nil {
		return SnapEntry{}, false, err
	}
	return SnapEntry{ID: k.ID, Eps: k.Eps, Label: int8(label)}, true, nil
}

// NextBatch pulls a run of index entries (up to a leaf's worth per
// tree call) and resolves their labels in one pass.
func (c *diskCursor) NextBatch(dst []SnapEntry) (int, error) {
	if cap(c.ks) < len(dst) {
		c.ks = make([]btree.Key, len(dst))
		c.rids = make([]storage.RID, len(dst))
	}
	n, err := c.cur.NextBatch(c.ks[:len(dst)], c.rids[:len(dst)])
	if err != nil || n == 0 {
		return 0, err
	}
	for k := 0; k < n; k++ {
		label, err := c.rowLabel(c.ks[k], c.rids[k])
		if err != nil {
			return 0, err
		}
		dst[k] = SnapEntry{ID: c.ks[k].ID, Eps: c.ks[k].Eps, Label: int8(label)}
	}
	return n, nil
}

func (c *diskCursor) Close() { c.cur.Close() }

// rowLabel resolves one indexed row's label without mutating
// maintenance state (no Skiing waste accrual — the streaming read
// path leaves reorganization scheduling to writes and legacy reads).
func (c *diskCursor) rowLabel(k btree.Key, rid storage.RID) (int, error) {
	if c.res == nil {
		var class int
		err := c.dt.heap.View(rid, func(rec []byte) error {
			class = decodeClass(rec[recClassOff])
			return nil
		})
		return class, err
	}
	if label, certain := c.res.Test(k.Eps); certain {
		return label, nil
	}
	// Predict inside the View closure: the decoded vector aliases the
	// pinned page and must not outlive the pin.
	var label int
	err := c.dt.heap.View(rid, func(rec []byte) error {
		_, _, _, f, err := decodeRecord(rec)
		if err != nil {
			return err
		}
		label = c.res.Predict(f)
		return nil
	})
	return label, err
}

// lazyResolver builds the lazy-mode label policy from a view's
// watermark and current model; eager mode resolves to nil (the
// maintained class byte is exact).
func lazyResolver(mode Mode, wm *Watermark, cur *learn.Model) *LabelResolver {
	if mode != Lazy {
		return nil
	}
	return &LabelResolver{Test: wm.Test, Predict: cur.Predict}
}

// ScanEps streams the indexed rows with eps ∈ [lo, hi] in key order.
func (v *DiskView) ScanEps(lo, hi float64) (RowCursor, error) {
	if v.strategy != HazyStrategy {
		return nil, errNotClustered
	}
	return v.dt.cursor(lo, hi, lazyResolver(v.opts.Mode, v.wm, v.trainer.Model()))
}

// GetEps reads just the eps field of id's record.
func (dt *diskTable) GetEps(id int64) (float64, error) {
	rid, ok := dt.byID[id]
	if !ok {
		return 0, fmt.Errorf("core: no entity %d", id)
	}
	var eps float64
	err := dt.heap.View(rid, func(rec []byte) error {
		if len(rec) < recVecOff {
			return fmt.Errorf("core: short disk record (%d bytes)", len(rec))
		}
		eps = math.Float64frombits(binary.LittleEndian.Uint64(rec[recEpsOff:]))
		return nil
	})
	return eps, err
}

// HybridView ----------------------------------------------------------

// EpsOf answers from the in-memory ε-map (App. B.4's first stop)
// before falling back to disk.
func (h *HybridView) EpsOf(id int64) (float64, error) {
	if eps, ok := h.epsMap[id]; ok {
		return eps, nil
	}
	return h.DiskView.EpsOf(id)
}

var (
	_ EpsIndexed = (*Snapshot)(nil)
	_ EpsIndexed = (*MemView)(nil)
	_ EpsIndexed = (*DiskView)(nil)
	_ EpsIndexed = (*HybridView)(nil)
)
