package core

import "hazy/internal/vector"

// StripeStore is the physical layout of one stripe of a partition-
// striped view. The StripedView above it owns everything the paper's
// maintenance logic needs regardless of layout — the shared model, the
// per-stripe Watermark and Skiing accumulator, and the eager/lazy
// policy decisions — while the store owns the eps-clustered entity
// records themselves. One implementation exists per architecture:
//
//   - memStripeStore: the main-memory entries slice (Hazy-MM, §3.5.1),
//   - diskStripeStore: a per-stripe generation file of heap pages with
//     a clustered B+-tree on (eps, id) behind its own buffer pool
//     (Hazy-OD), and
//   - hybridStripeStore: the disk store plus the §3.5.2 in-memory
//     summaries (ε-map and boundary buffer).
//
// A store is single-writer: every mutating call happens either on the
// view caller's goroutine or on the pool worker that owns the stripe
// for one parallel section. Stores never share mutable state across
// stripes, which is what makes the scatter safe.
type StripeStore interface {
	// Len returns the number of stored entities.
	Len() int
	// Has reports whether id is stored (no IO beyond the id index).
	Has(id int64) bool
	// Load bulk-inserts the initial entity set in arrival order with
	// eps = 0 and class = classOf(f). The caller always follows Load
	// with Rebuild (the initial clustering), so implementations may
	// defer index construction to it.
	Load(entities []Entity, classOf func(f vector.Vector) int) error
	// Insert places one new, already-classified entity at its
	// clustered position: eps is taken under the stripe's stored
	// model, class under the current model.
	Insert(id int64, eps float64, class int, f vector.Vector) error
	// EpsOf returns id's stored eps (the clustering key under the
	// stripe's stored model).
	EpsOf(id int64) (float64, error)
	// Class returns id's maintained class.
	Class(id int64) (int, error)
	// FeatureOf returns id's feature vector; callers may retain it.
	FeatureOf(id int64) (vector.Vector, error)
	// Rebuild reclusters the stripe: every record's eps is recomputed
	// with epsOf, records are rewritten in (eps, id) order, and class
	// becomes sign(eps) — the physical reorganization step whose
	// measured duration seeds the Skiing cost S.
	Rebuild(epsOf func(f vector.Vector) float64) error
	// SweepBand reclassifies the records with eps ∈ [lo, hi] under
	// predict (the eager incremental step) and returns how many
	// records it examined.
	SweepBand(lo, hi float64, predict func(f vector.Vector) int) (int, error)
	// ScanKeysAbove visits the ids with eps > hi, without touching
	// feature vectors — the All Members fast path above high water.
	ScanKeysAbove(hi float64, fn func(id int64) error) error
	// CountRange returns the number of records with eps ∈ [lo, hi].
	CountRange(lo, hi float64) (int, error)
	// NearestZero returns up to k entries ordered by |eps|, negative
	// side first on ties (labels are not resolved).
	NearestZero(k int) ([]SnapEntry, error)
	// Cursor streams the records with eps ∈ [lo, hi] in (eps, id)
	// order, resolving each row's label through res (nil means the
	// maintained class is exact — the eager fast path). The cursor
	// must not mutate maintenance state.
	Cursor(lo, hi float64, res *LabelResolver) (RowCursor, error)
	// Close releases any backing resources (page files, pools).
	Close() error
}

// LabelResolver resolves a stored row's serving label without
// mutating maintenance state — the lazy-mode read discipline shared
// by every layout: Test applies the watermark certainty check to the
// stored eps, and Predict classifies against the current model when
// the row lies inside the band. Layouts use it to defer feature-
// vector decoding to exactly the uncertain rows (the on-disk cursor
// never touches the heap for rows outside the band).
type LabelResolver struct {
	Test    func(eps float64) (label int, certain bool)
	Predict func(f vector.Vector) int
}

// resolve labels one row given its stored eps, maintained class, and
// a lazily-evaluated feature accessor.
func (r *LabelResolver) resolve(eps float64, class func() (int, error), f func() (vector.Vector, error)) (int, error) {
	if r == nil {
		return class()
	}
	if label, certain := r.Test(eps); certain {
		return label, nil
	}
	fv, err := f()
	if err != nil {
		return 0, err
	}
	return r.Predict(fv), nil
}
