package core

import (
	"math"
	"math/rand"
	"testing"

	"hazy/internal/learn"
)

// TestMostUncertainOrdering checks the active-learning hook: returned
// ids are exactly the k smallest |eps| under the stored model, for
// both the main-memory and on-disk architectures.
func TestMostUncertainOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	entities := testEntities(r, 200)
	stream := trainingStream(r, 100)

	mm := NewMemView(entities, HazyStrategy, Options{Mode: Eager, SGD: learn.SGDConfig{Eta0: 0.3}})
	dv, err := NewDiskView(t.TempDir(), 64, entities, HazyStrategy, Options{Mode: Eager, SGD: learn.SGDConfig{Eta0: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Close()
	hv, err := NewHybridView(t.TempDir(), 64, entities, Options{Mode: Eager, SGD: learn.SGDConfig{Eta0: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	defer hv.Close()

	for _, ex := range stream {
		if err := mm.Update(ex.F, ex.Label); err != nil {
			t.Fatal(err)
		}
		if err := dv.Update(ex.F, ex.Label); err != nil {
			t.Fatal(err)
		}
		if err := hv.Update(ex.F, ex.Label); err != nil {
			t.Fatal(err)
		}
	}
	const k = 15
	check := func(name string, got []int64, stored *learn.Model) {
		if len(got) != k {
			t.Fatalf("%s: got %d ids want %d", name, len(got), k)
		}
		// The k-th largest |eps| among returned must not exceed any
		// non-returned entity's |eps|.
		in := map[int64]bool{}
		var worst float64
		for _, id := range got {
			in[id] = true
			if a := math.Abs(stored.Activation(entities[id].F)); a > worst {
				worst = a
			}
		}
		for _, e := range entities {
			if in[e.ID] {
				continue
			}
			if a := math.Abs(stored.Activation(e.F)); a < worst-1e-12 {
				t.Fatalf("%s: entity %d (|eps|=%v) closer than returned worst %v", name, e.ID, a, worst)
			}
		}
	}
	mmGot, err := mm.MostUncertain(k)
	if err != nil {
		t.Fatal(err)
	}
	check("mm", mmGot, mm.wm.Stored())
	dvGot, err := dv.MostUncertain(k)
	if err != nil {
		t.Fatal(err)
	}
	check("od", dvGot, dv.wm.Stored())
	hvGot, err := hv.MostUncertain(k)
	if err != nil {
		t.Fatal(err)
	}
	check("hybrid", hvGot, hv.wm.Stored())

	// Asking for more than N returns all entities.
	all, err := mm.MostUncertain(10 * len(entities))
	if err != nil || len(all) != len(entities) {
		t.Fatalf("overshoot: %d ids, err %v", len(all), err)
	}
	// Naive strategy has no eps ordering to exploit.
	nv := NewMemView(entities, Naive, Options{})
	if _, err := nv.MostUncertain(3); err == nil {
		t.Fatal("naive MostUncertain accepted")
	}
	nd, err := NewDiskView(t.TempDir(), 32, entities, Naive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if _, err := nd.MostUncertain(3); err == nil {
		t.Fatal("naive disk MostUncertain accepted")
	}
}
