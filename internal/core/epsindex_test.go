package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"hazy/internal/learn"
)

// collect opens an eps-range cursor and drains it.
func collect(t *testing.T, ei EpsIndexed, lo, hi float64) []SnapEntry {
	t.Helper()
	c, err := ei.ScanEps(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out []SnapEntry
	for {
		e, ok, nerr := c.Next()
		if nerr != nil {
			t.Fatal(nerr)
		}
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// TestEpsIndexAgreesAcrossLayouts drives the same update stream into
// every Hazy-strategy layout plus an exported snapshot and checks the
// EpsIndexed surface agrees everywhere: full eps scans are
// eps-ascending, row labels match Label, band scans match the full
// scan filtered to the band, and EpsOf matches the scanned eps.
func TestEpsIndexAgreesAcrossLayouts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	entities := testEntities(r, 300)
	views := allVariants(t, entities, Options{Norm: 2, SGD: learn.SGDConfig{Eta0: 0.3}})
	for _, ex := range trainingStream(r, 40) {
		for _, v := range views {
			if err := v.Update(ex.F, ex.Label); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The naive layouts have no clustering and must say so.
	for name, v := range views {
		ei, ok := v.(EpsIndexed)
		if !ok {
			t.Fatalf("%s: no EpsIndexed surface", name)
		}
		if clustered := ei.Clustered(); clustered != strings.Contains(name, "hazy") {
			t.Fatalf("%s: Clustered() = %v", name, clustered)
		}
		if !ei.Clustered() {
			if _, err := ei.EpsOf(0); err == nil {
				t.Fatalf("%s: EpsOf on unclustered layout succeeded", name)
			}
			if _, err := ei.ScanEps(-1, 1); err == nil {
				t.Fatalf("%s: ScanEps on unclustered layout succeeded", name)
			}
			continue
		}

		full := collect(t, ei, math.Inf(-1), math.Inf(1))
		if len(full) != len(entities) {
			t.Fatalf("%s: full eps scan returned %d rows, want %d", name, len(full), len(entities))
		}
		var lo, hi float64
		for i, e := range full {
			if i > 0 && e.Eps < full[i-1].Eps {
				t.Fatalf("%s: scan not eps-ascending at %d", name, i)
			}
			want, err := v.Label(e.ID)
			if err != nil {
				t.Fatal(err)
			}
			if int(e.Label) != want {
				t.Fatalf("%s: scanned label of %d = %d, Label says %d", name, e.ID, e.Label, want)
			}
			eps, err := ei.EpsOf(e.ID)
			if err != nil {
				t.Fatal(err)
			}
			if eps != e.Eps {
				t.Fatalf("%s: EpsOf(%d) = %g, scan says %g", name, e.ID, eps, e.Eps)
			}
			if i == len(full)/4 {
				lo = e.Eps
			}
			if i == 3*len(full)/4 {
				hi = e.Eps
			}
		}
		// Band scan = full scan filtered to [lo, hi].
		band := collect(t, ei, lo, hi)
		want := 0
		for _, e := range full {
			if e.Eps >= lo && e.Eps <= hi {
				want++
			}
		}
		if len(band) != want {
			t.Fatalf("%s: band scan [%g,%g] returned %d rows, want %d", name, lo, hi, len(band), want)
		}
	}

	// A snapshot exported from the memview agrees with its source.
	mm := views["mm/hazy/eager"].(*MemView)
	snap, err := mm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Clustered() {
		t.Fatal("hazy snapshot not clustered")
	}
	fromView := collect(t, mm, math.Inf(-1), math.Inf(1))
	fromSnap := collect(t, snap, math.Inf(-1), math.Inf(1))
	if len(fromView) != len(fromSnap) {
		t.Fatalf("snapshot scan %d rows vs view %d", len(fromSnap), len(fromView))
	}
	for i := range fromSnap {
		if fromSnap[i] != fromView[i] {
			t.Fatalf("row %d: snapshot %+v vs view %+v", i, fromSnap[i], fromView[i])
		}
	}
	if _, err := snap.EpsOf(int64(len(entities) + 5)); err == nil {
		t.Fatal("EpsOf of missing entity succeeded")
	}
	// An inverted range is an empty scan on every layout, snapshots
	// included (the planner passes user-written bounds straight down).
	if got := collect(t, snap, 1, -1); len(got) != 0 {
		t.Fatalf("inverted snapshot range returned %d rows", len(got))
	}
	if got := collect(t, mm, 1, -1); len(got) != 0 {
		t.Fatalf("inverted memview range returned %d rows", len(got))
	}
}
