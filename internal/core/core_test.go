package core

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"hazy/internal/learn"
	"hazy/internal/vector"
)

// testEntities builds n entities with dense 2-D features in [0,2)².
func testEntities(r *rand.Rand, n int) []Entity {
	out := make([]Entity, n)
	for i := range out {
		out[i] = Entity{
			ID: int64(i),
			F:  vector.NewDense([]float64{r.Float64() * 2, r.Float64() * 2}),
		}
	}
	return out
}

// trainingStream produces examples drifting around the separator
// x0 + x1 = 1.
func trainingStream(r *rand.Rand, n int) []learn.Example {
	out := make([]learn.Example, n)
	for i := range out {
		f := vector.NewDense([]float64{r.Float64() * 2, r.Float64() * 2})
		out[i] = learn.Example{F: f, Label: learn.Sign(f.Val[0] + f.Val[1] - 1)}
	}
	return out
}

// allVariants constructs every architecture × strategy × mode combo.
func allVariants(t *testing.T, entities []Entity, opts Options) map[string]View {
	t.Helper()
	views := map[string]View{}
	for _, mode := range []Mode{Eager, Lazy} {
		o := opts
		o.Mode = mode
		for _, strat := range []Strategy{Naive, HazyStrategy} {
			name := fmt.Sprintf("mm/%s/%s", strat, mode)
			views[name] = NewMemView(entities, strat, o)

			name = fmt.Sprintf("od/%s/%s", strat, mode)
			dv, err := NewDiskView(filepath.Join(t.TempDir(), name), 64, entities, strat, o)
			if err != nil {
				t.Fatal(err)
			}
			views[name] = dv
		}
		name := fmt.Sprintf("hybrid/hazy/%s", mode)
		hv, err := NewHybridView(filepath.Join(t.TempDir(), name), 64, entities, o)
		if err != nil {
			t.Fatal(err)
		}
		views[name] = hv
	}
	return views
}

func sortedIDs(ids []int64) []int64 {
	out := append([]int64(nil), ids...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// TestAllVariantsAgree is the golden invariant: after every update,
// all ten variants report identical labels for every entity and
// identical member sets — and they match an oracle that classifies
// from scratch with the current model.
func TestAllVariantsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	entities := testEntities(r, 300)
	stream := trainingStream(r, 120)
	opts := Options{Norm: math.Inf(1), SGD: learn.SGDConfig{Eta0: 0.3}}
	views := allVariants(t, entities, opts)

	names := make([]string, 0, len(views))
	for n := range views {
		names = append(names, n)
	}
	sort.Strings(names)

	for step, ex := range stream {
		for _, n := range names {
			if err := views[n].Update(ex.F, ex.Label); err != nil {
				t.Fatalf("step %d %s: %v", step, n, err)
			}
		}
		if step%10 != 9 {
			continue
		}
		// Oracle: classify every entity with the reference model.
		oracle := views[names[0]].Model()
		wantMembers := []int64{}
		for _, e := range entities {
			if oracle.Predict(e.F) > 0 {
				wantMembers = append(wantMembers, e.ID)
			}
		}
		for _, n := range names {
			v := views[n]
			// Models must be identical across variants (same trainer,
			// same sequence).
			if got := v.Model(); got.B != oracle.B {
				t.Fatalf("step %d %s: model bias %v vs %v", step, n, got.B, oracle.B)
			}
			members, err := v.Members()
			if err != nil {
				t.Fatalf("step %d %s members: %v", step, n, err)
			}
			got := sortedIDs(members)
			if len(got) != len(wantMembers) {
				t.Fatalf("step %d %s: %d members, oracle %d", step, n, len(got), len(wantMembers))
			}
			for i := range got {
				if got[i] != wantMembers[i] {
					t.Fatalf("step %d %s: member %d is %d, oracle %d", step, n, i, got[i], wantMembers[i])
				}
			}
			cnt, err := v.CountMembers()
			if err != nil || cnt != len(wantMembers) {
				t.Fatalf("step %d %s: count %d err %v", step, n, cnt, err)
			}
			// Spot-check single-entity reads.
			for trial := 0; trial < 20; trial++ {
				id := int64(r.Intn(len(entities)))
				want := oracle.Predict(entities[id].F)
				gotL, err := v.Label(id)
				if err != nil {
					t.Fatalf("step %d %s label(%d): %v", step, n, id, err)
				}
				if gotL != want {
					t.Fatalf("step %d %s: label(%d)=%d oracle %d", step, n, id, gotL, want)
				}
			}
		}
	}
}

// TestWatermarkSoundness is the Lemma 3.1 property: at any round,
// every tuple above high water is positive under the current model
// and every tuple below low water negative.
func TestWatermarkSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, p := range []float64{1, 2, math.Inf(1)} {
		entities := testEntities(r, 200)
		wm := NewWatermark(p)
		trainer := learn.NewSGD(learn.SGDConfig{Eta0: 0.3})
		q := wm.Q()
		var m float64
		for _, e := range entities {
			if n := e.F.Norm(q); n > m {
				m = n
			}
		}
		wm.Reset(trainer.Model(), m)
		eps := make([]float64, len(entities))
		for i, e := range entities {
			eps[i] = wm.Eps(e.F)
		}
		for step := 0; step < 300; step++ {
			f := vector.NewDense([]float64{r.Float64() * 2, r.Float64() * 2})
			trainer.Train(f, learn.Sign(f.Val[0]+f.Val[1]-1))
			lw, hw := wm.Observe(trainer.Model())
			if lw > 0 || hw < 0 {
				t.Fatalf("p=%v: band does not include 0: [%v,%v]", p, lw, hw)
			}
			cur := trainer.Model()
			for i, e := range entities {
				label, certain := wm.Test(eps[i])
				if !certain {
					continue
				}
				if got := cur.Predict(e.F); got != label {
					t.Fatalf("p=%v step %d: guarantee violated for entity %d: eps=%v band=[%v,%v] promised %d actual %d",
						p, step, e.ID, eps[i], lw, hw, label, got)
				}
			}
		}
	}
}

func TestWatermarkBandMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	wm := NewWatermark(2)
	trainer := learn.NewSGD(learn.SGDConfig{Eta0: 0.3})
	wm.Reset(trainer.Model(), 1.5)
	prevLw, prevHw := wm.Band()
	for step := 0; step < 200; step++ {
		f := vector.NewDense([]float64{r.NormFloat64(), r.NormFloat64()})
		trainer.Train(f, 1-2*(step%2))
		lw, hw := wm.Observe(trainer.Model())
		if lw > prevLw || hw < prevHw {
			t.Fatalf("band shrank: [%v,%v] → [%v,%v]", prevLw, prevHw, lw, hw)
		}
		prevLw, prevHw = lw, hw
	}
	// Reset collapses the band.
	wm.Reset(trainer.Model(), 1.5)
	lw, hw := wm.Band()
	if lw != 0 || hw != 0 {
		t.Fatalf("reset band [%v,%v]", lw, hw)
	}
}

func TestSkiingAccumulator(t *testing.T) {
	sk := NewSkiing(1)
	if sk.ShouldReorganize() {
		t.Fatal("reorg before S measured")
	}
	sk.DidReorganize(100)
	if sk.S() != 100 || sk.Reorgs() != 1 {
		t.Fatalf("S=%v reorgs=%d", sk.S(), sk.Reorgs())
	}
	sk.AddCost(60)
	if sk.ShouldReorganize() {
		t.Fatal("reorg at a=60 < αS=100")
	}
	sk.AddCost(50)
	if !sk.ShouldReorganize() {
		t.Fatal("no reorg at a=110 ≥ αS=100")
	}
	sk.DidReorganize(200)
	if sk.Accumulated() != 0 {
		t.Fatal("accumulator not reset")
	}
	if sk.IncSteps() != 2 {
		t.Fatalf("incsteps=%d", sk.IncSteps())
	}
	// α = 2 doubles the threshold.
	sk2 := NewSkiing(2)
	sk2.DidReorganize(100)
	sk2.AddCost(150)
	if sk2.ShouldReorganize() {
		t.Fatal("α=2: reorg at a=150 < 200")
	}
	sk2.AddWaste(60)
	if !sk2.ShouldReorganize() {
		t.Fatal("α=2: no reorg at a=210 ≥ 200")
	}
}

func TestInsertEntityAllVariants(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	entities := testEntities(r, 100)
	stream := trainingStream(r, 40)
	views := allVariants(t, entities, Options{SGD: learn.SGDConfig{Eta0: 0.3}})
	for _, ex := range stream[:20] {
		for _, v := range views {
			if err := v.Update(ex.F, ex.Label); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Insert new entities mid-stream.
	newcomers := []Entity{
		{ID: 1000, F: vector.NewDense([]float64{1.9, 1.9})}, // clearly positive
		{ID: 1001, F: vector.NewDense([]float64{0.05, 0.05})},
		{ID: 1002, F: vector.NewDense([]float64{0.5, 0.52})}, // near boundary
	}
	for name, v := range views {
		for _, e := range newcomers {
			if err := v.Insert(e); err != nil {
				t.Fatalf("%s insert: %v", name, err)
			}
		}
	}
	for _, ex := range stream[20:] {
		for _, v := range views {
			if err := v.Update(ex.F, ex.Label); err != nil {
				t.Fatal(err)
			}
		}
	}
	var oracle *learn.Model
	for _, v := range views {
		oracle = v.Model()
		break
	}
	for name, v := range views {
		for _, e := range newcomers {
			got, err := v.Label(e.ID)
			if err != nil {
				t.Fatalf("%s label(%d): %v", name, e.ID, err)
			}
			if want := oracle.Predict(e.F); got != want {
				t.Fatalf("%s: inserted entity %d labeled %d, oracle %d", name, e.ID, got, want)
			}
		}
		cnt, err := v.CountMembers()
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, e := range entities {
			if oracle.Predict(e.F) > 0 {
				want++
			}
		}
		for _, e := range newcomers {
			if oracle.Predict(e.F) > 0 {
				want++
			}
		}
		if cnt != want {
			t.Fatalf("%s: count %d want %d after inserts", name, cnt, want)
		}
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	entities := testEntities(r, 10)
	v := NewMemView(entities, HazyStrategy, Options{})
	if err := v.Insert(Entity{ID: 5, F: vector.NewDense([]float64{1, 1})}); err == nil {
		t.Fatal("mem: duplicate insert accepted")
	}
	dv, err := NewDiskView(t.TempDir(), 16, entities, Naive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Close()
	if err := dv.Insert(Entity{ID: 5, F: vector.NewDense([]float64{1, 1})}); err == nil {
		t.Fatal("disk: duplicate insert accepted")
	}
}

func TestLabelUnknownEntity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	entities := testEntities(r, 10)
	v := NewMemView(entities, Naive, Options{})
	if _, err := v.Label(999); err == nil {
		t.Fatal("mem: unknown entity labeled")
	}
	dv, err := NewDiskView(t.TempDir(), 16, entities, HazyStrategy, Options{Mode: Lazy})
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Close()
	if _, err := dv.Label(999); err == nil {
		t.Fatal("disk: unknown entity labeled")
	}
}

// TestHazyReorganizes forces many updates and checks that Skiing
// actually fires reorganizations and that the band stays small
// relative to the data (the Figure 13 claim: ~small fraction in
// steady state).
func TestHazyReorganizes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	entities := testEntities(r, 500)
	v := NewMemView(entities, HazyStrategy, Options{Mode: Eager, SGD: learn.SGDConfig{Eta0: 0.3}})
	for _, ex := range trainingStream(r, 3000) {
		if err := v.Update(ex.F, ex.Label); err != nil {
			t.Fatal(err)
		}
	}
	st := v.Stats()
	if st.Reorgs < 2 {
		t.Fatalf("only %d reorgs (incl. initial) after 3000 updates", st.Reorgs)
	}
	if st.Updates != 3000 {
		t.Fatalf("updates=%d", st.Updates)
	}
	if st.HighWater < 0 || st.LowWater > 0 {
		t.Fatalf("band [%v,%v]", st.LowWater, st.HighWater)
	}
}

func TestHybridHitsEpsMapMostly(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	entities := testEntities(r, 400)
	h, err := NewHybridView(t.TempDir(), 64, entities, Options{
		Mode: Eager, BufferFrac: 0.05, SGD: learn.SGDConfig{Eta0: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for _, ex := range trainingStream(r, 200) {
		if err := h.Update(ex.F, ex.Label); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		id := int64(r.Intn(len(entities)))
		if _, err := h.Label(id); err != nil {
			t.Fatal(err)
		}
	}
	epsHits, bufHits, diskHits := h.Hits()
	total := epsHits + bufHits + diskHits
	if total != 1000 {
		t.Fatalf("hits sum %d", total)
	}
	if epsHits == 0 {
		t.Fatal("ε-map never hit")
	}
	st := h.Stats()
	if st.EpsMapBytes != int64(len(entities))*16 {
		t.Fatalf("eps-map bytes %d", st.EpsMapBytes)
	}
	if st.BufferBytes <= 0 {
		t.Fatalf("buffer bytes %d", st.BufferBytes)
	}
}

func TestFactory(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	entities := testEntities(r, 20)
	for _, arch := range []Arch{MainMemory, OnDisk, HybridArch} {
		strat := HazyStrategy
		v, err := New(arch, strat, t.TempDir(), 16, entities, Options{})
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if _, err := v.CountMembers(); err != nil {
			t.Fatalf("%v count: %v", arch, err)
		}
	}
	if _, err := New(HybridArch, Naive, t.TempDir(), 16, entities, Options{}); err == nil {
		t.Fatal("hybrid+naive accepted")
	}
	if _, err := New(Arch(99), Naive, t.TempDir(), 16, entities, Options{}); err == nil {
		t.Fatal("bad arch accepted")
	}
}

func TestEnumStrings(t *testing.T) {
	if Eager.String() != "eager" || Lazy.String() != "lazy" {
		t.Fatal("mode strings")
	}
	if Naive.String() != "naive" || HazyStrategy.String() != "hazy" {
		t.Fatal("strategy strings")
	}
	if MainMemory.String() != "mm" || OnDisk.String() != "od" || HybridArch.String() != "hybrid" {
		t.Fatal("arch strings")
	}
}

// TestSparseTextLikeWorkload runs the golden agreement check on
// sparse ℓ1-normalized vectors with p=∞ (the text configuration).
func TestSparseTextLikeWorkload(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const vocab = 200
	mk := func() vector.Vector {
		m := map[int32]float64{}
		for k := 0; k < 5+r.Intn(10); k++ {
			m[int32(r.Intn(vocab))] = 1 + float64(r.Intn(3))
		}
		v := vector.FromMap(m)
		v.L1Normalize()
		return v
	}
	entities := make([]Entity, 150)
	for i := range entities {
		entities[i] = Entity{ID: int64(i), F: mk()}
	}
	opts := Options{Norm: math.Inf(1), SGD: learn.SGDConfig{Eta0: 0.5}}
	views := allVariants(t, entities, opts)
	hidden := make([]float64, vocab)
	for i := range hidden {
		hidden[i] = r.NormFloat64()
	}
	for step := 0; step < 150; step++ {
		f := mk()
		label := learn.Sign(vector.Dot(hidden, f))
		for name, v := range views {
			if err := v.Update(f, label); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if step%25 != 24 {
			continue
		}
		var oracle *learn.Model
		var counts []int
		var names []string
		for name, v := range views {
			if oracle == nil {
				oracle = v.Model()
			}
			c, err := v.CountMembers()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			counts = append(counts, c)
			names = append(names, name)
		}
		for i := 1; i < len(counts); i++ {
			if counts[i] != counts[0] {
				t.Fatalf("step %d: %s=%d vs %s=%d", step, names[i], counts[i], names[0], counts[0])
			}
		}
	}
}
