package core

import (
	"fmt"
	"math"
	"time"

	"hazy/internal/learn"
	"hazy/internal/obs"
	"hazy/internal/storage"
	"hazy/internal/vector"
)

// DiskView is the on-disk architecture for both strategies and
// modes. With the Hazy strategy the record heap is clustered on eps
// (rebuilt into a fresh generation at every reorganization) with a
// B+-tree over (eps, id); the naive strategy stores records in
// arrival order and scans everything.
type DiskView struct {
	opts     Options
	strategy Strategy
	trainer  *learn.SGD
	dt       *diskTable
	wm       *Watermark
	sk       *Skiing
	met      *viewMetrics
	stats    Stats
}

// NewDiskView builds an on-disk view under dir with a buffer pool of
// poolPages pages. For the Hazy strategy the initial load is followed
// by the first clustering reorganization, seeding the Skiing cost S.
func NewDiskView(dir string, poolPages int, entities []Entity, strategy Strategy, opts Options) (*DiskView, error) {
	opts = opts.withDefaults()
	v := &DiskView{
		opts:     opts,
		strategy: strategy,
		trainer:  learn.NewSGD(opts.SGD),
	}
	for _, ex := range opts.Warm {
		v.trainer.Train(ex.F, ex.Label)
	}
	dt, err := newDiskTable(dir, poolPages, strategy == HazyStrategy)
	if err != nil {
		return nil, err
	}
	v.dt = dt
	if strategy == HazyStrategy {
		v.wm = NewWatermark(opts.Norm)
		v.sk = NewSkiing(opts.Alpha)
		v.met = newViewMetrics(opts.Metrics, obs.L("view", opts.MetricsName)...)
		q := v.wm.Q()
		var m float64
		for _, e := range entities {
			if n := e.F.Norm(q); n > m {
				m = n
			}
		}
		v.wm.M = m
	}
	// Initial load in arrival order; the model is zero so every eps
	// is 0 and class is sign(0) = +1.
	cur := v.trainer.Model()
	for _, e := range entities {
		if err := dt.Insert(e.ID, 0, cur.Predict(e.F), e.F); err != nil {
			return nil, err
		}
	}
	if strategy == HazyStrategy {
		if err := v.reorganize(); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// Close releases the backing file.
func (v *DiskView) Close() error { return v.dt.Close() }

// Model returns the current model.
func (v *DiskView) Model() *learn.Model { return v.trainer.Model() }

// IOStats exposes physical I/O counters of the current generation
// file (for experiment reporting).
func (v *DiskView) IOStats() storage.IOStats { return v.dt.Stats() }

// reorganize reclusters the table under the current model and resets
// the watermarks; its measured duration becomes the Skiing S.
func (v *DiskView) reorganize() error {
	start := time.Now()
	v.wm.Reset(v.trainer.Model(), v.wm.M)
	v.met.observeWMReset()
	if err := v.dt.Rebuild(v.wm.Eps); err != nil {
		return err
	}
	elapsed := time.Since(start)
	v.sk.DidReorganize(elapsed)
	v.met.observeReorg(elapsed)
	return nil
}

// Update folds in one training example and maintains the view.
func (v *DiskView) Update(f vector.Vector, label int) error {
	v.trainer.Train(f, label)
	v.stats.Updates++
	if v.strategy == Naive {
		if v.opts.Mode == Eager {
			// Naive eager: scan every tuple, classify, write back the
			// ones whose label changed (§2.2).
			cur := v.trainer.Model()
			return v.dt.ScanAll(func(rid storage.RID, id int64, eps float64, class int, f vector.Vector) error {
				if nl := cur.Predict(f); nl != class {
					return v.dt.PatchClass(rid, nl)
				}
				return nil
			})
		}
		return nil
	}
	lw, hw := v.wm.Observe(v.trainer.Model())
	if v.opts.Reorg == ReorgAlways {
		return v.reorganize()
	}
	if v.opts.Mode == Lazy {
		return nil
	}
	if v.opts.Reorg == ReorgSkiing && v.sk.ShouldReorganize() {
		return v.reorganize()
	}
	start := time.Now()
	cur := v.trainer.Model()
	reclassified := int64(0)
	err := v.dt.ScanBand(lw, hw, func(rid storage.RID, id int64, eps float64, class int, f vector.Vector) error {
		reclassified++
		if nl := cur.Predict(f); nl != class {
			return v.dt.PatchClass(rid, nl)
		}
		return nil
	})
	if err != nil {
		return err
	}
	v.stats.Reclassified += reclassified
	v.sk.AddCost(time.Since(start))
	v.met.observeSweep(int(reclassified))
	return nil
}

// Insert adds a new entity, classified under the current model.
func (v *DiskView) Insert(e Entity) error {
	cur := v.trainer.Model()
	eps := 0.0
	if v.strategy == HazyStrategy {
		v.wm.ObserveEntity(e.F)
		v.wm.Observe(cur)
		eps = v.wm.Eps(e.F)
	}
	return v.dt.Insert(e.ID, eps, cur.Predict(e.F), e.F)
}

// Label answers a Single Entity read.
func (v *DiskView) Label(id int64) (int, error) {
	if v.opts.Mode == Eager {
		// Labels are maintained; read the class byte.
		return v.dt.GetClass(id)
	}
	eps, _, f, err := v.dt.Get(id)
	if err != nil {
		return 0, err
	}
	if v.strategy == HazyStrategy {
		if label, certain := v.wm.Test(eps); certain {
			return label, nil
		}
	}
	return v.trainer.Model().Predict(f), nil
}

// members drives an All Members read.
func (v *DiskView) members(fn func(id int64)) error {
	switch {
	case v.strategy == Naive && v.opts.Mode == Eager:
		return v.dt.ScanAll(func(_ storage.RID, id int64, _ float64, class int, _ vector.Vector) error {
			if class > 0 {
				fn(id)
			}
			return nil
		})
	case v.strategy == Naive:
		cur := v.trainer.Model()
		return v.dt.ScanAll(func(_ storage.RID, id int64, _ float64, _ int, f vector.Vector) error {
			if cur.Predict(f) > 0 {
				fn(id)
			}
			return nil
		})
	case v.opts.Mode == Eager:
		// Hazy eager: above high water every tuple is positive (ids
		// come straight from the index); inside the band the
		// maintained class byte is current.
		lw, hw := v.wm.Band()
		if err := v.dt.ScanKeysAbove(hw, func(id int64) error { fn(id); return nil }); err != nil {
			return err
		}
		return v.dt.ScanBand(lw, hw, func(_ storage.RID, id int64, _ float64, class int, _ vector.Vector) error {
			if class > 0 {
				fn(id)
			}
			return nil
		})
	default:
		// Hazy lazy (§3.4): read the NR tuples above lw; waste
		// (NR − N+)/NR · S accrues toward reorganization.
		start := time.Now()
		lw, hw := v.wm.Band()
		nPos, nRead := 0, 0
		if err := v.dt.ScanKeysAbove(hw, func(id int64) error {
			fn(id)
			nPos++
			nRead++
			return nil
		}); err != nil {
			return err
		}
		cur := v.trainer.Model()
		err := v.dt.ScanBand(lw, hw, func(_ storage.RID, id int64, _ float64, _ int, f vector.Vector) error {
			nRead++
			if cur.Predict(f) > 0 {
				fn(id)
				nPos++
			}
			return nil
		})
		if err != nil {
			return err
		}
		v.stats.Reclassified += int64(nRead - nPos)
		elapsed := time.Since(start)
		if nRead > 0 {
			v.sk.AddWaste(time.Duration(float64(elapsed) * float64(nRead-nPos) / float64(nRead)))
		}
		if v.opts.Reorg == ReorgSkiing && v.sk.ShouldReorganize() {
			return v.reorganize()
		}
	}
	return nil
}

// Retrain rebuilds the model from scratch on examples and brings the
// view up to date (the paper's path for deleted or relabeled training
// examples).
func (v *DiskView) Retrain(examples []learn.Example) error {
	v.trainer = learn.NewSGD(v.opts.SGD)
	for _, ex := range examples {
		v.trainer.Train(ex.F, ex.Label)
	}
	if v.strategy == HazyStrategy {
		return v.reorganize()
	}
	if v.opts.Mode == Eager {
		cur := v.trainer.Model()
		return v.dt.ScanAll(func(rid storage.RID, _ int64, _ float64, class int, f vector.Vector) error {
			if nl := cur.Predict(f); nl != class {
				return v.dt.PatchClass(rid, nl)
			}
			return nil
		})
	}
	return nil
}

// Members returns the ids labeled +1.
func (v *DiskView) Members() ([]int64, error) {
	var out []int64
	err := v.members(func(id int64) { out = append(out, id) })
	return out, err
}

// CountMembers returns the number of positive entities.
func (v *DiskView) CountMembers() (int, error) {
	n := 0
	err := v.members(func(int64) { n++ })
	return n, err
}

// MostUncertain returns up to k entity ids nearest the decision
// boundary under the stored model (active-learning candidates; see
// MemView.MostUncertain). Hazy strategy only.
func (v *DiskView) MostUncertain(k int) ([]int64, error) {
	if v.strategy != HazyStrategy {
		return nil, fmt.Errorf("core: MostUncertain requires the Hazy strategy")
	}
	keys, err := v.dt.NearestZero(k)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(keys))
	for i, key := range keys {
		out[i] = key.ID
	}
	return out, nil
}

// Stats returns maintenance counters.
func (v *DiskView) Stats() Stats {
	s := v.stats
	if v.strategy == HazyStrategy {
		s.Reorgs = v.sk.Reorgs()
		s.IncSteps = v.sk.IncSteps()
		s.LastReorgNs = v.sk.S().Nanoseconds()
		s.LowWater, s.HighWater = v.wm.Band()
		if n, err := v.dt.CountAbove(s.LowWater); err == nil {
			above, err2 := v.dt.CountAbove(math.Nextafter(s.HighWater, math.Inf(1)))
			if err2 == nil {
				s.BandTuples = n - above
			}
		}
	}
	return s
}
