package core

import (
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"hazy/internal/learn"
	"hazy/internal/vector"
)

// TestLazyMembersRaceAgainstIngest hammers lazy All Members reads
// against a concurrent ingest stream through SafeView, for every
// layout. Lazy Members is a mutating read — it accrues Skiing waste
// (AddWaste) and can trigger a reorganization mid-scan (for the
// hybrid, also an ε-map/buffer rebuild) — so SafeView must route it
// through the write lock in every layout; run under -race this test
// is the proof. It also pins the result invariant: every Members
// result must equal a model-oracle classification of some published
// model state (here checked at quiesce).
func TestLazyMembersRaceAgainstIngest(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	entities := testEntities(r, 200)
	build := map[string]func(t *testing.T, opts Options) View{
		"mm": func(t *testing.T, opts Options) View {
			return NewMemView(entities, HazyStrategy, opts)
		},
		"od": func(t *testing.T, opts Options) View {
			v, err := NewDiskView(filepath.Join(t.TempDir(), "od"), 64, entities, HazyStrategy, opts)
			if err != nil {
				t.Fatal(err)
			}
			return v
		},
		"hybrid": func(t *testing.T, opts Options) View {
			v, err := NewHybridView(filepath.Join(t.TempDir(), "hybrid"), 64, entities, opts)
			if err != nil {
				t.Fatal(err)
			}
			return v
		},
		"striped": func(t *testing.T, opts Options) View {
			v, err := NewStriped(entities, 4, opts)
			if err != nil {
				t.Fatal(err)
			}
			return v
		},
		"striped-od": func(t *testing.T, opts Options) View {
			v, err := NewStripedDisk(filepath.Join(t.TempDir(), "sod"), 128, entities, 4, opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { v.Close() })
			return v
		},
		"striped-hybrid": func(t *testing.T, opts Options) View {
			v, err := NewStripedHybrid(filepath.Join(t.TempDir(), "shy"), 128, entities, 4, opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { v.Close() })
			return v
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			opts := Options{Mode: Lazy, Norm: math.Inf(1),
				SGD: learn.SGDConfig{Eta0: 0.3}, Warm: trainingStream(rand.New(rand.NewSource(5)), 10)}
			// Alpha tiny so waste-triggered reorganizations actually
			// fire during the scan storm.
			opts.Alpha = 0.01
			sv := NewSafeView(mk(t, opts), true)

			var wg sync.WaitGroup
			const readers, reads, writes = 4, 60, 120
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rr := rand.New(rand.NewSource(seed))
					for i := 0; i < reads; i++ {
						if rr.Intn(2) == 0 {
							if _, err := sv.Members(); err != nil {
								t.Errorf("Members: %v", err)
								return
							}
						} else if _, err := sv.CountMembers(); err != nil {
							t.Errorf("CountMembers: %v", err)
							return
						}
						if _, err := sv.Label(int64(rr.Intn(len(entities)))); err != nil {
							t.Errorf("Label: %v", err)
							return
						}
					}
				}(int64(g))
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				wr := rand.New(rand.NewSource(99))
				nextID := int64(len(entities))
				for i := 0; i < writes; i++ {
					if i%5 == 4 {
						e := Entity{ID: nextID, F: vector.NewDense([]float64{wr.Float64() * 2, wr.Float64() * 2})}
						nextID++
						if err := sv.Insert(e); err != nil {
							t.Errorf("Insert: %v", err)
							return
						}
						continue
					}
					ex := trainingStream(wr, 1)[0]
					if err := sv.Update(ex.F, ex.Label); err != nil {
						t.Errorf("Update: %v", err)
						return
					}
				}
			}()
			wg.Wait()

			// Quiesced oracle: Members equals classifying every entity
			// with the final model (the hybrid would fail this if a
			// waste-triggered reorganization skipped its ε-map rebuild).
			model := sv.Model()
			got, err := sv.Members()
			if err != nil {
				t.Fatal(err)
			}
			members := map[int64]bool{}
			for _, id := range got {
				members[id] = true
			}
			n, err := sv.CountMembers()
			if err != nil {
				t.Fatal(err)
			}
			if n != len(got) {
				t.Fatalf("CountMembers %d != len(Members) %d", n, len(got))
			}
			for _, e := range entities {
				if want := model.Predict(e.F) > 0; members[e.ID] != want {
					t.Fatalf("entity %d: member=%v oracle=%v", e.ID, members[e.ID], want)
				}
				label, err := sv.Label(e.ID)
				if err != nil {
					t.Fatal(err)
				}
				if label != model.Predict(e.F) {
					t.Fatalf("entity %d: Label=%d oracle=%d (stale read summaries?)", e.ID, label, model.Predict(e.F))
				}
			}
		})
	}
}

// TestHybridLazyMembersReorgRebuildsMemory is the deterministic
// regression for the hybrid's read-path reorganization: a lazy All
// Members read that trips Skiing's waste threshold reorganizes the
// disk table, and before the fix left the in-memory ε-map holding eps
// values of the OLD stored model against the reset watermarks — so
// Label answered certainty tests with stale keys. Force a
// waste-triggered reorganization through Members and check every
// Label against the model oracle.
func TestHybridLazyMembersReorgRebuildsMemory(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	entities := testEntities(r, 150)
	v, err := NewHybridView(t.TempDir(), 64, entities, Options{
		Mode: Lazy, Norm: math.Inf(1), Alpha: 1e-6, // reorganize at the slightest waste
		SGD: learn.SGDConfig{Eta0: 0.5}, Warm: trainingStream(r, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	before := v.Stats().Reorgs
	reorged := false
	for i := 0; i < 200 && !reorged; i++ {
		// Drift the model (lazy: trains only), then read — waste
		// accrues on the read and eventually trips the threshold.
		ex := trainingStream(r, 1)[0]
		if err := v.Update(ex.F, ex.Label); err != nil {
			t.Fatal(err)
		}
		if _, err := v.CountMembers(); err != nil {
			t.Fatal(err)
		}
		reorged = v.Stats().Reorgs > before
	}
	if !reorged {
		t.Fatal("test setup: no waste-triggered reorganization fired")
	}
	model := v.Model()
	for _, e := range entities {
		label, err := v.Label(e.ID)
		if err != nil {
			t.Fatal(err)
		}
		if want := model.Predict(e.F); label != want {
			t.Fatalf("entity %d: Label=%d oracle=%d after read-path reorganization", e.ID, label, want)
		}
	}
}

// TestStripedHybridLazyMembersReorg is the striped composition of the
// same regression: a lazy All Members read on a striped hybrid view
// trips per-stripe waste thresholds, each stripe reorganizes through
// the generic Rebuild — which for the hybrid store must also rebuild
// that stripe's ε-map and boundary buffer — and every Label must then
// agree with the model oracle (a stale per-stripe ε-map would answer
// certainty tests with keys of the old stored model).
func TestStripedHybridLazyMembersReorg(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	entities := testEntities(r, 150)
	v, err := NewStripedHybrid(t.TempDir(), 128, entities, 4, Options{
		Mode: Lazy, Norm: math.Inf(1), Alpha: 1e-6, // reorganize at the slightest waste
		SGD: learn.SGDConfig{Eta0: 0.5}, Warm: trainingStream(r, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	before := v.Stats().Reorgs
	reorged := false
	for i := 0; i < 200 && !reorged; i++ {
		ex := trainingStream(r, 1)[0]
		if err := v.Update(ex.F, ex.Label); err != nil {
			t.Fatal(err)
		}
		if _, err := v.CountMembers(); err != nil {
			t.Fatal(err)
		}
		reorged = v.Stats().Reorgs > before
	}
	if !reorged {
		t.Fatal("test setup: no waste-triggered reorganization fired")
	}
	model := v.Model()
	for _, e := range entities {
		label, err := v.Label(e.ID)
		if err != nil {
			t.Fatal(err)
		}
		if want := model.Predict(e.F); label != want {
			t.Fatalf("entity %d: Label=%d oracle=%d after striped read-path reorganization", e.ID, label, want)
		}
	}
}
