package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"hazy/internal/btree"
	"hazy/internal/learn"
	"hazy/internal/storage"
	"hazy/internal/vector"
)

// On-disk record layout for Hazy's H(s)(id, f, eps) ⋈ V(id, class)
// table (the paper materializes eps and class alongside the feature
// vector so the incremental step can read and patch without a join):
//
//	[0:8)   id    int64
//	[8:16)  eps   float64 (under the stored model)
//	[16]    class byte (0 = −1, 1 = +1)
//	[17:)   f     encoded vector
const (
	recIDOff    = 0
	recEpsOff   = 8
	recClassOff = 16
	recVecOff   = 17
)

func encodeRecord(id int64, eps float64, class int, f vector.Vector) []byte {
	buf := make([]byte, 0, recVecOff+f.EncodedSize())
	buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(eps))
	if class > 0 {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return f.Encode(buf)
}

func decodeClass(b byte) int {
	if b == 1 {
		return 1
	}
	return -1
}

func decodeRecord(rec []byte) (id int64, eps float64, class int, f vector.Vector, err error) {
	if len(rec) < recVecOff {
		return 0, 0, 0, vector.Vector{}, fmt.Errorf("core: short disk record (%d bytes)", len(rec))
	}
	id = int64(binary.LittleEndian.Uint64(rec[recIDOff:]))
	eps = math.Float64frombits(binary.LittleEndian.Uint64(rec[recEpsOff:]))
	class = decodeClass(rec[recClassOff])
	f, _, err = vector.Decode(rec[recVecOff:])
	return id, eps, class, f, err
}

// diskTable is the physical store behind the on-disk and hybrid
// architectures: a heap of records, a hash index id→RID, and (for the
// Hazy strategy) a clustered B+-tree on (eps, id). Rebuild writes a
// fresh generation file clustered on new eps values and removes the
// old one — Hazy's reorganization step.
type diskTable struct {
	dir       string
	poolPages int
	gen       int

	pager *storage.Pager
	pool  *storage.BufferPool
	heap  *storage.HeapFile
	tree  *btree.Tree // nil for the naive strategy
	byID  map[int64]storage.RID
	n     int
}

// newDiskTable creates the store under dir; clustered selects whether
// the B+-tree on eps is maintained.
func newDiskTable(dir string, poolPages int, clustered bool) (*diskTable, error) {
	if poolPages <= 0 {
		poolPages = 256
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	dt := &diskTable{dir: dir, poolPages: poolPages, byID: map[int64]storage.RID{}}
	if err := dt.openGen(clustered); err != nil {
		return nil, err
	}
	return dt, nil
}

func (dt *diskTable) genPath(gen int) string {
	return filepath.Join(dt.dir, fmt.Sprintf("h-%06d.pg", gen))
}

// openGen opens a fresh generation file with an empty heap (and tree
// when clustered).
func (dt *diskTable) openGen(clustered bool) error {
	pager, err := storage.OpenPager(dt.genPath(dt.gen))
	if err != nil {
		return err
	}
	pool := storage.NewBufferPool(pager, dt.poolPages)
	dt.pager, dt.pool = pager, pool
	dt.heap = storage.NewHeapFile(pool)
	dt.tree = nil
	if clustered {
		tr, err := btree.New(pool)
		if err != nil {
			pager.Close()
			return err
		}
		dt.tree = tr
	}
	return nil
}

// Close releases the current generation file.
func (dt *diskTable) Close() error { return dt.pager.Close() }

// Len returns the number of stored entities.
func (dt *diskTable) Len() int { return dt.n }

// Stats returns physical I/O counters for the current generation.
func (dt *diskTable) Stats() storage.IOStats { return dt.pager.Stats() }

// Insert appends one entity record.
func (dt *diskTable) Insert(id int64, eps float64, class int, f vector.Vector) error {
	if _, dup := dt.byID[id]; dup {
		return fmt.Errorf("core: duplicate entity %d", id)
	}
	rid, err := dt.heap.Insert(encodeRecord(id, eps, class, f))
	if err != nil {
		return err
	}
	dt.byID[id] = rid
	if dt.tree != nil {
		if err := dt.tree.Insert(btree.Key{Eps: eps, ID: id}, rid); err != nil {
			return err
		}
	}
	dt.n++
	return nil
}

// BulkInsert appends the initial entity set (eps = 0, class =
// classOf(f)) through the heap's page-batched bulk loader, without
// maintaining the B+-tree: callers must Rebuild before serving
// clustered reads — the striped build path does so immediately, which
// rewrites the tree from scratch anyway, so per-record tree descents
// during the load would be pure waste.
func (dt *diskTable) BulkInsert(entities []Entity, classOf func(f vector.Vector) int) error {
	if dt.n > 0 {
		return fmt.Errorf("core: bulk insert into non-empty table (%d records)", dt.n)
	}
	for _, e := range entities {
		if _, dup := dt.byID[e.ID]; dup {
			return fmt.Errorf("core: duplicate entity %d", e.ID)
		}
		dt.byID[e.ID] = storage.RID{}
	}
	i := 0
	rids, err := dt.heap.BulkLoad(func() ([]byte, error) {
		if i == len(entities) {
			return nil, nil
		}
		e := entities[i]
		i++
		return encodeRecord(e.ID, 0, classOf(e.F), e.F), nil
	})
	if err != nil {
		return err
	}
	for j, e := range entities {
		dt.byID[e.ID] = rids[j]
	}
	dt.n += len(entities)
	return nil
}

// Get reads the record for id.
func (dt *diskTable) Get(id int64) (eps float64, class int, f vector.Vector, err error) {
	rid, ok := dt.byID[id]
	if !ok {
		return 0, 0, vector.Vector{}, fmt.Errorf("core: no entity %d", id)
	}
	err = dt.heap.View(rid, func(rec []byte) error {
		_, eps, class, f, err = decodeRecord(rec)
		if err == nil {
			f = f.Clone() // rec aliases the pinned page
		}
		return err
	})
	return eps, class, f, err
}

// GetClass reads just the class byte for id.
func (dt *diskTable) GetClass(id int64) (int, error) {
	rid, ok := dt.byID[id]
	if !ok {
		return 0, fmt.Errorf("core: no entity %d", id)
	}
	var class int
	err := dt.heap.View(rid, func(rec []byte) error {
		class = decodeClass(rec[recClassOff])
		return nil
	})
	return class, err
}

// PatchClass updates the class byte in place.
func (dt *diskTable) PatchClass(rid storage.RID, class int) error {
	b := byte(0)
	if class > 0 {
		b = 1
	}
	return dt.heap.Patch(rid, recClassOff, []byte{b})
}

// ScanAll visits every record in heap order. fn receives a cloned
// feature vector it may retain.
func (dt *diskTable) ScanAll(fn func(rid storage.RID, id int64, eps float64, class int, f vector.Vector) error) error {
	return dt.heap.Scan(func(rid storage.RID, rec []byte) error {
		id, eps, class, f, err := decodeRecord(rec)
		if err != nil {
			return err
		}
		return fn(rid, id, eps, class, f.Clone())
	})
}

// ScanBand visits records with eps ∈ [lo, hi] in eps order via the
// clustered index.
func (dt *diskTable) ScanBand(lo, hi float64, fn func(rid storage.RID, id int64, eps float64, class int, f vector.Vector) error) error {
	if dt.tree == nil {
		return fmt.Errorf("core: band scan on unclustered table")
	}
	return dt.tree.Range(lo, hi, func(k btree.Key, rid storage.RID) (bool, error) {
		var ferr error
		err := dt.heap.View(rid, func(rec []byte) error {
			id, eps, class, f, err := decodeRecord(rec)
			if err != nil {
				return err
			}
			ferr = fn(rid, id, eps, class, f.Clone())
			return nil
		})
		if err != nil {
			return false, err
		}
		return ferr == nil, ferr
	})
}

// ScanKeysAbove visits (eps, id) pairs with eps > hi straight from
// the index leaves, without touching the heap — the All Members fast
// path for tuples above high water.
func (dt *diskTable) ScanKeysAbove(hi float64, fn func(id int64) error) error {
	if dt.tree == nil {
		return fmt.Errorf("core: key scan on unclustered table")
	}
	return dt.tree.Range(math.Nextafter(hi, math.Inf(1)), math.Inf(1),
		func(k btree.Key, rid storage.RID) (bool, error) {
			if err := fn(k.ID); err != nil {
				return false, err
			}
			return true, nil
		})
}

// CountAbove returns the number of tuples with eps ≥ lo (the NR term
// of the lazy cost model).
func (dt *diskTable) CountAbove(lo float64) (int, error) {
	n := 0
	err := dt.tree.Range(lo, math.Inf(1), func(btree.Key, storage.RID) (bool, error) {
		n++
		return true, nil
	})
	return n, err
}

// NearestZero returns up to k index keys ordered by |eps| — the
// entities closest to the decision boundary.
func (dt *diskTable) NearestZero(k int) ([]btree.Key, error) {
	if dt.tree == nil {
		return nil, fmt.Errorf("core: NearestZero on unclustered table")
	}
	// Last k keys strictly below zero (ascending ring) ...
	var neg []btree.Key
	err := dt.tree.Range(math.Inf(-1), math.Nextafter(0, math.Inf(-1)),
		func(key btree.Key, _ storage.RID) (bool, error) {
			neg = append(neg, key)
			if len(neg) > k {
				neg = neg[1:]
			}
			return true, nil
		})
	if err != nil {
		return nil, err
	}
	// ... and the first k at or above zero.
	var pos []btree.Key
	err = dt.tree.Range(0, math.Inf(1), func(key btree.Key, _ storage.RID) (bool, error) {
		pos = append(pos, key)
		return len(pos) < k, nil
	})
	if err != nil {
		return nil, err
	}
	// Merge outward from zero by |eps|.
	out := make([]btree.Key, 0, k)
	ni, pi := len(neg)-1, 0
	for len(out) < k && (ni >= 0 || pi < len(pos)) {
		switch {
		case ni < 0:
			out = append(out, pos[pi])
			pi++
		case pi >= len(pos):
			out = append(out, neg[ni])
			ni--
		case -neg[ni].Eps <= pos[pi].Eps:
			out = append(out, neg[ni])
			ni--
		default:
			out = append(out, pos[pi])
			pi++
		}
	}
	return out, nil
}

// Rebuild reclusters the table: every record's eps is recomputed with
// epsOf, records are rewritten in eps order into a fresh generation
// file with class = sign(eps), and the old file is deleted. This is
// the physical reorganization step (sort + rewrite + index rebuild),
// whose measured duration seeds the Skiing cost S.
func (dt *diskTable) Rebuild(epsOf func(f vector.Vector) float64) error {
	type row struct {
		id  int64
		eps float64
		f   vector.Vector
	}
	rows := make([]row, 0, dt.n)
	err := dt.ScanAll(func(_ storage.RID, id int64, _ float64, _ int, f vector.Vector) error {
		rows = append(rows, row{id: id, eps: epsOf(f), f: f})
		return nil
	})
	if err != nil {
		return err
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].eps != rows[b].eps {
			return rows[a].eps < rows[b].eps
		}
		return rows[a].id < rows[b].id
	})
	clustered := dt.tree != nil
	oldPager, oldGen := dt.pager, dt.gen
	dt.gen++
	if err := dt.openGen(clustered); err != nil {
		return err
	}
	dt.byID = make(map[int64]storage.RID, len(rows))
	dt.n = 0
	i := 0
	rids, err := dt.heap.BulkLoad(func() ([]byte, error) {
		if i == len(rows) {
			return nil, nil
		}
		r := rows[i]
		i++
		return encodeRecord(r.id, r.eps, learn.Sign(r.eps), r.f), nil
	})
	if err != nil {
		return err
	}
	keys := make([]btree.Key, len(rows))
	for j, r := range rows {
		dt.byID[r.id] = rids[j]
		keys[j] = btree.Key{Eps: r.eps, ID: r.id}
	}
	dt.n = len(rows)
	if clustered {
		if err := dt.tree.BulkLoad(keys, rids); err != nil {
			return err
		}
	}
	oldPager.Close()
	os.Remove(dt.genPath(oldGen))
	return nil
}
