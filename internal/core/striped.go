package core

import (
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"hazy/internal/learn"
	"hazy/internal/obs"
	"hazy/internal/sched"
	"hazy/internal/storage"
	"hazy/internal/vector"
)

// StripedView is the partition-striped layout, generic over the
// paper's architecture spectrum: the entity set is hash-partitioned
// into P independent stripes, each with its own eps-clustered
// StripeStore, watermark pair, and Skiing accumulator, while the
// model stays global (trained once, shared by every stripe). The
// store decides where the stripe physically lives — main-memory
// entry slices, per-stripe on-disk B+-tree generations behind private
// buffer pools, or the hybrid's disk-plus-ε-map — and this layer owns
// everything else: reorganization policy, eager sweeps, the lazy
// waste discipline, and the scatter/gather read paths.
//
// Reorganization, band sweeps, inserts, full rescans, and snapshot
// export all scatter across the stripes on the shared maintenance
// pool (internal/sched), so the reorganization cost S — the quantity
// the Skiing strategy amortizes against — scales with the stripe size
// n/P instead of the view size n, and a multi-core host reorganizes P
// stripes concurrently while sharing one parallelism budget with
// every other view's maintenance. For disk-resident stripes the same
// factor bounds the write stall: one reorganization event rewrites
// n/P records, not n.
//
// Correctness rests on the watermark guarantee holding per stripe:
// each stripe's Watermark carries its own stored model (the model of
// that stripe's last reorganization) and its own corpus constant M
// over just that stripe's entities, so Lemma 3.1 applies to the
// stripe exactly as it applies to an unstriped view. Labels are
// therefore identical to a single-stripe view fed the same updates;
// only eps values (taken against per-stripe stored models) may differ
// once stripes reorganize at different times.
//
// Unlike an unstriped view, a batch observes only the batch-final
// model into each stripe's watermarks. That is sound because
// intermediate models inside a batch never stamp labels and never
// serve reads — the extrema of Eq. (2) only need to cover every model
// that did either — and it keeps the per-stripe observation cost at
// one drift norm per batch instead of one per example.
//
// Like the unstriped layouts, a StripedView requires external
// serialization between writers and readers (SafeView, the serving
// engine, or single-threaded use); every parallel section is bounded
// by the call that opened it (the pool's scatter barrier).
type StripedView struct {
	opts    Options
	arch    Arch
	trainer *learn.SGD // global model, shared by all stripes
	stripes []*stripe
	pool    *sched.Pool
	stats   Stats
}

// stripe is one hash partition's maintenance state: a private
// eps-clustered store with its own watermarks and Skiing accumulator.
// All mutation happens either on the caller's goroutine or on a
// worker-pool goroutine that owns the stripe for the duration of one
// parallel section; stripes never share mutable state.
type stripe struct {
	store        StripeStore
	wm           *Watermark
	sk           *Skiing
	met          *viewMetrics
	reclassified int64
}

// stripeOf maps an entity id to its stripe (Fibonacci hashing keeps
// sequential id ranges spread evenly).
func stripeOf(id int64, n int) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(n))
}

// stripeDir is the per-stripe subdirectory for disk-resident layouts.
func stripeDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("stripe-%03d", i))
}

// stripePoolPages splits a view's buffer-pool budget across the
// stripes' private pools. 0 keeps each stripe on the store default; a
// small floor keeps tiny shares workable.
func stripePoolPages(poolPages, partitions int) int {
	if poolPages <= 0 {
		return 0
	}
	per := poolPages / partitions
	if per < 16 {
		per = 16
	}
	return per
}

// NewStriped builds a partition-striped main-memory view with the
// Hazy strategy. partitions must be ≥ 1; each stripe is clustered by
// its own initial reorganization, in parallel.
func NewStriped(entities []Entity, partitions int, opts Options) (*StripedView, error) {
	return newStripedView(entities, partitions, opts, MainMemory,
		func(int) (StripeStore, error) { return newMemStripeStore(), nil })
}

// NewStripedDisk builds a partition-striped on-disk view with the
// Hazy strategy: each stripe keeps its own clustered generation file
// (heap + B+-tree) in a subdirectory of dir behind a private share of
// the poolPages buffer-pool budget, so per-stripe reorganizations
// rewrite n/P records with batched page IO and no cross-stripe page
// or latch contention.
func NewStripedDisk(dir string, poolPages int, entities []Entity, partitions int, opts Options) (*StripedView, error) {
	per := stripePoolPages(poolPages, partitions)
	return newStripedView(entities, partitions, opts, OnDisk,
		func(i int) (StripeStore, error) { return newDiskStripeStore(stripeDir(dir, i), per) })
}

// NewStripedHybrid builds a partition-striped hybrid view (§3.5.2):
// the striped on-disk layout plus a per-stripe ε-map and boundary
// buffer, rebuilt after every per-stripe reorganization.
func NewStripedHybrid(dir string, poolPages int, entities []Entity, partitions int, opts Options) (*StripedView, error) {
	opts = opts.withDefaults()
	per := stripePoolPages(poolPages, partitions)
	return newStripedView(entities, partitions, opts, HybridArch,
		func(i int) (StripeStore, error) {
			return newHybridStripeStore(stripeDir(dir, i), per, opts.BufferFrac)
		})
}

// newStripedView routes the entity set to its stripes, builds one
// store per stripe via newStore, and runs the initial clustering
// reorganizations in parallel on the shared pool.
func newStripedView(entities []Entity, partitions int, opts Options, arch Arch, newStore func(i int) (StripeStore, error)) (*StripedView, error) {
	if partitions < 1 {
		return nil, fmt.Errorf("core: partitions must be >= 1, got %d", partitions)
	}
	opts = opts.withDefaults()
	v := &StripedView{
		opts:    opts,
		arch:    arch,
		trainer: learn.NewSGD(opts.SGD),
		stripes: make([]*stripe, partitions),
		pool:    opts.Pool,
	}
	if v.pool == nil {
		v.pool = sched.Default()
	}
	for _, ex := range opts.Warm {
		v.trainer.Train(ex.F, ex.Label)
	}
	for i := range v.stripes {
		store, err := newStore(i)
		if err != nil {
			v.Close()
			return nil, err
		}
		v.stripes[i] = &stripe{
			store: store,
			wm:    NewWatermark(opts.Norm),
			sk:    NewSkiing(opts.Alpha),
			met: newViewMetrics(opts.Metrics,
				obs.L("view", opts.MetricsName, "stripe", strconv.Itoa(i))...),
		}
	}
	parts := make([][]Entity, partitions)
	for _, e := range entities {
		s := stripeOf(e.ID, partitions)
		parts[s] = append(parts[s], e)
	}
	cur := v.trainer.Model()
	err := v.forStripes(func(i int, st *stripe) error {
		q := st.wm.Q()
		var m float64
		for _, e := range parts[i] {
			if n := e.F.Norm(q); n > m {
				m = n
			}
		}
		st.wm.M = m
		if err := st.store.Load(parts[i], cur.Predict); err != nil {
			return err
		}
		return st.reorganize(cur)
	})
	if err != nil {
		v.Close()
		return nil, err
	}
	return v, nil
}

// Stripes returns the partition count.
func (v *StripedView) Stripes() int { return len(v.stripes) }

// Arch returns the physical architecture the stripes are stored in.
func (v *StripedView) Arch() Arch { return v.arch }

// Model returns the shared model.
func (v *StripedView) Model() *learn.Model { return v.trainer.Model() }

// Close releases every stripe's backing resources (a no-op for the
// main-memory layout).
func (v *StripedView) Close() error {
	var first error
	for _, st := range v.stripes {
		if st == nil || st.store == nil {
			continue
		}
		if err := st.store.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// IOStats aggregates physical I/O counters across disk-resident
// stripes (zero for the main-memory layout).
func (v *StripedView) IOStats() storage.IOStats {
	var total storage.IOStats
	for _, st := range v.stripes {
		if io, ok := st.store.(interface{ IOStats() storage.IOStats }); ok {
			s := io.IOStats()
			total.PhysicalReads += s.PhysicalReads
			total.PhysicalWrites += s.PhysicalWrites
		}
	}
	return total
}

// forStripes runs fn once per stripe as a scatter on the shared
// maintenance pool and waits for all of them — the single gather
// barrier every parallel section ends with. The calling goroutine
// participates and idle pool workers steal the rest, so this is
// deadlock-free even when the caller is itself a pool worker (an
// engine quantum applying a batch to this view). A panicking fn
// cannot kill the process or a shared worker: the pool re-raises the
// first panic on this caller (as a *sched.TaskPanic) only after every
// stripe task has finished, so no stripe is mid-mutation when the
// caller unwinds. fn receives the stripe's index so call sites can
// write into per-stripe output slots directly; the first non-nil
// error (in stripe order) is returned after every stripe finished.
func (v *StripedView) forStripes(fn func(i int, st *stripe) error) error {
	errs := make([]error, len(v.stripes))
	v.pool.RunAll(len(v.stripes), func(i int) { errs[i] = fn(i, v.stripes[i]) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// reorganize re-clusters one stripe on eps under cur, resets its
// watermarks, and records the measured per-stripe cost S.
func (st *stripe) reorganize(cur *learn.Model) error {
	start := time.Now()
	st.wm.Reset(cur, st.wm.M)
	st.met.observeWMReset()
	if err := st.store.Rebuild(st.wm.Eps); err != nil {
		return err
	}
	elapsed := time.Since(start)
	st.sk.DidReorganize(elapsed)
	st.met.observeReorg(elapsed)
	return nil
}

// maintain folds the batch-final model into one stripe's watermarks
// and runs its reorganize-or-sweep decision (the eager per-batch
// maintenance step).
func (st *stripe) maintain(cur *learn.Model, reorg ReorgPolicy, lazy bool) error {
	lw, hw := st.wm.Observe(cur)
	if reorg == ReorgAlways {
		return st.reorganize(cur)
	}
	if lazy {
		return nil
	}
	if reorg == ReorgSkiing && st.sk.ShouldReorganize() {
		return st.reorganize(cur)
	}
	start := time.Now()
	n, err := st.store.SweepBand(lw, hw, cur.Predict)
	if err != nil {
		return err
	}
	st.reclassified += int64(n)
	st.sk.AddCost(time.Since(start))
	st.met.observeSweep(n)
	return nil
}

// Update folds in one training example — a batch of one.
func (v *StripedView) Update(f vector.Vector, label int) error {
	return v.UpdateBatch([]learn.Example{{F: f, Label: label}})
}

// UpdateBatch group-applies a run of training examples: the SGD steps
// run sequentially on the shared model (SGD is inherently ordered),
// then every stripe observes the batch-final model and makes its
// reorganize-or-sweep decision in parallel. One publish-shaped gather
// barrier per batch, however many stripes ran.
func (v *StripedView) UpdateBatch(examples []learn.Example) error {
	if len(examples) == 0 {
		return nil
	}
	for _, ex := range examples {
		v.trainer.Train(ex.F, ex.Label)
		v.stats.Updates++
	}
	cur := v.trainer.Model()
	lazy := v.opts.Mode == Lazy
	return v.forStripes(func(_ int, st *stripe) error {
		return st.maintain(cur, v.opts.Reorg, lazy)
	})
}

// insertOne classifies and places one entity into its stripe's
// clustered position (the caller has already routed e to st).
func (st *stripe) insertOne(e Entity, cur *learn.Model) error {
	if st.store.Has(e.ID) {
		return fmt.Errorf("core: duplicate entity %d", e.ID)
	}
	st.wm.ObserveEntity(e.F)
	st.wm.Observe(cur)
	return st.store.Insert(e.ID, st.wm.Eps(e.F), cur.Predict(e.F), e.F)
}

// Insert adds a new entity, classified under the current model, to
// its hash stripe.
func (v *StripedView) Insert(e Entity) error {
	return v.stripes[stripeOf(e.ID, len(v.stripes))].insertOne(e, v.trainer.Model())
}

// InsertBatch scatters a run of entity inserts to their stripes and
// applies each stripe's share in parallel, preserving arrival order
// within a stripe. The returned slice has one error slot per entity,
// positionally; a failed insert (duplicate id) rejects only that
// entity.
func (v *StripedView) InsertBatch(entities []Entity) []error {
	errs := make([]error, len(entities))
	byStripe := make([][]int, len(v.stripes))
	for i, e := range entities {
		s := stripeOf(e.ID, len(v.stripes))
		byStripe[s] = append(byStripe[s], i)
	}
	cur := v.trainer.Model()
	v.forStripes(func(s int, st *stripe) error {
		for _, i := range byStripe[s] {
			errs[i] = st.insertOne(entities[i], cur)
		}
		return nil
	})
	return errs
}

// Label answers a Single Entity read with the layout-generic form of
// the App. B.4 lookup: the stored eps (which the hybrid store serves
// from its ε-map) against the stripe's watermarks first; inside the
// band, eager mode reads the maintained class and lazy mode
// classifies the feature vector (which the hybrid store serves from
// its boundary buffer before touching disk) under the current model.
func (v *StripedView) Label(id int64) (int, error) {
	st := v.stripes[stripeOf(id, len(v.stripes))]
	eps, err := st.store.EpsOf(id)
	if err != nil {
		return 0, err
	}
	if label, certain := st.wm.Test(eps); certain {
		return label, nil
	}
	if v.opts.Mode == Eager {
		return st.store.Class(id)
	}
	f, err := st.store.FeatureOf(id)
	if err != nil {
		return 0, err
	}
	return v.trainer.Model().Predict(f), nil
}

// members drives an All Members read: scatter to the stripes in
// parallel (each collecting into its own slice — no shared state),
// gather in stripe order. Lazy mode accrues each stripe's waste into
// that stripe's Skiing accumulator and may reorganize the stripe,
// which is why lazy Members needs the writer's lock, exactly like the
// unstriped layouts (SafeView provides it).
func (v *StripedView) members(fn func(id int64)) error {
	cur := v.trainer.Model()
	lazy := v.opts.Mode == Lazy
	out := make([][]int64, len(v.stripes))
	err := v.forStripes(func(i int, st *stripe) error {
		ids := &out[i]
		lw, hw := st.wm.Band()
		if !lazy {
			// Eager: labels are current; all positives live at eps ≥ lw.
			// Band rows read their maintained class; above high water
			// the ids come straight from the clustering.
			c, err := st.store.Cursor(lw, hw, nil)
			if err != nil {
				return err
			}
			defer c.Close()
			for {
				e, ok, err := c.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if e.Label > 0 {
					*ids = append(*ids, e.ID)
				}
			}
			return st.store.ScanKeysAbove(hw, func(id int64) error {
				*ids = append(*ids, id)
				return nil
			})
		}
		// Lazy (§3.4): everything above high water is a member; the
		// band is classified against the current model; waste accrues
		// toward this stripe's reorganization.
		start := time.Now()
		nPos, nRead, band := 0, 0, 0
		if err := st.store.ScanKeysAbove(hw, func(id int64) error {
			*ids = append(*ids, id)
			nPos++
			nRead++
			return nil
		}); err != nil {
			return err
		}
		res := &LabelResolver{Test: st.wm.Test, Predict: cur.Predict}
		c, err := st.store.Cursor(lw, hw, res)
		if err != nil {
			return err
		}
		defer c.Close()
		for {
			e, ok, err := c.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			nRead++
			band++
			if e.Label > 0 {
				*ids = append(*ids, e.ID)
				nPos++
			}
		}
		st.reclassified += int64(band)
		st.met.observeSweep(band)
		elapsed := time.Since(start)
		if nRead > 0 {
			waste := time.Duration(float64(elapsed) * float64(nRead-nPos) / float64(nRead))
			st.sk.AddWaste(waste)
		}
		if v.opts.Reorg == ReorgSkiing && st.sk.ShouldReorganize() {
			return st.reorganize(cur)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, ids := range out {
		for _, id := range ids {
			fn(id)
		}
	}
	return nil
}

// Members returns the ids labeled +1, in unspecified order.
func (v *StripedView) Members() ([]int64, error) {
	var out []int64
	err := v.members(func(id int64) { out = append(out, id) })
	return out, err
}

// CountMembers returns |{id : label(id) = +1}|.
func (v *StripedView) CountMembers() (int, error) {
	n := 0
	err := v.members(func(int64) { n++ })
	return n, err
}

// Retrain rebuilds the shared model from scratch on examples and
// reorganizes every stripe against it, in parallel.
func (v *StripedView) Retrain(examples []learn.Example) error {
	v.trainer = learn.NewSGD(v.opts.SGD)
	for _, ex := range examples {
		v.trainer.Train(ex.F, ex.Label)
	}
	cur := v.trainer.Model()
	return v.forStripes(func(_ int, st *stripe) error { return st.reorganize(cur) })
}

// MostUncertain returns up to k entity ids nearest the decision
// boundary: each stripe walks outward from its own eps = 0 (per-
// stripe stored models make eps stripe-local), then the per-stripe
// candidates merge by |eps|, negative side first on ties — the same
// order the unstriped walk produces.
func (v *StripedView) MostUncertain(k int) ([]int64, error) {
	if k <= 0 {
		return nil, nil
	}
	cand := make([][]SnapEntry, len(v.stripes))
	err := v.forStripes(func(i int, st *stripe) error {
		var err error
		cand[i], err = st.store.NearestZero(k)
		return err
	})
	if err != nil {
		return nil, err
	}
	var all []SnapEntry
	for _, c := range cand {
		all = append(all, c...)
	}
	sort.Slice(all, func(a, b int) bool {
		ea, eb := all[a], all[b]
		aa, ab := ea.Eps, eb.Eps
		if aa < 0 {
			aa = -aa
		}
		if ab < 0 {
			ab = -ab
		}
		if aa != ab {
			return aa < ab
		}
		if ea.Eps != eb.Eps {
			return ea.Eps < eb.Eps // negative side first, like walkUncertain
		}
		return ea.ID < eb.ID
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]int64, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out, nil
}

// Stats aggregates maintenance counters across the stripes. LowWater
// and HighWater report the widest band over any stripe (the
// conservative envelope); LastReorgNs reports the slowest stripe's
// most recent reorganization — the write stall one reorganization
// event imposes, which striping bounds at n/P records.
func (v *StripedView) Stats() Stats {
	s := v.stats
	for i, st := range v.stripes {
		s.Reorgs += st.sk.Reorgs()
		s.IncSteps += st.sk.IncSteps()
		s.Reclassified += st.reclassified
		if n, err := st.store.CountRange(st.wm.Band()); err == nil {
			s.BandTuples += n
		}
		lw, hw := st.wm.Band()
		if i == 0 || lw < s.LowWater {
			s.LowWater = lw
		}
		if i == 0 || hw > s.HighWater {
			s.HighWater = hw
		}
		if ns := st.sk.S().Nanoseconds(); ns > s.LastReorgNs {
			s.LastReorgNs = ns
		}
	}
	return s
}

// StripeStats returns one stripe's maintenance counters.
func (v *StripedView) StripeStats(i int) Stats {
	st := v.stripes[i]
	var s Stats
	s.Reorgs = st.sk.Reorgs()
	s.IncSteps = st.sk.IncSteps()
	s.Reclassified = st.reclassified
	s.LowWater, s.HighWater = st.wm.Band()
	if n, err := st.store.CountRange(s.LowWater, s.HighWater); err == nil {
		s.BandTuples = n
	}
	s.LastReorgNs = st.sk.S().Nanoseconds()
	return s
}

// Snapshot exports the composed immutable snapshot: every stripe
// resolves its rows in parallel (exact labels, eps-ascending — the
// stripe is already clustered), then the P sorted slices k-way merge
// into one globally (eps, id)-ordered entry list. One barrier, one
// publishable object.
func (v *StripedView) Snapshot() (*Snapshot, error) {
	cur := v.trainer.Model()
	lazy := v.opts.Mode == Lazy
	parts := make([][]SnapEntry, len(v.stripes))
	err := v.forStripes(func(p int, st *stripe) error {
		var res *LabelResolver
		if lazy {
			res = &LabelResolver{Test: st.wm.Test, Predict: cur.Predict}
		}
		c, err := st.store.Cursor(math.Inf(-1), math.Inf(1), res)
		if err != nil {
			return err
		}
		defer c.Close()
		out := make([]SnapEntry, 0, st.store.Len())
		buf := make([]SnapEntry, 512)
		for {
			n, err := c.NextBatch(buf)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
			out = append(out, buf[:n]...)
		}
		parts[p] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	s := &Snapshot{
		model:     cur.Clone(),
		entries:   mergeSnapEntries(parts, total),
		byID:      make(map[int64]int, total),
		clustered: true,
		stats:     v.Stats(),
	}
	for i := range s.entries {
		s.byID[s.entries[i].ID] = i
		if s.entries[i].Label > 0 {
			s.members++
		}
	}
	return s, nil
}

// mergeSnapEntries k-way merges eps-ascending slices into one
// (eps, id)-ordered slice.
func mergeSnapEntries(parts [][]SnapEntry, total int) []SnapEntry {
	out := make([]SnapEntry, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for p := range parts {
			if idx[p] >= len(parts[p]) {
				continue
			}
			if best < 0 || snapLess(parts[p][idx[p]], parts[best][idx[best]]) {
				best = p
			}
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}

func snapLess(a, b SnapEntry) bool {
	if a.Eps != b.Eps {
		return a.Eps < b.Eps
	}
	return a.ID < b.ID
}

// Eps index ----------------------------------------------------------

// Clustered reports that every stripe keeps the eps clustering.
func (v *StripedView) Clustered() bool { return true }

// EpsOf returns the entity's eps under its stripe's stored model.
func (v *StripedView) EpsOf(id int64) (float64, error) {
	st := v.stripes[stripeOf(id, len(v.stripes))]
	return st.store.EpsOf(id)
}

// ScanEpsStripe streams one stripe's rows with eps ∈ [lo, hi], eps-
// ascending — the scatter half of a scatter-gather read; the exec
// layer's merge-scan operator (or ScanEps below) is the gather half.
func (v *StripedView) ScanEpsStripe(i int, lo, hi float64) (RowCursor, error) {
	if i < 0 || i >= len(v.stripes) {
		return nil, fmt.Errorf("core: no stripe %d", i)
	}
	st := v.stripes[i]
	var res *LabelResolver
	if v.opts.Mode == Lazy {
		res = &LabelResolver{Test: st.wm.Test, Predict: v.trainer.Model().Predict}
	}
	return st.store.Cursor(lo, hi, res)
}

// mergeRowCursor gathers P eps-ascending cursors into one (eps, id)-
// ordered stream.
type mergeRowCursor struct {
	curs  []RowCursor
	heads []SnapEntry
	live  []bool
}

func newMergeRowCursor(curs []RowCursor) (*mergeRowCursor, error) {
	m := &mergeRowCursor{curs: curs, heads: make([]SnapEntry, len(curs)), live: make([]bool, len(curs))}
	for i, c := range curs {
		e, ok, err := c.Next()
		if err != nil {
			m.Close()
			return nil, err
		}
		m.heads[i], m.live[i] = e, ok
	}
	return m, nil
}

func (m *mergeRowCursor) Next() (SnapEntry, bool, error) {
	best := -1
	for i := range m.curs {
		if !m.live[i] {
			continue
		}
		if best < 0 || snapLess(m.heads[i], m.heads[best]) {
			best = i
		}
	}
	if best < 0 {
		return SnapEntry{}, false, nil
	}
	out := m.heads[best]
	e, ok, err := m.curs[best].Next()
	if err != nil {
		return SnapEntry{}, false, err
	}
	m.heads[best], m.live[best] = e, ok
	return out, true, nil
}

// NextBatch merges rows until dst is full or every input is dry. The
// merge itself is row-at-a-time (it must interleave inputs), but the
// batch form amortizes the executor's per-call overhead.
func (m *mergeRowCursor) NextBatch(dst []SnapEntry) (int, error) {
	n := 0
	for n < len(dst) {
		e, ok, err := m.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		dst[n] = e
		n++
	}
	return n, nil
}

func (m *mergeRowCursor) Close() {
	for _, c := range m.curs {
		if c != nil {
			c.Close()
		}
	}
}

// ScanEps streams the rows with eps ∈ [lo, hi] across all stripes,
// merged in (eps, id) order.
func (v *StripedView) ScanEps(lo, hi float64) (RowCursor, error) {
	curs := make([]RowCursor, len(v.stripes))
	for i := range v.stripes {
		c, err := v.ScanEpsStripe(i, lo, hi)
		if err != nil {
			return nil, err
		}
		curs[i] = c
	}
	return newMergeRowCursor(curs)
}

var (
	_ View         = (*StripedView)(nil)
	_ BatchUpdater = (*StripedView)(nil)
	_ Snapshotter  = (*StripedView)(nil)
	_ EpsIndexed   = (*StripedView)(nil)
)
