package core

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"hazy/internal/learn"
	"hazy/internal/obs"
	"hazy/internal/sched"
	"hazy/internal/vector"
)

// StripedView is the partition-striped main-memory layout: the entity
// set is hash-partitioned into P independent stripes, each with its
// own eps-clustered entries slice, watermark pair, and Skiing
// accumulator, while the model stays global (trained once, shared by
// every stripe). Reorganization, band sweeps, inserts, full rescans,
// and snapshot export all scatter across the stripes on the shared
// maintenance pool (internal/sched), so the reorganization cost S —
// the quantity the Skiing strategy amortizes against — scales with
// the stripe size n/P instead of the view size n, and a multi-core
// host reorganizes P stripes concurrently while sharing one
// parallelism budget with every other view's maintenance.
//
// Correctness rests on the watermark guarantee holding per stripe:
// each stripe's Watermark carries its own stored model (the model of
// that stripe's last reorganization) and its own corpus constant M
// over just that stripe's entities, so Lemma 3.1 applies to the
// stripe exactly as it applies to an unstriped view. Labels are
// therefore identical to a single-stripe view fed the same updates;
// only eps values (taken against per-stripe stored models) may differ
// once stripes reorganize at different times.
//
// Unlike an unstriped MemView, a batch observes only the batch-final
// model into each stripe's watermarks. That is sound because
// intermediate models inside a batch never stamp labels and never
// serve reads — the extrema of Eq. (2) only need to cover every model
// that did either — and it keeps the per-stripe observation cost at
// one drift norm per batch instead of one per example.
//
// Like MemView, a StripedView requires external serialization between
// writers and readers (SafeView, the serving engine, or
// single-threaded use); every parallel section is bounded by the call
// that opened it (the pool's scatter barrier).
type StripedView struct {
	opts    Options
	trainer *learn.SGD // global model, shared by all stripes
	stripes []*stripe
	pool    *sched.Pool
	stats   Stats
}

// stripe is one hash partition's maintenance state: a private
// eps-clustered entries slice with its own watermarks and Skiing
// accumulator. All mutation happens either on the caller's goroutine
// or on a worker-pool goroutine that owns the stripe for the duration
// of one parallel section; stripes never share mutable state.
type stripe struct {
	entries      []*memEntry
	byID         map[int64]*memEntry
	wm           *Watermark
	sk           *Skiing
	met          *viewMetrics
	reclassified int64
}

// stripeOf maps an entity id to its stripe (Fibonacci hashing keeps
// sequential id ranges spread evenly).
func stripeOf(id int64, n int) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(n))
}

// NewStriped builds a partition-striped main-memory view with the
// Hazy strategy. partitions must be ≥ 1; each stripe is clustered by
// its own initial reorganization, in parallel.
func NewStriped(entities []Entity, partitions int, opts Options) (*StripedView, error) {
	if partitions < 1 {
		return nil, fmt.Errorf("core: partitions must be >= 1, got %d", partitions)
	}
	opts = opts.withDefaults()
	v := &StripedView{
		opts:    opts,
		trainer: learn.NewSGD(opts.SGD),
		stripes: make([]*stripe, partitions),
		pool:    opts.Pool,
	}
	if v.pool == nil {
		v.pool = sched.Default()
	}
	for _, ex := range opts.Warm {
		v.trainer.Train(ex.F, ex.Label)
	}
	for i := range v.stripes {
		v.stripes[i] = &stripe{
			byID: map[int64]*memEntry{},
			wm:   NewWatermark(opts.Norm),
			sk:   NewSkiing(opts.Alpha),
			met: newViewMetrics(opts.Metrics,
				obs.L("view", opts.MetricsName, "stripe", strconv.Itoa(i))...),
		}
	}
	for _, e := range entities {
		st := v.stripes[stripeOf(e.ID, partitions)]
		if _, dup := st.byID[e.ID]; dup {
			return nil, fmt.Errorf("core: duplicate entity %d", e.ID)
		}
		ent := &memEntry{id: e.ID, f: e.F}
		st.entries = append(st.entries, ent)
		st.byID[e.ID] = ent
	}
	cur := v.trainer.Model()
	v.forStripes(func(_ int, st *stripe) {
		q := st.wm.Q()
		var m float64
		for _, ent := range st.entries {
			if n := ent.f.Norm(q); n > m {
				m = n
			}
		}
		st.wm.M = m
		st.reorganize(cur)
	})
	return v, nil
}

// Stripes returns the partition count.
func (v *StripedView) Stripes() int { return len(v.stripes) }

// Model returns the shared model.
func (v *StripedView) Model() *learn.Model { return v.trainer.Model() }

// forStripes runs fn once per stripe as a scatter on the shared
// maintenance pool and waits for all of them — the single gather
// barrier every parallel section ends with. The calling goroutine
// participates and idle pool workers steal the rest, so this is
// deadlock-free even when the caller is itself a pool worker (an
// engine quantum applying a batch to this view). A panicking fn
// cannot kill the process or a shared worker: the pool re-raises the
// first panic on this caller (as a *sched.TaskPanic) only after every
// stripe task has finished, so no stripe is mid-mutation when the
// caller unwinds. fn receives the stripe's index so call sites can
// write into per-stripe output slots directly.
func (v *StripedView) forStripes(fn func(i int, st *stripe)) {
	v.pool.RunAll(len(v.stripes), func(i int) { fn(i, v.stripes[i]) })
}

// reorganize re-clusters one stripe on eps under cur, resets its
// watermarks, and records the measured per-stripe cost S.
func (st *stripe) reorganize(cur *learn.Model) {
	start := time.Now()
	st.wm.Reset(cur, st.wm.M)
	st.met.observeWMReset()
	for _, ent := range st.entries {
		ent.eps = st.wm.Eps(ent.f)
		ent.label = int8(learn.Sign(ent.eps))
	}
	sort.Slice(st.entries, func(a, b int) bool {
		ea, eb := st.entries[a], st.entries[b]
		if ea.eps != eb.eps {
			return ea.eps < eb.eps
		}
		return ea.id < eb.id
	})
	elapsed := time.Since(start)
	st.sk.DidReorganize(elapsed)
	st.met.observeReorg(elapsed)
}

// band returns the half-open index interval [lo, hi) of stripe
// entries with eps ∈ [lw, hw].
func (st *stripe) band(lw, hw float64) (lo, hi int) {
	lo = sort.Search(len(st.entries), func(i int) bool { return st.entries[i].eps >= lw })
	hi = sort.Search(len(st.entries), func(i int) bool { return st.entries[i].eps > hw })
	return lo, hi
}

// maintain folds the batch-final model into one stripe's watermarks
// and runs its reorganize-or-sweep decision (the eager per-batch
// maintenance step).
func (st *stripe) maintain(cur *learn.Model, reorg ReorgPolicy, lazy bool) {
	lw, hw := st.wm.Observe(cur)
	if reorg == ReorgAlways {
		st.reorganize(cur)
		return
	}
	if lazy {
		return
	}
	if reorg == ReorgSkiing && st.sk.ShouldReorganize() {
		st.reorganize(cur)
		return
	}
	start := time.Now()
	lo, hi := st.band(lw, hw)
	for i := lo; i < hi; i++ {
		ent := st.entries[i]
		ent.label = int8(cur.Predict(ent.f))
	}
	st.reclassified += int64(hi - lo)
	st.sk.AddCost(time.Since(start))
	st.met.observeSweep(hi - lo)
}

// Update folds in one training example — a batch of one.
func (v *StripedView) Update(f vector.Vector, label int) error {
	return v.UpdateBatch([]learn.Example{{F: f, Label: label}})
}

// UpdateBatch group-applies a run of training examples: the SGD steps
// run sequentially on the shared model (SGD is inherently ordered),
// then every stripe observes the batch-final model and makes its
// reorganize-or-sweep decision in parallel. One publish-shaped gather
// barrier per batch, however many stripes ran.
func (v *StripedView) UpdateBatch(examples []learn.Example) error {
	if len(examples) == 0 {
		return nil
	}
	for _, ex := range examples {
		v.trainer.Train(ex.F, ex.Label)
		v.stats.Updates++
	}
	cur := v.trainer.Model()
	lazy := v.opts.Mode == Lazy
	v.forStripes(func(_ int, st *stripe) {
		st.maintain(cur, v.opts.Reorg, lazy)
	})
	return nil
}

// insertOne classifies and places one entity into its stripe's
// clustered position (the caller has already routed e to st).
func (st *stripe) insertOne(e Entity, cur *learn.Model) error {
	if _, dup := st.byID[e.ID]; dup {
		return fmt.Errorf("core: duplicate entity %d", e.ID)
	}
	st.wm.ObserveEntity(e.F)
	st.wm.Observe(cur)
	ent := &memEntry{id: e.ID, f: e.F, eps: st.wm.Eps(e.F), label: int8(cur.Predict(e.F))}
	pos := sort.Search(len(st.entries), func(i int) bool {
		o := st.entries[i]
		if o.eps != ent.eps {
			return o.eps > ent.eps
		}
		return o.id > ent.id
	})
	st.entries = append(st.entries, nil)
	copy(st.entries[pos+1:], st.entries[pos:])
	st.entries[pos] = ent
	st.byID[e.ID] = ent
	return nil
}

// Insert adds a new entity, classified under the current model, to
// its hash stripe.
func (v *StripedView) Insert(e Entity) error {
	return v.stripes[stripeOf(e.ID, len(v.stripes))].insertOne(e, v.trainer.Model())
}

// InsertBatch scatters a run of entity inserts to their stripes and
// applies each stripe's share in parallel, preserving arrival order
// within a stripe. The returned slice has one error slot per entity,
// positionally; a failed insert (duplicate id) rejects only that
// entity.
func (v *StripedView) InsertBatch(entities []Entity) []error {
	errs := make([]error, len(entities))
	byStripe := make([][]int, len(v.stripes))
	for i, e := range entities {
		s := stripeOf(e.ID, len(v.stripes))
		byStripe[s] = append(byStripe[s], i)
	}
	cur := v.trainer.Model()
	v.forStripes(func(s int, st *stripe) {
		for _, i := range byStripe[s] {
			errs[i] = st.insertOne(entities[i], cur)
		}
	})
	return errs
}

// Label answers a Single Entity read.
func (v *StripedView) Label(id int64) (int, error) {
	st := v.stripes[stripeOf(id, len(v.stripes))]
	ent, ok := st.byID[id]
	if !ok {
		return 0, fmt.Errorf("core: no entity %d", id)
	}
	if v.opts.Mode == Eager {
		return int(ent.label), nil
	}
	if label, certain := st.wm.Test(ent.eps); certain {
		return label, nil
	}
	return v.trainer.Model().Predict(ent.f), nil
}

// members drives an All Members read: scatter to the stripes in
// parallel (each collecting into its own slice — no shared state),
// gather in stripe order. Lazy mode accrues each stripe's waste into
// that stripe's Skiing accumulator and may reorganize the stripe,
// which is why lazy Members needs the writer's lock, exactly like
// MemView (SafeView provides it).
func (v *StripedView) members(fn func(id int64)) error {
	cur := v.trainer.Model()
	lazy := v.opts.Mode == Lazy
	out := make([][]int64, len(v.stripes))
	v.forStripes(func(i int, st *stripe) {
		ids := &out[i]
		lw, hw := st.wm.Band()
		lo, hi := st.band(lw, hw)
		if !lazy {
			// Eager: labels are current; all positives live at eps ≥ lw.
			for i := lo; i < hi; i++ {
				if st.entries[i].label > 0 {
					*ids = append(*ids, st.entries[i].id)
				}
			}
			for i := hi; i < len(st.entries); i++ {
				*ids = append(*ids, st.entries[i].id)
			}
			return
		}
		// Lazy (§3.4): everything above high water is a member; the
		// band is classified against the current model; waste accrues
		// toward this stripe's reorganization.
		start := time.Now()
		nPos := len(st.entries) - hi
		for i := hi; i < len(st.entries); i++ {
			*ids = append(*ids, st.entries[i].id)
		}
		for i := lo; i < hi; i++ {
			if cur.Predict(st.entries[i].f) > 0 {
				*ids = append(*ids, st.entries[i].id)
				nPos++
			}
		}
		st.reclassified += int64(hi - lo)
		st.met.observeSweep(hi - lo)
		nRead := len(st.entries) - lo
		elapsed := time.Since(start)
		if nRead > 0 {
			waste := time.Duration(float64(elapsed) * float64(nRead-nPos) / float64(nRead))
			st.sk.AddWaste(waste)
		}
		if v.opts.Reorg == ReorgSkiing && st.sk.ShouldReorganize() {
			st.reorganize(cur)
		}
	})
	for _, ids := range out {
		for _, id := range ids {
			fn(id)
		}
	}
	return nil
}

// Members returns the ids labeled +1, in unspecified order.
func (v *StripedView) Members() ([]int64, error) {
	var out []int64
	err := v.members(func(id int64) { out = append(out, id) })
	return out, err
}

// CountMembers returns |{id : label(id) = +1}|.
func (v *StripedView) CountMembers() (int, error) {
	n := 0
	err := v.members(func(int64) { n++ })
	return n, err
}

// Retrain rebuilds the shared model from scratch on examples and
// reorganizes every stripe against it, in parallel.
func (v *StripedView) Retrain(examples []learn.Example) error {
	v.trainer = learn.NewSGD(v.opts.SGD)
	for _, ex := range examples {
		v.trainer.Train(ex.F, ex.Label)
	}
	cur := v.trainer.Model()
	v.forStripes(func(_ int, st *stripe) { st.reorganize(cur) })
	return nil
}

// MostUncertain returns up to k entity ids nearest the decision
// boundary: each stripe walks outward from its own eps = 0 (per-
// stripe stored models make eps stripe-local), then the per-stripe
// candidates merge by |eps|, negative side first on ties — the same
// order the unstriped walk produces.
func (v *StripedView) MostUncertain(k int) ([]int64, error) {
	if k <= 0 {
		return nil, nil
	}
	cand := make([][]SnapEntry, len(v.stripes))
	v.forStripes(func(i int, st *stripe) {
		out := &cand[i]
		n := len(st.entries)
		hi := sort.Search(n, func(i int) bool { return st.entries[i].eps >= 0 })
		lo := hi - 1
		for len(*out) < k && (lo >= 0 || hi < n) {
			var pick *memEntry
			switch {
			case lo < 0:
				pick, hi = st.entries[hi], hi+1
			case hi >= n:
				pick, lo = st.entries[lo], lo-1
			case -st.entries[lo].eps <= st.entries[hi].eps:
				pick, lo = st.entries[lo], lo-1
			default:
				pick, hi = st.entries[hi], hi+1
			}
			*out = append(*out, SnapEntry{ID: pick.id, Eps: pick.eps})
		}
	})
	var all []SnapEntry
	for _, c := range cand {
		all = append(all, c...)
	}
	sort.Slice(all, func(a, b int) bool {
		ea, eb := all[a], all[b]
		aa, ab := ea.Eps, eb.Eps
		if aa < 0 {
			aa = -aa
		}
		if ab < 0 {
			ab = -ab
		}
		if aa != ab {
			return aa < ab
		}
		if ea.Eps != eb.Eps {
			return ea.Eps < eb.Eps // negative side first, like walkUncertain
		}
		return ea.ID < eb.ID
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]int64, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out, nil
}

// Stats aggregates maintenance counters across the stripes. LowWater
// and HighWater report the widest band over any stripe (the
// conservative envelope).
func (v *StripedView) Stats() Stats {
	s := v.stats
	for i, st := range v.stripes {
		s.Reorgs += st.sk.Reorgs()
		s.IncSteps += st.sk.IncSteps()
		s.Reclassified += st.reclassified
		lw, hw := st.wm.Band()
		lo, hi := st.band(lw, hw)
		s.BandTuples += hi - lo
		if i == 0 || lw < s.LowWater {
			s.LowWater = lw
		}
		if i == 0 || hw > s.HighWater {
			s.HighWater = hw
		}
	}
	return s
}

// Snapshot exports the composed immutable snapshot: every stripe
// resolves its slice in parallel (exact labels, eps-ascending — the
// stripe is already clustered), then the P sorted slices k-way merge
// into one globally (eps, id)-ordered entry list. One barrier, one
// publishable object.
func (v *StripedView) Snapshot() (*Snapshot, error) {
	cur := v.trainer.Model()
	lazy := v.opts.Mode == Lazy
	parts := make([][]SnapEntry, len(v.stripes))
	v.forStripes(func(p int, st *stripe) {
		out := make([]SnapEntry, len(st.entries))
		for i, ent := range st.entries {
			label := ent.label
			if lazy {
				if l, certain := st.wm.Test(ent.eps); certain {
					label = int8(l)
				} else {
					label = int8(cur.Predict(ent.f))
				}
			}
			out[i] = SnapEntry{ID: ent.id, Eps: ent.eps, Label: label}
		}
		parts[p] = out
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	s := &Snapshot{
		model:     cur.Clone(),
		entries:   mergeSnapEntries(parts, total),
		byID:      make(map[int64]int, total),
		clustered: true,
		stats:     v.Stats(),
	}
	for i := range s.entries {
		s.byID[s.entries[i].ID] = i
		if s.entries[i].Label > 0 {
			s.members++
		}
	}
	return s, nil
}

// mergeSnapEntries k-way merges eps-ascending slices into one
// (eps, id)-ordered slice.
func mergeSnapEntries(parts [][]SnapEntry, total int) []SnapEntry {
	out := make([]SnapEntry, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for p := range parts {
			if idx[p] >= len(parts[p]) {
				continue
			}
			if best < 0 || snapLess(parts[p][idx[p]], parts[best][idx[best]]) {
				best = p
			}
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}

func snapLess(a, b SnapEntry) bool {
	if a.Eps != b.Eps {
		return a.Eps < b.Eps
	}
	return a.ID < b.ID
}

// Eps index ----------------------------------------------------------

// Clustered reports that every stripe keeps the eps clustering.
func (v *StripedView) Clustered() bool { return true }

// EpsOf returns the entity's eps under its stripe's stored model.
func (v *StripedView) EpsOf(id int64) (float64, error) {
	st := v.stripes[stripeOf(id, len(v.stripes))]
	ent, ok := st.byID[id]
	if !ok {
		return 0, fmt.Errorf("core: no entity %d", id)
	}
	return ent.eps, nil
}

// stripeCursor walks one stripe's band, resolving labels the way
// Label does, without mutating maintenance state.
type stripeCursor struct {
	st     *stripe
	cur    *learn.Model
	lazy   bool
	i, end int
}

func (c *stripeCursor) Next() (SnapEntry, bool, error) {
	if c.i >= c.end {
		return SnapEntry{}, false, nil
	}
	ent := c.st.entries[c.i]
	c.i++
	label := int(ent.label)
	if c.lazy {
		if l, certain := c.st.wm.Test(ent.eps); certain {
			label = l
		} else {
			label = c.cur.Predict(ent.f)
		}
	}
	return SnapEntry{ID: ent.id, Eps: ent.eps, Label: int8(label)}, true, nil
}

func (c *stripeCursor) NextBatch(dst []SnapEntry) (int, error) {
	n := len(dst)
	if rest := c.end - c.i; rest < n {
		n = rest
	}
	if n <= 0 {
		return 0, nil
	}
	for k := 0; k < n; k++ {
		ent := c.st.entries[c.i+k]
		label := int(ent.label)
		if c.lazy {
			if l, certain := c.st.wm.Test(ent.eps); certain {
				label = l
			} else {
				label = c.cur.Predict(ent.f)
			}
		}
		dst[k] = SnapEntry{ID: ent.id, Eps: ent.eps, Label: int8(label)}
	}
	c.i += n
	return n, nil
}

func (c *stripeCursor) Close() {}

// ScanEpsStripe streams one stripe's rows with eps ∈ [lo, hi], eps-
// ascending — the scatter half of a scatter-gather read; the exec
// layer's merge-scan operator (or ScanEps below) is the gather half.
func (v *StripedView) ScanEpsStripe(i int, lo, hi float64) (RowCursor, error) {
	if i < 0 || i >= len(v.stripes) {
		return nil, fmt.Errorf("core: no stripe %d", i)
	}
	st := v.stripes[i]
	a, b := st.band(lo, hi)
	return &stripeCursor{st: st, cur: v.trainer.Model(), lazy: v.opts.Mode == Lazy, i: a, end: b}, nil
}

// mergeRowCursor gathers P eps-ascending cursors into one (eps, id)-
// ordered stream.
type mergeRowCursor struct {
	curs  []RowCursor
	heads []SnapEntry
	live  []bool
}

func newMergeRowCursor(curs []RowCursor) (*mergeRowCursor, error) {
	m := &mergeRowCursor{curs: curs, heads: make([]SnapEntry, len(curs)), live: make([]bool, len(curs))}
	for i, c := range curs {
		e, ok, err := c.Next()
		if err != nil {
			m.Close()
			return nil, err
		}
		m.heads[i], m.live[i] = e, ok
	}
	return m, nil
}

func (m *mergeRowCursor) Next() (SnapEntry, bool, error) {
	best := -1
	for i := range m.curs {
		if !m.live[i] {
			continue
		}
		if best < 0 || snapLess(m.heads[i], m.heads[best]) {
			best = i
		}
	}
	if best < 0 {
		return SnapEntry{}, false, nil
	}
	out := m.heads[best]
	e, ok, err := m.curs[best].Next()
	if err != nil {
		return SnapEntry{}, false, err
	}
	m.heads[best], m.live[best] = e, ok
	return out, true, nil
}

// NextBatch merges rows until dst is full or every input is dry. The
// merge itself is row-at-a-time (it must interleave inputs), but the
// batch form amortizes the executor's per-call overhead.
func (m *mergeRowCursor) NextBatch(dst []SnapEntry) (int, error) {
	n := 0
	for n < len(dst) {
		e, ok, err := m.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		dst[n] = e
		n++
	}
	return n, nil
}

func (m *mergeRowCursor) Close() {
	for _, c := range m.curs {
		if c != nil {
			c.Close()
		}
	}
}

// ScanEps streams the rows with eps ∈ [lo, hi] across all stripes,
// merged in (eps, id) order.
func (v *StripedView) ScanEps(lo, hi float64) (RowCursor, error) {
	curs := make([]RowCursor, len(v.stripes))
	for i := range v.stripes {
		c, err := v.ScanEpsStripe(i, lo, hi)
		if err != nil {
			return nil, err
		}
		curs[i] = c
	}
	return newMergeRowCursor(curs)
}

var (
	_ View         = (*StripedView)(nil)
	_ BatchUpdater = (*StripedView)(nil)
	_ Snapshotter  = (*StripedView)(nil)
	_ EpsIndexed   = (*StripedView)(nil)
)
