// Package dataset generates the synthetic stand-ins for the paper's
// evaluation data (Figure 3): Forest (dense, 54 features, 582k
// entities, multiclass), DBLife (titles: sparse, 41k vocabulary, ~7
// non-zeros), Citeseer (abstracts: sparse, 682k vocabulary, ~60
// non-zeros), and the UCI MAGIC/ADULT sets of Figure 10.
//
// Real crawls are proprietary; the maintenance algorithms' costs
// depend only on entity count, sparsity, feature dimensionality, and
// model drift, all of which the generators match (scaled by a factor
// so experiments run at laptop scale). Labels come from a hidden
// ground-truth hyperplane with optional noise, so trained models
// converge the way warm models do in the paper.
package dataset

import (
	"math"
	"math/rand"

	"hazy/internal/core"
	"hazy/internal/learn"
	"hazy/internal/vector"
)

// Spec describes a synthetic data set.
type Spec struct {
	// Name is the data set's display name (FC, DB, CS, ...).
	Name string
	// Entities is the number of entity rows to generate.
	Entities int
	// Features is the feature dimensionality (vocabulary size for
	// sparse sets).
	Features int
	// AvgNNZ is the mean number of non-zero components per sparse
	// vector; ignored for dense sets.
	AvgNNZ int
	// Dense selects dense vectors (Forest-style) over sparse
	// bag-of-words.
	Dense bool
	// Classes is the number of classes (2 = binary).
	Classes int
	// NoiseRate is the probability a training label is flipped.
	NoiseRate float64
	// Seed makes generation deterministic.
	Seed int64
}

// Scale returns a copy of s with the entity count multiplied by f
// (minimum 10). Sparse sets also scale their vocabulary: real
// bag-of-words vocabularies grow with the corpus (Heaps' law), and
// the paper's N-vs-|F| balance — which decides when Hazy's O(|F|)
// drift bound beats the naive O(N·nnz) rescan — must survive scaling.
func (s Spec) Scale(f float64) Spec {
	s.Entities = int(float64(s.Entities) * f)
	if s.Entities < 10 {
		s.Entities = 10
	}
	if !s.Dense {
		s.Features = int(float64(s.Features) * f)
		if s.Features < 500 {
			s.Features = 500
		}
	}
	return s
}

// The paper's data sets, pre-scaled to laptop size (~10% of the
// originals for DB, ~2% for CS/FC; benches rescale as needed).
var (
	// Forest: dense 54-feature multiclass (7 classes); the paper
	// treats it as binary "largest class vs rest" except in C.3.
	Forest = Spec{Name: "FC", Entities: 12000, Features: 54, Dense: true, Classes: 7, NoiseRate: 0.05, Seed: 101}
	// DBLife: paper titles — short sparse vectors. The paper's corpus
	// is 124k entities over a 41k vocabulary (≈3:1); the laptop-scale
	// default keeps that ratio at 12k entities.
	DBLife = Spec{Name: "DB", Entities: 12000, Features: 4100, AvgNNZ: 7, Classes: 2, NoiseRate: 0.05, Seed: 102}
	// Citeseer: abstracts — longer sparse vectors over a vocabulary
	// about as large as the corpus (721k/682k ≈ 1:1 in the paper).
	Citeseer = Spec{Name: "CS", Entities: 14000, Features: 13000, AvgNNZ: 60, Classes: 2, NoiseRate: 0.05, Seed: 103}
	// Magic and Adult approximate the UCI sets of Figure 10.
	Magic = Spec{Name: "MAGIC", Entities: 19020, Features: 10, Dense: true, Classes: 2, NoiseRate: 0.12, Seed: 104}
	Adult = Spec{Name: "ADULT", Entities: 32561, Features: 14, Dense: true, Classes: 2, NoiseRate: 0.08, Seed: 105}
)

// Data is a generated data set: entities plus the hidden ground
// truth used to label training examples.
type Data struct {
	Spec     Spec
	Entities []core.Entity
	// hidden[c] scores class c; binary sets use hidden[0] with
	// sign(+)=class 0 … see Class.
	hidden [][]float64
	bias   []float64
	rng    *rand.Rand
	zipf   *rand.Zipf
}

// Generate materializes a data set from its spec.
func Generate(spec Spec) *Data {
	r := rand.New(rand.NewSource(spec.Seed))
	d := &Data{Spec: spec, rng: r}
	if !spec.Dense {
		// Zipf word distribution over the vocabulary, like real text.
		d.zipf = rand.NewZipf(r, 1.3, 1, uint64(spec.Features-1))
	}
	nScores := spec.Classes
	if nScores < 2 {
		nScores = 2
	}
	d.hidden = make([][]float64, nScores)
	d.bias = make([]float64, nScores)
	for c := range d.hidden {
		w := make([]float64, spec.Features)
		for i := range w {
			w[i] = r.NormFloat64()
		}
		d.hidden[c] = w
		d.bias[c] = r.NormFloat64() * 0.1
	}
	d.Entities = make([]core.Entity, spec.Entities)
	for i := range d.Entities {
		d.Entities[i] = core.Entity{ID: int64(i), F: d.Vector()}
	}
	return d
}

// Vector draws a fresh feature vector from the data distribution.
func (d *Data) Vector() vector.Vector {
	if d.Spec.Dense {
		vals := make([]float64, d.Spec.Features)
		for i := range vals {
			vals[i] = d.rng.NormFloat64()
		}
		v := vector.NewDense(vals)
		v.L2Normalize()
		return v
	}
	nnz := 1 + d.rng.Intn(2*d.Spec.AvgNNZ)
	m := map[int32]float64{}
	// Zipf draws repeat for common terms; repeats become term counts,
	// like real word frequencies.
	for len(m) < nnz {
		m[int32(d.zipf.Uint64())]++
	}
	v := vector.FromMap(m)
	v.L1Normalize()
	return v
}

// Class returns the ground-truth class of f: the argmax over the
// hidden per-class scores.
func (d *Data) Class(f vector.Vector) int {
	best, bestScore := 0, math.Inf(-1)
	for c, w := range d.hidden {
		if s := vector.Dot(w, f) - d.bias[c]; s > bestScore {
			best, bestScore = c, s
		}
	}
	if d.Spec.Classes == 2 {
		return best % 2
	}
	return best
}

// BinaryLabel returns the ±1 ground-truth label, possibly flipped by
// the spec's noise rate. For binary specs it is class 0 vs class 1
// (a halfspace). For multiclass specs it follows the paper's "treat
// FC as a binary classification to find the largest class" (§4
// footnote): the binary task is class 0's own hyperplane, which keeps
// the target linearly representable.
func (d *Data) BinaryLabel(f vector.Vector) int {
	var y int
	if d.Spec.Classes == 2 {
		y = 1
		if d.Class(f) != 0 {
			y = -1
		}
	} else {
		y = learn.Sign(vector.Dot(d.hidden[0], f) - d.bias[0])
	}
	if d.rng.Float64() < d.Spec.NoiseRate {
		y = -y
	}
	return y
}

// Example draws one labeled training example from the distribution.
func (d *Data) Example() learn.Example {
	f := d.Vector()
	return learn.Example{F: f, Label: d.BinaryLabel(f)}
}

// Stream draws n training examples.
func (d *Data) Stream(n int) []learn.Example {
	out := make([]learn.Example, n)
	for i := range out {
		out[i] = d.Example()
	}
	return out
}

// MulticlassExample draws one labeled example with its class index.
func (d *Data) MulticlassExample() (vector.Vector, int) {
	f := d.Vector()
	return f, d.Class(f)
}

// LabeledEntities returns the entities with their ground-truth ±1
// labels (for train/test quality experiments like Figure 10).
func (d *Data) LabeledEntities() []learn.Example {
	out := make([]learn.Example, len(d.Entities))
	for i, e := range d.Entities {
		out[i] = learn.Example{ID: e.ID, F: e.F, Label: d.BinaryLabel(e.F)}
	}
	return out
}

// Stats summarizes the data set the way Figure 3 does.
type Stats struct {
	Name       string
	SizeBytes  int64
	Entities   int
	Features   int
	AvgNonZero float64
}

// Stats computes the Figure 3 row for this data set.
func (d *Data) Stats() Stats {
	var bytes int64
	var nnz int64
	for _, e := range d.Entities {
		bytes += int64(8 + e.F.EncodedSize())
		nnz += int64(e.F.NNZ())
	}
	avg := 0.0
	if len(d.Entities) > 0 {
		avg = float64(nnz) / float64(len(d.Entities))
	}
	return Stats{
		Name:       d.Spec.Name,
		SizeBytes:  bytes,
		Entities:   len(d.Entities),
		Features:   d.Spec.Features,
		AvgNonZero: avg,
	}
}
