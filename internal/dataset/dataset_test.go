package dataset

import (
	"math"
	"math/rand"
	"testing"

	"hazy/internal/learn"
)

func TestGenerateShapes(t *testing.T) {
	for _, spec := range []Spec{Forest, DBLife, Citeseer, Magic, Adult} {
		spec = spec.Scale(0.02)
		d := Generate(spec)
		if len(d.Entities) != spec.Entities {
			t.Fatalf("%s: %d entities want %d", spec.Name, len(d.Entities), spec.Entities)
		}
		for _, e := range d.Entities[:10] {
			if err := e.F.Validate(); err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			if spec.Dense != e.F.IsDense() {
				t.Fatalf("%s: density mismatch", spec.Name)
			}
			if e.F.Dim() > spec.Features {
				t.Fatalf("%s: dim %d > %d", spec.Name, e.F.Dim(), spec.Features)
			}
		}
	}
}

func TestSparseStatsMatchSpec(t *testing.T) {
	d := Generate(Citeseer.Scale(0.05))
	st := d.Stats()
	if st.Name != "CS" || st.Entities != len(d.Entities) {
		t.Fatalf("stats %+v", st)
	}
	// Average non-zeros should be in the ballpark of AvgNNZ.
	if st.AvgNonZero < float64(d.Spec.AvgNNZ)/3 || st.AvgNonZero > float64(d.Spec.AvgNNZ)*2 {
		t.Fatalf("avg nnz %.1f vs spec %d", st.AvgNonZero, d.Spec.AvgNNZ)
	}
	if st.SizeBytes <= 0 {
		t.Fatal("size not computed")
	}
}

func TestNormalization(t *testing.T) {
	sparse := Generate(DBLife.Scale(0.01))
	for _, e := range sparse.Entities[:20] {
		if math.Abs(e.F.Norm(1)-1) > 1e-9 {
			t.Fatalf("sparse vector not l1-normalized: %v", e.F.Norm(1))
		}
	}
	dense := Generate(Forest.Scale(0.01))
	for _, e := range dense.Entities[:20] {
		if math.Abs(e.F.Norm(2)-1) > 1e-9 {
			t.Fatalf("dense vector not l2-normalized: %v", e.F.Norm(2))
		}
	}
}

func TestDeterministicInSeed(t *testing.T) {
	a := Generate(DBLife.Scale(0.01))
	b := Generate(DBLife.Scale(0.01))
	for i := range a.Entities {
		av, bv := a.Entities[i].F, b.Entities[i].F
		if av.NNZ() != bv.NNZ() {
			t.Fatal("generation not deterministic")
		}
	}
	sa, sb := a.Stream(10), b.Stream(10)
	for i := range sa {
		if sa[i].Label != sb[i].Label {
			t.Fatal("stream not deterministic")
		}
	}
}

func TestLearnableGroundTruth(t *testing.T) {
	// An SGD model trained on the stream should beat chance clearly
	// on held-out examples — the ground truth is a real hyperplane.
	for _, spec := range []Spec{Forest, DBLife} {
		d := Generate(spec.Scale(0.1))
		s := learn.NewSGD(learn.SGDConfig{Eta0: 1})
		for _, ex := range d.Stream(8000) {
			s.Train(ex.F, ex.Label)
		}
		test := d.Stream(1000)
		correct := 0
		for _, ex := range test {
			if s.Model().Predict(ex.F) == ex.Label {
				correct++
			}
		}
		acc := float64(correct) / float64(len(test))
		if acc < 0.68 {
			t.Fatalf("%s: held-out accuracy %.3f (ground truth not learnable)", spec.Name, acc)
		}
	}
}

func TestMulticlassLabels(t *testing.T) {
	d := Generate(Forest.Scale(0.02))
	counts := make([]int, d.Spec.Classes)
	for i := 0; i < 2000; i++ {
		f, c := d.MulticlassExample()
		if c < 0 || c >= d.Spec.Classes {
			t.Fatalf("class %d out of range", c)
		}
		if f.NNZ() == 0 {
			t.Fatal("empty example")
		}
		counts[c]++
	}
	nonEmpty := 0
	for _, n := range counts {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 3 {
		t.Fatalf("class distribution degenerate: %v", counts)
	}
}

func TestBinaryLabelNoise(t *testing.T) {
	spec := Magic
	spec.Entities = 100
	spec.NoiseRate = 0.5
	d := Generate(spec)
	r := rand.New(rand.NewSource(9))
	_ = r
	pos := 0
	for i := 0; i < 2000; i++ {
		if d.Example().Label == 1 {
			pos++
		}
	}
	// With 50% label noise the label is a coin flip.
	if pos < 800 || pos > 1200 {
		t.Fatalf("noise rate not applied: %d/2000 positive", pos)
	}
}

func TestScaleFloor(t *testing.T) {
	s := Spec{Entities: 50}.Scale(0.0001)
	if s.Entities != 10 {
		t.Fatalf("floor: %d", s.Entities)
	}
}
