package kernel

import (
	"fmt"
	"sort"
	"time"

	"hazy/internal/core"
	"hazy/internal/vector"
)

// entry is one entity in the kernel view, with eps = the stored
// model's score and label maintained per the mode.
type entry struct {
	id    int64
	x     vector.Vector
	eps   float64
	label int8
}

// View is a main-memory classification view over a kernel classifier
// with Hazy's incremental maintenance: entries clustered on stored
// score, the App. B.5.2 ℓ1-drift watermark, and Skiing-driven
// reorganization.
type View struct {
	mode    core.Mode
	trainer *Trainer
	entries []*entry
	byID    map[int64]*entry
	wm      Watermark
	sk      *core.Skiing
	updates int
}

// NewView builds a kernel view over entities with the given trainer
// configuration.
func NewView(k Kernel, eta float64, budget int, mode core.Mode, alpha float64, entities []core.Entity) *View {
	if alpha == 0 {
		alpha = 1
	}
	v := &View{
		mode:    mode,
		trainer: NewTrainer(k, eta, budget),
		byID:    make(map[int64]*entry, len(entities)),
		sk:      core.NewSkiing(alpha),
	}
	for _, e := range entities {
		en := &entry{id: e.ID, x: e.F}
		v.entries = append(v.entries, en)
		v.byID[e.ID] = en
	}
	v.reorganize()
	return v
}

// Model returns the current kernel model.
func (v *View) Model() *Model { return v.trainer.Model() }

// Updates returns the number of training examples folded in.
func (v *View) Updates() int { return v.updates }

// Reorgs returns the number of reorganizations (including the
// initial clustering).
func (v *View) Reorgs() int { return v.sk.Reorgs() }

func (v *View) reorganize() {
	start := time.Now()
	m := v.trainer.Model()
	for _, en := range v.entries {
		en.eps = m.Score(en.x)
		if en.eps >= 0 {
			en.label = 1
		} else {
			en.label = -1
		}
	}
	sort.Slice(v.entries, func(a, b int) bool {
		ea, eb := v.entries[a], v.entries[b]
		if ea.eps != eb.eps {
			return ea.eps < eb.eps
		}
		return ea.id < eb.id
	})
	v.wm.Reset()
	v.sk.DidReorganize(time.Since(start))
}

func (v *View) band() (lo, hi int) {
	lw, hw := v.wm.Band()
	lo = sort.Search(len(v.entries), func(i int) bool { return v.entries[i].eps >= lw })
	hi = sort.Search(len(v.entries), func(i int) bool { return v.entries[i].eps > hw })
	return lo, hi
}

// Update folds one training example in and maintains the view.
func (v *View) Update(x vector.Vector, label int) {
	v.wm.AddDrift(v.trainer.Train(x, label))
	v.updates++
	if v.mode == core.Lazy {
		return
	}
	if v.sk.ShouldReorganize() {
		v.reorganize()
		return
	}
	start := time.Now()
	lo, hi := v.band()
	m := v.trainer.Model()
	for i := lo; i < hi; i++ {
		v.entries[i].label = int8(m.Predict(v.entries[i].x))
	}
	v.sk.AddCost(time.Since(start))
}

// Label answers a Single Entity read.
func (v *View) Label(id int64) (int, error) {
	en, ok := v.byID[id]
	if !ok {
		return 0, fmt.Errorf("kernel: no entity %d", id)
	}
	if v.mode == core.Eager {
		return int(en.label), nil
	}
	if label, certain := v.wm.Test(en.eps); certain {
		return label, nil
	}
	return v.trainer.Model().Predict(en.x), nil
}

// Members returns the ids labeled +1. In lazy mode the scan accrues
// the §3.4 waste toward the next reorganization.
func (v *View) Members() []int64 {
	var out []int64
	start := time.Now()
	lo, hi := v.band()
	if v.mode == core.Eager {
		for i := lo; i < hi; i++ {
			if v.entries[i].label > 0 {
				out = append(out, v.entries[i].id)
			}
		}
	} else {
		m := v.trainer.Model()
		for i := lo; i < hi; i++ {
			if m.Predict(v.entries[i].x) > 0 {
				out = append(out, v.entries[i].id)
			}
		}
	}
	for i := hi; i < len(v.entries); i++ {
		out = append(out, v.entries[i].id)
	}
	if v.mode == core.Lazy {
		nRead := len(v.entries) - lo
		if nRead > 0 {
			waste := time.Duration(float64(time.Since(start)) *
				float64(nRead-len(out)) / float64(nRead))
			v.sk.AddWaste(waste)
		}
		if v.sk.ShouldReorganize() {
			v.reorganize()
		}
	}
	return out
}

// BandTuples returns the number of entries inside the current band.
func (v *View) BandTuples() int {
	lo, hi := v.band()
	return hi - lo
}
