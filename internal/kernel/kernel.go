// Package kernel implements Hazy's kernel-method extension
// (paper App. B.5.2): classifiers of the form
//
//	c(x) = Σ_i c_i · K(s_i, x)
//
// over support vectors s_i, trained incrementally (a budgeted kernel
// perceptron), with the same incremental view maintenance as the
// linear case. The watermark argument carries over because the
// supported kernels satisfy K(·,·) ∈ [0, 1]: if the weight vector
// moves by δ (in ℓ1, counting new support vectors at full weight),
// no point's score moves by more than ‖δ‖₁.
package kernel

import (
	"fmt"
	"math"

	"hazy/internal/vector"
)

// Kernel is a positive semi-definite kernel with range [0, 1]
// (required by the App. B.5.2 drift bound).
type Kernel interface {
	Name() string
	Eval(x, y vector.Vector) float64
}

// Gaussian is K(x,y) = exp(−γ‖x−y‖₂²).
type Gaussian struct{ Gamma float64 }

// Name returns "gaussian".
func (Gaussian) Name() string { return "gaussian" }

// Eval evaluates the kernel.
func (k Gaussian) Eval(x, y vector.Vector) float64 {
	d := x.Dim()
	if yd := y.Dim(); yd > d {
		d = yd
	}
	var s float64
	for i := 0; i < d; i++ {
		diff := x.At(i) - y.At(i)
		s += diff * diff
	}
	return math.Exp(-k.Gamma * s)
}

// Laplacian is K(x,y) = exp(−γ‖x−y‖₁).
type Laplacian struct{ Gamma float64 }

// Name returns "laplacian".
func (Laplacian) Name() string { return "laplacian" }

// Eval evaluates the kernel.
func (k Laplacian) Eval(x, y vector.Vector) float64 {
	d := x.Dim()
	if yd := y.Dim(); yd > d {
		d = yd
	}
	var s float64
	for i := 0; i < d; i++ {
		s += math.Abs(x.At(i) - y.At(i))
	}
	return math.Exp(-k.Gamma * s)
}

// SV is one support vector with its weight.
type SV struct {
	X vector.Vector
	C float64
}

// Model is a kernel classifier: sign(Σ c_i K(s_i, x)).
type Model struct {
	K   Kernel
	SVs []SV
}

// Score returns Σ c_i K(s_i, x).
func (m *Model) Score(x vector.Vector) float64 {
	var s float64
	for _, sv := range m.SVs {
		s += sv.C * m.K.Eval(sv.X, x)
	}
	return s
}

// Predict returns sign(Score(x)) with sign(0) = +1.
func (m *Model) Predict(x vector.Vector) int {
	if m.Score(x) >= 0 {
		return 1
	}
	return -1
}

// Clone returns a copy sharing support-vector feature storage (the
// vectors are immutable by convention) but with independent weights.
func (m *Model) Clone() *Model {
	return &Model{K: m.K, SVs: append([]SV(nil), m.SVs...)}
}

// Trainer is a budgeted kernel perceptron: on a margin mistake it
// adds the example as a support vector with weight ±η; past the
// budget the smallest-|c| support vector is evicted. Each Train step
// is incremental, matching Hazy's incremental-training requirement.
type Trainer struct {
	model  *Model
	eta    float64
	budget int
	t      int
}

// NewTrainer returns a trainer with learning rate eta and a
// support-vector budget (0 = unbounded).
func NewTrainer(k Kernel, eta float64, budget int) *Trainer {
	if eta == 0 {
		eta = 1
	}
	return &Trainer{model: &Model{K: k}, eta: eta, budget: budget}
}

// Model returns the live model; callers must Clone before retaining.
func (tr *Trainer) Model() *Model { return tr.model }

// Steps returns the number of examples seen.
func (tr *Trainer) Steps() int { return tr.t }

// Train folds one example in. It returns the ℓ1 weight change this
// step caused — the drift term of the App. B.5.2 watermark bound.
func (tr *Trainer) Train(x vector.Vector, label int) float64 {
	tr.t++
	y := float64(label)
	if tr.model.Score(x)*y > 0 {
		return 0 // correctly classified: no change
	}
	w := tr.eta * y
	tr.model.SVs = append(tr.model.SVs, SV{X: x, C: w})
	drift := math.Abs(w)
	if tr.budget > 0 && len(tr.model.SVs) > tr.budget {
		// Evict the weakest support vector; its whole weight counts
		// as drift.
		weak := 0
		for i, sv := range tr.model.SVs {
			if math.Abs(sv.C) < math.Abs(tr.model.SVs[weak].C) {
				weak = i
			}
		}
		drift += math.Abs(tr.model.SVs[weak].C)
		tr.model.SVs = append(tr.model.SVs[:weak], tr.model.SVs[weak+1:]...)
	}
	return drift
}

// Watermark is the kernel analog of core's watermark: with stored
// scores eps = score_s(x) and accumulated ℓ1 weight drift D since the
// stored model, any x with eps ≥ D is certainly positive and any x
// with eps ≤ −D certainly negative, because |score(x) − score_s(x)| ≤
// Σ|δc_i|·K ≤ ‖δc‖₁ (K ∈ [0,1]).
type Watermark struct {
	drift float64
}

// Reset collapses the band (a reorganization installed a new stored
// model).
func (w *Watermark) Reset() { w.drift = 0 }

// AddDrift folds one training step's ℓ1 weight change in.
func (w *Watermark) AddDrift(d float64) { w.drift += d }

// Band returns [lw, hw] = [−drift, +drift].
func (w *Watermark) Band() (lw, hw float64) { return -w.drift, w.drift }

// Test applies the sufficient condition to a stored score.
func (w *Watermark) Test(eps float64) (label int, certain bool) {
	switch {
	case eps >= w.drift:
		return 1, true
	case eps <= -w.drift:
		return -1, true
	default:
		return 0, false
	}
}

// String renders the model compactly.
func (m *Model) String() string {
	return fmt.Sprintf("KernelModel(%s, %d SVs)", m.K.Name(), len(m.SVs))
}
