package kernel

import (
	"math"
	"math/rand"
	"testing"

	"hazy/internal/core"
	"hazy/internal/vector"
)

// ring labels points by whether they fall inside the unit circle — a
// task no linear classifier can represent, but a Gaussian kernel can.
func ringPoint(r *rand.Rand) (vector.Vector, int) {
	x := r.Float64()*4 - 2
	y := r.Float64()*4 - 2
	label := -1
	if x*x+y*y < 1 {
		label = 1
	}
	return vector.NewDense([]float64{x, y}), label
}

func TestKernelRanges(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ks := []Kernel{Gaussian{Gamma: 0.7}, Laplacian{Gamma: 0.7}}
	for _, k := range ks {
		for trial := 0; trial < 200; trial++ {
			x, _ := ringPoint(r)
			y, _ := ringPoint(r)
			v := k.Eval(x, y)
			if v < 0 || v > 1 {
				t.Fatalf("%s outside [0,1]: %v", k.Name(), v)
			}
			if self := k.Eval(x, x); math.Abs(self-1) > 1e-12 {
				t.Fatalf("%s K(x,x)=%v", k.Name(), self)
			}
			if math.Abs(k.Eval(x, y)-k.Eval(y, x)) > 1e-12 {
				t.Fatalf("%s not symmetric", k.Name())
			}
		}
	}
}

func TestKernelPerceptronLearnsRing(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr := NewTrainer(Gaussian{Gamma: 2}, 1, 0)
	for i := 0; i < 3000; i++ {
		x, y := ringPoint(r)
		tr.Train(x, y)
	}
	correct := 0
	const n = 500
	for i := 0; i < n; i++ {
		x, y := ringPoint(r)
		if tr.Model().Predict(x) == y {
			correct++
		}
	}
	if acc := float64(correct) / n; acc < 0.9 {
		t.Fatalf("kernel accuracy %.3f on circle task", acc)
	}
	if tr.Steps() != 3000 {
		t.Fatalf("steps=%d", tr.Steps())
	}
}

func TestLinearCannotLearnRingButKernelCan(t *testing.T) {
	// Sanity check that the task is genuinely non-linear: the best
	// any hyperplane through this data can do is ~ the negative base
	// rate, which is well below the kernel's accuracy.
	r := rand.New(rand.NewSource(3))
	pos := 0
	const n = 2000
	for i := 0; i < n; i++ {
		_, y := ringPoint(r)
		if y == 1 {
			pos++
		}
	}
	baseRate := float64(n-pos) / n // classify-all-negative accuracy
	if baseRate < 0.7 {
		t.Fatalf("ring task degenerate: base rate %.3f", baseRate)
	}
}

func TestBudgetEviction(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tr := NewTrainer(Gaussian{Gamma: 2}, 1, 50)
	for i := 0; i < 2000; i++ {
		x, y := ringPoint(r)
		tr.Train(x, y)
	}
	if got := len(tr.Model().SVs); got > 50 {
		t.Fatalf("budget exceeded: %d SVs", got)
	}
	// Budgeted model should still beat the base rate.
	correct := 0
	const n = 500
	for i := 0; i < n; i++ {
		x, y := ringPoint(r)
		if tr.Model().Predict(x) == y {
			correct++
		}
	}
	if acc := float64(correct) / n; acc < 0.8 {
		t.Fatalf("budgeted accuracy %.3f", acc)
	}
}

// TestWatermarkSoundness is the App. B.5.2 guarantee: scores cannot
// move by more than the accumulated ℓ1 weight drift, so watermark
// verdicts always match the current model.
func TestWatermarkSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tr := NewTrainer(Gaussian{Gamma: 2}, 1, 0)
	// A fixed evaluation set with stored scores.
	var points []vector.Vector
	for i := 0; i < 150; i++ {
		x, _ := ringPoint(r)
		points = append(points, x)
	}
	for i := 0; i < 300; i++ {
		x, y := ringPoint(r)
		tr.Train(x, y)
	}
	stored := tr.Model().Clone()
	eps := make([]float64, len(points))
	for i, x := range points {
		eps[i] = stored.Score(x)
	}
	var wm Watermark
	wm.Reset()
	for step := 0; step < 400; step++ {
		x, y := ringPoint(r)
		wm.AddDrift(tr.Train(x, y))
		cur := tr.Model()
		for i, p := range points {
			label, certain := wm.Test(eps[i])
			if !certain {
				continue
			}
			if got := cur.Predict(p); got != label {
				t.Fatalf("step %d: watermark promised %d, model says %d (eps=%v drift band=%v..%v)",
					step, label, got, eps[i], -wm.drift, wm.drift)
			}
		}
	}
}

func TestKernelViewMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	var entities []core.Entity
	for i := 0; i < 200; i++ {
		x, _ := ringPoint(r)
		entities = append(entities, core.Entity{ID: int64(i), F: x})
	}
	for _, mode := range []core.Mode{core.Eager, core.Lazy} {
		v := NewView(Gaussian{Gamma: 2}, 1, 0, mode, 1, entities)
		for step := 0; step < 500; step++ {
			x, y := ringPoint(r)
			v.Update(x, y)
			if step%100 != 99 {
				continue
			}
			oracle := v.Model()
			want := map[int64]bool{}
			for _, e := range entities {
				if oracle.Predict(e.F) > 0 {
					want[e.ID] = true
				}
			}
			got := v.Members()
			if len(got) != len(want) {
				t.Fatalf("%v step %d: %d members, oracle %d", mode, step, len(got), len(want))
			}
			for _, id := range got {
				if !want[id] {
					t.Fatalf("%v step %d: spurious member %d", mode, step, id)
				}
			}
			for trial := 0; trial < 30; trial++ {
				id := int64(r.Intn(len(entities)))
				label, err := v.Label(id)
				if err != nil {
					t.Fatal(err)
				}
				if wantL := oracle.Predict(entities[id].F); label != wantL {
					t.Fatalf("%v step %d: label(%d)=%d oracle %d", mode, step, id, label, wantL)
				}
			}
		}
		if v.Updates() != 500 {
			t.Fatalf("updates=%d", v.Updates())
		}
		if v.Reorgs() < 1 {
			t.Fatal("no reorganizations recorded")
		}
	}
}

func TestKernelViewUnknownEntity(t *testing.T) {
	v := NewView(Gaussian{Gamma: 1}, 1, 0, core.Eager, 1, nil)
	if _, err := v.Label(7); err == nil {
		t.Fatal("unknown entity labeled")
	}
	if v.BandTuples() != 0 {
		t.Fatal("empty view has band tuples")
	}
}

func TestModelCloneIndependent(t *testing.T) {
	m := &Model{K: Gaussian{Gamma: 1}, SVs: []SV{{X: vector.NewDense([]float64{1}), C: 2}}}
	c := m.Clone()
	c.SVs[0].C = 9
	if m.SVs[0].C != 2 {
		t.Fatal("clone aliases weights")
	}
	if m.String() == "" {
		t.Fatal("empty string")
	}
}
