package exec

import "sync"

// defaultBatchSize is the row capacity a pipeline batch is filled to
// when the caller asks for no specific amount. 1024 rows keeps a
// three-column view batch (~24 KB of column data) comfortably inside
// L1/L2 while amortizing the per-call virtual dispatch down to noise.
const defaultBatchSize = 1024

// batchSize is the live batch-capacity knob; see SetBatchSize.
var batchSize = defaultBatchSize

// SetBatchSize adjusts how many rows a pipeline batch carries (the
// batch-size knob; hazyd exposes it as -exec-batch). Values below 1
// reset the default. It is meant to be set once at process start —
// changing it while statements stream is safe for correctness (each
// fill re-reads it) but makes per-query behavior inconsistent.
func SetBatchSize(n int) {
	if n < 1 {
		n = defaultBatchSize
	}
	batchSize = n
}

// BatchSize reports the current batch capacity.
func BatchSize() int { return batchSize }

// Vec is one column vector of a Batch: a Kind plus the typed slice
// that kind selects. Exactly one slice is in use per Vec; all vecs of
// a batch hold the same number of rows.
type Vec struct {
	kind   Kind
	ints   []int64
	floats []float64
	strs   []string
}

// Batch is the columnar unit of execution: up to BatchSize rows as
// parallel column vectors. Operators produce into and consume from
// batches instead of one Row at a time, so the per-row costs of the
// classic volcano loop — a virtual call, an interface-boxed slice
// allocation, a timing touch under EXPLAIN ANALYZE — are paid once
// per ~1024 rows.
//
// A batch separates storage from view: `store` owns the column
// slices in the producing operator's schema order, and `view` maps
// visible column positions onto store indexes. Projection is then a
// permutation of `view` — no data moves — while fills and filters
// always run over the full store.
//
// The zero Batch is ready for use; NewBatch draws from a pool so the
// steady state of a streaming query allocates nothing per batch.
type Batch struct {
	store []Vec
	view  []int
	n     int
	// want is the caller's row request for the next fill: operators
	// fill up to min(want, BatchSize) rows, BatchSize when want is 0.
	// Limit is the one setter, which is what keeps leaf reads from
	// overrunning a LIMIT by a whole batch.
	want int
}

// batchPool recycles batches (and, through them, their column
// slices) across fills and statements.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// NewBatch returns an empty pooled batch.
func NewBatch() *Batch { return batchPool.Get().(*Batch) }

// Release resets the batch and returns it to the pool. The caller
// must not touch the batch (or slices obtained from it) afterwards.
func (b *Batch) Release() {
	b.Reset()
	b.want = 0
	batchPool.Put(b)
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return b.n }

// Width returns the number of visible columns.
func (b *Batch) Width() int { return len(b.view) }

// SetWant requests at most n rows from the next fill (0 restores the
// BatchSize default). Operators honor it via Room.
func (b *Batch) SetWant(n int) { b.want = n }

// cap returns the row capacity of the next fill.
func (b *Batch) capRows() int {
	if b.want > 0 && b.want < batchSize {
		return b.want
	}
	return batchSize
}

// Room returns how many more rows the current fill may append.
func (b *Batch) Room() int {
	if r := b.capRows() - b.n; r > 0 {
		return r
	}
	return 0
}

// Reset clears the batch to zero rows and zero columns, keeping the
// allocated column storage for reuse. The want request survives — it
// belongs to the caller, not to the fill.
func (b *Batch) Reset() {
	for i := range b.store {
		v := &b.store[i]
		v.ints, v.floats, v.strs = v.ints[:0], v.floats[:0], v.strs[:0]
	}
	b.store = b.store[:0]
	b.view = b.view[:0]
	b.n = 0
}

// ResetSchema clears the batch and declares its columns: one Vec per
// kind, view mapping the identity. Every producing operator calls
// this before filling.
func (b *Batch) ResetSchema(kinds ...Kind) {
	b.Reset()
	for i, k := range kinds {
		b.addCol(k)
		b.view = append(b.view, i)
	}
}

// ResetLike clears the batch and copies src's visible schema.
func (b *Batch) ResetLike(src *Batch) {
	b.Reset()
	for i := 0; i < src.Width(); i++ {
		b.addCol(src.vec(i).kind)
		b.view = append(b.view, i)
	}
}

// addCol grows the store by one column of kind k, reusing pooled
// slice capacity when the store has been this wide before.
func (b *Batch) addCol(k Kind) {
	if len(b.store) < cap(b.store) {
		b.store = b.store[:len(b.store)+1]
	} else {
		b.store = append(b.store, Vec{})
	}
	b.store[len(b.store)-1].kind = k
}

// vec resolves visible column c to its store vector.
func (b *Batch) vec(c int) *Vec { return &b.store[b.view[c]] }

// Project narrows/reorders the visible columns to idx (indexes into
// the current visible schema). Pure index math; no rows move.
func (b *Batch) Project(idx []int) {
	// In-place when every read position is at or past its write
	// position (true for all monotone select lists); otherwise compose
	// through a scratch copy, since idx may shuffle or repeat columns.
	inPlace := len(idx) <= len(b.view)
	for i, j := range idx {
		if j < i {
			inPlace = false
			break
		}
	}
	if inPlace {
		for i, j := range idx {
			b.view[i] = b.view[j]
		}
		b.view = b.view[:len(idx)]
		return
	}
	old := append([]int(nil), b.view...)
	b.view = b.view[:0]
	for _, j := range idx {
		b.view = append(b.view, old[j])
	}
}

// Truncate drops rows past n.
func (b *Batch) Truncate(n int) {
	if n >= b.n {
		return
	}
	for i := range b.store {
		v := &b.store[i]
		if len(v.ints) > n {
			v.ints = v.ints[:n]
		}
		if len(v.floats) > n {
			v.floats = v.floats[:n]
		}
		if len(v.strs) > n {
			v.strs = v.strs[:n]
		}
	}
	b.n = n
}

// AppendViewRow appends one (id, class, eps) row to a view-schema
// batch — the hot fill path of every view scan.
func (b *Batch) AppendViewRow(id, class int64, eps float64) {
	b.store[viewColID].ints = append(b.store[viewColID].ints, id)
	b.store[viewColClass].ints = append(b.store[viewColClass].ints, class)
	b.store[viewColEps].floats = append(b.store[viewColEps].floats, eps)
	b.n++
}

// AppendRow appends one generic row; the row's kinds must match the
// batch's visible schema.
func (b *Batch) AppendRow(row Row) {
	for c, val := range row {
		v := b.vec(c)
		switch v.kind {
		case KInt:
			v.ints = append(v.ints, val.i)
		case KFloat:
			v.floats = append(v.floats, val.f)
		default:
			v.strs = append(v.strs, val.s)
		}
	}
	b.n++
}

// AppendFrom appends row r of src (same visible schema) to b.
func (b *Batch) AppendFrom(src *Batch, r int) {
	for c := 0; c < len(b.view); c++ {
		dst, sv := b.vec(c), src.vec(c)
		switch dst.kind {
		case KInt:
			dst.ints = append(dst.ints, sv.ints[r])
		case KFloat:
			dst.floats = append(dst.floats, sv.floats[r])
		default:
			dst.strs = append(dst.strs, sv.strs[r])
		}
	}
	b.n++
}

// Extend appends every row of src (same visible schema) to b — the
// bulk path Sort uses to materialize its input. It ignores Room: the
// materialized batch grows past BatchSize by design.
func (b *Batch) Extend(src *Batch) {
	for c := 0; c < len(b.view); c++ {
		dst, sv := b.vec(c), src.vec(c)
		switch dst.kind {
		case KInt:
			dst.ints = append(dst.ints, sv.ints...)
		case KFloat:
			dst.floats = append(dst.floats, sv.floats...)
		default:
			dst.strs = append(dst.strs, sv.strs...)
		}
	}
	b.n += src.n
}

// Value returns cell (r, c) as a Value (by value — no allocation).
func (b *Batch) Value(r, c int) Value {
	v := b.vec(c)
	switch v.kind {
	case KInt:
		return Value{kind: KInt, i: v.ints[r]}
	case KFloat:
		return Value{kind: KFloat, f: v.floats[r]}
	default:
		return Value{kind: KString, s: v.strs[r]}
	}
}

// Int returns integer cell (r, c).
func (b *Batch) Int(r, c int) int64 { return b.vec(c).ints[r] }

// Float returns float cell (r, c).
func (b *Batch) Float(r, c int) float64 { return b.vec(c).floats[r] }

// Num returns cell (r, c) as a float64 for numeric comparison.
func (b *Batch) Num(r, c int) float64 {
	v := b.vec(c)
	if v.kind == KInt {
		return float64(v.ints[r])
	}
	return v.floats[r]
}

// RenderRow stringifies row r into dst (len = Width), the way results
// are wired.
func (b *Batch) RenderRow(r int, dst []string) {
	for c := range dst {
		dst[c] = b.Value(r, c).Render()
	}
}

// RowAt materializes row r as a Row — the row-at-a-time adapter for
// callers that still think in tuples (tests, the naive fallback).
func (b *Batch) RowAt(r int) Row {
	row := make(Row, b.Width())
	for c := range row {
		row[c] = b.Value(r, c)
	}
	return row
}
