package exec

import "fmt"

// EpsMergeScan is the scatter-gather leaf for partition-striped
// views: Open scatters one eps-range cursor per stripe, Next gathers
// the per-stripe streams back in global (eps, id) order. Each stripe
// cursor is already eps-ascending, so the gather is a P-way merge —
// the relational answer to reading a hash-partitioned clustered
// index in key order.
type EpsMergeScan struct {
	Src    ViewSource
	Str    StripedSource
	Lo, Hi float64

	curs  []Cursor
	heads []Row
	live  []bool
}

// NewEpsMergeScan builds the merge leaf over [lo, hi] (use infinities
// for a full scan).
func NewEpsMergeScan(src ViewSource, str StripedSource, lo, hi float64) *EpsMergeScan {
	return &EpsMergeScan{Src: src, Str: str, Lo: lo, Hi: hi}
}

// Open scatters: one cursor per stripe, each primed with its first
// row.
func (m *EpsMergeScan) Open() error {
	n := m.Str.Stripes()
	m.curs = make([]Cursor, 0, n)
	m.heads = make([]Row, n)
	m.live = make([]bool, n)
	for i := 0; i < n; i++ {
		cur, err := m.Str.ScanEpsStripe(i, m.Lo, m.Hi)
		if err != nil {
			m.Close()
			return err
		}
		m.curs = append(m.curs, cur)
		row, ok, err := cur.Next()
		if err != nil {
			m.Close()
			return err
		}
		m.heads[i], m.live[i] = row, ok
	}
	return nil
}

// Next gathers the minimum (eps, id) head across the stripes.
func (m *EpsMergeScan) Next() (Row, bool, error) {
	best := -1
	for i := range m.curs {
		if !m.live[i] {
			continue
		}
		if best < 0 || rowEpsLess(m.heads[i], m.heads[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil, false, nil
	}
	out := m.heads[best]
	row, ok, err := m.curs[best].Next()
	if err != nil {
		return nil, false, err
	}
	m.heads[best], m.live[best] = row, ok
	return out, true, nil
}

// rowEpsLess orders view rows by (eps, id) — the clustered key.
func rowEpsLess(a, b Row) bool {
	if a[viewColEps].f != b[viewColEps].f {
		return a[viewColEps].f < b[viewColEps].f
	}
	return a[viewColID].i < b[viewColID].i
}

// Close releases every stripe cursor.
func (m *EpsMergeScan) Close() error {
	for _, c := range m.curs {
		if c != nil {
			c.Close()
		}
	}
	m.curs = nil
	return nil
}

// Describe renders the node.
func (m *EpsMergeScan) Describe() (string, Operator) {
	return fmt.Sprintf("EpsMergeScan(%s, %s, %s, stripes=%d)",
		m.Src.Name(), m.Src.Origin(), renderEpsRange(m.Lo, m.Hi), m.Str.Stripes()), nil
}
