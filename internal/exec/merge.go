package exec

import (
	"fmt"
	"sync"
)

// mergeState is the reusable scatter-gather scratch of an
// EpsMergeScan: one cursor, one buffered batch, and one consume
// position per stripe. Pooled so repeated statements over striped
// views reallocate neither the per-stripe slices nor the stripe
// batches.
type mergeState struct {
	curs []Cursor
	bufs []*Batch
	pos  []int
}

var mergePool = sync.Pool{New: func() any { return new(mergeState) }}

// grow sizes the state for n stripes, reusing pooled capacity.
func (st *mergeState) grow(n int) {
	if cap(st.curs) < n {
		st.curs = make([]Cursor, n)
		st.pos = make([]int, n)
	}
	st.curs, st.pos = st.curs[:n], st.pos[:n]
	for len(st.bufs) < n {
		st.bufs = append(st.bufs, NewBatch())
	}
	for i := range st.curs {
		st.curs[i], st.pos[i] = nil, 0
	}
}

// release closes any open cursors and returns the state (and its
// stripe batches) to the pool.
func (st *mergeState) release() {
	for i, c := range st.curs {
		if c != nil {
			c.Close()
			st.curs[i] = nil
		}
	}
	mergePool.Put(st)
}

// EpsMergeScan is the scatter-gather leaf for partition-striped
// views: Open scatters one eps-range cursor per stripe, NextBatch
// gathers the per-stripe streams back in global (eps, id) order. Each
// stripe cursor is already eps-ascending and buffered a batch at a
// time, so the gather is a P-way merge over batch heads — the
// relational answer to reading a hash-partitioned clustered index in
// key order.
type EpsMergeScan struct {
	Src    ViewSource
	Str    StripedSource
	Lo, Hi float64

	st *mergeState
}

// NewEpsMergeScan builds the merge leaf over [lo, hi] (use infinities
// for a full scan).
func NewEpsMergeScan(src ViewSource, str StripedSource, lo, hi float64) *EpsMergeScan {
	return &EpsMergeScan{Src: src, Str: str, Lo: lo, Hi: hi}
}

// Open scatters: one cursor per stripe, each primed with its first
// batch.
func (m *EpsMergeScan) Open() error {
	n := m.Str.Stripes()
	m.st = mergePool.Get().(*mergeState)
	m.st.grow(n)
	for i := 0; i < n; i++ {
		cur, err := m.Str.ScanEpsStripe(i, m.Lo, m.Hi)
		if err != nil {
			m.Close()
			return err
		}
		m.st.curs[i] = cur
		if err := m.fill(i); err != nil {
			m.Close()
			return err
		}
	}
	return nil
}

// fill refills stripe i's buffer with its next batch.
func (m *EpsMergeScan) fill(i int) error {
	buf := m.st.bufs[i]
	buf.ResetSchema(viewKinds...)
	m.st.pos[i] = 0
	return m.st.curs[i].NextBatch(buf)
}

// NextBatch gathers the minimum (eps, id) heads across the stripe
// buffers until dst is full or every stripe is exhausted.
func (m *EpsMergeScan) NextBatch(dst *Batch) error {
	dst.ResetSchema(viewKinds...)
	st := m.st
	if st == nil {
		return nil
	}
	for dst.Room() > 0 {
		best := -1
		var bestEps float64
		var bestID int64
		for i, buf := range st.bufs[:len(st.curs)] {
			p := st.pos[i]
			if p >= buf.Len() {
				continue
			}
			eps, id := buf.Float(p, viewColEps), buf.Int(p, viewColID)
			if best < 0 || eps < bestEps || (eps == bestEps && id < bestID) {
				best, bestEps, bestID = i, eps, id
			}
		}
		if best < 0 {
			return nil
		}
		buf, p := st.bufs[best], st.pos[best]
		dst.AppendViewRow(bestID, buf.Int(p, viewColClass), bestEps)
		st.pos[best]++
		if st.pos[best] >= buf.Len() {
			if err := m.fill(best); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close releases every stripe cursor and returns the scatter-gather
// scratch to the pool.
func (m *EpsMergeScan) Close() error {
	if m.st != nil {
		m.st.release()
		m.st = nil
	}
	return nil
}

// Describe renders the node.
func (m *EpsMergeScan) Describe() (string, Operator) {
	return fmt.Sprintf("EpsMergeScan(%s, %s, %s, stripes=%d)",
		m.Src.Name(), m.Src.Origin(), renderEpsRange(m.Lo, m.Hi), m.Str.Stripes()), nil
}
