package exec

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"hazy/internal/sqlmini"
)

// fakeEntry is one row of the fake view.
type fakeEntry struct {
	id    int64
	eps   float64
	class int
}

// fakeView is an in-memory ViewSource, eps-ascending when clustered.
type fakeView struct {
	name      string
	origin    string
	clustered bool
	entries   []fakeEntry // eps-ascending
}

func (f *fakeView) Name() string    { return f.name }
func (f *fakeView) Origin() string  { return f.origin }
func (f *fakeView) Clustered() bool { return f.clustered }

func (f *fakeView) Label(id int64) (int, error) {
	for _, e := range f.entries {
		if e.id == id {
			return e.class, nil
		}
	}
	return 0, fmt.Errorf("core: no entity %d", id)
}

func (f *fakeView) Eps(id int64) (float64, error) {
	for _, e := range f.entries {
		if e.id == id {
			return e.eps, nil
		}
	}
	return 0, fmt.Errorf("core: no entity %d", id)
}

func (f *fakeView) Members() ([]int64, error) {
	var out []int64
	for _, e := range f.entries {
		if e.class > 0 {
			out = append(out, e.id)
		}
	}
	return out, nil
}

func (f *fakeView) CountMembers() (int, error) {
	ids, _ := f.Members()
	return len(ids), nil
}

func (f *fakeView) MostUncertain(k int) ([]int64, error) {
	if !f.clustered {
		return nil, fmt.Errorf("core: MostUncertain requires the Hazy strategy")
	}
	idx := make([]int, len(f.entries))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return math.Abs(f.entries[idx[a]].eps) < math.Abs(f.entries[idx[b]].eps)
	})
	var out []int64
	for _, i := range idx {
		if len(out) == k {
			break
		}
		out = append(out, f.entries[i].id)
	}
	return out, nil
}

type fakeCursor struct {
	rows []Row
	i    int
}

func (c *fakeCursor) NextBatch(dst *Batch) error {
	for c.i < len(c.rows) && dst.Room() > 0 {
		dst.AppendRow(c.rows[c.i])
		c.i++
	}
	return nil
}

func (c *fakeCursor) Close() {}

func (f *fakeView) Scan() (Cursor, error) {
	var rows []Row
	for _, e := range f.entries {
		rows = append(rows, Row{IntVal(e.id), IntVal(int64(e.class)), FloatVal(e.eps)})
	}
	return &fakeCursor{rows: rows}, nil
}

func (f *fakeView) ScanEps(lo, hi float64) (Cursor, error) {
	if !f.clustered {
		return nil, fmt.Errorf("core: eps requires the Hazy strategy")
	}
	var rows []Row
	for _, e := range f.entries {
		if e.eps >= lo && e.eps <= hi {
			rows = append(rows, Row{IntVal(e.id), IntVal(int64(e.class)), FloatVal(e.eps)})
		}
	}
	return &fakeCursor{rows: rows}, nil
}

// fakeTable is an in-memory TableSource.
type fakeTable struct {
	name string
	cols []Column
	rows []Row
}

func (f *fakeTable) Name() string      { return f.name }
func (f *fakeTable) Columns() []Column { return f.cols }

func (f *fakeTable) Get(id int64) (Row, bool, error) {
	for _, r := range f.rows {
		if r[0].i == id {
			return r, true, nil
		}
	}
	return nil, false, nil
}

func (f *fakeTable) Scan() (Cursor, error) {
	return &fakeCursor{rows: f.rows}, nil
}

type fakeCatalog struct {
	views   map[string]*fakeView
	tables  map[string]*fakeTable
	striped *fakeStripedView // optional striped source (merge_test.go)
}

func (c *fakeCatalog) View(name string) (ViewSource, bool, error) {
	if c.striped != nil && c.striped.name == name {
		return c.striped, true, nil
	}
	v, ok := c.views[name]
	if !ok {
		return nil, false, nil
	}
	return v, true, nil
}

func (c *fakeCatalog) Table(name string) (TableSource, bool, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, false, nil
	}
	return t, true, nil
}

func testCatalog() *fakeCatalog {
	return &fakeCatalog{
		views: map[string]*fakeView{
			"v": {name: "v", origin: "snapshot", clustered: true, entries: []fakeEntry{
				{id: 4, eps: -0.9, class: -1},
				{id: 1, eps: -0.3, class: -1},
				{id: 5, eps: -0.05, class: -1},
				{id: 2, eps: 0.1, class: 1},
				{id: 3, eps: 0.8, class: 1},
			}},
			"naive": {name: "naive", origin: "live", clustered: false, entries: []fakeEntry{
				{id: 1, class: 1}, {id: 2, class: -1},
			}},
		},
		tables: map[string]*fakeTable{
			"t": {name: "t", cols: []Column{{Name: "id", Kind: KInt}, {Name: "title", Kind: KString}}, rows: []Row{
				{IntVal(2), StrVal("beta")},
				{IntVal(1), StrVal("alpha")},
				{IntVal(3), StrVal("gamma")},
			}},
		},
	}
}

// drain runs an opened plan to completion, rendering every batch.
func drain(t *testing.T, src string, root Operator) [][]string {
	t.Helper()
	b := NewBatch()
	defer b.Release()
	var out [][]string
	for {
		if err := root.NextBatch(b); err != nil {
			t.Fatalf("%s: next: %v", src, err)
		}
		if b.Len() == 0 {
			return out
		}
		for r := 0; r < b.Len(); r++ {
			rendered := make([]string, b.Width())
			b.RenderRow(r, rendered)
			out = append(out, rendered)
		}
	}
}

// run plans and executes one statement, returning rendered rows.
func run(t *testing.T, src string) (*Plan, [][]string) {
	t.Helper()
	st, err := sqlmini.Parse(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	sel, ok := st.(sqlmini.Select)
	if !ok {
		sel = st.(sqlmini.Explain).Sel
	}
	plan, err := Build(sel, testCatalog())
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	if err := plan.Root.Open(); err != nil {
		t.Fatalf("%s: open: %v", src, err)
	}
	defer plan.Root.Close()
	return plan, drain(t, src, plan.Root)
}

func TestPlanShapesAndResults(t *testing.T) {
	cases := []struct {
		sql  string
		plan string // newline-joined Explain
		rows [][]string
	}{
		{
			"SELECT class FROM v WHERE id = 2",
			"Project(class)\n  PointRead(v, snapshot, id=2)",
			[][]string{{"1"}},
		},
		{
			"SELECT id FROM v WHERE class = 1",
			"Project(id)\n  MembersScan(v, snapshot)",
			[][]string{{"2"}, {"3"}},
		},
		{
			"SELECT COUNT(*) FROM v WHERE class = 1",
			"MembersCount(v, snapshot)",
			[][]string{{"2"}},
		},
		{
			"SELECT id, eps FROM v WHERE eps >= -0.3 AND eps <= 0.2",
			"Project(id, eps)\n  EpsRange(v, snapshot, -0.3 <= eps <= 0.2)",
			[][]string{{"1", "-0.3"}, {"5", "-0.05"}, {"2", "0.1"}},
		},
		{
			"SELECT id FROM v WHERE eps > 0 AND class = 1",
			"Project(id)\n  Filter(class = 1)\n    EpsRange(v, snapshot, eps >= 5e-324)",
			[][]string{{"2"}, {"3"}},
		},
		{
			"SELECT id, class FROM v",
			"Project(id, class)\n  Sort(id)\n    FullScan(v, snapshot)",
			[][]string{{"1", "-1"}, {"2", "1"}, {"3", "1"}, {"4", "-1"}, {"5", "-1"}},
		},
		{
			"SELECT * FROM v WHERE class = -1",
			"Project(id, class)\n  Sort(id)\n    Filter(class = -1)\n      FullScan(v, snapshot)",
			[][]string{{"1", "-1"}, {"4", "-1"}, {"5", "-1"}},
		},
		{
			"SELECT id FROM v ORDER BY ABS(eps) LIMIT 3",
			"Project(id)\n  Uncertain(v, snapshot, k=3)",
			[][]string{{"5"}, {"2"}, {"1"}},
		},
		{
			"SELECT id, eps FROM v ORDER BY eps DESC LIMIT 2",
			"Project(id, eps)\n  Limit(2)\n    Sort(eps desc)\n      FullScan(v, snapshot)",
			[][]string{{"3", "0.8"}, {"2", "0.1"}},
		},
		{
			"SELECT id FROM v ORDER BY id DESC LIMIT 2",
			"Project(id)\n  Limit(2)\n    Sort(id desc)\n      FullScan(v, snapshot)",
			[][]string{{"5"}, {"4"}},
		},
		{
			"SELECT COUNT(*) FROM v WHERE eps >= 0",
			"Count\n  EpsRange(v, snapshot, eps >= 0)",
			[][]string{{"2"}},
		},
		{
			"SELECT id FROM naive WHERE class = 1",
			"Project(id)\n  MembersScan(naive, live)",
			[][]string{{"1"}},
		},
		{
			// LIMIT applies over the aggregate's single result row.
			"SELECT COUNT(*) FROM v WHERE class = 1 LIMIT 0",
			"Limit(0)\n  MembersCount(v, snapshot)",
			nil,
		},
		{
			"SELECT COUNT(*) FROM t LIMIT 1",
			"Limit(1)\n  Count\n    TableScan(t)",
			[][]string{{"3"}},
		},
		{
			// An inverted eps interval is an empty range, not a panic.
			"SELECT id FROM v WHERE eps >= 1.0 AND eps <= -1.0",
			"Project(id)\n  EpsRange(v, snapshot, 1 <= eps <= -1)",
			nil,
		},
		{
			"SELECT title FROM t WHERE id = 2",
			"Project(title)\n  TableGet(t, id=2)",
			[][]string{{"beta"}},
		},
		{
			"SELECT * FROM t",
			"Project(id, title)\n  TableScan(t)",
			[][]string{{"2", "beta"}, {"1", "alpha"}, {"3", "gamma"}},
		},
		{
			"SELECT COUNT(*) FROM t WHERE id >= 2",
			"Count\n  Filter(id >= 2)\n    TableScan(t)",
			[][]string{{"2"}},
		},
		{
			"SELECT title FROM t ORDER BY title DESC LIMIT 1",
			"Project(title)\n  Limit(1)\n    Sort(title desc)\n      TableScan(t)",
			[][]string{{"gamma"}},
		},
		{
			"SELECT id FROM t WHERE title = 'alpha'",
			"Project(id)\n  Filter(title = 'alpha')\n    TableScan(t)",
			[][]string{{"1"}},
		},
		{
			"SELECT id FROM t WHERE id = 99",
			"Project(id)\n  TableGet(t, id=99)",
			nil,
		},
	}
	for _, c := range cases {
		plan, rows := run(t, c.sql)
		if got := strings.Join(plan.Explain(), "\n"); got != c.plan {
			t.Errorf("%s:\nplan:\n%s\nwant:\n%s", c.sql, got, c.plan)
		}
		if !reflect.DeepEqual(rows, c.rows) {
			t.Errorf("%s: rows %v, want %v", c.sql, rows, c.rows)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	cat := testCatalog()
	for _, sql := range []string{
		"SELECT eps FROM naive",                  // eps needs clustering
		"SELECT id FROM naive WHERE eps > 0",     // same, via WHERE
		"SELECT id FROM naive ORDER BY ABS(eps)", // same, via ORDER BY
		"SELECT nope FROM v",                     // unknown column
		"SELECT id FROM v WHERE nope = 1",        // unknown WHERE column
		"SELECT id FROM v ORDER BY nope",         // unknown ORDER BY column
		"SELECT id FROM v WHERE class = 2",       // class must be ±1
		"SELECT COUNT(*) FROM v ORDER BY id",     // ORDER BY under COUNT
		"SELECT id FROM missing",                 // no such relation
		"SELECT eps FROM t",                      // tables have no eps
		"SELECT id FROM t ORDER BY ABS(title)",   // ABS of TEXT
	} {
		st, err := sqlmini.Parse(sql)
		if err != nil {
			t.Fatalf("%s: parse: %v", sql, err)
		}
		if _, err := Build(st.(sqlmini.Select), cat); err == nil {
			t.Errorf("planned: %s", sql)
		}
	}
}

// TestPointReadMissingEntityErrors pins the historical asymmetry: a
// view point read of a missing id is an error, a table get is empty.
func TestPointReadMissingEntityErrors(t *testing.T) {
	st, _ := sqlmini.Parse("SELECT class FROM v WHERE id = 99")
	plan, err := Build(st.(sqlmini.Select), testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Root.Open(); err != nil {
		t.Fatal(err)
	}
	defer plan.Root.Close()
	b := NewBatch()
	defer b.Release()
	if err := plan.Root.NextBatch(b); err == nil {
		t.Fatal("missing view entity did not error")
	}
}
