// Package exec is the streaming query executor behind SELECT and
// EXPLAIN: a vectorized volcano pipeline (Open / NextBatch / Close
// over columnar batches) plus a small planner that lowers a parsed
// sqlmini.Select onto the physical read surfaces the catalog offers.
//
// The planner is where the paper's read taxonomy (§3.2–3.4) becomes
// plan choice. Classification-view predicates are pushed down to the
// structure that answers them without a rescan:
//
//	WHERE id = k             → PointRead        (Single Entity)
//	WHERE class = 1          → MembersScan      (All Members fast path)
//	COUNT(*) ... class = 1   → MembersCount     (no id materialization)
//	WHERE eps BETWEEN a,b    → EpsRange         (clustered index scan)
//	ORDER BY ABS(eps) LIMIT k→ Uncertain        (walk out from eps = 0)
//	otherwise                → FullScan         (+ implicit Sort(id))
//
// Everything the pushdown cannot consume stays behind as a Filter;
// ORDER BY, LIMIT, COUNT(*), and projection are ordinary operators
// above the scan. Rows stream through the pipeline a Batch (~1024
// rows as parallel column slices) at a time, so the per-row costs of
// the classic one-tuple Next() — a virtual call, a boxed row
// allocation, a timing touch under EXPLAIN ANALYZE — are paid per
// batch instead. Only Sort materializes, because ordering is
// inherently blocking; the row-at-a-time surface survives solely as
// an adapter at the outermost cursor boundary (the root package's
// Rows), so the SQL dialect and wire protocol are byte-identical to
// the row-at-a-time executor's.
//
// The package is pure plumbing over two narrow interfaces, ViewSource
// and TableSource, implemented by the root package: an engined view
// binds a published snapshot (immutable, lock-free), an unmanaged
// view binds the live structure under the caller's serialization, and
// tables bind the relational heap. exec itself knows nothing about
// engines, catalogs, or storage.
package exec

import "strconv"

// Kind types a Value.
type Kind uint8

// Value kinds.
const (
	KInt Kind = iota
	KFloat
	KString
)

// Value is one typed SQL cell.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// IntVal makes an integer cell.
func IntVal(v int64) Value { return Value{kind: KInt, i: v} }

// FloatVal makes a float cell.
func FloatVal(v float64) Value { return Value{kind: KFloat, f: v} }

// StrVal makes a string cell.
func StrVal(v string) Value { return Value{kind: KString, s: v} }

// Render stringifies the cell the way results are wired: integers
// without decimals, floats in their shortest form, strings verbatim.
func (v Value) Render() string {
	switch v.kind {
	case KInt:
		return strconv.FormatInt(v.i, 10)
	case KFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return v.s
	}
}

// num returns the cell as a float64 for numeric comparison.
func (v Value) num() float64 {
	if v.kind == KInt {
		return float64(v.i)
	}
	return v.f
}

// Row is one tuple flowing through the pipeline.
type Row []Value

// Column is a named, typed output column.
type Column struct {
	Name string
	Kind Kind
}

// Operator is one node of a streaming plan — the volcano contract,
// vectorized: Open prepares the node (and its children); NextBatch
// resets dst to the node's output schema and fills it with up to
// dst.Room() rows (dst.Len() == 0 reports end of stream, and repeated
// calls after that stay empty); Close releases resources and is safe
// to call after a failed Open or mid-stream. Describe renders the
// node for EXPLAIN and names its child (nil for leaves) so a plan
// prints without being executed.
//
// A non-empty batch mid-stream is never zero rows: operators that can
// come up short on one pull (Filter) keep pulling their child until
// they have at least one row or the child is exhausted. The only
// want-setter is Limit, which caps its child's fills at the rows it
// still needs so leaf reads do not overrun a LIMIT by a whole batch.
type Operator interface {
	Open() error
	NextBatch(dst *Batch) error
	Close() error
	Describe() (string, Operator)
}

// Cursor streams source rows into a leaf operator, a batch at a
// time: NextBatch appends up to dst.Room() rows to dst (appending
// none reports end of stream — sources never return a short-but-empty
// fill mid-stream). The leaf operator owns dst's schema; the cursor
// only appends. Close is idempotent and releases whatever the source
// holds (page pins for on-disk scans; nothing for snapshots).
type Cursor interface {
	NextBatch(dst *Batch) error
	Close()
}

// ViewSource is one classification view's read surface, bound once at
// plan time: for an engined view the root package binds the engine's
// published snapshot, so every operator of the plan reads one
// immutable state without locks; for an unmanaged view it binds the
// live structure under the caller's serialization (the server's
// statement mutex, or single-threaded embedded use).
//
// View rows are (id BIGINT, class BIGINT, eps DOUBLE), in that order.
// Eps — the signed distance to the decision boundary under the stored
// model — is only real on clustered (Hazy-strategy) layouts;
// Clustered gates every eps-touching plan.
type ViewSource interface {
	Name() string
	// Origin says where rows come from ("snapshot" or "live") so
	// EXPLAIN shows which state a plan reads.
	Origin() string
	Clustered() bool
	Label(id int64) (int, error)
	Eps(id int64) (float64, error)
	Members() ([]int64, error)
	CountMembers() (int, error)
	MostUncertain(k int) ([]int64, error)
	// Scan streams every row — eps-ascending on clustered layouts,
	// unspecified order otherwise.
	Scan() (Cursor, error)
	// ScanEps streams the rows with eps ∈ [lo, hi], eps-ascending.
	// Clustered sources only.
	ScanEps(lo, hi float64) (Cursor, error)
}

// StripedSource is the optional scatter half of a partition-striped
// view's read surface: the stripe count plus a per-stripe eps-range
// cursor, each stripe eps-ascending on its own. The planner lowers
// eps-range and full scans over such a source onto the EpsMergeScan
// operator, which opens one cursor per stripe and gathers the rows
// back in global (eps, id) order — the scatter-gather read made
// visible at the plan layer. Engined views never expose it: their
// published snapshots are already merged.
type StripedSource interface {
	Stripes() int
	ScanEpsStripe(i int, lo, hi float64) (Cursor, error)
}

// TableSource is a relational table's read surface: two columns, an
// id point read through the primary-key index, and a heap-order scan.
type TableSource interface {
	Name() string
	Columns() []Column
	// Get answers WHERE id = k; ok=false when the key is absent.
	Get(id int64) (Row, bool, error)
	Scan() (Cursor, error)
}

// Catalog resolves FROM names at plan time. Views shadow tables, as
// they always have. ok=false means "no such name" (the planner tries
// the other namespace, then errors); a non-nil error aborts planning.
type Catalog interface {
	View(name string) (ViewSource, bool, error)
	Table(name string) (TableSource, bool, error)
}

// viewColumns is the fixed schema every view source streams.
var viewColumns = []Column{
	{Name: "id", Kind: KInt},
	{Name: "class", Kind: KInt},
	{Name: "eps", Kind: KFloat},
}

// viewKinds is viewColumns as a batch schema.
var viewKinds = []Kind{KInt, KInt, KFloat}

// columnKinds extracts a batch schema from a column list.
func columnKinds(cols []Column) []Kind {
	kinds := make([]Kind, len(cols))
	for i, c := range cols {
		kinds[i] = c.Kind
	}
	return kinds
}

// Positions of the view columns in a view Row.
const (
	viewColID = iota
	viewColClass
	viewColEps
)
