package exec

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Pred is one compiled conjunct: child column `col` compared against a
// literal. The comparison semantics mirror the dialect's historical
// behaviour: numeric columns never match string literals; string
// columns compare rendered text under = and <>, and parse as integers
// for the ordered operators (unparsable rows simply don't match).
type Pred struct {
	Col int
	Op  string // = <> < > <= >=
	Lit Value
	// name is the column's name, kept for EXPLAIN.
	name string
}

// NewPred builds a predicate over child column col (named name).
func NewPred(col int, name, op string, lit Value) Pred {
	return Pred{Col: col, Op: op, Lit: lit, name: name}
}

func cmpFloat(a float64, op string, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "<>":
		return a != b
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	case ">=":
		return a >= b
	}
	return false
}

// match evaluates the predicate against one cell.
func (p Pred) match(v Value) bool {
	if v.kind == KString {
		switch p.Op {
		case "=":
			return v.s == p.Lit.Render()
		case "<>":
			return v.s != p.Lit.Render()
		default:
			n, err := strconv.ParseInt(v.s, 10, 64)
			if err != nil || p.Lit.kind == KString {
				return false
			}
			return cmpFloat(float64(n), p.Op, p.Lit.num())
		}
	}
	if p.Lit.kind == KString {
		return false
	}
	return cmpFloat(v.num(), p.Op, p.Lit.num())
}

func (p Pred) describe() string {
	lit := p.Lit.Render()
	if p.Lit.kind == KString {
		lit = "'" + lit + "'"
	}
	return fmt.Sprintf("%s %s %s", p.name, p.Op, lit)
}

// Filter streams the child rows that satisfy every predicate. It
// pulls whole child batches into an internal buffer and copies the
// surviving rows out, resuming mid-buffer across calls, so it honors
// the caller's row request exactly (a LIMIT above never makes it
// discard matched rows).
type Filter struct {
	Child Operator
	Preds []Pred

	buf *Batch // current child batch (pooled)
	pos int    // next unexamined row of buf
	eof bool
}

// Open opens the child.
func (f *Filter) Open() error {
	f.buf, f.pos, f.eof = nil, 0, false
	return f.Child.Open()
}

// NextBatch copies matching child rows into dst until dst is full or
// the child is exhausted.
func (f *Filter) NextBatch(dst *Batch) error {
	if f.buf == nil {
		f.buf = NewBatch()
		if err := f.Child.NextBatch(f.buf); err != nil {
			return err
		}
		f.pos = 0
	}
	dst.ResetLike(f.buf)
	for {
		if f.eof || dst.Room() == 0 {
			return nil
		}
		if f.pos >= f.buf.Len() {
			if f.buf.Len() == 0 && f.pos == 0 {
				f.eof = true // empty first fill
				return nil
			}
			if err := f.Child.NextBatch(f.buf); err != nil {
				return err
			}
			f.pos = 0
			if f.buf.Len() == 0 {
				f.eof = true
				return nil
			}
		}
		for ; f.pos < f.buf.Len() && dst.Room() > 0; f.pos++ {
			pass := true
			for _, p := range f.Preds {
				if !p.match(f.buf.Value(f.pos, p.Col)) {
					pass = false
					break
				}
			}
			if pass {
				dst.AppendFrom(f.buf, f.pos)
			}
		}
	}
}

// Close releases the buffer and closes the child.
func (f *Filter) Close() error {
	if f.buf != nil {
		f.buf.Release()
		f.buf = nil
	}
	return f.Child.Close()
}

// Describe renders the node.
func (f *Filter) Describe() (string, Operator) {
	parts := make([]string, len(f.Preds))
	for i, p := range f.Preds {
		parts[i] = p.describe()
	}
	return fmt.Sprintf("Filter(%s)", strings.Join(parts, " AND ")), f.Child
}

// Project reorders the child batch's columns onto the select list — a
// permutation of the batch's column view; no row data moves.
type Project struct {
	Child Operator
	Idx   []int
	Names []string
}

// Open opens the child.
func (p *Project) Open() error { return p.Child.Open() }

// NextBatch projects one child batch. Empty (end-of-stream) batches
// pass through unprojected — a child at EOF may have dropped its
// schema, and no caller reads columns of an empty batch.
func (p *Project) NextBatch(dst *Batch) error {
	if err := p.Child.NextBatch(dst); err != nil {
		return err
	}
	if dst.Len() > 0 {
		dst.Project(p.Idx)
	}
	return nil
}

// Close closes the child.
func (p *Project) Close() error { return p.Child.Close() }

// Describe renders the node.
func (p *Project) Describe() (string, Operator) {
	return fmt.Sprintf("Project(%s)", strings.Join(p.Names, ", ")), p.Child
}

// Sort materializes the child and emits its rows ordered by one key
// column — the only blocking operator in the pipeline. The child's
// batches accumulate into one big columnar buffer and a permutation
// over it is sorted (stably, so ties keep the child's deterministic
// order); emission copies rows out through the permutation a batch at
// a time.
type Sort struct {
	Child Operator
	Key   int
	Abs   bool
	Desc  bool
	// name is the key column's name, for EXPLAIN.
	name string

	all  *Batch // materialized child rows (pooled; grows past BatchSize)
	perm []int
	i    int
}

// NewSort builds a sort on child column key (named name).
func NewSort(child Operator, key int, name string, abs, desc bool) *Sort {
	return &Sort{Child: child, Key: key, Abs: abs, Desc: desc, name: name}
}

// Open drains the child and sorts.
func (s *Sort) Open() error {
	if err := s.Child.Open(); err != nil {
		return err
	}
	s.i = 0
	s.all = NewBatch()
	in := NewBatch()
	defer in.Release()
	first := true
	for {
		if err := s.Child.NextBatch(in); err != nil {
			return err
		}
		if first {
			s.all.ResetLike(in)
			first = false
		}
		if in.Len() == 0 {
			break
		}
		s.all.Extend(in)
	}
	s.perm = make([]int, s.all.Len())
	for i := range s.perm {
		s.perm[i] = i
	}
	all, key := s.all, s.Key
	num := func(r int) float64 {
		v := all.Num(r, key)
		if s.Abs {
			v = math.Abs(v)
		}
		return v
	}
	str := all.Len() > 0 && all.Value(0, key).kind == KString
	sort.SliceStable(s.perm, func(a, b int) bool {
		ra, rb := s.perm[a], s.perm[b]
		var less, eq bool
		if str {
			va, vb := all.Value(ra, key).s, all.Value(rb, key).s
			less, eq = va < vb, va == vb
		} else {
			va, vb := num(ra), num(rb)
			less, eq = va < vb, all.Num(ra, key) == all.Num(rb, key)
		}
		if s.Desc {
			return !less && !eq
		}
		return less
	})
	return nil
}

// NextBatch emits the next run of sorted rows.
func (s *Sort) NextBatch(dst *Batch) error {
	dst.ResetLike(s.all)
	for s.i < len(s.perm) && dst.Room() > 0 {
		dst.AppendFrom(s.all, s.perm[s.i])
		s.i++
	}
	return nil
}

// Close releases the materialized rows and closes the child.
func (s *Sort) Close() error {
	if s.all != nil {
		s.all.Release()
		s.all = nil
	}
	s.perm = nil
	return s.Child.Close()
}

// Describe renders the node.
func (s *Sort) Describe() (string, Operator) {
	key := s.name
	if s.Abs {
		key = "abs(" + key + ")"
	}
	if s.Desc {
		key += " desc"
	}
	return fmt.Sprintf("Sort(%s)", key), s.Child
}

// Limit stops the stream after N rows, letting the whole pipeline
// below it quit early — it is the one operator that sets the batch's
// want, so its child fills exactly the rows still needed.
type Limit struct {
	Child Operator
	N     int
	seen  int
}

// Open opens the child.
func (l *Limit) Open() error {
	l.seen = 0
	return l.Child.Open()
}

// NextBatch forwards up to N rows total.
func (l *Limit) NextBatch(dst *Batch) error {
	if l.seen >= l.N {
		dst.Reset()
		return nil
	}
	outer := dst.want
	dst.SetWant(l.N - l.seen)
	err := l.Child.NextBatch(dst)
	dst.SetWant(outer)
	if err != nil {
		return err
	}
	dst.Truncate(l.N - l.seen) // defensive; children honor want
	l.seen += dst.Len()
	return nil
}

// Close closes the child.
func (l *Limit) Close() error { return l.Child.Close() }

// Describe renders the node.
func (l *Limit) Describe() (string, Operator) {
	return fmt.Sprintf("Limit(%d)", l.N), l.Child
}

// Count drains the child and emits one row: the row count.
type Count struct {
	Child Operator
	done  bool
}

// Open opens the child.
func (c *Count) Open() error {
	c.done = false
	return c.Child.Open()
}

// NextBatch counts the child's stream.
func (c *Count) NextBatch(dst *Batch) error {
	if c.done {
		dst.Reset()
		return nil
	}
	c.done = true
	n := int64(0)
	in := NewBatch()
	defer in.Release()
	for {
		if err := c.Child.NextBatch(in); err != nil {
			return err
		}
		if in.Len() == 0 {
			break
		}
		n += int64(in.Len())
	}
	dst.ResetSchema(KInt)
	dst.AppendRow(Row{IntVal(n)})
	return nil
}

// Close closes the child.
func (c *Count) Close() error { return c.Child.Close() }

// Describe renders the node.
func (c *Count) Describe() (string, Operator) { return "Count", c.Child }
