package exec

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Pred is one compiled conjunct: child column `col` compared against a
// literal. The comparison semantics mirror the dialect's historical
// behaviour: numeric columns never match string literals; string
// columns compare rendered text under = and <>, and parse as integers
// for the ordered operators (unparsable rows simply don't match).
type Pred struct {
	Col int
	Op  string // = <> < > <= >=
	Lit Value
	// name is the column's name, kept for EXPLAIN.
	name string
}

// NewPred builds a predicate over child column col (named name).
func NewPred(col int, name, op string, lit Value) Pred {
	return Pred{Col: col, Op: op, Lit: lit, name: name}
}

func cmpFloat(a float64, op string, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "<>":
		return a != b
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	case ">=":
		return a >= b
	}
	return false
}

// match evaluates the predicate against one row.
func (p Pred) match(row Row) bool {
	v := row[p.Col]
	if v.kind == KString {
		switch p.Op {
		case "=":
			return v.s == p.Lit.Render()
		case "<>":
			return v.s != p.Lit.Render()
		default:
			n, err := strconv.ParseInt(v.s, 10, 64)
			if err != nil || p.Lit.kind == KString {
				return false
			}
			return cmpFloat(float64(n), p.Op, p.Lit.num())
		}
	}
	if p.Lit.kind == KString {
		return false
	}
	return cmpFloat(v.num(), p.Op, p.Lit.num())
}

func (p Pred) describe() string {
	lit := p.Lit.Render()
	if p.Lit.kind == KString {
		lit = "'" + lit + "'"
	}
	return fmt.Sprintf("%s %s %s", p.name, p.Op, lit)
}

// Filter streams the child rows that satisfy every predicate.
type Filter struct {
	Child Operator
	Preds []Pred
}

// Open opens the child.
func (f *Filter) Open() error { return f.Child.Open() }

// Next pulls child rows until one passes.
func (f *Filter) Next() (Row, bool, error) {
	for {
		row, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass := true
		for _, p := range f.Preds {
			if !p.match(row) {
				pass = false
				break
			}
		}
		if pass {
			return row, true, nil
		}
	}
}

// Close closes the child.
func (f *Filter) Close() error { return f.Child.Close() }

// Describe renders the node.
func (f *Filter) Describe() (string, Operator) {
	parts := make([]string, len(f.Preds))
	for i, p := range f.Preds {
		parts[i] = p.describe()
	}
	return fmt.Sprintf("Filter(%s)", strings.Join(parts, " AND ")), f.Child
}

// Project reorders the child row onto the select list.
type Project struct {
	Child Operator
	Idx   []int
	Names []string
}

// Open opens the child.
func (p *Project) Open() error { return p.Child.Open() }

// Next projects one child row.
func (p *Project) Next() (Row, bool, error) {
	row, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(Row, len(p.Idx))
	for i, j := range p.Idx {
		out[i] = row[j]
	}
	return out, true, nil
}

// Close closes the child.
func (p *Project) Close() error { return p.Child.Close() }

// Describe renders the node.
func (p *Project) Describe() (string, Operator) {
	return fmt.Sprintf("Project(%s)", strings.Join(p.Names, ", ")), p.Child
}

// Sort materializes the child and emits its rows ordered by one key
// column — the only blocking operator in the pipeline. The sort is
// stable, so ties keep the child's (deterministic) order.
type Sort struct {
	Child Operator
	Key   int
	Abs   bool
	Desc  bool
	// name is the key column's name, for EXPLAIN.
	name string

	rows []Row
	i    int
}

// NewSort builds a sort on child column key (named name).
func NewSort(child Operator, key int, name string, abs, desc bool) *Sort {
	return &Sort{Child: child, Key: key, Abs: abs, Desc: desc, name: name}
}

// Open drains the child and sorts.
func (s *Sort) Open() error {
	if err := s.Child.Open(); err != nil {
		return err
	}
	s.rows, s.i = nil, 0
	for {
		row, ok, err := s.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.rows = append(s.rows, row)
	}
	key := func(r Row) float64 {
		v := r[s.Key].num()
		if s.Abs {
			v = math.Abs(v)
		}
		return v
	}
	str := len(s.rows) > 0 && s.rows[0][s.Key].kind == KString
	sort.SliceStable(s.rows, func(a, b int) bool {
		var less bool
		if str {
			less = s.rows[a][s.Key].s < s.rows[b][s.Key].s
		} else {
			less = key(s.rows[a]) < key(s.rows[b])
		}
		if s.Desc {
			return !less && !equalKey(s.rows[a], s.rows[b], s.Key, str)
		}
		return less
	})
	return nil
}

func equalKey(a, b Row, key int, str bool) bool {
	if str {
		return a[key].s == b[key].s
	}
	return a[key].num() == b[key].num()
}

// Next emits the next sorted row.
func (s *Sort) Next() (Row, bool, error) {
	if s.i >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.i]
	s.i++
	return row, true, nil
}

// Close releases the materialized rows and closes the child.
func (s *Sort) Close() error {
	s.rows = nil
	return s.Child.Close()
}

// Describe renders the node.
func (s *Sort) Describe() (string, Operator) {
	key := s.name
	if s.Abs {
		key = "abs(" + key + ")"
	}
	if s.Desc {
		key += " desc"
	}
	return fmt.Sprintf("Sort(%s)", key), s.Child
}

// Limit stops the stream after N rows, letting the whole pipeline
// below it quit early.
type Limit struct {
	Child Operator
	N     int
	seen  int
}

// Open opens the child.
func (l *Limit) Open() error {
	l.seen = 0
	return l.Child.Open()
}

// Next forwards up to N rows.
func (l *Limit) Next() (Row, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	row, ok, err := l.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

// Close closes the child.
func (l *Limit) Close() error { return l.Child.Close() }

// Describe renders the node.
func (l *Limit) Describe() (string, Operator) {
	return fmt.Sprintf("Limit(%d)", l.N), l.Child
}

// Count drains the child and emits one row: the row count.
type Count struct {
	Child Operator
	done  bool
}

// Open opens the child.
func (c *Count) Open() error {
	c.done = false
	return c.Child.Open()
}

// Next counts the child's stream.
func (c *Count) Next() (Row, bool, error) {
	if c.done {
		return nil, false, nil
	}
	c.done = true
	n := int64(0)
	for {
		_, ok, err := c.Child.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return Row{IntVal(n)}, true, nil
		}
		n++
	}
}

// Close closes the child.
func (c *Count) Close() error { return c.Child.Close() }

// Describe renders the node.
func (c *Count) Describe() (string, Operator) { return "Count", c.Child }
