package exec

import (
	"fmt"
	"math"
	"sort"
)

// renderEpsRange pretty-prints an eps interval for EXPLAIN, omitting
// infinite endpoints.
func renderEpsRange(lo, hi float64) string {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return "eps"
	case math.IsInf(lo, -1):
		return fmt.Sprintf("eps <= %g", hi)
	case math.IsInf(hi, 1):
		return fmt.Sprintf("eps >= %g", lo)
	default:
		return fmt.Sprintf("%g <= eps <= %g", lo, hi)
	}
}

// cursorScan adapts a source Cursor to an Operator — the shared body
// of the full-scan and eps-range leaves.
type cursorScan struct {
	open func() (Cursor, error)
	desc string
	cur  Cursor
}

func (s *cursorScan) Open() error {
	cur, err := s.open()
	if err != nil {
		return err
	}
	s.cur = cur
	return nil
}

func (s *cursorScan) Next() (Row, bool, error) {
	if s.cur == nil {
		return nil, false, nil
	}
	return s.cur.Next()
}

func (s *cursorScan) Close() error {
	if s.cur != nil {
		s.cur.Close()
		s.cur = nil
	}
	return nil
}

func (s *cursorScan) Describe() (string, Operator) { return s.desc, nil }

// NewFullScan streams every row of the view.
func NewFullScan(src ViewSource) Operator {
	return &cursorScan{
		open: src.Scan,
		desc: fmt.Sprintf("FullScan(%s, %s)", src.Name(), src.Origin()),
	}
}

// NewEpsRange streams the view rows with eps ∈ [lo, hi] straight off
// the clustered layout — the paper's index scan of an eps band.
func NewEpsRange(src ViewSource, lo, hi float64) Operator {
	return &cursorScan{
		open: func() (Cursor, error) { return src.ScanEps(lo, hi) },
		desc: fmt.Sprintf("EpsRange(%s, %s, %s)", src.Name(), src.Origin(), renderEpsRange(lo, hi)),
	}
}

// NewTableScan streams a relational table in heap order.
func NewTableScan(src TableSource) Operator {
	return &cursorScan{
		open: src.Scan,
		desc: fmt.Sprintf("TableScan(%s)", src.Name()),
	}
}

// PointRead answers WHERE id = k on a view with one source lookup —
// the Single Entity read. A missing id is an error, as it always was
// on views (tables treat a missing key as an empty result instead).
type PointRead struct {
	Src ViewSource
	ID  int64
	// NeedEps fetches eps alongside the label; the planner sets it
	// only when the query references eps, so unclustered views can
	// still answer plain point reads.
	NeedEps bool
	done    bool
}

// Open resets the leaf.
func (p *PointRead) Open() error {
	p.done = false
	return nil
}

// Next emits the single row.
func (p *PointRead) Next() (Row, bool, error) {
	if p.done {
		return nil, false, nil
	}
	p.done = true
	label, err := p.Src.Label(p.ID)
	if err != nil {
		return nil, false, err
	}
	eps := 0.0
	if p.NeedEps {
		if eps, err = p.Src.Eps(p.ID); err != nil {
			return nil, false, err
		}
	}
	return Row{IntVal(p.ID), IntVal(int64(label)), FloatVal(eps)}, true, nil
}

// Close is a no-op.
func (p *PointRead) Close() error { return nil }

// Describe renders the node.
func (p *PointRead) Describe() (string, Operator) {
	return fmt.Sprintf("PointRead(%s, %s, id=%d)", p.Src.Name(), p.Src.Origin(), p.ID), nil
}

// MembersScan answers WHERE class = 1 from the members set — the All
// Members fast path — emitting (id, 1) rows in id order.
type MembersScan struct {
	Src ViewSource
	ids []int64
	i   int
}

// Open materializes and sorts the member ids (the set is what the
// source maintains; its order is not).
func (m *MembersScan) Open() error {
	ids, err := m.Src.Members()
	if err != nil {
		return err
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	m.ids, m.i = ids, 0
	return nil
}

// Next emits the next member.
func (m *MembersScan) Next() (Row, bool, error) {
	if m.i >= len(m.ids) {
		return nil, false, nil
	}
	id := m.ids[m.i]
	m.i++
	return Row{IntVal(id), IntVal(1), FloatVal(0)}, true, nil
}

// Close releases the ids.
func (m *MembersScan) Close() error {
	m.ids = nil
	return nil
}

// Describe renders the node.
func (m *MembersScan) Describe() (string, Operator) {
	return fmt.Sprintf("MembersScan(%s, %s)", m.Src.Name(), m.Src.Origin()), nil
}

// MembersCount answers COUNT(*) WHERE class = 1 without materializing
// a single id.
type MembersCount struct {
	Src  ViewSource
	done bool
}

// Open resets the leaf.
func (m *MembersCount) Open() error {
	m.done = false
	return nil
}

// Next emits the count row.
func (m *MembersCount) Next() (Row, bool, error) {
	if m.done {
		return nil, false, nil
	}
	m.done = true
	n, err := m.Src.CountMembers()
	if err != nil {
		return nil, false, err
	}
	return Row{IntVal(int64(n))}, true, nil
}

// Close is a no-op.
func (m *MembersCount) Close() error { return nil }

// Describe renders the node.
func (m *MembersCount) Describe() (string, Operator) {
	return fmt.Sprintf("MembersCount(%s, %s)", m.Src.Name(), m.Src.Origin()), nil
}

// Uncertain answers ORDER BY ABS(eps) LIMIT k by walking outward from
// the decision boundary over the clustered layout — the active-
// learning read, subsuming the wire verb UNCERTAIN k.
type Uncertain struct {
	Src ViewSource
	K   int
	// NeedClass / NeedEps fetch the extra columns per emitted id when
	// the select list wants them.
	NeedClass bool
	NeedEps   bool
	ids       []int64
	i         int
}

// Open materializes the k boundary ids (k rows, not the view).
func (u *Uncertain) Open() error {
	ids, err := u.Src.MostUncertain(u.K)
	if err != nil {
		return err
	}
	u.ids, u.i = ids, 0
	return nil
}

// Next emits the next boundary id.
func (u *Uncertain) Next() (Row, bool, error) {
	if u.i >= len(u.ids) {
		return nil, false, nil
	}
	id := u.ids[u.i]
	u.i++
	label, eps := 0, 0.0
	var err error
	if u.NeedClass {
		if label, err = u.Src.Label(id); err != nil {
			return nil, false, err
		}
	}
	if u.NeedEps {
		if eps, err = u.Src.Eps(id); err != nil {
			return nil, false, err
		}
	}
	return Row{IntVal(id), IntVal(int64(label)), FloatVal(eps)}, true, nil
}

// Close releases the ids.
func (u *Uncertain) Close() error {
	u.ids = nil
	return nil
}

// Describe renders the node.
func (u *Uncertain) Describe() (string, Operator) {
	return fmt.Sprintf("Uncertain(%s, %s, k=%d)", u.Src.Name(), u.Src.Origin(), u.K), nil
}

// TableGet answers WHERE id = k on a table through the primary-key
// index; a missing key is an empty result.
type TableGet struct {
	Src  TableSource
	ID   int64
	done bool
}

// Open resets the leaf.
func (g *TableGet) Open() error {
	g.done = false
	return nil
}

// Next emits the row, if present.
func (g *TableGet) Next() (Row, bool, error) {
	if g.done {
		return nil, false, nil
	}
	g.done = true
	return g.Src.Get(g.ID)
}

// Close is a no-op.
func (g *TableGet) Close() error { return nil }

// Describe renders the node.
func (g *TableGet) Describe() (string, Operator) {
	return fmt.Sprintf("TableGet(%s, id=%d)", g.Src.Name(), g.ID), nil
}
