package exec

import (
	"fmt"
	"math"
	"sort"
)

// renderEpsRange pretty-prints an eps interval for EXPLAIN, omitting
// infinite endpoints.
func renderEpsRange(lo, hi float64) string {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return "eps"
	case math.IsInf(lo, -1):
		return fmt.Sprintf("eps <= %g", hi)
	case math.IsInf(hi, 1):
		return fmt.Sprintf("eps >= %g", lo)
	default:
		return fmt.Sprintf("%g <= eps <= %g", lo, hi)
	}
}

// cursorScan adapts a source Cursor to an Operator — the shared body
// of the full-scan, eps-range, and table-scan leaves. The operator
// owns the batch schema; the cursor bulk-appends rows.
type cursorScan struct {
	open  func() (Cursor, error)
	kinds []Kind
	desc  string
	cur   Cursor
	eof   bool
}

func (s *cursorScan) Open() error {
	s.eof = false
	cur, err := s.open()
	if err != nil {
		return err
	}
	s.cur = cur
	return nil
}

func (s *cursorScan) NextBatch(dst *Batch) error {
	dst.ResetSchema(s.kinds...)
	if s.cur == nil || s.eof {
		return nil
	}
	if err := s.cur.NextBatch(dst); err != nil {
		return err
	}
	if dst.Len() == 0 {
		s.eof = true
	}
	return nil
}

func (s *cursorScan) Close() error {
	if s.cur != nil {
		s.cur.Close()
		s.cur = nil
	}
	return nil
}

func (s *cursorScan) Describe() (string, Operator) { return s.desc, nil }

// NewFullScan streams every row of the view.
func NewFullScan(src ViewSource) Operator {
	return &cursorScan{
		open:  src.Scan,
		kinds: viewKinds,
		desc:  fmt.Sprintf("FullScan(%s, %s)", src.Name(), src.Origin()),
	}
}

// NewEpsRange streams the view rows with eps ∈ [lo, hi] straight off
// the clustered layout — the paper's index scan of an eps band.
func NewEpsRange(src ViewSource, lo, hi float64) Operator {
	return &cursorScan{
		open:  func() (Cursor, error) { return src.ScanEps(lo, hi) },
		kinds: viewKinds,
		desc:  fmt.Sprintf("EpsRange(%s, %s, %s)", src.Name(), src.Origin(), renderEpsRange(lo, hi)),
	}
}

// NewTableScan streams a relational table in heap order.
func NewTableScan(src TableSource) Operator {
	return &cursorScan{
		open:  src.Scan,
		kinds: columnKinds(src.Columns()),
		desc:  fmt.Sprintf("TableScan(%s)", src.Name()),
	}
}

// PointRead answers WHERE id = k on a view with one source lookup —
// the Single Entity read. A missing id is an error, as it always was
// on views (tables treat a missing key as an empty result instead).
type PointRead struct {
	Src ViewSource
	ID  int64
	// NeedEps fetches eps alongside the label; the planner sets it
	// only when the query references eps, so unclustered views can
	// still answer plain point reads.
	NeedEps bool
	done    bool
}

// Open resets the leaf.
func (p *PointRead) Open() error {
	p.done = false
	return nil
}

// NextBatch emits the single row.
func (p *PointRead) NextBatch(dst *Batch) error {
	dst.ResetSchema(viewKinds...)
	if p.done {
		return nil
	}
	p.done = true
	label, err := p.Src.Label(p.ID)
	if err != nil {
		return err
	}
	eps := 0.0
	if p.NeedEps {
		if eps, err = p.Src.Eps(p.ID); err != nil {
			return err
		}
	}
	dst.AppendViewRow(p.ID, int64(label), eps)
	return nil
}

// Close is a no-op.
func (p *PointRead) Close() error { return nil }

// Describe renders the node.
func (p *PointRead) Describe() (string, Operator) {
	return fmt.Sprintf("PointRead(%s, %s, id=%d)", p.Src.Name(), p.Src.Origin(), p.ID), nil
}

// MembersScan answers WHERE class = 1 from the members set — the All
// Members fast path — emitting (id, 1) rows in id order.
type MembersScan struct {
	Src ViewSource
	ids []int64
	i   int
}

// Open materializes and sorts the member ids (the set is what the
// source maintains; its order is not).
func (m *MembersScan) Open() error {
	ids, err := m.Src.Members()
	if err != nil {
		return err
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	m.ids, m.i = ids, 0
	return nil
}

// NextBatch emits the next run of members.
func (m *MembersScan) NextBatch(dst *Batch) error {
	dst.ResetSchema(viewKinds...)
	for m.i < len(m.ids) && dst.Room() > 0 {
		dst.AppendViewRow(m.ids[m.i], 1, 0)
		m.i++
	}
	return nil
}

// Close releases the ids.
func (m *MembersScan) Close() error {
	m.ids = nil
	return nil
}

// Describe renders the node.
func (m *MembersScan) Describe() (string, Operator) {
	return fmt.Sprintf("MembersScan(%s, %s)", m.Src.Name(), m.Src.Origin()), nil
}

// MembersCount answers COUNT(*) WHERE class = 1 without materializing
// a single id.
type MembersCount struct {
	Src  ViewSource
	done bool
}

// Open resets the leaf.
func (m *MembersCount) Open() error {
	m.done = false
	return nil
}

// NextBatch emits the count row.
func (m *MembersCount) NextBatch(dst *Batch) error {
	dst.ResetSchema(KInt)
	if m.done {
		return nil
	}
	m.done = true
	n, err := m.Src.CountMembers()
	if err != nil {
		return err
	}
	dst.AppendRow(Row{IntVal(int64(n))})
	return nil
}

// Close is a no-op.
func (m *MembersCount) Close() error { return nil }

// Describe renders the node.
func (m *MembersCount) Describe() (string, Operator) {
	return fmt.Sprintf("MembersCount(%s, %s)", m.Src.Name(), m.Src.Origin()), nil
}

// Uncertain answers ORDER BY ABS(eps) LIMIT k by walking outward from
// the decision boundary over the clustered layout — the active-
// learning read, subsuming the wire verb UNCERTAIN k.
type Uncertain struct {
	Src ViewSource
	K   int
	// NeedClass / NeedEps fetch the extra columns per emitted id when
	// the select list wants them.
	NeedClass bool
	NeedEps   bool
	ids       []int64
	i         int
}

// Open materializes the k boundary ids (k rows, not the view).
func (u *Uncertain) Open() error {
	ids, err := u.Src.MostUncertain(u.K)
	if err != nil {
		return err
	}
	u.ids, u.i = ids, 0
	return nil
}

// NextBatch emits the next run of boundary ids.
func (u *Uncertain) NextBatch(dst *Batch) error {
	dst.ResetSchema(viewKinds...)
	for u.i < len(u.ids) && dst.Room() > 0 {
		id := u.ids[u.i]
		u.i++
		label, eps := 0, 0.0
		var err error
		if u.NeedClass {
			if label, err = u.Src.Label(id); err != nil {
				return err
			}
		}
		if u.NeedEps {
			if eps, err = u.Src.Eps(id); err != nil {
				return err
			}
		}
		dst.AppendViewRow(id, int64(label), eps)
	}
	return nil
}

// Close releases the ids.
func (u *Uncertain) Close() error {
	u.ids = nil
	return nil
}

// Describe renders the node.
func (u *Uncertain) Describe() (string, Operator) {
	return fmt.Sprintf("Uncertain(%s, %s, k=%d)", u.Src.Name(), u.Src.Origin(), u.K), nil
}

// TableGet answers WHERE id = k on a table through the primary-key
// index; a missing key is an empty result.
type TableGet struct {
	Src  TableSource
	ID   int64
	done bool
}

// Open resets the leaf.
func (g *TableGet) Open() error {
	g.done = false
	return nil
}

// NextBatch emits the row, if present.
func (g *TableGet) NextBatch(dst *Batch) error {
	dst.ResetSchema(columnKinds(g.Src.Columns())...)
	if g.done {
		return nil
	}
	g.done = true
	row, ok, err := g.Src.Get(g.ID)
	if err != nil || !ok {
		return err
	}
	dst.AppendRow(row)
	return nil
}

// Close is a no-op.
func (g *TableGet) Close() error { return nil }

// Describe renders the node.
func (g *TableGet) Describe() (string, Operator) {
	return fmt.Sprintf("TableGet(%s, id=%d)", g.Src.Name(), g.ID), nil
}
