package exec

import (
	"fmt"
	"math"
	"strings"

	"hazy/internal/sqlmini"
)

// Plan is a built, executable query: the operator pipeline plus its
// output column names. Run it with Root.Open / Next / Close, or print
// it with Explain.
type Plan struct {
	Root Operator
	Cols []string
}

// Explain renders the operator tree, root first, two spaces per
// level — the text EXPLAIN SELECT returns.
func (p *Plan) Explain() []string {
	var lines []string
	for op, depth := p.Root, 0; op != nil; depth++ {
		desc, child := op.Describe()
		lines = append(lines, strings.Repeat("  ", depth)+desc)
		op = child
	}
	return lines
}

// Build lowers one parsed SELECT onto the catalog's read surfaces.
// Views shadow tables, as the dialect always resolved them.
func Build(st sqlmini.Select, cat Catalog) (*Plan, error) {
	if vs, ok, err := cat.View(st.From); err != nil {
		return nil, err
	} else if ok {
		return buildView(st, vs)
	}
	if ts, ok, err := cat.Table(st.From); err != nil {
		return nil, err
	} else if ok {
		return buildTable(st, ts)
	}
	return nil, fmt.Errorf("sql: no table or view %q", st.From)
}

// colIndex resolves a column name case-insensitively.
func colIndex(cols []Column, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// countPlan tops a scan with COUNT(*), honoring LIMIT over the
// aggregate's (single-row) result per SQL semantics — LIMIT 0 really
// does suppress the count row.
func countPlan(scan Operator, limit int) *Plan {
	var root Operator = &Count{Child: scan}
	if limit >= 0 {
		root = &Limit{Child: root, N: limit}
	}
	return &Plan{Root: root, Cols: []string{"count"}}
}

func litValue(l sqlmini.Literal) Value {
	if l.IsString {
		return StrVal(l.Str)
	}
	if l.Num == float64(int64(l.Num)) {
		return IntVal(int64(l.Num))
	}
	return FloatVal(l.Num)
}

// selectList validates the select list against cols and returns the
// projected indexes with their output names (`*` expands to every
// column the dialect historically exposed — starCols of them).
func selectList(st sqlmini.Select, cols []Column, starCols int) (idx []int, names []string, err error) {
	want := st.Cols
	if len(want) == 1 && want[0] == "*" {
		for _, c := range cols[:starCols] {
			idx = append(idx, colIndex(cols, c.Name))
			names = append(names, c.Name)
		}
		return idx, names, nil
	}
	for _, name := range want {
		i := colIndex(cols, name)
		if i < 0 {
			return nil, nil, fmt.Errorf("sql: unknown column %q", name)
		}
		idx = append(idx, i)
		names = append(names, name)
	}
	return idx, names, nil
}

// refsEps reports whether any part of the query touches the eps
// column (select list, WHERE, or ORDER BY).
func refsEps(st sqlmini.Select) bool {
	for _, c := range st.Cols {
		if strings.EqualFold(c, "eps") {
			return true
		}
	}
	for _, c := range st.Where {
		if strings.EqualFold(c.Col, "eps") {
			return true
		}
	}
	return st.Order != nil && strings.EqualFold(st.Order.Col, "eps")
}

// buildView plans a SELECT over a classification view.
func buildView(st sqlmini.Select, src ViewSource) (*Plan, error) {
	cols := viewColumns
	needEps := refsEps(st)
	if needEps && !src.Clustered() {
		return nil, fmt.Errorf("sql: view %q has no eps clustering (naive strategy)", src.Name())
	}
	// Validate every referenced column up front.
	for _, c := range st.Where {
		if colIndex(cols, c.Col) < 0 {
			return nil, fmt.Errorf("sql: unknown column %q in WHERE", c.Col)
		}
	}
	if st.Order != nil && colIndex(cols, st.Order.Col) < 0 {
		return nil, fmt.Errorf("sql: unknown column %q in ORDER BY", st.Order.Col)
	}
	if st.Order != nil && st.Count {
		return nil, fmt.Errorf("sql: ORDER BY is meaningless under COUNT(*)")
	}

	// Split the conjuncts into what a physical structure can consume —
	// an id point read, the members set, an eps range — and the
	// residual the Filter keeps.
	var idEq *int64
	var classEq *int
	epsLo, epsHi := math.Inf(-1), math.Inf(1)
	epsBounded := false
	var residual []Pred
	keep := func(c sqlmini.Cond) {
		residual = append(residual, NewPred(colIndex(cols, c.Col), strings.ToLower(c.Col), c.Op, litValue(c.Lit)))
	}
	for _, c := range st.Where {
		switch {
		case strings.EqualFold(c.Col, "id") && c.Op == "=" && !c.Lit.IsString &&
			c.Lit.Num == float64(int64(c.Lit.Num)) && idEq == nil:
			id := int64(c.Lit.Num)
			idEq = &id
		case strings.EqualFold(c.Col, "class") && c.Op == "=":
			if c.Lit.IsString || (c.Lit.Num != 1 && c.Lit.Num != -1) {
				return nil, fmt.Errorf("sql: class literal must be ±1")
			}
			if classEq == nil {
				cl := int(c.Lit.Num)
				classEq = &cl
			} else {
				keep(c)
			}
		case strings.EqualFold(c.Col, "eps") && !c.Lit.IsString && c.Op != "<>":
			x := c.Lit.Num
			switch c.Op {
			case "=":
				epsLo, epsHi = math.Max(epsLo, x), math.Min(epsHi, x)
			case ">":
				epsLo = math.Max(epsLo, math.Nextafter(x, math.Inf(1)))
			case ">=":
				epsLo = math.Max(epsLo, x)
			case "<":
				epsHi = math.Min(epsHi, math.Nextafter(x, math.Inf(-1)))
			case "<=":
				epsHi = math.Min(epsHi, x)
			}
			epsBounded = true
		default:
			keep(c)
		}
	}

	classPred := func() {
		if classEq != nil {
			residual = append([]Pred{NewPred(viewColClass, "class", "=", IntVal(int64(*classEq)))}, residual...)
		}
	}

	// Choose the scan.
	var scan Operator
	ordered := ""         // which column the scan already emits in order
	implicitSort := false // full scans re-establish the historical id order
	switch {
	case idEq != nil:
		// Single Entity: one lookup, every other conjunct filters the
		// one row. Unconsumed eps bounds fold back into the filter.
		classPred()
		residual = append(residual, epsPreds(epsBounded, epsLo, epsHi)...)
		scan = &PointRead{Src: src, ID: *idEq, NeedEps: needEps}
	case classEq != nil && *classEq == 1 && !needEps:
		// All Members: the set the maintenance machinery keeps hot.
		if st.Count && len(residual) == 0 {
			var root Operator = &MembersCount{Src: src}
			if st.Limit >= 0 {
				root = &Limit{Child: root, N: st.Limit}
			}
			return &Plan{Root: root, Cols: []string{"count"}}, nil
		}
		scan = &MembersScan{Src: src}
		ordered = "id"
	case epsBounded && src.Clustered():
		// Eps band: an index range scan instead of a rescan — the
		// paper's reason the clustered layout exists. Striped layouts
		// scatter the band to their stripes and gather in eps order.
		classPred()
		scan = epsScan(src, epsLo, epsHi)
		ordered = "eps"
	default:
		classPred()
		residual = append(residual, epsPreds(epsBounded, epsLo, epsHi)...)
		if u := uncertainPlan(st, src, residual); u != nil {
			return u, nil
		}
		scan = NewFullScan(src)
		if src.Clustered() {
			ordered = "eps"
			if ss, ok := src.(StripedSource); ok && ss.Stripes() > 1 {
				scan = NewEpsMergeScan(src, ss, math.Inf(-1), math.Inf(1))
			}
		}
		implicitSort = true
	}

	if len(residual) > 0 {
		scan = &Filter{Child: scan, Preds: residual}
	}
	if st.Count {
		return countPlan(scan, st.Limit), nil
	}

	// Ordering: an explicit ORDER BY wins (skipped when the scan
	// already streams that order); otherwise full scans re-establish
	// the historical id order, while eps-range scans stream in eps
	// order — that is their point.
	if st.Order != nil {
		if !strings.EqualFold(st.Order.Col, ordered) || st.Order.Abs || st.Order.Desc {
			scan = NewSort(scan, colIndex(cols, st.Order.Col), strings.ToLower(st.Order.Col), st.Order.Abs, st.Order.Desc)
		}
	} else if implicitSort {
		scan = NewSort(scan, viewColID, "id", false, false)
	}
	if st.Limit >= 0 {
		scan = &Limit{Child: scan, N: st.Limit}
	}
	idx, names, err := selectList(st, cols, 2) // `*` is (id, class), as ever
	if err != nil {
		return nil, err
	}
	return &Plan{Root: &Project{Child: scan, Idx: idx, Names: names}, Cols: names}, nil
}

// epsScan chooses the eps-band leaf: the P-way merge over a striped
// source, the single index-range cursor otherwise.
func epsScan(src ViewSource, lo, hi float64) Operator {
	if ss, ok := src.(StripedSource); ok && ss.Stripes() > 1 {
		return NewEpsMergeScan(src, ss, lo, hi)
	}
	return NewEpsRange(src, lo, hi)
}

// epsPreds turns unconsumed eps bounds back into filter predicates.
func epsPreds(bounded bool, lo, hi float64) []Pred {
	if !bounded {
		return nil
	}
	var out []Pred
	if !math.IsInf(lo, -1) {
		out = append(out, NewPred(viewColEps, "eps", ">=", FloatVal(lo)))
	}
	if !math.IsInf(hi, 1) {
		out = append(out, NewPred(viewColEps, "eps", "<=", FloatVal(hi)))
	}
	return out
}

// uncertainPlan recognizes SELECT ... FROM v ORDER BY ABS(eps) LIMIT k
// with no predicates — the active-learning read — and answers it by
// walking outward from the boundary instead of scanning and sorting.
func uncertainPlan(st sqlmini.Select, src ViewSource, residual []Pred) *Plan {
	if st.Count || st.Order == nil || !st.Order.Abs || st.Order.Desc ||
		!strings.EqualFold(st.Order.Col, "eps") || st.Limit < 0 ||
		len(residual) > 0 || !src.Clustered() {
		return nil
	}
	idx, names, err := selectList(st, viewColumns, 2)
	if err != nil {
		return nil
	}
	needClass, needEps := false, false
	for _, i := range idx {
		needClass = needClass || i == viewColClass
		needEps = needEps || i == viewColEps
	}
	scan := &Uncertain{Src: src, K: st.Limit, NeedClass: needClass, NeedEps: needEps}
	return &Plan{Root: &Project{Child: scan, Idx: idx, Names: names}, Cols: names}
}

// buildTable plans a SELECT over an entity or examples table.
func buildTable(st sqlmini.Select, src TableSource) (*Plan, error) {
	cols := src.Columns()
	for _, c := range st.Where {
		if colIndex(cols, c.Col) < 0 {
			return nil, fmt.Errorf("sql: unknown column %q in WHERE", c.Col)
		}
	}
	if st.Order != nil && colIndex(cols, st.Order.Col) < 0 {
		return nil, fmt.Errorf("sql: unknown column %q in ORDER BY", st.Order.Col)
	}
	if st.Order != nil && st.Count {
		return nil, fmt.Errorf("sql: ORDER BY is meaningless under COUNT(*)")
	}

	var idEq *int64
	var residual []Pred
	for _, c := range st.Where {
		if strings.EqualFold(c.Col, "id") && c.Op == "=" && !c.Lit.IsString &&
			c.Lit.Num == float64(int64(c.Lit.Num)) && idEq == nil {
			id := int64(c.Lit.Num)
			idEq = &id
			continue
		}
		residual = append(residual, NewPred(colIndex(cols, c.Col), strings.ToLower(c.Col), c.Op, litValue(c.Lit)))
	}

	var scan Operator
	if idEq != nil {
		scan = &TableGet{Src: src, ID: *idEq}
	} else {
		scan = NewTableScan(src)
	}
	if len(residual) > 0 {
		scan = &Filter{Child: scan, Preds: residual}
	}
	if st.Count {
		return countPlan(scan, st.Limit), nil
	}
	if st.Order != nil {
		i := colIndex(cols, st.Order.Col)
		if st.Order.Abs && cols[i].Kind == KString {
			return nil, fmt.Errorf("sql: ABS() needs a numeric column, %q is TEXT", st.Order.Col)
		}
		scan = NewSort(scan, i, strings.ToLower(st.Order.Col), st.Order.Abs, st.Order.Desc)
	}
	if st.Limit >= 0 {
		scan = &Limit{Child: scan, N: st.Limit}
	}
	idx, names, err := selectList(st, cols, len(cols))
	if err != nil {
		return nil, err
	}
	return &Plan{Root: &Project{Child: scan, Idx: idx, Names: names}, Cols: names}, nil
}
