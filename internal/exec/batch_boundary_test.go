package exec

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"hazy/internal/sqlmini"
)

// mustBuild plans one statement against cat without running it.
func mustBuild(t *testing.T, cat Catalog, src string) *Plan {
	t.Helper()
	st, err := sqlmini.Parse(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	plan, err := Build(st.(sqlmini.Select), cat)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return plan
}

// withBatchSize runs fn with the pipeline's batch size pinned to n,
// restoring the default afterward.
func withBatchSize(t *testing.T, n int, fn func()) {
	t.Helper()
	old := BatchSize()
	SetBatchSize(n)
	defer SetBatchSize(old)
	fn()
}

// dupCatalog builds a clustered view large enough that small batch
// sizes split every operator's stream mid-flight, with duplicate eps
// values placed so |eps| ties straddle batch boundaries.
func dupCatalog(rows int) *fakeCatalog {
	cat := testCatalog()
	var entries []fakeEntry
	for i := 0; i < rows; i++ {
		// eps ∈ {-1.0, -0.5, 0.5, 1.0} in ascending runs: every value
		// repeats rows/4 times, and ±0.5 / ±1.0 tie under ABS.
		eps := []float64{-1.0, -0.5, 0.5, 1.0}[i*4/rows]
		class := -1
		if eps > 0 {
			class = 1
		}
		entries = append(entries, fakeEntry{id: int64(1000 + i), eps: eps, class: class})
	}
	cat.views["dup"] = &fakeView{name: "dup", origin: "snapshot", clustered: true, entries: entries}
	cat.views["empty"] = &fakeView{name: "empty", origin: "snapshot", clustered: true}
	return cat
}

// TestBatchBoundaryEquivalence replays a query set that exercises
// every operator at batch sizes 1, 2, 3, and 7 and checks each run
// returns exactly the rows the default (1024) size does — LIMIT cut
// mid-batch, sort runs and ABS(eps) ties crossing batches, filters
// compacting across refills, and the k-way striped merge all included.
func TestBatchBoundaryEquivalence(t *testing.T) {
	queries := []string{
		"SELECT id, class, eps FROM dup",
		"SELECT id, eps FROM dup WHERE eps >= -0.5 AND eps <= 0.5",
		"SELECT id FROM dup WHERE eps > 0 AND class = 1",
		"SELECT id, eps FROM dup ORDER BY ABS(eps)",
		"SELECT id, eps FROM dup ORDER BY eps DESC LIMIT 7",
		"SELECT id FROM dup ORDER BY id DESC LIMIT 5",
		"SELECT id FROM dup LIMIT 5",
		"SELECT id FROM dup WHERE eps >= -0.5 LIMIT 3",
		"SELECT COUNT(*) FROM dup WHERE eps >= 0",
		"SELECT COUNT(*) FROM dup WHERE class = 1 LIMIT 0",
		"SELECT id FROM dup ORDER BY ABS(eps) LIMIT 4",
		"SELECT id, class FROM empty",
		"SELECT id FROM empty WHERE eps >= -1 AND eps <= 1",
		"SELECT COUNT(*) FROM empty",
		"SELECT id FROM empty ORDER BY ABS(eps) LIMIT 3",
		"SELECT id, eps FROM sv WHERE eps >= -0.5 AND eps <= 0.5",
		"SELECT id, eps FROM sv ORDER BY eps",
		"SELECT COUNT(*) FROM sv WHERE eps > 0",
	}
	newCat := func() *fakeCatalog {
		cat := dupCatalog(24)
		cat.striped = stripedCatalog().striped
		return cat
	}
	want := map[string][][]string{}
	for _, q := range queries {
		_, rows := runOn(t, newCat(), q)
		want[q] = rows
	}
	for _, size := range []int{1, 2, 3, 7} {
		withBatchSize(t, size, func() {
			for _, q := range queries {
				_, rows := runOn(t, newCat(), q)
				if !reflect.DeepEqual(rows, want[q]) {
					t.Errorf("batch=%d %s:\nrows %v\nwant %v", size, q, rows, want[q])
				}
			}
		})
	}
}

// TestSortAbsEpsTieStability pins the tie order: rows whose |eps|
// compares equal come out in scan (eps-ascending) order even when the
// tied run is split across several batches.
func TestSortAbsEpsTieStability(t *testing.T) {
	cat := dupCatalog(24)
	ref := cat.views["dup"].entries
	var want [][]string
	idx := make([]int, len(ref))
	for i := range idx {
		idx[i] = i
	}
	// Reference: stable sort of the eps-ascending scan on |eps|.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && math.Abs(ref[idx[j]].eps) < math.Abs(ref[idx[j-1]].eps); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	for _, i := range idx {
		want = append(want, []string{fmt.Sprint(ref[i].id), fmt.Sprintf("%g", ref[i].eps)})
	}
	for _, size := range []int{1, 3, 1024} {
		withBatchSize(t, size, func() {
			_, rows := runOn(t, dupCatalog(24), "SELECT id, eps FROM dup ORDER BY ABS(eps)")
			if !reflect.DeepEqual(rows, want) {
				t.Errorf("batch=%d:\nrows %v\nwant %v", size, rows, want)
			}
		})
	}
}

// TestLimitStopsLeafMidBatch pins the pushdown half of LIMIT: when
// LIMIT sits directly over a scan, the row request propagates down so
// the leaf produces exactly N rows, not a whole batch it then throws
// away. (A Filter in between legitimately over-reads — it cannot know
// how many source rows N survivors take.)
func TestLimitStopsLeafMidBatch(t *testing.T) {
	plan := mustBuild(t, dupCatalog(24), "SELECT id FROM dup WHERE eps >= -2.0 LIMIT 3")
	an := Instrument(plan.Root, nil)
	if err := an.Open(); err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	b := NewBatch()
	defer b.Release()
	for {
		if err := an.NextBatch(b); err != nil {
			t.Fatal(err)
		}
		if b.Len() == 0 {
			break
		}
	}
	var leaf string
	for node, next := Operator(an), Operator(nil); node != nil; node = next {
		leaf, next = node.Describe()
	}
	if !strings.Contains(leaf, "EpsRange(") || !strings.Contains(leaf, "(rows=3 ") {
		t.Fatalf("leaf under LIMIT 3 produced more than asked: %q", leaf)
	}
}
