package exec

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"hazy/internal/sqlmini"
)

// fakeStripedView is a fakeView that also exposes per-stripe scans:
// entries are dealt round-robin to stripes, each stripe eps-ascending
// on its own, so the merged stream must re-interleave them.
type fakeStripedView struct {
	fakeView
	stripes [][]fakeEntry
}

func (f *fakeStripedView) Stripes() int { return len(f.stripes) }

func (f *fakeStripedView) ScanEpsStripe(i int, lo, hi float64) (Cursor, error) {
	var rows []Row
	for _, e := range f.stripes[i] {
		if e.eps >= lo && e.eps <= hi {
			rows = append(rows, Row{IntVal(e.id), IntVal(int64(e.class)), FloatVal(e.eps)})
		}
	}
	return &fakeCursor{rows: rows}, nil
}

func stripedCatalog() *fakeCatalog {
	entries := []fakeEntry{
		{id: 4, eps: -0.9, class: -1},
		{id: 1, eps: -0.3, class: -1},
		{id: 5, eps: -0.05, class: -1},
		{id: 2, eps: 0.1, class: 1},
		{id: 7, eps: 0.1, class: 1}, // eps tie across stripes: id breaks it
		{id: 3, eps: 0.8, class: 1},
		{id: 6, eps: 1.2, class: 1},
	}
	sv := &fakeStripedView{
		fakeView: fakeView{name: "sv", origin: "live", clustered: true, entries: entries},
		stripes:  make([][]fakeEntry, 3),
	}
	for i, e := range entries {
		sv.stripes[i%3] = append(sv.stripes[i%3], e)
	}
	cat := &fakeCatalog{views: map[string]*fakeView{}, tables: map[string]*fakeTable{}}
	cat.striped = sv
	return cat
}

// runOn is run against an explicit catalog.
func runOn(t *testing.T, cat Catalog, src string) (*Plan, [][]string) {
	t.Helper()
	st, err := sqlmini.Parse(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	sel, ok := st.(sqlmini.Select)
	if !ok {
		sel = st.(sqlmini.Explain).Sel
	}
	plan, err := Build(sel, cat)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	if err := plan.Root.Open(); err != nil {
		t.Fatalf("%s: open: %v", src, err)
	}
	defer plan.Root.Close()
	return plan, drain(t, src, plan.Root)
}

// TestEpsMergeScanPlansAndOrder: eps-band and clustered full scans
// over a striped source lower onto EpsMergeScan, and the gathered
// stream is in global (eps, id) order — ties broken by id across
// stripes.
func TestEpsMergeScanPlansAndOrder(t *testing.T) {
	cat := stripedCatalog()
	cases := []struct {
		sql  string
		plan string
		rows [][]string
	}{
		{
			"SELECT id, eps FROM sv WHERE eps >= -0.5 AND eps <= 0.5",
			"Project(id, eps)\n  EpsMergeScan(sv, live, -0.5 <= eps <= 0.5, stripes=3)",
			[][]string{{"1", "-0.3"}, {"5", "-0.05"}, {"2", "0.1"}, {"7", "0.1"}},
		},
		{
			"SELECT id, eps FROM sv ORDER BY eps",
			"Project(id, eps)\n  EpsMergeScan(sv, live, eps, stripes=3)",
			[][]string{{"4", "-0.9"}, {"1", "-0.3"}, {"5", "-0.05"}, {"2", "0.1"}, {"7", "0.1"}, {"3", "0.8"}, {"6", "1.2"}},
		},
		{
			"SELECT COUNT(*) FROM sv WHERE eps > 0",
			// `> 0` lowers to the next float above zero, as EpsRange does.
			"Count\n  EpsMergeScan(sv, live, eps >= 5e-324, stripes=3)",
			[][]string{{"4"}},
		},
	}
	for _, c := range cases {
		plan, rows := runOn(t, cat, c.sql)
		if got := strings.Join(plan.Explain(), "\n"); got != c.plan {
			t.Errorf("%s:\nplan:\n%s\nwant:\n%s", c.sql, got, c.plan)
		}
		if !reflect.DeepEqual(rows, c.rows) {
			t.Errorf("%s:\nrows: %v\nwant: %v", c.sql, rows, c.rows)
		}
	}
}

// TestEpsMergeScanSingleStripeKeepsPlainPlan: Stripes() == 1 keeps
// the single-cursor plans — no merge overhead for unstriped views.
func TestEpsMergeScanSingleStripeKeepsPlainPlan(t *testing.T) {
	cat := stripedCatalog()
	cat.striped.stripes = [][]fakeEntry{cat.striped.fakeView.entries}
	plan, _ := runOn(t, cat, "SELECT id FROM sv WHERE eps >= 0 AND eps <= 1")
	if got := strings.Join(plan.Explain(), "\n"); !strings.Contains(got, "EpsRange(") {
		t.Fatalf("single-stripe source should keep EpsRange, got:\n%s", got)
	}
}

// TestEpsMergeScanOperatorDirect exercises the operator without the
// planner: full-range merge equals the view's own ordering.
func TestEpsMergeScanOperatorDirect(t *testing.T) {
	cat := stripedCatalog()
	m := NewEpsMergeScan(cat.striped, cat.striped, math.Inf(-1), math.Inf(1))
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var ids []int64
	prev := math.Inf(-1)
	b := NewBatch()
	defer b.Release()
	for {
		if err := m.NextBatch(b); err != nil {
			t.Fatal(err)
		}
		if b.Len() == 0 {
			break
		}
		for r := 0; r < b.Len(); r++ {
			eps := b.Float(r, viewColEps)
			if eps < prev {
				t.Fatalf("merge emitted eps out of order: %g after %g", eps, prev)
			}
			prev = eps
			ids = append(ids, b.Int(r, viewColID))
		}
	}
	if want := []int64{4, 1, 5, 2, 7, 3, 6}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("merged ids = %v, want %v", ids, want)
	}
}
