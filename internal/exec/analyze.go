package exec

import (
	"fmt"
	"strings"
	"time"

	"hazy/internal/obs"
)

// Analyzed decorates one plan node with row counting and inclusive
// wall timing — the instrumentation behind EXPLAIN ANALYZE. Every
// Operator call is forwarded to the wrapped node and timed; because
// the wrapped node's own child links point at further Analyzed
// wrappers, a node's time includes its whole subtree (inclusive
// semantics, like PostgreSQL's actual time).
//
// Timing is batch-granular: one clock pair per NextBatch call (~1024
// rows), not per row, so the decorator's own overhead no longer
// inflates time= on fast operators. Row counts stay exact — each
// batch's length is what the node actually produced.
type Analyzed struct {
	// Child is the wrapped node. Interior nodes' own Child fields are
	// rewired to the next Analyzed wrapper by Instrument.
	Child Operator

	rows int64
	dur  time.Duration
	reg  *obs.Registry
}

// Instrument rebuilds a built plan chain with every node wrapped in
// an Analyzed decorator and returns the new root. The executor's
// plans are linear chains linked through exported Child fields, so
// interior nodes are rewired in place; every other node is a leaf.
// When reg is non-nil, each node's counts also accumulate into the
// shared per-operator collectors on Close.
func Instrument(root Operator, reg *obs.Registry) *Analyzed {
	switch o := root.(type) {
	case *Filter:
		o.Child = Instrument(o.Child, reg)
	case *Project:
		o.Child = Instrument(o.Child, reg)
	case *Sort:
		o.Child = Instrument(o.Child, reg)
	case *Limit:
		o.Child = Instrument(o.Child, reg)
	case *Count:
		o.Child = Instrument(o.Child, reg)
	}
	return &Analyzed{Child: root, reg: reg}
}

// Open forwards and times the wrapped node's Open.
func (a *Analyzed) Open() error {
	start := time.Now()
	err := a.Child.Open()
	a.dur += time.Since(start)
	return err
}

// NextBatch forwards, times (once per batch, not per row), and
// counts produced rows.
func (a *Analyzed) NextBatch(dst *Batch) error {
	start := time.Now()
	err := a.Child.NextBatch(dst)
	a.dur += time.Since(start)
	a.rows += int64(dst.Len())
	return err
}

// Close forwards and times the wrapped node's Close, then flushes
// this node's totals into the shared registry.
func (a *Analyzed) Close() error {
	start := time.Now()
	err := a.Child.Close()
	a.dur += time.Since(start)
	a.flush()
	return err
}

// flush accumulates the node's totals into per-operator-kind
// collectors — one registry touch per node per query, nothing per
// row.
func (a *Analyzed) flush() {
	if a.reg == nil {
		return
	}
	lbl := obs.L("op", a.kind())
	a.reg.SharedCounter("hazy_exec_rows_total",
		"rows produced per operator across analyzed queries", lbl...).Add(uint64(a.rows))
	a.reg.SharedHistogram("hazy_exec_op_micros",
		"inclusive operator wall time in microseconds across analyzed queries", 32, lbl...).ObserveDuration(a.dur)
}

// kind names the wrapped operator (its Describe prefix up to the
// opening parenthesis).
func (a *Analyzed) kind() string {
	desc, _ := a.Child.Describe()
	if i := strings.IndexByte(desc, '('); i > 0 {
		return desc[:i]
	}
	return desc
}

// Describe renders the wrapped node's description annotated with the
// observed row count and inclusive time, and hands the walk on to the
// next wrapper in the chain. Times render as integer microseconds
// ("time=123us") so golden harnesses can normalize them with one
// pattern.
func (a *Analyzed) Describe() (string, Operator) {
	desc, child := a.Child.Describe()
	return fmt.Sprintf("%s (rows=%d time=%dus)", desc, a.rows, a.dur.Microseconds()), child
}
