package vector

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary layout of an encoded vector:
//
//	byte 0:        tag (0 = dense, 1 = sparse)
//	bytes 1..4:    n = number of stored components (uint32 LE)
//	then (sparse): n × int32 indices, n × float64 values
//	     (dense):  n × float64 values
//
// All integers little-endian. The format is the on-disk record payload
// used by the storage layer for the H table's feature column.

const (
	tagDense  = 0
	tagSparse = 1
)

// EncodedSize returns the number of bytes Encode will produce for v.
func (v Vector) EncodedSize() int {
	n := len(v.Val)
	if v.IsDense() {
		return 5 + 8*n
	}
	return 5 + 4*n + 8*n
}

// Encode appends the binary encoding of v to dst and returns the
// extended slice.
func (v Vector) Encode(dst []byte) []byte {
	n := len(v.Val)
	if v.IsDense() {
		dst = append(dst, tagDense)
	} else {
		dst = append(dst, tagSparse)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	if !v.IsDense() {
		for _, i := range v.Idx {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(i))
		}
	}
	for _, x := range v.Val {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

// Decode parses a vector from the front of buf, returning the vector
// and the number of bytes consumed.
func Decode(buf []byte) (Vector, int, error) {
	if len(buf) < 5 {
		return Vector{}, 0, fmt.Errorf("vector: short buffer (%d bytes)", len(buf))
	}
	tag := buf[0]
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	off := 5
	var v Vector
	switch tag {
	case tagDense:
		if len(buf) < off+8*n {
			return Vector{}, 0, fmt.Errorf("vector: truncated dense body")
		}
		v.Val = make([]float64, n)
	case tagSparse:
		if len(buf) < off+12*n {
			return Vector{}, 0, fmt.Errorf("vector: truncated sparse body")
		}
		v.Idx = make([]int32, n)
		for k := 0; k < n; k++ {
			v.Idx[k] = int32(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
		v.Val = make([]float64, n)
	default:
		return Vector{}, 0, fmt.Errorf("vector: unknown tag %d", tag)
	}
	for k := 0; k < n; k++ {
		v.Val[k] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return v, off, nil
}
