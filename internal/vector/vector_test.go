package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDenseBasics(t *testing.T) {
	v := NewDense([]float64{1, -2, 3})
	if !v.IsDense() {
		t.Fatal("expected dense")
	}
	if v.Dim() != 3 || v.NNZ() != 3 {
		t.Fatalf("Dim=%d NNZ=%d", v.Dim(), v.NNZ())
	}
	if v.At(1) != -2 || v.At(5) != 0 {
		t.Fatalf("At wrong: %v %v", v.At(1), v.At(5))
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSparseBasics(t *testing.T) {
	v := NewSparse([]int32{2, 7, 9}, []float64{0.5, -1, 2})
	if v.IsDense() {
		t.Fatal("expected sparse")
	}
	if v.Dim() != 10 {
		t.Fatalf("Dim=%d want 10", v.Dim())
	}
	if v.At(7) != -1 || v.At(3) != 0 {
		t.Fatalf("At wrong")
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsUnsorted(t *testing.T) {
	v := NewSparse([]int32{5, 3}, []float64{1, 2})
	if err := v.Validate(); err != ErrUnsorted {
		t.Fatalf("want ErrUnsorted, got %v", err)
	}
	v = NewSparse([]int32{3, 3}, []float64{1, 2})
	if err := v.Validate(); err != ErrUnsorted {
		t.Fatalf("duplicate index: want ErrUnsorted, got %v", err)
	}
	v = NewSparse([]int32{1}, []float64{1, 2})
	if err := v.Validate(); err == nil {
		t.Fatal("length mismatch not caught")
	}
}

func TestFromMap(t *testing.T) {
	v := FromMap(map[int32]float64{4: 2, 1: -1, 9: 0})
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 2 {
		t.Fatalf("explicit zero kept: NNZ=%d", v.NNZ())
	}
	if v.At(1) != -1 || v.At(4) != 2 || v.At(9) != 0 {
		t.Fatalf("bad contents %v", v)
	}
}

func TestDotSparseDense(t *testing.T) {
	w := []float64{1, 2, 3, 4}
	s := NewSparse([]int32{0, 3}, []float64{2, -1})
	if got := Dot(w, s); got != 2*1-1*4 {
		t.Fatalf("sparse dot=%v", got)
	}
	d := NewDense([]float64{1, 1, 1, 1})
	if got := Dot(w, d); got != 10 {
		t.Fatalf("dense dot=%v", got)
	}
	// Components beyond len(w) contribute 0.
	s2 := NewSparse([]int32{2, 100}, []float64{1, 99})
	if got := Dot(w, s2); got != 3 {
		t.Fatalf("oob dot=%v", got)
	}
}

func TestAxpyGrows(t *testing.T) {
	w := []float64{1, 1}
	w = Axpy(w, 2, NewSparse([]int32{1, 4}, []float64{1, 3}))
	want := []float64{1, 3, 0, 0, 6}
	if len(w) != len(want) {
		t.Fatalf("len=%d", len(w))
	}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("w=%v want %v", w, want)
		}
	}
	w2 := Axpy([]float64{0, 0, 0}, -1, NewDense([]float64{1, 2, 3}))
	if w2[2] != -3 {
		t.Fatalf("dense axpy %v", w2)
	}
}

func TestNorms(t *testing.T) {
	v := NewDense([]float64{3, -4})
	if v.Norm(2) != 5 {
		t.Fatalf("l2=%v", v.Norm(2))
	}
	if v.Norm(1) != 7 {
		t.Fatalf("l1=%v", v.Norm(1))
	}
	if v.Norm(math.Inf(1)) != 4 {
		t.Fatalf("linf=%v", v.Norm(math.Inf(1)))
	}
	if got := v.Norm(3); !almostEqual(got, math.Pow(27+64, 1.0/3), 1e-12) {
		t.Fatalf("l3=%v", got)
	}
}

func TestHolderConjugate(t *testing.T) {
	if !math.IsInf(HolderConjugate(1), 1) {
		t.Fatal("conj(1) != inf")
	}
	if HolderConjugate(math.Inf(1)) != 1 {
		t.Fatal("conj(inf) != 1")
	}
	if HolderConjugate(2) != 2 {
		t.Fatal("conj(2) != 2")
	}
	q := HolderConjugate(4)
	if !almostEqual(1.0/4+1.0/q, 1, 1e-12) {
		t.Fatalf("conj(4)=%v", q)
	}
}

func TestNormalize(t *testing.T) {
	v := NewDense([]float64{2, 2})
	v.L1Normalize()
	if !almostEqual(v.Norm(1), 1, 1e-12) {
		t.Fatalf("l1 normalize: %v", v)
	}
	v2 := NewDense([]float64{3, 4})
	v2.L2Normalize()
	if !almostEqual(v2.Norm(2), 1, 1e-12) {
		t.Fatalf("l2 normalize: %v", v2)
	}
	z := NewDense([]float64{0, 0})
	z.L1Normalize() // must not NaN
	if z.Val[0] != 0 {
		t.Fatal("zero vector normalize changed values")
	}
}

func TestDiffNormUnequalLengths(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2}
	if got := DiffNorm(a, b, 2); got != 3 {
		t.Fatalf("diff=%v", got)
	}
	if got := DiffNorm(b, a, 1); got != 3 {
		t.Fatalf("diff=%v", got)
	}
}

func TestMaxNorm(t *testing.T) {
	vs := []Vector{
		NewDense([]float64{1, 1}),
		NewSparse([]int32{0}, []float64{-5}),
	}
	if got := MaxNorm(vs, 1); got != 5 {
		t.Fatalf("M=%v", got)
	}
}

func TestEqualRepresentationIndependent(t *testing.T) {
	a := NewDense([]float64{0, 2, 0, 3})
	b := NewSparse([]int32{1, 3}, []float64{2, 3})
	if !Equal(a, b) {
		t.Fatal("a != b")
	}
	c := NewSparse([]int32{1}, []float64{2})
	if Equal(a, c) {
		t.Fatal("a == c")
	}
}

func TestString(t *testing.T) {
	if s := NewSparse([]int32{3}, []float64{0.5}).String(); s != "(3:0.5)" {
		t.Fatalf("sparse string %q", s)
	}
	if s := NewDense([]float64{1, 2}).String(); s != "[1 2]" {
		t.Fatalf("dense string %q", s)
	}
}

func randomSparse(r *rand.Rand, dim, nnz int) Vector {
	m := map[int32]float64{}
	for len(m) < nnz {
		m[int32(r.Intn(dim))] = r.NormFloat64()
	}
	return FromMap(m)
}

// Property: Hölder's inequality |⟨w,v⟩| ≤ ‖w‖_p ‖v‖_q for conjugate
// pairs — the foundation of Lemma 3.1.
func TestHolderInequalityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pairs := [][2]float64{{1, math.Inf(1)}, {2, 2}, {math.Inf(1), 1}, {1.5, 3}}
	for trial := 0; trial < 500; trial++ {
		dim := 1 + r.Intn(40)
		w := make([]float64, dim)
		for i := range w {
			w[i] = r.NormFloat64()
		}
		v := randomSparse(r, dim, 1+r.Intn(dim))
		dot := math.Abs(Dot(w, v))
		for _, pq := range pairs {
			bound := NormDense(w, pq[0]) * v.Norm(pq[1])
			if dot > bound+1e-9 {
				t.Fatalf("Hölder violated: |dot|=%v > %v (p=%v q=%v) w=%v v=%v",
					dot, bound, pq[0], pq[1], w, v)
			}
		}
	}
}

// Property: Dot(w, v) computed sparse equals the dense expansion.
func TestDotSparseDenseAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(30)
		w := make([]float64, dim)
		for i := range w {
			w[i] = r.NormFloat64()
		}
		sv := randomSparse(r, dim, 1+r.Intn(dim))
		dense := make([]float64, dim)
		for k, i := range sv.Idx {
			dense[i] = sv.Val[k]
		}
		return almostEqual(Dot(w, sv), Dot(w, NewDense(dense)), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode round-trips exactly.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, dense bool) bool {
		r := rand.New(rand.NewSource(seed))
		var v Vector
		if dense {
			vals := make([]float64, r.Intn(50))
			for i := range vals {
				vals[i] = r.NormFloat64()
			}
			v = NewDense(vals)
		} else {
			v = randomSparse(r, 1000, r.Intn(50)+1)
		}
		buf := v.Encode(nil)
		if len(buf) != v.EncodedSize() {
			return false
		}
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if got.IsDense() != v.IsDense() {
			return false
		}
		return Equal(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
	if _, _, err := Decode([]byte{9, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad tag accepted")
	}
	v := NewSparse([]int32{1, 2}, []float64{1, 2})
	buf := v.Encode(nil)
	if _, _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated body accepted")
	}
	d := NewDense([]float64{1, 2, 3})
	dbuf := d.Encode(nil)
	if _, _, err := Decode(dbuf[:6]); err == nil {
		t.Fatal("truncated dense body accepted")
	}
}

func TestDecodeConsumesPrefixOnly(t *testing.T) {
	v := NewSparse([]int32{0, 5}, []float64{1, -1})
	buf := v.Encode(nil)
	buf = append(buf, 0xAB, 0xCD)
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf)-2 {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if !Equal(got, v) {
		t.Fatal("mismatch")
	}
}

func TestCloneIndependent(t *testing.T) {
	v := NewSparse([]int32{1}, []float64{5})
	c := v.Clone()
	c.Val[0] = 7
	if v.Val[0] != 5 {
		t.Fatal("clone aliases original")
	}
}

func TestScale(t *testing.T) {
	v := NewDense([]float64{1, -2})
	v.Scale(3)
	if v.Val[0] != 3 || v.Val[1] != -6 {
		t.Fatalf("scale: %v", v)
	}
}
