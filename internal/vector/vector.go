// Package vector provides sparse and dense feature vectors and the
// norm machinery (Hölder conjugates) that Hazy's watermark bounds are
// built on.
//
// A feature vector f represents a point in R^d. Hazy stores one per
// entity; the classifier computes eps = w·f − b. Lemma 3.1 of the paper
// bounds |⟨δw, f⟩| ≤ ‖δw‖_p ‖f‖_q for Hölder conjugates p,q, so the
// package exposes p-norms for p ∈ {1, 2, ∞} and the corpus constant
// M = max_t ‖f(t)‖_q.
package vector

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Vector is a sparse feature vector: parallel slices of strictly
// increasing component indices and their values. A dense vector is
// represented with Idx == nil and all components in Val.
//
// The zero value is the empty (all-zero) vector.
type Vector struct {
	// Idx holds the sorted component indices of the non-zero entries,
	// or nil for a dense vector.
	Idx []int32
	// Val holds the entry values; for a dense vector Val[i] is
	// component i, for a sparse vector Val[k] is component Idx[k].
	Val []float64
}

// ErrUnsorted is returned by Validate when sparse indices are not
// strictly increasing.
var ErrUnsorted = errors.New("vector: sparse indices not strictly increasing")

// NewDense returns a dense vector over the given values. The slice is
// used directly (not copied).
func NewDense(vals []float64) Vector { return Vector{Val: vals} }

// NewSparse returns a sparse vector with the given indices and values.
// The slices are used directly. Indices must be strictly increasing;
// call Validate to check.
func NewSparse(idx []int32, vals []float64) Vector { return Vector{Idx: idx, Val: vals} }

// FromMap builds a sparse vector from an index→value map, dropping
// explicit zeros.
func FromMap(m map[int32]float64) Vector {
	idx := make([]int32, 0, len(m))
	for i, v := range m {
		if v != 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	vals := make([]float64, len(idx))
	for k, i := range idx {
		vals[k] = m[i]
	}
	return Vector{Idx: idx, Val: vals}
}

// IsDense reports whether v uses the dense representation.
func (v Vector) IsDense() bool { return v.Idx == nil }

// NNZ returns the number of stored (possibly non-zero) components.
func (v Vector) NNZ() int { return len(v.Val) }

// Dim returns one past the largest component index referenced by v.
func (v Vector) Dim() int {
	if v.IsDense() {
		return len(v.Val)
	}
	if len(v.Idx) == 0 {
		return 0
	}
	return int(v.Idx[len(v.Idx)-1]) + 1
}

// Validate checks the representation invariants: matching slice
// lengths and strictly increasing sparse indices.
func (v Vector) Validate() error {
	if v.Idx != nil && len(v.Idx) != len(v.Val) {
		return fmt.Errorf("vector: len(Idx)=%d != len(Val)=%d", len(v.Idx), len(v.Val))
	}
	for k := 1; k < len(v.Idx); k++ {
		if v.Idx[k] <= v.Idx[k-1] {
			return ErrUnsorted
		}
	}
	return nil
}

// At returns component i of v.
func (v Vector) At(i int) float64 {
	if v.IsDense() {
		if i < len(v.Val) {
			return v.Val[i]
		}
		return 0
	}
	k := sort.Search(len(v.Idx), func(k int) bool { return v.Idx[k] >= int32(i) })
	if k < len(v.Idx) && v.Idx[k] == int32(i) {
		return v.Val[k]
	}
	return 0
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	var c Vector
	if v.Idx != nil {
		c.Idx = append([]int32(nil), v.Idx...)
	}
	c.Val = append([]float64(nil), v.Val...)
	return c
}

// Dot returns w·v where w is a dense weight slice. Components of v at
// or beyond len(w) contribute zero (the model simply has not seen that
// feature yet).
func Dot(w []float64, v Vector) float64 {
	var s float64
	if v.IsDense() {
		n := len(v.Val)
		if len(w) < n {
			n = len(w)
		}
		for i := 0; i < n; i++ {
			s += w[i] * v.Val[i]
		}
		return s
	}
	for k, i := range v.Idx {
		if int(i) < len(w) {
			s += w[i] * v.Val[k]
		}
	}
	return s
}

// Axpy computes w += a*v in place, returning w, which is grown if v
// references components beyond len(w).
func Axpy(w []float64, a float64, v Vector) []float64 {
	if d := v.Dim(); d > len(w) {
		grown := make([]float64, d)
		copy(grown, w)
		w = grown
	}
	if v.IsDense() {
		for i, x := range v.Val {
			w[i] += a * x
		}
		return w
	}
	for k, i := range v.Idx {
		w[i] += a * v.Val[k]
	}
	return w
}

// Scale multiplies every stored component of v by a, in place.
func (v Vector) Scale(a float64) {
	for i := range v.Val {
		v.Val[i] *= a
	}
}

// Norm returns the p-norm of v for p ∈ {1, 2} or p = math.Inf(1).
func (v Vector) Norm(p float64) float64 {
	switch {
	case p == 1:
		var s float64
		for _, x := range v.Val {
			s += math.Abs(x)
		}
		return s
	case p == 2:
		var s float64
		for _, x := range v.Val {
			s += x * x
		}
		return math.Sqrt(s)
	case math.IsInf(p, 1):
		var m float64
		for _, x := range v.Val {
			if a := math.Abs(x); a > m {
				m = a
			}
		}
		return m
	default:
		var s float64
		for _, x := range v.Val {
			s += math.Pow(math.Abs(x), p)
		}
		return math.Pow(s, 1/p)
	}
}

// NormDense returns the p-norm of a dense weight slice; same p
// handling as Vector.Norm.
func NormDense(w []float64, p float64) float64 {
	return Vector{Val: w}.Norm(p)
}

// DiffNorm returns ‖a−b‖_p for two dense slices of possibly different
// lengths (the shorter is zero-extended). It allocates nothing: Hazy
// calls it once per update to bound model drift (Lemma 3.1), so it is
// on the maintenance hot path.
func DiffNorm(a, b []float64, p float64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	at := func(s []float64, i int) float64 {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	switch {
	case p == 1:
		var s float64
		for i := 0; i < n; i++ {
			s += math.Abs(at(a, i) - at(b, i))
		}
		return s
	case p == 2:
		var s float64
		for i := 0; i < n; i++ {
			d := at(a, i) - at(b, i)
			s += d * d
		}
		return math.Sqrt(s)
	case math.IsInf(p, 1):
		var m float64
		for i := 0; i < n; i++ {
			if d := math.Abs(at(a, i) - at(b, i)); d > m {
				m = d
			}
		}
		return m
	default:
		var s float64
		for i := 0; i < n; i++ {
			s += math.Pow(math.Abs(at(a, i)-at(b, i)), p)
		}
		return math.Pow(s, 1/p)
	}
}

// HolderConjugate returns q such that 1/p + 1/q = 1. p must be ≥ 1;
// p=1 maps to +Inf and vice versa.
func HolderConjugate(p float64) float64 {
	switch {
	case p == 1:
		return math.Inf(1)
	case math.IsInf(p, 1):
		return 1
	default:
		return p / (p - 1)
	}
}

// L1Normalize scales v to unit 1-norm (no-op on the zero vector),
// the text-processing normalization the paper pairs with (p=∞, q=1).
func (v Vector) L1Normalize() {
	if n := v.Norm(1); n > 0 {
		v.Scale(1 / n)
	}
}

// L2Normalize scales v to unit 2-norm (no-op on the zero vector).
func (v Vector) L2Normalize() {
	if n := v.Norm(2); n > 0 {
		v.Scale(1 / n)
	}
}

// MaxNorm returns M = max over the vectors of ‖f‖_q — the corpus
// constant of Lemma 3.1.
func MaxNorm(vs []Vector, q float64) float64 {
	var m float64
	for _, v := range vs {
		if n := v.Norm(q); n > m {
			m = n
		}
	}
	return m
}

// String renders the vector compactly, e.g. "(3:0.1, 7:0.9)" for
// sparse and "[0.1 0.9]" for dense vectors.
func (v Vector) String() string {
	var b strings.Builder
	if v.IsDense() {
		b.WriteByte('[')
		for i, x := range v.Val {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%g", x)
		}
		b.WriteByte(']')
		return b.String()
	}
	b.WriteByte('(')
	for k, i := range v.Idx {
		if k > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%g", i, v.Val[k])
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether a and b represent the same mathematical
// vector (representation-independent).
func Equal(a, b Vector) bool {
	d := a.Dim()
	if bd := b.Dim(); bd > d {
		d = bd
	}
	for i := 0; i < d; i++ {
		if a.At(i) != b.At(i) {
			return false
		}
	}
	return true
}
