package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers per family, one
// line per sample, histograms as cumulative _bucket{le="..."} series
// plus _sum and _count. Output is deterministic: families sort by
// name, series by label list.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	lastName := ""
	for _, s := range samples {
		if s.Name != lastName {
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(s.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Type); err != nil {
				return err
			}
			lastName = s.Name
		}
		if err := writeSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

// writeSample renders one sample's series lines.
func writeSample(w io.Writer, s Sample) error {
	if s.Kind != KindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, promLabels(s.Labels, "", ""), s.Value)
		return err
	}
	// Power-of-two buckets: bucket i holds values in [2^i, 2^(i+1)),
	// so the cumulative upper bound of bucket i is 2^(i+1)-1. The
	// last bucket is unbounded (le="+Inf").
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		le := fmt.Sprintf("%d", uint64(1)<<(i+1)-1)
		if i == len(s.Buckets)-1 {
			le = "+Inf"
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, promLabels(s.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", s.Name, promLabels(s.Labels, "", ""), s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels, "", ""), cum)
	return err
}

// promLabels renders a {a="b",...} label block, appending an extra
// pair when extraName is non-empty; returns "" for no labels.
func promLabels(labels []Label, extraName, extraVal string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// FormatLabels renders a {a="b",...} label block, or "" when empty —
// the series identity used by Prometheus rendering and SHOW STATS.
func FormatLabels(labels []Label) string { return promLabels(labels, "", "") }

// escapeHelp escapes backslashes and newlines per the exposition
// format rules for HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteJSON renders the snapshot as a JSON array — the /statsz
// payload. Histogram samples carry their raw (non-cumulative)
// power-of-two buckets.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// MetricsHandler serves the Prometheus text rendering (the /metrics
// endpoint body).
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// JSONHandler serves the JSON rendering (the /statsz endpoint body).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
}
