// Package obs is the process-wide observability substrate: a
// dependency-free metrics registry of atomic counters, gauges, and
// power-of-two histograms, with a consistent snapshot API and
// Prometheus-text / JSON rendering (prom.go).
//
// The design generalizes the engine's original hand-rolled
// engineCounters: every collector is a fixed set of atomics, so the
// hot path is one atomic add with zero allocation and no locking.
// The registry itself is only locked at registration and snapshot
// time, never on the update path.
//
// Collectors are identified by name plus an ordered label list.
// Registering a (name, labels) pair that already exists REPLACES the
// previous collector: the owner of a subsystem (an engine attach, a
// view build) registers fresh collectors when it is constructed, so
// the registry always reflects the live instance. Func collectors
// (gauges computed at scrape time) follow the same rule, which keeps
// them from capturing dead objects across re-attach cycles.
package obs

import (
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates collector types in snapshots.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String renders the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name=value pair. Label order is significant and
// preserved: it is part of a collector's identity.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L is shorthand for building a label list at a call site.
func L(pairs ...string) []Label {
	ls := make([]Label, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		ls = append(ls, Label{Name: pairs[i], Value: pairs[i+1]})
	}
	return ls
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Max raises the gauge to v if v is larger (CAS loop, lock-free).
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-size power-of-two histogram: bucket i counts
// observations v with bits.Len64(v)-1 == i, i.e. v in [2^i, 2^(i+1)),
// with 0 and 1 both landing in bucket 0 and everything at or beyond
// 2^(n-1) clamped into the last bucket. Observe is a pair of atomic
// adds — no locks, no allocation.
type Histogram struct {
	buckets []atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	b := bits.Len64(v) - 1
	if b < 0 {
		b = 0
	}
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.Observe(uint64(us))
}

// NumBuckets returns the bucket count.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Bucket returns the current count of bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i].Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Count returns the total number of observations (sum of buckets).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sample is one collector's state in a Snapshot. For histograms,
// Buckets holds per-bucket (non-cumulative) counts and Value the
// total count; Sum holds the running value sum.
type Sample struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Kind   Kind    `json:"-"`
	Type   string  `json:"type"`
	Labels []Label `json:"labels,omitempty"`

	Value   int64    `json:"value"`
	Buckets []uint64 `json:"buckets,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
}

// collector is one registered metric instance.
type collector struct {
	name   string
	help   string
	kind   Kind
	labels []Label

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() int64 // computed gauge/counter; nil otherwise
}

// Registry holds the collectors. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	cols map[string]*collector // keyed by name + rendered labels
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{cols: make(map[string]*collector)}
}

// key builds the identity string for (name, labels).
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

// register installs c, replacing any previous collector with the same
// (name, labels) identity.
func (r *Registry) register(c *collector) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.cols[key(c.name, c.labels)] = c
	r.mu.Unlock()
}

// Counter registers (or replaces) and returns a counter. A nil
// registry still returns a usable, unregistered collector, so
// instrumented code never branches on whether metrics are wired.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(&collector{name: name, help: help, kind: KindCounter, labels: labels, counter: c})
	return c
}

// Gauge registers (or replaces) and returns a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(&collector{name: name, help: help, kind: KindGauge, labels: labels, gauge: g})
	return g
}

// Histogram registers (or replaces) and returns a power-of-two
// histogram with the given bucket count (clamped to [1, 64]).
func (r *Registry) Histogram(name, help string, buckets int, labels ...Label) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	if buckets > 64 {
		buckets = 64
	}
	h := &Histogram{buckets: make([]atomic.Uint64, buckets)}
	r.register(&collector{name: name, help: help, kind: KindHistogram, labels: labels, hist: h})
	return h
}

// SharedCounter is the get-or-create variant of Counter: when the
// (name, labels) identity already exists as a counter, the existing
// instance is returned instead of being replaced. Use it when many
// short-lived owners (e.g. analyzed query plans) accumulate into one
// collector.
func (r *Registry) SharedCounter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	if c, ok := r.cols[k]; ok && c.counter != nil {
		return c.counter
	}
	c := &Counter{}
	r.cols[k] = &collector{name: name, help: help, kind: KindCounter, labels: labels, counter: c}
	return c
}

// SharedHistogram is the get-or-create variant of Histogram. An
// existing histogram is returned regardless of its bucket count.
func (r *Registry) SharedHistogram(name, help string, buckets int, labels ...Label) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	if buckets > 64 {
		buckets = 64
	}
	if r == nil {
		return &Histogram{buckets: make([]atomic.Uint64, buckets)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	if c, ok := r.cols[k]; ok && c.hist != nil {
		return c.hist
	}
	h := &Histogram{buckets: make([]atomic.Uint64, buckets)}
	r.cols[k] = &collector{name: name, help: help, kind: KindHistogram, labels: labels, hist: h}
	return h
}

// GaugeFunc registers (or replaces) a gauge computed by fn at
// snapshot time. fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(&collector{name: name, help: help, kind: KindGauge, labels: labels, fn: fn})
}

// CounterFunc registers (or replaces) a counter computed by fn at
// snapshot time — for subsystems that already keep their own
// monotonic tallies (e.g. buffer-pool hit counts under the pool
// mutex).
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(&collector{name: name, help: help, kind: KindCounter, labels: labels, fn: fn})
}

// Snapshot returns every collector's current state, sorted by name
// then label list. Each sample is read atomically per field; the
// snapshot is internally consistent in the sense that histogram
// counts equal the sum of their bucket counts as captured.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	cols := make([]*collector, 0, len(r.cols))
	for _, c := range r.cols {
		cols = append(cols, c)
	}
	r.mu.Unlock()

	out := make([]Sample, 0, len(cols))
	for _, c := range cols {
		s := Sample{Name: c.name, Help: c.help, Kind: c.kind, Type: c.kind.String(), Labels: c.labels}
		switch {
		case c.fn != nil:
			s.Value = c.fn()
		case c.counter != nil:
			s.Value = int64(c.counter.Load())
		case c.gauge != nil:
			s.Value = c.gauge.Load()
		case c.hist != nil:
			s.Buckets = make([]uint64, c.hist.NumBuckets())
			var total uint64
			for i := range s.Buckets {
				s.Buckets[i] = c.hist.Bucket(i)
				total += s.Buckets[i]
			}
			s.Sum = c.hist.Sum()
			s.Value = int64(total)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return key("", out[i].Labels) < key("", out[j].Labels)
	})
	return out
}
