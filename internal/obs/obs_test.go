package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the power-of-two bucket edges:
// 0 and 1 land in bucket 0, each power of two opens the next bucket,
// and overflow clamps into the last bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", 4)
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 0}, // [0, 2)
		{2, 1}, {3, 1}, // [2, 4)
		{4, 2}, {7, 2}, // [4, 8)
		{8, 3}, {15, 3}, // [8, 16)
		{16, 3}, {1 << 40, 3}, // clamped overflow
	}
	for _, c := range cases {
		before := h.Bucket(c.bucket)
		h.Observe(c.v)
		if got := h.Bucket(c.bucket); got != before+1 {
			t.Fatalf("Observe(%d): bucket %d went %d -> %d, want +1", c.v, c.bucket, before, got)
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	var wantSum uint64
	for _, c := range cases {
		wantSum += c.v
	}
	if h.Sum() != wantSum {
		t.Fatalf("sum = %d, want %d", h.Sum(), wantSum)
	}
}

// TestGaugeMax pins the lock-free max-tracking used for the engine's
// maxbatch counter.
func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Max(3)
	g.Max(1)
	g.Max(7)
	g.Max(7)
	if g.Load() != 7 {
		t.Fatalf("max = %d, want 7", g.Load())
	}
}

// TestConcurrentHammer drives every collector type from many
// goroutines under -race and checks the totals are exact.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_gauge", "")
	m := r.Gauge("hammer_max", "")
	h := r.Histogram("hammer_hist", "", 8)

	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				m.Max(int64(seed))
				h.Observe(seed + uint64(i)%4)
			}
		}(uint64(w))
	}
	// Snapshot concurrently with the storm: must not race and must
	// stay internally consistent (checked in detail below).
	for i := 0; i < 50; i++ {
		r.Snapshot()
	}
	wg.Wait()

	if c.Load() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Load(), workers*perWorker)
	}
	if g.Load() != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", g.Load(), workers*perWorker)
	}
	if m.Load() != workers-1 {
		t.Fatalf("max gauge = %d, want %d", m.Load(), workers-1)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*perWorker)
	}
}

// TestSnapshotIsolation takes snapshots mid-storm and checks each one
// is internally consistent: a histogram sample's total equals the sum
// of its captured buckets (the invariant renderers rely on), and
// counters never move backwards across successive snapshots.
func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("storm_total", "")
	h := r.Histogram("storm_hist", "", 8)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(i % 100)
			}
		}()
	}

	var lastCount int64
	for i := 0; i < 200; i++ {
		for _, s := range r.Snapshot() {
			switch s.Name {
			case "storm_hist":
				var sum uint64
				for _, b := range s.Buckets {
					sum += b
				}
				if int64(sum) != s.Value {
					t.Errorf("snapshot %d: hist value %d != bucket sum %d", i, s.Value, sum)
				}
			case "storm_total":
				if s.Value < lastCount {
					t.Errorf("snapshot %d: counter went backwards %d -> %d", i, lastCount, s.Value)
				}
				lastCount = s.Value
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestRegisterReplaces pins the replace-on-reregister contract that
// engine re-attach depends on.
func TestRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x", "", L("view", "v")...)
	c1.Add(5)
	c2 := r.Counter("x", "", L("view", "v")...)
	if c1 == c2 {
		t.Fatal("re-registration returned the same collector")
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 0 {
		t.Fatalf("snapshot after replace = %+v, want single fresh counter", snap)
	}
	// Distinct labels are distinct collectors.
	r.Counter("x", "", L("view", "w")...)
	if got := len(r.Snapshot()); got != 2 {
		t.Fatalf("collectors = %d, want 2", got)
	}
}

// TestNilRegistry checks instrumented code can run unregistered.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("n", "")
	c.Inc()
	g := r.Gauge("n2", "")
	g.Set(3)
	h := r.Histogram("n3", "", 4)
	h.ObserveDuration(5 * time.Microsecond)
	r.GaugeFunc("n4", "", func() int64 { return 1 })
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
}

// TestWritePrometheus pins the exposition rendering: HELP/TYPE
// headers, label blocks, cumulative buckets with power-of-two le
// edges, +Inf terminal, and _sum/_count lines.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "things done", L("view", "v")...).Add(3)
	r.Gauge("b_depth", "queue depth").Set(-2)
	h := r.Histogram("c_hist", "sizes", 3)
	h.Observe(1) // bucket 0
	h.Observe(2) // bucket 1
	h.Observe(9) // clamped to bucket 2
	r.GaugeFunc("d_fn", "computed", func() int64 { return 42 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_total things done
# TYPE a_total counter
a_total{view="v"} 3
# HELP b_depth queue depth
# TYPE b_depth gauge
b_depth -2
# HELP c_hist sizes
# TYPE c_hist histogram
c_hist_bucket{le="1"} 1
c_hist_bucket{le="3"} 2
c_hist_bucket{le="+Inf"} 3
c_hist_sum 12
c_hist_count 3
# HELP d_fn computed
# TYPE d_fn gauge
d_fn 42
`
	if b.String() != want {
		t.Fatalf("prometheus rendering mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}
