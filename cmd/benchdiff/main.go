// Command benchdiff compares two benchmark JSON files (the
// BENCH_pr*.json artifacts emitted by TestStripedReorgEmitJSON via
// BENCH_JSON_OUT) and fails when the new numbers regress past a
// tolerance band. It is the CI tripwire for the committed perf
// trajectory: every PR lands a fresh BENCH file next to the previous
// one, and CI re-measures and diffs against the committed baseline.
//
// Comparison rules, keyed by metric name:
//
//   - keys ending in "_ns_op" are latencies: FAIL when
//     new > old × (1 + tolerance)
//   - keys ending in "_allocs_op" are per-op allocation counts (from
//     -benchmem): FAIL when new > old × (1 + tolerance) — the guard
//     that keeps the batched executor's alloc wins from eroding
//   - keys starting with "speedup_" are ratios: FAIL when
//     new < old × (1 - tolerance)
//   - every other numeric key is informational (cores, dim, entities)
//     and only reported
//
// Usage:
//
//	benchdiff [-tolerance 0.25] old.json new.json
//	benchdiff -all [-tolerance 0.25] [-skip f.json,...] [-override f.json=0.5,...] baselineDir freshDir
//
// -all diffs every committed BENCH_pr*.json in baselineDir against
// the file of the same name in freshDir, in one invocation — the CI
// bench job re-measures the whole trajectory into freshDir and runs
// one benchdiff instead of one per PR baseline. A baseline with no
// fresh counterpart fails (the trajectory must not silently lose
// coverage) unless listed in -skip (for baselines measured by a
// different CI job); -override widens or narrows the band per file
// (noisy percentile benchmarks run wider).
//
// Exit status 1 on any regression, 2 on usage or I/O errors. The
// default ±25% band absorbs scheduler noise on shared CI runners
// while still catching step-function regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	tol := flag.Float64("tolerance", 0.25, "allowed fractional regression before failing")
	all := flag.Bool("all", false, "diff every BENCH_pr*.json in baselineDir against its freshDir counterpart")
	skip := flag.String("skip", "", "comma-separated baseline basenames to skip in -all mode")
	override := flag.String("override", "", "comma-separated basename=tolerance per-file overrides in -all mode")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance 0.25] old.json new.json")
		fmt.Fprintln(os.Stderr, "       benchdiff -all [-tolerance 0.25] [-skip f.json,...] [-override f.json=0.5,...] baselineDir freshDir")
		os.Exit(2)
	}
	if *all {
		skips := map[string]bool{}
		for _, s := range strings.Split(*skip, ",") {
			if s = strings.TrimSpace(s); s != "" {
				skips[s] = true
			}
		}
		overrides := map[string]float64{}
		for _, s := range strings.Split(*override, ",") {
			if s = strings.TrimSpace(s); s == "" {
				continue
			}
			name, val, ok := strings.Cut(s, "=")
			tv, err := strconv.ParseFloat(val, 64)
			if !ok || err != nil {
				fmt.Fprintf(os.Stderr, "benchdiff: bad -override entry %q (want file.json=0.5)\n", s)
				os.Exit(2)
			}
			overrides[name] = tv
		}
		failed, err := diffAll(os.Stdout, flag.Arg(0), flag.Arg(1), *tol, skips, overrides)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if failed {
			fmt.Println("benchdiff: REGRESSION")
			os.Exit(1)
		}
		fmt.Println("benchdiff: within tolerance")
		return
	}
	oldM, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newM, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if diff(os.Stdout, oldM, newM, *tol) {
		fmt.Println("benchdiff: REGRESSION")
		os.Exit(1)
	}
	fmt.Println("benchdiff: within tolerance")
}

// diffAll diffs every BENCH_pr*.json baseline in baseDir against the
// same basename under freshDir. Skipped baselines are reported but
// not compared; a non-skipped baseline whose fresh counterpart is
// missing fails the run — losing a trajectory point is itself a
// regression.
func diffAll(w io.Writer, baseDir, freshDir string, tol float64, skips map[string]bool, overrides map[string]float64) (failed bool, err error) {
	baselines, err := filepath.Glob(filepath.Join(baseDir, "BENCH_pr*.json"))
	if err != nil {
		return false, err
	}
	if len(baselines) == 0 {
		return false, fmt.Errorf("no BENCH_pr*.json baselines in %s", baseDir)
	}
	sort.Strings(baselines)
	for _, path := range baselines {
		name := filepath.Base(path)
		if skips[name] {
			fmt.Fprintf(w, "==== %s: skipped\n", name)
			continue
		}
		ftol := tol
		if o, ok := overrides[name]; ok {
			ftol = o
		}
		fresh := filepath.Join(freshDir, name)
		if _, serr := os.Stat(fresh); serr != nil {
			fmt.Fprintf(w, "==== %s: FAIL (no fresh measurement at %s)\n", name, fresh)
			failed = true
			continue
		}
		oldM, lerr := load(path)
		if lerr != nil {
			return failed, lerr
		}
		newM, lerr := load(fresh)
		if lerr != nil {
			return failed, lerr
		}
		fmt.Fprintf(w, "==== %s (tolerance %.0f%%)\n", name, 100*ftol)
		if diff(w, oldM, newM, ftol) {
			failed = true
		}
	}
	return failed, nil
}

// diff reports every baseline key against the new measurements and
// returns whether any guarded key regressed past the tolerance band.
func diff(w io.Writer, oldM, newM map[string]any, tol float64) (failed bool) {
	keys := make([]string, 0, len(oldM))
	for k := range oldM {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, k := range keys {
		ov := oldM[k]
		nv, ok := newM[k]
		if !ok {
			fmt.Fprintf(w, "MISS %-20s old=%v (absent in new)\n", k, ov)
			failed = true
			continue
		}
		onum, oIsNum := ov.(float64)
		nnum, nIsNum := nv.(float64)
		if !oIsNum || !nIsNum {
			if ov != nv {
				fmt.Fprintf(w, "INFO %-20s old=%v new=%v\n", k, ov, nv)
			}
			continue
		}
		switch {
		case strings.HasSuffix(k, "_ns_op"), strings.HasSuffix(k, "_allocs_op"):
			// A zero baseline makes the ratio meaningless (Inf/NaN) —
			// possible for _allocs_op once a path reaches zero
			// allocations. Treat it explicitly: staying at zero is
			// ok, growing from zero is a regression, both reported
			// without a percentage.
			if onum == 0 {
				if nnum > 0 {
					fmt.Fprintf(w, "FAIL %-20s old=0 new=%.0f (regressed from zero baseline)\n", k, nnum)
					failed = true
				} else {
					fmt.Fprintf(w, "ok   %-20s old=0 new=0\n", k)
				}
				continue
			}
			if nnum > onum*(1+tol) {
				fmt.Fprintf(w, "FAIL %-20s old=%.0f new=%.0f (+%.1f%%, limit +%.0f%%)\n",
					k, onum, nnum, 100*(nnum/onum-1), 100*tol)
				failed = true
			} else {
				fmt.Fprintf(w, "ok   %-20s old=%.0f new=%.0f (%+.1f%%)\n", k, onum, nnum, 100*(nnum/onum-1))
			}
		case strings.HasPrefix(k, "speedup_"):
			// A zero (or negative) speedup baseline carries no
			// information — any non-negative new value passes rather
			// than tripping on a 0×(1−tol) comparison.
			if onum <= 0 {
				fmt.Fprintf(w, "ok   %-20s old=%.3f new=%.3f (zero baseline, informational)\n", k, onum, nnum)
				continue
			}
			if nnum < onum*(1-tol) {
				fmt.Fprintf(w, "FAIL %-20s old=%.3f new=%.3f (%.1f%%, limit -%.0f%%)\n",
					k, onum, nnum, 100*(nnum/onum-1), 100*tol)
				failed = true
			} else {
				fmt.Fprintf(w, "ok   %-20s old=%.3f new=%.3f (%+.1f%%)\n", k, onum, nnum, 100*(nnum/onum-1))
			}
		default:
			fmt.Fprintf(w, "info %-20s old=%v new=%v\n", k, ov, nv)
		}
	}
	return failed
}

// load reads one flat JSON object of metric name → value.
func load(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}
