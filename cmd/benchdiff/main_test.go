package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDiffAll covers the one-invocation trajectory mode: every
// committed baseline against its fresh counterpart, skips honored,
// per-file tolerance overrides applied, and a missing fresh file
// failing the run.
func TestDiffAll(t *testing.T) {
	write := func(dir, name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	newDirs := func() (string, string) {
		base, fresh := t.TempDir(), t.TempDir()
		write(base, "BENCH_pr1.json", `{"a_ns_op": 1000}`)
		write(base, "BENCH_pr2.json", `{"b_ns_op": 1000}`)
		write(base, "IGNORED.json", `{"c_ns_op": 1}`) // not a BENCH_pr* baseline
		return base, fresh
	}

	t.Run("all within tolerance", func(t *testing.T) {
		base, fresh := newDirs()
		write(fresh, "BENCH_pr1.json", `{"a_ns_op": 1100}`)
		write(fresh, "BENCH_pr2.json", `{"b_ns_op": 900}`)
		var b strings.Builder
		failed, err := diffAll(&b, base, fresh, 0.25, nil, nil)
		if err != nil || failed {
			t.Fatalf("failed=%v err=%v\n%s", failed, err, b.String())
		}
	})
	t.Run("one file regressed", func(t *testing.T) {
		base, fresh := newDirs()
		write(fresh, "BENCH_pr1.json", `{"a_ns_op": 2000}`)
		write(fresh, "BENCH_pr2.json", `{"b_ns_op": 1000}`)
		var b strings.Builder
		failed, err := diffAll(&b, base, fresh, 0.25, nil, nil)
		if err != nil || !failed {
			t.Fatalf("failed=%v err=%v, want regression\n%s", failed, err, b.String())
		}
	})
	t.Run("override widens the band", func(t *testing.T) {
		base, fresh := newDirs()
		write(fresh, "BENCH_pr1.json", `{"a_ns_op": 1800}`) // +80%: fails at 0.25, passes at 1.0
		write(fresh, "BENCH_pr2.json", `{"b_ns_op": 1000}`)
		var b strings.Builder
		failed, err := diffAll(&b, base, fresh, 0.25, nil, map[string]float64{"BENCH_pr1.json": 1.0})
		if err != nil || failed {
			t.Fatalf("failed=%v err=%v, override not applied\n%s", failed, err, b.String())
		}
	})
	t.Run("missing fresh counterpart fails", func(t *testing.T) {
		base, fresh := newDirs()
		write(fresh, "BENCH_pr1.json", `{"a_ns_op": 1000}`)
		var b strings.Builder
		failed, err := diffAll(&b, base, fresh, 0.25, nil, nil)
		if err != nil || !failed {
			t.Fatalf("failed=%v err=%v, want coverage-loss failure\n%s", failed, err, b.String())
		}
	})
	t.Run("skip excuses a missing counterpart", func(t *testing.T) {
		base, fresh := newDirs()
		write(fresh, "BENCH_pr1.json", `{"a_ns_op": 1000}`)
		var b strings.Builder
		failed, err := diffAll(&b, base, fresh, 0.25, map[string]bool{"BENCH_pr2.json": true}, nil)
		if err != nil || failed {
			t.Fatalf("failed=%v err=%v\n%s", failed, err, b.String())
		}
	})
	t.Run("no baselines is an error", func(t *testing.T) {
		var b strings.Builder
		if _, err := diffAll(&b, t.TempDir(), t.TempDir(), 0.25, nil, nil); err == nil {
			t.Fatal("want error for empty baseline dir")
		}
	})
}

func TestDiffRules(t *testing.T) {
	old := map[string]any{
		"bench":            "StripedReorg",
		"cores":            1.0,
		"stripes1_ns_op":   1000.0,
		"stripes4_ns_op":   400.0,
		"speedup_4stripes": 2.5,
	}
	cases := []struct {
		name string
		new  map[string]any
		fail bool
	}{
		{"identical", map[string]any{"bench": "StripedReorg", "cores": 1.0,
			"stripes1_ns_op": 1000.0, "stripes4_ns_op": 400.0, "speedup_4stripes": 2.5}, false},
		{"latency within band", map[string]any{"bench": "StripedReorg", "cores": 1.0,
			"stripes1_ns_op": 1240.0, "stripes4_ns_op": 400.0, "speedup_4stripes": 2.5}, false},
		{"latency regressed", map[string]any{"bench": "StripedReorg", "cores": 1.0,
			"stripes1_ns_op": 1300.0, "stripes4_ns_op": 400.0, "speedup_4stripes": 2.5}, true},
		{"speedup within band", map[string]any{"bench": "StripedReorg", "cores": 1.0,
			"stripes1_ns_op": 1000.0, "stripes4_ns_op": 400.0, "speedup_4stripes": 1.9}, false},
		{"speedup collapsed", map[string]any{"bench": "StripedReorg", "cores": 1.0,
			"stripes1_ns_op": 1000.0, "stripes4_ns_op": 400.0, "speedup_4stripes": 1.5}, true},
		{"missing key", map[string]any{"bench": "StripedReorg", "cores": 1.0,
			"stripes1_ns_op": 1000.0, "speedup_4stripes": 2.5}, true},
		{"informational drift only", map[string]any{"bench": "StripedReorg", "cores": 8.0,
			"stripes1_ns_op": 1000.0, "stripes4_ns_op": 400.0, "speedup_4stripes": 2.5}, false},
		{"improvement", map[string]any{"bench": "StripedReorg", "cores": 1.0,
			"stripes1_ns_op": 500.0, "stripes4_ns_op": 100.0, "speedup_4stripes": 5.0}, false},
	}
	allocOld := map[string]any{"fullscan_allocs_op": 100.0}
	allocCases := []struct {
		name string
		new  map[string]any
		fail bool
	}{
		{"allocs within band", map[string]any{"fullscan_allocs_op": 120.0}, false},
		{"allocs regressed", map[string]any{"fullscan_allocs_op": 130.0}, true},
		{"allocs improved", map[string]any{"fullscan_allocs_op": 30.0}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			if got := diff(&b, old, tc.new, 0.25); got != tc.fail {
				t.Errorf("diff = %v, want %v\n%s", got, tc.fail, b.String())
			}
		})
	}
	for _, tc := range allocCases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			if got := diff(&b, allocOld, tc.new, 0.25); got != tc.fail {
				t.Errorf("diff = %v, want %v\n%s", got, tc.fail, b.String())
			}
		})
	}

	// Zero baselines: the old ratio rules produced Inf/NaN
	// percentages and a confusing verdict; now the comparison is
	// explicit, with no +Inf% in the report.
	zeroOld := map[string]any{
		"fullscan_allocs_op": 0.0,
		"warm_ns_op":         0.0,
		"speedup_batched":    0.0,
	}
	zeroCases := []struct {
		name string
		new  map[string]any
		fail bool
	}{
		{"zero baselines held", map[string]any{
			"fullscan_allocs_op": 0.0, "warm_ns_op": 0.0, "speedup_batched": 1.2}, false},
		{"allocs grew from zero", map[string]any{
			"fullscan_allocs_op": 3.0, "warm_ns_op": 0.0, "speedup_batched": 1.2}, true},
		{"latency grew from zero", map[string]any{
			"fullscan_allocs_op": 0.0, "warm_ns_op": 900.0, "speedup_batched": 1.2}, true},
		{"zero speedup baseline is informational", map[string]any{
			"fullscan_allocs_op": 0.0, "warm_ns_op": 0.0, "speedup_batched": 0.0}, false},
	}
	for _, tc := range zeroCases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			got := diff(&b, zeroOld, tc.new, 0.25)
			if got != tc.fail {
				t.Errorf("diff = %v, want %v\n%s", got, tc.fail, b.String())
			}
			if out := b.String(); strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
				t.Errorf("report leaked Inf/NaN:\n%s", out)
			}
		})
	}
}
