// Command hazyd serves a Hazy classification view over TCP — the
// paper's deployment shape (App. B.1: Hazy as a separate process
// reached over sockets). It opens (or creates) a database with a
// papers/feedback/labeled_papers setup and speaks the internal/server
// text protocol, serving through the concurrent maintenance engine:
// reads come lock-free from published snapshots, writes are batched
// through a bounded queue.
//
// Usage:
//
//	hazyd [-addr :7437] [-db DIR] [-workers N] [-batch N] [-queue N] [-engine=false]
//
// Then, e.g. with nc:
//
//	ADD 1 efficient query optimization for relational databases
//	TRAIN 1 +1
//	LABEL 1
//	UNCERTAIN 5
//	STATS
//	QUIT
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, live
// sessions end, the engine drains its queued updates, the database
// closes, and a temporary database directory is removed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	root "hazy"
	"hazy/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hazyd:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		addr      = flag.String("addr", ":7437", "listen address")
		dbDir     = flag.String("db", "", "database directory (default: temp, removed on exit)")
		workers   = flag.Int("workers", 0, "serving parallelism (GOMAXPROCS; 0 = all cores)")
		batch     = flag.Int("batch", 0, "max updates group-applied per maintenance step (0 = engine default)")
		queue     = flag.Int("queue", 0, "bounded update-queue size (0 = engine default)")
		useEngine = flag.Bool("engine", true, "serve through the concurrent maintenance engine (false: legacy single-mutex)")
	)
	flag.Parse()
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	dir := *dbDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "hazyd-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	db, err := root.Open(dir)
	if err != nil {
		return err
	}
	defer db.Close()

	papers, err := db.EntityTableByName("papers")
	if err != nil {
		if papers, err = db.CreateEntityTable("papers", "title"); err != nil {
			return err
		}
	}
	feedback, err := db.ExampleTableByName("feedback")
	if err != nil {
		if feedback, err = db.CreateExampleTable("feedback"); err != nil {
			return err
		}
	}
	view, err := db.CreateClassificationView(root.ViewSpec{
		Name:     "labeled_papers",
		Entities: "papers",
		Examples: "feedback",
	})
	if err != nil {
		return err
	}

	var srv *server.Server
	mode := "engine"
	if *useEngine {
		eng, err := db.Engine(view, root.EngineOptions{MaxBatch: *batch, QueueSize: *queue})
		if err != nil {
			return err
		}
		// Drain queued updates before the deferred db.Close; a failed
		// async write surfacing at the final drain is still an error.
		defer func() {
			if cerr := eng.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		srv = server.NewEngine(eng)
	} else {
		mode = "mutex"
		srv = server.New(view, papers, feedback)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Printf("hazyd: %s — shutting down\n", sig)
		l.Close()
		srv.Close()
	}()

	fmt.Printf("hazyd: serving view %q on %s (db: %s, mode: %s, %d cores)\n",
		view.Name(), l.Addr(), dir, mode, runtime.GOMAXPROCS(0))
	if err := srv.Serve(l); err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	fmt.Println("hazyd: draining and closing")
	return nil
}
