// Command hazyd serves a Hazy catalog over TCP — the paper's
// deployment shape (App. B.1: Hazy as a separate process reached
// over sockets). It opens (or creates) a database, bootstraps a
// default papers/feedback/labeled_papers stack when the default view
// is missing, and speaks the internal/server text protocol: SQL
// statements against the whole catalog plus the view-qualified
// legacy verbs. Views with a maintenance engine attached are served
// concurrently — reads lock-free from published snapshots, writes
// batched through a bounded queue — and clients can attach engines
// to further views at runtime with the SQL statement
// ATTACH ENGINE TO <view>.
//
// Usage:
//
//	hazyd [-addr :7437] [-db DIR] [-view labeled_papers] [-workers N] [-batch N] [-queue N] [-engine=false]
//	      [-fsync always|off] [-wal-segment BYTES] [-partitions P] [-maint-workers N] [-exec-batch N]
//	      [-metrics ADDR] [-ship ADDR] [-replica-of HOST:PORT]
//
// -maint-workers N sizes the catalog's shared maintenance pool — the
// single scheduler that runs every attached engine's batch
// application and every striped view's per-stripe tasks, so total
// maintenance goroutines stay O(N) however many views are attached
// (default: GOMAXPROCS).
//
// -ship ADDR serves the replication stream (WAL log shipping)
// alongside the protocol listener; any number of replicas can
// bootstrap from and tail it. -replica-of HOST:PORT boots this
// process as a read-only replica of the primary shipping there: a
// fresh -db directory seeds itself from the primary's checkpoint
// image (retrying for ~30s so both sides can start together), the
// stream is tailed continuously with reconnect-and-resume, reads are
// served locally from republished view snapshots, and every mutation
// is rejected until PROMOTE (SQL or verb) turns the replica into a
// writable primary at the exact position it applied to. Replica mode
// skips the default bootstrap stack and -engine (the applier owns
// maintenance).
//
// -metrics ADDR starts an HTTP observability server alongside the
// TCP protocol listener: GET /metrics serves the process metrics
// registry in Prometheus text exposition format, GET /statsz serves
// the same snapshot as JSON, and /debug/pprof/* exposes the standard
// net/http/pprof profiling handlers. Use -metrics 127.0.0.1:0 to
// bind an ephemeral local port; the chosen address is printed as
// "hazyd: metrics on ADDR".
//
// -partitions P stripes every Hazy-strategy view declared without an
// explicit PARTITIONS clause (the bootstrap view included, whatever
// its architecture) into P hash partitions: reorganization, batched
// maintenance, and rescans then run across the stripes in parallel,
// so reorganization cost — and for on-disk layouts the per-event
// write stall — scales with the stripe size instead of the view
// size.
//
// The server opens its database in full-durability mode by default
// (-fsync always): every acknowledged write is covered by a write-
// ahead-log fsync — group-committed, so an engine batch pays one
// fsync — and a kill -9 at any point recovers to a prefix of the
// acknowledged writes on restart. -fsync off trades power-loss
// durability for throughput (process crashes still recover cleanly).
// The WAL rotates segments at -wal-segment bytes, checkpointing the
// catalog at each rotation; clients can force one with the SQL
// statement CHECKPOINT.
//
// Then, e.g. with nc:
//
//	ADD 1 efficient query optimization for relational databases
//	TRAIN 1 +1
//	LABEL 1
//	SQL SELECT COUNT(*) FROM labeled_papers WHERE class = 1
//	SQL CREATE TABLE docs (id BIGINT, body TEXT) KEY id
//	UNCERTAIN 5
//	STATS
//	QUIT
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, live
// sessions end, the database closes — draining every attached
// engine's queued updates and persisting the catalog manifest (tables
// AND view declarations, so a restart re-serves the same views) —
// and a temporary database directory is removed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	root "hazy"
	"hazy/internal/exec"
	"hazy/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hazyd:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		addr      = flag.String("addr", ":7437", "listen address")
		dbDir     = flag.String("db", "", "database directory (default: temp, removed on exit)")
		viewName  = flag.String("view", "labeled_papers", "default view for unqualified verbs")
		workers   = flag.Int("workers", 0, "serving parallelism (GOMAXPROCS; 0 = all cores)")
		batch     = flag.Int("batch", 0, "max updates group-applied per maintenance step (0 = engine default)")
		queue     = flag.Int("queue", 0, "bounded update-queue size (0 = engine default)")
		useEngine = flag.Bool("engine", true, "attach a concurrent maintenance engine to the default view (false: mutex-serialized statements)")
		fsync     = flag.String("fsync", "always", "WAL commit policy: always (acknowledged writes survive power loss; engines group-commit one fsync per batch) or off (survive process crash only)")
		walSeg    = flag.Int64("wal-segment", 4<<20, "WAL segment size in bytes; each rotation triggers a catalog checkpoint")
		parts     = flag.Int("partitions", 0, "stripe count for views declared without PARTITIONS (hash-partitioned parallel maintenance; 0/1 = unstriped)")
		maintW    = flag.Int("maint-workers", 0, "shared maintenance-pool size: one scheduler runs every attached engine's batches and every striped view's stripe tasks (0 = GOMAXPROCS)")
		execBatch = flag.Int("exec-batch", 0, "rows per executor batch on the SQL read path (0 = default 1024; 1 = row-at-a-time, for debugging)")
		metrics   = flag.String("metrics", "", "HTTP observability listen address serving /metrics (Prometheus text), /statsz (JSON), /debug/pprof/* (empty = disabled)")
		ship      = flag.String("ship", "", "serve the replication stream (WAL log shipping) on this address, e.g. :7438 (empty = disabled)")
		replicaOf = flag.String("replica-of", "", "serve as a read-only replica of the primary shipping at this address; writes are rejected until PROMOTE")
	)
	flag.Parse()
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}
	if *execBatch > 0 {
		exec.SetBatchSize(*execBatch)
	}

	dir := *dbDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "hazyd-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	opts := root.OpenOptions{
		Fsync:             *fsync,
		WALSegmentBytes:   *walSeg,
		DefaultPartitions: *parts,
		MaintWorkers:      *maintW,
	}
	if *replicaOf != "" {
		// Seed a fresh directory from the primary's checkpoint image
		// (a directory that already holds a database resumes instead).
		// The primary may still be booting — retry the initial fetch.
		if err := bootstrapReplica(dir, *replicaOf, opts); err != nil {
			return err
		}
	}
	db, err := root.OpenWith(dir, opts)
	if err != nil {
		return err
	}
	// Close drains every attached engine, persists the manifest, and
	// closes storage; a failed async write surfacing at the final
	// drain is still an error.
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	if *replicaOf != "" {
		// Replica mode: no local bootstrap stack (the catalog comes
		// from the stream), no engine (the applier owns maintenance),
		// and mutations are rejected until PROMOTE. A stream error is
		// logged, not fatal — the replica keeps serving what it has.
		if err := db.StartReplica(*replicaOf, func(format string, args ...any) {
			fmt.Printf("hazyd: "+format+"\n", args...)
		}); err != nil {
			return err
		}
	}

	// Bootstrap: recovered catalogs re-declare their views from the
	// manifest; a fresh directory gets the default stack.
	if *replicaOf == "" {
		if err := bootstrapDefaultStack(db, *viewName); err != nil {
			return err
		}
	}
	mode := "mutex"
	if *replicaOf != "" {
		mode = "replica"
	} else if *useEngine {
		mode = "engine"
		if _, err := db.AttachEngine(*viewName, root.EngineOptions{
			MaxBatch: *batch, QueueSize: *queue,
		}); err != nil {
			return err
		}
	}
	if *ship != "" {
		shipper, err := db.StartShipping(*ship)
		if err != nil {
			return err
		}
		fmt.Printf("hazyd: shipping WAL on %s\n", shipper.Addr())
	}
	srv := server.New(db, server.Options{DefaultView: *viewName})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	// Optional HTTP observability plane: the metrics registry in
	// Prometheus text and JSON, plus the stock pprof handlers. It
	// listens on its own socket so scrapes never contend with the
	// protocol listener, and closes with the process.
	var msrv *http.Server
	if *metrics != "" {
		ml, err := net.Listen("tcp", *metrics)
		if err != nil {
			l.Close()
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", db.Metrics().MetricsHandler())
		mux.Handle("/statsz", db.Metrics().JSONHandler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		msrv = &http.Server{Handler: mux}
		go msrv.Serve(ml)
		fmt.Printf("hazyd: metrics on %s (/metrics /statsz /debug/pprof)\n", ml.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Printf("hazyd: %s — shutting down\n", sig)
		l.Close()
		srv.Close()
	}()
	if msrv != nil {
		defer msrv.Close()
	}

	fmt.Printf("hazyd: serving catalog [%s] on %s (db: %s, default view: %s, mode: %s, fsync: %s, %d cores)\n",
		strings.Join(db.Views(), " "), l.Addr(), dir, *viewName, mode, *fsync, runtime.GOMAXPROCS(0))
	if err := srv.Serve(l); err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	fmt.Println("hazyd: draining and closing")
	return nil
}

// bootstrapDefaultStack creates the default papers/feedback/view stack
// when the default view is missing. Recovered catalogs re-declare
// their views from the manifest and skip this.
func bootstrapDefaultStack(db *root.DB, viewName string) error {
	if _, err := db.View(viewName); err == nil {
		return nil
	}
	if _, err := db.EntityTableByName("papers"); err != nil {
		if _, err := db.CreateEntityTable("papers", "title"); err != nil {
			return err
		}
	}
	if _, err := db.ExampleTableByName("feedback"); err != nil {
		if _, err := db.CreateExampleTable("feedback"); err != nil {
			return err
		}
	}
	_, err := db.CreateClassificationView(root.ViewSpec{
		Name:     viewName,
		Entities: "papers",
		Examples: "feedback",
	})
	return err
}

// bootstrapReplica fetches the primary's checkpoint image into dir,
// retrying the initial connection for up to ~30s so a replica can be
// started alongside (or slightly before) its primary.
func bootstrapReplica(dir, primary string, opts root.OpenOptions) error {
	var err error
	for deadline := time.Now().Add(30 * time.Second); ; {
		if err = root.BootstrapReplica(dir, primary, opts); err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bootstrap from %s: %w", primary, err)
		}
		fmt.Printf("hazyd: bootstrap from %s: %v — retrying\n", primary, err)
		time.Sleep(500 * time.Millisecond)
	}
}
