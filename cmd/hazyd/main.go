// Command hazyd serves a Hazy classification view over TCP — the
// paper's deployment shape (App. B.1: Hazy as a separate process
// reached over sockets). It opens (or creates) a database with a
// papers/feedback/labeled_papers setup and speaks the internal/server
// text protocol.
//
// Usage:
//
//	hazyd [-addr :7437] [-db DIR]
//
// Then, e.g. with nc:
//
//	ADD 1 efficient query optimization for relational databases
//	TRAIN 1 +1
//	LABEL 1
//	UNCERTAIN 5
//	QUIT
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	root "hazy"
	"hazy/internal/server"
)

func main() {
	var (
		addr  = flag.String("addr", ":7437", "listen address")
		dbDir = flag.String("db", "", "database directory (default: temp)")
	)
	flag.Parse()

	dir := *dbDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "hazyd-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	}
	db, err := root.Open(dir)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	papers, err := db.EntityTableByName("papers")
	if err != nil {
		if papers, err = db.CreateEntityTable("papers", "title"); err != nil {
			fatal(err)
		}
	}
	feedback, err := db.ExampleTableByName("feedback")
	if err != nil {
		if feedback, err = db.CreateExampleTable("feedback"); err != nil {
			fatal(err)
		}
	}
	view, err := db.CreateClassificationView(root.ViewSpec{
		Name:     "labeled_papers",
		Entities: "papers",
		Examples: "feedback",
	})
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("hazyd: serving view %q on %s (db: %s)\n", view.Name(), l.Addr(), dir)
	if err := server.New(view, papers, feedback).Serve(l); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hazyd:", err)
	os.Exit(1)
}
