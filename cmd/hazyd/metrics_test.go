package main

// End-to-end scrape test: build the hazyd binary, boot it with the
// observability plane on an ephemeral port, drive a few protocol
// writes, then GET /metrics and validate the body with a small
// Prometheus text-exposition parser (promParse below). /statsz and
// /debug/pprof/ are probed too. No Prometheus dependency: the parser
// checks exactly the invariants a scraper relies on — TYPE headers,
// sample syntax, and cumulative histogram series ending in +Inf.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// promSample is one parsed exposition line: name{labels} value.
type promSample struct {
	Name   string
	Labels string // raw {...} block, "" when absent
	Value  float64
}

var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+]+)$`)

// promParse validates a Prometheus text-format body and returns its
// samples. It enforces: every sample line matches the exposition
// grammar, every sample's family has a preceding # TYPE header, and
// every histogram family's _bucket series is cumulative with a final
// le="+Inf" bucket equal to its _count.
func promParse(t *testing.T, body string) []promSample {
	t.Helper()
	types := map[string]string{} // family -> type
	var samples []promSample
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE header %q", ln+1, line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
		if _, ok := types[family]; !ok {
			if _, ok := types[m[1]]; !ok {
				t.Fatalf("line %d: sample %q precedes its # TYPE header", ln+1, m[1])
			}
		}
		samples = append(samples, promSample{Name: m[1], Labels: m[2], Value: v})
	}
	// Histogram invariants: per series, buckets are cumulative and the
	// +Inf bucket equals _count.
	last := map[string]float64{}  // series (sans le) -> previous cumulative
	inf := map[string]float64{}   // series -> +Inf bucket
	count := map[string]float64{} // series -> _count
	leRe := regexp.MustCompile(`,?le="[^"]*"`)
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			key := strings.TrimSuffix(s.Name, "_bucket") + leRe.ReplaceAllString(s.Labels, "")
			if s.Value < last[key] {
				t.Fatalf("histogram %s: non-cumulative buckets", key)
			}
			last[key] = s.Value
			if strings.Contains(s.Labels, `le="+Inf"`) {
				inf[key] = s.Value
			}
		case strings.HasSuffix(s.Name, "_count"):
			count[strings.TrimSuffix(s.Name, "_count")+s.Labels] = s.Value
		}
	}
	for key, c := range count {
		if b, ok := inf[key]; ok && b != c {
			t.Fatalf("histogram %s: +Inf bucket %v != _count %v", key, b, c)
		}
	}
	return samples
}

// TestMetricsEndpoint boots hazyd -metrics, writes through the TCP
// protocol, and scrapes /metrics, /statsz, and /debug/pprof/.
func TestMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the hazyd binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "hazyd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-metrics", "127.0.0.1:0",
		"-fsync", "off", "-db", filepath.Join(dir, "db"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The boot banner prints the metrics address first, then the
	// protocol address: "hazyd: metrics on ADDR (..." and
	// "hazyd: serving catalog [...] on ADDR (...".
	var metricsAddr, serveAddr string
	sc := bufio.NewScanner(stdout)
	for (metricsAddr == "" || serveAddr == "") && sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "hazyd: metrics on "); ok {
			metricsAddr, _, _ = strings.Cut(rest, " ")
		}
		if _, rest, ok := strings.Cut(line, "] on "); ok {
			serveAddr, _, _ = strings.Cut(rest, " ")
		}
	}
	if metricsAddr == "" || serveAddr == "" {
		t.Fatalf("did not observe boot banner (metrics=%q serve=%q)", metricsAddr, serveAddr)
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	// Generate some signal: adds and trains through the default view's
	// engine, then a read.
	conn, err := net.Dial("tcp", serveAddr)
	if err != nil {
		t.Fatal(err)
	}
	cw := bufio.NewWriter(conn)
	cr := bufio.NewReader(conn)
	roundtrip := func(verb string) string {
		t.Helper()
		fmt.Fprintf(cw, "%s\n", verb)
		cw.Flush()
		line, err := cr.ReadString('\n')
		if err != nil {
			t.Fatalf("%s: %v", verb, err)
		}
		return strings.TrimSpace(line)
	}
	for i := 1; i <= 4; i++ {
		roundtrip(fmt.Sprintf("ADD %d exposition test document %d", i, i))
		roundtrip(fmt.Sprintf("TRAIN %d %+d", i, 1-2*(i%2)))
	}
	roundtrip("SQL SELECT COUNT(*) FROM labeled_papers WHERE class = 1")
	conn.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + metricsAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	samples := promParse(t, get("/metrics"))
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] += s.Value
	}
	for _, want := range []string{
		"hazy_engine_ops_applied_total", "hazy_engine_trains_total",
		"hazy_engine_batch_size_count", "hazy_engine_queue_depth",
		"hazy_view_reorgs_total", "hazy_wal_appended_bytes_total",
		"hazy_pool_hits_total", "hazy_pool_resident_pages",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("/metrics missing family %s", want)
		}
	}
	if byName["hazy_engine_trains_total"] < 4 {
		t.Errorf("hazy_engine_trains_total = %v, want >= 4", byName["hazy_engine_trains_total"])
	}
	if byName["hazy_wal_appended_bytes_total"] == 0 {
		t.Error("hazy_wal_appended_bytes_total = 0, want > 0")
	}

	// /statsz is the same snapshot as JSON.
	var statsz []struct {
		Name  string `json:"name"`
		Value uint64 `json:"value"`
	}
	if err := json.Unmarshal([]byte(get("/statsz")), &statsz); err != nil {
		t.Fatalf("/statsz: %v", err)
	}
	if len(statsz) == 0 {
		t.Fatal("/statsz: empty snapshot")
	}

	// pprof is mounted.
	if body := get("/debug/pprof/cmdline"); !strings.Contains(body, "hazyd") {
		t.Errorf("/debug/pprof/cmdline does not mention the binary: %q", body)
	}

	// Graceful shutdown.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("hazyd exited with error: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("hazyd did not exit after SIGTERM")
	}
}
