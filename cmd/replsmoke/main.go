// Command replsmoke is the replication smoke harness CI runs against
// real processes: it boots a primary hazyd shipping its WAL plus two
// replica hazyds, drives mixed DDL/ADD/TRAIN traffic over the text
// protocol, kill -9s one replica mid-stream and restarts it, then
// requires every replica to converge to byte-identical SELECT results
// within a bounded drain window. Apply throughput and the killed
// replica's recovery time are emitted as a flat benchmark JSON
// (informational keys) for cmd/benchdiff.
//
// Usage:
//
//	replsmoke -hazyd ./hazyd [-entities 300] [-out BENCH_pr7.json]
//
// Exit status 1 on divergence, unbounded lag, or a dead process.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"hazy/internal/server"
)

var goldenQueries = []string{
	"SELECT COUNT(*) FROM papers",
	"SELECT COUNT(*) FROM feedback",
	"SELECT id, title FROM papers ORDER BY id",
	"SELECT id, label FROM feedback ORDER BY id",
	"SELECT COUNT(*) FROM labeled_papers WHERE class = 1",
	"SELECT id, class FROM labeled_papers ORDER BY id",
	"SELECT id, body FROM notes ORDER BY id",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replsmoke:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		hazyd    = flag.String("hazyd", "", "path to a prebuilt hazyd binary (required)")
		entities = flag.Int("entities", 300, "entities (and training examples) to stream")
		out      = flag.String("out", "", "write benchmark JSON here (flat map for cmd/benchdiff)")
	)
	flag.Parse()
	if *hazyd == "" {
		return fmt.Errorf("-hazyd is required (go build -o hazyd ./cmd/hazyd)")
	}

	work, err := os.MkdirTemp("", "replsmoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	primAddr, shipAddr := freeAddr(), freeAddr()
	rep1Addr, rep2Addr := freeAddr(), freeAddr()
	procs := map[string]*exec.Cmd{}
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill() //nolint:errcheck
				p.Wait()         //nolint:errcheck
			}
		}
	}()
	launch := func(name string, args ...string) error {
		cmd := exec.Command(*hazyd, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("start %s: %w", name, err)
		}
		procs[name] = cmd
		return nil
	}
	rep1Args := []string{
		"-addr", rep1Addr, "-replica-of", shipAddr,
		"-db", filepath.Join(work, "rep1"), "-fsync", "off",
	}
	if err := launch("primary",
		"-addr", primAddr, "-ship", shipAddr,
		"-db", filepath.Join(work, "prim"), "-fsync", "off", "-engine=false",
	); err != nil {
		return err
	}
	if err := launch("rep1", rep1Args...); err != nil {
		return err
	}
	if err := launch("rep2",
		"-addr", rep2Addr, "-replica-of", shipAddr,
		"-db", filepath.Join(work, "rep2"), "-fsync", "off",
	); err != nil {
		return err
	}

	prim, err := dialRetry(primAddr)
	if err != nil {
		return fmt.Errorf("dial primary: %w", err)
	}
	defer prim.Close()

	// Both replicas must be attached to the stream before traffic
	// starts, so the run exercises continuous replay — not just the
	// bootstrap image.
	if err := waitConnections(prim, 2, 30*time.Second); err != nil {
		return err
	}

	// Mixed traffic, phase 1: entities + examples through the verbs,
	// DDL + plain-table inserts through SQL, a checkpoint mid-stream
	// (the primary prunes its WAL under the live followers).
	title := func(id int) string {
		if id%2 == 0 {
			return fmt.Sprintf("relational database query optimization paper %d", id)
		}
		return fmt.Sprintf("operating system kernel scheduling notes %d", id)
	}
	if _, err := prim.Exec("CREATE TABLE notes (id BIGINT, body TEXT) KEY id"); err != nil {
		return err
	}
	half := *entities / 2
	start := time.Now()
	feed := func(lo, hi int) error {
		for id := lo; id < hi; id++ {
			if _, err := prim.Do(fmt.Sprintf("ADD %d %s", id, title(id))); err != nil {
				return err
			}
			if _, err := prim.Do(fmt.Sprintf("TRAIN %d %+d", id, 1-2*(id%2))); err != nil {
				return err
			}
			if id%50 == 0 {
				if _, err := prim.Exec(fmt.Sprintf("INSERT INTO notes VALUES (%d, 'note %d')", id, id)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := feed(1, half); err != nil {
		return err
	}
	if _, err := prim.Exec("CHECKPOINT"); err != nil {
		return err
	}

	// Kill -9 one replica mid-stream, keep the traffic flowing, then
	// restart it over the same directory: recovery replays its local
	// journal of shipped records and the stream resumes at the cursor.
	fmt.Println("replsmoke: kill -9 rep1 mid-stream")
	if err := procs["rep1"].Process.Kill(); err != nil {
		return err
	}
	procs["rep1"].Wait() //nolint:errcheck
	delete(procs, "rep1")
	if err := feed(half, *entities+1); err != nil {
		return err
	}
	restart := time.Now()
	if err := launch("rep1", rep1Args...); err != nil {
		return err
	}

	// Convergence: every replica must serve byte-identical results for
	// the golden query set within the drain window — the bounded-lag
	// assertion.
	want, err := golden(prim)
	if err != nil {
		return err
	}
	recovery := time.Duration(0)
	for _, r := range []struct{ name, addr string }{{"rep1", rep1Addr}, {"rep2", rep2Addr}} {
		d, err := converge(r.addr, want, 60*time.Second)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Printf("replsmoke: %s converged in %v\n", r.name, d)
		if r.name == "rep1" {
			recovery = time.Since(restart)
		}
	}

	// Apply throughput from the replica's own counters.
	rc, err := dialRetry(rep2Addr)
	if err != nil {
		return err
	}
	defer rc.Close()
	statsLine, err := rc.Do("STATS replica")
	if err != nil {
		return err
	}
	fmt.Println("replsmoke: rep2", statsLine)
	applied := statValue(statsLine, "apply_records_total")
	elapsed := time.Since(start).Seconds()

	fmt.Printf("replsmoke: PASS — %d entities, %d records applied, rep1 recovered in %v\n",
		*entities, applied, recovery.Round(time.Millisecond))
	if *out != "" {
		bench := map[string]any{
			"replsmoke_entities":  *entities,
			"replsmoke_replicas":  2,
			"apply_rate_rec_s":    float64(applied) / elapsed,
			"lag_recovery_ms":     float64(recovery.Milliseconds()),
			"apply_records_total": applied,
		}
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("replsmoke: wrote", *out)
	}
	return nil
}

// golden renders the golden query set over one connection.
func golden(c *server.Client) (string, error) {
	var b strings.Builder
	for _, q := range goldenQueries {
		res, err := c.Exec(q)
		if err != nil {
			return "", fmt.Errorf("%q: %w", q, err)
		}
		fmt.Fprintf(&b, "-- %s\n", q)
		for _, row := range res.Rows {
			fmt.Fprintln(&b, strings.Join(row, "|"))
		}
	}
	return b.String(), nil
}

// converge polls addr until its golden results byte-match want.
func converge(addr, want string, window time.Duration) (time.Duration, error) {
	start := time.Now()
	deadline := start.Add(window)
	var got string
	var lastErr error
	for time.Now().Before(deadline) {
		c, err := dialRetry(addr)
		if err != nil {
			return 0, err
		}
		got, lastErr = golden(c)
		c.Close()
		if lastErr == nil && got == want {
			return time.Since(start), nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	if lastErr != nil {
		return 0, fmt.Errorf("lag did not drain in %v: %v", window, lastErr)
	}
	return 0, fmt.Errorf("diverged after %v\nwant:\n%s\ngot:\n%s", window, want, got)
}

func dialRetry(addr string) (*server.Client, error) {
	var err error
	for i := 0; i < 100; i++ {
		var c *server.Client
		if c, err = server.Dial(addr); err == nil {
			return c, nil
		}
		time.Sleep(250 * time.Millisecond)
	}
	return nil, err
}

// waitConnections polls the primary's STATS replica line until n
// followers are streaming.
func waitConnections(prim *server.Client, n int, window time.Duration) error {
	deadline := time.Now().Add(window)
	for {
		line, err := prim.Do("STATS replica")
		if err != nil {
			return err
		}
		if statValue(line, "ship_connections") >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d of %d replicas attached in %v",
				statValue(line, "ship_connections"), n, window)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// statValue pulls one key=value pair off a STATS replica line.
func statValue(line, key string) int {
	for _, part := range strings.Fields(line) {
		if v, ok := strings.CutPrefix(part, key+"="); ok {
			n, _ := strconv.Atoi(v)
			return n
		}
	}
	return 0
}

// freeAddr reserves an ephemeral localhost port and releases it for a
// child process to bind — the standard smoke-test idiom.
func freeAddr() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer l.Close()
	return l.Addr().String()
}
