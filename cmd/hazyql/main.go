// Command hazyql is a small REPL over Hazy's SQL dialect (§2.1),
// demonstrating the paper's interface: declare tables, a
// CREATE CLASSIFICATION VIEW, feed training examples with INSERT,
// query the view with SELECT, and manage per-view serving engines
// with ATTACH ENGINE TO / DETACH ENGINE FROM.
//
// Usage:
//
//	hazyql [-db DIR] [-f script.sql]            # embedded session
//	hazyql -connect HOST:PORT [-f script.sql]   # same session over TCP
//
// Both modes drive the identical statement loop: -connect sends each
// statement through a hazyd server's SQL wire command instead of an
// in-process hazy.Session, and the output is the same either way.
//
// Statements are ';'-terminated. Try:
//
//	CREATE TABLE papers (id BIGINT, title TEXT) KEY id;
//	CREATE TABLE feedback (id BIGINT, label BIGINT) KEY id;
//	INSERT INTO papers VALUES (1, 'relational query optimization');
//	CREATE CLASSIFICATION VIEW labeled KEY id
//	  ENTITIES FROM papers KEY id
//	  EXAMPLES FROM feedback KEY id LABEL label
//	  FEATURE FUNCTION tf_bag_of_words USING SVM;
//	ATTACH ENGINE TO labeled;
//	INSERT INTO feedback VALUES (1, 1);
//	SELECT class FROM labeled WHERE id = 1;
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	root "hazy"
	"hazy/internal/repl"
	"hazy/internal/server"
)

func main() {
	var (
		dbDir   = flag.String("db", "", "database directory (default: temp)")
		script  = flag.String("f", "", "execute statements from this file, then exit")
		connect = flag.String("connect", "", "run the session against a hazyd server at this address instead of an embedded database")
	)
	flag.Parse()

	var exec repl.Executor
	if *connect != "" {
		c, err := dialRetry(*connect)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		exec = c
	} else {
		dir := *dbDir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "hazyql-*")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(dir)
		}
		db, err := root.Open(dir)
		if err != nil {
			fatal(err)
		}
		defer db.Close()
		exec = db.NewSession()
	}

	in := os.Stdin
	interactive := true
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		interactive = false
	}

	if interactive {
		fmt.Println("hazyql — Hazy classification views over SQL (';' ends a statement, \\q quits)")
	}
	if err := repl.Run(exec, in, os.Stdout, interactive); err != nil {
		fatal(err)
	}
}

// dialRetry connects to a hazyd server, retrying with a short backoff
// for ~5s so scripts can launch hazyql right after hazyd without
// racing its listener.
func dialRetry(addr string) (*server.Client, error) {
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		var c *server.Client
		if c, err = server.Dial(addr); err == nil {
			return c, nil
		}
		time.Sleep(250 * time.Millisecond)
	}
	return nil, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hazyql:", err)
	os.Exit(1)
}
