// Command hazyql is a small REPL over Hazy's SQL dialect (§2.1),
// demonstrating the paper's interface: declare tables, a
// CREATE CLASSIFICATION VIEW, feed training examples with INSERT, and
// query the view with SELECT.
//
// Usage:
//
//	hazyql [-db DIR] [-f script.sql]
//
// Statements are ';'-terminated. Try:
//
//	CREATE TABLE papers (id BIGINT, title TEXT) KEY id;
//	CREATE TABLE feedback (id BIGINT, label BIGINT) KEY id;
//	INSERT INTO papers VALUES (1, 'relational query optimization');
//	CREATE CLASSIFICATION VIEW labeled KEY id
//	  ENTITIES FROM papers KEY id
//	  EXAMPLES FROM feedback KEY id LABEL label
//	  FEATURE FUNCTION tf_bag_of_words USING SVM;
//	INSERT INTO feedback VALUES (1, 1);
//	SELECT class FROM labeled WHERE id = 1;
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	root "hazy"
	"hazy/internal/sqlmini"
)

func main() {
	var (
		dbDir  = flag.String("db", "", "database directory (default: temp)")
		script = flag.String("f", "", "execute statements from this file, then exit")
	)
	flag.Parse()

	dir := *dbDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "hazyql-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	}
	db, err := root.Open(dir)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	eng := sqlmini.NewEngine(db)

	in := os.Stdin
	interactive := true
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		interactive = false
	}

	if interactive {
		fmt.Println("hazyql — Hazy classification views over SQL (';' ends a statement, \\q quits)")
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if interactive {
			if buf.Len() == 0 {
				fmt.Print("hazy> ")
			} else {
				fmt.Print("  ... ")
			}
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == `\q` {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		stmt := buf.String()
		buf.Reset()
		if strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(stmt), ";")) == "" {
			prompt()
			continue
		}
		res, err := eng.Exec(stmt)
		switch {
		case err != nil:
			fmt.Println("error:", err)
		case res.Msg != "":
			fmt.Println(res.Msg)
		default:
			printResult(res)
		}
		prompt()
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func printResult(res *sqlmini.Result) {
	fmt.Println(strings.Join(res.Cols, " | "))
	for _, row := range res.Rows {
		fmt.Println(strings.Join(row, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hazyql:", err)
	os.Exit(1)
}
