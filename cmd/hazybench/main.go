// Command hazybench regenerates the paper's tables and figures, plus
// the concurrency experiment ("conc") comparing the maintenance
// engine's snapshot reads and batched ingest against the seed's
// single-mutex server at 1, 4, and NumCPU clients.
//
// Usage:
//
//	hazybench -list
//	hazybench -exp fig4a [-scale 0.5] [-updates 300] [-out results.txt]
//	hazybench -exp conc [-reads 200000]
//	hazybench -exp all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hazy/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		scale   = flag.Float64("scale", 1.0, "data-set scale multiplier")
		warm    = flag.Int("warm", 2000, "warm-model training examples")
		updates = flag.Int("updates", 300, "measured updates per cell")
		reads   = flag.Int("reads", 15000, "measured single-entity reads")
		out     = flag.String("out", "", "also write results to this file")
		dir     = flag.String("dir", "", "scratch directory for on-disk views (default: temp)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}

	scratch := *dir
	if scratch == "" {
		var err error
		scratch, err = os.MkdirTemp("", "hazybench-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(scratch)
	}
	cfg := bench.Config{
		Scale:   *scale,
		Warm:    *warm,
		Updates: *updates,
		Reads:   *reads,
		Dir:     scratch,
	}.WithDefaults()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	run := func(e bench.Experiment) {
		fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(cfg, w); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Fprintf(w, "  [%s in %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.All {
			run(e)
		}
		return
	}
	e, ok := bench.Find(*exp)
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (try -list)", *exp))
	}
	run(e)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hazybench:", err)
	os.Exit(1)
}
