// Many-views churn under the shared maintenance scheduler: every
// attached engine and every striped view in one catalog runs its
// maintenance on a single internal/sched pool, so this suite attaches
// and detaches engines across many views concurrently with mixed
// ADD/TRAIN traffic and snapshot reads — the lifecycle the catalog-
// scale refactor has to survive under -race.
package hazy_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	root "hazy"
	"hazy/internal/engine"
)

// churnStack creates n disjoint (papers_i, feedback_i,
// labeled_papers_i) stacks — AttachEngine requires engined views not
// to share tables — each seeded with four entities.
func churnStack(t testing.TB, db *root.DB, n int) []string {
	t.Helper()
	views := make([]string, n)
	for i := 0; i < n; i++ {
		ents := fmt.Sprintf("papers_%d", i)
		exs := fmt.Sprintf("feedback_%d", i)
		views[i] = fmt.Sprintf("labeled_papers_%d", i)
		et, err := db.CreateEntityTable(ents, "title")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateExampleTable(exs); err != nil {
			t.Fatal(err)
		}
		for id := int64(1); id <= 4; id++ {
			text := "query optimization relational"
			if id%2 == 0 {
				text = "protein folding biology"
			}
			if err := et.InsertText(id, text); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := db.CreateClassificationView(root.ViewSpec{
			Name: views[i], Entities: ents, Examples: exs,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return views
}

// TestManyViewsChurnRace attaches and detaches engines on many views
// concurrently, each attachment serving mixed ADD/TRAIN/read traffic
// through the shared pool. Run under -race in CI; the assertions here
// are liveness (nothing deadlocks or leaks an error), read-your-
// writes after each Flush, and a final clean Close.
func TestManyViewsChurnRace(t *testing.T) {
	views := 16
	rounds := 3
	if testing.Short() {
		views, rounds = 6, 2
	}

	dir := t.TempDir()
	db, err := root.OpenWith(dir, root.OpenOptions{Fsync: "off", MaintWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	names := churnStack(t, db, views)

	var nextID atomic.Int64
	nextID.Store(1000)
	var wg sync.WaitGroup
	for vi, name := range names {
		wg.Add(1)
		go func(vi int, name string) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				eng, err := db.AttachEngine(name, root.EngineOptions{QueueSize: 64, MaxBatch: 16})
				if err != nil {
					t.Errorf("attach %s round %d: %v", name, r, err)
					return
				}
				tok := eng.NewToken()
				for j := 0; j < 8; j++ {
					id := nextID.Add(1)
					if err := eng.AddAsyncTok(tok, id, "incremental maintenance of views"); err != nil {
						t.Errorf("%s add: %v", name, err)
						return
					}
					// Order is preserved across kinds, so training the
					// just-queued entity is safe; fresh ids keep the
					// examples table collision-free across rounds.
					if err := eng.TrainAsyncTok(tok, id, 1-2*(j%2)); err != nil {
						t.Errorf("%s train: %v", name, err)
						return
					}
					// Reads interleave with scheduled maintenance,
					// lock-free from the published snapshot.
					if _, err := eng.Label(int64(j%4 + 1)); err != nil {
						t.Errorf("%s label: %v", name, err)
						return
					}
				}
				if err := eng.FlushTok(tok); err != nil {
					t.Errorf("%s flush: %v", name, err)
					return
				}
				// Read-your-writes: everything flushed is visible.
				if n, err := eng.CountMembers(); err != nil || n <= 0 {
					t.Errorf("%s members after flush = %d, %v", name, n, err)
					return
				}
				if err := db.DetachEngine(name); err != nil {
					t.Errorf("detach %s round %d: %v", name, r, err)
					return
				}
			}
		}(vi, name)
	}
	wg.Wait()

	if err := db.Close(); err != nil {
		t.Fatalf("Close after churn: %v", err)
	}
}

// TestManyViewsGoroutineBudget pins the tentpole's O(pool) claim at
// the API level: a catalog with many attached engines must not grow
// its goroutine count per view — engines are parked task sources, not
// goroutine owners.
func TestManyViewsGoroutineBudget(t *testing.T) {
	views := 64
	if testing.Short() || raceEnabled {
		views = 24
	}

	dir := t.TempDir()
	db, err := root.OpenWith(dir, root.OpenOptions{Fsync: "off", MaintWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	names := churnStack(t, db, views)

	before := runtime.NumGoroutine()
	engines := make([]*engine.Engine, 0, views)
	for _, name := range names {
		eng, err := db.AttachEngine(name, root.EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, eng)
	}
	// Idle engines are parked: no goroutine per view.
	if after := runtime.NumGoroutine(); after-before > 4 {
		t.Fatalf("attaching %d engines grew goroutines by %d (before=%d after=%d); engines must not own goroutines",
			views, after-before, before, after)
	}

	// Drive them all, then re-check at quiescence.
	for _, eng := range engines {
		if err := eng.TrainAsync(1, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, eng := range engines {
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if after := runtime.NumGoroutine(); after-before > 4 {
		t.Fatalf("after traffic, %d engines hold %d extra goroutines (before=%d after=%d)",
			views, after-before, before, after)
	}
}
