// Striped-reorganization benchmark: the PR-5 tentpole claim is that
// partition-striping makes reorganization cost scale with the stripe
// size instead of the view size, with the stripes re-clustered in
// parallel. BenchmarkStripedReorg measures a full reorganization
// (Retrain: one model rebuild over a handful of examples, then
// re-eps + re-sort of all 50k entities) at 1 vs 4 stripes on the same
// corpus; on a 4+-core runner the 4-stripe run should be ≥2× faster.
// TestStripedReorgEmitJSON records the same measurement to the file
// named by BENCH_JSON_OUT (CI writes BENCH_pr5.json) so the perf
// trajectory is machine-readable from here on.
package hazy

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"hazy/internal/core"
	"hazy/internal/learn"
	"hazy/internal/vector"
)

const (
	stripedReorgEntities = 50_000
	stripedReorgDim      = 32
)

var (
	stripedReorgOnce sync.Once
	stripedReorgEnts []core.Entity
	stripedReorgExs  []learn.Example
)

// stripedReorgCorpus builds the 50k-entity dense corpus once per
// process.
func stripedReorgCorpus() ([]core.Entity, []learn.Example) {
	stripedReorgOnce.Do(func() {
		r := rand.New(rand.NewSource(61))
		stripedReorgEnts = make([]core.Entity, stripedReorgEntities)
		for i := range stripedReorgEnts {
			f := make([]float64, stripedReorgDim)
			for d := range f {
				f[d] = r.NormFloat64()
			}
			stripedReorgEnts[i] = core.Entity{ID: int64(i), F: vector.NewDense(f)}
		}
		stripedReorgExs = make([]learn.Example, 16)
		for i := range stripedReorgExs {
			f := make([]float64, stripedReorgDim)
			for d := range f {
				f[d] = r.NormFloat64()
			}
			stripedReorgExs[i] = learn.Example{F: vector.NewDense(f), Label: 1 - 2*(i%2)}
		}
	})
	return stripedReorgEnts, stripedReorgExs
}

// stripedReorgView builds the benched view: unstriped MemView at
// stripes=1, StripedView otherwise — both Hazy-strategy, eager.
func stripedReorgView(stripes int) (core.View, error) {
	ents, exs := stripedReorgCorpus()
	opts := core.Options{Norm: 2, SGD: learn.SGDConfig{Eta0: 0.3}, Warm: exs, Partitions: stripes}
	return core.New(core.MainMemory, core.HazyStrategy, "", 0, ents, opts)
}

// reorgLoop is the measured op: Retrain re-fits the (tiny) example
// set and re-clusters every stripe — the reorganization dominates.
func reorgLoop(b *testing.B, v core.View) {
	_, exs := stripedReorgCorpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Retrain(exs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStripedReorg(b *testing.B) {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, stripes := range counts {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			v, err := stripedReorgView(stripes)
			if err != nil {
				b.Fatal(err)
			}
			reorgLoop(b, v)
		})
	}
}

// TestStripedReorgEmitJSON re-runs the 1- vs 4-stripe measurement via
// testing.Benchmark and writes it as one JSON object to the path in
// BENCH_JSON_OUT. Skipped unless the env var is set (CI's bench smoke
// job sets it to BENCH_pr5.json).
func TestStripedReorgEmitJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON_OUT")
	if out == "" {
		t.Skip("set BENCH_JSON_OUT=<path> to emit the striped-reorg benchmark JSON")
	}
	measure := func(stripes int) int64 {
		v, err := stripedReorgView(stripes)
		if err != nil {
			t.Fatal(err)
		}
		res := testing.Benchmark(func(b *testing.B) { reorgLoop(b, v) })
		return res.NsPerOp()
	}
	one, four := measure(1), measure(4)
	report := map[string]any{
		"bench":            "StripedReorg",
		"entities":         stripedReorgEntities,
		"dim":              stripedReorgDim,
		"cores":            runtime.GOMAXPROCS(0),
		"stripes1_ns_op":   one,
		"stripes4_ns_op":   four,
		"speedup_4stripes": float64(one) / float64(four),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", out, data)
}
