// Replication-correctness suite: the crash-matrix workload streamed
// to live read replicas. A primary ships its WAL; replicas bootstrap
// (before traffic, and mid-stream from a checkpoint image), tail the
// stream through the idempotent redo path, survive forced disconnects
// and full restarts, and must converge to byte-identical results for
// a golden query set. PROMOTE turns a replica into a writable primary
// at the exact position it had applied to.
package hazy_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	root "hazy"
	"hazy/internal/wal"
)

// goldenQueries is the equivalence probe: every row of every table
// and the full classification view, deterministically ordered.
var goldenQueries = []string{
	"SELECT COUNT(*) FROM papers",
	"SELECT COUNT(*) FROM feedback",
	"SELECT id, title FROM papers ORDER BY id",
	"SELECT id, label FROM feedback ORDER BY id",
	"SELECT COUNT(*) FROM lv WHERE class = 1",
	"SELECT id, class FROM lv ORDER BY id",
}

// goldenResults renders the golden query set as one string, so
// primary/replica equivalence is a byte comparison.
func goldenResults(t *testing.T, db *root.DB) string {
	t.Helper()
	s, err := tryGoldenResults(db)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func tryGoldenResults(db *root.DB) (string, error) {
	var b strings.Builder
	sess := db.NewSession()
	for _, q := range goldenQueries {
		res, err := sess.Exec(q)
		if err != nil {
			return "", fmt.Errorf("golden query %q: %w", q, err)
		}
		fmt.Fprintf(&b, "-- %s\n", q)
		for _, row := range res.Rows {
			fmt.Fprintln(&b, strings.Join(row, "|"))
		}
	}
	return b.String(), nil
}

// waitApplied polls until the replica's applied position reaches want
// (a primary WALEnd captured right after a shippable record).
func waitApplied(t *testing.T, rep *root.DB, want wal.Pos, desc string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if got := rep.AppliedPos(); !got.Before(want) {
			return
		}
		if err := rep.ReplicaErr(); err != nil {
			t.Fatalf("%s: replica stream died: %v", desc, err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: replica stuck at %+v, want %+v", desc, rep.AppliedPos(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertEquivalent drains the replica to the primary's current WAL
// tip and byte-compares the golden query set. Applied records become
// visible at the next commit/publish (batch boundary or idle
// heartbeat), so the comparison polls briefly before failing.
func assertEquivalent(t *testing.T, prim, rep *root.DB, desc string) {
	t.Helper()
	waitApplied(t, rep, prim.WALEnd(), desc)
	want := goldenResults(t, prim)
	deadline := time.Now().Add(30 * time.Second)
	var got string
	for {
		var err error
		if got, err = tryGoldenResults(rep); err == nil && got == want {
			return
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatalf("%s: replica queries: %v", desc, err)
			}
			t.Fatalf("%s: replica diverged\nprimary:\n%s\nreplica:\n%s", desc, want, got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func metricValue(t *testing.T, db *root.DB, name string) int64 {
	t.Helper()
	for _, s := range db.Metrics().Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("metric %s not registered", name)
	return 0
}

// TestReplicationEquivalence is the acceptance test: the PR 4 crash
// workload (mixed DDL, ADD, TRAIN, CHECKPOINT) streamed to replicas,
// including a forced disconnect/resume, a mid-stream checkpoint-image
// bootstrap, a replica restart, and a promote at the exact WAL tip.
func TestReplicationEquivalence(t *testing.T) {
	opts := root.OpenOptions{Fsync: "off"}
	prim, err := root.OpenWith(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	shipper, err := prim.StartShipping("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := shipper.Addr()

	// Replica 1 bootstraps BEFORE any traffic: it sees the entire
	// history — every DDL and mutation — through the stream alone.
	rep1dir := t.TempDir()
	if err := root.BootstrapReplica(rep1dir, addr, opts); err != nil {
		t.Fatal(err)
	}
	rep1, err := root.OpenWith(rep1dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep1.StartReplica(addr, t.Logf); err != nil {
		t.Fatal(err)
	}

	// Phase 1: the full crash workload (DDL mid-stream, CHECKPOINT —
	// which prunes the primary's WAL under the follower — and TRAINs).
	ops := crashWorkload()
	if acked, err := runCrashWorkload(prim, ops); err != nil || acked != len(ops) {
		t.Fatalf("workload: %d/%d acked, %v", acked, len(ops), err)
	}
	assertEquivalent(t, prim, rep1, "phase 1 (streamed history)")
	assertViewsConsistent(t, rep1, "replica 1 view")

	// The replica rejects every mutation surface with a clear error.
	if _, err := rep1.NewSession().Exec("INSERT INTO feedback VALUES (99, 1)"); err == nil ||
		!strings.Contains(err.Error(), "read-only replica") {
		t.Fatalf("replica accepted a write (err = %v)", err)
	}
	if _, err := rep1.NewSession().Exec("CREATE TABLE t2 (id BIGINT, body TEXT) KEY id"); err == nil ||
		!strings.Contains(err.Error(), "read-only replica") {
		t.Fatalf("replica accepted DDL (err = %v)", err)
	}

	// Phase 2: forced disconnect mid-traffic — the applier reconnects
	// with backoff and resumes from its exact cursor, no gaps, no
	// double-applies.
	rep1.DisconnectReplica()
	sess := prim.NewSession()
	for id := int64(20); id <= 27; id++ {
		if _, err := sess.Exec(fmt.Sprintf("INSERT INTO papers VALUES (%d, '%s')", id, crashTitle(id))); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Exec(fmt.Sprintf("INSERT INTO feedback VALUES (%d, %d)", id, 1-2*(id%2))); err != nil {
			t.Fatal(err)
		}
	}
	assertEquivalent(t, prim, rep1, "phase 2 (disconnect/resume)")
	if n := metricValue(t, rep1, "hazy_replica_reconnects_total"); n < 1 {
		t.Fatalf("hazy_replica_reconnects_total = %d after forced disconnect", n)
	}

	// Phase 3: replica 2 bootstraps MID-stream — the checkpoint-image
	// path: a consistent image seeds the directory, the stream resumes
	// exactly one past the image, and later DDL still replicates.
	rep2dir := t.TempDir()
	if err := root.BootstrapReplica(rep2dir, addr, opts); err != nil {
		t.Fatal(err)
	}
	rep2, err := root.OpenWith(rep2dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep2.StartReplica(addr, t.Logf); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("CREATE TABLE notes (id BIGINT, body TEXT) KEY id"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO notes VALUES (1, 'post-image ddl replicates')"); err != nil {
		t.Fatal(err)
	}
	for id := int64(28); id <= 31; id++ {
		if _, err := sess.Exec(fmt.Sprintf("INSERT INTO papers VALUES (%d, '%s')", id, crashTitle(id))); err != nil {
			t.Fatal(err)
		}
	}
	assertEquivalent(t, prim, rep1, "phase 3 replica 1")
	assertEquivalent(t, prim, rep2, "phase 3 replica 2 (image bootstrap)")
	for _, rep := range []*root.DB{rep1, rep2} {
		res, err := rep.NewSession().Exec("SELECT id, body FROM notes ORDER BY id")
		if err != nil {
			t.Fatalf("post-image DDL did not replicate: %v", err)
		}
		if len(res.Rows) != 1 || res.Rows[0][1] != "post-image ddl replicates" {
			t.Fatalf("post-image table content: %v", res.Rows)
		}
	}

	// Phase 4: replica restart — recovery replays the local journal of
	// shipped records, the cursor survives, and the stream resumes.
	if err := rep1.Close(); err != nil {
		t.Fatal(err)
	}
	rep1, err = root.OpenWith(rep1dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep1.StartReplica(addr, t.Logf); err != nil {
		t.Fatal(err)
	}
	for id := int64(32); id <= 35; id++ {
		if _, err := sess.Exec(fmt.Sprintf("INSERT INTO papers VALUES (%d, '%s')", id, crashTitle(id))); err != nil {
			t.Fatal(err)
		}
	}
	assertEquivalent(t, prim, rep1, "phase 4 (restart/resume)")
	defer rep1.Close()

	// Phase 5: PROMOTE — the applier stops at its exact applied
	// position, the read-only gate lifts, and new writes land on top
	// of a byte-identical copy of the primary's state.
	assertEquivalent(t, prim, rep2, "pre-promote drain")
	preCount := len(goldenResults(t, rep2))
	if err := rep2.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := len(goldenResults(t, rep2)); got != preCount {
		t.Fatalf("promote changed served state: %d bytes, was %d", got, preCount)
	}
	psess := rep2.NewSession()
	if _, err := psess.Exec("INSERT INTO papers VALUES (100, 'written on the promoted replica')"); err != nil {
		t.Fatalf("promoted replica rejected a write: %v", err)
	}
	res, err := psess.Exec("SELECT title FROM papers WHERE id = 100")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("promoted replica read-back: %v, %v", res, err)
	}
	// Promoting a non-replica is an error; promoting via SQL works too
	// (rep2 is already promoted, so it reports there is nothing to do).
	if _, err := psess.Exec("PROMOTE"); err == nil || !strings.Contains(err.Error(), "nothing to promote") {
		t.Fatalf("double promote: %v", err)
	}
	if err := rep2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaLagMetrics checks the observability satellite: the
// replica_* gauges and counters exist on every database and move on a
// live replica.
func TestReplicaLagMetrics(t *testing.T) {
	opts := root.OpenOptions{Fsync: "off"}
	prim, err := root.OpenWith(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	// Registered (at zero) even on a database with no replication.
	for _, name := range []string{
		"hazy_replica_apply_batches_total",
		"hazy_replica_apply_records_total",
		"hazy_replica_connected",
		"hazy_replica_lag_bytes",
		"hazy_replica_lag_records",
		"hazy_replica_lag_seconds",
		"hazy_replica_publishes_total",
		"hazy_replica_reconnects_total",
		"hazy_replica_ship_connections",
		"hazy_replica_ship_records_total",
	} {
		if v := metricValue(t, prim, name); v != 0 {
			t.Fatalf("%s = %d on a fresh database", name, v)
		}
	}
	shipper, err := prim.StartShipping("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	repdir := t.TempDir()
	if err := root.BootstrapReplica(repdir, shipper.Addr(), opts); err != nil {
		t.Fatal(err)
	}
	rep, err := root.OpenWith(repdir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if err := rep.StartReplica(shipper.Addr(), t.Logf); err != nil {
		t.Fatal(err)
	}
	if acked, err := runCrashWorkload(prim, crashWorkload()); err != nil || acked == 0 {
		t.Fatalf("workload: %d acked, %v", acked, err)
	}
	waitApplied(t, rep, prim.WALEnd(), "metrics drain")
	if v := metricValue(t, rep, "hazy_replica_apply_records_total"); v == 0 {
		t.Fatal("apply_records_total did not move")
	}
	if v := metricValue(t, rep, "hazy_replica_connected"); v != 1 {
		t.Fatalf("hazy_replica_connected = %d on a live replica", v)
	}
	if v := metricValue(t, prim, "hazy_replica_ship_records_total"); v == 0 {
		t.Fatal("ship_records_total did not move on the primary")
	}
	if v := metricValue(t, prim, "hazy_replica_ship_connections"); v != 1 {
		t.Fatalf("hazy_replica_ship_connections = %d with one replica attached", v)
	}
	// SHOW STATS FOR replica surfaces the same collectors as rows.
	res, err := rep.NewSession().Exec("SHOW STATS FOR replica")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if strings.HasPrefix(row[0], "hazy_replica_") {
			found = true
		}
	}
	if !found {
		t.Fatalf("SHOW STATS FOR replica returned no replica collectors: %v", res.Rows)
	}
}
